// Parallel execution engine: wall time and speedup vs thread count.
//
// Not a paper artefact — implementation check for the deterministic
// parallel engine (docs/PARALLELISM.md). Runs the campaign and CFS phases
// at 1/2/4/8 threads over the selected corpora (--scale tiny|small|paper|
// all, default all), prints per-phase wall time and speedup relative to
// the single-thread reference, sanity-checks that the inference result
// itself is thread-count-invariant, and emits every sample as
// BENCH_parallel_scaling.json. Two acceptance bars, both demanded only
// when the relevant corpus is selected:
//   * >= 2.5x campaign-phase speedup at 4 threads on the small corpus
//     (only when the host has >= 4 hardware threads);
//   * <= 5% wall-time overhead with the span timeline enabled
//     (docs/OBSERVABILITY.md), measured on the small corpus at 4 threads.
#include <algorithm>
#include <fstream>
#include <stdexcept>

#include "common.h"
#include "io/json.h"
#include "util/flags.h"
#include "util/thread_pool.h"
#include "util/trace.h"

namespace {

using namespace cfs;

struct Sample {
  std::string corpus;
  int threads = 1;
  double campaign_ms = 0.0;
  double cfs_ms = 0.0;
  std::size_t traces = 0;
  std::size_t resolved = 0;
};

Sample run_case(const std::string& corpus, PipelineConfig config,
                int threads) {
  config.threads = threads;
  Pipeline pipeline(config);
  Sample s;
  s.corpus = corpus;
  s.threads = threads;
  Stopwatch campaign_timer;
  auto traces = pipeline.initial_campaign(pipeline.default_targets(2, 2), 0.6);
  s.campaign_ms = campaign_timer.elapsed_ms();
  s.traces = traces.size();
  const CfsReport report = pipeline.run_cfs(std::move(traces));
  s.cfs_ms = report.metrics.total_ms;
  s.resolved = report.resolved_interfaces();
  return s;
}

// Wall time of a full traced/untraced run, for the overhead bar. The span
// timeline buffers events in memory exactly as `--trace-out` would.
double timed_run_ms(const PipelineConfig& config, int threads, bool traced) {
  if (traced)
    Trace::enable();
  else
    Trace::disable();
  Stopwatch timer;
  Sample s = run_case("overhead", config, threads);
  const double ms = timer.elapsed_ms();
  (void)s;
  Trace::disable();
  Trace::clear_events();
  return ms;
}

JsonValue to_json(const std::vector<Sample>& samples,
                  double tracing_overhead_pct, bool overhead_measured) {
  JsonValue::Array rows;
  for (const Sample& s : samples) {
    JsonValue::Object row;
    row.emplace("corpus", s.corpus);
    row.emplace("threads", static_cast<std::uint64_t>(s.threads));
    row.emplace("campaign_ms", s.campaign_ms);
    row.emplace("cfs_ms", s.cfs_ms);
    row.emplace("traces", static_cast<std::uint64_t>(s.traces));
    row.emplace("resolved_interfaces", static_cast<std::uint64_t>(s.resolved));
    rows.emplace_back(std::move(row));
  }
  JsonValue::Object root;
  root.emplace("hardware_threads",
               static_cast<std::uint64_t>(ThreadPool::hardware_threads()));
  if (overhead_measured)
    root.emplace("tracing_overhead_pct", tracing_overhead_pct);
  root.emplace("samples", std::move(rows));
  return JsonValue(std::move(root));
}

}  // namespace

int main(int argc, char** argv) {
  std::string scale = "all";
  try {
    const Flags flags(argc, argv);
    scale = flags.get("scale", "all");
    const std::string unknown = flags.unknown_flags_message();
    if (!unknown.empty()) throw std::invalid_argument(unknown);
    if (scale != "tiny" && scale != "small" && scale != "paper" &&
        scale != "all")
      throw std::invalid_argument("unknown --scale '" + scale +
                                  "' (tiny|small|paper|all)");
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << "\n";
    return 2;
  }

  bench::header("Parallel scaling (campaign + CFS)",
                "not a paper artefact — engine check: speedup vs thread "
                "count with byte-identical inference at every count");

  std::vector<std::pair<std::string, PipelineConfig>> corpora;
  if (scale == "tiny" || scale == "all")
    corpora.emplace_back("tiny", PipelineConfig::tiny());
  if (scale == "small" || scale == "all")
    corpora.emplace_back("small", PipelineConfig::small_scale());
  if (scale == "paper" || scale == "all")
    corpora.emplace_back("paper", PipelineConfig::paper_scale());
  const std::vector<int> thread_counts = {1, 2, 4, 8};

  std::vector<Sample> samples;
  bool ok = true;
  double small_speedup_at_4 = 0.0;

  for (const auto& [corpus, config] : corpora) {
    Table table({"Threads", "Campaign ms", "Campaign speedup", "CFS ms",
                 "CFS speedup", "Resolved"});
    double campaign_ref = 0.0;
    double cfs_ref = 0.0;
    std::size_t resolved_ref = 0;
    for (const int threads : thread_counts) {
      const Sample s = run_case(corpus, config, threads);
      samples.push_back(s);
      if (threads == 1) {
        campaign_ref = s.campaign_ms;
        cfs_ref = s.cfs_ms;
        resolved_ref = s.resolved;
      }
      const double campaign_speedup =
          s.campaign_ms > 0.0 ? campaign_ref / s.campaign_ms : 0.0;
      const double cfs_speedup = s.cfs_ms > 0.0 ? cfs_ref / s.cfs_ms : 0.0;
      if (corpus == "small" && threads == 4)
        small_speedup_at_4 = campaign_speedup;
      if (s.resolved != resolved_ref) {
        std::cout << "FAIL: " << corpus << " at " << threads
                  << " threads resolved " << s.resolved
                  << " interfaces, reference resolved " << resolved_ref
                  << "\n";
        ok = false;
      }
      table.add_row({Table::cell(std::uint64_t{
                         static_cast<std::uint64_t>(threads)}),
                     Table::cell(s.campaign_ms), Table::cell(campaign_speedup),
                     Table::cell(s.cfs_ms), Table::cell(cfs_speedup),
                     Table::cell(std::uint64_t{s.resolved})});
    }
    std::cout << "\n-- " << corpus << " corpus --\n";
    table.print(std::cout);
  }

  if ((scale == "small" || scale == "all") &&
      ThreadPool::hardware_threads() >= 4) {
    std::cout << "\ncampaign speedup at 4 threads (small corpus): "
              << Table::cell(small_speedup_at_4) << "x (bar: 2.5x)\n";
    if (small_speedup_at_4 < 2.5) {
      std::cout << "FAIL: below the 2.5x campaign speedup bar\n";
      ok = false;
    }
  } else if (scale == "small" || scale == "all") {
    std::cout << "\nhost has fewer than 4 hardware threads; speedup bar "
                 "not demanded\n";
  }

  // Tracing overhead: a full traced run vs an untraced one, best of two
  // rounds each to damp scheduler noise. Measured on the smallest selected
  // corpus that still does real work.
  double tracing_overhead_pct = 0.0;
  bool overhead_measured = false;
  {
    const PipelineConfig config = scale == "tiny"
                                      ? PipelineConfig::tiny()
                                      : PipelineConfig::small_scale();
    const int threads = 4;
    double untraced = 1e300;
    double traced = 1e300;
    for (int round = 0; round < 2; ++round) {
      untraced = std::min(untraced, timed_run_ms(config, threads, false));
      traced = std::min(traced, timed_run_ms(config, threads, true));
    }
    tracing_overhead_pct =
        untraced > 0.0 ? (traced - untraced) / untraced * 100.0 : 0.0;
    overhead_measured = true;
    std::cout << "\ntracing overhead (" << (scale == "tiny" ? "tiny" : "small")
              << " corpus, 4 threads): untraced "
              << Table::cell(untraced) << " ms, traced "
              << Table::cell(traced) << " ms, overhead "
              << Table::cell(tracing_overhead_pct)
              << "% (bar: 5%; advisory on noisy hosts)\n";
    if (tracing_overhead_pct > 5.0)
      std::cout << "WARN: above the 5% tracing overhead bar\n";
  }

  std::ofstream out("BENCH_parallel_scaling.json");
  out << to_json(samples, tracing_overhead_pct, overhead_measured).pretty()
      << "\n";
  std::cout << "samples written to BENCH_parallel_scaling.json\n";

  std::cout << "\n" << (ok ? "OK" : "FAILED") << "\n";
  return ok ? 0 : 1;
}
