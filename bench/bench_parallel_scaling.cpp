// Parallel execution engine: wall time and speedup vs thread count.
//
// Not a paper artefact — implementation check for the deterministic
// parallel engine (docs/PARALLELISM.md). Runs the campaign and CFS phases
// at 1/2/4/8 threads over the selected corpora (--scale tiny|small|paper|
// all, default all), prints per-phase wall time, speedup relative to the
// single-thread reference and the engine's memory gauges (candidate-span
// arena payload, peak RSS), sanity-checks that the inference result
// itself is thread-count-invariant, and emits every sample as
// BENCH_parallel_scaling.json (override with --out=FILE).
// --baseline=FILE compares CFS wall time per (corpus, threads) sample
// against a committed run — the repo-root BENCH_parallel.json — and fails
// on >10% regression (the CI perf guard). Two more acceptance bars, both
// demanded only when the relevant corpus is selected:
//   * >= 2.5x campaign-phase speedup at 4 threads on the small corpus
//     (only when the host has >= 4 hardware threads);
//   * <= 5% wall-time overhead with the span timeline enabled
//     (docs/OBSERVABILITY.md), measured on the small corpus at 4 threads.
#include <algorithm>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "common.h"
#include "io/json.h"
#include "util/flags.h"
#include "util/thread_pool.h"
#include "util/trace.h"

namespace {

using namespace cfs;

struct Sample {
  std::string corpus;
  int threads = 1;
  double campaign_ms = 0.0;
  double cfs_ms = 0.0;
  std::size_t traces = 0;
  std::size_t resolved = 0;
  // Memory gauges the engine publishes at the end of each run
  // (docs/OBSERVABILITY.md): candidate-span arena payload, process-wide
  // arena capacity, and the process RSS high-water mark.
  double arena_bytes = 0.0;
  double arena_reserved_bytes = 0.0;
  double peak_rss_bytes = 0.0;
};

Sample run_case(const std::string& corpus, PipelineConfig config,
                int threads) {
  config.threads = threads;
  Pipeline pipeline(config);
  Sample s;
  s.corpus = corpus;
  s.threads = threads;
  Stopwatch campaign_timer;
  auto traces = pipeline.initial_campaign(pipeline.default_targets(2, 2), 0.6);
  s.campaign_ms = campaign_timer.elapsed_ms();
  s.traces = traces.size();
  const CfsReport report = pipeline.run_cfs(std::move(traces));
  s.cfs_ms = report.metrics.total_ms;
  s.resolved = report.resolved_interfaces();
  const auto& gauges = report.metrics.registry.gauges;
  const auto gauge = [&gauges](const char* name) {
    const auto it = gauges.find(name);
    return it == gauges.end() ? 0.0 : it->second;
  };
  s.arena_bytes = gauge("cfs.arena_bytes");
  s.arena_reserved_bytes = gauge("cfs.arena_reserved_bytes");
  s.peak_rss_bytes = gauge("process.peak_rss_bytes");
  return s;
}

// Baseline guard: with --baseline=FILE (the committed BENCH_parallel.json)
// the bench fails if any matching (corpus, threads) sample's CFS wall time
// regressed more than the threshold. Guards the dense-handle hot path from
// silent decay; the threshold absorbs normal scheduler noise.
constexpr double kRegressionTolerance = 0.10;

bool check_against_baseline(const std::vector<Sample>& samples,
                            const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::cout << "FAIL: cannot read baseline '" << path << "'\n";
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  JsonValue doc;
  try {
    doc = parse_json(buffer.str());
  } catch (const std::exception& error) {
    std::cout << "FAIL: cannot parse baseline '" << path
              << "': " << error.what() << "\n";
    return false;
  }
  const JsonValue* rows = doc.find("samples");
  if (rows == nullptr) {
    std::cout << "FAIL: baseline '" << path << "' has no samples\n";
    return false;
  }
  bool ok = true;
  std::size_t compared = 0;
  for (const JsonValue& row : rows->as_array()) {
    const std::string corpus = row.find("corpus")->as_string();
    const int threads = static_cast<int>(row.find("threads")->as_number());
    const double base_ms = row.find("cfs_ms")->as_number();
    if (base_ms <= 0.0) continue;
    for (const Sample& s : samples) {
      if (s.corpus != corpus || s.threads != threads) continue;
      ++compared;
      const double ratio = s.cfs_ms / base_ms;
      if (ratio > 1.0 + kRegressionTolerance) {
        std::cout << "FAIL: " << corpus << " corpus at " << threads
                  << " thread(s): CFS " << Table::cell(s.cfs_ms)
                  << " ms vs baseline " << Table::cell(base_ms) << " ms ("
                  << Table::cell((ratio - 1.0) * 100.0)
                  << "% regression, bar: 10%)\n";
        ok = false;
      }
    }
  }
  std::cout << "\nbaseline check vs " << path << ": " << compared
            << " sample(s) compared, "
            << (ok ? "within the 10% bar" : "REGRESSED") << "\n";
  return ok;
}

// Wall time of a full traced/untraced run, for the overhead bar. The span
// timeline buffers events in memory exactly as `--trace-out` would.
double timed_run_ms(const PipelineConfig& config, int threads, bool traced) {
  if (traced)
    Trace::enable();
  else
    Trace::disable();
  Stopwatch timer;
  Sample s = run_case("overhead", config, threads);
  const double ms = timer.elapsed_ms();
  (void)s;
  Trace::disable();
  Trace::clear_events();
  return ms;
}

JsonValue to_json(const std::vector<Sample>& samples,
                  double tracing_overhead_pct, bool overhead_measured) {
  JsonValue::Array rows;
  for (const Sample& s : samples) {
    JsonValue::Object row;
    row.emplace("corpus", s.corpus);
    row.emplace("threads", static_cast<std::uint64_t>(s.threads));
    row.emplace("campaign_ms", s.campaign_ms);
    row.emplace("cfs_ms", s.cfs_ms);
    row.emplace("traces", static_cast<std::uint64_t>(s.traces));
    row.emplace("resolved_interfaces", static_cast<std::uint64_t>(s.resolved));
    row.emplace("arena_bytes", s.arena_bytes);
    row.emplace("arena_reserved_bytes", s.arena_reserved_bytes);
    row.emplace("peak_rss_bytes", s.peak_rss_bytes);
    rows.emplace_back(std::move(row));
  }
  JsonValue::Object root;
  root.emplace("hardware_threads",
               static_cast<std::uint64_t>(ThreadPool::hardware_threads()));
  if (overhead_measured)
    root.emplace("tracing_overhead_pct", tracing_overhead_pct);
  root.emplace("samples", std::move(rows));
  return JsonValue(std::move(root));
}

}  // namespace

int main(int argc, char** argv) {
  std::string scale = "all";
  std::string baseline_path;
  std::string out_path = "BENCH_parallel_scaling.json";
  try {
    const Flags flags(argc, argv);
    scale = flags.get("scale", "all");
    baseline_path = flags.get("baseline", "");
    out_path = flags.get("out", out_path);
    const std::string unknown = flags.unknown_flags_message();
    if (!unknown.empty()) throw std::invalid_argument(unknown);
    if (scale != "tiny" && scale != "small" && scale != "paper" &&
        scale != "all")
      throw std::invalid_argument("unknown --scale '" + scale +
                                  "' (tiny|small|paper|all)");
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << "\n";
    return 2;
  }

  bench::header("Parallel scaling (campaign + CFS)",
                "not a paper artefact — engine check: speedup vs thread "
                "count with byte-identical inference at every count");

  std::vector<std::pair<std::string, PipelineConfig>> corpora;
  if (scale == "tiny" || scale == "all")
    corpora.emplace_back("tiny", PipelineConfig::tiny());
  if (scale == "small" || scale == "all")
    corpora.emplace_back("small", PipelineConfig::small_scale());
  if (scale == "paper" || scale == "all")
    corpora.emplace_back("paper", PipelineConfig::paper_scale());
  const std::vector<int> thread_counts = {1, 2, 4, 8};

  std::vector<Sample> samples;
  bool ok = true;
  double small_speedup_at_4 = 0.0;

  for (const auto& [corpus, config] : corpora) {
    Table table({"Threads", "Campaign ms", "Campaign speedup", "CFS ms",
                 "CFS speedup", "Resolved", "Arena KiB", "Peak RSS MiB"});
    double campaign_ref = 0.0;
    double cfs_ref = 0.0;
    std::size_t resolved_ref = 0;
    for (const int threads : thread_counts) {
      const Sample s = run_case(corpus, config, threads);
      samples.push_back(s);
      if (threads == 1) {
        campaign_ref = s.campaign_ms;
        cfs_ref = s.cfs_ms;
        resolved_ref = s.resolved;
      }
      const double campaign_speedup =
          s.campaign_ms > 0.0 ? campaign_ref / s.campaign_ms : 0.0;
      const double cfs_speedup = s.cfs_ms > 0.0 ? cfs_ref / s.cfs_ms : 0.0;
      if (corpus == "small" && threads == 4)
        small_speedup_at_4 = campaign_speedup;
      if (s.resolved != resolved_ref) {
        std::cout << "FAIL: " << corpus << " at " << threads
                  << " threads resolved " << s.resolved
                  << " interfaces, reference resolved " << resolved_ref
                  << "\n";
        ok = false;
      }
      table.add_row({Table::cell(std::uint64_t{
                         static_cast<std::uint64_t>(threads)}),
                     Table::cell(s.campaign_ms), Table::cell(campaign_speedup),
                     Table::cell(s.cfs_ms), Table::cell(cfs_speedup),
                     Table::cell(std::uint64_t{s.resolved}),
                     Table::cell(s.arena_bytes / 1024.0),
                     Table::cell(s.peak_rss_bytes / (1024.0 * 1024.0))});
    }
    std::cout << "\n-- " << corpus << " corpus --\n";
    table.print(std::cout);
  }

  if ((scale == "small" || scale == "all") &&
      ThreadPool::hardware_threads() >= 4) {
    std::cout << "\ncampaign speedup at 4 threads (small corpus): "
              << Table::cell(small_speedup_at_4) << "x (bar: 2.5x)\n";
    if (small_speedup_at_4 < 2.5) {
      std::cout << "FAIL: below the 2.5x campaign speedup bar\n";
      ok = false;
    }
  } else if (scale == "small" || scale == "all") {
    std::cout << "\nhost has fewer than 4 hardware threads; speedup bar "
                 "not demanded\n";
  }

  // Tracing overhead: a full traced run vs an untraced one, best of two
  // rounds each to damp scheduler noise. Measured on the smallest selected
  // corpus that still does real work.
  double tracing_overhead_pct = 0.0;
  bool overhead_measured = false;
  {
    const PipelineConfig config = scale == "tiny"
                                      ? PipelineConfig::tiny()
                                      : PipelineConfig::small_scale();
    const int threads = 4;
    double untraced = 1e300;
    double traced = 1e300;
    for (int round = 0; round < 2; ++round) {
      untraced = std::min(untraced, timed_run_ms(config, threads, false));
      traced = std::min(traced, timed_run_ms(config, threads, true));
    }
    tracing_overhead_pct =
        untraced > 0.0 ? (traced - untraced) / untraced * 100.0 : 0.0;
    overhead_measured = true;
    std::cout << "\ntracing overhead (" << (scale == "tiny" ? "tiny" : "small")
              << " corpus, 4 threads): untraced "
              << Table::cell(untraced) << " ms, traced "
              << Table::cell(traced) << " ms, overhead "
              << Table::cell(tracing_overhead_pct)
              << "% (bar: 5%; advisory on noisy hosts)\n";
    if (tracing_overhead_pct > 5.0)
      std::cout << "WARN: above the 5% tracing overhead bar\n";
  }

  if (!baseline_path.empty())
    ok = check_against_baseline(samples, baseline_path) && ok;

  std::ofstream out(out_path);
  out << to_json(samples, tracing_overhead_pct, overhead_measured).pretty()
      << "\n";
  std::cout << "samples written to " << out_path << "\n";

  std::cout << "\n" << (ok ? "OK" : "FAILED") << "\n";
  return ok ? 0 : 1;
}
