// Figure 3: metropolitan areas with at least 10 interconnection facilities,
// plus the Section 3.1.2 dataset census (facilities, IXPs, countries,
// multi-IXP / multi-facility AS fractions, facility-to-IXP ratio).
#include <set>

#include "common.h"

using namespace cfs;

int main() {
  bench::header("Figure 3 — metros with >= 10 facilities; §3.1.2 census",
                "London ~45 down to Sofia/St.Petersburg ~10; 1,694 "
                "facilities in 95 countries / 684 cities; 368 IXPs in 263 "
                "cities / 87 countries; 54% of ASes at >1 IXP, 66% at >1 "
                "facility; ~3x more facilities than IXPs per metro");

  Pipeline pipeline(PipelineConfig::paper_scale());
  const Topology& topo = pipeline.topology();

  // --- Figure 3 series ---
  std::vector<std::pair<std::size_t, MetroId>> by_metro;
  for (const auto& metro : topo.metros()) {
    std::size_t count = 0;
    for (const auto& fac : topo.facilities()) count += fac.metro == metro.id;
    by_metro.emplace_back(count, metro.id);
  }
  std::sort(by_metro.rbegin(), by_metro.rend());

  Table fig({"Metro", "Facilities"});
  for (const auto& [count, metro] : by_metro) {
    if (count < 10) break;
    fig.add_row({topo.metro(metro).name, Table::cell(std::uint64_t{count})});
  }
  fig.print(std::cout);

  // --- census ---
  std::set<std::string> fac_countries;
  std::set<std::uint32_t> fac_metros;
  for (const auto& fac : topo.facilities()) {
    fac_countries.insert(topo.metro(fac.metro).country);
    fac_metros.insert(fac.metro.value);
  }
  std::set<std::string> ixp_countries;
  std::set<std::uint32_t> ixp_metros;
  for (const auto& ixp : topo.ixps()) {
    ixp_countries.insert(topo.metro(ixp.metro).country);
    ixp_metros.insert(ixp.metro.value);
  }
  std::size_t multi_ixp = 0;
  std::size_t multi_fac = 0;
  for (const auto& as : topo.ases()) {
    multi_ixp += as.ixps.size() > 1;
    multi_fac += as.facilities.size() > 1;
  }

  Table census({"Census item", "Value"});
  census.add_row({"Facilities",
                  Table::cell(std::uint64_t{topo.facilities().size()})});
  census.add_row({"Facility countries",
                  Table::cell(std::uint64_t{fac_countries.size()})});
  census.add_row({"Facility metros",
                  Table::cell(std::uint64_t{fac_metros.size()})});
  census.add_row({"IXPs", Table::cell(std::uint64_t{topo.ixps().size()})});
  census.add_row({"IXP countries",
                  Table::cell(std::uint64_t{ixp_countries.size()})});
  census.add_row({"IXP metros", Table::cell(std::uint64_t{ixp_metros.size()})});
  census.add_row(
      {"Facilities per IXP (avg)",
       Table::cell(static_cast<double>(topo.facilities().size()) /
                   static_cast<double>(topo.ixps().size()))});
  census.add_row({"ASes at >1 IXP",
                  Table::percent(static_cast<double>(multi_ixp) /
                                 static_cast<double>(topo.ases().size()))});
  census.add_row({"ASes at >1 facility",
                  Table::percent(static_cast<double>(multi_fac) /
                                 static_cast<double>(topo.ases().size()))});
  census.print(std::cout);

  bench::note("\nshape check: Zipf-shaped metro sizes with the familiar "
              "hubs on top; metros hold several times more facilities than "
              "IXPs; most ASes are multi-facility, a majority multi-IXP.");
  return 0;
}
