// Section 5 / 7 baseline comparison: CFS vs DNS-based geolocation (DRoP)
// vs a commercial-style IP geolocation database.
//
// Paper: of 13,889 peering interfaces, 29% had no PTR record, 55% of the
// remainder encoded no location, and only 32% could be DNS-geolocated at
// all (and only to city granularity); IP geolocation is reliable only at
// country level, with content-provider space collapsing to headquarters.
#include "common.h"

using namespace cfs;

int main() {
  bench::header("Baselines — CFS vs DNS (DRoP) vs IP geolocation",
                "DNS: 29% no PTR, 55% of rest no hint, 32% geolocated "
                "(city-grained); GeoIP reliable only at country level; CFS "
                "resolves 70.65% at *facility* grain with >90% accuracy");

  auto run = bench::standard_paper_run();
  Pipeline& pipeline = *run.pipeline;
  const Topology& topo = pipeline.topology();

  // --- DNS breakdown over observed peering interfaces ---
  std::size_t no_ptr = 0;
  std::size_t ptr_no_hint = 0;
  std::size_t metro_hint = 0;
  std::size_t facility_hint = 0;
  std::size_t dns_metro_correct = 0;
  std::size_t dns_metro_scored = 0;

  // --- GeoIP over the same population ---
  std::size_t geo_entries = 0;
  std::size_t geo_country_correct = 0;
  std::size_t geo_metro_correct = 0;

  for (const auto& [addr, inf] : run.report.interfaces) {
    const Interface* iface = topo.find_interface(addr);
    const auto truth_metro =
        iface ? std::optional<MetroId>(
                    topo.metro_of(topo.router(iface->router).facility))
              : std::nullopt;

    const auto ptr = pipeline.dns().ptr(addr);
    if (!ptr) {
      ++no_ptr;
    } else {
      const auto hint = pipeline.drop().parse(*ptr);
      switch (hint.level) {
        case DnsGeoHint::Level::None: ++ptr_no_hint; break;
        case DnsGeoHint::Level::Metro: ++metro_hint; break;
        case DnsGeoHint::Level::Facility: ++facility_hint; break;
      }
      if (hint.level != DnsGeoHint::Level::None && truth_metro) {
        ++dns_metro_scored;
        dns_metro_correct += hint.metro == *truth_metro;
      }
    }

    if (const auto geo = pipeline.geoip().lookup(addr); geo && truth_metro) {
      ++geo_entries;
      geo_country_correct +=
          geo->country == topo.metro(*truth_metro).country;
      geo_metro_correct += geo->metro == *truth_metro;
    }
  }

  const double population =
      static_cast<double>(run.report.observed_interfaces());
  Table dns({"DNS (DRoP) metric", "Value"});
  dns.add_row({"Interfaces with no PTR record",
               Table::percent(no_ptr / population)});
  dns.add_row({"PTR but no location hint",
               Table::percent(ptr_no_hint / population)});
  dns.add_row({"Geolocated to a metro",
               Table::percent(metro_hint / population)});
  dns.add_row({"Geolocated to a facility",
               Table::percent(facility_hint / population)});
  dns.add_row({"Metro correctness of DNS hints",
               dns_metro_scored == 0
                   ? "n/a"
                   : Table::percent(static_cast<double>(dns_metro_correct) /
                                    dns_metro_scored)});
  dns.print(std::cout);

  Table geo({"IP geolocation metric", "Value"});
  geo.add_row({"Coverage", Table::percent(geo_entries / population)});
  geo.add_row({"Country-level accuracy",
               geo_entries == 0
                   ? "n/a"
                   : Table::percent(static_cast<double>(geo_country_correct) /
                                    geo_entries)});
  geo.add_row({"Metro-level accuracy",
               geo_entries == 0
                   ? "n/a"
                   : Table::percent(static_cast<double>(geo_metro_correct) /
                                    geo_entries)});
  geo.print(std::cout);

  const auto oracle =
      pipeline.validation().oracle_interface_accuracy(run.report);
  Table cfs_table({"CFS metric", "Value"});
  cfs_table.add_row({"Facility-level resolution",
                     Table::percent(run.report.resolved_fraction())});
  cfs_table.add_row({"Additionally city-constrained",
                     Table::percent(
                         static_cast<double>(
                             run.report.city_constrained(topo)) /
                         population)});
  cfs_table.add_row({"Facility accuracy of resolutions",
                     Table::percent(oracle.accuracy())});
  cfs_table.add_row({"City accuracy of resolutions",
                     Table::percent(oracle.city_accuracy())});
  cfs_table.print(std::cout);

  bench::note("\nshape check: CFS resolves more interfaces at facility "
              "grain than DNS can even geolocate at any grain; GeoIP is "
              "fine for countries, poor for metros, useless for "
              "facilities.");
  return 0;
}
