// Extension: bilateral vs multilateral peering (Section 2's route servers,
// per the companion technique "Inferring Multilateral Peering").
//
// Measures how much of the observed public peering fabric rides on route
// servers, the coverage limit imposed by BGP-capable looking glasses, and
// an ablation over the generator's route-server adoption rate.
#include "common.h"
#include "core/multilateral.h"

using namespace cfs;

namespace {

struct WorldStats {
  double rs_ixp_share = 0.0;        // IXPs operating a route server
  double rs_session_share = 0.0;    // member ports with an RS session
  double multilateral_share = 0.0;  // public links that are multilateral
};

WorldStats ground_truth_stats(const Topology& topo) {
  WorldStats stats;
  std::size_t rs_ixps = 0;
  std::size_t ports = 0;
  std::size_t rs_ports = 0;
  for (const auto& ixp : topo.ixps()) {
    rs_ixps += ixp.has_route_server;
    for (const auto& port : ixp.ports) {
      ++ports;
      rs_ports += port.route_server_session;
    }
  }
  std::size_t public_links = 0;
  std::size_t multilateral = 0;
  for (const auto& link : topo.links()) {
    if (link.type != LinkType::PublicPeering) continue;
    ++public_links;
    multilateral += link.multilateral;
  }
  if (!topo.ixps().empty())
    stats.rs_ixp_share =
        static_cast<double>(rs_ixps) / static_cast<double>(topo.ixps().size());
  if (ports > 0)
    stats.rs_session_share =
        static_cast<double>(rs_ports) / static_cast<double>(ports);
  if (public_links > 0)
    stats.multilateral_share =
        static_cast<double>(multilateral) / static_cast<double>(public_links);
  return stats;
}

}  // namespace

int main() {
  bench::header("Extension — route servers and multilateral peering",
                "Section 2: an increasing number of IXPs offer route "
                "servers; multilateral sessions dominate membership counts "
                "at large European exchanges, and LG BGP data is the lens "
                "that separates them from bilateral sessions");

  auto run = bench::standard_paper_run();
  Pipeline& pipeline = *run.pipeline;

  const WorldStats truth = ground_truth_stats(pipeline.topology());
  Table world({"Ground truth", "Value"});
  world.add_row({"IXPs with a route server", Table::percent(truth.rs_ixp_share)});
  world.add_row({"Member ports with an RS session",
                 Table::percent(truth.rs_session_share)});
  world.add_row({"Public sessions that are multilateral",
                 Table::percent(truth.multilateral_share)});
  world.print(std::cout);

  // Inference over the observed crossings.
  MultilateralInference inference(pipeline.topology(),
                                  pipeline.looking_glasses());
  std::vector<PeeringObservation> observations;
  for (const LinkInference& link : run.report.links)
    observations.push_back(link.obs);
  const auto stats = inference.survey(observations);

  Table inferred({"Observed public sessions", "Count"});
  inferred.add_row({"Classified bilateral",
                    Table::cell(std::uint64_t{stats.bilateral})});
  inferred.add_row({"Classified multilateral",
                    Table::cell(std::uint64_t{stats.multilateral})});
  inferred.add_row({"Unknown (no BGP looking glass in near AS)",
                    Table::cell(std::uint64_t{stats.unknown})});
  inferred.add_row({"BGP-LG coverage of ASes",
                    Table::percent(inference.bgp_lg_coverage())});
  inferred.print(std::cout);

  // Ablation: how the multilateral share of the world scales with
  // route-server adoption.
  bench::note("\nroute-server adoption ablation (fresh small-scale worlds):");
  Table ablation({"route_server_prob", "Multilateral share of public links"});
  for (const double adoption : {0.0, 0.3, 0.7, 1.0}) {
    GeneratorConfig config = GeneratorConfig::small_scale();
    config.route_server_prob = adoption;
    const Topology world_topo = generate_topology(config);
    const WorldStats s = ground_truth_stats(world_topo);
    ablation.add_row({Table::cell(adoption, 1),
                      Table::percent(s.multilateral_share)});
  }
  ablation.print(std::cout);

  bench::note("\nshape check: multilateral share grows monotonically with "
              "route-server adoption; classification is exact where a BGP "
              "looking glass exists and abstains elsewhere.");
  return 0;
}
