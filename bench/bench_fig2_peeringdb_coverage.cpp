// Figure 2: facilities per AS from operators' own (NOC) websites vs the
// fraction of those facilities present in PeeringDB — the measurement that
// motivated the paper's database-assembly step.
#include "common.h"

using namespace cfs;

int main() {
  bench::header("Figure 2 — PeeringDB coverage vs NOC websites",
                "152 ASes checked; PeeringDB missing 1,424 AS-facility "
                "links across 61 ASes; 4 ASes had no facility listed; "
                "coverage fraction falls with footprint size");

  Pipeline pipeline(PipelineConfig::paper_scale());
  const auto& db = pipeline.facility_db();

  const auto& report = db.coverage_report();
  Table table({"AS (by footprint rank)", "Website facilities",
               "In PeeringDB", "Fraction"});
  // Print every 8th AS to keep the series readable; the CSV-style series
  // underlying the figure is the full report.
  for (std::size_t i = 0; i < report.size(); i += 8) {
    const auto& cov = report[i];
    const double fraction =
        cov.website_facilities == 0
            ? 0.0
            : static_cast<double>(cov.peeringdb_facilities) /
                  static_cast<double>(cov.website_facilities);
    table.add_row({pipeline.topology().as_of(cov.asn).name,
                   Table::cell(std::uint64_t{cov.website_facilities}),
                   Table::cell(std::uint64_t{cov.peeringdb_facilities}),
                   Table::percent(fraction)});
  }
  table.print(std::cout);

  const auto totals = db.coverage_totals();
  Table agg({"Aggregate", "Value"});
  agg.add_row({"ASes checked against NOC websites",
               Table::cell(std::uint64_t{totals.checked_ases})});
  agg.add_row({"AS-facility links missing from PeeringDB",
               Table::cell(std::uint64_t{totals.missing_links})});
  agg.add_row({"ASes with missing links",
               Table::cell(std::uint64_t{totals.ases_with_missing})});
  agg.add_row({"ASes with no PeeringDB facility at all",
               Table::cell(std::uint64_t{totals.ases_without_any_record})});
  agg.print(std::cout);

  bench::note("\nshape check: a large minority of checked ASes have "
              "PeeringDB gaps, and the biggest footprints are undercounted "
              "the most.");
  return 0;
}
