// Figure 10: number of peering interfaces per target AS, broken down by
// inferred peering type (public local / public remote / private
// cross-connect / private tethering), globally and per region.
#include <map>

#include "common.h"

using namespace cfs;

namespace {

struct TypeCounts {
  std::size_t public_local = 0;
  std::size_t public_remote = 0;
  std::size_t xconnect = 0;
  std::size_t tether = 0;

  [[nodiscard]] std::size_t total() const {
    return public_local + public_remote + xconnect + tether;
  }
};

}  // namespace

int main() {
  bench::header("Figure 10 — peering interfaces by type per target AS",
                "CDNs (Google/Akamai/...) peer predominantly over public "
                "IXP fabric; Tier-1 transit ASes rely on private "
                "interconnects; Europe dominates interface counts (VP "
                "footprint), with significant variance even among Tier-1s");

  auto run = bench::standard_paper_run();
  const Topology& topo = run.pipeline->topology();

  // (target, region?) -> counts ; region nullopt = global
  std::map<std::pair<std::uint32_t, int>, TypeCounts> counts;
  constexpr int global_region = -1;

  for (const LinkInference& link : run.report.links) {
    // Attribute the near-side interface to its AS when it is a target.
    const auto is_target = [&](Asn asn) {
      return std::find(run.targets.begin(), run.targets.end(), asn) !=
             run.targets.end();
    };
    if (!is_target(link.obs.near_as)) continue;

    int region = global_region;
    if (link.near_facility)
      region = static_cast<int>(
          topo.metro(topo.metro_of(*link.near_facility)).region);

    auto bump = [&](TypeCounts& tc) {
      switch (link.type) {
        case InterconnectionType::PublicLocal: ++tc.public_local; break;
        case InterconnectionType::PublicRemote: ++tc.public_remote; break;
        case InterconnectionType::PrivateCrossConnect: ++tc.xconnect; break;
        case InterconnectionType::PrivateTethering: ++tc.tether; break;
        case InterconnectionType::PrivateRemote: ++tc.public_remote; break;
        case InterconnectionType::Unknown: break;
      }
    };
    bump(counts[{link.obs.near_as.value, global_region}]);
    if (region != global_region)
      bump(counts[{link.obs.near_as.value, region}]);
  }

  auto print_block = [&](const std::string& title, int region) {
    std::cout << "\n-- " << title << " --\n";
    Table table({"Target AS", "Type", "Public local", "Public remote",
                 "X-connect", "Tethering", "Total"});
    for (const Asn target : run.targets) {
      const auto it = counts.find({target.value, region});
      if (it == counts.end()) continue;
      const TypeCounts& tc = it->second;
      table.add_row({topo.as_of(target).name,
                     std::string(as_type_name(topo.as_of(target).type)),
                     Table::cell(std::uint64_t{tc.public_local}),
                     Table::cell(std::uint64_t{tc.public_remote}),
                     Table::cell(std::uint64_t{tc.xconnect}),
                     Table::cell(std::uint64_t{tc.tether}),
                     Table::cell(std::uint64_t{tc.total()})});
    }
    if (table.rows() > 0) table.print(std::cout);
  };

  print_block("Global", global_region);
  print_block("Europe", static_cast<int>(Region::Europe));
  print_block("North America", static_cast<int>(Region::NorthAmerica));
  print_block("Asia", static_cast<int>(Region::Asia));

  // Aggregate public-vs-private share per AS type for the shape check.
  std::map<AsType, std::pair<std::size_t, std::size_t>> shares;  // pub, priv
  for (const auto& [key, tc] : counts) {
    if (key.second != global_region) continue;
    const auto& as = topo.as_of(Asn(key.first));
    shares[as.type].first += tc.public_local + tc.public_remote;
    shares[as.type].second += tc.xconnect + tc.tether;
  }
  Table agg({"Target type", "Public share", "Private share"});
  for (const auto& [type, share] : shares) {
    const double total = static_cast<double>(share.first + share.second);
    if (total == 0) continue;
    agg.add_row({std::string(as_type_name(type)),
                 Table::percent(share.first / total),
                 Table::percent(share.second / total)});
  }
  agg.print(std::cout);

  bench::note("\nshape check: content targets skew public, transit/Tier-1 "
              "targets skew private, and Europe carries the largest "
              "interface counts.");
  return 0;
}
