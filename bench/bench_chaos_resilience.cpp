// Chaos sweep: Figure 8 extended from *static* data removal to *dynamic*
// measurement-plane faults. A single intensity knob t drives the whole
// fault plane (LG outages, VP churn, PeeringDB withholding, probe
// timeouts); we measure how coverage and agreement with the fault-free
// reference decay as t grows, and assert the fault-accounting invariant
// at every point. Exits nonzero if the invariant breaks or the pipeline
// fails to produce a report under heavy faults.
//
// Flags: --scale tiny|small|paper (default small), --reps N (default 2).
#include <unordered_map>

#include "common.h"
#include "util/flags.h"

using namespace cfs;

namespace {

struct SweepPoint {
  double intensity = 0.0;
  double coverage = 0.0;   // resolved now / resolved in reference
  double agreement = 0.0;  // same facility as reference, among still-resolved
  FaultMetrics faults;
};

FaultPlan plan_at(double t) {
  FaultPlan plan;
  plan.lg_outage_fraction = t;
  plan.lg_outage_start_horizon_s = 600.0;
  plan.lg_outage_duration_s = 1200.0;
  plan.vp_churn_fraction = 0.4 * t;
  plan.vp_churn_horizon_s = 3600.0;
  plan.peeringdb_withheld = 0.4 * t;
  plan.probe_timeout_rate = 0.2 * t;
  plan.lg_ban_burst = t > 0.0 ? 8 : 0;
  return plan;
}

bool invariant_holds(const FaultMetrics& fm) {
  return fm.traces_attempted == fm.traces_kept + fm.traces_unreachable +
                                    fm.probes_abandoned +
                                    fm.probes_skipped_open_circuit;
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const std::string scale = flags.get("scale", "small");
  const int repetitions = flags.get_int("reps", 2);

  bench::header("Chaos sweep — accuracy under measurement-plane faults",
                "(extends Fig 8) static data removal degrades inference "
                "gracefully; here the *measurement plane* degrades instead: "
                "coverage should fall smoothly with fault intensity while "
                "agreement among still-resolved interfaces stays high, and "
                "the pipeline must never crash or miscount a probe");

  PipelineConfig base_config = scale == "tiny"    ? PipelineConfig::tiny()
                               : scale == "paper" ? PipelineConfig::paper_scale()
                                                  : PipelineConfig::small_scale();

  const std::vector<double> intensities = {0.0, 0.1, 0.25, 0.5};
  std::unordered_map<double, SweepPoint> accumulated;
  bool violated = false;

  for (int rep = 0; rep < repetitions; ++rep) {
    PipelineConfig config = base_config;
    config.seed = base_config.seed + static_cast<std::uint64_t>(rep) * 977;

    // Fault-free reference for this seed.
    config.faults = FaultPlan{};
    Pipeline reference_pipeline(config);
    auto reference_traces = reference_pipeline.initial_campaign(
        reference_pipeline.default_targets(3, 3), 0.6);
    const CfsReport reference =
        reference_pipeline.run_cfs(std::move(reference_traces));
    std::unordered_map<Ipv4, FacilityId> reference_facilities;
    for (const auto& [addr, inf] : reference.interfaces)
      if (inf.resolved()) reference_facilities.emplace(addr, inf.facility());
    if (reference_facilities.empty()) continue;

    for (const double t : intensities) {
      config.faults = plan_at(t);
      Pipeline degraded(config);
      auto traces =
          degraded.initial_campaign(degraded.default_targets(3, 3), 0.6);
      const CfsReport report = degraded.run_cfs(std::move(traces));

      std::size_t resolved = 0, agree = 0;
      for (const auto& [addr, fac] : reference_facilities) {
        const auto* inf = report.find(addr);
        if (inf == nullptr || !inf->resolved()) continue;
        ++resolved;
        agree += inf->facility() == fac;
      }
      SweepPoint& point = accumulated[t];
      point.intensity = t;
      point.coverage +=
          static_cast<double>(resolved) / reference_facilities.size();
      point.agreement +=
          resolved > 0 ? static_cast<double>(agree) / resolved : 0.0;
      point.faults = report.metrics.faults;  // last rep's counters, for shape

      if (!invariant_holds(report.metrics.faults)) {
        std::cerr << "ACCOUNTING VIOLATION at t=" << t
                  << ": attempted=" << report.metrics.faults.traces_attempted
                  << " != kept+unreachable+abandoned+skipped\n";
        violated = true;
      }
      if (t == 0.0 && report.metrics.faults.records_withheld != 0) {
        std::cerr << "ZERO-INTENSITY VIOLATION: withheld records at t=0\n";
        violated = true;
      }
    }
  }

  Table table({"Intensity", "Coverage", "Agreement", "Attempted", "Kept",
               "Retries", "Failovers", "Skipped", "Withheld"});
  std::vector<double> keys;
  for (const auto& [key, point] : accumulated) keys.push_back(key);
  std::sort(keys.begin(), keys.end());
  for (const double key : keys) {
    const SweepPoint& point = accumulated[key];
    table.add_row(
        {Table::percent(point.intensity),
         Table::percent(point.coverage / repetitions),
         Table::percent(point.agreement / repetitions),
         Table::cell(std::uint64_t{point.faults.traces_attempted}),
         Table::cell(std::uint64_t{point.faults.traces_kept}),
         Table::cell(std::uint64_t{point.faults.retries}),
         Table::cell(std::uint64_t{point.faults.failovers}),
         Table::cell(std::uint64_t{point.faults.probes_skipped_open_circuit}),
         Table::cell(std::uint64_t{point.faults.records_withheld})});
  }
  table.print(std::cout);

  bench::note("\nshape check: coverage decays smoothly (no cliff) as the "
              "fault intensity grows; agreement among the interfaces that "
              "*do* stay resolved degrades far more slowly — retries and "
              "same-metro failover keep the surviving constraint set "
              "consistent with the fault-free run.");
  return violated ? 1 : 0;
}
