// Micro-benchmarks (google-benchmark) for the performance-critical kernels:
// longest-prefix match, monotonic bounds test, AS-path computation,
// traceroute synthesis, and an end-to-end tiny CFS run.
#include <benchmark/benchmark.h>

#include "alias/mbt.h"
#include "core/pipeline.h"

namespace cfs {
namespace {

void BM_PrefixTrieLookup(benchmark::State& state) {
  Rng rng(1);
  PrefixTrie<std::uint32_t> trie;
  for (int i = 0; i < 10000; ++i)
    trie.insert(Prefix(Ipv4(static_cast<std::uint32_t>(rng.next())),
                       8 + static_cast<int>(rng.uniform(17))),
                static_cast<std::uint32_t>(i));
  std::vector<Ipv4> probes;
  for (int i = 0; i < 1024; ++i)
    probes.emplace_back(static_cast<std::uint32_t>(rng.next()));
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(trie.lookup(probes[i++ & 1023]));
  }
}
BENCHMARK(BM_PrefixTrieLookup);

void BM_MonotonicBoundsTest(benchmark::State& state) {
  IpIdSeries a;
  IpIdSeries b;
  for (int i = 0; i < 12; ++i) {
    a.push_back({0.2 * i, static_cast<std::uint16_t>(100 + 37 * i)});
    b.push_back({0.2 * i + 0.1, static_cast<std::uint16_t>(118 + 37 * i)});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(monotonic_bounds_test(a, b));
  }
}
BENCHMARK(BM_MonotonicBoundsTest);

void BM_RoutingTableComputation(benchmark::State& state) {
  static const Topology topo = generate_topology(GeneratorConfig::small_scale());
  std::size_t i = 0;
  for (auto _ : state) {
    // Fresh oracle each round so the per-destination table is recomputed.
    RoutingOracle oracle(topo);
    const auto& ases = topo.ases();
    benchmark::DoNotOptimize(
        oracle.as_path(ases[i % ases.size()].asn, ases.front().asn));
    ++i;
  }
}
BENCHMARK(BM_RoutingTableComputation);

void BM_TracerouteSynthesis(benchmark::State& state) {
  static Topology topo = generate_topology(GeneratorConfig::small_scale());
  static RoutingOracle oracle(topo);
  static ForwardingEngine forwarding(topo, oracle);
  static TracerouteEngine engine(topo, forwarding, EngineConfig{}, 7);
  VantagePoint vp;
  vp.id = VantagePointId(0);
  vp.attach = topo.routers().front().id;
  vp.asn = topo.routers().front().owner;
  vp.access_ms = 5.0;

  Rng rng(3);
  const auto ases = topo.ases();
  std::vector<Ipv4> targets;
  for (int i = 0; i < 256; ++i) {
    const auto& as = ases[rng.index(ases.size())];
    targets.push_back(as.prefixes.front().at(1000 + i));
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.trace(vp, targets[i++ & 255]));
  }
}
BENCHMARK(BM_TracerouteSynthesis);

void BM_CfsTinyEndToEnd(benchmark::State& state) {
  for (auto _ : state) {
    PipelineConfig config = PipelineConfig::tiny();
    config.cfs.max_iterations = 5;
    Pipeline pipeline(config);
    auto traces =
        pipeline.initial_campaign(pipeline.default_targets(1, 1), 0.4);
    benchmark::DoNotOptimize(pipeline.run_cfs(std::move(traces)));
  }
}
BENCHMARK(BM_CfsTinyEndToEnd)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace cfs

BENCHMARK_MAIN();
