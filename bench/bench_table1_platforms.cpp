// Table 1: characteristics of the four traceroute measurement platforms
// (vantage points, distinct ASNs, countries; plus the unique totals).
#include "common.h"

using namespace cfs;

int main() {
  bench::header("Table 1 — measurement platforms",
                "RIPE Atlas 6385 VPs / 2410 ASNs / 160 countries; LGs "
                "1877/438/79; iPlane 147/117/35; Ark 107/71/41; "
                "total unique 8517/2638/170");

  Pipeline pipeline(PipelineConfig::paper_scale());
  const auto& vps = pipeline.vantage_points();
  const auto& topo = pipeline.topology();

  Table table({"Platform", "Vantage Pts.", "ASNs", "Countries"});
  for (const Platform platform :
       {Platform::RipeAtlas, Platform::LookingGlass, Platform::IPlane,
        Platform::Ark}) {
    const auto stats = vps.stats(platform, topo);
    table.add_row({std::string(platform_name(platform)),
                   Table::cell(std::uint64_t{stats.vantage_points}),
                   Table::cell(std::uint64_t{stats.distinct_asns}),
                   Table::cell(std::uint64_t{stats.distinct_countries})});
  }
  const auto totals = vps.totals(topo);
  table.add_row({"Total unique",
                 Table::cell(std::uint64_t{totals.vantage_points}),
                 Table::cell(std::uint64_t{totals.distinct_asns}),
                 Table::cell(std::uint64_t{totals.distinct_countries})});
  table.print(std::cout);

  bench::note("\nshape check: Atlas dominates VP count; looking glasses "
              "second; iPlane/Ark small but geographically diverse.");
  return 0;
}
