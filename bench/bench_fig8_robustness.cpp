// Figure 8: robustness of CFS to missing facility data. Facilities are
// removed from the assembled database in random order; we measure (a) the
// fraction of previously resolved interfaces that become unresolved and
// (b) the fraction whose inference *changes* (converges elsewhere),
// averaged over repetitions.
#include <unordered_map>

#include "common.h"

using namespace cfs;

namespace {

struct SweepPoint {
  std::size_t removed = 0;
  double unresolved_fraction = 0.0;
  double changed_fraction = 0.0;
};

}  // namespace

int main() {
  bench::header("Figure 8 — sensitivity to removed facilities",
                "removing ~50% of facilities unresolves ~30% of previously "
                "resolved interfaces; removing 80% unresolves ~60%; "
                "removing 30% changes ~20% of inferences, and the "
                "changed-inference curve is non-monotonic");

  const int repetitions = 3;
  const std::vector<double> removal_fractions = {0.1, 0.2, 0.3, 0.5, 0.65,
                                                 0.8};

  // Baseline run (small scale keeps the sweep affordable on one core).
  PipelineConfig base_config = PipelineConfig::small_scale();
  std::unordered_map<std::size_t, SweepPoint> accumulated;

  for (int rep = 0; rep < repetitions; ++rep) {
    PipelineConfig config = base_config;
    config.seed = base_config.seed + static_cast<std::uint64_t>(rep) * 101;
    Pipeline baseline(config);
    auto traces =
        baseline.initial_campaign(baseline.default_targets(3, 3), 0.6);
    const CfsReport reference = baseline.run_cfs(std::move(traces));

    std::unordered_map<Ipv4, FacilityId> reference_facilities;
    for (const auto& [addr, inf] : reference.interfaces)
      if (inf.resolved()) reference_facilities.emplace(addr, inf.facility());
    if (reference_facilities.empty()) continue;

    const std::size_t total_facilities =
        baseline.topology().facilities().size();
    Rng removal_rng(config.seed ^ 0xfade);
    const auto order =
        removal_rng.sample_indices(total_facilities, total_facilities);

    for (const double fraction : removal_fractions) {
      const auto removed_count =
          static_cast<std::size_t>(fraction * total_facilities);

      // Fresh pipeline with the same seed, then degrade its database.
      Pipeline degraded(config);
      for (std::size_t i = 0; i < removed_count; ++i)
        degraded.facility_db().remove_facility(
            FacilityId(static_cast<std::uint32_t>(order[i])));

      auto degraded_traces =
          degraded.initial_campaign(degraded.default_targets(3, 3), 0.6);
      const CfsReport degraded_report =
          degraded.run_cfs(std::move(degraded_traces));

      std::size_t lost = 0;
      std::size_t changed = 0;
      for (const auto& [addr, fac] : reference_facilities) {
        const auto* inf = degraded_report.find(addr);
        if (inf == nullptr || !inf->resolved())
          ++lost;
        else if (inf->facility() != fac)
          ++changed;
      }
      SweepPoint& point = accumulated[removed_count];
      point.removed = removed_count;
      point.unresolved_fraction +=
          static_cast<double>(lost) / reference_facilities.size();
      point.changed_fraction +=
          static_cast<double>(changed) / reference_facilities.size();
    }
  }

  Table table({"Facilities removed", "Resolved -> unresolved",
               "Changed inference"});
  std::vector<std::size_t> keys;
  for (const auto& [key, point] : accumulated) keys.push_back(key);
  std::sort(keys.begin(), keys.end());
  for (const std::size_t key : keys) {
    const SweepPoint& point = accumulated[key];
    table.add_row({Table::cell(std::uint64_t{point.removed}),
                   Table::percent(point.unresolved_fraction / repetitions),
                   Table::percent(point.changed_fraction / repetitions)});
  }
  table.print(std::cout);

  bench::note("\nshape check: unresolved fraction grows steadily with "
              "removals; changed-inference fraction rises then falls "
              "(heavy removals destroy the constraints needed to converge "
              "at all, so fewer *wrong* convergences remain).");
  return 0;
}
