// Incremental CFS core: full-engine vs dirty-set/cache engine.
//
// Runs the same campaign through both engines at small and paper scale,
// verifies the reports are identical (links, resolved interfaces,
// per-iteration history), and reports what the incremental path saved:
// observations re-classified per alias refresh, observations re-processed
// by the constraint passes, and wall clock. The acceptance bar is a >= 2x
// reduction in re-classified observations per refresh at paper scale.
#include "common.h"

namespace {

using namespace cfs;

CfsReport run_engine(PipelineConfig config, bool incremental) {
  config.cfs.incremental = incremental;
  Pipeline pipeline(config);
  auto traces =
      pipeline.initial_campaign(pipeline.default_targets(5, 5), 0.6);
  return pipeline.run_cfs(std::move(traces));
}

std::size_t mismatches(const CfsReport& full, const CfsReport& inc) {
  std::size_t bad = 0;
  bad += full.resolved_per_iteration != inc.resolved_per_iteration;
  bad += full.iterations_run != inc.iterations_run;
  bad += full.traces_used != inc.traces_used;
  if (full.links.size() != inc.links.size()) {
    ++bad;
  } else {
    for (std::size_t i = 0; i < full.links.size(); ++i) {
      const LinkInference& a = full.links[i];
      const LinkInference& b = inc.links[i];
      if (!(a.obs == b.obs) || a.type != b.type ||
          a.near_facility != b.near_facility ||
          a.far_facility != b.far_facility ||
          a.far_by_proximity != b.far_by_proximity)
        ++bad;
    }
  }
  if (full.interfaces.size() != inc.interfaces.size()) {
    ++bad;
  } else {
    for (const auto& [addr, inf] : full.interfaces) {
      const InterfaceInference* other = inc.find(addr);
      if (other == nullptr || inf.candidates != other->candidates ||
          inf.remote_suspect != other->remote_suspect ||
          inf.resolved_iteration != other->resolved_iteration)
        ++bad;
    }
  }
  return bad;
}

std::size_t total_constrained(const CfsMetrics& m) {
  std::size_t total = 0;
  for (const auto& row : m.iterations) total += row.constrained_observations;
  return total;
}

double per_refresh(std::size_t total, std::size_t refreshes) {
  return refreshes == 0 ? 0.0
                        : static_cast<double>(total) /
                              static_cast<double>(refreshes);
}

// Returns true when equivalence holds and the refresh reduction meets the
// 2x bar (the bar is only demanded at paper scale).
bool compare_at(const char* label, const PipelineConfig& config,
                bool demand_reduction) {
  const CfsReport full = run_engine(config, false);
  const CfsReport inc = run_engine(config, true);

  const std::size_t bad = mismatches(full, inc);
  const double full_reclass = per_refresh(
      full.metrics.reclassified_observations, full.metrics.alias_refreshes);
  const double inc_reclass = per_refresh(
      inc.metrics.reclassified_observations, inc.metrics.alias_refreshes);
  const double reduction =
      inc_reclass > 0.0 ? full_reclass / inc_reclass
                        : (full_reclass > 0.0 ? 1e9 : 1.0);

  Table table({"Engine", "Wall ms", "Refreshes", "Reclassified obs/refresh",
               "Constrain work", "Resolved"});
  table.add_row({"full", Table::cell(full.metrics.total_ms),
                 Table::cell(std::uint64_t{full.metrics.alias_refreshes}),
                 Table::cell(full_reclass),
                 Table::cell(std::uint64_t{total_constrained(full.metrics)}),
                 Table::cell(std::uint64_t{full.resolved_interfaces()})});
  table.add_row({"incremental", Table::cell(inc.metrics.total_ms),
                 Table::cell(std::uint64_t{inc.metrics.alias_refreshes}),
                 Table::cell(inc_reclass),
                 Table::cell(std::uint64_t{total_constrained(inc.metrics)}),
                 Table::cell(std::uint64_t{inc.resolved_interfaces()})});
  std::cout << "\n-- " << label << " --\n";
  table.print(std::cout);
  std::cout << "replayed from cache: " << inc.metrics.replayed_observations
            << " obs across " << inc.metrics.alias_refreshes
            << " refreshes; re-classification reduction: " << Table::cell(
                   reduction)
            << "x\n";
  std::cout << "report equivalence: "
            << (bad == 0 ? "identical" : "MISMATCH") << " (" << bad
            << " differing fields)\n";

  bool ok = bad == 0;
  if (demand_reduction && reduction < 2.0) {
    std::cout << "FAIL: re-classification reduction below the 2x bar\n";
    ok = false;
  }
  return ok;
}

}  // namespace

int main() {
  cfs::bench::header("Incremental CFS engine",
                     "not a paper artefact — implementation check: the "
                     "dirty-set engine must match the full engine exactly "
                     "while re-deriving far fewer observations per refresh");

  bool ok = compare_at("small scale", cfs::PipelineConfig::small_scale(),
                       /*demand_reduction=*/false);
  ok &= compare_at("paper scale", cfs::PipelineConfig::paper_scale(),
                   /*demand_reduction=*/true);

  std::cout << "\n" << (ok ? "OK" : "FAILED") << "\n";
  return ok ? 0 : 1;
}
