// Shared plumbing for the table/figure reproduction harnesses.
//
// Every harness prints: the paper artefact it regenerates, the paper's
// reported values for orientation, and the values measured on the
// synthetic ecosystem. Absolute numbers differ (the substrate is a
// simulator); the *shape* — who wins, rough factors, crossovers — is the
// reproduction target (see EXPERIMENTS.md).
#pragma once

#include <iostream>
#include <string_view>

#include "core/pipeline.h"
#include "util/table.h"

namespace cfs::bench {

inline void header(std::string_view artefact, std::string_view paper_says) {
  std::cout << "\n=== " << artefact << " ===\n";
  std::cout << "paper: " << paper_says << "\n\n";
}

inline void note(std::string_view text) { std::cout << text << "\n"; }

// Standard paper-scale run shared by several harnesses.
struct StandardRun {
  std::unique_ptr<Pipeline> pipeline;
  CfsReport report;
  std::vector<Asn> targets;
};

inline StandardRun standard_paper_run(int content_targets = 5,
                                      int transit_targets = 5,
                                      PipelineConfig config =
                                          PipelineConfig::paper_scale()) {
  StandardRun run;
  run.pipeline = std::make_unique<Pipeline>(config);
  run.targets =
      run.pipeline->default_targets(content_targets, transit_targets);
  auto traces = run.pipeline->initial_campaign(run.targets, 0.6);
  run.report = run.pipeline->run_cfs(std::move(traces));
  return run;
}

}  // namespace cfs::bench
