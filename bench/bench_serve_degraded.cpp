// Degraded-mode behaviour of the resident inference service under
// transport chaos and overload (docs/ROBUSTNESS.md): the seeded
// SocketFaultPlane fleet (src/serve/chaos.h) hammers an in-process daemon
// through three escalating scenarios — a clean baseline, a torn-frame /
// dribbled-byte / disconnect chaos mix, and a connection flood against a
// deliberately small connection cap with a tight request deadline. For
// each scenario we report validated-answer p50/p99 latency, the shed
// rate, and the outcome ledger; samples land in BENCH_serve_degraded.json
// for the observability-artifacts CI job.
//
// The shape to watch: desyncs and transport errors must be zero in every
// scenario (chaos may slow the daemon, never corrupt it), the flood
// scenario's shed rate should be substantial (the cap is doing its job),
// and ok-request p99 under flood should stay bounded — overload control
// exists so the requests the daemon does accept finish promptly.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "common.h"
#include "io/export.h"
#include "serve/chaos.h"
#include "serve/client.h"
#include "serve/handlers.h"
#include "serve/server.h"
#include "util/flags.h"

namespace {

using namespace cfs;

double percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const auto index = static_cast<std::size_t>(
      p * static_cast<double>(sorted.size() - 1));
  return sorted[index];
}

struct Scenario {
  std::string name;
  ServeOptions options;   // overload knobs for this daemon instance
  ChaosConfig config;     // fleet behaviour (socket_path filled at run time)
};

struct Outcome {
  std::string name;
  ChaosStats stats;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
};

JsonValue outcome_json(const Outcome& outcome) {
  const ChaosStats& s = outcome.stats;
  JsonValue::Object o;
  o.emplace("scenario", outcome.name);
  o.emplace("attempted", s.attempted);
  o.emplace("ok", s.ok);
  o.emplace("shed", s.shed);
  o.emplace("shed_rate", s.shed_rate());
  o.emplace("torn", s.torn);
  o.emplace("disconnected", s.disconnected);
  o.emplace("cut", s.cut);
  o.emplace("desyncs", s.desyncs);
  o.emplace("transport_errors", s.transport_errors);
  o.emplace("reconnects", s.reconnects);
  o.emplace("ok_p50_ms", outcome.p50_ms);
  o.emplace("ok_p99_ms", outcome.p99_ms);
  return JsonValue(std::move(o));
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const std::string scale = flags.get("scale", "tiny");
  const int requests = static_cast<int>(flags.get_int("requests", 80));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 20260809));

  bench::header("serve degraded mode (docs/ROBUSTNESS.md)",
                "n/a — operational harness for overload control");

  PipelineConfig config =
      scale == "small" ? PipelineConfig::small_scale() : PipelineConfig::tiny();
  Pipeline pipeline(config);
  auto traces = pipeline.initial_campaign(pipeline.default_targets(1, 1), 0.6);
  auto state = ServeState::from_report(pipeline.run_cfs(std::move(traces)),
                                       "pipeline", 0);

  // Expected answers straight from the canonical export, plus one
  // guaranteed miss so the "absent" path is exercised too.
  std::vector<ChaosExpectation> lookups;
  for (const JsonValue& entry :
       state->report_json.at("interfaces").as_array())
    lookups.push_back({entry.at("address").as_string(), entry.dump()});
  if (lookups.empty()) {
    std::cout << "FAILED: world has no observed interfaces to look up\n";
    return 1;
  }
  lookups.push_back({"203.0.113.250", "absent"});

  std::vector<Scenario> scenarios;
  {
    Scenario baseline;
    baseline.name = "baseline";
    baseline.options.threads = 4;
    baseline.config.clients = 8;
    baseline.config.requests_per_client = requests;
    baseline.config.seed = seed;
    scenarios.push_back(std::move(baseline));
  }
  {
    Scenario chaos;
    chaos.name = "transport_chaos";
    chaos.options.threads = 4;
    chaos.options.idle_timeout_ms = 5000;
    chaos.config.clients = 8;
    chaos.config.requests_per_client = requests;
    chaos.config.seed = seed + 1;
    chaos.config.plan.byte_write_fraction = 0.2;
    chaos.config.plan.torn_frame_fraction = 0.15;
    chaos.config.plan.disconnect_fraction = 0.1;
    chaos.config.plan.stall_fraction = 0.05;
    chaos.config.plan.stall_ms = 5.0;
    chaos.config.plan.read_stall_fraction = 0.05;
    scenarios.push_back(std::move(chaos));
  }
  {
    Scenario flood;
    flood.name = "connection_flood";
    flood.options.threads = 2;
    flood.options.max_connections = 4;
    flood.options.request_deadline_ms = 1000;
    flood.config.clients = 16;
    flood.config.requests_per_client = requests;
    flood.config.seed = seed + 2;
    flood.config.plan.disconnect_fraction = 0.25;  // reconnect pressure
    scenarios.push_back(std::move(flood));
  }

  std::vector<Outcome> outcomes;
  Table table({"Scenario", "Attempted", "OK", "Shed %", "Cut", "Desync",
               "p50 ms", "p99 ms"});
  for (Scenario& scenario : scenarios) {
    scenario.options.socket_path =
        "/tmp/cfs_bench_degraded_" + std::to_string(::getpid()) + "_" +
        scenario.name + ".sock";
    scenario.options.install_signal_handlers = false;
    Server server(scenario.options, state);
    std::thread daemon([&server] { (void)server.run(); });
    for (int attempt = 0;; ++attempt) {
      try {
        ServeClient probe;
        probe.connect(server.socket_path());
        break;
      } catch (const std::exception&) {
        if (attempt > 400) {
          std::cout << "FAILED: daemon never came up for " << scenario.name
                    << "\n";
          return 1;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
      }
    }

    scenario.config.socket_path = server.socket_path();
    Outcome outcome;
    outcome.name = scenario.name;
    outcome.stats = run_chaos_clients(scenario.config, lookups);
    outcome.p50_ms = percentile(outcome.stats.ok_latency_ms, 0.50);
    outcome.p99_ms = percentile(outcome.stats.ok_latency_ms, 0.99);

    {
      ServeClient admin;
      admin.connect(server.socket_path());
      JsonValue::Object request;
      request.emplace("op", "shutdown");
      (void)admin.request(JsonValue(std::move(request)));
    }
    daemon.join();

    if (!outcome.stats.clean()) {
      std::cout << "FAILED: scenario " << scenario.name << " saw "
                << outcome.stats.desyncs << " desyncs and "
                << outcome.stats.transport_errors << " transport errors\n";
      return 1;
    }
    if (outcome.stats.ok == 0) {
      std::cout << "FAILED: scenario " << scenario.name
                << " validated zero answers\n";
      return 1;
    }

    table.add_row({outcome.name,
                   Table::cell(std::uint64_t{outcome.stats.attempted}),
                   Table::cell(std::uint64_t{outcome.stats.ok}),
                   Table::cell(outcome.stats.shed_rate() * 100.0),
                   Table::cell(std::uint64_t{outcome.stats.cut}),
                   Table::cell(std::uint64_t{outcome.stats.desyncs}),
                   Table::cell(outcome.p50_ms), Table::cell(outcome.p99_ms)});
    outcomes.push_back(std::move(outcome));
  }
  table.print(std::cout);

  // The flood must actually shed or cut: 16 clients on 4 seats cannot all
  // be seated, so silence here means the cap never engaged.
  const Outcome& flood = outcomes.back();
  if (flood.stats.shed + flood.stats.cut == 0) {
    std::cout << "FAILED: connection flood shed nothing — cap inert\n";
    return 1;
  }

  JsonValue::Array runs;
  for (const Outcome& outcome : outcomes)
    runs.emplace_back(outcome_json(outcome));
  JsonValue::Object doc;
  doc.emplace("bench", "serve_degraded");
  doc.emplace("scale", scale);
  doc.emplace("seed", seed);
  doc.emplace("requests_per_client", static_cast<std::uint64_t>(requests));
  doc.emplace("runs", JsonValue(std::move(runs)));

  std::ofstream out("BENCH_serve_degraded.json");
  out << JsonValue(std::move(doc)).pretty() << "\n";
  std::cout << "samples written to BENCH_serve_degraded.json\nOK\n";
  return 0;
}
