// Section 5 router census: the paper found that 39% of observed routers
// implement both public and private peering, and 11.9% of public-peering
// routers hold sessions over two or more IXPs (cross-IXP facilities).
#include <set>

#include "common.h"

using namespace cfs;

int main() {
  bench::header("Section 5 — multi-role and multi-IXP routers",
                "39% of observed routers carry both public and private "
                "peering; 11.9% of public-peering routers peer across >=2 "
                "IXPs");

  auto run = bench::standard_paper_run();
  const auto stats = run.report.router_stats();

  Table table({"Metric", "Value"});
  table.add_row({"Observed routers (alias-set proxies)",
                 Table::cell(std::uint64_t{stats.routers})});
  table.add_row({"Multi-role (public + private)",
                 Table::percent(stats.routers == 0
                                    ? 0.0
                                    : static_cast<double>(stats.multi_role) /
                                          static_cast<double>(stats.routers))});
  table.add_row({"Public-peering over >= 2 IXPs",
                 Table::percent(stats.routers == 0
                                    ? 0.0
                                    : static_cast<double>(stats.multi_ixp) /
                                          static_cast<double>(stats.routers))});
  table.print(std::cout);

  // Ground-truth comparison over the actual routers touched by links.
  const Topology& topo = run.pipeline->topology();
  std::size_t gt_routers = 0;
  std::size_t gt_multi_role = 0;
  std::size_t gt_multi_ixp = 0;
  for (const auto& router : topo.routers()) {
    bool pub = false;
    bool priv = false;
    std::set<std::uint32_t> ixps;
    for (const LinkId lid : topo.links_of(router.id)) {
      const Link& link = topo.link(lid);
      switch (link.type) {
        case LinkType::PublicPeering:
          pub = true;
          ixps.insert(link.ixp.value);
          break;
        case LinkType::PrivateCrossConnect:
        case LinkType::Tethering:
          priv = true;
          break;
        case LinkType::Backbone:
          break;
      }
    }
    if (!pub && !priv) continue;
    ++gt_routers;
    gt_multi_role += pub && priv;
    gt_multi_ixp += ixps.size() >= 2;
  }
  Table truth({"Ground truth", "Value"});
  truth.add_row({"Routers with any peering",
                 Table::cell(std::uint64_t{gt_routers})});
  truth.add_row({"Multi-role",
                 Table::percent(gt_routers == 0
                                    ? 0.0
                                    : static_cast<double>(gt_multi_role) /
                                          static_cast<double>(gt_routers))});
  truth.add_row({"Multi-IXP",
                 Table::percent(gt_routers == 0
                                    ? 0.0
                                    : static_cast<double>(gt_multi_ixp) /
                                          static_cast<double>(gt_routers))});
  truth.print(std::cout);

  bench::note("\nshape check: a large minority of routers are multi-role; "
              "a noticeable single-digit-to-low-teens share peers across "
              "multiple exchanges from one facility.");
  return 0;
}
