// Query-plane throughput and latency for the resident inference service
// (`cfs serve`, src/serve/). An in-process daemon on a Unix socket is
// hammered by 1..16 concurrent clients doing lookups; for each client
// count we report QPS plus p50/p99 per-request latency, and the samples
// land in BENCH_serve.json for the observability-artifacts CI job.
//
// The shape to watch: QPS should climb with client count until the
// worker pool saturates, and p99 should stay in the same order of
// magnitude as p50 — a p99 cliff means the completion path (poll loop +
// self-pipe) is serialising, which is exactly the regression this
// harness exists to catch.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "common.h"
#include "io/export.h"
#include "serve/client.h"
#include "serve/handlers.h"
#include "serve/server.h"
#include "util/flags.h"

namespace {

using namespace cfs;

struct Run {
  int clients = 0;
  std::size_t requests = 0;
  double wall_ms = 0.0;
  double qps = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
};

double percentile(std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const auto index = static_cast<std::size_t>(
      p * static_cast<double>(sorted.size() - 1));
  return sorted[index];
}

JsonValue to_json(const std::vector<Run>& runs, const std::string& scale,
                  int server_threads, std::size_t requests_per_client) {
  JsonValue::Array samples;
  for (const Run& run : runs) {
    JsonValue::Object o;
    o.emplace("clients", run.clients);
    o.emplace("requests", static_cast<std::uint64_t>(run.requests));
    o.emplace("wall_ms", run.wall_ms);
    o.emplace("qps", run.qps);
    o.emplace("p50_us", run.p50_us);
    o.emplace("p99_us", run.p99_us);
    samples.emplace_back(std::move(o));
  }
  JsonValue::Object doc;
  doc.emplace("bench", "serve_throughput");
  doc.emplace("scale", scale);
  doc.emplace("server_threads", server_threads);
  doc.emplace("requests_per_client",
              static_cast<std::uint64_t>(requests_per_client));
  doc.emplace("runs", std::move(samples));
  return JsonValue(std::move(doc));
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const std::string scale = flags.get("scale", "tiny");
  const auto requests_per_client =
      static_cast<std::size_t>(flags.get_int("requests", 400));
  const int server_threads = static_cast<int>(flags.get_int("threads", 4));

  bench::header("serve throughput (docs/SERVE.md)",
                "n/a — operational harness for the resident service");

  PipelineConfig config =
      scale == "small" ? PipelineConfig::small_scale() : PipelineConfig::tiny();
  Pipeline pipeline(config);
  auto traces = pipeline.initial_campaign(pipeline.default_targets(1, 1), 0.6);
  auto state =
      ServeState::from_report(pipeline.run_cfs(std::move(traces)),
                              "pipeline", 0);
  const auto& interfaces = state->report_json.at("interfaces").as_array();
  if (interfaces.empty()) {
    std::cout << "FAILED: world has no observed interfaces to look up\n";
    return 1;
  }

  ServeOptions options;
  options.socket_path = "/tmp/cfs_bench_serve_" +
                        std::to_string(::getpid()) + ".sock";
  options.threads = server_threads;
  options.install_signal_handlers = false;
  Server server(options, state);
  std::thread daemon([&server] { (void)server.run(); });
  // Wait for the listener.
  for (int attempt = 0;; ++attempt) {
    try {
      ServeClient probe;
      probe.connect(server.socket_path());
      break;
    } catch (const std::exception&) {
      if (attempt > 400) {
        std::cout << "FAILED: daemon never came up\n";
        return 1;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }

  std::vector<Run> runs;
  Table table({"Clients", "Requests", "Wall ms", "QPS", "p50 us", "p99 us"});
  for (const int clients : {1, 2, 4, 8, 16}) {
    std::vector<std::vector<double>> latencies(
        static_cast<std::size_t>(clients));
    std::atomic<int> failures{0};
    const auto start = std::chrono::steady_clock::now();
    std::vector<std::thread> workers;
    workers.reserve(static_cast<std::size_t>(clients));
    for (int c = 0; c < clients; ++c) {
      workers.emplace_back([&, c] {
        auto& mine = latencies[static_cast<std::size_t>(c)];
        mine.reserve(requests_per_client);
        try {
          ServeClient client;
          client.connect(server.socket_path());
          for (std::size_t i = 0; i < requests_per_client; ++i) {
            const JsonValue& entry =
                interfaces[(static_cast<std::size_t>(c) * 131 + i) %
                           interfaces.size()];
            JsonValue::Object request;
            request.emplace("op", "lookup");
            request.emplace("ip", entry.at("address"));
            const auto t0 = std::chrono::steady_clock::now();
            const JsonValue response =
                client.request(JsonValue(std::move(request)));
            const auto t1 = std::chrono::steady_clock::now();
            if (!response.at("ok").as_bool()) {
              failures.fetch_add(1);
              continue;
            }
            mine.push_back(
                std::chrono::duration<double, std::micro>(t1 - t0).count());
          }
        } catch (const std::exception&) {
          failures.fetch_add(1);
        }
      });
    }
    for (auto& worker : workers) worker.join();
    const auto end = std::chrono::steady_clock::now();
    if (failures.load() != 0) {
      std::cout << "FAILED: " << failures.load()
                << " request failures at " << clients << " clients\n";
      return 1;
    }

    std::vector<double> all;
    for (const auto& mine : latencies)
      all.insert(all.end(), mine.begin(), mine.end());
    std::sort(all.begin(), all.end());
    Run run;
    run.clients = clients;
    run.requests = all.size();
    run.wall_ms =
        std::chrono::duration<double, std::milli>(end - start).count();
    run.qps = run.wall_ms > 0.0
                  ? static_cast<double>(all.size()) / (run.wall_ms / 1000.0)
                  : 0.0;
    run.p50_us = percentile(all, 0.50);
    run.p99_us = percentile(all, 0.99);
    runs.push_back(run);
    table.add_row({Table::cell(std::uint64_t{
                       static_cast<std::uint64_t>(clients)}),
                   Table::cell(std::uint64_t{run.requests}),
                   Table::cell(run.wall_ms), Table::cell(run.qps),
                   Table::cell(run.p50_us), Table::cell(run.p99_us)});
  }
  table.print(std::cout);

  // Drain the daemon before reporting.
  {
    ServeClient admin;
    admin.connect(server.socket_path());
    JsonValue::Object request;
    request.emplace("op", "shutdown");
    (void)admin.request(JsonValue(std::move(request)));
  }
  daemon.join();

  std::ofstream out("BENCH_serve.json");
  out << to_json(runs, scale, server.resolved_threads(), requests_per_client)
             .pretty()
      << "\n";
  std::cout << "samples written to BENCH_serve.json\nOK\n";
  return 0;
}
