// Figure 9: fraction of ground-truth locations matching inferred locations,
// by validation source and inferred link type — plus the simulator's
// omniscient oracle score the paper could only approximate.
#include "common.h"

using namespace cfs;

int main() {
  bench::header("Figure 9 — validation accuracy by source and link type",
                "direct feedback 474/540 (88%, 95% city); BGP communities "
                "76/83 public & 94/106 x-conn; DNS 91/100 & 191/213; IXP "
                "websites 322/325 public & 44/48 remote; >=90% overall, "
                "wrong inferences land in the right city");

  auto run = bench::standard_paper_run();
  const auto breakdown = run.pipeline->validation().validate(run.report);

  Table table({"Source", "Link type", "Correct/Total", "Facility acc.",
               "City acc."});
  for (const auto& [key, acc] : breakdown) {
    if (acc.total == 0) continue;
    table.add_row({std::string(validation_source_name(key.first)),
                   std::string(validation_link_type_name(key.second)),
                   std::to_string(acc.correct) + "/" +
                       std::to_string(acc.total),
                   Table::percent(acc.accuracy()),
                   Table::percent(acc.city_accuracy())});
  }
  table.print(std::cout);

  const auto oracle =
      run.pipeline->validation().oracle_interface_accuracy(run.report);
  Table summary({"Oracle (all resolved interfaces)", "Value"});
  summary.add_row({"Scored interfaces", Table::cell(std::uint64_t{oracle.total})});
  summary.add_row({"Facility-level accuracy", Table::percent(oracle.accuracy())});
  summary.add_row({"City-level accuracy", Table::percent(oracle.city_accuracy())});
  summary.print(std::cout);

  // Link-type confusion (the inference quality behind the buckets).
  const auto confusion =
      run.pipeline->validation().link_type_confusion(run.report);
  Table conf({"Inferred", "Ground truth", "Count"});
  for (const auto& [pair, count] : confusion)
    conf.add_row({std::string(interconnection_type_name(pair.first)),
                  std::string(interconnection_type_name(pair.second)),
                  Table::cell(std::uint64_t{count})});
  conf.print(std::cout);

  bench::note("\nshape check: every populated source/type bucket sits near "
              "or above 85-90% facility-level, and city-level accuracy "
              "approaches 100% — wrong answers are same-metro wrong, as in "
              "the paper.");
  return 0;
}
