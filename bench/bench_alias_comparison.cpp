// Ablation: MIDAR-style alias resolution vs the classical Ally pairwise
// test, scored against ground truth on a generated world. MIDAR's design
// goal is a near-zero false-positive rate (CFS Step 3 intersects candidate
// sets across alias-set members, so one bad merge can poison several
// interfaces); Ally is cheaper per pair but looser.
#include <map>

#include "alias/ally.h"
#include "alias/midar.h"
#include "common.h"
#include "topology/generator.h"
#include "util/rng.h"

using namespace cfs;

int main() {
  bench::header("Ablation — alias resolution: MIDAR vs Ally",
                "MIDAR (Keys et al.): very few false positives at the cost "
                "of heavy probing; Ally (Rocketfuel): 3 probes per pair but "
                "a tolerance window that can merge distinct busy routers");

  const Topology topo = generate_topology(GeneratorConfig::small_scale());

  // Candidate pairs: same-router pairs (positives) and cross-router pairs
  // within the same AS (hard negatives, similar traffic levels).
  struct Pair {
    Ipv4 a, b;
    bool truth;
  };
  std::vector<Pair> pairs;
  Rng rng(17);
  for (const auto& router : topo.routers()) {
    if (router.interfaces.size() >= 2 && rng.chance(0.4))
      pairs.push_back(Pair{router.interfaces[0], router.interfaces[1], true});
  }
  const auto routers = topo.routers();
  for (int i = 0; i < 400; ++i) {
    const auto& r1 = routers[rng.index(routers.size())];
    const auto& r2 = routers[rng.index(routers.size())];
    if (r1.id == r2.id) continue;
    pairs.push_back(Pair{r1.local_address, r2.local_address, false});
  }

  // --- Ally over every pair ---
  AllyResolver ally(topo, 5);
  std::size_t ally_tp = 0, ally_fp = 0, ally_fn = 0, ally_tn = 0,
              ally_skip = 0;
  for (const Pair& pair : pairs) {
    switch (ally.test_pair(pair.a, pair.b)) {
      case AllyVerdict::Alias:
        ++(pair.truth ? ally_tp : ally_fp);
        break;
      case AllyVerdict::NotAlias:
        ++(pair.truth ? ally_fn : ally_tn);
        break;
      case AllyVerdict::Unresponsive:
        ++ally_skip;
        break;
    }
  }

  // --- MIDAR over the union of addresses ---
  std::vector<Ipv4> addrs;
  for (const Pair& pair : pairs) {
    addrs.push_back(pair.a);
    addrs.push_back(pair.b);
  }
  AliasResolver midar(topo, 5);
  const AliasSets sets = midar.resolve(addrs);
  std::size_t midar_tp = 0, midar_fp = 0, midar_fn = 0, midar_tn = 0,
              midar_skip = 0;
  for (const Pair& pair : pairs) {
    const int sa = sets.set_of(pair.a);
    const int sb = sets.set_of(pair.b);
    if (sa < 0 || sb < 0) {
      ++midar_skip;
      continue;
    }
    const bool merged = sa == sb;
    if (merged)
      ++(pair.truth ? midar_tp : midar_fp);
    else
      ++(pair.truth ? midar_fn : midar_tn);
  }

  auto rate = [](std::size_t num, std::size_t den) {
    return den == 0 ? std::string("n/a")
                    : Table::percent(static_cast<double>(num) /
                                     static_cast<double>(den));
  };

  Table table({"Technique", "Precision", "Recall", "False positives",
               "Unresponsive pairs", "Probes sent"});
  table.add_row({"Ally", rate(ally_tp, ally_tp + ally_fp),
                 rate(ally_tp, ally_tp + ally_fn),
                 Table::cell(std::uint64_t{ally_fp}),
                 Table::cell(std::uint64_t{ally_skip}),
                 Table::cell(std::uint64_t{ally.probes_sent()})});
  table.add_row({"MIDAR", rate(midar_tp, midar_tp + midar_fp),
                 rate(midar_tp, midar_tp + midar_fn),
                 Table::cell(std::uint64_t{midar_fp}),
                 Table::cell(std::uint64_t{midar_skip}),
                 Table::cell(std::uint64_t{midar.probes_sent()})});
  table.print(std::cout);

  bench::note("\nshape check: both precise on this workload; MIDAR must "
              "show zero false positives (the CFS Step 3 contract), Ally "
              "spends an order of magnitude fewer probes but cannot give "
              "that guarantee on busy counters.");
  return 0;
}
