// Figure 7: fraction of interfaces resolved to a single facility vs CFS
// iteration, for all platforms combined and for RIPE-Atlas-only /
// looking-glass-only probing. Also reports the DNS (DRoP) geolocation
// baseline and the alias-constraint ablation (DESIGN.md §4.1).
#include <iomanip>

#include "common.h"

using namespace cfs;

namespace {

struct Curve {
  std::string label;
  std::vector<double> fraction;  // per iteration, cumulative
  double final_fraction = 0.0;
  std::size_t observed = 0;
};

Curve run_variant(const std::string& label,
                  std::optional<Platform> platform_filter, bool use_alias,
                  bool use_border_mapping = true) {
  PipelineConfig config = PipelineConfig::paper_scale();
  config.cfs.platform_filter = platform_filter;
  config.cfs.use_alias_constraints = use_alias;
  config.cfs.use_border_mapping = use_border_mapping;
  Pipeline pipeline(config);

  // Initial campaign restricted to the platform under test.
  std::vector<const VantagePoint*> probes;
  for (const VantagePoint& vp : pipeline.vantage_points().all())
    if (!platform_filter || vp.platform == *platform_filter)
      probes.push_back(&vp);
  // Same per-platform sampling ratio as the combined run.
  std::vector<const VantagePoint*> sampled;
  for (std::size_t i = 0; i < probes.size(); i += 2)
    sampled.push_back(probes[i]);

  std::vector<Ipv4> targets;
  for (const Asn asn : pipeline.default_targets(5, 5)) {
    const auto t = MeasurementCampaign::targets_for(pipeline.topology(), asn);
    targets.insert(targets.end(), t.begin(), t.end());
  }
  auto traces = pipeline.campaign().run(sampled, targets);
  const CfsReport report = pipeline.run_cfs(std::move(traces));

  Curve curve;
  curve.label = label;
  curve.observed = report.observed_interfaces();
  for (const std::size_t resolved : report.resolved_per_iteration)
    curve.fraction.push_back(curve.observed == 0
                                 ? 0.0
                                 : static_cast<double>(resolved) /
                                       static_cast<double>(curve.observed));
  curve.final_fraction =
      curve.fraction.empty() ? 0.0 : curve.fraction.back();
  return curve;
}

}  // namespace

int main() {
  bench::header("Figure 7 — CFS convergence vs iterations",
                "~40% of interfaces resolved within 10 iterations, "
                "diminishing returns after 40, 70.65% at the 100-iteration "
                "timeout; Atlas resolves ~2x more per iteration than LGs; "
                "DNS-based geolocation covers only 32%, below CFS's first "
                "5 iterations");

  std::vector<Curve> curves;
  curves.push_back(run_variant("All platforms", std::nullopt, true));
  curves.push_back(run_variant("RIPE Atlas", Platform::RipeAtlas, true));
  curves.push_back(run_variant("Looking Glasses", Platform::LookingGlass,
                               true));
  curves.push_back(run_variant("All, no alias constraints (ablation)",
                               std::nullopt, false));
  curves.push_back(run_variant("All, no border mapping (ablation)",
                               std::nullopt, true, false));

  // DNS baseline over the combined run's interface population.
  PipelineConfig config = PipelineConfig::paper_scale();
  Pipeline pipeline(config);
  auto traces = pipeline.initial_campaign(pipeline.default_targets(5, 5), 0.6);
  const CfsReport report = pipeline.run_cfs(std::move(traces));
  std::size_t dns_geolocated = 0;
  for (const auto& [addr, inf] : report.interfaces) {
    const auto hint = pipeline.drop().geolocate(addr);
    dns_geolocated += hint.level != DnsGeoHint::Level::None;
  }
  const double dns_fraction =
      report.observed_interfaces() == 0
          ? 0.0
          : static_cast<double>(dns_geolocated) /
                static_cast<double>(report.observed_interfaces());

  std::vector<std::string> headers = {"Iteration"};
  for (const Curve& curve : curves) headers.push_back(curve.label);
  Table table(std::move(headers));
  const std::size_t max_len = [&] {
    std::size_t m = 0;
    for (const Curve& c : curves) m = std::max(m, c.fraction.size());
    return m;
  }();
  for (std::size_t i = 0; i < max_len; i += 5) {
    std::vector<std::string> row = {std::to_string(i + 1)};
    for (const Curve& curve : curves)
      row.push_back(i < curve.fraction.size()
                        ? Table::percent(curve.fraction[i])
                        : Table::percent(curve.final_fraction));
    table.add_row(std::move(row));
  }
  table.print(std::cout);

  Table summary({"Series", "Final resolved", "Observed interfaces"});
  for (const Curve& curve : curves)
    summary.add_row({curve.label, Table::percent(curve.final_fraction),
                     Table::cell(std::uint64_t{curve.observed})});
  summary.add_row({"DNS (DRoP) geolocatable at any granularity",
                   Table::percent(dns_fraction),
                   Table::cell(std::uint64_t{report.observed_interfaces()})});
  summary.print(std::cout);

  bench::note("\nshape check: steep first iterations, alias-refresh bumps, "
              "long diminishing tail; Atlas curve above LG curve; the "
              "no-alias ablation ends materially lower; DNS baseline sits "
              "below the early-iteration CFS fraction.");
  return 0;
}
