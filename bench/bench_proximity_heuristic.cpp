#include <map>
#include <set>

// Section 4.4: switch-proximity heuristic validation (the AMS-IX
// experiment) plus a remote-peering threshold sweep.
//
// On the largest exchange, the heuristic's proximity ranking is trained on
// peerings whose far end is unambiguous (single-port members) and tested
// on members connected at two or more facilities; the paper found the
// exact facility 77% of the time, with failures landing on the same
// backhaul switch and ties forcing abstention.
#include "common.h"

using namespace cfs;

int main() {
  bench::header("Section 4.4 — switch-proximity heuristic on the largest IXP",
                "77% exact facility; failures are same-backhaul neighbours; "
                "no inference when candidates hang off the same switch");

  Pipeline pipeline(PipelineConfig::paper_scale());
  const Topology& topo = pipeline.topology();

  // The paper runs this on AMS-IX; we aggregate over every exchange whose
  // membership includes multi-facility members, which plays the same role
  // at simulator scale.
  ProximityHeuristic heuristic;
  struct TestCase {
    IxpId ixp;
    FacilityId near_fac;
    FacilityId far_fac;  // truth
    std::vector<FacilityId> candidates;
  };
  std::vector<TestCase> tests;

  // Only the session's far end (link.b) is fabric-proximity-determined:
  // the near member picked its own port, then traffic is delivered to the
  // far member's most proximate port — the quantity the heuristic predicts.
  for (const auto& link : topo.links()) {
    if (link.type != LinkType::PublicPeering) continue;
    const Ixp& ixp = topo.ixp(link.ixp);
    const Asn far_member = topo.router(link.b.router).owner;
    const auto far_ports = ixp.ports_of(far_member);
    const FacilityId near_fac = topo.router(link.a.router).facility;
    const FacilityId far_fac = topo.router(link.b.router).facility;

    std::vector<FacilityId> port_facilities;
    for (const auto* port : far_ports)
      port_facilities.push_back(ixp.switches[port->access_switch].facility);
    std::sort(port_facilities.begin(), port_facilities.end());
    port_facilities.erase(
        std::unique(port_facilities.begin(), port_facilities.end()),
        port_facilities.end());

    if (port_facilities.size() <= 1) {
      // Unambiguous far end: training observation.
      heuristic.observe(ixp.id, near_fac, far_fac);
    } else {
      tests.push_back(TestCase{ixp.id, near_fac, far_fac, port_facilities});
    }
  }

  std::size_t exact = 0;
  std::size_t wrong = 0;
  std::size_t wrong_same_backhaul = 0;
  std::size_t abstained = 0;
  for (const TestCase& test : tests) {
    const Ixp& ixp = topo.ixp(test.ixp);
    const auto inferred =
        heuristic.infer_far(test.ixp, test.near_fac, test.candidates);
    if (!inferred) {
      ++abstained;
      continue;
    }
    if (*inferred == test.far_fac) {
      ++exact;
      continue;
    }
    ++wrong;
    const auto sw_inferred = ixp.access_switch_at(*inferred);
    const auto sw_truth = ixp.access_switch_at(test.far_fac);
    if (sw_inferred && sw_truth &&
        ixp.switch_distance(*sw_inferred, *sw_truth) <= 1)
      ++wrong_same_backhaul;
  }

  Table table({"Metric", "Value"});
  table.add_row({"Exchanges considered",
                 Table::cell(std::uint64_t{topo.ixps().size()})});
  table.add_row({"Training pairs (single-facility members)",
                 Table::cell(std::uint64_t{heuristic.observations()})});
  table.add_row({"Test links (multi-facility members)",
                 Table::cell(std::uint64_t{tests.size()})});
  const std::size_t decided = exact + wrong;
  table.add_row({"Exact facility (of decided)",
                 decided == 0 ? "n/a"
                              : Table::percent(static_cast<double>(exact) /
                                               static_cast<double>(decided))});
  table.add_row({"Wrong but same backhaul (of wrong)",
                 wrong == 0
                     ? "n/a"
                     : Table::percent(static_cast<double>(wrong_same_backhaul) /
                                      static_cast<double>(wrong))});
  table.add_row({"Abstained (ties / no data)",
                 tests.empty()
                     ? "n/a"
                     : Table::percent(static_cast<double>(abstained) /
                                      static_cast<double>(tests.size()))});
  table.print(std::cout);

  // --- remote-peering threshold sweep (ablation) ---
  bench::note("\nremote-peering RTT threshold sweep (public links, truth "
              "from port records):");
  auto run_traces = pipeline.initial_campaign(pipeline.default_targets(4, 4),
                                              0.5);
  Table sweep({"Threshold (ms)", "Precision", "Recall"});
  // Build observations once via a quick CFS-less classification pass.
  InterfaceAsnMap map(pipeline.ip2asn());
  HopClassifier classifier(pipeline.ip2asn(), map);
  const auto observations = classifier.classify_all(run_traces);
  for (const double threshold : {1.0, 2.0, 3.0, 5.0, 8.0, 12.0}) {
    RemotePeeringDetector detector(
        RemoteDetectorConfig{.rtt_delta_threshold_ms = threshold});
    std::size_t tp = 0;
    std::size_t fp = 0;
    std::size_t fn = 0;
    for (const auto& obs : observations) {
      if (obs.kind != PeeringKind::Public) continue;
      const auto truth =
          pipeline.validation().true_link_type(obs);
      if (truth == InterconnectionType::Unknown) continue;
      const bool truth_remote = truth == InterconnectionType::PublicRemote;
      const bool inferred_remote = detector.far_side_remote(obs);
      tp += truth_remote && inferred_remote;
      fp += !truth_remote && inferred_remote;
      fn += truth_remote && !inferred_remote;
    }
    sweep.add_row(
        {Table::cell(threshold, 1),
         tp + fp == 0 ? "n/a"
                      : Table::percent(static_cast<double>(tp) / (tp + fp)),
         tp + fn == 0 ? "n/a"
                      : Table::percent(static_cast<double>(tp) / (tp + fn))});
  }
  sweep.print(std::cout);

  bench::note("\nshape check: exact-facility rate in the 70-90% band with "
              "same-backhaul near-misses; the RTT threshold has a broad "
              "sweet spot of a few milliseconds.");
  return 0;
}
