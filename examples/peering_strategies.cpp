// Case study: peering-strategy census.
//
// Section 5 of the paper closes by observing that network types differ
// sharply in how they engineer interconnection: CDNs lean on public IXP
// fabric, Tier-1 backbones on private interconnects, with large variance
// even within a class. This example reproduces that census from inferred
// data alone, using the FootprintAnalyzer.
#include <iostream>
#include <map>

#include "analysis/footprint.h"
#include "core/pipeline.h"
#include "util/table.h"

using namespace cfs;

int main() {
  Pipeline pipeline(PipelineConfig::small_scale());
  const Topology& topo = pipeline.topology();

  auto traces = pipeline.initial_campaign(pipeline.default_targets(4, 4), 0.7);
  const CfsReport report = pipeline.run_cfs(std::move(traces));
  FootprintAnalyzer analyzer(topo, report);

  // Top networks by located interconnections.
  Table table({"Network", "Type", "Located", "Metros", "Public share",
               "Remote share"});
  std::size_t shown = 0;
  for (const Asn asn : analyzer.ranking()) {
    if (!topo.has_as(asn)) continue;
    const auto fp = analyzer.footprint(asn);
    if (fp.types.total() < 5) continue;
    const double remote_share =
        static_cast<double>(fp.types.public_remote + fp.types.private_remote) /
        static_cast<double>(fp.types.total());
    table.add_row({topo.as_of(asn).name,
                   std::string(as_type_name(topo.as_of(asn).type)),
                   Table::cell(std::uint64_t{fp.located}),
                   Table::cell(std::uint64_t{fp.metros()}),
                   Table::percent(fp.types.public_share()),
                   Table::percent(remote_share)});
    if (++shown == 15) break;
  }
  table.print(std::cout);

  // Aggregate strategy per network class.
  std::map<AsType, std::pair<double, int>> by_type;  // sum share, count
  for (const auto& [asn_value, fp] : analyzer.all()) {
    if (!topo.has_as(Asn(asn_value)) || fp.types.total() < 5) continue;
    auto& [sum, count] = by_type[topo.as_of(Asn(asn_value)).type];
    sum += fp.types.public_share();
    ++count;
  }
  Table agg({"Network class", "Networks", "Avg public share"});
  for (const auto& [type, entry] : by_type)
    agg.add_row({std::string(as_type_name(type)),
                 Table::cell(std::int64_t{entry.second}),
                 Table::percent(entry.first / entry.second)});
  agg.print(std::cout);

  std::cout << "\nreading: content networks should sit near the top of the "
               "public-share column, transit backbones near the bottom — "
               "the Section 5 observation, from inference alone.\n";
  return 0;
}
