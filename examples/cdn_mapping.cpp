// Case study: map a content delivery network's peering fabric.
//
// Mirrors the paper's Google/Akamai study (Section 5): trace toward the
// largest CDN from every platform, infer where each of its peering
// interfaces lives and over which engineering option it peers, then print
// the CDN's footprint by metro and peering type. This is the workload the
// paper's introduction motivates: knowing *which building* a CDN's
// interconnections occupy.
#include <iostream>
#include <map>

#include "core/pipeline.h"
#include "util/table.h"

using namespace cfs;

int main() {
  Pipeline pipeline(PipelineConfig::small_scale());
  const Topology& topo = pipeline.topology();

  const Asn cdn = pipeline.default_targets(1, 0).front();
  const auto& cdn_as = topo.as_of(cdn);
  std::cout << "mapping " << cdn_as.name << " (AS" << cdn.value << "), "
            << "present at " << cdn_as.facilities.size() << " facilities, "
            << cdn_as.ixps.size() << " IXPs\n\n";

  auto traces = pipeline.initial_campaign({cdn}, 0.8);
  const CfsReport report = pipeline.run_cfs(std::move(traces));

  // The CDN's own peering interfaces: near or far side of any crossing.
  std::map<std::uint32_t, std::map<InterconnectionType, int>> by_metro;
  int total = 0;
  for (const LinkInference& link : report.links) {
    std::optional<FacilityId> facility;
    if (link.obs.near_as == cdn && link.near_facility)
      facility = link.near_facility;
    else if (link.obs.far_as == cdn && link.far_facility)
      facility = link.far_facility;
    if (!facility) continue;
    ++by_metro[topo.metro_of(*facility).value][link.type];
    ++total;
  }

  Table table({"Metro", "Public local", "Public remote", "Cross-connect",
               "Tethering"});
  for (const auto& [metro, types] : by_metro) {
    auto count = [&](InterconnectionType t) {
      const auto it = types.find(t);
      return Table::cell(
          std::uint64_t{it == types.end() ? 0u : static_cast<unsigned>(it->second)});
    };
    table.add_row({topo.metro(MetroId(metro)).name,
                   count(InterconnectionType::PublicLocal),
                   count(InterconnectionType::PublicRemote),
                   count(InterconnectionType::PrivateCrossConnect),
                   count(InterconnectionType::PrivateTethering)});
  }
  table.print(std::cout);
  std::cout << "\n" << total << " located " << cdn_as.name
            << " interconnections across " << by_metro.size() << " metros\n";

  // Which IXPs carry the CDN's public peering, and from which facility.
  Table ixps({"IXP", "Facility (inferred)", "Sessions"});
  std::map<std::pair<std::uint32_t, std::uint32_t>, int> sessions;
  for (const LinkInference& link : report.links) {
    if (link.obs.kind != PeeringKind::Public) continue;
    if (link.obs.near_as != cdn || !link.near_facility) continue;
    ++sessions[{link.obs.ixp.value, link.near_facility->value}];
  }
  for (const auto& [key, count] : sessions)
    ixps.add_row({topo.ixp(IxpId(key.first)).name,
                  topo.facility(FacilityId(key.second)).name,
                  Table::cell(std::int64_t{count})});
  if (ixps.rows() > 0) ixps.print(std::cout);
  return 0;
}
