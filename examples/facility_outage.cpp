// Case study: facility-outage blast radius.
//
// One of the paper's motivating applications (Section 1): once
// interconnections carry building-level coordinates, you can ask what
// shares fate. This example runs CFS, ranks facilities by criticality with
// the ResilienceAnalyzer, and reports which AS pairs would lose their only
// inferred interconnection at the most critical site — then cross-checks
// the single-homed verdicts against ground truth.
#include <iostream>

#include "analysis/resilience.h"
#include "core/pipeline.h"
#include "util/table.h"

using namespace cfs;

int main() {
  Pipeline pipeline(PipelineConfig::small_scale());
  const Topology& topo = pipeline.topology();

  auto traces = pipeline.initial_campaign(pipeline.default_targets(2, 2), 0.6);
  const CfsReport report = pipeline.run_cfs(std::move(traces));

  ResilienceAnalyzer resilience(topo, report);
  const auto ranking = resilience.criticality_ranking();
  if (ranking.empty()) {
    std::cout << "no located interconnections\n";
    return 1;
  }

  Table top({"Facility", "Metro", "Interconnections", "AS pairs",
             "Single-homed pairs"});
  for (std::size_t i = 0; i < std::min<std::size_t>(8, ranking.size()); ++i) {
    const auto& crit = ranking[i];
    const Facility& fac = topo.facility(crit.facility);
    top.add_row({fac.name, topo.metro(fac.metro).name,
                 Table::cell(std::uint64_t{crit.interconnections}),
                 Table::cell(std::uint64_t{crit.as_pairs}),
                 Table::cell(std::uint64_t{crit.single_homed_pairs})});
  }
  top.print(std::cout);

  const auto& critical = ranking.front();
  const Facility& fac = topo.facility(critical.facility);
  std::cout << "\nblast radius of " << fac.name << ":\n";

  std::size_t confirmed = 0;
  const auto singles = resilience.single_homed_pairs(critical.facility);
  Table pairs({"AS pair", "Truly single-sited?"});
  for (const auto& [a, b] : singles) {
    // Ground-truth check: does the pair interconnect anywhere else?
    int other_sites = 0;
    for (const auto& link : topo.links()) {
      if (link.type == LinkType::Backbone) continue;
      const Asn la = topo.router(link.a.router).owner;
      const Asn lb = topo.router(link.b.router).owner;
      if (std::minmax(la.value, lb.value) != std::minmax(a.value, b.value))
        continue;
      if (topo.router(link.a.router).facility != critical.facility)
        ++other_sites;
    }
    confirmed += other_sites == 0;
    pairs.add_row({topo.as_of(a).name + " - " + topo.as_of(b).name,
                   other_sites == 0 ? "yes" : "no (sites elsewhere)"});
  }
  pairs.print(std::cout);

  std::cout << "\n" << singles.size()
            << " pairs inferred single-homed at this site; " << confirmed
            << " confirmed against ground truth\n";
  return 0;
}
