// Case study: audit remote peering at an exchange.
//
// Roughly 20% of AMS-IX members connected through resellers when the paper
// was written. This example applies the RTT-based detector (Castro et al.,
// adopted by CFS Step 2) to every public-peering crossing observed at the
// largest exchange and compares the verdicts against the exchange's port
// records — exactly the audit an IXP operator or a prospective member
// would run to understand who is actually *in the building*.
#include <iostream>
#include <map>

#include "core/pipeline.h"
#include "util/table.h"

using namespace cfs;

int main() {
  Pipeline pipeline(PipelineConfig::small_scale());
  const Topology& topo = pipeline.topology();

  // Largest exchange by membership.
  const Ixp* big = nullptr;
  for (const auto& ixp : topo.ixps())
    if (big == nullptr || ixp.ports.size() > big->ports.size()) big = &ixp;
  std::cout << "auditing " << big->name << ": " << big->ports.size()
            << " member ports across " << big->facilities().size()
            << " facilities\n\n";

  auto traces = pipeline.initial_campaign(pipeline.default_targets(3, 3), 0.7);
  const CfsReport report = pipeline.run_cfs(std::move(traces));

  const RemotePeeringDetector detector;
  std::map<std::uint32_t, std::pair<bool, double>> verdicts;  // member -> (remote?, delta)
  for (const LinkInference& link : report.links) {
    if (link.obs.kind != PeeringKind::Public || link.obs.ixp != big->id)
      continue;
    const double delta = detector.delta_ms(link.obs);
    auto& verdict = verdicts[link.obs.far_as.value];
    verdict.first = verdict.first || detector.far_side_remote(link.obs);
    verdict.second = std::max(verdict.second, delta);
  }

  std::size_t correct = 0;
  std::size_t scored = 0;
  Table table({"Member", "Max RTT delta (ms)", "Verdict", "Port records"});
  for (const auto& [member, verdict] : verdicts) {
    // Exchange's own records: is any of the member's ports resold?
    bool truth_remote = false;
    for (const auto& port : big->ports)
      if (port.member == Asn(member)) truth_remote |= port.remote;
    ++scored;
    correct += verdict.first == truth_remote;
    table.add_row({topo.as_of(Asn(member)).name,
                   Table::cell(verdict.second, 2),
                   verdict.first ? "remote" : "local",
                   truth_remote ? "reseller" : "direct"});
  }
  table.print(std::cout);

  if (scored > 0)
    std::cout << "\nverdicts matching the exchange's port records: "
              << correct << "/" << scored << " ("
              << static_cast<int>(100.0 * correct / scored) << "%)\n";
  return 0;
}
