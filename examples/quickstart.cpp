// Quickstart: build a small synthetic peering ecosystem, run a traceroute
// campaign, let Constrained Facility Search infer where the interconnections
// live, and print what it found.
//
//   $ ./examples/quickstart
//
// This walks the whole public API surface: Pipeline wires the substrate
// (topology generator, BGP routing, traceroute engines, noisy data
// sources); initial_campaign() collects traces; run_cfs() executes the
// paper's algorithm; the ValidationHarness scores the result against the
// simulator's ground truth.
#include <iostream>

#include "core/pipeline.h"
#include "util/table.h"

using namespace cfs;

int main() {
  // 1. Build the world and its measurement apparatus.
  Pipeline pipeline(PipelineConfig::small_scale());
  const Topology& topo = pipeline.topology();
  std::cout << "ecosystem: " << topo.facilities().size() << " facilities, "
            << topo.ixps().size() << " IXPs, " << topo.ases().size()
            << " ASes, " << pipeline.vantage_points().all().size()
            << " vantage points\n";

  // 2. Trace toward a content provider and a transit network.
  const auto targets = pipeline.default_targets(/*content=*/1, /*transit=*/1);
  auto traces = pipeline.initial_campaign(targets, /*vp_fraction=*/0.5);
  std::cout << "initial campaign: " << traces.size() << " traceroutes\n";

  // 3. Run Constrained Facility Search.
  const CfsReport report = pipeline.run_cfs(std::move(traces));
  std::cout << "CFS: resolved " << report.resolved_interfaces() << " of "
            << report.observed_interfaces()
            << " peering interfaces to a single facility in "
            << report.iterations_run << " iterations\n\n";

  // 4. Show a handful of inferred interconnections.
  Table table({"Near AS", "Far AS", "Type", "Facility"});
  std::size_t shown = 0;
  for (const LinkInference& link : report.links) {
    if (!link.near_facility) continue;
    table.add_row({topo.as_of(link.obs.near_as).name,
                   topo.as_of(link.obs.far_as).name,
                   std::string(interconnection_type_name(link.type)),
                   topo.facility(*link.near_facility).name});
    if (++shown == 12) break;
  }
  table.print(std::cout);

  // 5. Score against ground truth (the simulator's privilege).
  const auto acc = pipeline.validation().oracle_interface_accuracy(report);
  std::cout << "\naccuracy: " << static_cast<int>(acc.accuracy() * 100)
            << "% facility-level, "
            << static_cast<int>(acc.city_accuracy() * 100)
            << "% city-level over " << acc.total << " interfaces\n";
  return 0;
}
