// cfs — command-line front end to the library.
//
//   cfs generate  [--scale tiny|small|paper] [--seed N] [--out FILE]
//       Generate a ground-truth ecosystem and export it as JSON.
//
//   cfs census    [--scale ...] [--seed N]
//       Print the Figure-3-style census of a generated world.
//
//   cfs infer     [--scale ...] [--seed N] [--content N] [--transit N]
//                 [--vp-fraction F] [--report FILE] [--threads N]
//                 [--trace-out FILE]
//                 [--lg-outage F] [--lg-ban-burst N] [--vp-churn F]
//                 [--probe-timeout F] [--pdb-withheld F] [--dns-withheld F]
//                 [--geoip-withheld F] [--fault-seed N]
//       Run the measurement campaign and Constrained Facility Search;
//       print a summary, optionally export the full report as JSON. The
//       fault flags inject degraded-mode conditions (docs/ROBUSTNESS.md).
//       --threads 0 (the default) uses hardware concurrency; reports are
//       byte-identical at every thread count (docs/PARALLELISM.md).
//       --trace-out writes a Chrome trace_event timeline of the run,
//       loadable in chrome://tracing or Perfetto; enabling it never
//       changes the report (docs/OBSERVABILITY.md).
//
//   cfs validate  [--scale ...] [--seed N] [--content N] [--transit N]
//                 [--threads N] [--trace-out FILE]
//                 [fault flags as for infer]
//       Run CFS and score it against every validation source + the oracle.
//
//   cfs diff A.json B.json [--max N] [--ignore p1,p2]
//       Structured comparison of two exported JSON documents (reports or
//       topologies): prints the first divergent path plus up to --max
//       differences, with --ignore dropping subtrees by path prefix
//       (e.g. --ignore /metrics). Exit 0 identical, 1 different.
//
//   cfs serve --socket PATH [--scale ...] [--seed N] [--content N]
//             [--transit N] [--vp-fraction F] [--threads N]
//             [--load-report FILE] [--max-frame-bytes N]
//             [--max-connections N] [--idle-timeout-ms N]
//             [--write-stall-timeout-ms N] [--request-deadline-ms N]
//       Resident inference service: run the pipeline once (or load a
//       previously exported report with --load-report), then answer
//       lookup/peers_at/diff/metrics/reload/shutdown queries over a
//       framed-JSON Unix-socket protocol until a shutdown request,
//       SIGINT or SIGTERM drains the daemon (docs/SERVE.md). The last
//       four flags are the overload-control limits (0 = off; docs/SERVE.md
//       "Overload and degradation policy").
//
//   cfs query --socket PATH <op> [--ip A.B.C.D] [--facility N]
//             [--snapshot FILE] [--report FILE] [--max N] [--ignore p1,p2]
//             [--id N] [--raw JSON] [--pretty] [--timeout-ms N]
//             [--retries N] [--retry-backoff-ms N]
//       One-shot client for a running daemon: sends a single request and
//       prints the response document. Exit 0 when the daemon answered
//       ok, 1 when it answered with a structured error. --timeout-ms
//       bounds connect/send/read each (default 0 = wait forever); only
//       the connect phase retries (--retries, exponential backoff from
//       --retry-backoff-ms) — a request already sent is never re-sent.
//
// Exit codes: 0 success (including --help/bare `cfs`, which print usage
// on stdout), 1 documents differ (diff) or the daemon answered an error
// (query), 3 usage or flag error — unknown command, stray positional,
// malformed value, unknown or repeated flag — with diagnostics on
// stderr, 4 runtime failure, 5 query deadline expired (--timeout-ms)
// while the daemon stayed silent.
#include <chrono>
#include <fstream>
#include <iostream>
#include <sstream>
#include <thread>

#include "analysis/diff.h"
#include "core/multilateral.h"
#include "core/pipeline.h"
#include "io/export.h"
#include "serve/client.h"
#include "serve/server.h"
#include "util/flags.h"
#include "util/log.h"
#include "util/table.h"
#include "util/trace.h"

using namespace cfs;

namespace {

PipelineConfig config_from(const Flags& flags) {
  const std::string scale = flags.get("scale", "small");
  PipelineConfig config;
  if (scale == "tiny")
    config = PipelineConfig::tiny();
  else if (scale == "small")
    config = PipelineConfig::small_scale();
  else if (scale == "paper")
    config = PipelineConfig::paper_scale();
  else
    throw std::invalid_argument("unknown --scale '" + scale +
                                "' (tiny|small|paper)");
  if (flags.has("seed")) {
    const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 0));
    config.seed = seed;
    config.generator.seed = seed * 977 + 3;
  }
  return config;
}

void reject_unknown(const Flags& flags) {
  const std::string message = flags.unknown_flags_message();
  if (!message.empty()) throw std::invalid_argument(message);
}

// Commands that take no positional arguments reject strays loudly; a
// silently ignored `cfs infer smal` (meant as --scale small) used to look
// like a successful default-config run.
void reject_positional(const Flags& flags) {
  if (!flags.positional().empty())
    throw std::invalid_argument("unexpected positional argument '" +
                                flags.positional().front() + "'");
}

// --trace-out=FILE turns the span timeline on for the whole run; the
// collected events are flushed here after the command succeeds. The
// registry itself is always on, so tracing changes nothing but the
// existence of this extra file (docs/OBSERVABILITY.md).
struct TraceOutput {
  explicit TraceOutput(const Flags& flags)
      : path(flags.get("trace-out", "")) {
    if (!path.empty()) Trace::enable();
  }
  void flush() const {
    if (path.empty()) return;
    std::ofstream file(path);
    if (!file) throw std::runtime_error("cannot write " + path);
    Trace::write_chrome_trace(file);
    std::cout << "trace written to " << path << " ("
              << Trace::events().size()
              << " spans; open in chrome://tracing or ui.perfetto.dev)\n";
  }
  std::string path;
};

int cmd_generate(const Flags& flags) {
  const PipelineConfig config = config_from(flags);
  const std::string out = flags.get("out", "");
  reject_positional(flags);
  reject_unknown(flags);

  const Topology topo = generate_topology(config.generator);
  std::cout << "generated: " << topo.facilities().size() << " facilities, "
            << topo.ixps().size() << " IXPs, " << topo.ases().size()
            << " ASes, " << topo.routers().size() << " routers, "
            << topo.links().size() << " links\n";
  if (!out.empty()) {
    write_topology_file(out, topo);  // atomic: temp + rename
    std::cout << "topology written to " << out << "\n";
  }
  return 0;
}

int cmd_census(const Flags& flags) {
  const PipelineConfig config = config_from(flags);
  reject_positional(flags);
  reject_unknown(flags);
  const Topology topo = generate_topology(config.generator);

  std::vector<std::pair<std::size_t, MetroId>> by_metro;
  for (const auto& metro : topo.metros()) {
    std::size_t count = 0;
    for (const auto& fac : topo.facilities()) count += fac.metro == metro.id;
    by_metro.emplace_back(count, metro.id);
  }
  std::sort(by_metro.rbegin(), by_metro.rend());
  Table table({"Metro", "Facilities"});
  for (const auto& [count, metro] : by_metro) {
    if (count < 5) break;
    table.add_row({topo.metro(metro).name, Table::cell(std::uint64_t{count})});
  }
  table.print(std::cout);
  return 0;
}

// Fault-injection knobs shared by fault-aware commands; zero everything
// means no FaultPlane is constructed at all.
void faults_from(const Flags& flags, FaultPlan& plan) {
  plan.lg_outage_fraction = flags.get_double("lg-outage", 0.0);
  plan.lg_ban_burst = static_cast<int>(flags.get_int("lg-ban-burst", 0));
  plan.vp_churn_fraction = flags.get_double("vp-churn", 0.0);
  plan.probe_timeout_rate = flags.get_double("probe-timeout", 0.0);
  plan.peeringdb_withheld = flags.get_double("pdb-withheld", 0.0);
  plan.dns_withheld = flags.get_double("dns-withheld", 0.0);
  plan.geoip_withheld = flags.get_double("geoip-withheld", 0.0);
  plan.seed = static_cast<std::uint64_t>(flags.get_int("fault-seed", 0));
}

int cmd_infer(const Flags& flags) {
  PipelineConfig config = config_from(flags);
  const int content = static_cast<int>(flags.get_int("content", 2));
  const int transit = static_cast<int>(flags.get_int("transit", 2));
  const double vp_fraction = flags.get_double("vp-fraction", 0.6);
  const std::string report_path = flags.get("report", "");
  config.threads = static_cast<int>(flags.get_int("threads", 0));
  faults_from(flags, config.faults);
  const TraceOutput trace_out(flags);
  reject_positional(flags);
  reject_unknown(flags);

  Pipeline pipeline(config);
  auto traces = pipeline.initial_campaign(
      pipeline.default_targets(content, transit), vp_fraction);
  const CfsReport report = pipeline.run_cfs(std::move(traces));

  Table table({"Metric", "Value"});
  table.add_row({"Traces used", Table::cell(std::uint64_t{report.traces_used})});
  table.add_row({"Observed peering interfaces",
                 Table::cell(std::uint64_t{report.observed_interfaces()})});
  table.add_row({"Resolved to a facility",
                 Table::percent(report.resolved_fraction())});
  table.add_row({"City-constrained (unresolved)",
                 Table::cell(std::uint64_t{
                     report.city_constrained(pipeline.topology())})});
  table.add_row({"Iterations", Table::cell(std::uint64_t{report.iterations_run})});
  const auto stats = report.router_stats();
  table.add_row({"Observed routers", Table::cell(std::uint64_t{stats.routers})});
  table.add_row({"Multi-role routers",
                 Table::cell(std::uint64_t{stats.multi_role})});
  table.print(std::cout);

  const CfsMetrics& metrics = report.metrics;
  std::cout << "\nengine: " << (metrics.incremental ? "incremental" : "full")
            << "  |  threads: " << metrics.threads
            << "  |  campaign wall: " << Table::cell(metrics.faults.wall_ms)
            << " ms  |  initial ingest: " << metrics.initial_traces
            << " traces -> " << metrics.initial_observations
            << " observations in " << Table::cell(metrics.initial_classify_ms)
            << " ms  |  refreshes: " << metrics.alias_refreshes
            << " (re-classified " << metrics.reclassified_observations
            << " obs, replayed " << metrics.replayed_observations
            << ")  |  total: " << Table::cell(metrics.total_ms) << " ms\n";

  // Measurement-plane attrition: what the campaign tried vs what survived,
  // plus everything the fault plane made it do about the difference.
  const FaultMetrics& fm = metrics.faults;
  std::cout << "measurement plane: " << fm.traces_attempted << " attempted, "
            << fm.traces_kept << " kept, " << fm.traces_unreachable
            << " unreachable, " << fm.probes_abandoned << " abandoned, "
            << fm.probes_skipped_open_circuit << " skipped (open circuit)"
            << "  |  retries: " << fm.retries
            << "  failovers: " << fm.failovers
            << "  circuits opened: " << fm.circuits_opened
            << "  LG bans: " << fm.lg_bans
            << "  hop timeouts: " << fm.probe_timeouts
            << "  records withheld: " << fm.records_withheld << "\n";

  Table stages({"Iter", "Dirty", "Constrained", "Sets", "Launched", "Skipped",
                "Resolved", "Constrain ms", "Follow-up ms", "Classify ms",
                "Refresh ms"});
  for (const IterationMetrics& row : metrics.iterations) {
    stages.add_row(
        {Table::cell(std::uint64_t{row.iteration}),
         Table::cell(std::uint64_t{row.dirty_observations}),
         Table::cell(std::uint64_t{row.constrained_observations}),
         Table::cell(std::uint64_t{row.alias_sets_processed}),
         Table::cell(std::uint64_t{row.followups_launched}),
         Table::cell(std::uint64_t{row.followups_skipped}),
         Table::cell(std::uint64_t{row.resolved}),
         Table::cell(row.constrain_ms), Table::cell(row.followup_ms),
         Table::cell(row.classify_ms),
         Table::cell(row.alias_ms + row.reclassify_ms)});
  }
  stages.print(std::cout);

  // The same numbers the JSON report carries under metrics.registry: the
  // uniform view over every instrumented stage of this run.
  std::cout << "\n";
  Trace::write_summary(std::cout, report.metrics.registry);

  if (!report_path.empty()) {
    // Atomic temp + rename: a resident daemon `reload`ing this path mid-
    // write sees the old file or the new one, never a torn prefix.
    write_report_file(report_path, report);
    std::cout << "report written to " << report_path << "\n";
  }
  trace_out.flush();
  return 0;
}

int cmd_validate(const Flags& flags) {
  PipelineConfig config = config_from(flags);
  const int content = static_cast<int>(flags.get_int("content", 2));
  const int transit = static_cast<int>(flags.get_int("transit", 2));
  config.threads = static_cast<int>(flags.get_int("threads", 0));
  faults_from(flags, config.faults);
  const TraceOutput trace_out(flags);
  reject_positional(flags);
  reject_unknown(flags);

  Pipeline pipeline(config);
  auto traces = pipeline.initial_campaign(
      pipeline.default_targets(content, transit), 0.6);
  const CfsReport report = pipeline.run_cfs(std::move(traces));

  const auto oracle = pipeline.validation().oracle_interface_accuracy(report);
  Table table({"Oracle metric", "Value"});
  table.add_row({"Scored interfaces", Table::cell(std::uint64_t{oracle.total})});
  table.add_row({"Facility accuracy", Table::percent(oracle.accuracy())});
  table.add_row({"City accuracy", Table::percent(oracle.city_accuracy())});
  table.print(std::cout);

  const auto breakdown = pipeline.validation().validate(report);
  Table sources({"Source", "Link type", "Accuracy", "N"});
  for (const auto& [key, acc] : breakdown) {
    if (acc.total == 0) continue;
    sources.add_row({std::string(validation_source_name(key.first)),
                     std::string(validation_link_type_name(key.second)),
                     Table::percent(acc.accuracy()),
                     Table::cell(std::uint64_t{acc.total})});
  }
  sources.print(std::cout);

  std::cout << "\n";
  Trace::write_summary(std::cout, report.metrics.registry);
  trace_out.flush();
  return 0;
}

int cmd_diff(const Flags& flags) {
  const auto& positional = flags.positional();
  if (positional.size() != 2)
    throw std::invalid_argument("diff takes exactly two positional "
                                "arguments: cfs diff A.json B.json");
  JsonDiffOptions options;
  options.max_entries =
      static_cast<std::size_t>(flags.get_int("max", 32));
  const std::string ignore_csv = flags.get("ignore", "");
  std::istringstream prefixes(ignore_csv);
  for (std::string prefix; std::getline(prefixes, prefix, ',');)
    if (!prefix.empty()) options.ignore_prefixes.push_back(prefix);
  reject_unknown(flags);

  JsonValue docs[2];
  for (int side = 0; side < 2; ++side) {
    std::ifstream file(positional[side]);
    if (!file)
      throw std::runtime_error("cannot read " + positional[side]);
    std::ostringstream buffer;
    buffer << file.rdbuf();
    docs[side] = parse_json(buffer.str());
  }

  const JsonDiff diff = diff_json(docs[0], docs[1], options);
  print_json_diff(std::cout, diff);
  return diff.empty() ? 0 : 1;
}

int cmd_serve(const Flags& flags) {
  const std::string socket = flags.get("socket", "");
  if (socket.empty())
    throw std::invalid_argument("serve requires --socket PATH");

  ServeOptions options;
  options.socket_path = socket;
  options.threads = static_cast<int>(flags.get_int("threads", 0));
  options.max_frame_bytes = static_cast<std::size_t>(flags.get_int(
      "max-frame-bytes", static_cast<std::int64_t>(kDefaultMaxFrameBytes)));
  if (options.max_frame_bytes < kFrameHeaderBytes)
    throw std::invalid_argument("--max-frame-bytes is too small");
  // Overload-control knobs (docs/SERVE.md "Overload and degradation
  // policy"); 0 disables each limit independently.
  options.max_connections =
      static_cast<std::size_t>(flags.get_int("max-connections", 0));
  options.idle_timeout_ms =
      static_cast<int>(flags.get_int("idle-timeout-ms", 0));
  options.write_stall_timeout_ms =
      static_cast<int>(flags.get_int("write-stall-timeout-ms", 0));
  options.request_deadline_ms =
      static_cast<int>(flags.get_int("request-deadline-ms", 0));
  if (options.idle_timeout_ms < 0 || options.write_stall_timeout_ms < 0 ||
      options.request_deadline_ms < 0)
    throw std::invalid_argument("timeouts must be non-negative");

  const std::string load_report = flags.get("load-report", "");
  std::shared_ptr<const ServeState> state;
  if (!load_report.empty()) {
    reject_positional(flags);
    reject_unknown(flags);
    state = ServeState::from_file(load_report, 0);
  } else {
    PipelineConfig config = config_from(flags);
    const int content = static_cast<int>(flags.get_int("content", 2));
    const int transit = static_cast<int>(flags.get_int("transit", 2));
    const double vp_fraction = flags.get_double("vp-fraction", 0.6);
    config.threads = options.threads;
    reject_positional(flags);
    reject_unknown(flags);

    Pipeline pipeline(config);
    auto traces = pipeline.initial_campaign(
        pipeline.default_targets(content, transit), vp_fraction);
    state = ServeState::from_report(pipeline.run_cfs(std::move(traces)),
                                    "pipeline", 0);
  }

  Server server(std::move(options), state);
  std::cout << "cfs serve: " << state->report.interfaces.size()
            << " interfaces from " << state->source << ", "
            << server.resolved_threads() << " workers, socket "
            << server.socket_path() << "\n"
            << std::flush;
  const int status = server.run();
  std::cout << "cfs serve: drained\n";
  return status;
}

int cmd_query(const Flags& flags) {
  const std::string socket = flags.get("socket", "");
  if (socket.empty())
    throw std::invalid_argument("query requires --socket PATH");
  const bool pretty = flags.get_bool("pretty", false);
  const std::string raw = flags.get("raw", "");
  const int timeout_ms = static_cast<int>(flags.get_int("timeout-ms", 0));
  const int retries = static_cast<int>(flags.get_int("retries", 2));
  const int backoff_ms =
      static_cast<int>(flags.get_int("retry-backoff-ms", 50));
  if (timeout_ms < 0 || retries < 0 || backoff_ms < 0)
    throw std::invalid_argument(
        "--timeout-ms/--retries/--retry-backoff-ms must be non-negative");

  JsonValue request;
  if (!raw.empty()) {
    if (!flags.positional().empty())
      throw std::invalid_argument(
          "--raw supplies the whole request; drop the positional op");
    reject_unknown(flags);
    try {
      request = parse_json(raw);
    } catch (const std::exception& error) {
      throw std::invalid_argument(std::string("--raw is not valid JSON: ") +
                                  error.what());
    }
  } else {
    const auto& positional = flags.positional();
    if (positional.size() != 1)
      throw std::invalid_argument(
          "query takes exactly one op: "
          "lookup|peers_at|diff|metrics|reload|ping|shutdown "
          "(or --raw '<json>')");
    JsonValue::Object doc;
    doc.emplace("op", positional.front());
    if (flags.has("id")) doc.emplace("id", flags.get_int("id", 0));
    if (flags.has("ip")) doc.emplace("ip", flags.get("ip", ""));
    if (flags.has("facility"))
      doc.emplace("facility", flags.get_int("facility", 0));
    if (flags.has("snapshot"))
      doc.emplace("snapshot", flags.get("snapshot", ""));
    if (flags.has("report")) doc.emplace("report", flags.get("report", ""));
    if (flags.has("max")) doc.emplace("max", flags.get_int("max", 32));
    if (flags.has("ignore")) doc.emplace("ignore", flags.get("ignore", ""));
    reject_unknown(flags);
    request = JsonValue(std::move(doc));
  }

  ServeClient client;
  client.set_timeout_ms(timeout_ms);
  // Retry policy: only the connect phase retries (exponential backoff,
  // bounded by --retries). Once the request has been written, a timeout
  // or transport failure is final — re-sending could double-apply a
  // non-idempotent op (reload, shutdown), so that risk stays with the
  // caller, not the client.
  for (int attempt = 0;; ++attempt) {
    try {
      client.connect(socket);
      break;
    } catch (const std::exception&) {
      if (attempt >= retries) throw;
      const auto nap = std::chrono::milliseconds(
          static_cast<std::int64_t>(backoff_ms) << attempt);
      std::this_thread::sleep_for(nap);
    }
  }
  const JsonValue response = client.request(request);
  std::cout << (pretty ? response.pretty() : response.dump()) << "\n";
  const JsonValue* ok = response.find("ok");
  return (ok != nullptr && ok->is_bool() && ok->as_bool()) ? 0 : 1;
}

void print_usage(std::ostream& os) {
  os << "usage: cfs <generate|census|infer|validate|diff|serve|query> "
        "[--scale tiny|small|paper] [--seed N] ...\n"
        "see the tools/cfs_cli.cpp header for per-command flags; "
        "docs/SERVE.md covers serve/query\n";
}

}  // namespace

int main(int argc, char** argv) {
  set_log_level(LogLevel::Warn);
  // Asking for help is success: usage goes to stdout and exits 0, so
  // `cfs --help | less` works and scripts can probe the binary cheaply.
  if (argc < 2) {
    print_usage(std::cout);
    return 0;
  }
  const std::string command = argv[1];
  if (command == "--help" || command == "-h" || command == "help") {
    print_usage(std::cout);
    return 0;
  }
  try {
    // Inside the try: the constructor throws on repeated flags, and that
    // is a user error (exit 3), not a crash.
    const Flags flags(argc - 1, argv + 1);
    if (command == "generate") return cmd_generate(flags);
    if (command == "census") return cmd_census(flags);
    if (command == "infer") return cmd_infer(flags);
    if (command == "validate") return cmd_validate(flags);
    if (command == "diff") return cmd_diff(flags);
    if (command == "serve") return cmd_serve(flags);
    if (command == "query") return cmd_query(flags);
    // An unknown command is a usage error, not a request for help: the
    // diagnostic and usage text go to stderr and the exit is 3, the same
    // class as a bad flag.
    std::cerr << "error: unknown command '" << command << "'\n";
    print_usage(std::cerr);
    return 3;
  } catch (const std::invalid_argument& error) {
    // Bad flag value, stray positional or unknown flag: user error,
    // distinct from crashes so scripts can tell a typo from a broken run.
    std::cerr << "error: " << error.what() << "\n";
    return 3;
  } catch (const ClientTimeoutError& error) {
    // A stalled daemon (query --timeout-ms expired) is its own exit so
    // scripts can tell "wedged, maybe retry later" from a broken
    // transport or a crash.
    std::cerr << "error: " << error.what() << "\n";
    return 5;
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << "\n";
    return 4;
  }
}
