// cfs_fuzz — seeded differential scenario fuzzer (docs/TESTING.md).
//
//   cfs_fuzz [--trials N] [--seed S] [--budget-sec T] [--oracles a,b|all]
//            [--out DIR] [--shrink-budget-sec T] [--verbose]
//       Sample N scenarios from the master seed and run the oracle set on
//       each. On the first failure: greedily shrink the scenario to a
//       local minimum, write a self-contained repro JSON into DIR and
//       print the exact replay command line, then exit 1.
//
//   cfs_fuzz --replay FILE [--oracles a,b|all]
//       Re-run the oracles recorded in (or selected over) a repro or
//       corpus scenario file. Exit 0 when every oracle passes, 1 when the
//       failure reproduces.
//
//   cfs_fuzz --stamp-golden FILE [--goldens-dir DIR]
//       Run the serial reference arm for the scenario in FILE, write its
//       canonical-export fnv1a64 hash back into the file as
//       `expected_export_fnv1a`, and save the full equivalence-form
//       report to DIR (default: <dir of FILE>/goldens/<stem>.report.json)
//       for diagnosable diffs. Stamp with the engine you want to pin —
//       the layout_equivalence oracle then rejects any future byte drift.
//
//   cfs_fuzz --list-oracles
//       Print the oracle taxonomy.
//
// Exit codes: 0 all trials green, 1 oracle failure (repro written when
// fuzzing), 3 bad flag, 4 runtime failure.
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>

#include "core/metrics.h"
#include "fuzz/oracles.h"
#include "fuzz/scenario.h"
#include "fuzz/shrink.h"
#include "io/json.h"
#include "util/flags.h"
#include "util/log.h"
#include "util/strings.h"

using namespace cfs;

namespace {

constexpr int repro_format_version = 1;

// Self-contained repro document: the shrunk scenario, which oracle broke,
// how, and the provenance (master seed + trial) that found it.
JsonValue repro_json(const Scenario& scenario, const OracleFailure& failure,
                     std::uint64_t master_seed, std::size_t trial,
                     const ShrinkResult& shrunk) {
  JsonValue::Object o;
  o.emplace("format_version", repro_format_version);
  o.emplace("scenario", scenario.to_json());
  o.emplace("oracle", failure.oracle);
  o.emplace("message", failure.message);
  o.emplace("master_seed", master_seed);
  o.emplace("trial", static_cast<std::uint64_t>(trial));
  o.emplace("shrink_attempts", static_cast<std::uint64_t>(shrunk.attempts));
  o.emplace("shrink_accepted", static_cast<std::uint64_t>(shrunk.accepted));
  o.emplace("shrink_at_fixpoint", shrunk.at_fixpoint);
  return JsonValue(std::move(o));
}

JsonValue load_json_file(const std::string& path) {
  std::ifstream file(path);
  if (!file) throw std::runtime_error("cannot read " + path);
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return parse_json(buffer.str());
}

int cmd_list_oracles() {
  for (const Oracle& oracle : all_oracles())
    std::cout << oracle.name << "\n    " << oracle.description << "\n";
  return 0;
}

int cmd_replay(const Flags& flags) {
  const std::string path = flags.get("replay", "");
  const std::string oracle_csv = flags.get("oracles", "");
  const std::string message = flags.unknown_flags_message();
  if (!message.empty()) throw std::invalid_argument(message);

  const JsonValue doc = load_json_file(path);
  // Accept both repro documents ({"scenario": {...}, "oracle": ...}) and
  // bare corpus scenarios ({...knobs...}).
  const JsonValue* scenario_doc = doc.find("scenario");
  const Scenario scenario =
      Scenario::from_json(scenario_doc != nullptr ? *scenario_doc : doc);

  // Replay priority: explicit --oracles, else the oracle recorded in the
  // repro, else the full set.
  std::vector<Oracle> oracles;
  if (!oracle_csv.empty()) {
    oracles = oracles_by_name(oracle_csv);
  } else if (const JsonValue* recorded = doc.find("oracle")) {
    oracles = oracles_by_name(recorded->as_string());
  } else {
    oracles = all_oracles();
  }

  std::cout << "replaying " << path << "\n  " << scenario.summary() << "\n";
  const auto failure = run_oracles(scenario, oracles);
  if (failure) {
    std::cout << "FAIL [" << failure->oracle << "] " << failure->message
              << "\n";
    return 1;
  }
  std::cout << "ok (" << oracles.size() << " oracle(s) passed)\n";
  return 0;
}

int cmd_stamp_golden(const Flags& flags) {
  const std::string path = flags.get("stamp-golden", "");
  const std::string goldens_flag = flags.get("goldens-dir", "");
  const std::string message = flags.unknown_flags_message();
  if (!message.empty()) throw std::invalid_argument(message);

  const JsonValue doc = load_json_file(path);
  const JsonValue* scenario_doc = doc.find("scenario");
  Scenario scenario =
      Scenario::from_json(scenario_doc != nullptr ? *scenario_doc : doc);
  const std::string previous = scenario.expected_export_fnv1a;

  std::cout << "stamping " << path << "\n  " << scenario.summary() << "\n";
  const CfsReport report = run_reference_arm(scenario);
  const std::string bytes = equivalence_json(report).pretty();
  const std::string hash = hex64(fnv1a64(bytes));

  // Patch the hash into the document in place: a minimal hand-written
  // corpus entry keeps its minimal key set, a wrapped repro keeps its
  // envelope — only `expected_export_fnv1a` is inserted or replaced.
  JsonValue updated = doc;
  JsonValue::Object& target =
      scenario_doc != nullptr
          ? updated.as_object().at("scenario").as_object()
          : updated.as_object();
  target.insert_or_assign("expected_export_fnv1a", JsonValue(hash));
  {
    std::ofstream file(path);
    if (!file) throw std::runtime_error("cannot write " + path);
    file << updated.pretty() << "\n";
  }

  // Full equivalence-form report alongside the hash: when the oracle
  // trips, `cfs diff` against this file names the drifted path instead
  // of just "hash mismatch".
  const std::filesystem::path scenario_path(path);
  const std::filesystem::path goldens_dir =
      goldens_flag.empty() ? scenario_path.parent_path() / "goldens"
                           : std::filesystem::path(goldens_flag);
  std::filesystem::create_directories(goldens_dir);
  const std::filesystem::path golden_path =
      goldens_dir / (scenario_path.stem().string() + ".report.json");
  {
    std::ofstream file(golden_path);
    if (!file)
      throw std::runtime_error("cannot write " + golden_path.string());
    file << bytes << "\n";
  }

  if (previous.empty())
    std::cout << "  golden " << hash << " (previously unstamped)\n";
  else if (previous == hash)
    std::cout << "  golden " << hash << " (unchanged)\n";
  else
    std::cout << "  golden " << previous << " -> " << hash
              << " (RE-STAMPED: export bytes changed)\n";
  std::cout << "  report golden: " << golden_path.string() << "\n";
  return 0;
}

int cmd_fuzz(const Flags& flags) {
  const auto trials =
      static_cast<std::size_t>(flags.get_int("trials", 50));
  const auto master_seed =
      static_cast<std::uint64_t>(flags.get_int("seed", 1));
  const double budget_sec = flags.get_double("budget-sec", 0.0);
  const std::string oracle_csv = flags.get("oracles", "all");
  const std::string out_dir = flags.get("out", ".");
  ShrinkOptions shrink_options;
  shrink_options.budget_sec = flags.get_double("shrink-budget-sec", 120.0);
  const bool verbose = flags.get_bool("verbose", false);
  const std::string message = flags.unknown_flags_message();
  if (!message.empty()) throw std::invalid_argument(message);

  const std::vector<Oracle> oracles = oracles_by_name(oracle_csv);
  const Rng master(master_seed);
  const Stopwatch clock;

  std::size_t ran = 0;
  for (std::size_t trial = 0; trial < trials; ++trial) {
    if (budget_sec > 0 && clock.elapsed_ms() > budget_sec * 1000.0) {
      std::cout << "budget exhausted after " << ran << "/" << trials
                << " trials (" << static_cast<int>(clock.elapsed_ms() / 1000)
                << "s); all green\n";
      return 0;
    }
    // Pure per-trial stream: trial k is reproducible without replaying
    // trials 0..k-1.
    Rng trial_rng = master.fork(trial + 1);
    const Scenario scenario = sample_scenario(trial_rng);
    if (verbose)
      std::cout << "trial " << trial << ": " << scenario.summary() << "\n";

    const auto failure = run_oracles(scenario, oracles);
    ++ran;
    if (!failure) {
      if (!verbose && (trial + 1) % 10 == 0)
        std::cout << "  " << (trial + 1) << "/" << trials << " trials green ("
                  << static_cast<int>(clock.elapsed_ms() / 1000) << "s)\n";
      continue;
    }

    std::cout << "trial " << trial << " FAILED [" << failure->oracle << "]\n"
              << "  scenario: " << scenario.summary() << "\n"
              << "  " << failure->message << "\n"
              << "shrinking...\n";
    const Oracle* oracle = nullptr;
    for (const Oracle& o : oracles)
      if (o.name == failure->oracle) oracle = &o;
    const ShrinkResult shrunk =
        oracle != nullptr ? shrink_scenario(scenario, *oracle, shrink_options)
                          : ShrinkResult{scenario, 0, 0, false};
    std::cout << "  minimal (" << shrunk.accepted << " reductions over "
              << shrunk.attempts << " attempts"
              << (shrunk.at_fixpoint ? "" : ", shrink budget hit")
              << "): " << shrunk.minimal.summary() << "\n";

    // Re-run for the shrunk scenario's own failure message.
    auto minimal_failure = run_oracles(
        shrunk.minimal, oracle != nullptr
                            ? std::vector<Oracle>{*oracle}
                            : oracles);
    if (!minimal_failure) minimal_failure = failure;  // paranoia

    const std::string repro_path = out_dir + "/fuzz-repro-seed" +
                                   std::to_string(master_seed) + "-trial" +
                                   std::to_string(trial) + ".json";
    std::ofstream file(repro_path);
    if (!file) throw std::runtime_error("cannot write " + repro_path);
    file << repro_json(shrunk.minimal, *minimal_failure, master_seed, trial,
                       shrunk)
                .pretty()
         << "\n";
    std::cout << "repro written to " << repro_path << "\n"
              << "replay with:\n  cfs_fuzz --replay " << repro_path << "\n";
    return 1;
  }

  std::cout << ran << " trials x " << oracles.size() << " oracle(s): all green ("
            << static_cast<int>(clock.elapsed_ms() / 1000) << "s, master seed "
            << master_seed << ")\n";
  return 0;
}

void print_usage(std::ostream& os) {
  os << "usage: cfs_fuzz [--trials N] [--seed S] [--budget-sec T] "
        "[--oracles a,b|all] [--out DIR]\n"
        "       cfs_fuzz --replay FILE [--oracles a,b|all]\n"
        "       cfs_fuzz --stamp-golden FILE [--goldens-dir DIR]\n"
        "       cfs_fuzz --list-oracles\n"
        "see tools/cfs_fuzz.cpp header and docs/TESTING.md\n";
}

}  // namespace

int main(int argc, char** argv) {
  set_log_level(LogLevel::Warn);
  if (argc >= 2 && (std::string(argv[1]) == "--help" ||
                    std::string(argv[1]) == "-h")) {
    // Asking for help is success: usage on stdout, exit 0.
    print_usage(std::cout);
    return 0;
  }
  try {
    const Flags flags(argc, argv);
    if (!flags.positional().empty()) {
      // A stray positional is a usage error (exit 3, like a bad flag);
      // it used to exit 2, an undocumented code the header never listed.
      std::cerr << "error: unexpected positional argument '"
                << flags.positional().front() << "'\n";
      print_usage(std::cerr);
      return 3;
    }
    if (flags.get_bool("list-oracles", false)) return cmd_list_oracles();
    if (flags.has("stamp-golden")) return cmd_stamp_golden(flags);
    if (flags.has("replay")) return cmd_replay(flags);
    return cmd_fuzz(flags);
  } catch (const std::invalid_argument& error) {
    std::cerr << "error: " << error.what() << "\n";
    return 3;
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << "\n";
    return 4;
  }
}
