// Minimal self-contained JSON value, parser and writer.
//
// Used by the dataset export/import layer (the paper publishes its
// supplemental dataset; we publish the generated ground truth and the
// inference results the same way). No external dependencies; supports the
// JSON subset we emit: objects, arrays, strings, doubles/integers, bools,
// null, UTF-8 passthrough, and \" \\ \/ \b \f \n \r \t escapes.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <variant>
#include <vector>

namespace cfs {

class JsonValue {
 public:
  using Array = std::vector<JsonValue>;
  using Object = std::map<std::string, JsonValue>;

  JsonValue() : value_(nullptr) {}
  JsonValue(std::nullptr_t) : value_(nullptr) {}
  JsonValue(bool b) : value_(b) {}
  JsonValue(double d) : value_(d) {}
  JsonValue(std::int64_t i) : value_(static_cast<double>(i)) {}
  JsonValue(int i) : value_(static_cast<double>(i)) {}
  JsonValue(std::uint32_t i) : value_(static_cast<double>(i)) {}
  JsonValue(std::uint64_t i) : value_(static_cast<double>(i)) {}
  JsonValue(const char* s) : value_(std::string(s)) {}
  JsonValue(std::string s) : value_(std::move(s)) {}
  JsonValue(Array a) : value_(std::move(a)) {}
  JsonValue(Object o) : value_(std::move(o)) {}

  [[nodiscard]] bool is_null() const {
    return std::holds_alternative<std::nullptr_t>(value_);
  }
  [[nodiscard]] bool is_bool() const {
    return std::holds_alternative<bool>(value_);
  }
  [[nodiscard]] bool is_number() const {
    return std::holds_alternative<double>(value_);
  }
  [[nodiscard]] bool is_string() const {
    return std::holds_alternative<std::string>(value_);
  }
  [[nodiscard]] bool is_array() const {
    return std::holds_alternative<Array>(value_);
  }
  [[nodiscard]] bool is_object() const {
    return std::holds_alternative<Object>(value_);
  }

  [[nodiscard]] bool as_bool() const { return std::get<bool>(value_); }
  [[nodiscard]] double as_number() const { return std::get<double>(value_); }
  [[nodiscard]] std::int64_t as_int() const {
    return static_cast<std::int64_t>(std::get<double>(value_));
  }
  [[nodiscard]] const std::string& as_string() const {
    return std::get<std::string>(value_);
  }
  [[nodiscard]] const Array& as_array() const {
    return std::get<Array>(value_);
  }
  [[nodiscard]] const Object& as_object() const {
    return std::get<Object>(value_);
  }
  [[nodiscard]] Array& as_array() { return std::get<Array>(value_); }
  [[nodiscard]] Object& as_object() { return std::get<Object>(value_); }

  // Object member access; throws std::out_of_range on missing key.
  [[nodiscard]] const JsonValue& at(const std::string& key) const;
  // Nullable lookup.
  [[nodiscard]] const JsonValue* find(const std::string& key) const;
  // Array element access.
  [[nodiscard]] const JsonValue& at(std::size_t index) const;
  [[nodiscard]] std::size_t size() const;

  // Compact single-line rendering.
  [[nodiscard]] std::string dump() const;
  // Pretty rendering with 2-space indent.
  [[nodiscard]] std::string pretty() const;

  friend bool operator==(const JsonValue&, const JsonValue&) = default;

 private:
  void write(std::string& out, int indent, int depth) const;

  std::variant<std::nullptr_t, bool, double, std::string, Array, Object>
      value_;
};

// Parses a complete JSON document; throws std::runtime_error with a
// position-annotated message on malformed input or trailing garbage.
JsonValue parse_json(std::string_view text);

// Escapes a string for embedding in JSON output (without quotes).
std::string json_escape(std::string_view raw);

}  // namespace cfs
