#include "io/json.h"

#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace cfs {

const JsonValue& JsonValue::at(const std::string& key) const {
  const auto& obj = as_object();
  const auto it = obj.find(key);
  if (it == obj.end())
    throw std::out_of_range("JsonValue: missing key '" + key + "'");
  return it->second;
}

const JsonValue* JsonValue::find(const std::string& key) const {
  if (!is_object()) return nullptr;
  const auto& obj = as_object();
  const auto it = obj.find(key);
  return it == obj.end() ? nullptr : &it->second;
}

const JsonValue& JsonValue::at(std::size_t index) const {
  const auto& arr = as_array();
  if (index >= arr.size())
    throw std::out_of_range("JsonValue: index " + std::to_string(index));
  return arr[index];
}

std::size_t JsonValue::size() const {
  if (is_array()) return as_array().size();
  if (is_object()) return as_object().size();
  throw std::logic_error("JsonValue::size on scalar");
}

namespace {

// Length of the well-formed UTF-8 sequence starting at raw[i], or 0 when
// the byte opens no valid sequence. Continuation-byte ranges follow RFC
// 3629 table 3-7: overlong encodings (E0 80.., F0 8x..), surrogates
// (ED A0..), and code points above U+10FFFF (F4 90.., F5+) all fail here.
std::size_t utf8_sequence_length(std::string_view raw, std::size_t i) {
  const auto byte = [&](std::size_t offset) -> unsigned {
    return i + offset < raw.size()
               ? static_cast<unsigned char>(raw[i + offset])
               : 0u;
  };
  const unsigned b0 = byte(0);
  const auto cont = [](unsigned b) { return b >= 0x80 && b <= 0xBF; };
  if (b0 <= 0x7F) return 1;
  if (b0 >= 0xC2 && b0 <= 0xDF) return cont(byte(1)) ? 2 : 0;
  if (b0 == 0xE0)
    return byte(1) >= 0xA0 && byte(1) <= 0xBF && cont(byte(2)) ? 3 : 0;
  if ((b0 >= 0xE1 && b0 <= 0xEC) || b0 == 0xEE || b0 == 0xEF)
    return cont(byte(1)) && cont(byte(2)) ? 3 : 0;
  if (b0 == 0xED)
    return byte(1) >= 0x80 && byte(1) <= 0x9F && cont(byte(2)) ? 3 : 0;
  if (b0 == 0xF0)
    return byte(1) >= 0x90 && byte(1) <= 0xBF && cont(byte(2)) &&
                   cont(byte(3))
               ? 4
               : 0;
  if (b0 >= 0xF1 && b0 <= 0xF3)
    return cont(byte(1)) && cont(byte(2)) && cont(byte(3)) ? 4 : 0;
  if (b0 == 0xF4)
    return byte(1) >= 0x80 && byte(1) <= 0x8F && cont(byte(2)) &&
                   cont(byte(3))
               ? 4
               : 0;
  return 0;
}

}  // namespace

std::string json_escape(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  std::size_t i = 0;
  while (i < raw.size()) {
    const char c = raw[i];
    const unsigned char u = static_cast<unsigned char>(c);
    switch (c) {
      case '"': out += "\\\""; ++i; continue;
      case '\\': out += "\\\\"; ++i; continue;
      case '\b': out += "\\b"; ++i; continue;
      case '\f': out += "\\f"; ++i; continue;
      case '\n': out += "\\n"; ++i; continue;
      case '\r': out += "\\r"; ++i; continue;
      case '\t': out += "\\t"; ++i; continue;
      default: break;
    }
    if (u < 0x20 || u == 0x7F) {
      // DEL joins the C0 range: raw 0x7F in exported text trips strict
      // consumers even though RFC 8259 technically allows it.
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", u);
      out += buf;
      ++i;
      continue;
    }
    const std::size_t len = utf8_sequence_length(raw, i);
    if (len == 0) {
      // Invalid byte: substitute U+FFFD so the output is always valid
      // UTF-8 instead of leaking mojibake into every downstream reader.
      out += "\xEF\xBF\xBD";
      ++i;
    } else {
      out.append(raw.substr(i, len));
      i += len;
    }
  }
  return out;
}

namespace {

std::string render_number(double d) {
  if (std::nearbyint(d) == d && std::abs(d) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", d);
    return buf;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", d);
  return buf;
}

}  // namespace

void JsonValue::write(std::string& out, int indent, int depth) const {
  const std::string pad =
      indent > 0 ? std::string(static_cast<std::size_t>(indent * depth), ' ')
                 : "";
  const std::string pad_in =
      indent > 0
          ? std::string(static_cast<std::size_t>(indent * (depth + 1)), ' ')
          : "";
  const char* nl = indent > 0 ? "\n" : "";

  if (is_null()) {
    out += "null";
  } else if (is_bool()) {
    out += as_bool() ? "true" : "false";
  } else if (is_number()) {
    out += render_number(as_number());
  } else if (is_string()) {
    out += '"';
    out += json_escape(as_string());
    out += '"';
  } else if (is_array()) {
    const auto& arr = as_array();
    if (arr.empty()) {
      out += "[]";
      return;
    }
    out += '[';
    out += nl;
    for (std::size_t i = 0; i < arr.size(); ++i) {
      out += pad_in;
      arr[i].write(out, indent, depth + 1);
      if (i + 1 < arr.size()) out += ',';
      out += nl;
    }
    out += pad;
    out += ']';
  } else {
    const auto& obj = as_object();
    if (obj.empty()) {
      out += "{}";
      return;
    }
    out += '{';
    out += nl;
    std::size_t i = 0;
    for (const auto& [key, value] : obj) {
      out += pad_in;
      out += '"';
      out += json_escape(key);
      out += indent > 0 ? "\": " : "\":";
      value.write(out, indent, depth + 1);
      if (++i < obj.size()) out += ',';
      out += nl;
    }
    out += pad;
    out += '}';
  }
}

std::string JsonValue::dump() const {
  std::string out;
  write(out, 0, 0);
  return out;
}

std::string JsonValue::pretty() const {
  std::string out;
  write(out, 2, 0);
  return out;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue value = parse_value();
    skip_whitespace();
    if (pos_ != text_.size()) fail("trailing characters");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("JSON parse error at offset " +
                             std::to_string(pos_) + ": " + what);
  }

  void skip_whitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r'))
      ++pos_;
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  char take() {
    const char c = peek();
    ++pos_;
    return c;
  }

  void expect(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal)
      fail("expected '" + std::string(literal) + "'");
    pos_ += literal.size();
  }

  JsonValue parse_value() {
    skip_whitespace();
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return JsonValue(parse_string());
      case 't': expect("true"); return JsonValue(true);
      case 'f': expect("false"); return JsonValue(false);
      case 'n': expect("null"); return JsonValue(nullptr);
      default: return parse_number();
    }
  }

  JsonValue parse_object() {
    take();  // '{'
    JsonValue::Object obj;
    skip_whitespace();
    if (peek() == '}') {
      take();
      return JsonValue(std::move(obj));
    }
    for (;;) {
      skip_whitespace();
      if (peek() != '"') fail("expected object key");
      std::string key = parse_string();
      skip_whitespace();
      if (take() != ':') fail("expected ':'");
      obj.emplace(std::move(key), parse_value());
      skip_whitespace();
      const char c = take();
      if (c == '}') break;
      if (c != ',') fail("expected ',' or '}'");
    }
    return JsonValue(std::move(obj));
  }

  JsonValue parse_array() {
    take();  // '['
    JsonValue::Array arr;
    skip_whitespace();
    if (peek() == ']') {
      take();
      return JsonValue(std::move(arr));
    }
    for (;;) {
      arr.push_back(parse_value());
      skip_whitespace();
      const char c = take();
      if (c == ']') break;
      if (c != ',') fail("expected ',' or ']'");
    }
    return JsonValue(std::move(arr));
  }

  std::string parse_string() {
    take();  // '"'
    std::string out;
    for (;;) {
      const char c = take();
      if (c == '"') break;
      if (c == '\\') {
        const char esc = take();
        switch (esc) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'b': out.push_back('\b'); break;
          case 'f': out.push_back('\f'); break;
          case 'n': out.push_back('\n'); break;
          case 'r': out.push_back('\r'); break;
          case 't': out.push_back('\t'); break;
          case 'u': {
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = take();
              code <<= 4;
              if (h >= '0' && h <= '9') code += static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f')
                code += static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F')
                code += static_cast<unsigned>(h - 'A' + 10);
              else fail("bad \\u escape");
            }
            // Basic-multilingual-plane only; encode as UTF-8.
            if (code < 0x80) {
              out.push_back(static_cast<char>(code));
            } else if (code < 0x800) {
              out.push_back(static_cast<char>(0xC0 | (code >> 6)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            } else {
              out.push_back(static_cast<char>(0xE0 | (code >> 12)));
              out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            }
            break;
          }
          default: fail("bad escape");
        }
      } else if (static_cast<unsigned char>(c) < 0x20) {
        fail("raw control character in string");
      } else {
        out.push_back(c);
      }
    }
    return out;
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (peek() == '+') fail("numbers may not have a leading '+'");
    if (peek() == '-') take();
    while (pos_ < text_.size() &&
           ((text_[pos_] >= '0' && text_[pos_] <= '9') || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '+' ||
            text_[pos_] == '-'))
      ++pos_;
    if (pos_ == start) fail("expected a value");
    const std::string token(text_.substr(start, pos_ - start));
    try {
      std::size_t used = 0;
      const double value = std::stod(token, &used);
      if (used != token.size()) fail("malformed number '" + token + "'");
      return JsonValue(value);
    } catch (const std::logic_error&) {
      fail("malformed number '" + token + "'");
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonValue parse_json(std::string_view text) {
  return Parser(text).parse_document();
}

}  // namespace cfs
