// Dataset export / import.
//
// The paper publishes its inference dataset as supplemental material; this
// layer does the same for the synthetic study: the full ground-truth
// topology and any CfsReport serialise to JSON documents that round-trip
// losslessly, so experiments can be archived, diffed and post-processed
// outside the process that ran them.
#pragma once

#include <iosfwd>
#include <string>

#include "core/report.h"
#include "io/json.h"
#include "topology/topology.h"

namespace cfs {

// --- ground-truth topology ---
[[nodiscard]] JsonValue topology_to_json(const Topology& topo);
// Rebuilds a validated topology; throws std::runtime_error on malformed
// documents and std::logic_error if the rebuilt structure fails validate().
[[nodiscard]] Topology topology_from_json(const JsonValue& doc);

// --- inference results ---
[[nodiscard]] JsonValue report_to_json(const CfsReport& report);
[[nodiscard]] CfsReport report_from_json(const JsonValue& doc);

// Stream helpers (pretty JSON).
void write_topology(std::ostream& os, const Topology& topo);
void write_report(std::ostream& os, const CfsReport& report);

// Atomic file replacement: write to a sibling temp file, flush, then
// rename(2) into place. A concurrent reader — the resident daemon's
// `reload` op in particular — observes either the old complete file or
// the new complete file, never a half-written one. Throws
// std::runtime_error on any I/O failure (the temp file is removed).
void write_topology_file(const std::string& path, const Topology& topo);
void write_report_file(const std::string& path, const CfsReport& report);

}  // namespace cfs
