// Dataset export / import.
//
// The paper publishes its inference dataset as supplemental material; this
// layer does the same for the synthetic study: the full ground-truth
// topology and any CfsReport serialise to JSON documents that round-trip
// losslessly, so experiments can be archived, diffed and post-processed
// outside the process that ran them.
#pragma once

#include <iosfwd>

#include "core/report.h"
#include "io/json.h"
#include "topology/topology.h"

namespace cfs {

// --- ground-truth topology ---
[[nodiscard]] JsonValue topology_to_json(const Topology& topo);
// Rebuilds a validated topology; throws std::runtime_error on malformed
// documents and std::logic_error if the rebuilt structure fails validate().
[[nodiscard]] Topology topology_from_json(const JsonValue& doc);

// --- inference results ---
[[nodiscard]] JsonValue report_to_json(const CfsReport& report);
[[nodiscard]] CfsReport report_from_json(const JsonValue& doc);

// Stream helpers (pretty JSON).
void write_topology(std::ostream& os, const Topology& topo);
void write_report(std::ostream& os, const CfsReport& report);

}  // namespace cfs
