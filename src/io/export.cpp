#include "io/export.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <ostream>
#include <stdexcept>
#include <vector>

#include "util/trace.h"

namespace cfs {
namespace {

constexpr int format_version = 1;

JsonValue geo_json(const GeoPoint& p) {
  JsonValue::Object o;
  o.emplace("lat", p.lat_deg);
  o.emplace("lon", p.lon_deg);
  return JsonValue(std::move(o));
}

GeoPoint geo_from(const JsonValue& v) {
  return GeoPoint{v.at("lat").as_number(), v.at("lon").as_number()};
}

template <class IdType>
JsonValue id_json(IdType id) {
  if (!id.valid()) return JsonValue(nullptr);
  return JsonValue(id.value);
}

template <class IdType>
IdType id_from(const JsonValue& v) {
  if (v.is_null()) return IdType::invalid();
  return IdType(static_cast<std::uint32_t>(v.as_int()));
}

JsonValue prefix_json(const Prefix& p) { return JsonValue(p.to_string()); }

Prefix prefix_from(const JsonValue& v) {
  const auto parsed = Prefix::parse(v.as_string());
  if (!parsed) throw std::runtime_error("bad prefix: " + v.as_string());
  return *parsed;
}

JsonValue addr_json(Ipv4 a) { return JsonValue(a.to_string()); }

Ipv4 addr_from(const JsonValue& v) {
  const auto parsed = Ipv4::parse(v.as_string());
  if (!parsed) throw std::runtime_error("bad address: " + v.as_string());
  return *parsed;
}

template <class Enum>
JsonValue enum_json(Enum e) {
  return JsonValue(static_cast<int>(e));
}

template <class Enum>
Enum enum_from(const JsonValue& v) {
  return static_cast<Enum>(v.as_int());
}

JsonValue fault_metrics_json(const FaultMetrics& f) {
  JsonValue::Object o;
  o.emplace("traces_attempted", static_cast<std::uint64_t>(f.traces_attempted));
  o.emplace("traces_kept", static_cast<std::uint64_t>(f.traces_kept));
  o.emplace("traces_unreachable",
            static_cast<std::uint64_t>(f.traces_unreachable));
  o.emplace("retries", static_cast<std::uint64_t>(f.retries));
  o.emplace("failovers", static_cast<std::uint64_t>(f.failovers));
  o.emplace("circuits_opened", static_cast<std::uint64_t>(f.circuits_opened));
  o.emplace("probes_abandoned",
            static_cast<std::uint64_t>(f.probes_abandoned));
  o.emplace("probes_skipped_open_circuit",
            static_cast<std::uint64_t>(f.probes_skipped_open_circuit));
  o.emplace("probe_timeouts", static_cast<std::uint64_t>(f.probe_timeouts));
  o.emplace("lg_bans", static_cast<std::uint64_t>(f.lg_bans));
  o.emplace("records_withheld",
            static_cast<std::uint64_t>(f.records_withheld));
  o.emplace("wall_ms", f.wall_ms);
  return JsonValue(std::move(o));
}

FaultMetrics fault_metrics_from(const JsonValue& v) {
  FaultMetrics f;
  const auto count = [&](const char* key) {
    return static_cast<std::size_t>(v.at(key).as_int());
  };
  f.traces_attempted = count("traces_attempted");
  f.traces_kept = count("traces_kept");
  f.traces_unreachable = count("traces_unreachable");
  f.retries = count("retries");
  f.failovers = count("failovers");
  f.circuits_opened = count("circuits_opened");
  f.probes_abandoned = count("probes_abandoned");
  f.probes_skipped_open_circuit = count("probes_skipped_open_circuit");
  f.probe_timeouts = count("probe_timeouts");
  f.lg_bans = count("lg_bans");
  f.records_withheld = count("records_withheld");
  // Reports written before wall-time accounting lack the key.
  if (const JsonValue* wall = v.find("wall_ms")) f.wall_ms = wall->as_number();
  return f;
}

// Trace-registry snapshot covering the run (util/trace.h). Lives inside
// the `metrics` subtree so byte-equality comparisons, which already cut
// that subtree for its wall-clock content, are unaffected.
JsonValue registry_json(const MetricsSnapshot& snap) {
  JsonValue::Object counters;
  for (const auto& [name, value] : snap.counters) counters.emplace(name, value);
  JsonValue::Object gauges;
  for (const auto& [name, value] : snap.gauges) gauges.emplace(name, value);
  JsonValue::Object timers;
  for (const auto& [name, timer] : snap.timers) {
    JsonValue::Object t;
    t.emplace("count", timer.count);
    t.emplace("total_ms", timer.total_ms);
    timers.emplace(name, std::move(t));
  }
  JsonValue::Object o;
  o.emplace("counters", std::move(counters));
  o.emplace("gauges", std::move(gauges));
  o.emplace("timers", std::move(timers));
  return JsonValue(std::move(o));
}

MetricsSnapshot registry_from(const JsonValue& v) {
  MetricsSnapshot snap;
  if (const JsonValue* counters = v.find("counters"))
    for (const auto& [name, value] : counters->as_object())
      snap.counters.emplace(name,
                            static_cast<std::uint64_t>(value.as_int()));
  if (const JsonValue* gauges = v.find("gauges"))
    for (const auto& [name, value] : gauges->as_object())
      snap.gauges.emplace(name, value.as_number());
  if (const JsonValue* timers = v.find("timers"))
    for (const auto& [name, value] : timers->as_object()) {
      MetricsSnapshot::Timer t;
      t.count = static_cast<std::uint64_t>(value.at("count").as_int());
      t.total_ms = value.at("total_ms").as_number();
      snap.timers.emplace(name, t);
    }
  return snap;
}

JsonValue metrics_json(const CfsMetrics& m) {
  JsonValue::Object o;
  o.emplace("incremental", m.incremental);
  o.emplace("initial_classify_ms", m.initial_classify_ms);
  o.emplace("initial_traces", static_cast<std::uint64_t>(m.initial_traces));
  o.emplace("initial_observations",
            static_cast<std::uint64_t>(m.initial_observations));
  o.emplace("alias_refreshes", static_cast<std::uint64_t>(m.alias_refreshes));
  o.emplace("reclassified_traces",
            static_cast<std::uint64_t>(m.reclassified_traces));
  o.emplace("reclassified_observations",
            static_cast<std::uint64_t>(m.reclassified_observations));
  o.emplace("replayed_observations",
            static_cast<std::uint64_t>(m.replayed_observations));
  o.emplace("total_ms", m.total_ms);
  o.emplace("threads", static_cast<std::uint64_t>(m.threads));
  o.emplace("faults", fault_metrics_json(m.faults));
  o.emplace("registry", registry_json(m.registry));

  JsonValue::Array rows;
  for (const IterationMetrics& r : m.iterations) {
    JsonValue::Object row;
    row.emplace("iteration", static_cast<std::uint64_t>(r.iteration));
    row.emplace("classify_ms", r.classify_ms);
    row.emplace("alias_ms", r.alias_ms);
    row.emplace("reclassify_ms", r.reclassify_ms);
    row.emplace("constrain_ms", r.constrain_ms);
    row.emplace("followup_ms", r.followup_ms);
    row.emplace("alias_refreshed", r.alias_refreshed);
    row.emplace("observations", static_cast<std::uint64_t>(r.observations));
    row.emplace("interfaces", static_cast<std::uint64_t>(r.interfaces));
    row.emplace("resolved", static_cast<std::uint64_t>(r.resolved));
    row.emplace("classified_observations",
                static_cast<std::uint64_t>(r.classified_observations));
    row.emplace("reclassified_traces",
                static_cast<std::uint64_t>(r.reclassified_traces));
    row.emplace("replayed_observations",
                static_cast<std::uint64_t>(r.replayed_observations));
    row.emplace("dirty_observations",
                static_cast<std::uint64_t>(r.dirty_observations));
    row.emplace("constrained_observations",
                static_cast<std::uint64_t>(r.constrained_observations));
    row.emplace("alias_sets_processed",
                static_cast<std::uint64_t>(r.alias_sets_processed));
    row.emplace("followup_pool", static_cast<std::uint64_t>(r.followup_pool));
    row.emplace("followup_budget",
                static_cast<std::uint64_t>(r.followup_budget));
    row.emplace("followups_launched",
                static_cast<std::uint64_t>(r.followups_launched));
    row.emplace("followups_skipped",
                static_cast<std::uint64_t>(r.followups_skipped));
    row.emplace("followup_traces",
                static_cast<std::uint64_t>(r.followup_traces));
    rows.emplace_back(std::move(row));
  }
  o.emplace("iterations", std::move(rows));
  return JsonValue(std::move(o));
}

CfsMetrics metrics_from(const JsonValue& v) {
  CfsMetrics m;
  m.incremental = v.at("incremental").as_bool();
  m.initial_classify_ms = v.at("initial_classify_ms").as_number();
  m.initial_traces =
      static_cast<std::size_t>(v.at("initial_traces").as_int());
  m.initial_observations =
      static_cast<std::size_t>(v.at("initial_observations").as_int());
  m.alias_refreshes =
      static_cast<std::size_t>(v.at("alias_refreshes").as_int());
  m.reclassified_traces =
      static_cast<std::size_t>(v.at("reclassified_traces").as_int());
  m.reclassified_observations =
      static_cast<std::size_t>(v.at("reclassified_observations").as_int());
  m.replayed_observations =
      static_cast<std::size_t>(v.at("replayed_observations").as_int());
  m.total_ms = v.at("total_ms").as_number();
  // Reports written before parallel execution lack the key.
  if (const JsonValue* threads = v.find("threads"))
    m.threads = static_cast<std::size_t>(threads->as_int());
  // Reports written before the fault plane existed lack the key.
  if (const JsonValue* faults = v.find("faults"))
    m.faults = fault_metrics_from(*faults);
  // Reports written before the trace registry existed lack the key.
  if (const JsonValue* registry = v.find("registry"))
    m.registry = registry_from(*registry);

  const auto count = [](const JsonValue& row, const char* key) {
    return static_cast<std::size_t>(row.at(key).as_int());
  };
  for (const auto& row : v.at("iterations").as_array()) {
    IterationMetrics r;
    r.iteration = count(row, "iteration");
    r.classify_ms = row.at("classify_ms").as_number();
    r.alias_ms = row.at("alias_ms").as_number();
    r.reclassify_ms = row.at("reclassify_ms").as_number();
    r.constrain_ms = row.at("constrain_ms").as_number();
    r.followup_ms = row.at("followup_ms").as_number();
    r.alias_refreshed = row.at("alias_refreshed").as_bool();
    r.observations = count(row, "observations");
    r.interfaces = count(row, "interfaces");
    r.resolved = count(row, "resolved");
    r.classified_observations = count(row, "classified_observations");
    r.reclassified_traces = count(row, "reclassified_traces");
    r.replayed_observations = count(row, "replayed_observations");
    r.dirty_observations = count(row, "dirty_observations");
    r.constrained_observations = count(row, "constrained_observations");
    r.alias_sets_processed = count(row, "alias_sets_processed");
    r.followup_pool = count(row, "followup_pool");
    r.followup_budget = count(row, "followup_budget");
    r.followups_launched = count(row, "followups_launched");
    r.followups_skipped = count(row, "followups_skipped");
    r.followup_traces = count(row, "followup_traces");
    m.iterations.push_back(r);
  }
  return m;
}

}  // namespace

JsonValue topology_to_json(const Topology& topo) {
  JsonValue::Object root;
  root.emplace("format_version", format_version);

  JsonValue::Array metros;
  for (const auto& m : topo.metros()) {
    JsonValue::Object o;
    o.emplace("name", m.name);
    o.emplace("country", m.country);
    o.emplace("region", enum_json(m.region));
    o.emplace("location", geo_json(m.location));
    metros.emplace_back(std::move(o));
  }
  root.emplace("metros", std::move(metros));

  JsonValue::Array operators;
  for (const auto& op : topo.operators()) {
    JsonValue::Object o;
    o.emplace("name", op.name);
    o.emplace("carrier_neutral", op.carrier_neutral);
    operators.emplace_back(std::move(o));
  }
  root.emplace("operators", std::move(operators));

  JsonValue::Array facilities;
  for (const auto& f : topo.facilities()) {
    JsonValue::Object o;
    o.emplace("name", f.name);
    o.emplace("operator", f.oper.value);
    o.emplace("metro", f.metro.value);
    o.emplace("location", geo_json(f.location));
    o.emplace("raw_city", f.raw_city_name);
    facilities.emplace_back(std::move(o));
  }
  root.emplace("facilities", std::move(facilities));

  JsonValue::Array ixps;
  for (const auto& ixp : topo.ixps()) {
    JsonValue::Object o;
    o.emplace("name", ixp.name);
    o.emplace("metro", ixp.metro.value);
    o.emplace("peering_lan", prefix_json(ixp.peering_lan));
    o.emplace("has_route_server", ixp.has_route_server);
    o.emplace("route_server_asn", ixp.has_route_server
                                      ? JsonValue(ixp.route_server_asn.value)
                                      : JsonValue(nullptr));
    o.emplace("route_server_address",
              ixp.has_route_server ? addr_json(ixp.route_server_address)
                                   : JsonValue(nullptr));
    JsonValue::Array switches;
    for (const auto& sw : ixp.switches) {
      JsonValue::Object s;
      s.emplace("kind", enum_json(sw.kind));
      s.emplace("facility", sw.facility.value);
      s.emplace("parent", sw.parent);
      switches.emplace_back(std::move(s));
    }
    o.emplace("switches", std::move(switches));
    JsonValue::Array ports;
    for (const auto& port : ixp.ports) {
      JsonValue::Object p;
      p.emplace("member", port.member.value);
      p.emplace("router", port.router.value);
      p.emplace("address", addr_json(port.lan_address));
      p.emplace("access_switch", port.access_switch);
      p.emplace("remote", port.remote);
      p.emplace("reseller", port.reseller.valid()
                                ? JsonValue(port.reseller.value)
                                : JsonValue(nullptr));
      p.emplace("route_server_session", port.route_server_session);
      ports.emplace_back(std::move(p));
    }
    o.emplace("ports", std::move(ports));
    ixps.emplace_back(std::move(o));
  }
  root.emplace("ixps", std::move(ixps));

  JsonValue::Array ases;
  for (const auto& as : topo.ases()) {
    JsonValue::Object o;
    o.emplace("asn", as.asn.value);
    o.emplace("name", as.name);
    o.emplace("type", enum_json(as.type));
    JsonValue::Array prefixes;
    for (const auto& p : as.prefixes) prefixes.push_back(prefix_json(p));
    o.emplace("prefixes", std::move(prefixes));
    JsonValue::Array facs;
    for (const auto f : as.facilities) facs.emplace_back(f.value);
    o.emplace("facilities", std::move(facs));
    JsonValue::Array memberships;
    for (const auto ix : as.ixps) memberships.emplace_back(ix.value);
    o.emplace("ixps", std::move(memberships));
    o.emplace("dns", enum_json(as.dns));
    o.emplace("dns_zone", as.dns_zone);
    ases.emplace_back(std::move(o));
  }
  root.emplace("ases", std::move(ases));

  JsonValue::Array routers;
  for (const auto& r : topo.routers()) {
    JsonValue::Object o;
    o.emplace("owner", r.owner.value);
    o.emplace("facility", r.facility.value);
    o.emplace("local_address", addr_json(r.local_address));
    o.emplace("ipid", enum_json(r.ipid));
    o.emplace("responds", r.responds_to_traceroute);
    routers.emplace_back(std::move(o));
  }
  root.emplace("routers", std::move(routers));

  JsonValue::Array links;
  for (const auto& l : topo.links()) {
    JsonValue::Object o;
    o.emplace("type", enum_json(l.type));
    o.emplace("rel", enum_json(l.rel));
    o.emplace("a_router", l.a.router.value);
    o.emplace("a_address", addr_json(l.a.address));
    o.emplace("b_router", l.b.router.value);
    o.emplace("b_address", addr_json(l.b.address));
    o.emplace("ixp", id_json(l.ixp));
    o.emplace("facility", id_json(l.facility));
    o.emplace("latency_ms", l.latency_ms);
    o.emplace("multilateral", l.multilateral);
    links.emplace_back(std::move(o));
  }
  root.emplace("links", std::move(links));

  // Interfaces: everything except router local addresses (re-registered by
  // the importer) -- we export all and let the importer skip duplicates via
  // the link/role data. Simplest lossless form: every registered interface.
  JsonValue::Array interfaces;
  for (const auto& r : topo.routers()) {
    for (const Ipv4 addr : r.interfaces) {
      const Interface* iface = topo.find_interface(addr);
      JsonValue::Object o;
      o.emplace("address", addr_json(addr));
      o.emplace("router", iface->router.value);
      o.emplace("link", id_json(iface->link));
      o.emplace("role", enum_json(iface->role));
      interfaces.emplace_back(std::move(o));
    }
  }
  root.emplace("interfaces", std::move(interfaces));

  JsonValue::Array customer_provider;
  JsonValue::Array peering;
  for (const auto& as : topo.ases()) {
    for (const Asn p : topo.relations(as.asn).providers) {
      JsonValue::Array pair;
      pair.emplace_back(as.asn.value);
      pair.emplace_back(p.value);
      customer_provider.emplace_back(std::move(pair));
    }
    for (const Asn p : topo.relations(as.asn).peers) {
      if (p.value < as.asn.value) continue;  // emit each pair once
      JsonValue::Array pair;
      pair.emplace_back(as.asn.value);
      pair.emplace_back(p.value);
      peering.emplace_back(std::move(pair));
    }
  }
  JsonValue::Object rels;
  rels.emplace("customer_provider", std::move(customer_provider));
  rels.emplace("peering", std::move(peering));
  root.emplace("relationships", std::move(rels));

  JsonValue::Array announcements;
  topo.announcements().for_each([&](const Prefix& prefix, Asn origin) {
    JsonValue::Array pair;
    pair.push_back(prefix_json(prefix));
    pair.emplace_back(origin.value);
    announcements.emplace_back(std::move(pair));
  });
  root.emplace("announcements", std::move(announcements));

  return JsonValue(std::move(root));
}

Topology topology_from_json(const JsonValue& doc) {
  if (doc.at("format_version").as_int() != format_version)
    throw std::runtime_error("unsupported topology format version");

  Topology topo;

  for (const auto& m : doc.at("metros").as_array()) {
    Metro metro;
    metro.name = m.at("name").as_string();
    metro.country = m.at("country").as_string();
    metro.region = enum_from<Region>(m.at("region"));
    metro.location = geo_from(m.at("location"));
    topo.add_metro(std::move(metro));
  }

  for (const auto& op : doc.at("operators").as_array()) {
    FacilityOperator fo;
    fo.name = op.at("name").as_string();
    fo.carrier_neutral = op.at("carrier_neutral").as_bool();
    topo.add_operator(std::move(fo));
  }

  for (const auto& f : doc.at("facilities").as_array()) {
    Facility fac;
    fac.name = f.at("name").as_string();
    fac.oper = OperatorId(static_cast<std::uint32_t>(f.at("operator").as_int()));
    fac.metro = MetroId(static_cast<std::uint32_t>(f.at("metro").as_int()));
    fac.location = geo_from(f.at("location"));
    fac.raw_city_name = f.at("raw_city").as_string();
    topo.add_facility(std::move(fac));
  }

  // IXPs first without ports (ports reference routers).
  for (const auto& x : doc.at("ixps").as_array()) {
    Ixp ixp;
    ixp.name = x.at("name").as_string();
    ixp.metro = MetroId(static_cast<std::uint32_t>(x.at("metro").as_int()));
    ixp.peering_lan = prefix_from(x.at("peering_lan"));
    ixp.has_route_server = x.at("has_route_server").as_bool();
    if (ixp.has_route_server) {
      ixp.route_server_asn = Asn(
          static_cast<std::uint32_t>(x.at("route_server_asn").as_int()));
      ixp.route_server_address = addr_from(x.at("route_server_address"));
    }
    for (const auto& s : x.at("switches").as_array()) {
      IxpSwitch sw;
      sw.kind = enum_from<IxpSwitch::Kind>(s.at("kind"));
      sw.facility =
          FacilityId(static_cast<std::uint32_t>(s.at("facility").as_int()));
      sw.parent = static_cast<std::uint32_t>(s.at("parent").as_int());
      ixp.switches.push_back(sw);
    }
    topo.add_ixp(std::move(ixp));
  }

  for (const auto& a : doc.at("ases").as_array()) {
    AutonomousSystem as;
    as.asn = Asn(static_cast<std::uint32_t>(a.at("asn").as_int()));
    as.name = a.at("name").as_string();
    as.type = enum_from<AsType>(a.at("type"));
    for (const auto& p : a.at("prefixes").as_array())
      as.prefixes.push_back(prefix_from(p));
    for (const auto& f : a.at("facilities").as_array())
      as.facilities.emplace_back(static_cast<std::uint32_t>(f.as_int()));
    for (const auto& ix : a.at("ixps").as_array())
      as.ixps.emplace_back(static_cast<std::uint32_t>(ix.as_int()));
    as.dns = enum_from<DnsConvention>(a.at("dns"));
    as.dns_zone = a.at("dns_zone").as_string();
    topo.add_as(std::move(as));
  }

  for (const auto& r : doc.at("routers").as_array()) {
    Router router;
    router.owner = Asn(static_cast<std::uint32_t>(r.at("owner").as_int()));
    router.facility =
        FacilityId(static_cast<std::uint32_t>(r.at("facility").as_int()));
    router.local_address = addr_from(r.at("local_address"));
    router.ipid = enum_from<IpIdBehaviour>(r.at("ipid"));
    router.responds_to_traceroute = r.at("responds").as_bool();
    topo.add_router(std::move(router));
  }

  for (const auto& i : doc.at("interfaces").as_array()) {
    Interface iface;
    iface.address = addr_from(i.at("address"));
    iface.router =
        RouterId(static_cast<std::uint32_t>(i.at("router").as_int()));
    iface.link = id_from<LinkId>(i.at("link"));
    iface.role = enum_from<InterfaceRole>(i.at("role"));
    topo.add_interface(iface);
  }

  for (const auto& l : doc.at("links").as_array()) {
    Link link;
    link.type = enum_from<LinkType>(l.at("type"));
    link.rel = enum_from<BusinessRel>(l.at("rel"));
    link.a = LinkEnd{
        RouterId(static_cast<std::uint32_t>(l.at("a_router").as_int())),
        addr_from(l.at("a_address"))};
    link.b = LinkEnd{
        RouterId(static_cast<std::uint32_t>(l.at("b_router").as_int())),
        addr_from(l.at("b_address"))};
    link.ixp = id_from<IxpId>(l.at("ixp"));
    link.facility = id_from<FacilityId>(l.at("facility"));
    link.latency_ms = l.at("latency_ms").as_number();
    link.multilateral = l.at("multilateral").as_bool();
    topo.add_link(link);
  }

  // Ports after routers exist.
  {
    std::uint32_t ixp_index = 0;
    for (const auto& x : doc.at("ixps").as_array()) {
      Ixp& ixp = topo.mutable_ixp(IxpId(ixp_index++));
      for (const auto& p : x.at("ports").as_array()) {
        IxpPort port;
        port.member = Asn(static_cast<std::uint32_t>(p.at("member").as_int()));
        port.router =
            RouterId(static_cast<std::uint32_t>(p.at("router").as_int()));
        port.lan_address = addr_from(p.at("address"));
        port.access_switch =
            static_cast<std::uint32_t>(p.at("access_switch").as_int());
        port.remote = p.at("remote").as_bool();
        if (!p.at("reseller").is_null())
          port.reseller =
              Asn(static_cast<std::uint32_t>(p.at("reseller").as_int()));
        port.route_server_session =
            p.at("route_server_session").as_bool();
        ixp.ports.push_back(port);
      }
    }
  }

  const auto& rels = doc.at("relationships");
  for (const auto& pair : rels.at("customer_provider").as_array())
    topo.add_relationship(
        Asn(static_cast<std::uint32_t>(pair.at(0).as_int())),
        Asn(static_cast<std::uint32_t>(pair.at(1).as_int())));
  for (const auto& pair : rels.at("peering").as_array())
    topo.add_peering(Asn(static_cast<std::uint32_t>(pair.at(0).as_int())),
                     Asn(static_cast<std::uint32_t>(pair.at(1).as_int())));

  for (const auto& pair : doc.at("announcements").as_array())
    topo.announce(prefix_from(pair.at(0)),
                  Asn(static_cast<std::uint32_t>(pair.at(1).as_int())));

  topo.validate();
  return topo;
}

JsonValue report_to_json(const CfsReport& report) {
  TraceSpan span("export.report");
  span.arg("interfaces", report.interfaces.size());
  span.arg("links", report.links.size());
  JsonValue::Object root;
  root.emplace("format_version", format_version);
  root.emplace("traces_used", static_cast<std::uint64_t>(report.traces_used));
  root.emplace("iterations_run",
               static_cast<std::uint64_t>(report.iterations_run));

  JsonValue::Array history;
  for (const auto v : report.resolved_per_iteration)
    history.emplace_back(static_cast<std::uint64_t>(v));
  root.emplace("resolved_per_iteration", std::move(history));

  // Canonical interface order: the store is an unordered_map, whose
  // iteration order depends on insertion history — a report rebuilt from
  // its own JSON would re-serialise in a different order, so the exported
  // form would never reach a byte-stable fixpoint (the round-trip property
  // in tests/io/export_fixpoint_test.cpp). Sorting by address makes the
  // export a pure function of report content.
  std::vector<const InterfaceInference*> ordered;
  ordered.reserve(report.interfaces.size());
  for (const auto& [addr, inf] : report.interfaces) ordered.push_back(&inf);
  std::sort(ordered.begin(), ordered.end(),
            [](const InterfaceInference* a, const InterfaceInference* b) {
              return a->addr < b->addr;
            });

  JsonValue::Array interfaces;
  for (const InterfaceInference* inf_ptr : ordered) {
    const InterfaceInference& inf = *inf_ptr;
    const Ipv4 addr = inf.addr;
    JsonValue::Object o;
    o.emplace("address", addr_json(addr));
    o.emplace("asn", inf.asn.value);
    o.emplace("has_constraint", inf.has_constraint);
    JsonValue::Array cands;
    for (const auto f : inf.candidates) cands.emplace_back(f.value);
    o.emplace("candidates", std::move(cands));
    o.emplace("remote_suspect", inf.remote_suspect);
    o.emplace("resolved_iteration", inf.resolved_iteration);
    o.emplace("conflicts", inf.conflicts);
    interfaces.emplace_back(std::move(o));
  }
  root.emplace("interfaces", std::move(interfaces));

  JsonValue::Array links;
  for (const auto& link : report.links) {
    JsonValue::Object o;
    o.emplace("kind", enum_json(link.obs.kind));
    o.emplace("near_address", addr_json(link.obs.near_addr));
    o.emplace("near_as", link.obs.near_as.value);
    o.emplace("far_address", addr_json(link.obs.far_addr));
    o.emplace("far_as", link.obs.far_as.value);
    o.emplace("ixp", id_json(link.obs.ixp));
    o.emplace("near_rtt_ms", link.obs.near_rtt_ms);
    o.emplace("far_rtt_ms", link.obs.far_rtt_ms);
    o.emplace("type", enum_json(link.type));
    o.emplace("near_facility", link.near_facility
                                   ? JsonValue(link.near_facility->value)
                                   : JsonValue(nullptr));
    o.emplace("far_facility", link.far_facility
                                  ? JsonValue(link.far_facility->value)
                                  : JsonValue(nullptr));
    o.emplace("far_by_proximity", link.far_by_proximity);
    links.emplace_back(std::move(o));
  }
  root.emplace("links", std::move(links));

  JsonValue::Array alias_sets;
  for (const auto& set : report.aliases.sets) {
    JsonValue::Array addrs;
    for (const Ipv4 a : set) addrs.push_back(addr_json(a));
    alias_sets.emplace_back(std::move(addrs));
  }
  root.emplace("alias_sets", std::move(alias_sets));

  JsonValue::Array unresolved;
  for (const Ipv4 a : report.aliases.unresolved)
    unresolved.push_back(addr_json(a));
  root.emplace("alias_unresolved", std::move(unresolved));

  root.emplace("metrics", metrics_json(report.metrics));

  return JsonValue(std::move(root));
}

CfsReport report_from_json(const JsonValue& doc) {
  if (doc.at("format_version").as_int() != format_version)
    throw std::runtime_error("unsupported report format version");

  CfsReport report;
  report.traces_used =
      static_cast<std::size_t>(doc.at("traces_used").as_int());
  report.iterations_run =
      static_cast<std::size_t>(doc.at("iterations_run").as_int());
  for (const auto& v : doc.at("resolved_per_iteration").as_array())
    report.resolved_per_iteration.push_back(
        static_cast<std::size_t>(v.as_int()));

  for (const auto& i : doc.at("interfaces").as_array()) {
    InterfaceInference inf;
    inf.addr = addr_from(i.at("address"));
    inf.asn = Asn(static_cast<std::uint32_t>(i.at("asn").as_int()));
    inf.has_constraint = i.at("has_constraint").as_bool();
    for (const auto& f : i.at("candidates").as_array())
      inf.candidates.emplace_back(static_cast<std::uint32_t>(f.as_int()));
    inf.remote_suspect = i.at("remote_suspect").as_bool();
    inf.resolved_iteration =
        static_cast<int>(i.at("resolved_iteration").as_int());
    inf.conflicts = static_cast<int>(i.at("conflicts").as_int());
    report.interfaces.emplace(inf.addr, std::move(inf));
  }

  for (const auto& l : doc.at("links").as_array()) {
    LinkInference link;
    link.obs.kind = enum_from<PeeringKind>(l.at("kind"));
    link.obs.near_addr = addr_from(l.at("near_address"));
    link.obs.near_as =
        Asn(static_cast<std::uint32_t>(l.at("near_as").as_int()));
    link.obs.far_addr = addr_from(l.at("far_address"));
    link.obs.far_as = Asn(static_cast<std::uint32_t>(l.at("far_as").as_int()));
    link.obs.ixp = id_from<IxpId>(l.at("ixp"));
    link.obs.near_rtt_ms = l.at("near_rtt_ms").as_number();
    link.obs.far_rtt_ms = l.at("far_rtt_ms").as_number();
    link.type = enum_from<InterconnectionType>(l.at("type"));
    if (!l.at("near_facility").is_null())
      link.near_facility = FacilityId(
          static_cast<std::uint32_t>(l.at("near_facility").as_int()));
    if (!l.at("far_facility").is_null())
      link.far_facility = FacilityId(
          static_cast<std::uint32_t>(l.at("far_facility").as_int()));
    link.far_by_proximity = l.at("far_by_proximity").as_bool();
    report.links.push_back(std::move(link));
  }

  for (const auto& set : doc.at("alias_sets").as_array()) {
    std::vector<Ipv4> addrs;
    for (const auto& a : set.as_array()) addrs.push_back(addr_from(a));
    report.aliases.sets.push_back(std::move(addrs));
  }
  for (const auto& a : doc.at("alias_unresolved").as_array())
    report.aliases.unresolved.push_back(addr_from(a));

  // Reports written before metrics existed simply lack the key.
  if (const JsonValue* metrics = doc.find("metrics"))
    report.metrics = metrics_from(*metrics);

  return report;
}

void write_topology(std::ostream& os, const Topology& topo) {
  TraceSpan span("export.topology");
  span.arg("routers", topo.routers().size());
  span.arg("links", topo.links().size());
  os << topology_to_json(topo).pretty() << '\n';
}

void write_report(std::ostream& os, const CfsReport& report) {
  os << report_to_json(report).pretty() << '\n';
}

namespace {

// Write-to-temp + rename(2). rename is atomic within a filesystem and the
// temp file is a sibling of the target, so the swap never crosses one.
template <class Emit>
void atomic_replace(const std::string& path, Emit&& emit) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream file(tmp, std::ios::trunc);
    if (!file) throw std::runtime_error("cannot write " + tmp);
    emit(file);
    file.flush();
    if (!file) {
      std::remove(tmp.c_str());
      throw std::runtime_error("short write to " + tmp);
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw std::runtime_error("cannot rename " + tmp + " to " + path);
  }
}

}  // namespace

void write_topology_file(const std::string& path, const Topology& topo) {
  atomic_replace(path, [&](std::ostream& os) { write_topology(os, topo); });
}

void write_report_file(const std::string& path, const CfsReport& report) {
  atomic_replace(path, [&](std::ostream& os) { write_report(os, report); });
}

}  // namespace cfs
