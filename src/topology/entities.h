// Plain-value entity model for the synthetic peering ecosystem.
//
// The ground-truth topology mirrors the physical reality the paper reasons
// about: metros contain interconnection facilities run by operators; IXPs
// deploy access switches inside facilities; ASes place border routers at
// facilities and interconnect over four engineering options (cross-connect,
// public peering, tethering, remote peering).
#pragma once

#include <string>
#include <vector>

#include "net/ipv4.h"
#include "util/geo.h"
#include "util/ids.h"

namespace cfs {

enum class Region {
  NorthAmerica,
  Europe,
  Asia,
  Oceania,
  SouthAmerica,
  Africa,
};

std::string_view region_name(Region region);
inline constexpr int region_count = 6;

struct Metro {
  MetroId id;
  std::string name;       // canonical metro name, e.g. "London"
  std::string country;    // ISO-ish country name
  Region region = Region::Europe;
  GeoPoint location;
};

struct FacilityOperator {
  OperatorId id;
  std::string name;
  bool carrier_neutral = true;
};

struct Facility {
  FacilityId id;
  std::string name;          // e.g. "Equinix LD5"
  OperatorId oper;
  MetroId metro;
  GeoPoint location;         // jittered around the metro centre
  std::string raw_city_name; // as it would appear in PeeringDB (pre-normalise)
};

enum class AsType {
  Tier1,       // global transit, settlement-free core
  Transit,     // regional / national transit provider
  Content,     // CDN or large content provider
  Eyeball,     // access / broadband ISP
  Enterprise,  // stub enterprise or small hoster
};

std::string_view as_type_name(AsType type);

// How an operator names router interfaces in DNS (consumed by the DNS
// data-source emulation and the DRoP baseline).
enum class DnsConvention {
  None,          // no PTR records at all (e.g. large content providers)
  FacilityCode,  // encodes facility + city, e.g. rtr1.thn.lon.example.net
  AirportCode,   // encodes IATA-style metro code only
  CityName,      // encodes full city name
  Opaque,        // PTR exists but carries no location hint
  Stale,         // encodes a location, sometimes the wrong one
};

struct AutonomousSystem {
  Asn asn;
  std::string name;
  AsType type = AsType::Enterprise;
  std::vector<Prefix> prefixes;        // announced address space
  std::vector<FacilityId> facilities;  // ground-truth presence
  std::vector<IxpId> ixps;             // memberships (see Ixp::ports)
  DnsConvention dns = DnsConvention::Opaque;
  std::string dns_zone;                // e.g. "as3320.example.net"
};

// How a router source generates IP-ID values; drives MIDAR-style alias
// resolution fidelity.
enum class IpIdBehaviour {
  SharedCounter,  // classic shared monotonic counter -> resolvable
  Random,         // randomised IP-ID -> false negatives
  Zero,           // constant zero -> false negatives
  Unresponsive,   // drops alias-resolution probes entirely
};

struct Router {
  RouterId id;
  Asn owner;
  FacilityId facility;            // ground-truth location
  Ipv4 local_address;             // loopback-style address in owner space
  std::vector<Ipv4> interfaces;   // all addresses incl. local_address
  IpIdBehaviour ipid = IpIdBehaviour::SharedCounter;
  bool responds_to_traceroute = true;
};

enum class LinkType {
  Backbone,            // intra-AS connection between two routers
  PrivateCrossConnect, // inter-AS dedicated circuit inside one facility
  PublicPeering,       // BGP adjacency over an IXP peering LAN
  Tethering,           // private VLAN point-to-point over an IXP fabric
};

enum class BusinessRel {
  CustomerProvider,  // endpoint A is customer of endpoint B
  PeerPeer,
  Intra,             // backbone
};

struct LinkEnd {
  RouterId router;
  Ipv4 address;  // this router's interface address on the link
};

struct Link {
  LinkId id;
  LinkType type = LinkType::Backbone;
  BusinessRel rel = BusinessRel::Intra;
  LinkEnd a;
  LinkEnd b;
  IxpId ixp;                 // valid for PublicPeering / Tethering
  FacilityId facility;       // valid for PrivateCrossConnect (the building)
  double latency_ms = 0.1;   // one-way propagation + switching delay
  // PublicPeering only: session established through the IXP route server
  // (multilateral peering) rather than a bilateral BGP session.
  bool multilateral = false;
};

enum class InterfaceRole {
  Local,       // router's own address (first-hop / loopback style)
  Backbone,
  IxpLan,      // address from an IXP peering LAN
  PrivatePtp,  // address on a private inter-AS point-to-point subnet
  Host,        // end host (vantage point or probe target)
};

struct Interface {
  Ipv4 address;
  RouterId router;
  LinkId link;  // invalid for Local/Host
  InterfaceRole role = InterfaceRole::Local;
};

}  // namespace cfs
