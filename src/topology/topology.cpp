#include "topology/topology.h"

#include <algorithm>
#include <string>

namespace cfs {

AsRelations Topology::empty_relations_;

namespace {

template <class T>
const T& checked(const std::vector<T>& v, std::uint32_t index,
                 const char* what) {
  if (index >= v.size())
    throw std::out_of_range(std::string("Topology: bad ") + what + " id " +
                            std::to_string(index));
  return v[index];
}

}  // namespace

MetroId Topology::add_metro(Metro metro) {
  metro.id = MetroId(static_cast<std::uint32_t>(metros_.size()));
  metros_.push_back(std::move(metro));
  return metros_.back().id;
}

OperatorId Topology::add_operator(FacilityOperator op) {
  op.id = OperatorId(static_cast<std::uint32_t>(operators_.size()));
  operators_.push_back(std::move(op));
  return operators_.back().id;
}

FacilityId Topology::add_facility(Facility facility) {
  facility.id = FacilityId(static_cast<std::uint32_t>(facilities_.size()));
  facilities_.push_back(std::move(facility));
  return facilities_.back().id;
}

IxpId Topology::add_ixp(Ixp ixp) {
  ixp.id = IxpId(static_cast<std::uint32_t>(ixps_.size()));
  ixp_lans_.insert(ixp.peering_lan, ixp.id);
  ixps_.push_back(std::move(ixp));
  return ixps_.back().id;
}

void Topology::add_as(AutonomousSystem as) {
  if (!as.asn.valid()) throw std::invalid_argument("add_as: invalid ASN");
  if (asn_index_.contains(as.asn.value))
    throw std::invalid_argument("add_as: duplicate ASN " +
                                std::to_string(as.asn.value));
  // Facility lists feed std::set_intersection downstream (NOC websites,
  // common_facilities, CFS constraints): enforce the sorted-set invariant
  // at the door instead of trusting every caller.
  std::sort(as.facilities.begin(), as.facilities.end());
  as.facilities.erase(
      std::unique(as.facilities.begin(), as.facilities.end()),
      as.facilities.end());
  asn_index_.emplace(as.asn.value, ases_.size());
  ases_.push_back(std::move(as));
}

RouterId Topology::add_router(Router router) {
  router.id = RouterId(static_cast<std::uint32_t>(routers_.size()));
  routers_.push_back(std::move(router));
  router_links_.emplace_back();
  return routers_.back().id;
}

LinkId Topology::add_link(Link link) {
  link.id = LinkId(static_cast<std::uint32_t>(links_.size()));
  if (link.a.router.value >= routers_.size() ||
      link.b.router.value >= routers_.size())
    throw std::invalid_argument("add_link: unknown router endpoint");
  links_.push_back(link);
  router_links_[link.a.router.value].push_back(link.id);
  router_links_[link.b.router.value].push_back(link.id);
  return links_.back().id;
}

void Topology::add_interface(Interface iface) {
  if (iface.router.value >= routers_.size())
    throw std::invalid_argument("add_interface: unknown router");
  const auto [it, inserted] = interfaces_.emplace(iface.address, iface);
  if (!inserted)
    throw std::invalid_argument("add_interface: duplicate address " +
                                iface.address.to_string());
  routers_[iface.router.value].interfaces.push_back(iface.address);
}

void Topology::add_relationship(Asn customer, Asn provider) {
  relations_[customer].providers.push_back(provider);
  relations_[provider].customers.push_back(customer);
}

void Topology::add_peering(Asn a, Asn b) {
  relations_[a].peers.push_back(b);
  relations_[b].peers.push_back(a);
}

void Topology::announce(const Prefix& prefix, Asn origin) {
  announcements_.insert(prefix, origin);
}

Ixp& Topology::mutable_ixp(IxpId id) {
  checked(ixps_, id.value, "ixp");
  return ixps_[id.value];
}

AutonomousSystem& Topology::mutable_as(Asn asn) {
  const auto it = asn_index_.find(asn.value);
  if (it == asn_index_.end())
    throw std::out_of_range("mutable_as: unknown ASN " +
                            std::to_string(asn.value));
  return ases_[it->second];
}

Router& Topology::mutable_router(RouterId id) {
  checked(routers_, id.value, "router");
  return routers_[id.value];
}

Link& Topology::mutable_link(LinkId id) {
  checked(links_, id.value, "link");
  return links_[id.value];
}

const Metro& Topology::metro(MetroId id) const {
  return checked(metros_, id.value, "metro");
}
const FacilityOperator& Topology::oper(OperatorId id) const {
  return checked(operators_, id.value, "operator");
}
const Facility& Topology::facility(FacilityId id) const {
  return checked(facilities_, id.value, "facility");
}
const Ixp& Topology::ixp(IxpId id) const {
  return checked(ixps_, id.value, "ixp");
}
const Router& Topology::router(RouterId id) const {
  return checked(routers_, id.value, "router");
}
const Link& Topology::link(LinkId id) const {
  return checked(links_, id.value, "link");
}

const AutonomousSystem* Topology::find_as(Asn asn) const {
  const auto it = asn_index_.find(asn.value);
  return it == asn_index_.end() ? nullptr : &ases_[it->second];
}

const AutonomousSystem& Topology::as_of(Asn asn) const {
  const auto* as = find_as(asn);
  if (as == nullptr)
    throw std::out_of_range("as_of: unknown ASN " + std::to_string(asn.value));
  return *as;
}

const Interface* Topology::find_interface(Ipv4 addr) const {
  const auto it = interfaces_.find(addr);
  return it == interfaces_.end() ? nullptr : &it->second;
}

std::span<const LinkId> Topology::links_of(RouterId router) const {
  checked(routers_, router.value, "router");
  return router_links_[router.value];
}

std::vector<RouterId> Topology::routers_of(Asn asn) const {
  std::vector<RouterId> out;
  for (const auto& r : routers_)
    if (r.owner == asn) out.push_back(r.id);
  return out;
}

std::vector<RouterId> Topology::routers_at(Asn asn,
                                           FacilityId facility) const {
  std::vector<RouterId> out;
  for (const auto& r : routers_)
    if (r.owner == asn && r.facility == facility) out.push_back(r.id);
  return out;
}

std::optional<Asn> Topology::origin_of(Ipv4 addr) const {
  const auto hit = announcements_.lookup(addr);
  if (!hit) return std::nullopt;
  return hit->second;
}

std::optional<IxpId> Topology::ixp_of_address(Ipv4 addr) const {
  const auto hit = ixp_lans_.lookup(addr);
  if (!hit) return std::nullopt;
  return hit->second;
}

const AsRelations& Topology::relations(Asn asn) const {
  const auto it = relations_.find(asn);
  return it == relations_.end() ? empty_relations_ : it->second;
}

bool Topology::is_provider_of(Asn provider, Asn customer) const {
  const auto& rel = relations(customer);
  return std::find(rel.providers.begin(), rel.providers.end(), provider) !=
         rel.providers.end();
}

bool Topology::is_peer_of(Asn a, Asn b) const {
  const auto& rel = relations(a);
  return std::find(rel.peers.begin(), rel.peers.end(), b) != rel.peers.end();
}

MetroId Topology::metro_of(FacilityId fac) const {
  return facility(fac).metro;
}

void Topology::validate() const {
  auto fail = [](const std::string& msg) {
    throw std::logic_error("Topology::validate: " + msg);
  };

  for (const auto& fac : facilities_) {
    if (fac.metro.value >= metros_.size()) fail("facility with bad metro");
    if (fac.oper.value >= operators_.size()) fail("facility with bad operator");
  }

  for (const auto& ixp : ixps_) {
    if (ixp.metro.value >= metros_.size()) fail("ixp with bad metro");
    if (ixp.switches.empty()) fail("ixp without switches");
    if (ixp.switches[0].kind != IxpSwitch::Kind::Core)
      fail("ixp switch 0 must be the core");
    for (const auto& sw : ixp.switches) {
      if (sw.parent >= ixp.switches.size()) fail("switch with bad parent");
      if (sw.kind == IxpSwitch::Kind::Access &&
          sw.facility.value >= facilities_.size())
        fail("access switch with bad facility");
      if (sw.kind == IxpSwitch::Kind::Access &&
          ixp.switches[sw.parent].kind == IxpSwitch::Kind::Access)
        fail("access switch parented to access switch");
    }
    for (const auto& port : ixp.ports) {
      if (port.router.value >= routers_.size()) fail("port with bad router");
      if (!ixp.peering_lan.contains(port.lan_address))
        fail("port address outside peering LAN");
      if (port.access_switch >= ixp.switches.size() ||
          ixp.switches[port.access_switch].kind != IxpSwitch::Kind::Access)
        fail("port on non-access switch");
      if (!asn_index_.contains(port.member.value)) fail("port of unknown AS");
      const Router& r = routers_[port.router.value];
      if (r.owner != port.member) fail("port router owned by a different AS");
      if (!port.remote) {
        // A local port implies the member's router sits inside a facility
        // hosting the access switch it connects to.
        if (r.facility != ixp.switches[port.access_switch].facility)
          fail("local port router not in the access-switch facility");
      }
    }
  }

  for (const auto& as : ases_) {
    for (const auto fac : as.facilities)
      if (fac.value >= facilities_.size()) fail("as present at bad facility");
    for (const auto ix : as.ixps)
      if (ix.value >= ixps_.size()) fail("as member of bad ixp");
  }

  for (const auto& r : routers_) {
    if (!asn_index_.contains(r.owner.value)) fail("router with unknown owner");
    if (r.facility.value >= facilities_.size())
      fail("router with bad facility");
    const auto& as = ases_[asn_index_.at(r.owner.value)];
    if (std::find(as.facilities.begin(), as.facilities.end(), r.facility) ==
        as.facilities.end())
      fail("router at a facility its AS is not present at");
    for (const Ipv4 addr : r.interfaces) {
      const auto it = interfaces_.find(addr);
      if (it == interfaces_.end()) fail("router interface not registered");
      if (it->second.router != r.id) fail("interface registered to other router");
    }
  }

  for (const auto& l : links_) {
    if (l.a.router.value >= routers_.size() ||
        l.b.router.value >= routers_.size())
      fail("link with bad router");
    if (l.latency_ms < 0.0) fail("negative link latency");
    const Router& ra = routers_[l.a.router.value];
    const Router& rb = routers_[l.b.router.value];
    switch (l.type) {
      case LinkType::Backbone:
        if (ra.owner != rb.owner) fail("backbone link across ASes");
        if (l.rel != BusinessRel::Intra) fail("backbone link with ext rel");
        break;
      case LinkType::PrivateCrossConnect:
        if (ra.owner == rb.owner) fail("cross-connect within one AS");
        if (l.facility.value >= facilities_.size())
          fail("cross-connect without facility");
        break;
      case LinkType::PublicPeering:
      case LinkType::Tethering:
        if (l.ixp.value >= ixps_.size()) fail("ixp link without ixp");
        if (ra.owner == rb.owner) fail("ixp link within one AS");
        break;
    }
    for (const LinkEnd* end : {&l.a, &l.b}) {
      const auto it = interfaces_.find(end->address);
      if (it == interfaces_.end()) fail("link end address not registered");
      if (it->second.router != end->router)
        fail("link end address on wrong router");
    }
  }
}

}  // namespace cfs
