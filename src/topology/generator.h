// Synthetic peering-ecosystem generator.
//
// Produces a ground-truth Topology whose structural statistics track the
// ones the paper measured: Zipf-sized metros (Fig. 3), IXPs spanning many
// facilities in large hubs, ASes of five business types with realistic
// presence footprints, the four interconnection engineering options of
// Section 2, remote peering at ~15-20% of large-IXP members, and the
// address-numbering quirks (point-to-point subnets numbered from one side)
// that make IP-to-ASN mapping genuinely error-prone.
#pragma once

#include <cstdint>

#include "topology/topology.h"

namespace cfs {

struct GeneratorConfig {
  std::uint64_t seed = 42;

  // --- scale ---
  int metros = 40;              // catalog entries used (largest first)
  double facility_density = 0.8;  // multiplier on metro facility counts
  int tier1_count = 8;
  int transit_count = 60;
  int content_count = 24;
  int eyeball_count = 180;
  int enterprise_count = 120;

  // --- IXP fabric ---
  int max_ixp_span = 18;            // max facilities one IXP reaches
  int backhaul_fanin = 3;           // access switches per backhaul switch
  double remote_member_fraction = 0.15;
  // Route servers: fraction of IXPs operating one, per-member session
  // probability, and the density of the resulting multilateral mesh that
  // is actually instantiated as peering adjacencies.
  double route_server_prob = 0.7;
  double rs_session_prob_small = 0.85;  // eyeball / enterprise members
  double rs_session_prob_large = 0.35;  // tier1 / transit / content members
  double multilateral_density = 0.2;

  // --- interconnection style ---
  double content_open_peering_prob = 0.45;  // peer with colocated eyeballs
  double transit_peering_prob = 0.25;       // transit-transit at common IXP
  double private_over_public_threshold = 0.25;  // big peers add x-connects
  double tether_fraction = 0.06;   // customer links carried as IXP VLANs
  double multi_location_peering_prob = 0.35;  // instantiate link in 2+ sites

  // --- numbering / router behaviour ---
  double foreign_numbered_ptp = 0.3;   // /30 numbered from far side's space
  double router_unresponsive_prob = 0.03;
  double ipid_random_prob = 0.12;
  double ipid_zero_prob = 0.04;
  double ipid_unresponsive_prob = 0.08;
  double content_probe_filtering = 0.6;  // content routers ignoring probes

  // Presets.
  static GeneratorConfig tiny();         // unit tests: a handful of entities
  static GeneratorConfig small_scale();  // integration tests: seconds to run
  static GeneratorConfig paper_scale();  // benchmark harnesses
};

// Builds and validates a topology; throws std::logic_error if the generated
// structure violates an invariant (indicates a generator bug).
Topology generate_topology(const GeneratorConfig& config);

}  // namespace cfs
