// Catalog of world metros used to seed the generator, plus city-name alias
// handling (the paper normalises "Jersey City" and "New York City" into one
// NYC metropolitan area; our PeeringDB emulation re-introduces those aliases
// so the normaliser has real work to do).
#pragma once

#include <string>
#include <vector>

#include "topology/entities.h"

namespace cfs {

struct MetroSeed {
  std::string name;
  std::string country;
  Region region;
  GeoPoint location;
  double weight;  // relative importance: facility/IXP density driver
  std::vector<std::string> aliases;  // nearby city names merged into metro
  std::string airport_code;          // IATA-style code for DNS conventions
};

// Ordered by decreasing weight (London, New York, Paris, Frankfurt, ...).
const std::vector<MetroSeed>& metro_catalog();

}  // namespace cfs
