// Ground-truth topology container.
//
// Owns every entity and the cross-indexes the rest of the system queries:
// ASN lookup, interface registry, per-router link adjacency, ground-truth
// prefix announcements, and the AS business-relationship graph. The data
// sources in src/data derive their (noisy) views from this object; the
// inference code in src/core never touches it except through those views
// and through the validation oracle.
#pragma once

#include <optional>
#include <span>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "net/prefix_trie.h"
#include "topology/entities.h"
#include "topology/ixp.h"

namespace cfs {

struct AsRelations {
  std::vector<Asn> providers;
  std::vector<Asn> customers;
  std::vector<Asn> peers;
};

class Topology {
 public:
  // ---- construction (used by the generator and by tests) ----
  MetroId add_metro(Metro metro);
  OperatorId add_operator(FacilityOperator op);
  FacilityId add_facility(Facility facility);
  IxpId add_ixp(Ixp ixp);
  void add_as(AutonomousSystem as);
  RouterId add_router(Router router);
  LinkId add_link(Link link);
  void add_interface(Interface iface);
  void add_relationship(Asn customer, Asn provider);  // customer->provider
  void add_peering(Asn a, Asn b);
  void announce(const Prefix& prefix, Asn origin);

  [[nodiscard]] Ixp& mutable_ixp(IxpId id);
  [[nodiscard]] AutonomousSystem& mutable_as(Asn asn);
  [[nodiscard]] Router& mutable_router(RouterId id);
  [[nodiscard]] Link& mutable_link(LinkId id);

  // ---- entity access ----
  [[nodiscard]] const Metro& metro(MetroId id) const;
  [[nodiscard]] const FacilityOperator& oper(OperatorId id) const;
  [[nodiscard]] const Facility& facility(FacilityId id) const;
  [[nodiscard]] const Ixp& ixp(IxpId id) const;
  [[nodiscard]] const Router& router(RouterId id) const;
  [[nodiscard]] const Link& link(LinkId id) const;

  [[nodiscard]] std::span<const Metro> metros() const { return metros_; }
  [[nodiscard]] std::span<const FacilityOperator> operators() const {
    return operators_;
  }
  [[nodiscard]] std::span<const Facility> facilities() const {
    return facilities_;
  }
  [[nodiscard]] std::span<const Ixp> ixps() const { return ixps_; }
  [[nodiscard]] std::span<const AutonomousSystem> ases() const {
    return ases_;
  }
  [[nodiscard]] std::span<const Router> routers() const { return routers_; }
  [[nodiscard]] std::span<const Link> links() const { return links_; }

  [[nodiscard]] const AutonomousSystem* find_as(Asn asn) const;
  [[nodiscard]] const AutonomousSystem& as_of(Asn asn) const;
  [[nodiscard]] bool has_as(Asn asn) const { return find_as(asn) != nullptr; }

  // ---- cross indexes ----
  [[nodiscard]] const Interface* find_interface(Ipv4 addr) const;
  [[nodiscard]] std::span<const LinkId> links_of(RouterId router) const;
  [[nodiscard]] std::vector<RouterId> routers_of(Asn asn) const;
  [[nodiscard]] std::vector<RouterId> routers_at(Asn asn,
                                                 FacilityId facility) const;

  // Ground-truth origin of an address per BGP announcements (longest match).
  [[nodiscard]] std::optional<Asn> origin_of(Ipv4 addr) const;
  [[nodiscard]] const PrefixTrie<Asn>& announcements() const {
    return announcements_;
  }

  // IXP owning an address on one of the peering LANs, if any.
  [[nodiscard]] std::optional<IxpId> ixp_of_address(Ipv4 addr) const;

  [[nodiscard]] const AsRelations& relations(Asn asn) const;
  [[nodiscard]] bool is_provider_of(Asn provider, Asn customer) const;
  [[nodiscard]] bool is_peer_of(Asn a, Asn b) const;

  // Ground-truth metro of a facility (convenience).
  [[nodiscard]] MetroId metro_of(FacilityId facility) const;

  // Verifies referential integrity of the whole structure; throws
  // std::logic_error with a description on the first violation.
  void validate() const;

 private:
  std::vector<Metro> metros_;
  std::vector<FacilityOperator> operators_;
  std::vector<Facility> facilities_;
  std::vector<Ixp> ixps_;
  std::vector<AutonomousSystem> ases_;
  std::vector<Router> routers_;
  std::vector<Link> links_;

  std::unordered_map<std::uint32_t, std::size_t> asn_index_;
  std::unordered_map<Ipv4, Interface> interfaces_;
  std::vector<std::vector<LinkId>> router_links_;
  std::unordered_map<Asn, AsRelations> relations_;
  PrefixTrie<Asn> announcements_;
  PrefixTrie<IxpId> ixp_lans_;

  static AsRelations empty_relations_;
};

}  // namespace cfs
