#include "topology/generator.h"

#include <algorithm>
#include <set>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "topology/metro.h"
#include "util/log.h"
#include "util/rng.h"
#include "util/trace.h"

namespace cfs {
namespace {

// ---------------------------------------------------------------------------
// Address planning.
//
// AS blocks are /16s carved sequentially from 20.0.0.0; IXP peering LANs are
// /22s carved from 185.0.0.0. Each AS sub-allocates router local addresses
// and point-to-point /30 subnets from its own block, so a longest-prefix
// match on the announcements recovers the *owner* of a subnet — which for a
// /30 numbered by the far side of a private link is the wrong AS for one of
// the two interfaces: exactly the IP-to-ASN error mode the paper corrects
// with alias resolution.
// ---------------------------------------------------------------------------

constexpr std::uint32_t as_space_base = 20u << 24;     // 20.0.0.0
constexpr std::uint32_t ixp_space_base = 185u << 24;   // 185.0.0.0
constexpr int as_block_len = 16;
constexpr int ixp_lan_len = 22;

class AsAddressPool {
 public:
  AsAddressPool() = default;
  explicit AsAddressPool(Prefix block) : block_(block), next_(1) {}

  Ipv4 take() {
    ensure(1);
    return block_.at(next_++);
  }

  // Returns an aligned /30; .1 and .2 are usable endpoint addresses.
  Prefix take_ptp() {
    next_ = (next_ + 3u) & ~3u;  // align to 4
    ensure(4);
    const Prefix subnet(block_.at(next_), 30);
    next_ += 4;
    return subnet;
  }

  [[nodiscard]] const Prefix& block() const { return block_; }

 private:
  void ensure(std::uint64_t count) {
    if (next_ + count >= block_.size())
      throw std::logic_error("AsAddressPool exhausted for " +
                             block_.to_string());
  }

  Prefix block_;
  std::uint64_t next_ = 1;
};

struct BuildState {
  explicit BuildState(const GeneratorConfig& c) : cfg(c), rng(c.seed) {}

  const GeneratorConfig& cfg;
  Rng rng;
  Topology topo;

  std::vector<std::vector<FacilityId>> metro_facilities;  // per metro
  std::vector<std::vector<IxpId>> metro_ixps;             // per metro
  std::unordered_map<Asn, AsAddressPool> pools;
  std::unordered_map<Asn, std::vector<Prefix>> extra_blocks;
  std::uint32_t next_as_block = 0;
  std::uint32_t next_ixp_lan = 0;

  // router lookup: (asn, facility) -> router
  std::unordered_map<std::uint64_t, RouterId> router_at;

  [[nodiscard]] RouterId find_router(Asn asn, FacilityId fac) const {
    const auto it =
        router_at.find((std::uint64_t{asn.value} << 32) | fac.value);
    return it == router_at.end() ? RouterId::invalid() : it->second;
  }
};

Prefix next_as_prefix(BuildState& st) {
  const Prefix block(Ipv4(as_space_base + (st.next_as_block << (32 - as_block_len))),
                     as_block_len);
  ++st.next_as_block;
  if (st.next_as_block >= (1u << 11))
    throw std::logic_error("AS address space exhausted");
  return block;
}

Prefix next_ixp_lan(BuildState& st) {
  const Prefix lan(Ipv4(ixp_space_base + (st.next_ixp_lan << (32 - ixp_lan_len))),
                   ixp_lan_len);
  ++st.next_ixp_lan;
  if (st.next_ixp_lan >= (1u << 13))
    throw std::logic_error("IXP address space exhausted");
  return lan;
}

GeoPoint jitter_around(Rng& rng, const GeoPoint& centre, double spread_deg) {
  return GeoPoint{centre.lat_deg + rng.normal(0.0, spread_deg),
                  centre.lon_deg + rng.normal(0.0, spread_deg)};
}

// ---------------------------------------------------------------------------
// Step 1-2: metros, facility operators, facilities.
// ---------------------------------------------------------------------------

const std::vector<std::string>& global_operator_names() {
  static const std::vector<std::string> names = {
      "Equinor",   "TeleHaven",  "InterPoint", "NeutralPath", "CoreSite X",
      "DataDock",  "GlobalColo", "CarrierOne", "MetroVault",  "PeakColo",
  };
  return names;
}

void build_metros_and_facilities(BuildState& st) {
  const auto& catalog = metro_catalog();
  const int metro_count =
      std::min<int>(st.cfg.metros, static_cast<int>(catalog.size()));

  std::vector<OperatorId> global_ops;
  for (const auto& name : global_operator_names())
    global_ops.push_back(
        st.topo.add_operator(FacilityOperator{{}, name, true}));

  st.metro_facilities.resize(metro_count);
  st.metro_ixps.resize(metro_count);

  for (int m = 0; m < metro_count; ++m) {
    const MetroSeed& seed = catalog[m];
    const MetroId metro = st.topo.add_metro(
        Metro{{}, seed.name, seed.country, seed.region, seed.location});

    const double scaled = seed.weight * st.cfg.facility_density;
    int count = std::max(
        1, static_cast<int>(scaled * st.rng.uniform_real(0.8, 1.2) + 0.5));

    // A couple of metro-local operators alongside the global ones.
    std::vector<OperatorId> local_ops;
    const int locals = count >= 6 ? 2 : 1;
    for (int i = 0; i < locals; ++i)
      local_ops.push_back(st.topo.add_operator(FacilityOperator{
          {}, seed.name + " Colo " + std::to_string(i + 1), i == 0}));

    std::unordered_map<std::uint32_t, int> per_op_count;
    for (int f = 0; f < count; ++f) {
      // Global operators dominate big hubs; locals the tail.
      OperatorId op;
      if (st.rng.chance(count >= 8 ? 0.75 : 0.4))
        op = global_ops[st.rng.index(global_ops.size())];
      else
        op = local_ops[st.rng.index(local_ops.size())];

      const int serial = ++per_op_count[op.value];
      std::string name = st.topo.oper(op).name + " " + seed.name + " " +
                         std::to_string(serial);

      // PeeringDB-style raw city string: sometimes an alias suburb name.
      std::string raw_city = seed.name;
      if (!seed.aliases.empty() && st.rng.chance(0.25))
        raw_city = seed.aliases[st.rng.index(seed.aliases.size())];

      const FacilityId fac = st.topo.add_facility(
          Facility{{}, std::move(name), op, metro,
                   jitter_around(st.rng, seed.location, 0.08),
                   std::move(raw_city)});
      st.metro_facilities[m].push_back(fac);
    }
  }
}

// ---------------------------------------------------------------------------
// Step 3: IXPs with switch fabric.
// ---------------------------------------------------------------------------

void build_ixps(BuildState& st) {
  const auto& catalog = metro_catalog();
  for (std::size_t m = 0; m < st.metro_facilities.size(); ++m) {
    const MetroSeed& seed = catalog[m];
    const auto& facs = st.metro_facilities[m];

    int ixp_count = 0;
    if (seed.weight >= 30)
      ixp_count = 3;
    else if (seed.weight >= 15)
      ixp_count = 2;
    else if (seed.weight >= 6)
      ixp_count = st.rng.chance(0.5) ? 2 : 1;
    else
      ixp_count = st.rng.chance(0.5) ? 1 : 0;

    for (int i = 0; i < ixp_count; ++i) {
      Ixp ixp;
      ixp.metro = MetroId(static_cast<std::uint32_t>(m));
      ixp.name = (i == 0 ? seed.name + "-IX"
                         : seed.name + "-IX " + std::to_string(i + 1));
      ixp.peering_lan = next_ixp_lan(st);

      // Primary IXP in a hub spans many facilities; secondary ones few.
      const int max_span = std::min<int>(
          static_cast<int>(facs.size()),
          i == 0 ? st.cfg.max_ixp_span : std::max(3, st.cfg.max_ixp_span / 2));
      int span = 1 + static_cast<int>(st.rng.zipf(
                     static_cast<std::uint64_t>(max_span), 0.9)) -
                 1;
      span = std::clamp(span, 1, max_span);
      if (seed.weight >= 25 && i == 0)
        span = std::max(span, std::min<int>(6, max_span));

      // Access switches cluster in the metro's hub facilities (carrier
      // hotels attract every exchange), which is also what puts several
      // IXPs into one building -- the cross-IXP facilities of Section 5.
      std::vector<std::size_t> chosen;
      {
        std::vector<std::size_t> pool(facs.size());
        std::vector<double> weights(facs.size());
        for (std::size_t k = 0; k < facs.size(); ++k) {
          pool[k] = k;
          weights[k] = 1.0 / (1.0 + static_cast<double>(k));
        }
        while (chosen.size() < static_cast<std::size_t>(span)) {
          const std::size_t pick = st.rng.weighted_index(weights);
          chosen.push_back(pool[pick]);
          pool.erase(pool.begin() + static_cast<std::ptrdiff_t>(pick));
          weights.erase(weights.begin() + static_cast<std::ptrdiff_t>(pick));
        }
      }

      // Core switch lives at the first chosen facility.
      ixp.switches.push_back(
          IxpSwitch{IxpSwitch::Kind::Core, facs[chosen[0]], 0});

      // Backhaul switches aggregate groups of access switches.
      std::uint32_t current_backhaul = 0;
      int on_current = 0;
      const bool use_backhauls =
          span > st.cfg.backhaul_fanin && st.cfg.backhaul_fanin > 0;
      for (std::size_t k = 0; k < chosen.size(); ++k) {
        std::uint32_t parent = 0;
        if (use_backhauls) {
          if (on_current == 0) {
            current_backhaul = static_cast<std::uint32_t>(ixp.switches.size());
            ixp.switches.push_back(IxpSwitch{IxpSwitch::Kind::Backhaul,
                                             facs[chosen[k]], 0});
          }
          parent = current_backhaul;
          on_current = (on_current + 1) % st.cfg.backhaul_fanin;
        }
        ixp.switches.push_back(
            IxpSwitch{IxpSwitch::Kind::Access, facs[chosen[k]], parent});
      }

      if (st.rng.chance(st.cfg.route_server_prob)) {
        ixp.has_route_server = true;
        ixp.route_server_asn =
            Asn(64500u + static_cast<std::uint32_t>(st.topo.ixps().size()));
        ixp.route_server_address =
            ixp.peering_lan.at(ixp.peering_lan.size() - 2);
      }
      const IxpId id = st.topo.add_ixp(std::move(ixp));
      st.metro_ixps[m].push_back(id);
    }
  }
}

// ---------------------------------------------------------------------------
// Step 4: ASes -- numbers, names, types, DNS conventions, footprints.
// ---------------------------------------------------------------------------

struct Footprint {
  std::vector<int> metros;  // metro indices
};

DnsConvention pick_dns(Rng& rng, AsType type) {
  const double roll = rng.uniform01();
  switch (type) {
    case AsType::Content:
      return roll < 0.6 ? DnsConvention::None : DnsConvention::Opaque;
    case AsType::Tier1:
      if (roll < 0.22) return DnsConvention::FacilityCode;
      if (roll < 0.42) return DnsConvention::AirportCode;
      if (roll < 0.52) return DnsConvention::Stale;
      return DnsConvention::Opaque;
    case AsType::Transit:
      if (roll < 0.15) return DnsConvention::FacilityCode;
      if (roll < 0.32) return DnsConvention::AirportCode;
      if (roll < 0.47) return DnsConvention::CityName;
      if (roll < 0.92) return DnsConvention::Opaque;
      return DnsConvention::None;
    case AsType::Eyeball:
      if (roll < 0.20) return DnsConvention::CityName;
      if (roll < 0.70) return DnsConvention::Opaque;
      return DnsConvention::None;
    case AsType::Enterprise:
      return roll < 0.5 ? DnsConvention::None : DnsConvention::Opaque;
  }
  return DnsConvention::Opaque;
}

// Weighted metro pick (hub metros more likely), without replacement.
std::vector<int> pick_metros(BuildState& st, int count,
                             std::optional<Region> region) {
  const auto& catalog = metro_catalog();
  std::vector<int> candidates;
  std::vector<double> weights;
  for (std::size_t m = 0; m < st.metro_facilities.size(); ++m) {
    if (region && catalog[m].region != *region) continue;
    candidates.push_back(static_cast<int>(m));
    weights.push_back(catalog[m].weight);
  }
  if (candidates.empty()) {
    // No metro in the requested region at this scale: fall back to the
    // global pool so every AS gets a footprint.
    for (std::size_t m = 0; m < st.metro_facilities.size(); ++m) {
      candidates.push_back(static_cast<int>(m));
      weights.push_back(catalog[m].weight);
    }
  }
  std::vector<int> out;
  while (!candidates.empty() && static_cast<int>(out.size()) < count) {
    const std::size_t i = st.rng.weighted_index(weights);
    out.push_back(candidates[i]);
    candidates.erase(candidates.begin() + static_cast<std::ptrdiff_t>(i));
    weights.erase(weights.begin() + static_cast<std::ptrdiff_t>(i));
  }
  return out;
}

Region random_region(BuildState& st) {
  // Weighted toward where facilities actually are (Europe, North America).
  static const double weights[region_count] = {0.30, 0.40, 0.14, 0.05, 0.07,
                                               0.04};
  return static_cast<Region>(st.rng.weighted_index(weights));
}

void add_as(BuildState& st, Asn asn, std::string name, AsType type,
            const Footprint& fp, int facilities_per_metro_max) {
  AutonomousSystem as;
  as.asn = asn;
  as.name = std::move(name);
  as.type = type;
  as.dns = pick_dns(st.rng, type);
  std::string zone = as.name;
  std::transform(zone.begin(), zone.end(), zone.begin(), [](unsigned char c) {
    return c == ' ' ? '-' : static_cast<char>(std::tolower(c));
  });
  as.dns_zone = zone + ".net";

  const Prefix block = next_as_prefix(st);
  as.prefixes.push_back(block);
  st.pools.emplace(asn, AsAddressPool(block));
  if (type == AsType::Content) {
    // Content providers announce additional blocks (white-list realism).
    const Prefix extra = next_as_prefix(st);
    as.prefixes.push_back(extra);
    st.extra_blocks[asn].push_back(extra);
  }

  std::set<FacilityId> chosen;
  for (const int m : fp.metros) {
    const auto& facs = st.metro_facilities[static_cast<std::size_t>(m)];
    if (facs.empty()) continue;
    const int want = 1 + static_cast<int>(st.rng.uniform(
                         static_cast<std::uint64_t>(facilities_per_metro_max)));
    const auto idx = st.rng.sample_indices(
        facs.size(), std::min<std::size_t>(facs.size(),
                                           static_cast<std::size_t>(want)));
    for (const auto i : idx) chosen.insert(facs[i]);
  }
  as.facilities.assign(chosen.begin(), chosen.end());

  st.topo.add_as(std::move(as));
  for (const Prefix& p : st.topo.as_of(asn).prefixes) st.topo.announce(p, asn);
}

struct AsCensus {
  std::vector<Asn> tier1;
  std::vector<Asn> transit;
  std::vector<Asn> content;
  std::vector<Asn> eyeball;
  std::vector<Asn> enterprise;
};

AsCensus build_ases(BuildState& st) {
  AsCensus census;
  const int metro_count = static_cast<int>(st.metro_facilities.size());

  for (int i = 0; i < st.cfg.tier1_count; ++i) {
    const Asn asn(100u + static_cast<std::uint32_t>(i));
    Footprint fp;
    const int want = std::max(2, static_cast<int>(
                                  metro_count * st.rng.uniform_real(0.5, 0.8)));
    fp.metros = pick_metros(st, want, std::nullopt);
    add_as(st, asn, "Backbone-" + std::to_string(i + 1), AsType::Tier1, fp, 2);
    census.tier1.push_back(asn);
  }

  for (int i = 0; i < st.cfg.transit_count; ++i) {
    const Asn asn(1000u + static_cast<std::uint32_t>(i));
    Footprint fp;
    const Region home = random_region(st);
    // Zipf footprint: a few large regional transits, many small ones.
    const int want = 2 + static_cast<int>(st.rng.zipf(12, 1.1));
    fp.metros = pick_metros(st, want, home);
    if (st.rng.chance(0.35)) {
      const auto hub = pick_metros(st, 1, std::nullopt);
      fp.metros.insert(fp.metros.end(), hub.begin(), hub.end());
    }
    add_as(st, asn, "Transit-" + std::to_string(i + 1), AsType::Transit, fp,
           2);
    census.transit.push_back(asn);
  }

  for (int i = 0; i < st.cfg.content_count; ++i) {
    const Asn asn(5000u + static_cast<std::uint32_t>(i));
    Footprint fp;
    // First few are global CDNs, the rest regional content networks.
    int want;
    if (i < std::max(2, st.cfg.content_count / 8))
      want = std::max(3, static_cast<int>(metro_count *
                                          st.rng.uniform_real(0.4, 0.7)));
    else
      want = 2 + static_cast<int>(st.rng.zipf(10, 1.0));
    fp.metros = pick_metros(st, want, std::nullopt);
    add_as(st, asn, "CDN-" + std::to_string(i + 1), AsType::Content, fp, 2);
    census.content.push_back(asn);
  }

  for (int i = 0; i < st.cfg.eyeball_count; ++i) {
    const Asn asn(10000u + static_cast<std::uint32_t>(i));
    Footprint fp;
    const Region home = random_region(st);
    fp.metros = pick_metros(st, 1 + static_cast<int>(st.rng.uniform(3)), home);
    add_as(st, asn, "Access-" + std::to_string(i + 1), AsType::Eyeball, fp, 2);
    census.eyeball.push_back(asn);
  }

  for (int i = 0; i < st.cfg.enterprise_count; ++i) {
    const Asn asn(30000u + static_cast<std::uint32_t>(i));
    Footprint fp;
    fp.metros = pick_metros(st, st.rng.chance(0.25) ? 2 : 1, random_region(st));
    add_as(st, asn, "Corp-" + std::to_string(i + 1), AsType::Enterprise, fp,
           1);
    census.enterprise.push_back(asn);
  }

  return census;
}

// ---------------------------------------------------------------------------
// Step 5: routers (one per AS-facility presence) and intra-AS backbone.
// ---------------------------------------------------------------------------

IpIdBehaviour pick_ipid(BuildState& st, AsType type) {
  if (type == AsType::Content && st.rng.chance(st.cfg.content_probe_filtering))
    return IpIdBehaviour::Unresponsive;
  const double roll = st.rng.uniform01();
  if (roll < st.cfg.ipid_random_prob) return IpIdBehaviour::Random;
  if (roll < st.cfg.ipid_random_prob + st.cfg.ipid_zero_prob)
    return IpIdBehaviour::Zero;
  if (roll < st.cfg.ipid_random_prob + st.cfg.ipid_zero_prob +
                 st.cfg.ipid_unresponsive_prob)
    return IpIdBehaviour::Unresponsive;
  return IpIdBehaviour::SharedCounter;
}

void build_routers(BuildState& st) {
  for (const auto& as : st.topo.ases()) {
    auto& pool = st.pools.at(as.asn);
    for (const FacilityId fac : as.facilities) {
      Router r;
      r.owner = as.asn;
      r.facility = fac;
      r.local_address = pool.take();
      r.ipid = pick_ipid(st, as.type);
      r.responds_to_traceroute = !st.rng.chance(st.cfg.router_unresponsive_prob);
      const RouterId id = st.topo.add_router(r);
      st.topo.add_interface(
          Interface{r.local_address, id, LinkId::invalid(),
                    InterfaceRole::Local});
      st.router_at.emplace((std::uint64_t{as.asn.value} << 32) | fac.value,
                           id);
    }
  }
}

// Connects routers a-b with a backbone /30 and registers interfaces.
void add_backbone_link(BuildState& st, Asn asn, RouterId a, RouterId b) {
  auto& pool = st.pools.at(asn);
  const Prefix ptp = pool.take_ptp();
  const Ipv4 addr_a = ptp.at(1);
  const Ipv4 addr_b = ptp.at(2);

  const auto& fa = st.topo.facility(st.topo.router(a).facility);
  const auto& fb = st.topo.facility(st.topo.router(b).facility);

  Link link;
  link.type = LinkType::Backbone;
  link.rel = BusinessRel::Intra;
  link.a = LinkEnd{a, addr_a};
  link.b = LinkEnd{b, addr_b};
  link.latency_ms =
      propagation_delay_ms(fa.location, fb.location) + 0.05;
  const LinkId id = st.topo.add_link(link);
  st.topo.add_interface(Interface{addr_a, a, id, InterfaceRole::Backbone});
  st.topo.add_interface(Interface{addr_b, b, id, InterfaceRole::Backbone});
}

void build_backbones(BuildState& st) {
  for (const auto& as : st.topo.ases()) {
    const auto routers = st.topo.routers_of(as.asn);
    if (routers.size() < 2) continue;

    // Group routers per metro; chain within a metro, then connect metro
    // hubs with a nearest-neighbour tree plus occasional chords.
    std::unordered_map<std::uint32_t, std::vector<RouterId>> by_metro;
    for (const RouterId r : routers)
      by_metro[st.topo.metro_of(st.topo.router(r).facility).value].push_back(
          r);

    std::vector<RouterId> hubs;
    for (auto& [metro, local] : by_metro) {
      for (std::size_t i = 1; i < local.size(); ++i)
        add_backbone_link(st, as.asn, local[i - 1], local[i]);
      hubs.push_back(local.front());
    }

    if (hubs.size() < 2) continue;
    auto geo_of = [&](RouterId r) {
      return st.topo.facility(st.topo.router(r).facility).location;
    };

    std::vector<RouterId> connected = {hubs[0]};
    std::vector<RouterId> pending(hubs.begin() + 1, hubs.end());
    while (!pending.empty()) {
      // Attach the pending hub closest to any connected hub (Prim).
      std::size_t best_p = 0;
      RouterId best_anchor = connected[0];
      double best_d = 1e18;
      for (std::size_t p = 0; p < pending.size(); ++p)
        for (const RouterId c : connected) {
          const double d = haversine_km(geo_of(pending[p]), geo_of(c));
          if (d < best_d) {
            best_d = d;
            best_p = p;
            best_anchor = c;
          }
        }
      add_backbone_link(st, as.asn, best_anchor, pending[best_p]);
      connected.push_back(pending[best_p]);
      pending.erase(pending.begin() + static_cast<std::ptrdiff_t>(best_p));
    }

    // Redundant chords for larger backbones.
    if (hubs.size() >= 4) {
      const std::size_t chords = hubs.size() / 4;
      for (std::size_t i = 0; i < chords; ++i) {
        const RouterId a = hubs[st.rng.index(hubs.size())];
        const RouterId b = hubs[st.rng.index(hubs.size())];
        if (a != b) add_backbone_link(st, as.asn, a, b);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Step 6: IXP memberships (local ports, then remote ports via resellers).
// ---------------------------------------------------------------------------

double membership_prob(AsType type) {
  switch (type) {
    case AsType::Content: return 0.9;
    case AsType::Eyeball: return 0.7;
    case AsType::Transit: return 0.55;
    case AsType::Tier1: return 0.4;
    case AsType::Enterprise: return 0.12;
  }
  return 0.0;
}

void add_port(BuildState& st, IxpId ixp_id, Asn member, RouterId router,
              std::uint32_t access_switch, bool remote, Asn reseller) {
  Ixp& ixp = st.topo.mutable_ixp(ixp_id);
  const std::uint64_t offset = 1 + ixp.ports.size();
  if (offset + 1 >= ixp.peering_lan.size())
    throw std::logic_error("IXP LAN exhausted: " + ixp.name);
  IxpPort port;
  port.member = member;
  port.router = router;
  port.lan_address = ixp.peering_lan.at(offset);
  port.access_switch = access_switch;
  port.remote = remote;
  port.reseller = reseller;
  if (ixp.has_route_server) {
    const AsType type = st.topo.as_of(member).type;
    const double p = (type == AsType::Eyeball || type == AsType::Enterprise)
                         ? st.cfg.rs_session_prob_small
                         : st.cfg.rs_session_prob_large;
    port.route_server_session = st.rng.chance(p);
  }
  ixp.ports.push_back(port);
  st.topo.add_interface(Interface{port.lan_address, router, LinkId::invalid(),
                                  InterfaceRole::IxpLan});

  auto& as = st.topo.mutable_as(member);
  if (std::find(as.ixps.begin(), as.ixps.end(), ixp_id) == as.ixps.end())
    as.ixps.push_back(ixp_id);
}

void build_memberships(BuildState& st) {
  // Pass A: local ports -- AS has a facility hosting an access switch.
  for (const auto& as : st.topo.ases()) {
    std::unordered_set<std::uint32_t> metros_seen;
    for (const FacilityId fac : as.facilities)
      metros_seen.insert(st.topo.metro_of(fac).value);

    for (const std::uint32_t m : metros_seen) {
      // Networks consolidate: once a router at some facility holds an IXP
      // port, further exchanges reachable from the same building terminate
      // on that router too (the cross-IXP facilities of Section 5).
      FacilityId anchor = FacilityId::invalid();
      for (const IxpId ixp_id : st.metro_ixps[m]) {
        if (!st.rng.chance(membership_prob(as.type))) continue;
        const Ixp& ixp = st.topo.ixp(ixp_id);

        // Facilities of this AS that host an access switch of the IXP.
        std::vector<std::pair<FacilityId, std::uint32_t>> options;
        for (const FacilityId fac : as.facilities) {
          if (const auto sw = ixp.access_switch_at(fac))
            options.emplace_back(fac, *sw);
        }
        if (options.empty()) continue;

        auto pick = options[st.rng.index(options.size())];
        if (anchor.valid())
          for (const auto& option : options)
            if (option.first == anchor) pick = option;
        const auto [fac0, sw0] = pick;
        anchor = fac0;
        add_port(st, ixp_id, as.asn, st.find_router(as.asn, fac0), sw0, false,
                 Asn{});
        const double second_port_prob =
            as.type == AsType::Content || as.type == AsType::Tier1 ? 0.5
            : as.type == AsType::Transit                           ? 0.3
                                                                    : 0.1;
        if (options.size() > 1 && st.rng.chance(second_port_prob)) {
          for (const auto& [fac1, sw1] : options) {
            if (fac1 == fac0) continue;
            add_port(st, ixp_id, as.asn, st.find_router(as.asn, fac1), sw1,
                     false, Asn{});
            break;
          }
        }
      }
    }
  }

  // Pass B: remote ports via resellers. Sample members for each IXP from
  // ASes with no local port, proportional to local membership size.
  for (const auto& ixp_const : st.topo.ixps()) {
    const IxpId ixp_id = ixp_const.id;
    // Copy local ports by value: add_port below grows the port vector and
    // would invalidate pointers into it.
    std::vector<IxpPort> local_ports;
    for (const auto& p : st.topo.ixp(ixp_id).ports)
      if (!p.remote) local_ports.push_back(p);
    if (local_ports.empty()) continue;

    // Resellers: transit members with a local port.
    std::vector<IxpPort> resellers;
    for (const auto& p : local_ports)
      if (st.topo.as_of(p.member).type == AsType::Transit ||
          st.topo.as_of(p.member).type == AsType::Tier1)
        resellers.push_back(p);
    if (resellers.empty()) continue;

    const int remote_count = static_cast<int>(
        static_cast<double>(local_ports.size()) *
        st.cfg.remote_member_fraction / (1.0 - st.cfg.remote_member_fraction));

    int added = 0;
    int attempts = 0;
    while (added < remote_count && attempts < remote_count * 20) {
      ++attempts;
      const auto& ases = st.topo.ases();
      const auto& cand = ases[st.rng.index(ases.size())];
      if (cand.type == AsType::Tier1) continue;  // Tier1s do not peer remotely
      if (cand.facilities.empty()) continue;
      if (st.topo.ixp(ixp_id).is_member(cand.asn)) continue;

      // Remote member's router stays at one of its home facilities.
      const FacilityId home =
          cand.facilities[st.rng.index(cand.facilities.size())];
      const RouterId router = st.find_router(cand.asn, home);
      if (!router.valid()) continue;

      const IxpPort& reseller = resellers[st.rng.index(resellers.size())];
      add_port(st, ixp_id, cand.asn, router, reseller.access_switch, true,
               reseller.member);
      ++added;
    }
  }
}

// ---------------------------------------------------------------------------
// Step 7: business relationships and their physical instantiation.
// ---------------------------------------------------------------------------

// Weighted pick among common facilities: buildings hosting IXP access
// switches attract private interconnects too (equipment consolidation),
// which is what makes many routers multi-role in practice.
FacilityId pick_interconnect_facility(BuildState& st,
                                      const std::vector<FacilityId>& common) {
  std::vector<double> weights;
  weights.reserve(common.size());
  for (const FacilityId fac : common) {
    double w = 1.0;
    for (const auto& ixp : st.topo.ixps())
      if (ixp.access_switch_at(fac)) {
        w = 4.0;
        break;
      }
    weights.push_back(w);
  }
  return common[st.rng.weighted_index(weights)];
}

std::vector<FacilityId> common_facilities(const Topology& topo, Asn a, Asn b) {
  const auto& fa = topo.as_of(a).facilities;  // kept sorted (std::set source)
  const auto& fb = topo.as_of(b).facilities;
  std::vector<FacilityId> out;
  std::set_intersection(fa.begin(), fa.end(), fb.begin(), fb.end(),
                        std::back_inserter(out));
  return out;
}

std::vector<IxpId> common_ixps(const Topology& topo, Asn a, Asn b) {
  auto ia = topo.as_of(a).ixps;
  auto ib = topo.as_of(b).ixps;
  std::sort(ia.begin(), ia.end());
  std::sort(ib.begin(), ib.end());
  std::vector<IxpId> out;
  std::set_intersection(ia.begin(), ia.end(), ib.begin(), ib.end(),
                        std::back_inserter(out));
  return out;
}

double link_latency(const Topology& topo, RouterId a, RouterId b) {
  const auto& fa = topo.facility(topo.router(a).facility);
  const auto& fb = topo.facility(topo.router(b).facility);
  return propagation_delay_ms(fa.location, fb.location) + 0.05;
}

// Creates a private cross-connect between a and b at the given facility
// (both must have routers there), numbering the /30 from one side's space.
void add_cross_connect(BuildState& st, Asn a, Asn b, FacilityId fac,
                       BusinessRel rel) {
  const RouterId ra = st.find_router(a, fac);
  const RouterId rb = st.find_router(b, fac);
  if (!ra.valid() || !rb.valid()) return;

  const bool number_from_b = st.rng.chance(st.cfg.foreign_numbered_ptp);
  auto& pool = st.pools.at(number_from_b ? b : a);
  const Prefix ptp = pool.take_ptp();

  Link link;
  link.type = LinkType::PrivateCrossConnect;
  link.rel = rel;
  link.a = LinkEnd{ra, ptp.at(1)};
  link.b = LinkEnd{rb, ptp.at(2)};
  link.facility = fac;
  link.latency_ms = 0.05;
  const LinkId id = st.topo.add_link(link);
  st.topo.add_interface(
      Interface{ptp.at(1), ra, id, InterfaceRole::PrivatePtp});
  st.topo.add_interface(
      Interface{ptp.at(2), rb, id, InterfaceRole::PrivatePtp});
}

// Remote private interconnect: dedicated long-haul circuit landing at one of
// the provider-side routers; the customer router stays in its own facility.
void add_remote_private(BuildState& st, Asn customer, Asn provider) {
  const auto& cas = st.topo.as_of(customer);
  const auto& pas = st.topo.as_of(provider);
  if (cas.facilities.empty() || pas.facilities.empty()) return;
  const FacilityId cf = cas.facilities[st.rng.index(cas.facilities.size())];
  const FacilityId pf = pas.facilities[st.rng.index(pas.facilities.size())];
  const RouterId rc = st.find_router(customer, cf);
  const RouterId rp = st.find_router(provider, pf);
  if (!rc.valid() || !rp.valid()) return;

  auto& pool = st.pools.at(provider);
  const Prefix ptp = pool.take_ptp();

  Link link;
  link.type = LinkType::PrivateCrossConnect;
  link.rel = BusinessRel::CustomerProvider;
  link.a = LinkEnd{rc, ptp.at(1)};
  link.b = LinkEnd{rp, ptp.at(2)};
  link.facility = pf;  // circuit terminates in the provider's facility
  link.latency_ms = link_latency(st.topo, rc, rp);
  const LinkId id = st.topo.add_link(link);
  st.topo.add_interface(
      Interface{ptp.at(1), rc, id, InterfaceRole::PrivatePtp});
  st.topo.add_interface(
      Interface{ptp.at(2), rp, id, InterfaceRole::PrivatePtp});
}

// Public peering session between two members over one IXP. The far side's
// port is the one nearest (in switch hops) to the near side's port.
bool add_public_peering(BuildState& st, IxpId ixp_id, Asn a, Asn b,
                        BusinessRel rel, bool multilateral = false) {
  const Ixp& ixp = st.topo.ixp(ixp_id);
  const auto ports_a = ixp.ports_of(a);
  if (ports_a.empty()) return false;
  const IxpPort* pa = ports_a[st.rng.index(ports_a.size())];
  const auto nearest = ixp.nearest_port(b, pa->access_switch);
  if (!nearest) return false;
  const IxpPort* pb = &ixp.ports[*nearest];

  Link link;
  link.type = LinkType::PublicPeering;
  link.rel = rel;
  link.a = LinkEnd{pa->router, pa->lan_address};
  link.b = LinkEnd{pb->router, pb->lan_address};
  link.ixp = ixp_id;
  link.multilateral = multilateral;
  link.latency_ms = link_latency(st.topo, pa->router, pb->router) +
                    0.05 * ixp.switch_distance(pa->access_switch,
                                               pb->access_switch);
  st.topo.add_link(link);
  return true;
}

// Tethering: private VLAN over the IXP fabric between two member routers.
bool add_tethering(BuildState& st, IxpId ixp_id, Asn a, Asn b,
                   BusinessRel rel) {
  const Ixp& ixp = st.topo.ixp(ixp_id);
  const auto ports_a = ixp.ports_of(a);
  const auto ports_b = ixp.ports_of(b);
  if (ports_a.empty() || ports_b.empty()) return false;
  const IxpPort* pa = ports_a[st.rng.index(ports_a.size())];
  const IxpPort* pb = ports_b[st.rng.index(ports_b.size())];

  const bool number_from_b = st.rng.chance(st.cfg.foreign_numbered_ptp);
  auto& pool = st.pools.at(number_from_b ? b : a);
  const Prefix ptp = pool.take_ptp();

  Link link;
  link.type = LinkType::Tethering;
  link.rel = rel;
  link.a = LinkEnd{pa->router, ptp.at(1)};
  link.b = LinkEnd{pb->router, ptp.at(2)};
  link.ixp = ixp_id;
  link.latency_ms = link_latency(st.topo, pa->router, pb->router) + 0.1;
  const LinkId id = st.topo.add_link(link);
  st.topo.add_interface(
      Interface{ptp.at(1), pa->router, id, InterfaceRole::PrivatePtp});
  st.topo.add_interface(
      Interface{ptp.at(2), pb->router, id, InterfaceRole::PrivatePtp});
  return true;
}

// Instantiates a customer-provider relationship physically and registers it
// in the relationship graph.
void connect_customer(BuildState& st, Asn customer, Asn provider) {
  st.topo.add_relationship(customer, provider);

  const auto cf = common_facilities(st.topo, customer, provider);
  if (!cf.empty()) {
    add_cross_connect(st, customer, provider,
                      pick_interconnect_facility(st, cf),
                      BusinessRel::CustomerProvider);
    if (cf.size() > 1 && st.rng.chance(0.3))
      add_cross_connect(st, customer, provider,
                        cf[st.rng.index(cf.size())],
                        BusinessRel::CustomerProvider);
    return;
  }

  const auto ci = common_ixps(st.topo, customer, provider);
  if (!ci.empty() && st.rng.chance(0.5)) {
    // Either a tethered VLAN or a plain public session carrying transit.
    const IxpId ixp = ci[st.rng.index(ci.size())];
    if (st.rng.chance(st.cfg.tether_fraction * 5)) {
      if (add_tethering(st, ixp, customer, provider,
                        BusinessRel::CustomerProvider))
        return;
    }
    if (add_public_peering(st, ixp, customer, provider,
                           BusinessRel::CustomerProvider))
      return;
  }

  add_remote_private(st, customer, provider);
}

// Instantiates a settlement-free peering; chooses medium by network types.
void connect_peers(BuildState& st, Asn a, Asn b) {
  st.topo.add_peering(a, b);

  const auto& as_a = st.topo.as_of(a);
  const auto& as_b = st.topo.as_of(b);
  const auto cf = common_facilities(st.topo, a, b);
  const auto ci = common_ixps(st.topo, a, b);

  const bool heavyweight_pair = (as_a.type == AsType::Tier1 ||
                                 as_a.type == AsType::Transit) &&
                                (as_b.type == AsType::Tier1 ||
                                 as_b.type == AsType::Transit);

  bool connected = false;
  if (heavyweight_pair && !cf.empty()) {
    // Backbone networks interconnect privately at several buildings.
    const std::size_t sites = std::min<std::size_t>(
        cf.size(), 1 + (st.rng.chance(st.cfg.multi_location_peering_prob)
                            ? 1 + st.rng.index(3)
                            : 0));
    const auto idx = st.rng.sample_indices(cf.size(), sites);
    for (const auto i : idx)
      add_cross_connect(st, a, b, cf[i], BusinessRel::PeerPeer);
    connected = !idx.empty();
  }

  if (!connected && !ci.empty()) {
    const std::size_t sessions =
        std::min<std::size_t>(ci.size(),
                              st.rng.chance(st.cfg.multi_location_peering_prob)
                                  ? 2
                                  : 1);
    const auto idx = st.rng.sample_indices(ci.size(), sessions);
    for (const auto i : idx)
      connected |= add_public_peering(st, ci[i], a, b, BusinessRel::PeerPeer);

    // High-volume pairs complement public peering with a cross-connect.
    if (connected && !cf.empty() &&
        st.rng.chance(st.cfg.private_over_public_threshold))
      add_cross_connect(st, a, b, pick_interconnect_facility(st, cf),
                        BusinessRel::PeerPeer);
  }

  if (!connected && !cf.empty()) {
    add_cross_connect(st, a, b, pick_interconnect_facility(st, cf),
                      BusinessRel::PeerPeer);
    connected = true;
  }
}

// Multilateral peering: members with a route-server session exchange
// routes with each other by default. Instantiating the full mesh is
// neither realistic for traffic nor tractable at scale, so a configurable
// density of the mesh becomes actual adjacencies.
void build_multilateral(BuildState& st) {
  for (const auto& ixp : st.topo.ixps()) {
    if (!ixp.has_route_server) continue;
    std::vector<Asn> members;
    for (const auto& port : ixp.ports)
      if (port.route_server_session) members.push_back(port.member);
    std::sort(members.begin(), members.end());
    members.erase(std::unique(members.begin(), members.end()), members.end());

    for (std::size_t i = 0; i < members.size(); ++i) {
      for (std::size_t j = i + 1; j < members.size(); ++j) {
        if (!st.rng.chance(st.cfg.multilateral_density)) continue;
        const Asn a = members[i];
        const Asn b = members[j];
        if (st.topo.is_peer_of(a, b) || st.topo.is_provider_of(a, b) ||
            st.topo.is_provider_of(b, a))
          continue;
        if (add_public_peering(st, ixp.id, a, b, BusinessRel::PeerPeer,
                               /*multilateral=*/true))
          st.topo.add_peering(a, b);
      }
    }
  }
}

// Prefers candidates sharing a facility or an IXP with `who`.
Asn pick_provider(BuildState& st, Asn who, const std::vector<Asn>& candidates,
                  const std::vector<Asn>& already) {
  std::vector<Asn> pool;
  std::vector<double> weights;
  for (const Asn c : candidates) {
    if (c == who) continue;
    if (std::find(already.begin(), already.end(), c) != already.end())
      continue;
    double w = 0.2;
    if (!common_facilities(st.topo, who, c).empty()) w += 3.0;
    if (!common_ixps(st.topo, who, c).empty()) w += 1.0;
    pool.push_back(c);
    weights.push_back(w);
  }
  if (pool.empty()) return Asn{};
  return pool[st.rng.weighted_index(weights)];
}

void build_relationships(BuildState& st, const AsCensus& census) {
  // Tier-1 clique.
  for (std::size_t i = 0; i < census.tier1.size(); ++i)
    for (std::size_t j = i + 1; j < census.tier1.size(); ++j)
      connect_peers(st, census.tier1[i], census.tier1[j]);

  // Transit providers buy from tier1s (and occasionally a larger transit).
  for (std::size_t i = 0; i < census.transit.size(); ++i) {
    const Asn asn = census.transit[i];
    std::vector<Asn> providers;
    const int want = 1 + static_cast<int>(st.rng.uniform(2));
    for (int k = 0; k < want; ++k) {
      const Asn p = pick_provider(st, asn, census.tier1, providers);
      if (p.valid()) {
        providers.push_back(p);
        connect_customer(st, asn, p);
      }
    }
    if (i >= census.transit.size() / 4 && st.rng.chance(0.4)) {
      const std::vector<Asn> big(census.transit.begin(),
                                 census.transit.begin() +
                                     static_cast<std::ptrdiff_t>(
                                         census.transit.size() / 4));
      const Asn p = pick_provider(st, asn, big, providers);
      if (p.valid()) connect_customer(st, asn, p);
    }
  }

  // Content providers buy some transit and peer openly.
  for (const Asn asn : census.content) {
    std::vector<Asn> providers;
    const int want = 1 + static_cast<int>(st.rng.uniform(2));
    std::vector<Asn> upstream_pool = census.tier1;
    upstream_pool.insert(upstream_pool.end(), census.transit.begin(),
                         census.transit.end());
    for (int k = 0; k < want; ++k) {
      const Asn p = pick_provider(st, asn, upstream_pool, providers);
      if (p.valid()) {
        providers.push_back(p);
        connect_customer(st, asn, p);
      }
    }
  }

  // Eyeballs buy transit.
  for (const Asn asn : census.eyeball) {
    std::vector<Asn> providers;
    std::vector<Asn> upstream_pool = census.transit;
    upstream_pool.insert(upstream_pool.end(), census.tier1.begin(),
                         census.tier1.end());
    const int want = 1 + static_cast<int>(st.rng.uniform(3));
    for (int k = 0; k < want; ++k) {
      const Asn p = pick_provider(st, asn, upstream_pool, providers);
      if (p.valid()) {
        providers.push_back(p);
        connect_customer(st, asn, p);
      }
    }
  }

  // Enterprises buy from transit or eyeball networks.
  for (const Asn asn : census.enterprise) {
    std::vector<Asn> providers;
    std::vector<Asn> upstream_pool = census.transit;
    upstream_pool.insert(upstream_pool.end(), census.eyeball.begin(),
                         census.eyeball.end());
    const int want = 1 + (st.rng.chance(0.3) ? 1 : 0);
    for (int k = 0; k < want; ++k) {
      const Asn p = pick_provider(st, asn, upstream_pool, providers);
      if (p.valid()) {
        providers.push_back(p);
        connect_customer(st, asn, p);
      }
    }
  }

  // Open peering: content <-> eyeball/transit at common IXPs.
  for (const Asn c : census.content) {
    for (const Asn e : census.eyeball) {
      if (!st.rng.chance(st.cfg.content_open_peering_prob)) continue;
      if (common_ixps(st.topo, c, e).empty() &&
          common_facilities(st.topo, c, e).empty())
        continue;
      connect_peers(st, c, e);
    }
    for (const Asn t : census.transit) {
      if (!st.rng.chance(st.cfg.content_open_peering_prob * 0.5)) continue;
      if (common_ixps(st.topo, c, t).empty() &&
          common_facilities(st.topo, c, t).empty())
        continue;
      connect_peers(st, c, t);
    }
  }

  // Transit <-> transit peering to flatten the hierarchy a little.
  for (std::size_t i = 0; i < census.transit.size(); ++i)
    for (std::size_t j = i + 1; j < census.transit.size(); ++j) {
      if (!st.rng.chance(st.cfg.transit_peering_prob)) continue;
      const Asn a = census.transit[i];
      const Asn b = census.transit[j];
      if (common_ixps(st.topo, a, b).empty() &&
          common_facilities(st.topo, a, b).empty())
        continue;
      connect_peers(st, a, b);
    }

  // A sprinkle of eyeball-eyeball public peering.
  for (std::size_t i = 0; i < census.eyeball.size(); ++i)
    for (std::size_t j = i + 1; j < census.eyeball.size(); ++j) {
      if (!st.rng.chance(0.02)) continue;
      const Asn a = census.eyeball[i];
      const Asn b = census.eyeball[j];
      if (common_ixps(st.topo, a, b).empty()) continue;
      connect_peers(st, a, b);
    }
}

}  // namespace

GeneratorConfig GeneratorConfig::tiny() {
  GeneratorConfig c;
  c.seed = 7;
  c.metros = 6;
  c.facility_density = 0.4;
  c.tier1_count = 3;
  c.transit_count = 8;
  c.content_count = 4;
  c.eyeball_count = 18;
  c.enterprise_count = 10;
  c.max_ixp_span = 6;
  return c;
}

GeneratorConfig GeneratorConfig::small_scale() {
  GeneratorConfig c;
  c.seed = 11;
  c.metros = 24;
  c.facility_density = 0.6;
  c.tier1_count = 6;
  c.transit_count = 36;
  c.content_count = 14;
  c.eyeball_count = 110;
  c.enterprise_count = 70;
  return c;
}

GeneratorConfig GeneratorConfig::paper_scale() {
  GeneratorConfig c;
  c.seed = 2015;
  c.metros = 88;
  c.facility_density = 0.95;
  c.tier1_count = 12;
  c.transit_count = 180;
  c.content_count = 70;
  c.eyeball_count = 520;
  c.enterprise_count = 320;
  return c;
}

Topology generate_topology(const GeneratorConfig& config) {
  TraceSpan span("topology.generate");
  BuildState st(config);

  build_metros_and_facilities(st);
  build_ixps(st);
  const AsCensus census = build_ases(st);
  build_routers(st);
  build_backbones(st);
  build_memberships(st);
  build_relationships(st, census);
  build_multilateral(st);

  st.topo.validate();
  span.arg("facilities", st.topo.facilities().size());
  span.arg("ixps", st.topo.ixps().size());
  span.arg("ases", st.topo.ases().size());
  span.arg("routers", st.topo.routers().size());
  span.arg("links", st.topo.links().size());
  log_info() << "generated topology: " << st.topo.facilities().size()
             << " facilities, " << st.topo.ixps().size() << " IXPs, "
             << st.topo.ases().size() << " ASes, "
             << st.topo.routers().size() << " routers, "
             << st.topo.links().size() << " links";
  return std::move(st.topo);
}

}  // namespace cfs
