// IXP model with explicit switch fabric.
//
// Mirrors Figure 1 / Figure 6 of the paper: an IXP operates one core switch,
// optional backhaul switches, and access switches installed inside partner
// interconnection facilities. Members lease a port on an access switch
// (either locally, or through a reseller when peering remotely). Traffic
// between two ports stays local to the lowest common switch; the switch
// proximity heuristic (core/proximity.*) exploits exactly this behaviour.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "net/ipv4.h"
#include "topology/entities.h"

namespace cfs {

struct IxpSwitch {
  enum class Kind { Core, Backhaul, Access };
  Kind kind = Kind::Access;
  FacilityId facility;       // where the switch is installed
  std::uint32_t parent = 0;  // index of backhaul/core above (self for core)
};

struct IxpPort {
  Asn member;
  RouterId router;        // the member's router terminating the port
  Ipv4 lan_address;       // address on the IXP peering LAN
  std::uint32_t access_switch = 0;  // index into Ixp::switches
  bool remote = false;    // true when connected through a reseller
  Asn reseller;           // valid when remote
  // Member maintains a session to the IXP route server (Section 2: an
  // increasing number of IXPs offer route servers for multilateral
  // peering; ~every member of the larger European exchanges uses one).
  bool route_server_session = false;
};

struct Ixp {
  IxpId id;
  std::string name;     // e.g. "DE-CIX Frankfurt"
  MetroId metro;
  Prefix peering_lan;   // address block assigned to the exchange
  std::vector<IxpSwitch> switches;  // switches[0] is always the core
  std::vector<IxpPort> ports;
  // Route server (control-plane only; never appears in the data path).
  bool has_route_server = false;
  Asn route_server_asn;
  Ipv4 route_server_address;

  // Facilities hosting at least one access switch of this exchange.
  [[nodiscard]] std::vector<FacilityId> facilities() const;

  // Access-switch index installed at `facility`, if any.
  [[nodiscard]] std::optional<std::uint32_t> access_switch_at(
      FacilityId facility) const;

  // Fabric distance between two access switches: 0 = same switch,
  // 1 = same backhaul, 2 = via core. Drives far-end facility selection.
  [[nodiscard]] int switch_distance(std::uint32_t access_a,
                                    std::uint32_t access_b) const;

  // Port of `member` whose access switch is nearest (by switch_distance)
  // to `from_switch`; ties broken by lowest port index. Nullopt when the
  // member has no port.
  [[nodiscard]] std::optional<std::size_t> nearest_port(
      Asn member, std::uint32_t from_switch) const;

  [[nodiscard]] const IxpPort* port_of(Asn member, RouterId router) const;
  [[nodiscard]] std::vector<const IxpPort*> ports_of(Asn member) const;
  [[nodiscard]] bool is_member(Asn asn) const;
};

}  // namespace cfs
