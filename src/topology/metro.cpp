#include "topology/metro.h"

namespace cfs {

std::string_view region_name(Region region) {
  switch (region) {
    case Region::NorthAmerica: return "North America";
    case Region::Europe: return "Europe";
    case Region::Asia: return "Asia";
    case Region::Oceania: return "Oceania";
    case Region::SouthAmerica: return "South America";
    case Region::Africa: return "Africa";
  }
  return "?";
}

std::string_view as_type_name(AsType type) {
  switch (type) {
    case AsType::Tier1: return "Tier1";
    case AsType::Transit: return "Transit";
    case AsType::Content: return "Content";
    case AsType::Eyeball: return "Eyeball";
    case AsType::Enterprise: return "Enterprise";
  }
  return "?";
}

const std::vector<MetroSeed>& metro_catalog() {
  // Weights loosely follow the Figure 3 ordering of the paper: the largest
  // interconnection hubs (London, New York, Paris, Frankfurt, Amsterdam)
  // host dozens of facilities, with a long tail of ~10-facility metros.
  static const std::vector<MetroSeed> catalog = {
      {"London", "GB", Region::Europe, {51.51, -0.13}, 45,
       {"Slough", "Docklands"}, "lon"},
      {"New York", "US", Region::NorthAmerica, {40.71, -74.01}, 42,
       {"Jersey City", "Secaucus", "Newark"}, "nyc"},
      {"Paris", "FR", Region::Europe, {48.86, 2.35}, 36,
       {"Aubervilliers", "Saint-Denis"}, "par"},
      {"Frankfurt", "DE", Region::Europe, {50.11, 8.68}, 34,
       {"Offenbach"}, "fra"},
      {"Amsterdam", "NL", Region::Europe, {52.37, 4.90}, 32,
       {"Haarlem", "Schiphol-Rijk"}, "ams"},
      {"San Jose", "US", Region::NorthAmerica, {37.34, -121.89}, 28,
       {"Santa Clara", "Milpitas", "Palo Alto"}, "sjc"},
      {"Moscow", "RU", Region::Europe, {55.76, 37.62}, 26, {}, "mow"},
      {"Los Angeles", "US", Region::NorthAmerica, {34.05, -118.24}, 25,
       {"El Segundo"}, "lax"},
      {"Stockholm", "SE", Region::Europe, {59.33, 18.06}, 24,
       {"Kista"}, "sto"},
      {"Manchester", "GB", Region::Europe, {53.48, -2.24}, 22, {}, "man"},
      {"Miami", "US", Region::NorthAmerica, {25.76, -80.19}, 22,
       {"Boca Raton"}, "mia"},
      {"Berlin", "DE", Region::Europe, {52.52, 13.40}, 21, {}, "ber"},
      {"Tokyo", "JP", Region::Asia, {35.68, 139.69}, 21,
       {"Otemachi"}, "tyo"},
      {"Kiev", "UA", Region::Europe, {50.45, 30.52}, 20, {}, "iev"},
      {"Sao Paulo", "BR", Region::SouthAmerica, {-23.55, -46.63}, 20,
       {"Barueri"}, "sao"},
      {"Vienna", "AT", Region::Europe, {48.21, 16.37}, 19, {}, "vie"},
      {"Singapore", "SG", Region::Asia, {1.35, 103.82}, 19, {}, "sin"},
      {"Auckland", "NZ", Region::Oceania, {-36.85, 174.76}, 18, {}, "akl"},
      {"Hong Kong", "HK", Region::Asia, {22.32, 114.17}, 18, {}, "hkg"},
      {"Melbourne", "AU", Region::Oceania, {-37.81, 144.96}, 17, {}, "mel"},
      {"Montreal", "CA", Region::NorthAmerica, {45.50, -73.57}, 17, {}, "yul"},
      {"Zurich", "CH", Region::Europe, {47.37, 8.54}, 16, {}, "zrh"},
      {"Prague", "CZ", Region::Europe, {50.08, 14.44}, 16, {}, "prg"},
      {"Seattle", "US", Region::NorthAmerica, {47.61, -122.33}, 15, {}, "sea"},
      {"Chicago", "US", Region::NorthAmerica, {41.88, -87.63}, 15, {}, "chi"},
      {"Dallas", "US", Region::NorthAmerica, {32.78, -96.80}, 14, {}, "dfw"},
      {"Hamburg", "DE", Region::Europe, {53.55, 9.99}, 14, {}, "ham"},
      {"Atlanta", "US", Region::NorthAmerica, {33.75, -84.39}, 13, {}, "atl"},
      {"Bucharest", "RO", Region::Europe, {44.43, 26.10}, 13, {}, "buh"},
      {"Madrid", "ES", Region::Europe, {40.42, -3.70}, 12, {}, "mad"},
      {"Milan", "IT", Region::Europe, {45.46, 9.19}, 12, {}, "mil"},
      {"Duesseldorf", "DE", Region::Europe, {51.23, 6.77}, 11, {}, "dus"},
      {"Sofia", "BG", Region::Europe, {42.70, 23.32}, 11, {}, "sof"},
      {"St. Petersburg", "RU", Region::Europe, {59.93, 30.34}, 10, {}, "led"},
      {"Washington", "US", Region::NorthAmerica, {38.91, -77.04}, 10,
       {"Ashburn", "Reston", "Vienna VA"}, "iad"},
      {"Toronto", "CA", Region::NorthAmerica, {43.65, -79.38}, 9, {}, "yyz"},
      {"Sydney", "AU", Region::Oceania, {-33.87, 151.21}, 9, {}, "syd"},
      {"Warsaw", "PL", Region::Europe, {52.23, 21.01}, 8, {}, "waw"},
      {"Copenhagen", "DK", Region::Europe, {55.68, 12.57}, 8, {}, "cph"},
      {"Oslo", "NO", Region::Europe, {59.91, 10.75}, 7, {}, "osl"},
      {"Helsinki", "FI", Region::Europe, {60.17, 24.94}, 7, {}, "hel"},
      {"Brussels", "BE", Region::Europe, {50.85, 4.35}, 7, {}, "bru"},
      {"Dublin", "IE", Region::Europe, {53.35, -6.26}, 7, {}, "dub"},
      {"Lisbon", "PT", Region::Europe, {38.72, -9.14}, 6, {}, "lis"},
      {"Athens", "GR", Region::Europe, {37.98, 23.73}, 6, {}, "ath"},
      {"Budapest", "HU", Region::Europe, {47.50, 19.04}, 6, {}, "bud"},
      {"Istanbul", "TR", Region::Europe, {41.01, 28.98}, 6, {}, "ist"},
      {"Mumbai", "IN", Region::Asia, {19.08, 72.88}, 6, {}, "bom"},
      {"Chennai", "IN", Region::Asia, {13.08, 80.27}, 5, {}, "maa"},
      {"Seoul", "KR", Region::Asia, {37.57, 126.98}, 5, {}, "sel"},
      {"Taipei", "TW", Region::Asia, {25.03, 121.57}, 5, {}, "tpe"},
      {"Osaka", "JP", Region::Asia, {34.69, 135.50}, 5, {}, "osa"},
      {"Kuala Lumpur", "MY", Region::Asia, {3.14, 101.69}, 5, {}, "kul"},
      {"Jakarta", "ID", Region::Asia, {-6.21, 106.85}, 5, {}, "jkt"},
      {"Bangkok", "TH", Region::Asia, {13.76, 100.50}, 4, {}, "bkk"},
      {"Manila", "PH", Region::Asia, {14.60, 120.98}, 4, {}, "mnl"},
      {"Johannesburg", "ZA", Region::Africa, {-26.20, 28.05}, 5, {}, "jnb"},
      {"Cape Town", "ZA", Region::Africa, {-33.92, 18.42}, 4, {}, "cpt"},
      {"Nairobi", "KE", Region::Africa, {-1.29, 36.82}, 3, {}, "nbo"},
      {"Lagos", "NG", Region::Africa, {6.52, 3.38}, 3, {}, "los"},
      {"Cairo", "EG", Region::Africa, {30.04, 31.24}, 3, {}, "cai"},
      {"Buenos Aires", "AR", Region::SouthAmerica, {-34.60, -58.38}, 5,
       {}, "bue"},
      {"Santiago", "CL", Region::SouthAmerica, {-33.45, -70.67}, 4, {}, "scl"},
      {"Bogota", "CO", Region::SouthAmerica, {4.71, -74.07}, 3, {}, "bog"},
      {"Lima", "PE", Region::SouthAmerica, {-12.05, -77.04}, 3, {}, "lim"},
      {"Rio de Janeiro", "BR", Region::SouthAmerica, {-22.91, -43.17}, 4,
       {}, "rio"},
      {"Mexico City", "MX", Region::NorthAmerica, {19.43, -99.13}, 4,
       {}, "mex"},
      {"Denver", "US", Region::NorthAmerica, {39.74, -104.99}, 5, {}, "den"},
      {"Phoenix", "US", Region::NorthAmerica, {33.45, -112.07}, 4, {}, "phx"},
      {"Boston", "US", Region::NorthAmerica, {42.36, -71.06}, 5, {}, "bos"},
      {"Houston", "US", Region::NorthAmerica, {29.76, -95.37}, 4, {}, "hou"},
      {"Minneapolis", "US", Region::NorthAmerica, {44.98, -93.27}, 3,
       {}, "msp"},
      {"Vancouver", "CA", Region::NorthAmerica, {49.28, -123.12}, 4,
       {}, "yvr"},
      {"Munich", "DE", Region::Europe, {48.14, 11.58}, 6, {}, "muc"},
      {"Rome", "IT", Region::Europe, {41.90, 12.50}, 4, {}, "rom"},
      {"Barcelona", "ES", Region::Europe, {41.39, 2.17}, 4, {}, "bcn"},
      {"Marseille", "FR", Region::Europe, {43.30, 5.37}, 5, {}, "mrs"},
      {"Geneva", "CH", Region::Europe, {46.20, 6.14}, 3, {}, "gva"},
      {"Riga", "LV", Region::Europe, {56.95, 24.11}, 3, {}, "rix"},
      {"Vilnius", "LT", Region::Europe, {54.69, 25.28}, 3, {}, "vno"},
      {"Tallinn", "EE", Region::Europe, {59.44, 24.75}, 3, {}, "tll"},
      {"Luxembourg", "LU", Region::Europe, {49.61, 6.13}, 3, {}, "lux"},
      {"Bratislava", "SK", Region::Europe, {48.15, 17.11}, 2, {}, "bts"},
      {"Zagreb", "HR", Region::Europe, {45.81, 15.98}, 2, {}, "zag"},
      {"Belgrade", "RS", Region::Europe, {44.79, 20.45}, 2, {}, "beg"},
      {"Brisbane", "AU", Region::Oceania, {-27.47, 153.03}, 3, {}, "bne"},
      {"Perth", "AU", Region::Oceania, {-31.95, 115.86}, 2, {}, "per"},
      {"Wellington", "NZ", Region::Oceania, {-41.29, 174.78}, 2, {}, "wlg"},
  };
  return catalog;
}

}  // namespace cfs
