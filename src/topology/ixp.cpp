#include "topology/ixp.h"

#include <algorithm>

namespace cfs {

std::vector<FacilityId> Ixp::facilities() const {
  std::vector<FacilityId> out;
  for (const auto& sw : switches)
    if (sw.kind == IxpSwitch::Kind::Access) out.push_back(sw.facility);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::optional<std::uint32_t> Ixp::access_switch_at(FacilityId facility) const {
  for (std::uint32_t i = 0; i < switches.size(); ++i)
    if (switches[i].kind == IxpSwitch::Kind::Access &&
        switches[i].facility == facility)
      return i;
  return std::nullopt;
}

int Ixp::switch_distance(std::uint32_t access_a, std::uint32_t access_b) const {
  if (access_a == access_b) return 0;
  if (switches[access_a].parent == switches[access_b].parent) {
    // Same parent; if that parent is a backhaul switch the traffic stays on
    // it, otherwise both hang directly off the core.
    return switches[switches[access_a].parent].kind ==
                   IxpSwitch::Kind::Backhaul
               ? 1
               : 2;
  }
  return 2;
}

std::optional<std::size_t> Ixp::nearest_port(Asn member,
                                             std::uint32_t from_switch) const {
  std::optional<std::size_t> best;
  int best_dist = 3;
  for (std::size_t i = 0; i < ports.size(); ++i) {
    if (ports[i].member != member) continue;
    const int d = switch_distance(from_switch, ports[i].access_switch);
    if (d < best_dist) {
      best_dist = d;
      best = i;
    }
  }
  return best;
}

const IxpPort* Ixp::port_of(Asn member, RouterId router) const {
  for (const auto& port : ports)
    if (port.member == member && port.router == router) return &port;
  return nullptr;
}

std::vector<const IxpPort*> Ixp::ports_of(Asn member) const {
  std::vector<const IxpPort*> out;
  for (const auto& port : ports)
    if (port.member == member) out.push_back(&port);
  return out;
}

bool Ixp::is_member(Asn asn) const {
  return std::any_of(ports.begin(), ports.end(),
                     [&](const IxpPort& p) { return p.member == asn; });
}

}  // namespace cfs
