#include "util/strings.h"

#include <algorithm>
#include <cctype>
#include <cstdio>

namespace cfs {

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return out;
}

std::string to_upper(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return std::toupper(c); });
  return out;
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front())))
    s.remove_prefix(1);
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back())))
    s.remove_suffix(1);
  return s;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

bool contains(std::string_view haystack, std::string_view needle) {
  return haystack.find(needle) != std::string_view::npos;
}

std::string fixed(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
  return buf;
}

std::uint64_t fnv1a64(std::string_view s) {
  std::uint64_t hash = 0xcbf29ce484222325ULL;  // FNV offset basis
  for (const char c : s) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ULL;  // FNV prime
  }
  return hash;
}

std::string hex64(std::uint64_t value) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(value));
  return buf;
}

std::string with_commas(std::uint64_t value) {
  std::string digits = std::to_string(value);
  std::string out;
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count != 0 && count % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++count;
  }
  std::reverse(out.begin(), out.end());
  return out;
}

}  // namespace cfs
