#include "util/arena.h"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <utility>

namespace cfs {
namespace {

// Capacity currently held by live arenas across the whole process.
std::atomic<std::uint64_t> process_reserved{0};

}  // namespace

Arena::Arena(Arena&& other) noexcept
    : block_bytes_(other.block_bytes_),
      blocks_(std::move(other.blocks_)),
      active_(other.active_),
      bytes_allocated_(other.bytes_allocated_),
      bytes_reserved_(other.bytes_reserved_) {
  other.blocks_.clear();
  other.active_ = 0;
  other.bytes_allocated_ = 0;
  other.bytes_reserved_ = 0;  // capacity ownership moved with the blocks
}

Arena& Arena::operator=(Arena&& other) noexcept {
  if (this == &other) return *this;
  process_reserved.fetch_sub(bytes_reserved_, std::memory_order_relaxed);
  block_bytes_ = other.block_bytes_;
  blocks_ = std::move(other.blocks_);
  active_ = other.active_;
  bytes_allocated_ = other.bytes_allocated_;
  bytes_reserved_ = other.bytes_reserved_;
  other.blocks_.clear();
  other.active_ = 0;
  other.bytes_allocated_ = 0;
  other.bytes_reserved_ = 0;
  return *this;
}

Arena::~Arena() {
  process_reserved.fetch_sub(bytes_reserved_, std::memory_order_relaxed);
}

void* Arena::alloc(std::size_t bytes, std::size_t align) {
  for (;;) {
    if (active_ < blocks_.size()) {
      Block& block = blocks_[active_];
      const auto base =
          reinterpret_cast<std::uintptr_t>(block.data.get()) + block.used;
      const std::size_t pad = (align - base % align) % align;
      if (block.used + pad + bytes <= block.size) {
        void* p = block.data.get() + block.used + pad;
        block.used += pad + bytes;
        bytes_allocated_ += bytes;
        return p;
      }
      // Block tail too small for this request; bump arenas waste it.
      ++active_;
      continue;
    }
    const std::size_t size = std::max(block_bytes_, bytes + align);
    Block block;
    block.data = std::make_unique<std::byte[]>(size);
    block.size = size;
    blocks_.push_back(std::move(block));
    bytes_reserved_ += size;
    process_reserved.fetch_add(size, std::memory_order_relaxed);
    active_ = blocks_.size() - 1;
  }
}

void Arena::reset() {
  for (Block& block : blocks_) block.used = 0;
  active_ = 0;
  bytes_allocated_ = 0;
}

std::uint64_t Arena::process_reserved_bytes() {
  return process_reserved.load(std::memory_order_relaxed);
}

}  // namespace cfs
