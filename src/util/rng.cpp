#include "util/rng.h"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace cfs {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::uniform(std::uint64_t bound) {
  if (bound == 0) throw std::invalid_argument("Rng::uniform: bound == 0");
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t threshold = -bound % bound;
  for (;;) {
    const std::uint64_t r = next();
    if (r >= threshold) return r % bound;
  }
}

std::int64_t Rng::uniform_in(std::int64_t lo, std::int64_t hi) {
  if (lo > hi) throw std::invalid_argument("Rng::uniform_in: lo > hi");
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(span == 0 ? next() : uniform(span));
}

double Rng::uniform01() {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform_real(double lo, double hi) {
  return lo + (hi - lo) * uniform01();
}

bool Rng::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform01() < p;
}

double Rng::normal(double mean, double stddev) {
  // Box-Muller; one value per call keeps the generator state simple.
  double u1 = uniform01();
  while (u1 <= 1e-300) u1 = uniform01();
  const double u2 = uniform01();
  const double mag =
      std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * std::numbers::pi * u2);
  return mean + stddev * mag;
}

double Rng::exponential(double mean) {
  if (mean <= 0.0) throw std::invalid_argument("Rng::exponential: mean <= 0");
  double u = uniform01();
  while (u <= 1e-300) u = uniform01();
  return -mean * std::log(u);
}

std::uint64_t Rng::zipf(std::uint64_t n, double s) {
  return ZipfSampler(n, s).sample(*this);
}

std::size_t Rng::index(std::size_t size) {
  if (size == 0) throw std::invalid_argument("Rng::index: empty range");
  return static_cast<std::size_t>(uniform(size));
}

std::size_t Rng::weighted_index(std::span<const double> weights) {
  double total = 0.0;
  for (double w : weights) {
    if (w < 0.0) throw std::invalid_argument("negative weight");
    total += w;
  }
  if (total <= 0.0) throw std::invalid_argument("all weights zero");
  double r = uniform01() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    r -= weights[i];
    if (r < 0.0) return i;
  }
  return weights.size() - 1;
}

std::vector<std::size_t> Rng::sample_indices(std::size_t n, std::size_t k) {
  if (k > n) throw std::invalid_argument("Rng::sample_indices: k > n");
  // Partial Fisher-Yates over an index vector; fine at simulator scales.
  std::vector<std::size_t> idx(n);
  for (std::size_t i = 0; i < n; ++i) idx[i] = i;
  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t j = i + static_cast<std::size_t>(uniform(n - i));
    std::swap(idx[i], idx[j]);
  }
  idx.resize(k);
  return idx;
}

Rng Rng::fork() { return Rng(next()); }

Rng Rng::fork(std::uint64_t salt) const {
  // Mix every parent state word with the salt through fresh splitmix64
  // chains. The parent is untouched; distinct salts land in distinct
  // splitmix64 streams, and the child re-seeds through the usual
  // constructor so its state is well distributed even for small salts.
  std::uint64_t x = salt ^ 0x2545f4914f6cdd1dULL;
  std::uint64_t mixed = 0;
  for (const std::uint64_t word : state_) {
    std::uint64_t chain = word ^ splitmix64(x);
    mixed ^= splitmix64(chain);
  }
  return Rng(mixed);
}

ZipfSampler::ZipfSampler(std::uint64_t n, double s) {
  if (n == 0) throw std::invalid_argument("ZipfSampler: n == 0");
  cdf_.reserve(static_cast<std::size_t>(n));
  double acc = 0.0;
  for (std::uint64_t k = 1; k <= n; ++k) {
    acc += 1.0 / std::pow(static_cast<double>(k), s);
    cdf_.push_back(acc);
  }
  for (double& v : cdf_) v /= acc;
}

std::uint64_t ZipfSampler::sample(Rng& rng) const {
  const double u = rng.uniform01();
  // Binary search for the first cdf entry >= u.
  std::size_t lo = 0;
  std::size_t hi = cdf_.size() - 1;
  while (lo < hi) {
    const std::size_t mid = (lo + hi) / 2;
    if (cdf_[mid] < u)
      lo = mid + 1;
    else
      hi = mid;
  }
  return static_cast<std::uint64_t>(lo + 1);
}

}  // namespace cfs
