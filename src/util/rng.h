// Deterministic random number generation.
//
// All stochastic behaviour in the simulator flows through Rng so that a
// single 64-bit seed reproduces an entire experiment. The generator is
// xoshiro256**, seeded via splitmix64; both are tiny, fast and well studied.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace cfs {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  // Copying an Rng silently duplicates its stream — two owners then replay
  // the same draws, which is never what deterministic code wants. Streams
  // are split explicitly via fork(); moves transfer ownership.
  Rng(const Rng&) = delete;
  Rng& operator=(const Rng&) = delete;
  Rng(Rng&&) = default;
  Rng& operator=(Rng&&) = default;

  // Core generator: uniform 64-bit value.
  std::uint64_t next();

  // Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t uniform(std::uint64_t bound);

  // Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_in(std::int64_t lo, std::int64_t hi);

  // Uniform real in [0, 1).
  double uniform01();

  // Uniform real in [lo, hi).
  double uniform_real(double lo, double hi);

  // Bernoulli trial with success probability p (clamped to [0,1]).
  bool chance(double p);

  // Gaussian via Box-Muller.
  double normal(double mean, double stddev);

  // Exponential with given mean (> 0).
  double exponential(double mean);

  // Zipf-distributed integer in [1, n] with exponent s. Uses inverse-CDF
  // over precomputed weights for small n; callers cache via ZipfSampler for
  // hot paths.
  std::uint64_t zipf(std::uint64_t n, double s);

  // Pick a uniformly random element index of a non-empty container size.
  std::size_t index(std::size_t size);

  // Pick an index according to non-negative weights (at least one positive).
  std::size_t weighted_index(std::span<const double> weights);

  // Fisher-Yates shuffle.
  template <class T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = index(i);
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  // Sample k distinct indices from [0, n) (k <= n), in random order.
  std::vector<std::size_t> sample_indices(std::size_t n, std::size_t k);

  // Derive an independent child generator, advancing this stream by one
  // draw (for sequentially-created subsystems).
  Rng fork();

  // Pure stream split: derive the child keyed by `salt` without touching
  // this generator's state. Equal (parent state, salt) always yields the
  // same child, so parallel workers can mint per-shard / per-trace streams
  // in any order and still replay exactly.
  [[nodiscard]] Rng fork(std::uint64_t salt) const;

 private:
  std::uint64_t state_[4];
};

// Cached Zipf sampler for repeated draws with fixed (n, s).
class ZipfSampler {
 public:
  ZipfSampler(std::uint64_t n, double s);
  // Returns a value in [1, n].
  std::uint64_t sample(Rng& rng) const;

 private:
  std::vector<double> cdf_;
};

}  // namespace cfs
