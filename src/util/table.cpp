#include "util/table.h"

#include <algorithm>
#include <ostream>
#include <stdexcept>

#include "util/strings.h"

namespace cfs {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  if (headers_.empty()) throw std::invalid_argument("Table: no headers");
}

Table& Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size())
    throw std::invalid_argument("Table: row width mismatch");
  rows_.push_back(std::move(cells));
  return *this;
}

std::string Table::cell(std::uint64_t v) { return with_commas(v); }
std::string Table::cell(std::int64_t v) {
  return v < 0 ? "-" + with_commas(static_cast<std::uint64_t>(-v))
               : with_commas(static_cast<std::uint64_t>(v));
}
std::string Table::cell(int v) { return cell(static_cast<std::int64_t>(v)); }
std::string Table::cell(double v, int decimals) { return fixed(v, decimals); }
std::string Table::percent(double fraction, int decimals) {
  return fixed(fraction * 100.0, decimals) + "%";
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  auto emit = [&](const std::vector<std::string>& cells) {
    os << "|";
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << ' ' << cells[c];
      for (std::size_t pad = cells[c].size(); pad < widths[c]; ++pad)
        os << ' ';
      os << " |";
    }
    os << '\n';
  };

  auto rule = [&] {
    os << "+";
    for (std::size_t c = 0; c < widths.size(); ++c) {
      for (std::size_t i = 0; i < widths[c] + 2; ++i) os << '-';
      os << '+';
    }
    os << '\n';
  };

  rule();
  emit(headers_);
  rule();
  for (const auto& row : rows_) emit(row);
  rule();
}

void Table::print_csv(std::ostream& os) const {
  auto sanitize = [](const std::string& s) {
    std::string out = s;
    std::replace(out.begin(), out.end(), ',', ';');
    return out;
  };
  for (std::size_t c = 0; c < headers_.size(); ++c)
    os << (c ? "," : "") << sanitize(headers_[c]);
  os << '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c)
      os << (c ? "," : "") << sanitize(row[c]);
    os << '\n';
  }
}

}  // namespace cfs
