#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <stdexcept>

namespace cfs {
namespace {

// Set while a pool worker (or a thread already inside parallel_for's
// drain) is on the stack: a nested parallel_for must not block on the
// queue it is itself supposed to be draining.
thread_local bool tls_inside_pool = false;

// One parallel_for invocation. Chunks are a pure function of (n, chunks);
// workers grab them through an atomic cursor so scheduling is dynamic but
// the work done per index is not.
struct ForState {
  std::size_t n = 0;
  std::size_t chunks = 0;
  std::size_t grain = 0;
  const std::function<void(std::size_t, std::size_t)>* body = nullptr;

  std::atomic<std::size_t> next{0};
  std::vector<std::exception_ptr> errors;  // per chunk

  std::mutex mutex;
  std::condition_variable done;
  std::size_t finished = 0;

  void drain() {
    const bool was_inside = tls_inside_pool;
    tls_inside_pool = true;
    for (;;) {
      const std::size_t chunk = next.fetch_add(1, std::memory_order_relaxed);
      if (chunk >= chunks) break;
      const std::size_t begin = chunk * grain;
      const std::size_t end = std::min(n, begin + grain);
      try {
        (*body)(begin, end);
      } catch (...) {
        errors[chunk] = std::current_exception();
      }
      std::lock_guard<std::mutex> lock(mutex);
      if (++finished == chunks) done.notify_all();
    }
    tls_inside_pool = was_inside;
  }
};

}  // namespace

ThreadPool::ThreadPool(std::size_t workers) {
  if (workers == 0)
    throw std::invalid_argument("ThreadPool: zero workers");
  threads_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i)
    threads_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  ready_.notify_all();
  for (std::thread& t : threads_) t.join();
}

std::size_t ThreadPool::hardware_threads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<std::size_t>(n);
}

void ThreadPool::enqueue(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!accepting_)
      throw std::runtime_error("ThreadPool: stopped accepting work");
    queue_.push_back(std::move(task));
  }
  ready_.notify_one();
}

void ThreadPool::stop_accepting() {
  std::lock_guard<std::mutex> lock(mutex_);
  accepting_ = false;
}

bool ThreadPool::accepting() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return accepting_;
}

void ThreadPool::drain() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  auto packaged =
      std::make_shared<std::packaged_task<void()>>(std::move(task));
  std::future<void> result = packaged->get_future();
  enqueue([packaged] { (*packaged)(); });
  return result;
}

void ThreadPool::worker_loop() {
  tls_inside_pool = true;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      ready_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_.notify_all();
    }
  }
}

void ThreadPool::parallel_for_chunks(
    std::size_t n, const std::function<void(std::size_t, std::size_t)>& body) {
  if (n == 0) return;
  // Inline on a worker thread (nested submit would deadlock against the
  // very queue this thread drains) and for degenerate sizes.
  if (tls_inside_pool || n == 1) {
    body(0, n);
    return;
  }

  auto state = std::make_shared<ForState>();
  state->n = n;
  // A few chunks per worker so one slow chunk cannot serialise the tail,
  // derived only from (n, workers) — never from timing.
  state->chunks = std::min(n, workers() * 4);
  state->grain = (n + state->chunks - 1) / state->chunks;
  // grain*chunks may overshoot n; recompute the chunk count that actually
  // covers [0, n) so every chunk is non-empty.
  state->chunks = (n + state->grain - 1) / state->grain;
  state->body = &body;
  state->errors.resize(state->chunks);

  const std::size_t helpers = std::min(state->chunks - 1, workers());
  for (std::size_t i = 0; i < helpers; ++i) {
    // A pool that stopped accepting (shutdown in flight) rejects helper
    // tasks; the loop still completes because the calling thread drains
    // every remaining chunk itself below.
    try {
      enqueue([state] { state->drain(); });
    } catch (const std::runtime_error&) {
      break;
    }
  }
  state->drain();  // the calling thread participates

  {
    std::unique_lock<std::mutex> lock(state->mutex);
    state->done.wait(lock,
                     [&] { return state->finished == state->chunks; });
  }
  for (const std::exception_ptr& error : state->errors)
    if (error) std::rethrow_exception(error);
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& body) {
  parallel_for_chunks(n, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) body(i);
  });
}

}  // namespace cfs
