// Geographic primitives: coordinates, great-circle distance, and the
// propagation-delay model used by the traceroute RTT simulation.
#pragma once

#include <compare>

namespace cfs {

struct GeoPoint {
  double lat_deg = 0.0;
  double lon_deg = 0.0;

  friend constexpr auto operator<=>(const GeoPoint&, const GeoPoint&) = default;
};

// Great-circle distance in kilometres (haversine formula, mean Earth radius).
double haversine_km(const GeoPoint& a, const GeoPoint& b);

// One-way propagation delay in milliseconds for a fibre path between two
// points. Uses c * 2/3 for the speed of light in fibre and a path-stretch
// factor of 1.4 to account for non-great-circle cable routing.
double propagation_delay_ms(const GeoPoint& a, const GeoPoint& b);

// Distance below which two city locations are treated as the same
// metropolitan area (the paper merges cities < 5 miles apart).
inline constexpr double metro_merge_km = 8.0;

}  // namespace cfs
