// ASCII / CSV table rendering used by the benchmark harnesses to print the
// paper's tables and figure series in a uniform way.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace cfs {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  Table& add_row(std::vector<std::string> cells);

  // Convenience: builds the row from heterogeneous cells already rendered by
  // caller; numeric helpers below reduce boilerplate at call sites.
  static std::string cell(std::uint64_t v);
  static std::string cell(std::int64_t v);
  static std::string cell(int v);
  static std::string cell(double v, int decimals = 2);
  static std::string percent(double fraction, int decimals = 1);

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

  // Pretty-printed, pipe-delimited table with aligned columns.
  void print(std::ostream& os) const;

  // RFC-4180-ish CSV (no quoting needed for our content, commas stripped).
  void print_csv(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace cfs
