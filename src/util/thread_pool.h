// Fixed-size worker pool with a deterministic parallel_for.
//
// The pool exists to run *pure* per-index work — traceroute speculation,
// per-trace classification — whose results are folded back into serial
// state in index order. parallel_for therefore guarantees only that the
// body runs exactly once per index; callers write results into per-index
// slots so the merged outcome is byte-identical to a serial loop no matter
// how chunks land on workers. Chunk boundaries depend solely on (n,
// workers), never on timing, and the first (lowest-chunk) exception is the
// one rethrown, so even failures are deterministic.
//
// Workers draw fixed-size chunks from an atomic cursor (cheap work
// stealing): a slow chunk does not serialise the rest. A parallel_for
// issued from inside a worker runs inline on that worker — nested fan-out
// cannot deadlock the pool. `--threads 1` paths must not construct a pool
// at all; a pool is only for genuinely concurrent execution.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace cfs {

class ThreadPool {
 public:
  // Spawns exactly `workers` threads (at least one). The calling thread
  // additionally helps drain chunks while blocked in parallel_for.
  explicit ThreadPool(std::size_t workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t workers() const { return threads_.size(); }

  // Fire-and-forget task; the future surfaces any exception it threw.
  // Throws std::runtime_error once stop_accepting() has been called — a
  // late enqueue during shutdown is rejected deterministically instead of
  // racing the worker join (resident daemons drain through this).
  std::future<void> submit(std::function<void()> task);

  // Transitions the pool to a non-accepting state: every subsequent
  // submit()/parallel_for enqueue attempt fails with std::runtime_error,
  // while work already queued or running proceeds to completion.
  // Idempotent; safe to call from any thread, including pool workers.
  void stop_accepting();
  [[nodiscard]] bool accepting() const;

  // Blocks until the queue is empty and no task is executing. Call after
  // stop_accepting() for a quiescence barrier: once drain() returns (and
  // no other thread can enqueue), the pool is provably idle. Must not be
  // called from a pool worker (it would wait on itself).
  void drain();

  // Runs body(i) exactly once for every i in [0, n), blocking until all
  // complete. Safe to call from a worker thread (runs inline there). If
  // any invocation throws, the exception from the lowest-numbered chunk is
  // rethrown after every chunk has finished; the pool remains usable.
  void parallel_for(std::size_t n,
                    const std::function<void(std::size_t)>& body);

  // Chunked variant: body(begin, end) over deterministic subranges.
  void parallel_for_chunks(
      std::size_t n,
      const std::function<void(std::size_t, std::size_t)>& body);

  // std::thread::hardware_concurrency with a sane floor of 1.
  static std::size_t hardware_threads();

 private:
  void worker_loop();
  void enqueue(std::function<void()> task);

  std::vector<std::thread> threads_;
  std::deque<std::function<void()>> queue_;
  mutable std::mutex mutex_;
  std::condition_variable ready_;
  std::condition_variable idle_;  // queue empty and nothing executing
  std::size_t active_ = 0;        // tasks currently running on workers
  bool accepting_ = true;
  bool stop_ = false;
};

}  // namespace cfs
