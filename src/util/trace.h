// Structured tracing and process-wide metrics registry.
//
// Two cooperating facilities behind one facade:
//
//   * A metrics registry — named counters, gauges and timers — that is
//     always on. Every instrumented stage folds its accounting through
//     here (the single metrics path: what used to be ad-hoc Stopwatch
//     fields now flows through TraceSpan into both the per-run structs
//     and this registry), and the registry snapshot is surfaced uniformly
//     in the cfs_cli summary and the exported report JSON.
//
//   * A span timeline — RAII TraceSpan timers — that is off by default
//     and enabled by `--trace-out`. Completed spans are buffered and
//     exported in Chrome `trace_event` JSON, loadable in chrome://tracing
//     or https://ui.perfetto.dev.
//
// Determinism contract (docs/OBSERVABILITY.md): span *payloads* carry
// counts and ordinals only — the arg API accepts nothing but unsigned
// integers — so enabling tracing cannot perturb any inference output, and
// `--threads N` report byte-equivalence holds with tracing on. Wall-clock
// values exist solely in the separate trace file (timestamps/durations)
// and in registry timers, which live inside the report's `metrics`
// subtree alongside the other wall-clock fields already excluded from
// byte comparisons.
//
// Thread safety: all entry points may be called concurrently from pool
// workers. Counters and events go through a mutex; the granularity of the
// instrumentation (phases and chunks, never per-hop) keeps contention and
// overhead negligible (<= 5% on bench_parallel_scaling, measured there).
#pragma once

#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace cfs {

// Point-in-time view of the registry. Map-keyed so rendering and JSON
// export are deterministically ordered by name.
struct MetricsSnapshot {
  struct Timer {
    std::uint64_t count = 0;
    double total_ms = 0.0;

    friend bool operator==(const Timer&, const Timer&) = default;
  };

  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, Timer> timers;

  [[nodiscard]] bool empty() const {
    return counters.empty() && gauges.empty() && timers.empty();
  }

  friend bool operator==(const MetricsSnapshot&,
                         const MetricsSnapshot&) = default;
};

// One completed span, in Chrome trace_event terms a "complete" (ph:"X")
// event. Timestamps are microseconds of steady clock since enable().
struct TraceEvent {
  std::string name;
  std::string category;
  std::int64_t ts_us = 0;
  std::int64_t dur_us = 0;
  std::uint32_t tid = 0;  // stable per-thread ordinal, 1-based
  std::vector<std::pair<std::string, std::uint64_t>> args;
};

class Trace {
 public:
  // ---- metrics registry (always on) ----
  static void counter(std::string_view name, std::uint64_t delta = 1);
  static void gauge(std::string_view name, double value);
  // Fold a duration into the named timer (TraceSpan calls this on stop).
  static void observe_ms(std::string_view name, double ms);

  // Process peak resident set size in bytes (getrusage ru_maxrss), 0 on
  // platforms without the API. A process-wide high-water mark, not a
  // per-run delta — callers gauge it so memory regressions show up in
  // BENCH_parallel.json next to the wall-clock samples.
  [[nodiscard]] static std::uint64_t peak_rss_bytes();

  [[nodiscard]] static MetricsSnapshot metrics();
  // Per-run view over a process-wide registry: counters and timer totals
  // are subtracted key-wise from `baseline`; gauges report their current
  // value. Entries that end up zero are dropped.
  [[nodiscard]] static MetricsSnapshot metrics_since(
      const MetricsSnapshot& baseline);
  static void reset_metrics();

  // ---- span timeline (off by default) ----
  [[nodiscard]] static bool enabled();
  static void enable();   // (re)starts the clock; keeps buffered events
  static void disable();  // stops collection; keeps buffered events
  static void clear_events();
  [[nodiscard]] static std::vector<TraceEvent> events();

  // Chrome trace_event JSON ({"traceEvents":[...]}). The two-argument
  // overload is pure — used for golden-file tests — the one-argument form
  // writes the collected buffer.
  static void write_chrome_trace(std::ostream& os);
  static void write_chrome_trace(std::ostream& os,
                                 const std::vector<TraceEvent>& events);

  // Human summary of the registry as aligned tables (counters, gauges,
  // timers). Pure overload for goldens; the other renders live state.
  static void write_summary(std::ostream& os);
  static void write_summary(std::ostream& os, const MetricsSnapshot& snap);
};

// RAII span: times a scope, folds the elapsed time into the registry
// timer of the same name, and — only when tracing is enabled — records a
// timeline event. Args are deliberately restricted to unsigned integers
// (counts, ordinals); see the determinism contract above.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name, const char* category = "cfs");
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;
  ~TraceSpan();

  // Attach a deterministic payload entry (shown under "args" in viewers).
  void arg(const char* key, std::uint64_t value);

  // Ends the span now and returns the elapsed milliseconds, so call sites
  // can land the same measurement in a metrics struct ("one metrics
  // path"). Idempotent; the destructor stops implicitly if needed.
  double stop();

 private:
  const char* name_;
  const char* category_;
  std::chrono::steady_clock::time_point start_;
  std::vector<std::pair<std::string, std::uint64_t>> args_;
  bool stopped_ = false;
  double elapsed_ms_ = 0.0;
};

}  // namespace cfs
