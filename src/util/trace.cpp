#include "util/trace.h"

#include <atomic>
#include <cstdio>
#include <mutex>
#include <ostream>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

#include "util/table.h"

namespace cfs {
namespace {

// Process-wide state. The registry and the event buffer have separate
// locks: counters are always on while events only flow when tracing is
// enabled, and neither path ever holds both locks.
struct Registry {
  std::mutex mutex;
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, MetricsSnapshot::Timer> timers;
};

struct Timeline {
  std::mutex mutex;
  std::vector<TraceEvent> events;
  std::chrono::steady_clock::time_point epoch;
};

Registry& registry() {
  static Registry r;
  return r;
}

Timeline& timeline() {
  static Timeline t;
  return t;
}

std::atomic<bool> g_enabled{false};

// Stable 1-based thread ordinal: the main thread observes 1, pool workers
// get the next free slot in creation order. Deliberately not the OS tid —
// ordinals keep trace files small and diffable across runs.
std::uint32_t thread_ordinal() {
  static std::atomic<std::uint32_t> next{1};
  thread_local std::uint32_t ordinal = next.fetch_add(1);
  return ordinal;
}

std::int64_t us_since(std::chrono::steady_clock::time_point from,
                      std::chrono::steady_clock::time_point to) {
  const auto us =
      std::chrono::duration_cast<std::chrono::microseconds>(to - from).count();
  return us < 0 ? 0 : us;
}

// Minimal JSON string escaper. cfs_util sits below cfs_io in the layer
// stack, so the full JsonValue writer is not available here; trace names
// and arg keys are plain identifiers, this covers the general case anyway.
void append_json_string(std::string& out, std::string_view s) {
  out += '"';
  for (const char c : s) {
    const unsigned char u = static_cast<unsigned char>(c);
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (u < 0x20 || u == 0x7F) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", u);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

std::string format_ms(double ms) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", ms);
  return buf;
}

}  // namespace

std::uint64_t Trace::peak_rss_bytes() {
#if defined(__unix__) || defined(__APPLE__)
  rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
#if defined(__APPLE__)
  return static_cast<std::uint64_t>(usage.ru_maxrss);  // already bytes
#else
  return static_cast<std::uint64_t>(usage.ru_maxrss) * 1024;  // KiB
#endif
#else
  return 0;
#endif
}

void Trace::counter(std::string_view name, std::uint64_t delta) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  r.counters[std::string(name)] += delta;
}

void Trace::gauge(std::string_view name, double value) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  r.gauges[std::string(name)] = value;
}

void Trace::observe_ms(std::string_view name, double ms) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  MetricsSnapshot::Timer& timer = r.timers[std::string(name)];
  ++timer.count;
  timer.total_ms += ms;
}

MetricsSnapshot Trace::metrics() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  MetricsSnapshot snap;
  snap.counters = r.counters;
  snap.gauges = r.gauges;
  snap.timers = r.timers;
  return snap;
}

MetricsSnapshot Trace::metrics_since(const MetricsSnapshot& baseline) {
  MetricsSnapshot now = metrics();
  MetricsSnapshot delta;
  for (const auto& [name, value] : now.counters) {
    const auto it = baseline.counters.find(name);
    const std::uint64_t before = it == baseline.counters.end() ? 0 : it->second;
    if (value > before) delta.counters[name] = value - before;
  }
  // Gauges are levels, not accumulations: report the current value.
  delta.gauges = std::move(now.gauges);
  for (const auto& [name, timer] : now.timers) {
    const auto it = baseline.timers.find(name);
    MetricsSnapshot::Timer d = timer;
    if (it != baseline.timers.end()) {
      const MetricsSnapshot::Timer& before = it->second;
      d.count = before.count <= d.count ? d.count - before.count : 0;
      d.total_ms =
          before.total_ms <= d.total_ms ? d.total_ms - before.total_ms : 0.0;
    }
    // A timer is part of the window when *either* delta moved: a span that
    // straddles the snapshot boundary can accrue total_ms against a
    // baseline whose completion count already matches (resident daemons
    // take per-window deltas, so this is a real shape there, not an edge
    // case). Only an all-zero delta drops out.
    if (d.count > 0 || d.total_ms > 0.0) delta.timers[name] = d;
  }
  return delta;
}

void Trace::reset_metrics() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  r.counters.clear();
  r.gauges.clear();
  r.timers.clear();
}

bool Trace::enabled() { return g_enabled.load(std::memory_order_relaxed); }

void Trace::enable() {
  Timeline& t = timeline();
  {
    std::lock_guard<std::mutex> lock(t.mutex);
    t.epoch = std::chrono::steady_clock::now();
  }
  g_enabled.store(true, std::memory_order_relaxed);
}

void Trace::disable() { g_enabled.store(false, std::memory_order_relaxed); }

void Trace::clear_events() {
  Timeline& t = timeline();
  std::lock_guard<std::mutex> lock(t.mutex);
  t.events.clear();
}

std::vector<TraceEvent> Trace::events() {
  Timeline& t = timeline();
  std::lock_guard<std::mutex> lock(t.mutex);
  return t.events;
}

void Trace::write_chrome_trace(std::ostream& os) {
  write_chrome_trace(os, events());
}

void Trace::write_chrome_trace(std::ostream& os,
                               const std::vector<TraceEvent>& events) {
  std::string out;
  out += "{\n  \"displayTimeUnit\": \"ms\",\n  \"traceEvents\": [\n";
  out +=
      "    {\"ph\": \"M\", \"pid\": 1, \"name\": \"process_name\", "
      "\"args\": {\"name\": \"cfs\"}}";
  for (const TraceEvent& e : events) {
    out += ",\n    {\"ph\": \"X\", \"pid\": 1, \"tid\": ";
    out += std::to_string(e.tid);
    out += ", \"name\": ";
    append_json_string(out, e.name);
    out += ", \"cat\": ";
    append_json_string(out, e.category);
    out += ", \"ts\": ";
    out += std::to_string(e.ts_us);
    out += ", \"dur\": ";
    out += std::to_string(e.dur_us);
    if (!e.args.empty()) {
      out += ", \"args\": {";
      bool first = true;
      for (const auto& [key, value] : e.args) {
        if (!first) out += ", ";
        first = false;
        append_json_string(out, key);
        out += ": ";
        out += std::to_string(value);
      }
      out += '}';
    }
    out += '}';
  }
  out += "\n  ]\n}\n";
  os << out;
}

void Trace::write_summary(std::ostream& os) { write_summary(os, metrics()); }

void Trace::write_summary(std::ostream& os, const MetricsSnapshot& snap) {
  if (snap.empty()) {
    os << "metrics registry: empty\n";
    return;
  }
  if (!snap.timers.empty()) {
    os << "-- timers --\n";
    Table table({"Timer", "Count", "Total ms", "Mean ms"});
    for (const auto& [name, timer] : snap.timers) {
      const double mean =
          timer.count > 0 ? timer.total_ms / static_cast<double>(timer.count)
                          : 0.0;
      table.add_row({name, Table::cell(timer.count), format_ms(timer.total_ms),
                     format_ms(mean)});
    }
    table.print(os);
  }
  if (!snap.counters.empty()) {
    os << "-- counters --\n";
    Table table({"Counter", "Value"});
    for (const auto& [name, value] : snap.counters)
      table.add_row({name, Table::cell(value)});
    table.print(os);
  }
  if (!snap.gauges.empty()) {
    os << "-- gauges --\n";
    Table table({"Gauge", "Value"});
    for (const auto& [name, value] : snap.gauges)
      table.add_row({name, Table::cell(value)});
    table.print(os);
  }
}

TraceSpan::TraceSpan(const char* name, const char* category)
    : name_(name),
      category_(category),
      start_(std::chrono::steady_clock::now()) {}

TraceSpan::~TraceSpan() {
  if (!stopped_) stop();
}

void TraceSpan::arg(const char* key, std::uint64_t value) {
  args_.emplace_back(key, value);
}

double TraceSpan::stop() {
  if (stopped_) return elapsed_ms_;
  stopped_ = true;
  const auto end = std::chrono::steady_clock::now();
  elapsed_ms_ =
      std::chrono::duration<double, std::milli>(end - start_).count();
  Trace::observe_ms(name_, elapsed_ms_);
  if (Trace::enabled()) {
    TraceEvent event;
    event.name = name_;
    event.category = category_;
    event.tid = thread_ordinal();
    event.args = std::move(args_);
    Timeline& t = timeline();
    std::lock_guard<std::mutex> lock(t.mutex);
    event.ts_us = us_since(t.epoch, start_);
    event.dur_us = us_since(start_, end);
    t.events.push_back(std::move(event));
  }
  return elapsed_ms_;
}

}  // namespace cfs
