// Small string helpers shared across modules (parsing data-source records,
// DNS hostname handling, report formatting).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace cfs {

// Split on a single character; empty fields are preserved.
std::vector<std::string> split(std::string_view s, char sep);

// Join with a separator.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

std::string to_lower(std::string_view s);
std::string to_upper(std::string_view s);

std::string_view trim(std::string_view s);

bool starts_with(std::string_view s, std::string_view prefix);
bool ends_with(std::string_view s, std::string_view suffix);
bool contains(std::string_view haystack, std::string_view needle);

// Render a double with fixed decimals (report output).
std::string fixed(double value, int decimals);

// "12,345" style thousands separator for readable report tables.
std::string with_commas(std::uint64_t value);

// FNV-1a 64-bit hash. Used to fingerprint canonical report exports so a
// refactor golden fits in one corpus-scenario field instead of a full
// committed report (fuzz/oracles.cpp layout_equivalence).
std::uint64_t fnv1a64(std::string_view s);

// 16-digit lowercase hex rendering, the committed form of fnv1a64.
std::string hex64(std::uint64_t value);

}  // namespace cfs
