// Strong identifier types.
//
// Every entity in the topology (metro, facility, IXP, AS, router, interface,
// link, vantage point) is referred to by a small integer handle. Using a
// distinct wrapper type per entity prevents the classic bug of indexing the
// facility table with a router id. The wrapper is trivially copyable and has
// no runtime cost over a bare uint32_t.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <limits>

namespace cfs {

template <class Tag>
struct Id {
  using value_type = std::uint32_t;
  static constexpr value_type invalid_value =
      std::numeric_limits<value_type>::max();

  value_type value = invalid_value;

  constexpr Id() = default;
  constexpr explicit Id(value_type v) : value(v) {}

  [[nodiscard]] constexpr bool valid() const { return value != invalid_value; }
  [[nodiscard]] static constexpr Id invalid() { return Id{}; }

  friend constexpr auto operator<=>(Id, Id) = default;
};

struct MetroTag {};
struct FacilityTag {};
struct OperatorTag {};
struct IxpTag {};
struct RouterTag {};
struct LinkTag {};
struct VantagePointTag {};

using MetroId = Id<MetroTag>;
using FacilityId = Id<FacilityTag>;
using OperatorId = Id<OperatorTag>;
using IxpId = Id<IxpTag>;
using RouterId = Id<RouterTag>;
using LinkId = Id<LinkTag>;
using VantagePointId = Id<VantagePointTag>;

// AS numbers are real-world-meaningful values (not dense handles), so they
// keep their own wrapper distinct from the Id<> template.
struct Asn {
  std::uint32_t value = 0;

  constexpr Asn() = default;
  constexpr explicit Asn(std::uint32_t v) : value(v) {}

  [[nodiscard]] constexpr bool valid() const { return value != 0; }

  friend constexpr auto operator<=>(Asn, Asn) = default;
};

}  // namespace cfs

namespace std {

template <class Tag>
struct hash<cfs::Id<Tag>> {
  size_t operator()(cfs::Id<Tag> id) const noexcept {
    return std::hash<std::uint32_t>{}(id.value);
  }
};

template <>
struct hash<cfs::Asn> {
  size_t operator()(cfs::Asn asn) const noexcept {
    return std::hash<std::uint32_t>{}(asn.value);
  }
};

}  // namespace std
