// Tiny command-line flag parser for the tools/ binaries.
//
// Supports "--name value", "--name=value" and boolean "--name" forms plus
// positional arguments. No registration step: callers query typed getters
// with defaults and then call `unknown_flags()` to reject typos. Repeating
// a flag is a hard error from the constructor — with two occurrences there
// is no way to tell which one the caller meant.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

namespace cfs {

class Flags {
 public:
  Flags(int argc, const char* const* argv);

  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }

  [[nodiscard]] bool has(const std::string& name) const;
  [[nodiscard]] std::string get(const std::string& name,
                                const std::string& fallback) const;
  [[nodiscard]] std::int64_t get_int(const std::string& name,
                                     std::int64_t fallback) const;
  [[nodiscard]] double get_double(const std::string& name,
                                  double fallback) const;
  [[nodiscard]] bool get_bool(const std::string& name, bool fallback) const;

  // Flags present on the command line but never queried; call after all
  // gets to report typos. (Query order matters: getters mark flags used.)
  [[nodiscard]] std::vector<std::string> unknown_flags() const;

  // Ready-made diagnostic for unknown_flags(), or "" when there are none.
  // Mentions the --name=value form, because a space-separated value that
  // itself starts with "--" always parses as a second flag and lands here.
  [[nodiscard]] std::string unknown_flags_message() const;

 private:
  std::map<std::string, std::string> values_;  // "" for bare booleans
  std::vector<std::string> positional_;
  mutable std::set<std::string> used_;
};

}  // namespace cfs
