// Flat dynamic bitset for slot-indexed worklists.
//
// The constraint fold tracks which observation slots are dirty/pending as
// bits over the slot space instead of std::set<key> — O(1) membership, no
// node allocations, and a popcount gives the pass-start worklist size.
// Unlike std::vector<bool> it exposes the word array semantics we need:
// cheap whole-set union (`merge`), reset_all, and an exact count.
#pragma once

#include <algorithm>
#include <bit>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace cfs {

class DynamicBitset {
 public:
  // Grows (or shrinks) to `n` bits; new bits are zero. Shrinking masks the
  // dropped tail so a later regrow cannot resurrect stale bits.
  void resize(std::size_t n) {
    words_.resize((n + 63) / 64, 0);
    n_ = n;
    const std::size_t tail = n_ % 64;
    if (tail != 0 && !words_.empty())
      words_.back() &= (~std::uint64_t{0} >> (64 - tail));
  }

  void set(std::size_t i) {
    assert(i < n_);
    words_[i / 64] |= std::uint64_t{1} << (i % 64);
  }

  void reset(std::size_t i) {
    assert(i < n_);
    words_[i / 64] &= ~(std::uint64_t{1} << (i % 64));
  }

  [[nodiscard]] bool test(std::size_t i) const {
    assert(i < n_);
    return (words_[i / 64] >> (i % 64)) & 1;
  }

  void reset_all() { std::fill(words_.begin(), words_.end(), 0); }

  // Bitwise OR of an equally-sized set into this one.
  void merge(const DynamicBitset& other) {
    assert(n_ == other.n_);
    for (std::size_t w = 0; w < words_.size(); ++w)
      words_[w] |= other.words_[w];
  }

  [[nodiscard]] std::size_t count() const {
    std::size_t total = 0;
    for (const std::uint64_t w : words_) total += std::popcount(w);
    return total;
  }

  [[nodiscard]] bool any() const {
    for (const std::uint64_t w : words_)
      if (w != 0) return true;
    return false;
  }

  [[nodiscard]] std::size_t size() const { return n_; }

 private:
  std::vector<std::uint64_t> words_;
  std::size_t n_ = 0;
};

}  // namespace cfs
