#include "util/geo.h"

#include <cmath>
#include <numbers>

namespace cfs {
namespace {

constexpr double earth_radius_km = 6371.0;
constexpr double fibre_km_per_ms = 299.792458 * (2.0 / 3.0);  // ~200 km/ms
constexpr double path_stretch = 1.4;

double deg2rad(double deg) { return deg * std::numbers::pi / 180.0; }

}  // namespace

double haversine_km(const GeoPoint& a, const GeoPoint& b) {
  const double lat1 = deg2rad(a.lat_deg);
  const double lat2 = deg2rad(b.lat_deg);
  const double dlat = lat2 - lat1;
  const double dlon = deg2rad(b.lon_deg - a.lon_deg);
  const double h = std::sin(dlat / 2) * std::sin(dlat / 2) +
                   std::cos(lat1) * std::cos(lat2) * std::sin(dlon / 2) *
                       std::sin(dlon / 2);
  return 2.0 * earth_radius_km * std::asin(std::min(1.0, std::sqrt(h)));
}

double propagation_delay_ms(const GeoPoint& a, const GeoPoint& b) {
  return haversine_km(a, b) * path_stretch / fibre_km_per_ms;
}

}  // namespace cfs
