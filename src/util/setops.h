// Sorted-vector set algebra for the constraint-narrowing hot path.
//
// Candidate facility sets are sorted, duplicate-free vectors (or arena
// spans of the same shape). These helpers are the only set operations the
// core uses on them; all take sorted-unique inputs (asserted in debug
// builds) and produce sorted-unique outputs. `intersect_in_place` is the
// narrowing primitive: it writes only to already-consumed positions of
// the left operand, so when the intersection is empty it returns 0
// having written nothing — the caller can reject the emptying constraint
// (a conflict, core/candidates.cpp) and keep the original set intact
// without a copy. Property-tested against a std::set reference model in
// tests/util/setops_test.cpp.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <iterator>
#include <vector>

namespace cfs {

template <class T>
[[maybe_unused]] inline bool sorted_unique(const T* v, std::size_t n) {
  for (std::size_t i = 1; i < n; ++i)
    if (!(v[i - 1] < v[i])) return false;
  return true;
}

template <class T>
[[maybe_unused]] inline bool sorted_unique(const std::vector<T>& v) {
  return sorted_unique(v.data(), v.size());
}

template <class T>
[[nodiscard]] std::vector<T> set_intersect(const std::vector<T>& a,
                                           const std::vector<T>& b) {
  assert(sorted_unique(a) && sorted_unique(b));
  std::vector<T> out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

template <class T>
[[nodiscard]] std::vector<T> set_union_of(const std::vector<T>& a,
                                          const std::vector<T>& b) {
  assert(sorted_unique(a) && sorted_unique(b));
  std::vector<T> out;
  std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                 std::back_inserter(out));
  return out;
}

template <class T>
[[nodiscard]] std::vector<T> set_difference_of(const std::vector<T>& a,
                                               const std::vector<T>& b) {
  assert(sorted_unique(a) && sorted_unique(b));
  std::vector<T> out;
  std::set_difference(a.begin(), a.end(), b.begin(), b.end(),
                      std::back_inserter(out));
  return out;
}

// inner ⊆ outer.
template <class T>
[[nodiscard]] bool set_subset(const T* inner, std::size_t n, const T* outer,
                              std::size_t m) {
  assert(sorted_unique(inner, n) && sorted_unique(outer, m));
  return std::includes(outer, outer + m, inner, inner + n);
}

template <class T>
[[nodiscard]] bool set_subset(const std::vector<T>& inner,
                              const std::vector<T>& outer) {
  return set_subset(inner.data(), inner.size(), outer.data(), outer.size());
}

// |a ∩ b| without materialising the intersection.
template <class T>
[[nodiscard]] std::size_t set_intersect_count(const T* a, std::size_t n,
                                              const T* b, std::size_t m) {
  assert(sorted_unique(a, n) && sorted_unique(b, m));
  std::size_t out = 0, i = 0, j = 0;
  while (i < n && j < m) {
    if (a[i] < b[j]) {
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      ++out;
      ++i;
      ++j;
    }
  }
  return out;
}

// True when a and b share at least one element (early-exit).
template <class T>
[[nodiscard]] bool set_intersects(const T* a, std::size_t n, const T* b,
                                  std::size_t m) {
  assert(sorted_unique(a, n) && sorted_unique(b, m));
  std::size_t i = 0, j = 0;
  while (i < n && j < m) {
    if (a[i] < b[j])
      ++i;
    else if (b[j] < a[i])
      ++j;
    else
      return true;
  }
  return false;
}

template <class T>
[[nodiscard]] bool set_intersects(const std::vector<T>& a,
                                  const std::vector<T>& b) {
  return set_intersects(a.data(), a.size(), b.data(), b.size());
}

// a[0..n) ∩ b[0..m) written into a's prefix; returns the new length.
//
// Two-pointer scan: position `out` only ever trails the read cursor `i`,
// so every write lands on an element the scan has already consumed. In
// particular an empty intersection performs ZERO writes — a[0..n) is
// bit-for-bit unchanged — which is what lets the constraint fold try a
// narrowing and cheaply reject it as a conflict when it would empty the
// set. Safe for a and b aliasing the same array only when they are the
// identical span.
template <class T>
[[nodiscard]] std::size_t intersect_in_place(T* a, std::size_t n,
                                             const T* b, std::size_t m) {
  assert(sorted_unique(a, n) && sorted_unique(b, m));
  std::size_t out = 0, i = 0, j = 0;
  while (i < n && j < m) {
    if (a[i] < b[j]) {
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      a[out++] = a[i++];
      ++j;
    }
  }
  return out;
}

}  // namespace cfs
