// Bump-pointer arena for the SoA observation store.
//
// Candidate facility spans and per-observation payloads live in one
// contiguous arena instead of thousands of individual vector
// allocations: CFS only ever narrows a candidate set after its first
// assignment (core/candidates.cpp), so a span allocated at its initial
// size never needs to grow — the classic bump-arena fit. Allocation is
// monotone within a block; `reset()` recycles every block at once when
// the store rebuilds. Not thread-safe: each arena is owned by exactly
// one engine state (the parallel constraint fold speculates into
// per-chunk scratch and only the serial apply writes arena-backed
// state).
//
// `bytes_allocated()` feeds the `cfs.arena_bytes` gauge in the metrics
// registry, and a process-wide counter tracks the high-water mark across
// all arenas for BENCH_parallel.json (docs/OBSERVABILITY.md).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <vector>

namespace cfs {

class Arena {
 public:
  static constexpr std::size_t default_block_bytes = std::size_t{1} << 20;

  explicit Arena(std::size_t block_bytes = default_block_bytes)
      : block_bytes_(block_bytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;
  Arena(Arena&& other) noexcept;
  Arena& operator=(Arena&& other) noexcept;
  ~Arena();

  // Uninitialised storage for n objects of T, aligned for T. n == 0 is
  // allowed and returns a non-null (possibly shared) pointer.
  template <class T>
  [[nodiscard]] T* alloc_array(std::size_t n) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena storage is reclaimed without running destructors");
    return static_cast<T*>(alloc(n * sizeof(T), alignof(T)));
  }

  [[nodiscard]] void* alloc(std::size_t bytes, std::size_t align);

  // Recycles every block for reuse (capacity and the process-wide
  // counter are retained; bytes_allocated() restarts from zero).
  void reset();

  // Bytes handed out since construction/reset (payload, not capacity).
  [[nodiscard]] std::size_t bytes_allocated() const {
    return bytes_allocated_;
  }

  // Capacity currently held in blocks.
  [[nodiscard]] std::size_t bytes_reserved() const { return bytes_reserved_; }

  // Block capacity currently held by every live arena in the process,
  // for the memory gauges in BENCH_parallel.json.
  [[nodiscard]] static std::uint64_t process_reserved_bytes();

 private:
  struct Block {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
    std::size_t used = 0;
  };

  std::size_t block_bytes_;
  std::vector<Block> blocks_;
  std::size_t active_ = 0;  // blocks_[active_..] have room when recycled
  std::size_t bytes_allocated_ = 0;
  std::size_t bytes_reserved_ = 0;
};

}  // namespace cfs
