#include "util/flags.h"

#include <stdexcept>

#include "util/strings.h"

namespace cfs {

namespace {

// Every malformed value reports the flag name, the expected type and the
// offending text, so a typo'd command line is diagnosable from the message
// alone.
[[noreturn]] void bad_value(const std::string& name, const char* expected,
                            const std::string& value) {
  throw std::invalid_argument("flag --" + name + " expects " + expected +
                              ", got '" + value + "'");
}

// stoll/stod skip leading whitespace and count it as consumed, so the
// used == size() check alone accepts " 4" while rejecting "4 ". Reject the
// leading side explicitly to make both directions consistent.
bool has_leading_space(const std::string& value) {
  return !value.empty() &&
         (value.front() == ' ' || value.front() == '\t' ||
          value.front() == '\n' || value.front() == '\r' ||
          value.front() == '\f' || value.front() == '\v');
}

}  // namespace

Flags::Flags(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (!starts_with(arg, "--")) {
      positional_.push_back(arg);
      continue;
    }
    const std::string body = arg.substr(2);
    const auto eq = body.find('=');
    std::string name;
    std::string value;
    if (eq != std::string::npos) {
      name = body.substr(0, eq);
      value = body.substr(eq + 1);
    } else if (i + 1 < argc && !starts_with(argv[i + 1], "--")) {
      name = body;
      value = argv[++i];
    } else {
      name = body;
    }
    // Silent last-wins would make "--seed 1 ... --seed 2" depend on
    // argument order in a way no error message ever surfaces.
    if (values_.contains(name))
      throw std::invalid_argument("flag --" + name +
                                  " given more than once; pass it a single "
                                  "time");
    values_[name] = std::move(value);
  }
}

bool Flags::has(const std::string& name) const {
  used_.insert(name);
  return values_.contains(name);
}

std::string Flags::get(const std::string& name,
                       const std::string& fallback) const {
  used_.insert(name);
  const auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

std::int64_t Flags::get_int(const std::string& name,
                            std::int64_t fallback) const {
  used_.insert(name);
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  std::size_t used = 0;
  std::int64_t value = 0;
  bool parsed = true;
  try {
    value = std::stoll(it->second, &used);
  } catch (const std::logic_error&) {  // empty/garbage or out of range
    parsed = false;
  }
  if (!parsed || used != it->second.size() || has_leading_space(it->second))
    bad_value(name, "an integer", it->second);
  return value;
}

double Flags::get_double(const std::string& name, double fallback) const {
  used_.insert(name);
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  std::size_t used = 0;
  double value = 0.0;
  bool parsed = true;
  try {
    value = std::stod(it->second, &used);
  } catch (const std::logic_error&) {
    parsed = false;
  }
  if (!parsed || used != it->second.size() || has_leading_space(it->second))
    bad_value(name, "a number", it->second);
  return value;
}

bool Flags::get_bool(const std::string& name, bool fallback) const {
  used_.insert(name);
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  if (it->second.empty() || it->second == "true" || it->second == "1")
    return true;
  if (it->second == "false" || it->second == "0") return false;
  bad_value(name, "a boolean", it->second);
}

std::vector<std::string> Flags::unknown_flags() const {
  std::vector<std::string> out;
  for (const auto& [name, value] : values_)
    if (!used_.contains(name)) out.push_back(name);
  return out;
}

std::string Flags::unknown_flags_message() const {
  const std::vector<std::string> unknown = unknown_flags();
  if (unknown.empty()) return "";
  std::string message = "unknown flag(s):";
  for (const std::string& name : unknown) message += " --" + name;
  message +=
      " (a value starting with '--' must be attached with '=', e.g. "
      "--name=value)";
  return message;
}

}  // namespace cfs
