// Minimal leveled logger. Benchmarks and examples flip the level to Info to
// narrate progress; tests keep the default Warn so output stays clean.
#pragma once

#include <sstream>
#include <string>

namespace cfs {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

LogLevel log_level();
void set_log_level(LogLevel level);

void log_message(LogLevel level, const std::string& message);

namespace detail {

class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { log_message(level_, stream_.str()); }

  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <class T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace detail

inline detail::LogLine log_debug() { return detail::LogLine(LogLevel::Debug); }
inline detail::LogLine log_info() { return detail::LogLine(LogLevel::Info); }
inline detail::LogLine log_warn() { return detail::LogLine(LogLevel::Warn); }
inline detail::LogLine log_error() { return detail::LogLine(LogLevel::Error); }

}  // namespace cfs
