// Dense-handle interner: the boundary between the string/value world and
// the hot path.
//
// The CFS core refers to every recurring identifier (interface address,
// AS number, hostname fragment) through a dense `u32` handle minted at
// ingest. Handles are contiguous (`0..size()-1`), assigned in first-seen
// order — so two runs that ingest the same sequence mint identical
// handles and every downstream array indexed by handle is deterministic —
// and they round-trip (`value(intern(v)) == v`, `intern(value(h)) == h`).
// Const lookups never mint: a query for an unknown value returns nullopt
// instead of perturbing the handle space (docs/ALGORITHM.md "Memory
// layout").
#pragma once

#include <cassert>
#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

namespace cfs {

template <class T, class Hash = std::hash<T>>
class Interner {
 public:
  using handle_type = std::uint32_t;

  // Returns the existing handle for `v` or mints the next dense one.
  handle_type intern(const T& v) {
    const auto [it, inserted] =
        index_.try_emplace(v, static_cast<handle_type>(values_.size()));
    if (inserted) values_.push_back(v);
    return it->second;
  }

  // Never mints: the const path is safe to call from read-only code
  // (query handlers, oracles) without changing the handle space.
  [[nodiscard]] std::optional<handle_type> find(const T& v) const {
    const auto it = index_.find(v);
    if (it == index_.end()) return std::nullopt;
    return it->second;
  }

  [[nodiscard]] bool contains(const T& v) const {
    return index_.find(v) != index_.end();
  }

  [[nodiscard]] const T& value(handle_type h) const {
    assert(h < values_.size());
    return values_[h];
  }

  [[nodiscard]] std::size_t size() const { return values_.size(); }
  [[nodiscard]] bool empty() const { return values_.empty(); }

  // Insertion-order value column; index i holds the value of handle i.
  [[nodiscard]] const std::vector<T>& values() const { return values_; }

 private:
  std::unordered_map<T, handle_type, Hash> index_;
  std::vector<T> values_;  // handle -> value, insertion order
};

}  // namespace cfs
