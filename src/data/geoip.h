// IP-geolocation database baseline.
//
// Commercial geolocation databases resolve a prefix to where it is
// *registered*, not where it is routed: a global network's whole block maps
// to its headquarters (the paper's example — every Google interconnection
// address geolocating to California). The emulated database registers each
// announced prefix at the origin AS's headquarters metro, with a small
// chance of being outright garbage, and is accurate at country level far
// more often than at metro level — matching the measurement literature the
// paper cites.
#pragma once

#include <optional>
#include <string>
#include <unordered_map>

#include "topology/topology.h"

namespace cfs {

struct GeoIpConfig {
  double garbage_entry = 0.05;  // entry pointing at a random metro
  // Fault-plane degradation: prefix entries simply absent from the
  // snapshot. 0 consumes no randomness (byte-identical database).
  double record_missing = 0.0;
  std::uint64_t seed = 37;
};

struct GeoIpEntry {
  std::string country;
  MetroId metro;
};

class GeoIpDb {
 public:
  GeoIpDb(const Topology& topo, const GeoIpConfig& config);

  [[nodiscard]] std::optional<GeoIpEntry> lookup(Ipv4 addr) const;

  // Entries withheld by record_missing at snapshot time.
  [[nodiscard]] std::size_t records_withheld() const { return withheld_; }

 private:
  const Topology& topo_;
  std::unordered_map<Prefix, GeoIpEntry> entries_;
  std::size_t withheld_ = 0;
};

}  // namespace cfs
