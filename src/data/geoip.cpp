#include "data/geoip.h"

#include "util/rng.h"

namespace cfs {

GeoIpDb::GeoIpDb(const Topology& topo, const GeoIpConfig& config)
    : topo_(topo) {
  Rng rng(config.seed);
  for (const auto& as : topo.ases()) {
    if (as.facilities.empty()) continue;
    // Registration address: the operator's headquarters metro.
    const MetroId hq = topo.metro_of(as.facilities.front());
    for (const Prefix& prefix : as.prefixes) {
      // Guarded so a zero rate draws nothing and the garbage-entry draw
      // sequence (and thus the whole database) is unchanged.
      if (config.record_missing > 0.0 && rng.chance(config.record_missing)) {
        ++withheld_;
        continue;
      }
      MetroId metro = hq;
      if (rng.chance(config.garbage_entry))
        metro = MetroId(
            static_cast<std::uint32_t>(rng.index(topo.metros().size())));
      entries_.emplace(prefix,
                       GeoIpEntry{topo.metro(metro).country, metro});
    }
  }
}

std::optional<GeoIpEntry> GeoIpDb::lookup(Ipv4 addr) const {
  // Longest announced prefix containing the address.
  const auto hit = topo_.announcements().lookup(addr);
  if (!hit) return std::nullopt;
  const auto it = entries_.find(hit->first);
  if (it == entries_.end()) return std::nullopt;
  return it->second;
}

}  // namespace cfs
