#include "data/websites.h"

namespace cfs {

NocWebsiteSource::NocWebsiteSource(const Topology& topo,
                                   const WebsiteConfig& config)
    : topo_(topo) {
  Rng rng(config.seed);
  for (const auto& as : topo.ases()) {
    double p = 0.0;
    switch (as.type) {
      case AsType::Tier1: p = config.tier1_noc; break;
      case AsType::Transit: p = config.transit_noc; break;
      case AsType::Content: p = config.content_noc; break;
      case AsType::Eyeball: p = config.eyeball_noc; break;
      case AsType::Enterprise: p = config.enterprise_noc; break;
    }
    if (rng.chance(p)) published_.insert(as.asn.value);
  }
}

std::optional<std::vector<FacilityId>> NocWebsiteSource::facilities_of(
    Asn asn) const {
  if (!published_.contains(asn.value)) return std::nullopt;
  return topo_.as_of(asn).facilities;
}

bool NocWebsiteSource::publishes(Asn asn) const {
  return published_.contains(asn.value);
}

IxpWebsiteSource::IxpWebsiteSource(const Topology& topo,
                                   const WebsiteConfig& config)
    : topo_(topo) {
  Rng rng(config.seed ^ 0xabcdef);
  for (const auto& ixp : topo.ixps()) {
    if (rng.chance(config.ixp_facility_list)) {
      facility_lists_.insert(ixp.id.value);
      if (rng.chance(config.ixp_member_table))
        member_tables_.insert(ixp.id.value);
    }
  }
}

std::optional<std::vector<FacilityId>> IxpWebsiteSource::facilities_of(
    IxpId ixp) const {
  if (!facility_lists_.contains(ixp.value)) return std::nullopt;
  return topo_.ixp(ixp).facilities();
}

std::optional<std::vector<IxpMemberPortRecord>> IxpWebsiteSource::member_table(
    IxpId ixp_id) const {
  if (!member_tables_.contains(ixp_id.value)) return std::nullopt;
  const Ixp& ixp = topo_.ixp(ixp_id);
  std::vector<IxpMemberPortRecord> out;
  out.reserve(ixp.ports.size());
  for (const auto& port : ixp.ports) {
    IxpMemberPortRecord record;
    record.member = port.member;
    record.lan_address = port.lan_address;
    record.facility = ixp.switches[port.access_switch].facility;
    record.remote = port.remote;
    out.push_back(record);
  }
  return out;
}

bool IxpWebsiteSource::publishes_facilities(IxpId ixp) const {
  return facility_lists_.contains(ixp.value);
}

std::size_t IxpWebsiteSource::member_table_count() const {
  return member_tables_.size();
}

}  // namespace cfs
