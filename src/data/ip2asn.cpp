#include "data/ip2asn.h"

namespace cfs {

IpToAsnService::IpToAsnService(const Topology& topo) : topo_(topo) {}

std::optional<Asn> IpToAsnService::lookup(Ipv4 addr) const {
  const auto hit = topo_.announcements().lookup(addr);
  if (!hit) return std::nullopt;
  return hit->second;
}

std::optional<Prefix> IpToAsnService::matched_prefix(Ipv4 addr) const {
  const auto hit = topo_.announcements().lookup(addr);
  if (!hit) return std::nullopt;
  return hit->first;
}

std::optional<IxpId> IpToAsnService::ixp_of(Ipv4 addr) const {
  return topo_.ixp_of_address(addr);
}

}  // namespace cfs
