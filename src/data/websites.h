// NOC- and IXP-website data sources (paper Section 3.1).
//
// Operators that publish complete colocation lists on their NOC pages let
// the paper patch 1,424 AS-facility links PeeringDB was missing (Fig. 2);
// a handful of large IXPs publish full facility lists, and a few (AMS-IX,
// France-IX, ...) even publish member interface -> facility tables that
// serve as ground truth for validation (Fig. 9) and for the switch-
// proximity experiment (Section 4.4).
#pragma once

#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "topology/topology.h"
#include "util/rng.h"

namespace cfs {

struct WebsiteConfig {
  // Probability an AS of each type documents its full facility list.
  double tier1_noc = 0.9;
  double transit_noc = 0.6;
  double content_noc = 0.4;
  double eyeball_noc = 0.25;
  double enterprise_noc = 0.05;
  // Probability an IXP website lists its partner facilities.
  double ixp_facility_list = 0.7;
  // Probability a listing IXP also publishes the member-port table.
  double ixp_member_table = 0.12;
  std::uint64_t seed = 23;
};

class NocWebsiteSource {
 public:
  NocWebsiteSource(const Topology& topo, const WebsiteConfig& config);

  // Full ground-truth facility list when the AS publishes one.
  [[nodiscard]] std::optional<std::vector<FacilityId>> facilities_of(
      Asn asn) const;
  [[nodiscard]] bool publishes(Asn asn) const;
  [[nodiscard]] std::size_t publishers() const { return published_.size(); }

 private:
  const Topology& topo_;
  std::unordered_set<std::uint32_t> published_;
};

struct IxpMemberPortRecord {
  Asn member;
  Ipv4 lan_address;
  FacilityId facility;  // facility of the access switch the port is on
  bool remote = false;
};

class IxpWebsiteSource {
 public:
  IxpWebsiteSource(const Topology& topo, const WebsiteConfig& config);

  [[nodiscard]] std::optional<std::vector<FacilityId>> facilities_of(
      IxpId ixp) const;
  // AMS-IX-style connected-parties table (ground-truth-derived).
  [[nodiscard]] std::optional<std::vector<IxpMemberPortRecord>> member_table(
      IxpId ixp) const;
  [[nodiscard]] bool publishes_facilities(IxpId ixp) const;
  [[nodiscard]] std::size_t member_table_count() const;

 private:
  const Topology& topo_;
  std::unordered_set<std::uint32_t> facility_lists_;
  std::unordered_set<std::uint32_t> member_tables_;
};

}  // namespace cfs
