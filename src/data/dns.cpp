#include "data/dns.h"

#include <algorithm>

#include "topology/metro.h"
#include "util/rng.h"
#include "util/strings.h"

namespace cfs {
namespace {

std::string slug(std::string_view text) {
  std::string out = to_lower(text);
  std::replace(out.begin(), out.end(), ' ', '-');
  std::replace(out.begin(), out.end(), '.', '-');
  return out;
}

std::string operator_initials(const std::string& name) {
  std::string out;
  bool word_start = true;
  for (const char c : name) {
    if (c == ' ') {
      word_start = true;
    } else {
      if (word_start)
        out.push_back(static_cast<char>(std::tolower(
            static_cast<unsigned char>(c))));
      word_start = false;
    }
  }
  return out.empty() ? std::string("x") : out;
}

std::string ixp_zone(const Ixp& ixp) { return slug(ixp.name) + ".net"; }

std::uint64_t splitmix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

DnsNames::DnsNames(const Topology& topo, const DnsConfig& config)
    : topo_(topo), config_(config) {
  // Metro codes from the catalog (airport-style), with a fallback prefix.
  metro_codes_.resize(topo.metros().size());
  std::unordered_map<std::string, std::string> catalog_codes;
  for (const auto& seed : metro_catalog())
    catalog_codes.emplace(seed.name, seed.airport_code);
  for (const auto& metro : topo.metros()) {
    const auto it = catalog_codes.find(metro.name);
    metro_codes_[metro.id.value] =
        it != catalog_codes.end() ? it->second : slug(metro.name).substr(0, 3);
  }

  // Facility codes: operator initials + per-(operator, metro) serial, the
  // way "thn" (Telehouse North) style codes work in practice.
  facility_codes_.resize(topo.facilities().size());
  std::unordered_map<std::string, int> serial;
  for (const auto& fac : topo.facilities()) {
    const std::string base = operator_initials(topo.oper(fac.oper).name);
    const std::string key =
        base + "/" + std::to_string(fac.metro.value);
    facility_codes_[fac.id.value] = base + std::to_string(++serial[key]);
  }

  // Which FacilityCode operators' schemes are documented for the parser.
  Rng rng(config.seed);
  for (const auto& as : topo.ases()) {
    if (as.dns != DnsConvention::FacilityCode &&
        as.dns != DnsConvention::Stale)
      continue;
    if (rng.chance(config.documented_operator_fraction))
      documented_zones_.insert(as.dns_zone);
  }
}

std::uint64_t DnsNames::mix(Ipv4 addr, std::uint64_t salt) const {
  return splitmix(addr.value() ^ (config_.seed << 17) ^ (salt * 0x10001));
}

std::optional<std::string> DnsNames::ptr(Ipv4 addr) const {
  const Interface* iface = topo_.find_interface(addr);
  if (iface == nullptr) return std::nullopt;
  const Router& router = topo_.router(iface->router);
  const AutonomousSystem& as = topo_.as_of(router.owner);

  if (iface->role == InterfaceRole::IxpLan) {
    const auto ixp_id = topo_.ixp_of_address(addr);
    if (ixp_id && mix(addr, 1) % 1000 <
                      static_cast<std::uint64_t>(config_.ixp_lan_named * 1000))
      return "as" + std::to_string(as.asn.value) + "." +
             ixp_zone(topo_.ixp(*ixp_id));
    return std::nullopt;
  }

  if (as.dns == DnsConvention::None) return std::nullopt;
  if (mix(addr, 2) % 1000 <
      static_cast<std::uint64_t>(config_.record_missing * 1000))
    return std::nullopt;

  const std::string rtr = "rtr" + std::to_string(router.id.value);
  FacilityId named_facility = router.facility;
  if (as.dns == DnsConvention::Stale &&
      mix(addr, 3) % 1000 <
          static_cast<std::uint64_t>(config_.stale_wrong * 1000)) {
    // Records never updated after a move: name some other facility of the
    // operator (deterministic per address).
    const auto& facs = as.facilities;
    if (facs.size() > 1) {
      const FacilityId other =
          facs[mix(addr, 4) % facs.size()];
      named_facility = other;
    }
  }
  const MetroId named_metro = topo_.facility(named_facility).metro;

  switch (as.dns) {
    case DnsConvention::Opaque:
      return "ip" + std::to_string((addr.value() >> 8) & 0xff) + "-" +
             std::to_string(addr.value() & 0xff) + "." + as.dns_zone;
    case DnsConvention::AirportCode:
      return rtr + "." + metro_codes_[named_metro.value] + "." + as.dns_zone;
    case DnsConvention::CityName:
      return rtr + "." + slug(topo_.metro(named_metro).name) + "." +
             as.dns_zone;
    case DnsConvention::FacilityCode:
    case DnsConvention::Stale:
      return rtr + "." + facility_codes_[named_facility.value] + "." +
             metro_codes_[named_metro.value] + "." + as.dns_zone;
    case DnsConvention::None:
      return std::nullopt;
  }
  return std::nullopt;
}

const std::string& DnsNames::facility_code(FacilityId facility) const {
  return facility_codes_.at(facility.value);
}

const std::string& DnsNames::metro_code(MetroId metro) const {
  return metro_codes_.at(metro.value);
}

DropParser::DropParser(const DnsNames& names) : names_(names) {
  const Topology& topo = names.topology();
  for (const auto& metro : topo.metros()) {
    metro_tokens_.emplace(names.metro_code(metro.id), metro.id);
    city_tokens_.emplace(slug(metro.name), metro.id);
  }
  for (const auto& fac : topo.facilities()) {
    const std::string key =
        names.metro_code(fac.metro) + "/" + names.facility_code(fac.id);
    facility_tokens_.emplace(key, fac.id);
  }
  for (const auto& ixp : topo.ixps())
    ixp_zones_.emplace(ixp_zone(ixp), ixp.metro);
}

DnsGeoHint DropParser::parse(const std::string& hostname) const {
  DnsGeoHint hint;
  const auto tokens = split(hostname, '.');
  if (tokens.size() < 2) return hint;

  // Zones may have two or more labels; match the longest known suffix.
  bool zone_documented = false;
  for (std::size_t take = 2; take <= std::min<std::size_t>(4, tokens.size());
       ++take) {
    std::string zone = tokens[tokens.size() - take];
    for (std::size_t k = tokens.size() - take + 1; k < tokens.size(); ++k)
      zone += "." + tokens[k];
    if (const auto it = ixp_zones_.find(zone); it != ixp_zones_.end()) {
      hint.level = DnsGeoHint::Level::Metro;
      hint.metro = it->second;
      return hint;
    }
    zone_documented |= names_.documented_zones().contains(zone);
  }

  // Find a metro token first (airport code or city name).
  std::string metro_code;
  for (std::size_t i = 0; i + 2 < tokens.size(); ++i) {
    const std::string& token = tokens[i];
    if (const auto it = metro_tokens_.find(token);
        it != metro_tokens_.end()) {
      hint.level = DnsGeoHint::Level::Metro;
      hint.metro = it->second;
      metro_code = token;
      break;
    }
    if (const auto it = city_tokens_.find(token); it != city_tokens_.end()) {
      hint.level = DnsGeoHint::Level::Metro;
      hint.metro = it->second;
      metro_code = names_.metro_code(it->second);
      break;
    }
  }
  if (hint.level == DnsGeoHint::Level::None) return hint;

  // Facility tokens decode only for operators whose scheme is documented.
  if (!zone_documented) return hint;
  for (std::size_t i = 0; i + 2 < tokens.size(); ++i) {
    const auto it = facility_tokens_.find(metro_code + "/" + tokens[i]);
    if (it != facility_tokens_.end()) {
      hint.level = DnsGeoHint::Level::Facility;
      hint.facility = it->second;
      return hint;
    }
  }
  return hint;
}

DnsGeoHint DropParser::geolocate(Ipv4 addr) const {
  const auto name = names_.ptr(addr);
  if (!name) return DnsGeoHint{};
  return parse(*name);
}

}  // namespace cfs
