#include "data/normalize.h"

#include "topology/metro.h"
#include "util/strings.h"

namespace cfs {

CityNormalizer::CityNormalizer(const Topology& topo) : topo_(topo) {
  // Canonical names straight from the topology.
  for (const auto& metro : topo.metros())
    by_name_.emplace(to_lower(metro.name), metro.id);
  // Alias suburbs from the catalog, matched to topology metros by name.
  for (const auto& seed : metro_catalog()) {
    const auto it = by_name_.find(to_lower(seed.name));
    if (it == by_name_.end()) continue;
    for (const auto& alias : seed.aliases)
      by_name_.emplace(to_lower(alias), it->second);
  }
}

std::optional<MetroId> CityNormalizer::normalize(
    const std::string& raw_city,
    const std::optional<GeoPoint>& location) const {
  const auto it = by_name_.find(to_lower(raw_city));
  if (it != by_name_.end()) return it->second;
  if (location) return by_location(*location);
  return std::nullopt;
}

std::optional<MetroId> CityNormalizer::by_location(
    const GeoPoint& location) const {
  std::optional<MetroId> best;
  double best_km = metro_merge_km * 4;  // generous facility-jitter radius
  for (const auto& metro : topo_.metros()) {
    const double km = haversine_km(location, metro.location);
    if (km < best_km) {
      best_km = km;
      best = metro.id;
    }
  }
  return best;
}

}  // namespace cfs
