#include "data/peeringdb.h"

#include <algorithm>

namespace cfs {

const std::vector<FacilityId> PeeringDb::empty_;

namespace {

void sort_unique(std::vector<FacilityId>& v) {
  std::sort(v.begin(), v.end());
  v.erase(std::unique(v.begin(), v.end()), v.end());
}

}  // namespace

PeeringDb::PeeringDb(const Topology& topo, const PeeringDbConfig& config) {
  Rng rng(config.seed);

  for (const auto& as : topo.ases()) {
    if (rng.chance(config.as_record_missing)) continue;
    std::vector<FacilityId> facs;
    for (const FacilityId fac : as.facilities) {
      if (rng.chance(config.fac_link_missing)) continue;
      facs.push_back(fac);
    }
    if (rng.chance(config.stale_link) && !topo.facilities().empty()) {
      // A link the operator never cleaned up: facility the AS is not at.
      const FacilityId bogus(
          static_cast<std::uint32_t>(rng.index(topo.facilities().size())));
      if (std::find(as.facilities.begin(), as.facilities.end(), bogus) ==
          as.facilities.end())
        facs.push_back(bogus);
    }
    sort_unique(facs);
    as_facilities_.emplace(as.asn.value, std::move(facs));
  }

  for (const auto& ixp : topo.ixps()) {
    if (rng.chance(config.ixp_record_missing)) continue;
    std::vector<FacilityId> facs;
    for (const FacilityId fac : ixp.facilities()) {
      if (rng.chance(config.ixp_fac_link_missing)) continue;
      facs.push_back(fac);
    }
    sort_unique(facs);
    ixp_facilities_.emplace(ixp.id.value, std::move(facs));
  }
}

const std::vector<FacilityId>& PeeringDb::facilities_of(Asn asn) const {
  const auto it = as_facilities_.find(asn.value);
  return it == as_facilities_.end() ? empty_ : it->second;
}

const std::vector<FacilityId>& PeeringDb::ixp_facilities(IxpId ixp) const {
  const auto it = ixp_facilities_.find(ixp.value);
  return it == ixp_facilities_.end() ? empty_ : it->second;
}

bool PeeringDb::has_as_record(Asn asn) const {
  return as_facilities_.contains(asn.value);
}

bool PeeringDb::has_ixp_record(IxpId ixp) const {
  return ixp_facilities_.contains(ixp.value);
}

void PeeringDb::augment_as(Asn asn, std::span<const FacilityId> facilities) {
  auto& record = as_facilities_[asn.value];
  record.insert(record.end(), facilities.begin(), facilities.end());
  sort_unique(record);
}

void PeeringDb::augment_ixp(IxpId ixp, std::span<const FacilityId> facilities) {
  auto& record = ixp_facilities_[ixp.value];
  record.insert(record.end(), facilities.begin(), facilities.end());
  sort_unique(record);
}

std::size_t PeeringDb::remove_facility(FacilityId facility) {
  std::size_t touched = 0;
  auto strip = [&](std::vector<FacilityId>& v) {
    const auto it = std::remove(v.begin(), v.end(), facility);
    if (it != v.end()) {
      v.erase(it, v.end());
      ++touched;
    }
  };
  for (auto& [asn, v] : as_facilities_) strip(v);
  for (auto& [ixp, v] : ixp_facilities_) strip(v);
  return touched;
}

std::size_t PeeringDb::withhold_links(const FaultPlane& plane,
                                      double fraction) {
  if (fraction <= 0.0) return 0;
  std::size_t dropped = 0;
  const auto strip = [&](std::uint32_t owner, std::vector<FacilityId>& v,
                         std::uint64_t tag) {
    const auto it = std::remove_if(v.begin(), v.end(), [&](FacilityId fac) {
      const std::uint64_t key =
          (static_cast<std::uint64_t>(owner) << 32) | fac.value;
      return plane.withhold_record(fraction, key ^ tag);
    });
    dropped += static_cast<std::size_t>(v.end() - it);
    v.erase(it, v.end());
  };
  // Distinct tags keep AS and IXP link decisions independent even when the
  // 32-bit ids collide.
  for (auto& [asn, v] : as_facilities_) strip(asn, v, 0);
  for (auto& [ixp, v] : ixp_facilities_) strip(ixp, v, 0xa5a5a5a5ULL << 32);
  return dropped;
}

std::size_t PeeringDb::total_as_facility_links() const {
  std::size_t total = 0;
  for (const auto& [asn, v] : as_facilities_) total += v.size();
  return total;
}

}  // namespace cfs
