#include "data/facility_db.h"

#include <algorithm>

namespace cfs {

const std::vector<IxpId> FacilityDatabase::no_ixps_;

FacilityDatabase::FacilityDatabase(const Topology& topo, PeeringDb base,
                                   const NocWebsiteSource& noc,
                                   const IxpWebsiteSource& ixps)
    : db_(std::move(base)) {
  // Figure 2 is measured at assembly time: for every AS with a NOC page,
  // compare the website list against the pre-augmentation PeeringDB record,
  // then fold the website data in.
  for (const auto& as : topo.ases()) {
    const auto website = noc.facilities_of(as.asn);
    if (!website) continue;
    const auto& pdb = db_.facilities_of(as.asn);
    Coverage cov;
    cov.asn = as.asn;
    cov.website_facilities = website->size();
    cov.peeringdb_facilities = static_cast<std::size_t>(std::count_if(
        website->begin(), website->end(), [&](FacilityId fac) {
          return std::binary_search(pdb.begin(), pdb.end(), fac);
        }));
    coverage_.push_back(cov);
    db_.augment_as(as.asn, *website);
  }
  std::sort(coverage_.begin(), coverage_.end(),
            [](const Coverage& a, const Coverage& b) {
              return a.website_facilities > b.website_facilities;
            });

  for (const auto& ixp : topo.ixps()) {
    const auto website = ixps.facilities_of(ixp.id);
    if (!website) continue;
    const auto before = db_.ixp_facilities(ixp.id).size();
    db_.augment_ixp(ixp.id, *website);
    if (db_.ixp_facilities(ixp.id).size() > before) ++ixp_patched_;
  }

  // Presence index over the merged records (IXP ids ascend, so each
  // facility's list comes out sorted).
  for (const auto& ixp : topo.ixps())
    for (const FacilityId fac : db_.ixp_facilities(ixp.id))
      ixps_at_[fac.value].push_back(ixp.id);
}

std::size_t FacilityDatabase::withhold(const Topology& topo,
                                       const FaultPlane& plane,
                                       double fraction) {
  const std::size_t dropped = db_.withhold_links(plane, fraction);
  withheld_ += dropped;
  if (dropped == 0) return 0;
  ixps_at_.clear();
  for (const auto& ixp : topo.ixps())
    for (const FacilityId fac : db_.ixp_facilities(ixp.id))
      ixps_at_[fac.value].push_back(ixp.id);
  return dropped;
}

const std::vector<IxpId>& FacilityDatabase::ixps_at(FacilityId facility) const {
  const auto it = ixps_at_.find(facility.value);
  return it == ixps_at_.end() ? no_ixps_ : it->second;
}

FacilityDatabase::CoverageTotals FacilityDatabase::coverage_totals() const {
  CoverageTotals totals;
  totals.checked_ases = coverage_.size();
  for (const Coverage& cov : coverage_) {
    const std::size_t missing =
        cov.website_facilities - cov.peeringdb_facilities;
    totals.missing_links += missing;
    totals.ases_with_missing += missing > 0;
    totals.ases_without_any_record += cov.peeringdb_facilities == 0;
  }
  return totals;
}

}  // namespace cfs
