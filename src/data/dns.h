// Reverse-DNS hostname generation and the DRoP-style parsing baseline.
//
// Each operator names router interfaces per its convention (facility code,
// airport code, city name, opaque, stale, or no PTR at all); IXPs publish
// member records under their own zone. DnsNames renders the PTR record for
// an address; DropParser extracts geographic hints from hostnames using
// dictionaries of airport codes, city names, and the facility-code schemes
// of the operators whose conventions are documented/confirmed (the paper
// confirmed 7). DNS is both the geolocation baseline CFS is compared
// against (32% coverage in the paper) and one of the validation sources.
#pragma once

#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "topology/topology.h"

namespace cfs {

struct DnsConfig {
  double ixp_lan_named = 0.35;     // IXP publishes PTR for a member port
  double stale_wrong = 0.35;      // Stale-convention name points elsewhere
  double record_missing = 0.25;   // PTR record simply absent (rot)
  // Fraction of FacilityCode operators whose scheme is documented so the
  // parser can decode facility tokens.
  double documented_operator_fraction = 0.5;
  std::uint64_t seed = 29;
};

class DnsNames {
 public:
  DnsNames(const Topology& topo, const DnsConfig& config);

  // PTR record for an interface address; nullopt when none exists.
  [[nodiscard]] std::optional<std::string> ptr(Ipv4 addr) const;

  // --- introspection shared with the parser ---
  [[nodiscard]] const std::string& facility_code(FacilityId facility) const;
  [[nodiscard]] const std::string& metro_code(MetroId metro) const;
  [[nodiscard]] const std::unordered_set<std::string>& documented_zones()
      const {
    return documented_zones_;
  }
  [[nodiscard]] const Topology& topology() const { return topo_; }

 private:
  [[nodiscard]] std::uint64_t mix(Ipv4 addr, std::uint64_t salt) const;

  const Topology& topo_;
  DnsConfig config_;
  std::vector<std::string> facility_codes_;  // per facility
  std::vector<std::string> metro_codes_;     // per metro
  std::unordered_set<std::string> documented_zones_;
};

struct DnsGeoHint {
  enum class Level { None, Metro, Facility };
  Level level = Level::None;
  MetroId metro;        // valid for Metro and Facility
  FacilityId facility;  // valid for Facility
};

class DropParser {
 public:
  explicit DropParser(const DnsNames& names);

  // Geographic hint encoded in a hostname (which may be wrong when the
  // operator's records are stale — the parser reports what the name says).
  [[nodiscard]] DnsGeoHint parse(const std::string& hostname) const;

  // Convenience: PTR lookup + parse.
  [[nodiscard]] DnsGeoHint geolocate(Ipv4 addr) const;

 private:
  const DnsNames& names_;
  std::unordered_map<std::string, MetroId> metro_tokens_;
  std::unordered_map<std::string, MetroId> city_tokens_;
  // facility code -> facility, only for documented operators' codes
  std::unordered_map<std::string, FacilityId> facility_tokens_;
  std::unordered_map<std::string, MetroId> ixp_zones_;
};

}  // namespace cfs
