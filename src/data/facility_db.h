// The assembled AS/IXP-to-facility database (paper Section 3.1).
//
// Bootstraps from PeeringDB, then patches records with the fuller facility
// lists published on NOC websites and IXP websites — reproducing the
// paper's assembly pipeline, including its Figure 2 measurement of what
// the augmentation actually bought. This merged view is the *only*
// facility data the CFS algorithm sees; the ground-truth Topology stays on
// the other side of the validation oracle.
#pragma once

#include "data/peeringdb.h"
#include "data/websites.h"

namespace cfs {

class FacilityDatabase {
 public:
  FacilityDatabase(const Topology& topo, PeeringDb base,
                   const NocWebsiteSource& noc, const IxpWebsiteSource& ixps);

  // Merged views (sorted, set-intersection friendly).
  [[nodiscard]] const std::vector<FacilityId>& facilities_of(Asn asn) const {
    return db_.facilities_of(asn);
  }
  [[nodiscard]] const std::vector<FacilityId>& ixp_facilities(
      IxpId ixp) const {
    return db_.ixp_facilities(ixp);
  }
  [[nodiscard]] bool has_as_record(Asn asn) const {
    return db_.has_as_record(asn);
  }

  // Reverse presence index: IXPs whose merged facility list contains the
  // facility (sorted). Lets link typing ask "which exchanges are reachable
  // from this building?" as one hash lookup instead of scanning every IXP
  // record and intersecting.
  [[nodiscard]] const std::vector<IxpId>& ixps_at(FacilityId facility) const;

  // --- Figure 2: PeeringDB coverage vs NOC-website ground truth ---
  struct Coverage {
    Asn asn;
    std::size_t website_facilities = 0;  // facilities on the NOC website
    std::size_t peeringdb_facilities = 0;  // of those, how many PeeringDB had
  };
  // One entry per AS with a NOC website, sorted by website_facilities desc.
  [[nodiscard]] const std::vector<Coverage>& coverage_report() const {
    return coverage_;
  }
  // Aggregates the paper quotes: links missing from PeeringDB, ASes
  // affected, ASes with no PeeringDB facilities at all.
  struct CoverageTotals {
    std::size_t checked_ases = 0;
    std::size_t missing_links = 0;
    std::size_t ases_with_missing = 0;
    std::size_t ases_without_any_record = 0;
  };
  [[nodiscard]] CoverageTotals coverage_totals() const;

  // --- Figure 8: degrade the database by dropping facilities ---
  std::size_t remove_facility(FacilityId facility) {
    // The facility vanishes from every AS and IXP record, so its presence
    // index entry empties out with it; other entries are untouched.
    ixps_at_.erase(facility.value);
    return db_.remove_facility(facility);
  }

  [[nodiscard]] std::size_t ixp_records_patched() const {
    return ixp_patched_;
  }

  // --- fault plane: snapshot-time data-source degradation ---
  // Withholds links from the *merged* records (this is what CFS reads, so
  // degrading after augmentation models a stale snapshot of the assembled
  // database, not just of PeeringDB) and rebuilds the presence index.
  // Returns the number of links withheld; cumulative count via
  // records_withheld().
  std::size_t withhold(const Topology& topo, const FaultPlane& plane,
                       double fraction);
  [[nodiscard]] std::size_t records_withheld() const { return withheld_; }

 private:
  PeeringDb db_;
  std::vector<Coverage> coverage_;
  std::size_t ixp_patched_ = 0;
  std::size_t withheld_ = 0;
  std::unordered_map<std::uint32_t, std::vector<IxpId>> ixps_at_;
  static const std::vector<IxpId> no_ixps_;
};

}  // namespace cfs
