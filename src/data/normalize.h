// City-name normalisation (paper Section 3.1.1).
//
// PeeringDB-style records carry free-form city strings ("Jersey City",
// "Secaucus", "Slough"); the paper folds any two cities closer than five
// miles into one metropolitan area by geocoding postcodes. Our normaliser
// resolves a raw string against the metro catalog's alias lists first and
// falls back to coordinate proximity.
#pragma once

#include <optional>
#include <string>
#include <unordered_map>

#include "topology/topology.h"

namespace cfs {

class CityNormalizer {
 public:
  explicit CityNormalizer(const Topology& topo);

  // Metro for a raw city string, optionally disambiguated by coordinates.
  [[nodiscard]] std::optional<MetroId> normalize(
      const std::string& raw_city,
      const std::optional<GeoPoint>& location = std::nullopt) const;

  // Nearest metro within the merge radius of the location.
  [[nodiscard]] std::optional<MetroId> by_location(
      const GeoPoint& location) const;

 private:
  const Topology& topo_;
  std::unordered_map<std::string, MetroId> by_name_;  // lower-cased
};

}  // namespace cfs
