// PeeringDB emulation: the volunteer-maintained, incomplete public view of
// AS-to-facility and IXP-to-facility association that CFS bootstraps from.
//
// Incompleteness is a first-class, configurable property: whole AS records
// may be missing, individual AS-facility links dropped, IXP-facility
// associations absent (the paper's JPNAP example), and the occasional stale
// link pointing at a facility the AS has already left. Figure 2 quantifies
// the AS-side gaps against NOC websites; Figure 8 measures how CFS degrades
// as records are removed.
#pragma once

#include <span>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "net/faults.h"
#include "topology/topology.h"
#include "util/rng.h"

namespace cfs {

struct PeeringDbConfig {
  double as_record_missing = 0.08;    // AS absent from the DB entirely
  double fac_link_missing = 0.22;     // each AS-facility link dropped
  double ixp_record_missing = 0.05;   // IXP absent entirely
  double ixp_fac_link_missing = 0.18; // each IXP-facility link dropped
  double stale_link = 0.02;           // AS-facility link that is wrong
  std::uint64_t seed = 17;
};

class PeeringDb {
 public:
  PeeringDb(const Topology& topo, const PeeringDbConfig& config);

  // --- the view CFS queries (sorted vectors, set-intersection friendly) ---
  [[nodiscard]] const std::vector<FacilityId>& facilities_of(Asn asn) const;
  [[nodiscard]] const std::vector<FacilityId>& ixp_facilities(IxpId ixp) const;
  [[nodiscard]] bool has_as_record(Asn asn) const;
  [[nodiscard]] bool has_ixp_record(IxpId ixp) const;

  // --- augmentation from NOC / IXP websites (paper Section 3.1) ---
  void augment_as(Asn asn, std::span<const FacilityId> facilities);
  void augment_ixp(IxpId ixp, std::span<const FacilityId> facilities);

  // --- mutation for the Figure 8 robustness sweep ---
  // Removes a facility from every AS and IXP record; returns how many
  // records were touched.
  std::size_t remove_facility(FacilityId facility);

  // --- snapshot-time degradation for the fault plane ---
  // Withholds each AS-facility and IXP-facility link independently with the
  // given probability, decided by the plane's per-record hash (so the same
  // seed withholds the same links regardless of iteration order). Returns
  // how many links were dropped.
  std::size_t withhold_links(const FaultPlane& plane, double fraction);

  // --- census helpers ---
  [[nodiscard]] std::size_t as_records() const { return as_facilities_.size(); }
  [[nodiscard]] std::size_t total_as_facility_links() const;

 private:
  std::unordered_map<std::uint32_t, std::vector<FacilityId>> as_facilities_;
  std::unordered_map<std::uint32_t, std::vector<FacilityId>> ixp_facilities_;
  static const std::vector<FacilityId> empty_;
};

}  // namespace cfs
