// Team-Cymru-style IP-to-ASN mapping service.
//
// Longest-prefix match over the public BGP announcements. Correct for most
// addresses, but point-to-point subnets are numbered out of one endpoint's
// space, so the far side's interface maps to the wrong AS — the error mode
// the paper works around with alias-resolution majority voting (Section
// 4.1). The service also supports the IXP peering-LAN lookup used by CFS
// Step 1 to classify public peering hops.
#pragma once

#include <optional>

#include "net/prefix_trie.h"
#include "topology/topology.h"

namespace cfs {

class IpToAsnService {
 public:
  explicit IpToAsnService(const Topology& topo);

  // Longest-prefix ASN for the address; nullopt for unannounced space
  // (IXP peering LANs are intentionally not announced in BGP).
  [[nodiscard]] std::optional<Asn> lookup(Ipv4 addr) const;

  // The matched prefix itself (diagnostics / tests).
  [[nodiscard]] std::optional<Prefix> matched_prefix(Ipv4 addr) const;

  // IXP whose peering LAN contains the address, per the assembled IXP
  // dataset (Section 3.1.2).
  [[nodiscard]] std::optional<IxpId> ixp_of(Ipv4 addr) const;

 private:
  const Topology& topo_;
};

}  // namespace cfs
