// Greedy scenario shrinker.
//
// When an oracle rejects a sampled scenario, the raw repro is noisy: a
// seven-knob fault plan over a 40-AS world at 8 threads. The shrinker
// walks a fixed reduction schedule (halve each scale knob toward its
// floor, zero each fault dimension, drop the thread count) and keeps any
// reduction under which the same oracle still fails, iterating to a local
// minimum: a scenario where no single scheduled reduction reproduces the
// failure. Minimal repros are what get committed to `corpus/` and what a
// human actually debugs (docs/TESTING.md).
#pragma once

#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "fuzz/oracles.h"
#include "fuzz/scenario.h"

namespace cfs {

struct ShrinkOptions {
  // Upper bound on full passes over the schedule (safety net; greedy
  // halving converges in far fewer).
  int max_passes = 64;
  // Wall-clock budget for the whole shrink; 0 = unlimited. On expiry the
  // current (still failing) scenario is returned with at_fixpoint false.
  double budget_sec = 120.0;
};

struct ShrinkResult {
  Scenario minimal;          // still fails the oracle
  std::size_t attempts = 0;  // candidate scenarios evaluated
  std::size_t accepted = 0;  // reductions that preserved the failure
  // True when a full pass produced no accepted reduction: no single
  // scheduled reduction still reproduces, i.e. a local minimum.
  bool at_fixpoint = false;
};

// One reduction dimension: mutates the scenario one step toward its
// floor, returning false when already there (a no-op).
using ShrinkStep = std::pair<std::string, std::function<bool(Scenario&)>>;

// The reduction schedule, in application order. Exposed so the shrinker
// test can assert minimality: every step applied to a shrunk scenario is
// either a no-op or un-reproduces the failure.
[[nodiscard]] const std::vector<ShrinkStep>& shrink_steps();

// Greedily minimises `failing` under "oracle still fails" (matched by
// oracle name, not message — a shrunk repro may word the divergence
// differently). Precondition: the oracle fails on `failing`.
[[nodiscard]] ShrinkResult shrink_scenario(const Scenario& failing,
                                           const Oracle& oracle,
                                           const ShrinkOptions& options = {});

}  // namespace cfs
