#include "fuzz/scenario.h"

#include <sstream>
#include <stdexcept>

namespace cfs {

PipelineConfig Scenario::pipeline_config() const {
  PipelineConfig config = PipelineConfig::tiny();
  config.seed = seed;
  // Same derivation the CLI uses for --seed, so a scenario seed and a CLI
  // seed mean the same world.
  config.generator.seed = seed * 977 + 3;

  config.generator.metros = metros;
  config.generator.facility_density = facility_density;
  config.generator.tier1_count = tier1;
  config.generator.transit_count = transit;
  config.generator.content_count = content;
  config.generator.eyeball_count = eyeball;
  config.generator.enterprise_count = enterprise;
  config.generator.max_ixp_span = max_ixp_span;

  config.cfs.max_iterations = max_iterations;
  config.cfs.followup_interfaces = followup_interfaces;

  config.faults.lg_outage_fraction = lg_outage;
  config.faults.vp_churn_fraction = vp_churn;
  config.faults.probe_timeout_rate = probe_timeout;
  config.faults.lg_ban_burst = lg_ban_burst;
  config.faults.peeringdb_withheld = pdb_withheld;
  config.faults.dns_withheld = dns_withheld;
  config.faults.geoip_withheld = geoip_withheld;
  config.faults.seed = fault_seed;

  config.threads = 1;  // serial reference; oracles override per arm
  return config;
}

std::string Scenario::summary() const {
  std::ostringstream os;
  os << "seed=" << seed << " metros=" << metros << " ases=" << tier1 << "/"
     << transit << "/" << content << "/" << eyeball << "/" << enterprise
     << " targets=" << content_targets << "c+" << transit_targets << "t"
     << " vp=" << vp_fraction << " iters=" << max_iterations
     << " followups=" << followup_interfaces << " threads=" << threads;
  if (any_faults())
    os << " faults[outage=" << lg_outage << " churn=" << vp_churn
       << " timeout=" << probe_timeout << " ban=" << lg_ban_burst
       << " withheld=" << pdb_withheld << "/" << dns_withheld << "/"
       << geoip_withheld << " fseed=" << fault_seed << "]";
  if (!expected_export_fnv1a.empty())
    os << " golden=" << expected_export_fnv1a;
  return os.str();
}

JsonValue Scenario::to_json() const {
  JsonValue::Object o;
  o.emplace("seed", seed);
  o.emplace("metros", metros);
  o.emplace("facility_density", facility_density);
  o.emplace("tier1", tier1);
  o.emplace("transit", transit);
  o.emplace("content", content);
  o.emplace("eyeball", eyeball);
  o.emplace("enterprise", enterprise);
  o.emplace("max_ixp_span", max_ixp_span);
  o.emplace("content_targets", content_targets);
  o.emplace("transit_targets", transit_targets);
  o.emplace("vp_fraction", vp_fraction);
  o.emplace("max_iterations", max_iterations);
  o.emplace("followup_interfaces", followup_interfaces);
  o.emplace("threads", threads);
  o.emplace("lg_outage", lg_outage);
  o.emplace("vp_churn", vp_churn);
  o.emplace("probe_timeout", probe_timeout);
  o.emplace("lg_ban_burst", lg_ban_burst);
  o.emplace("pdb_withheld", pdb_withheld);
  o.emplace("dns_withheld", dns_withheld);
  o.emplace("geoip_withheld", geoip_withheld);
  o.emplace("fault_seed", fault_seed);
  // Serialised only when stamped: hand-written corpus entries stay
  // minimal, and an absent key round-trips to the empty default.
  if (!expected_export_fnv1a.empty())
    o.emplace("expected_export_fnv1a", expected_export_fnv1a);
  return JsonValue(std::move(o));
}

Scenario Scenario::from_json(const JsonValue& doc) {
  if (!doc.is_object())
    throw std::runtime_error("scenario document must be a JSON object");
  Scenario s;
  const auto get_int = [&](const char* key, auto& field) {
    if (const JsonValue* v = doc.find(key))
      field = static_cast<std::remove_reference_t<decltype(field)>>(
          v->as_int());
  };
  const auto get_double = [&](const char* key, double& field) {
    if (const JsonValue* v = doc.find(key)) field = v->as_number();
  };
  get_int("seed", s.seed);
  get_int("metros", s.metros);
  get_double("facility_density", s.facility_density);
  get_int("tier1", s.tier1);
  get_int("transit", s.transit);
  get_int("content", s.content);
  get_int("eyeball", s.eyeball);
  get_int("enterprise", s.enterprise);
  get_int("max_ixp_span", s.max_ixp_span);
  get_int("content_targets", s.content_targets);
  get_int("transit_targets", s.transit_targets);
  get_double("vp_fraction", s.vp_fraction);
  get_int("max_iterations", s.max_iterations);
  get_int("followup_interfaces", s.followup_interfaces);
  get_int("threads", s.threads);
  get_double("lg_outage", s.lg_outage);
  get_double("vp_churn", s.vp_churn);
  get_double("probe_timeout", s.probe_timeout);
  get_int("lg_ban_burst", s.lg_ban_burst);
  get_double("pdb_withheld", s.pdb_withheld);
  get_double("dns_withheld", s.dns_withheld);
  get_double("geoip_withheld", s.geoip_withheld);
  get_int("fault_seed", s.fault_seed);
  if (const JsonValue* v = doc.find("expected_export_fnv1a"))
    s.expected_export_fnv1a = v->as_string();
  return s;
}

Scenario sample_scenario(Rng& rng) {
  Scenario s;
  // Seeds stay below 2^32: JSON numbers are doubles, and a full 64-bit
  // seed would lose low bits through the corpus round-trip.
  s.seed = rng.uniform(std::uint64_t{1} << 32);

  s.metros = static_cast<int>(
      rng.uniform_in(ScenarioFloors::metros, 8));
  s.facility_density = rng.uniform_real(ScenarioFloors::facility_density, 1.0);
  s.tier1 = static_cast<int>(rng.uniform_in(ScenarioFloors::tier1, 4));
  s.transit = static_cast<int>(rng.uniform_in(ScenarioFloors::transit, 10));
  s.content = static_cast<int>(rng.uniform_in(ScenarioFloors::content, 6));
  s.eyeball = static_cast<int>(rng.uniform_in(ScenarioFloors::eyeball, 24));
  s.enterprise =
      static_cast<int>(rng.uniform_in(ScenarioFloors::enterprise, 14));
  s.max_ixp_span =
      static_cast<int>(rng.uniform_in(ScenarioFloors::max_ixp_span, 8));

  s.content_targets =
      static_cast<int>(rng.uniform_in(ScenarioFloors::content_targets, 3));
  s.transit_targets =
      static_cast<int>(rng.uniform_in(ScenarioFloors::transit_targets, 3));
  s.vp_fraction = rng.uniform_real(ScenarioFloors::vp_fraction, 0.8);

  s.max_iterations =
      static_cast<int>(rng.uniform_in(ScenarioFloors::max_iterations, 6));
  s.followup_interfaces = static_cast<int>(
      rng.uniform_in(ScenarioFloors::followup_interfaces, 24));

  static constexpr int thread_choices[] = {2, 3, 4, 8};
  s.threads = thread_choices[rng.index(4)];

  // Half the trials run against a degraded measurement plane; each fault
  // dimension then switches on independently so single-fault and
  // combined-fault interactions both get coverage.
  if (rng.chance(0.5)) {
    if (rng.chance(0.5)) s.lg_outage = rng.uniform_real(0.05, 0.6);
    if (rng.chance(0.4)) s.vp_churn = rng.uniform_real(0.05, 0.3);
    if (rng.chance(0.4)) s.probe_timeout = rng.uniform_real(0.02, 0.15);
    if (rng.chance(0.3))
      s.lg_ban_burst = static_cast<int>(rng.uniform_in(2, 5));
    if (rng.chance(0.3)) s.pdb_withheld = rng.uniform_real(0.05, 0.3);
    if (rng.chance(0.3)) s.dns_withheld = rng.uniform_real(0.05, 0.3);
    if (rng.chance(0.3)) s.geoip_withheld = rng.uniform_real(0.05, 0.3);
    s.fault_seed = rng.uniform(1 << 16);
  }
  return s;
}

}  // namespace cfs
