#include "fuzz/shrink.h"

#include "core/metrics.h"

namespace cfs {
namespace {

// Integer halving toward a floor: strictly decreasing, so every dimension
// reaches its floor in O(log range) accepted steps.
bool halve_toward(int& value, int floor) {
  if (value <= floor) return false;
  value = floor + (value - floor) / 2;
  return true;
}

// Double halving toward a floor, snapping once the remaining distance is
// negligible (keeps the schedule finite).
bool halve_toward(double& value, double floor) {
  constexpr double epsilon = 0.01;
  if (value <= floor + epsilon) {
    if (value == floor) return false;
    value = floor;
    return true;
  }
  value = floor + (value - floor) / 2;
  return true;
}

bool zero_out(double& value) {
  if (value == 0.0) return false;
  value = 0.0;
  return true;
}

bool zero_out(int& value) {
  if (value == 0) return false;
  value = 0;
  return true;
}

bool zero_out(std::uint64_t& value) {
  if (value == 0) return false;
  value = 0;
  return true;
}

}  // namespace

const std::vector<ShrinkStep>& shrink_steps() {
  using F = ScenarioFloors;
  static const std::vector<ShrinkStep> steps = {
      // Topology scale first: fewer entities shrinks everything downstream
      // (traces, observations, constraint passes) at once.
      {"eyeball", [](Scenario& s) { return halve_toward(s.eyeball, F::eyeball); }},
      {"enterprise",
       [](Scenario& s) { return halve_toward(s.enterprise, F::enterprise); }},
      {"transit", [](Scenario& s) { return halve_toward(s.transit, F::transit); }},
      {"content", [](Scenario& s) { return halve_toward(s.content, F::content); }},
      {"tier1", [](Scenario& s) { return halve_toward(s.tier1, F::tier1); }},
      {"metros", [](Scenario& s) { return halve_toward(s.metros, F::metros); }},
      {"facility_density",
       [](Scenario& s) {
         return halve_toward(s.facility_density, F::facility_density);
       }},
      {"max_ixp_span",
       [](Scenario& s) { return halve_toward(s.max_ixp_span, F::max_ixp_span); }},
      // Campaign shape.
      {"content_targets",
       [](Scenario& s) {
         return halve_toward(s.content_targets, F::content_targets);
       }},
      {"transit_targets",
       [](Scenario& s) {
         return halve_toward(s.transit_targets, F::transit_targets);
       }},
      {"vp_fraction",
       [](Scenario& s) { return halve_toward(s.vp_fraction, F::vp_fraction); }},
      // CFS budget.
      {"max_iterations",
       [](Scenario& s) {
         return halve_toward(s.max_iterations, F::max_iterations);
       }},
      {"followup_interfaces",
       [](Scenario& s) {
         return halve_toward(s.followup_interfaces, F::followup_interfaces);
       }},
      // Fault plan: each dimension zeroed independently — a one-fault repro
      // names the interaction — then halved if zeroing un-reproduces.
      {"lg_outage=0", [](Scenario& s) { return zero_out(s.lg_outage); }},
      {"vp_churn=0", [](Scenario& s) { return zero_out(s.vp_churn); }},
      {"probe_timeout=0",
       [](Scenario& s) { return zero_out(s.probe_timeout); }},
      {"lg_ban_burst=0",
       [](Scenario& s) { return zero_out(s.lg_ban_burst); }},
      {"pdb_withheld=0",
       [](Scenario& s) { return zero_out(s.pdb_withheld); }},
      {"dns_withheld=0",
       [](Scenario& s) { return zero_out(s.dns_withheld); }},
      {"geoip_withheld=0",
       [](Scenario& s) { return zero_out(s.geoip_withheld); }},
      {"lg_outage/2", [](Scenario& s) { return halve_toward(s.lg_outage, 0.0); }},
      {"vp_churn/2", [](Scenario& s) { return halve_toward(s.vp_churn, 0.0); }},
      {"probe_timeout/2",
       [](Scenario& s) { return halve_toward(s.probe_timeout, 0.0); }},
      {"fault_seed=0", [](Scenario& s) { return zero_out(s.fault_seed); }},
      // Execution shape last.
      {"threads", [](Scenario& s) { return halve_toward(s.threads, F::threads); }},
  };
  return steps;
}

ShrinkResult shrink_scenario(const Scenario& failing, const Oracle& oracle,
                             const ShrinkOptions& options) {
  ShrinkResult result;
  result.minimal = failing;
  const Stopwatch clock;

  const auto still_fails = [&](const Scenario& candidate) {
    ++result.attempts;
    std::optional<OracleFailure> failure;
    try {
      failure = oracle.run(candidate);
    } catch (const std::exception& error) {
      failure = OracleFailure{oracle.name, error.what()};
    }
    return failure.has_value();
  };

  const auto out_of_budget = [&] {
    return options.budget_sec > 0 &&
           clock.elapsed_ms() > options.budget_sec * 1000.0;
  };

  for (int pass = 0; pass < options.max_passes; ++pass) {
    bool accepted_any = false;
    for (const auto& [name, step] : shrink_steps()) {
      // Drive each dimension to its own fixpoint before moving on:
      // halving is only cheap if the re-runs it buys are on the already
      // smaller scenario.
      for (;;) {
        if (out_of_budget()) return result;
        Scenario candidate = result.minimal;
        if (!step(candidate)) break;  // dimension at its floor
        // A mutated scenario no longer matches its stamped export golden;
        // keeping the hash would make layout_equivalence reject every
        // shrink candidate for the wrong reason.
        candidate.expected_export_fnv1a.clear();
        if (!still_fails(candidate)) break;
        result.minimal = candidate;
        ++result.accepted;
        accepted_any = true;
      }
    }
    if (!accepted_any) {
      result.at_fixpoint = true;
      return result;
    }
  }
  return result;
}

}  // namespace cfs
