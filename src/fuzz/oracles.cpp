#include "fuzz/oracles.h"

#include <unistd.h>

#include <algorithm>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <unordered_map>

#include "analysis/diff.h"
#include "io/export.h"
#include "serve/chaos.h"
#include "serve/client.h"
#include "serve/handlers.h"
#include "serve/server.h"
#include "util/strings.h"

namespace cfs {
namespace {

// One arm of a differential pair: full pipeline at the given thread count
// and engine, traces from the scenario's campaign shape.
CfsReport run_arm(const Scenario& s, int threads, bool incremental) {
  PipelineConfig config = s.pipeline_config();
  config.threads = threads;
  config.cfs.incremental = incremental;
  Pipeline pipeline(config);
  auto traces = pipeline.initial_campaign(
      pipeline.default_targets(s.content_targets, s.transit_targets),
      s.vp_fraction);
  return pipeline.run_cfs(std::move(traces));
}

std::optional<OracleFailure> fail(const std::string& oracle,
                                  std::string message) {
  return OracleFailure{oracle, std::move(message)};
}

// Summarises a non-empty diff as "first divergent path + totals".
std::string diff_message(const char* what, const JsonDiff& diff) {
  std::ostringstream os;
  os << what << " diverge at " << diff.first_path() << " ("
     << diff.entries.front().left << " -> " << diff.entries.front().right
     << "; " << diff.total << " difference(s) total)";
  return os.str();
}

// Engine-equivalence form: metrics cut (wall clock), and per-interface
// `conflicts` cut — the full engine re-counts the same conflicting
// observation every sweep while the incremental engine visits it once, so
// the tally is engine-specific by design (tests/core/incremental_test.cpp).
JsonValue engine_equivalence_json(const CfsReport& report) {
  JsonValue json = equivalence_json(report);
  for (JsonValue& iface : json.as_object().at("interfaces").as_array())
    iface.as_object().erase("conflicts");
  return json;
}

// --- oracle: serial vs parallel ---
std::optional<OracleFailure> check_parallel(const Scenario& s) {
  const CfsReport reference = run_arm(s, 1, true);
  const CfsReport parallel = run_arm(s, s.threads, true);

  const JsonDiff report_diff =
      diff_json(equivalence_json(reference), equivalence_json(parallel));
  if (!report_diff.empty())
    return fail("parallel", diff_message("reports (threads 1 vs k)",
                                         report_diff));

  const JsonDiff counter_diff = diff_json(counters_json(reference.metrics),
                                          counters_json(parallel.metrics));
  if (!counter_diff.empty())
    return fail("parallel",
                diff_message("metrics counters (threads 1 vs k)",
                             counter_diff));
  return std::nullopt;
}

// --- oracle: incremental vs from-scratch ---
std::optional<OracleFailure> check_incremental(const Scenario& s) {
  const CfsReport incremental = run_arm(s, 1, true);
  const CfsReport scratch = run_arm(s, 1, false);
  const JsonDiff diff = diff_json(engine_equivalence_json(incremental),
                                  engine_equivalence_json(scratch));
  if (!diff.empty())
    return fail("incremental",
                diff_message("reports (incremental vs scratch)", diff));
  return std::nullopt;
}

// --- oracle: export round-trip fixpoint ---
std::optional<OracleFailure> check_roundtrip(const Scenario& s) {
  // Topology: canonical from the first pass.
  const Topology topo = generate_topology(s.pipeline_config().generator);
  const std::string t1 = topology_to_json(topo).pretty();
  const std::string t2 =
      topology_to_json(topology_from_json(parse_json(t1))).pretty();
  if (t1 != t2) {
    const JsonDiff diff = diff_json(parse_json(t1), parse_json(t2));
    return fail("roundtrip", diff_message("topology to_json . from_json",
                                          diff));
  }

  // Report, produced by the parallel arm so round-trip also covers
  // pool-built reports: to_json . from_json must be the identity on the
  // serialised form from the very first pass (export is canonical).
  const CfsReport report = run_arm(s, s.threads, true);
  const std::string r1 = report_to_json(report).pretty();
  const std::string r2 =
      report_to_json(report_from_json(parse_json(r1))).pretty();
  if (r1 != r2) {
    const JsonDiff diff = diff_json(parse_json(r1), parse_json(r2));
    return fail("roundtrip",
                diff_message("report to_json . from_json", diff));
  }
  // Second pass: the fixpoint must hold for every further iteration.
  const std::string r3 =
      report_to_json(report_from_json(parse_json(r2))).pretty();
  if (r2 != r3) {
    const JsonDiff diff = diff_json(parse_json(r2), parse_json(r3));
    return fail("roundtrip",
                diff_message("report second-pass fixpoint", diff));
  }
  return std::nullopt;
}

// --- oracle: fault-plan replay determinism ---
std::optional<OracleFailure> check_replay(const Scenario& s) {
  const CfsReport first = run_arm(s, s.threads, true);
  const CfsReport second = run_arm(s, s.threads, true);
  const JsonDiff report_diff =
      diff_json(equivalence_json(first), equivalence_json(second));
  if (!report_diff.empty())
    return fail("replay", diff_message("repeated runs", report_diff));
  const JsonDiff counter_diff = diff_json(counters_json(first.metrics),
                                          counters_json(second.metrics));
  if (!counter_diff.empty())
    return fail("replay",
                diff_message("repeated-run metrics counters", counter_diff));
  return std::nullopt;
}

// --- oracle: memory-layout refactor golden ---
//
// The dense-handle/SoA core must be observationally invisible: the
// canonical export (equivalence form) has to stay byte-identical to what
// the pre-refactor engine produced. Three layers of teeth, cheapest
// first: export-level layout invariants (canonical interface order,
// sorted duplicate-free candidate sets — exactly the properties an
// arena-span or interner bug would corrupt first), serial-vs-threaded
// byte equality of the export itself, and — when the scenario carries a
// stamped `expected_export_fnv1a` — a hash comparison against the golden
// captured before the refactor (`cfs_fuzz --stamp-golden`).
std::optional<OracleFailure> check_layout_equivalence(const Scenario& s) {
  const char* name = "layout_equivalence";
  const CfsReport serial = run_arm(s, 1, true);
  const JsonValue serial_json = equivalence_json(serial);
  const std::string serial_bytes = serial_json.pretty();

  // Export-level layout invariants.
  std::uint64_t prev_addr = 0;
  bool first = true;
  for (const JsonValue& iface :
       serial_json.as_object().at("interfaces").as_array()) {
    const std::string& addr = iface.at("address").as_string();
    const auto parsed = Ipv4::parse(addr);
    if (!parsed)
      return fail(name, "export interface address '" + addr +
                            "' does not parse back to an Ipv4");
    if (!first && parsed->value() <= prev_addr)
      return fail(name, "export interfaces not in strictly increasing "
                        "address order at " + addr);
    first = false;
    prev_addr = parsed->value();

    const auto& cands = iface.at("candidates").as_array();
    for (std::size_t i = 1; i < cands.size(); ++i)
      if (cands[i].as_int() <= cands[i - 1].as_int())
        return fail(name, "interface " + addr +
                              ": exported candidate set not sorted/unique");
  }

  // The threaded arm must export the same bytes (the parallel oracle
  // compares JSON trees; this one insists on the serialised form, which
  // is what the golden hash is taken over).
  const CfsReport threaded = run_arm(s, s.threads, true);
  if (equivalence_json(threaded).pretty() != serial_bytes) {
    const JsonDiff diff =
        diff_json(serial_json, equivalence_json(threaded));
    return fail(name, diff_message(
                          "canonical export bytes (threads 1 vs k)", diff));
  }

  if (!s.expected_export_fnv1a.empty()) {
    const std::string actual = hex64(fnv1a64(serial_bytes));
    if (actual != s.expected_export_fnv1a)
      return fail(name,
                  "canonical export hash " + actual +
                      " != stamped golden " + s.expected_export_fnv1a +
                      " — the report drifted from the pre-refactor bytes "
                      "(re-stamp only if the change is intentional: "
                      "cfs_fuzz --stamp-golden)");
  }
  return std::nullopt;
}

// --- oracle: structural / paper-grounded invariants ---
std::optional<OracleFailure> check_invariants(const Scenario& s) {
  const CfsReport report = run_arm(s, s.threads, true);
  const char* name = "invariants";

  for (const auto& [addr, inf] : report.interfaces) {
    if (inf.has_constraint && inf.candidates.empty())
      return fail(name, "interface " + addr.to_string() +
                            ": constrained to an empty candidate set");
    if (!std::is_sorted(inf.candidates.begin(), inf.candidates.end()))
      return fail(name, "interface " + addr.to_string() +
                            ": candidate set not sorted");
    if (std::adjacent_find(inf.candidates.begin(), inf.candidates.end()) !=
        inf.candidates.end())
      return fail(name, "interface " + addr.to_string() +
                            ": duplicate facility in candidate set");
    if (inf.resolved_iteration >= 0 && !inf.resolved())
      return fail(name, "interface " + addr.to_string() +
                            ": resolved_iteration set but |candidates| != 1");
  }

  // Every inferred facility must lie inside its interface's constraint
  // set (Section 4: CFS only ever narrows; the final link pass must not
  // invent a facility the constraints exclude).
  for (std::size_t i = 0; i < report.links.size(); ++i) {
    const LinkInference& link = report.links[i];
    const auto in_candidates = [&](Ipv4 addr, FacilityId fac) {
      const InterfaceInference* inf = report.find(addr);
      if (inf == nullptr || !inf->has_constraint) return true;  // no claim
      return std::binary_search(inf->candidates.begin(),
                                inf->candidates.end(), fac);
    };
    if (link.near_facility &&
        !in_candidates(link.obs.near_addr, *link.near_facility))
      return fail(name, "links/" + std::to_string(i) +
                            ": near facility outside the near interface's "
                            "candidate set");
    // A proximity-inferred far end is a heuristic guess (Section 4.4) and
    // may legitimately sit outside the far interface's own constraints.
    if (link.far_facility && !link.far_by_proximity &&
        !in_candidates(link.obs.far_addr, *link.far_facility))
      return fail(name, "links/" + std::to_string(i) +
                            ": far facility outside the far interface's "
                            "candidate set");
  }

  // Convergence history: constraints only narrow, so the cumulative
  // resolved count never decreases (Fig. 7 curves are monotone).
  for (std::size_t i = 1; i < report.resolved_per_iteration.size(); ++i)
    if (report.resolved_per_iteration[i] < report.resolved_per_iteration[i - 1])
      return fail(name, "resolved_per_iteration decreases at iteration " +
                            std::to_string(i + 1));
  if (!report.resolved_per_iteration.empty() &&
      report.resolved_per_iteration.back() != report.resolved_interfaces())
    return fail(name,
                "final resolved_per_iteration entry disagrees with the "
                "resolved-interface count");
  if (report.iterations_run != report.metrics.iterations.size())
    return fail(name, "iterations_run != metrics.iterations.size()");

  // Alias sets partition addresses: one router per interface.
  std::unordered_map<Ipv4, std::size_t> seen;
  for (std::size_t i = 0; i < report.aliases.sets.size(); ++i)
    for (const Ipv4 addr : report.aliases.sets[i]) {
      const auto [it, inserted] = seen.emplace(addr, i);
      if (!inserted)
        return fail(name, "address " + addr.to_string() +
                              " appears in alias sets " +
                              std::to_string(it->second) + " and " +
                              std::to_string(i));
    }

  // Measurement-plane accounting (net/faults.h invariant).
  const FaultMetrics& fm = report.metrics.faults;
  if (fm.traces_attempted != fm.traces_kept + fm.traces_unreachable +
                                 fm.probes_abandoned +
                                 fm.probes_skipped_open_circuit)
    return fail(name, "fault-plane attrition accounting does not add up");
  return std::nullopt;
}

// --- oracle: pinned interfaces stay pinned when traces are added ---
std::optional<OracleFailure> check_pinning(const Scenario& s) {
  // Both arms run the monotone core of CFS: no fault plane (withheld-data
  // draws would differ between arms after the extra campaign consumed
  // fault RNG), no alias propagation and no follow-up probing (alias
  // partitions and follow-up choices are evidence-dependent, so arm B's
  // constraint set would not be a superset of arm A's and the narrowing
  // argument below would not hold). What remains is the paper's Step-2
  // per-observation constraining, which is where the monotonicity claim
  // actually lives.
  PipelineConfig config = s.pipeline_config();
  config.faults = FaultPlan{};
  config.cfs.use_alias_constraints = false;
  config.cfs.followup_interfaces = 0;

  // Arm A: the scenario's own campaign.
  Pipeline base(config);
  auto base_traces = base.initial_campaign(
      base.default_targets(s.content_targets, s.transit_targets),
      s.vp_fraction);
  const CfsReport before = base.run_cfs(std::move(base_traces));

  // Arm B: the identical campaign (same pipeline seed, same first draws)
  // plus a second campaign toward a wider target set appended on top.
  Pipeline wider(config);
  auto traces = wider.initial_campaign(
      wider.default_targets(s.content_targets, s.transit_targets),
      s.vp_fraction);
  auto extra = wider.initial_campaign(
      wider.default_targets(s.content_targets + 1, s.transit_targets + 1),
      s.vp_fraction);
  traces.insert(traces.end(), std::make_move_iterator(extra.begin()),
                std::make_move_iterator(extra.end()));
  const CfsReport after = wider.run_cfs(std::move(traces));

  // InterfaceInference::constrain only ever intersects, and a constraint
  // that would empty the set is recorded as a conflict and ignored. For an
  // interface with zero conflicts in both runs the final candidate set is
  // a plain intersection of its constraints; arm B applies a superset of
  // arm A's, so B's set is contained in A's: an interface pinned to F in A
  // must stay pinned to F in B. Conflicted interfaces are excluded —
  // conflict-ignoring is order-sensitive by design (stale data must not
  // erase good constraints), as is an interface whose ASN attribution or
  // remote verdict moved with the extra evidence (different initial set).
  for (const auto& [addr, inf] : before.interfaces) {
    if (!inf.resolved() || inf.conflicts != 0) continue;
    const InterfaceInference* now = after.find(addr);
    if (now == nullptr || now->conflicts != 0 || now->asn != inf.asn ||
        now->remote_suspect != inf.remote_suspect)
      continue;
    if (!now->resolved())
      return fail("pinning",
                  "interface " + addr.to_string() +
                      " was pinned without conflicts but un-pinned after "
                      "adding traces (|candidates| now " +
                      std::to_string(now->candidates.size()) + ")");
    if (now->facility() != inf.facility())
      return fail("pinning", "interface " + addr.to_string() +
                                 " moved facility after adding traces "
                                 "despite zero conflicts");
  }
  return std::nullopt;
}

// --- oracle: serve transport vs batch export ---
//
// The resident daemon must be transparent: whatever abuse the transport
// schedule inflicts — torn frames, dribbled bytes, disconnects, stalls —
// every request that is actually answered (not shed) returns the exact
// bytes the batch export would have produced for the same world. The
// daemon is live, the clients are real sockets, the schedule is a pure
// hash of the scenario seed, so a failure replays exactly.
std::optional<OracleFailure> check_serve_transport(const Scenario& s) {
  const CfsReport report = run_arm(s, s.threads, true);
  const auto state =
      ServeState::from_report(report, "pipeline", 0);

  std::vector<ChaosExpectation> lookups;
  for (const JsonValue& entry :
       state->report_json.at("interfaces").as_array())
    lookups.push_back({entry.at("address").as_string(), entry.dump()});
  if (lookups.empty()) return std::nullopt;  // nothing observable to query
  lookups.push_back({"203.0.113.250", "absent"});

  ServeOptions options;
  options.socket_path = "/tmp/cfs_fuzz_serve_" + std::to_string(::getpid()) +
                        "_" + std::to_string(s.seed) + ".sock";
  options.threads = s.threads;
  options.install_signal_handlers = false;
  Server server(options, state);
  std::thread daemon([&server] { (void)server.run(); });
  const auto stop_daemon = [&] {
    server.request_shutdown();
    daemon.join();
  };
  for (int attempt = 0;; ++attempt) {
    try {
      ServeClient probe;
      probe.connect(server.socket_path());
      break;
    } catch (const std::exception&) {
      if (attempt > 400) {
        stop_daemon();
        return fail("serve_transport", "daemon never came up on " +
                                           options.socket_path);
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }

  ChaosConfig config;
  config.socket_path = server.socket_path();
  config.seed = s.seed ^ s.fault_seed ^ 0x5e47e5ULL;
  config.clients = std::min(s.threads + 2, 6);
  config.requests_per_client = 40;
  config.plan.byte_write_fraction = 0.2;
  config.plan.torn_frame_fraction = 0.15;
  config.plan.disconnect_fraction = 0.1;
  config.plan.stall_fraction = 0.05;
  config.plan.stall_ms = 2.0;
  config.plan.read_stall_fraction = 0.05;

  const ChaosStats stats = run_chaos_clients(config, lookups);
  stop_daemon();

  if (stats.desyncs > 0)
    return fail("serve_transport",
                std::to_string(stats.desyncs) +
                    " answered request(s) diverged from the batch export "
                    "under transport chaos (" +
                    std::to_string(stats.attempted) + " attempted, " +
                    std::to_string(stats.ok) + " validated)");
  if (stats.transport_errors > 0)
    return fail("serve_transport",
                std::to_string(stats.transport_errors) +
                    " request(s) wedged the transport (timeout/desync "
                    "reading a live daemon)");
  if (stats.ok == 0)
    return fail("serve_transport",
                "no request was ever validated against the export (" +
                    std::to_string(stats.attempted) + " attempted)");
  return std::nullopt;
}

}  // namespace

CfsReport run_reference_arm(const Scenario& scenario) {
  return run_arm(scenario, 1, true);
}

JsonValue equivalence_json(const CfsReport& report) {
  JsonValue json = report_to_json(report);
  json.as_object().erase("metrics");  // wall clock legitimately differs
  return json;
}

JsonValue counters_json(const CfsMetrics& m) {
  // Every deterministic counter the parallel-equivalence suite compares,
  // and none of the timings. `threads` is deliberately absent: it is the
  // one field that legitimately differs between equivalent arms.
  JsonValue::Object o;
  o.emplace("incremental", m.incremental);
  o.emplace("initial_traces", static_cast<std::uint64_t>(m.initial_traces));
  o.emplace("initial_observations",
            static_cast<std::uint64_t>(m.initial_observations));
  o.emplace("alias_refreshes", static_cast<std::uint64_t>(m.alias_refreshes));
  o.emplace("reclassified_traces",
            static_cast<std::uint64_t>(m.reclassified_traces));
  o.emplace("reclassified_observations",
            static_cast<std::uint64_t>(m.reclassified_observations));
  o.emplace("replayed_observations",
            static_cast<std::uint64_t>(m.replayed_observations));

  JsonValue::Object faults;
  faults.emplace("traces_attempted",
                 static_cast<std::uint64_t>(m.faults.traces_attempted));
  faults.emplace("traces_kept",
                 static_cast<std::uint64_t>(m.faults.traces_kept));
  faults.emplace("traces_unreachable",
                 static_cast<std::uint64_t>(m.faults.traces_unreachable));
  faults.emplace("retries", static_cast<std::uint64_t>(m.faults.retries));
  faults.emplace("failovers", static_cast<std::uint64_t>(m.faults.failovers));
  faults.emplace("circuits_opened",
                 static_cast<std::uint64_t>(m.faults.circuits_opened));
  faults.emplace("probes_abandoned",
                 static_cast<std::uint64_t>(m.faults.probes_abandoned));
  faults.emplace(
      "probes_skipped_open_circuit",
      static_cast<std::uint64_t>(m.faults.probes_skipped_open_circuit));
  faults.emplace("probe_timeouts",
                 static_cast<std::uint64_t>(m.faults.probe_timeouts));
  faults.emplace("lg_bans", static_cast<std::uint64_t>(m.faults.lg_bans));
  faults.emplace("records_withheld",
                 static_cast<std::uint64_t>(m.faults.records_withheld));
  o.emplace("faults", std::move(faults));

  JsonValue::Array iterations;
  for (const IterationMetrics& r : m.iterations) {
    JsonValue::Object row;
    row.emplace("iteration", static_cast<std::uint64_t>(r.iteration));
    row.emplace("alias_refreshed", r.alias_refreshed);
    row.emplace("observations", static_cast<std::uint64_t>(r.observations));
    row.emplace("interfaces", static_cast<std::uint64_t>(r.interfaces));
    row.emplace("resolved", static_cast<std::uint64_t>(r.resolved));
    row.emplace("classified_observations",
                static_cast<std::uint64_t>(r.classified_observations));
    row.emplace("reclassified_traces",
                static_cast<std::uint64_t>(r.reclassified_traces));
    row.emplace("replayed_observations",
                static_cast<std::uint64_t>(r.replayed_observations));
    row.emplace("dirty_observations",
                static_cast<std::uint64_t>(r.dirty_observations));
    row.emplace("constrained_observations",
                static_cast<std::uint64_t>(r.constrained_observations));
    row.emplace("alias_sets_processed",
                static_cast<std::uint64_t>(r.alias_sets_processed));
    row.emplace("followup_pool",
                static_cast<std::uint64_t>(r.followup_pool));
    row.emplace("followup_budget",
                static_cast<std::uint64_t>(r.followup_budget));
    row.emplace("followups_launched",
                static_cast<std::uint64_t>(r.followups_launched));
    row.emplace("followups_skipped",
                static_cast<std::uint64_t>(r.followups_skipped));
    row.emplace("followup_traces",
                static_cast<std::uint64_t>(r.followup_traces));
    iterations.emplace_back(std::move(row));
  }
  o.emplace("iterations", std::move(iterations));
  return JsonValue(std::move(o));
}

const std::vector<Oracle>& all_oracles() {
  static const std::vector<Oracle> oracles = {
      {"parallel",
       "reports byte-identical at --threads 1 vs the scenario's thread "
       "count",
       check_parallel},
      {"incremental",
       "incremental engine matches the from-scratch engine",
       check_incremental},
      {"roundtrip",
       "topology/report JSON export is a round-trip fixpoint",
       check_roundtrip},
      {"replay", "repeated faulted runs replay byte-identically",
       check_replay},
      {"layout_equivalence",
       "canonical export bytes match the stamped pre-refactor golden "
       "(layout invariants + serial-vs-threaded byte equality + fnv1a64 "
       "hash)",
       check_layout_equivalence},
      {"invariants",
       "paper-grounded report invariants (facility in candidate set, "
       "monotone convergence, alias partition, fault accounting)",
       check_invariants},
      {"pinning",
       "conflict-free pinned interfaces stay pinned when traces are added",
       check_pinning},
      {"serve_transport",
       "a live daemon under seeded socket chaos answers every non-shed "
       "request byte-identically to the batch export",
       check_serve_transport},
  };
  return oracles;
}

std::vector<Oracle> oracles_by_name(const std::string& csv) {
  if (csv.empty() || csv == "all") return all_oracles();
  std::vector<Oracle> out;
  for (const std::string& raw : split(csv, ',')) {
    const std::string name{trim(raw)};
    if (name.empty()) continue;
    bool found = false;
    for (const Oracle& oracle : all_oracles())
      if (oracle.name == name) {
        out.push_back(oracle);
        found = true;
        break;
      }
    if (!found) {
      std::string valid;
      for (const Oracle& oracle : all_oracles())
        valid += (valid.empty() ? "" : ", ") + oracle.name;
      throw std::invalid_argument("unknown oracle '" + name +
                                  "' (valid: " + valid + ")");
    }
  }
  if (out.empty()) throw std::invalid_argument("empty oracle selection");
  return out;
}

std::optional<OracleFailure> run_oracles(const Scenario& scenario,
                                         const std::vector<Oracle>& oracles) {
  for (const Oracle& oracle : oracles) {
    std::optional<OracleFailure> failure;
    try {
      failure = oracle.run(scenario);
    } catch (const std::exception& error) {
      failure = OracleFailure{oracle.name,
                              std::string("exception: ") + error.what()};
    }
    if (failure) return failure;
  }
  return std::nullopt;
}

}  // namespace cfs
