// Fuzzable scenario description for the differential oracle harness.
//
// A Scenario is the complete, serialisable input of one differential
// trial: topology scale knobs, campaign shape, CFS budget, thread count
// and a fault schedule. Every knob is drawn from a master Rng so a single
// (seed, trial) pair reproduces the trial exactly, and the whole struct
// round-trips through JSON so shrunk failures can be committed to
// `corpus/` and replayed with `cfs_fuzz --replay` (docs/TESTING.md).
//
// The sampling ranges are anchored at the `tiny` presets: the harness
// exists to cross-check execution paths over thousands of worlds, which
// only pays off if a single trial stays in the tens of milliseconds.
#pragma once

#include <cstdint>
#include <string>

#include "core/pipeline.h"
#include "io/json.h"
#include "util/rng.h"

namespace cfs {

struct Scenario {
  std::uint64_t seed = 1;  // pipeline seed; generator seed derives from it

  // --- topology scale (GeneratorConfig overrides) ---
  int metros = 6;
  double facility_density = 0.4;
  int tier1 = 3;
  int transit = 8;
  int content = 4;
  int eyeball = 18;
  int enterprise = 10;
  int max_ixp_span = 6;

  // --- campaign shape ---
  int content_targets = 1;
  int transit_targets = 1;
  double vp_fraction = 0.5;

  // --- CFS budget ---
  int max_iterations = 4;
  int followup_interfaces = 16;

  // Thread count of the parallel arm (the serial reference is always 1).
  int threads = 4;

  // --- fault schedule (FaultPlan intensities; all zero = no plane) ---
  double lg_outage = 0.0;
  double vp_churn = 0.0;
  double probe_timeout = 0.0;
  int lg_ban_burst = 0;
  double pdb_withheld = 0.0;
  double dns_withheld = 0.0;
  double geoip_withheld = 0.0;
  std::uint64_t fault_seed = 0;

  // Optional refactor golden: hex64(fnv1a64(.)) of the canonical export
  // (equivalence form, metrics subtree cut) the serial incremental arm
  // produced when the scenario was stamped with `cfs_fuzz --stamp-golden`.
  // Empty means unstamped. The layout_equivalence oracle re-checks it on
  // every replay, so a memory-layout refactor that drifts the report by a
  // single byte fails the corpus; the shrinker clears it on any mutation
  // (a mutated scenario's golden no longer applies).
  std::string expected_export_fnv1a;

  // Pipeline configuration for the serial reference run (threads = 1,
  // incremental engine); oracles override threads/engine per arm.
  [[nodiscard]] PipelineConfig pipeline_config() const;

  [[nodiscard]] bool any_faults() const {
    return lg_outage > 0 || vp_churn > 0 || probe_timeout > 0 ||
           lg_ban_burst > 0 || pdb_withheld > 0 || dns_withheld > 0 ||
           geoip_withheld > 0;
  }

  // One-line knob dump for progress lines and failure messages.
  [[nodiscard]] std::string summary() const;

  [[nodiscard]] JsonValue to_json() const;
  // Throws std::runtime_error on malformed documents; absent keys keep
  // their defaults so hand-written corpus entries can stay minimal.
  static Scenario from_json(const JsonValue& doc);
};

// Floors every shrink step reduces toward; sampling never goes below them
// and generator invariants hold for any scenario at or above them.
struct ScenarioFloors {
  static constexpr int metros = 2;
  static constexpr double facility_density = 0.3;
  static constexpr int tier1 = 1;
  static constexpr int transit = 2;
  static constexpr int content = 1;
  static constexpr int eyeball = 4;
  static constexpr int enterprise = 0;
  static constexpr int max_ixp_span = 3;
  static constexpr int content_targets = 1;
  static constexpr int transit_targets = 1;
  static constexpr double vp_fraction = 0.2;
  static constexpr int max_iterations = 1;
  static constexpr int followup_interfaces = 0;
  static constexpr int threads = 2;
};

// Draws one trial's scenario from the master stream. Deterministic: equal
// Rng state yields an equal scenario.
[[nodiscard]] Scenario sample_scenario(Rng& rng);

}  // namespace cfs
