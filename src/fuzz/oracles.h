// Differential oracles: executable equivalence contracts.
//
// The codebase carries four independent execution paths that must agree
// byte for byte — serial vs parallel, incremental vs from-scratch,
// faulted-replay determinism, and in-memory vs JSON round-tripped — plus
// metamorphic invariants grounded in the paper's algorithm (an inferred
// facility must lie inside its interface's constraint set; constraints
// only ever narrow). Each contract is an Oracle: a named predicate over a
// Scenario that either passes or explains the first divergence it found
// (via the path-addressed diff in analysis/diff.h). The fuzz driver
// samples scenarios and runs the oracle set; the shrinker minimises any
// scenario an oracle rejects. Taxonomy in docs/TESTING.md.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "fuzz/scenario.h"

namespace cfs {

struct OracleFailure {
  std::string oracle;   // which contract broke
  std::string message;  // first divergent path / violated invariant
};

struct Oracle {
  std::string name;
  std::string description;
  std::function<std::optional<OracleFailure>(const Scenario&)> run;
};

// The full oracle set, in execution order.
[[nodiscard]] const std::vector<Oracle>& all_oracles();

// Subset selection from a comma-separated list ("parallel,roundtrip");
// "all" or "" yields the full set. Throws std::invalid_argument on an
// unknown name, listing the valid ones.
[[nodiscard]] std::vector<Oracle> oracles_by_name(const std::string& csv);

// Runs the oracles in order and returns the first failure. Exceptions
// escaping an oracle (generator invariant violations, export errors) are
// converted into failures of that oracle, so crashes shrink like any
// other divergence.
[[nodiscard]] std::optional<OracleFailure> run_oracles(
    const Scenario& scenario, const std::vector<Oracle>& oracles);

// --- comparison helpers (exposed for tests) ---

// The serial incremental reference arm: the full pipeline for the
// scenario at --threads 1, the run every differential oracle compares
// against. Exposed so `cfs_fuzz --stamp-golden` and the corpus
// golden-replay test hash/compare exactly the bytes the oracles see.
[[nodiscard]] CfsReport run_reference_arm(const Scenario& scenario);

// Exported report JSON with the `metrics` subtree removed (wall-clock
// content differs legitimately between equivalent runs).
[[nodiscard]] JsonValue equivalence_json(const CfsReport& report);

// Deterministic CfsMetrics counters (never timings) as JSON, for
// cross-engine comparison with path-addressed messages.
[[nodiscard]] JsonValue counters_json(const CfsMetrics& metrics);

}  // namespace cfs
