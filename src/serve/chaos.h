// Chaos-client driver for the resident service: a fleet of deliberately
// misbehaving clients hammering a live daemon through the seeded
// SocketFaultPlane (src/net/faults.h). Each request's delivery schedule —
// torn frame, byte-at-a-time writes, stall, mid-request disconnect,
// delayed read — is a pure hash of (seed, client, request ordinal), so a
// soak replays exactly: same seed, same abuse, same expected outcomes.
//
// The driver validates, not just survives: every answered request must
// echo its id and carry the byte-identical canonical-export entry the
// caller provided. Anything else is a desync, the one outcome a correct
// daemon never produces. Shared by the overload/chaos tests, the
// bench_serve_degraded harness and the fuzz serve_transport oracle.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/faults.h"

namespace cfs {

// One known-good lookup: the address to ask for and the exact dump() of
// the canonical export's interface entry (or "absent" for a miss).
struct ChaosExpectation {
  std::string ip;
  std::string expected_interface_dump;  // "absent" when not in the export
};

struct ChaosConfig {
  std::string socket_path;
  SocketFaultPlan plan;     // transport misbehaviour intensities
  std::uint64_t seed = 0;   // mixed into the plane
  int clients = 8;          // concurrent misbehaving clients
  int requests_per_client = 100;
  // Patience for one response before declaring the transport broken.
  int response_timeout_ms = 10'000;
};

// Per-request outcomes, summed across the fleet. A healthy chaotic run
// has attempted == ok + shed + torn + disconnected + cut, desyncs == 0
// and transport_errors == 0.
struct ChaosStats {
  std::uint64_t attempted = 0;
  std::uint64_t ok = 0;            // answered, id + bytes validated
  std::uint64_t shed = 0;          // structured overloaded/deadline_exceeded
  std::uint64_t torn = 0;          // frame truncated by plan; no answer owed
  std::uint64_t disconnected = 0;  // client vanished pre-read by plan
  std::uint64_t cut = 0;           // daemon closed on us (timeout/overload cut)
  std::uint64_t desyncs = 0;       // wrong id or wrong bytes — daemon bug
  std::uint64_t transport_errors = 0;  // stuck socket, response timeout
  std::uint64_t reconnects = 0;
  std::vector<double> ok_latency_ms;  // per-validated-answer round trip

  [[nodiscard]] bool clean() const {
    return desyncs == 0 && transport_errors == 0;
  }
  [[nodiscard]] double shed_rate() const {
    return attempted == 0
               ? 0.0
               : static_cast<double>(shed) / static_cast<double>(attempted);
  }
};

// Runs the fleet to completion (each client issues its full request
// budget, reconnecting as the plan or the daemon kills connections) and
// returns the summed outcome. Thread-safe with respect to the daemon; the
// caller owns daemon lifetime.
[[nodiscard]] ChaosStats run_chaos_clients(
    const ChaosConfig& config, const std::vector<ChaosExpectation>& lookups);

}  // namespace cfs
