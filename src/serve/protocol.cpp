#include "serve/protocol.h"

#include <algorithm>
#include <stdexcept>

namespace cfs {

std::string encode_frame(std::string_view payload) {
  if (payload.size() > 0xFFFFFFFFull)
    throw std::length_error("encode_frame: payload exceeds 4 GiB");
  const auto n = static_cast<std::uint32_t>(payload.size());
  std::string out;
  out.reserve(kFrameHeaderBytes + payload.size());
  out.push_back(static_cast<char>((n >> 24) & 0xFF));
  out.push_back(static_cast<char>((n >> 16) & 0xFF));
  out.push_back(static_cast<char>((n >> 8) & 0xFF));
  out.push_back(static_cast<char>(n & 0xFF));
  out.append(payload);
  return out;
}

FrameDecoder::FrameDecoder(std::size_t max_frame_bytes)
    : max_frame_(max_frame_bytes) {}

void FrameDecoder::feed(const char* data, std::size_t size) {
  buffer_.append(data, size);
  scan();
}

std::optional<Frame> FrameDecoder::next() {
  if (ready_.empty()) return std::nullopt;
  Frame frame = std::move(ready_.front());
  ready_.pop_front();
  return frame;
}

bool FrameDecoder::idle() const {
  return ready_.empty() && consumed_ == buffer_.size() &&
         skip_remaining_ == 0;
}

void FrameDecoder::scan() {
  for (;;) {
    // Discard the body of an oversized frame without ever buffering it.
    if (skip_remaining_ > 0) {
      const std::size_t avail = buffer_.size() - consumed_;
      const std::uint64_t take =
          std::min<std::uint64_t>(skip_remaining_, avail);
      consumed_ += static_cast<std::size_t>(take);
      skip_remaining_ -= take;
      if (skip_remaining_ > 0) break;  // need more bytes to finish the skip
      continue;
    }
    const std::size_t avail = buffer_.size() - consumed_;
    if (avail < kFrameHeaderBytes) break;
    const auto* p =
        reinterpret_cast<const unsigned char*>(buffer_.data() + consumed_);
    const std::uint32_t declared = (std::uint32_t{p[0]} << 24) |
                                   (std::uint32_t{p[1]} << 16) |
                                   (std::uint32_t{p[2]} << 8) |
                                   std::uint32_t{p[3]};
    if (declared == 0) {
      consumed_ += kFrameHeaderBytes;
      Frame frame;
      frame.kind = Frame::Kind::Empty;
      ready_.push_back(std::move(frame));
      continue;
    }
    if (declared > max_frame_) {
      // Surface the error immediately — the peer should not have to
      // finish sending megabytes before hearing it was rejected — then
      // swallow the body so the next frame realigns.
      consumed_ += kFrameHeaderBytes;
      skip_remaining_ = declared;
      Frame frame;
      frame.kind = Frame::Kind::Oversized;
      frame.declared_bytes = declared;
      ready_.push_back(std::move(frame));
      continue;
    }
    if (avail < kFrameHeaderBytes + declared) break;  // partial payload
    Frame frame;
    frame.kind = Frame::Kind::Payload;
    frame.payload.assign(buffer_, consumed_ + kFrameHeaderBytes, declared);
    consumed_ += kFrameHeaderBytes + declared;
    ready_.push_back(std::move(frame));
  }
  // Compact the consumed prefix so a long-lived connection's buffer does
  // not grow without bound.
  if (consumed_ > 0) {
    buffer_.erase(0, consumed_);
    consumed_ = 0;
  }
}

JsonValue ok_response(const JsonValue& id, std::string_view op,
                      JsonValue result) {
  JsonValue::Object o;
  o.emplace("id", id);
  o.emplace("ok", true);
  o.emplace("op", std::string(op));
  o.emplace("result", std::move(result));
  return JsonValue(std::move(o));
}

JsonValue error_response(const JsonValue& id, std::string_view code,
                         std::string_view message) {
  JsonValue::Object error;
  error.emplace("code", std::string(code));
  error.emplace("message", std::string(message));
  JsonValue::Object o;
  o.emplace("id", id);
  o.emplace("ok", false);
  o.emplace("error", JsonValue(std::move(error)));
  return JsonValue(std::move(o));
}

}  // namespace cfs
