#include "serve/chaos.h"

#include <errno.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <mutex>
#include <optional>
#include <thread>

#include "io/json.h"
#include "serve/protocol.h"

namespace cfs {
namespace {

using Clock = std::chrono::steady_clock;

// splitmix64 finalizer, the same mixing every fault plane uses.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

void sleep_ms(double ms) {
  if (ms <= 0.0) return;
  std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(ms));
}

int remaining_ms(Clock::time_point until) {
  const auto left =
      std::chrono::duration_cast<std::chrono::milliseconds>(until -
                                                            Clock::now());
  return left.count() <= 0 ? 0 : static_cast<int>(left.count());
}

// A raw connection: the chaos client speaks syscalls, not ServeClient,
// because the whole point is delivering bytes the way the plan dictates.
struct RawConn {
  int fd = -1;
  FrameDecoder decoder{64u << 20};

  ~RawConn() { close(); }

  void close() {
    if (fd >= 0) {
      ::close(fd);
      fd = -1;
    }
    decoder = FrameDecoder{64u << 20};
  }

  // Connects within the deadline; retries a full listen backlog (the
  // connection-flood case) with a short nap. False on timeout or hard
  // failure.
  bool connect(const std::string& path, int timeout_ms) {
    close();
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path)) return false;
    std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
    const auto until = Clock::now() + std::chrono::milliseconds(timeout_ms);
    for (;;) {
      fd = socket(AF_UNIX, SOCK_STREAM, 0);
      if (fd < 0) return false;
      if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                    sizeof(addr)) == 0)
        return true;
      const int err = errno;
      ::close(fd);
      fd = -1;
      if (err != EAGAIN && err != ECONNREFUSED && err != EINTR) return false;
      if (remaining_ms(until) == 0) return false;
      sleep_ms(1.0);
    }
  }

  // Delivers one frame exactly as the plan dictates. False when the peer
  // closed mid-write (EPIPE/ECONNRESET) — possible and legal when the
  // daemon cut or rejected the connection.
  bool send_per_plan(std::string_view frame, const SocketWritePlan& plan) {
    std::size_t offset = 0;
    for (std::size_t i = 0; i < plan.chunks.size(); ++i) {
      if (static_cast<int>(i) == plan.stall_before_chunk)
        sleep_ms(plan.stall_ms);
      std::size_t want = plan.chunks[i];
      while (want > 0) {
        const ssize_t n =
            send(fd, frame.data() + offset, want, MSG_NOSIGNAL);
        if (n < 0) {
          if (errno == EINTR) continue;
          return false;
        }
        offset += static_cast<std::size_t>(n);
        want -= static_cast<std::size_t>(n);
      }
    }
    return true;
  }

  enum class ReadOutcome { Frame, Eof, Timeout, Broken };

  // One complete response frame within the deadline.
  ReadOutcome read_frame(std::string& payload, int timeout_ms) {
    const auto until = Clock::now() + std::chrono::milliseconds(timeout_ms);
    for (;;) {
      if (auto frame = decoder.next()) {
        if (frame->kind != Frame::Kind::Payload) return ReadOutcome::Broken;
        payload = std::move(frame->payload);
        return ReadOutcome::Frame;
      }
      const int wait = remaining_ms(until);
      if (wait == 0) return ReadOutcome::Timeout;
      pollfd p{fd, POLLIN, 0};
      const int r = ::poll(&p, 1, wait);
      if (r < 0) {
        if (errno == EINTR) continue;
        return ReadOutcome::Broken;
      }
      if (r == 0) return ReadOutcome::Timeout;
      char buffer[64 * 1024];
      const ssize_t n = recv(fd, buffer, sizeof(buffer), 0);
      if (n > 0) {
        decoder.feed(buffer, static_cast<std::size_t>(n));
        continue;
      }
      if (n == 0) return ReadOutcome::Eof;
      if (errno == EINTR || errno == EAGAIN) continue;
      return ReadOutcome::Eof;  // ECONNRESET: the daemon cut us
    }
  }
};

void run_one_client(const ChaosConfig& config, const SocketFaultPlane& plane,
                    const std::vector<ChaosExpectation>& lookups,
                    std::uint64_t client_id, ChaosStats& stats) {
  RawConn conn;
  int consecutive_connect_failures = 0;
  for (int ordinal = 0; ordinal < config.requests_per_client; ++ordinal) {
    stats.attempted += 1;
    if (conn.fd < 0) {
      if (!conn.connect(config.socket_path, config.response_timeout_ms)) {
        stats.transport_errors += 1;
        if (++consecutive_connect_failures >= 3) return;  // daemon is gone
        continue;
      }
      consecutive_connect_failures = 0;
      if (ordinal > 0) stats.reconnects += 1;
    }

    const ChaosExpectation& expect =
        lookups[mix64(plane.seed() ^ mix64(client_id * 8191 + 13) ^
                      static_cast<std::uint64_t>(ordinal)) %
                lookups.size()];
    JsonValue::Object doc;
    doc.emplace("op", "lookup");
    doc.emplace("id", static_cast<std::int64_t>(ordinal));
    doc.emplace("ip", expect.ip);
    const std::string frame = encode_frame(JsonValue(std::move(doc)).dump());
    const SocketWritePlan plan =
        plane.write_plan(client_id, static_cast<std::uint64_t>(ordinal),
                         frame.size());

    const auto start = Clock::now();
    if (!conn.send_per_plan(frame, plan)) {
      // Peer closed mid-write: a rejection or a timeout cut, never an
      // error. The request was not fully delivered, so no answer is owed.
      stats.cut += 1;
      conn.close();
      continue;
    }
    if (plan.torn()) {
      stats.torn += 1;
      conn.close();
      continue;
    }
    if (plan.disconnect_before_read) {
      stats.disconnected += 1;
      conn.close();
      continue;
    }
    sleep_ms(plan.read_stall_ms);

    std::string payload;
    switch (conn.read_frame(payload, config.response_timeout_ms)) {
      case RawConn::ReadOutcome::Eof:
        stats.cut += 1;  // daemon closed before answering (cut under load)
        conn.close();
        continue;
      case RawConn::ReadOutcome::Timeout:
      case RawConn::ReadOutcome::Broken:
        stats.transport_errors += 1;
        conn.close();
        continue;
      case RawConn::ReadOutcome::Frame:
        break;
    }

    JsonValue response;
    try {
      response = parse_json(payload);
    } catch (const std::exception&) {
      stats.desyncs += 1;
      conn.close();
      continue;
    }
    const JsonValue* ok = response.find("ok");
    if (ok == nullptr || !ok->is_bool()) {
      stats.desyncs += 1;
      conn.close();
      continue;
    }
    if (!ok->as_bool()) {
      const JsonValue* error = response.find("error");
      const std::string code =
          error != nullptr && error->find("code") != nullptr
              ? error->at("code").as_string()
              : std::string("?");
      if (code == "overloaded") {
        // Front-door rejection: the daemon will close this connection.
        stats.shed += 1;
        conn.close();
        continue;
      }
      if (code == "deadline_exceeded") {
        // Shed in place; the connection stays usable. The id must still
        // echo ours — shedding never reorders.
        const JsonValue* id = response.find("id");
        if (id == nullptr || id->is_null() ||
            (id->is_number() && id->as_int() == ordinal))
          stats.shed += 1;
        else
          stats.desyncs += 1;
        continue;
      }
      stats.desyncs += 1;  // well-formed lookups never earn other errors
      continue;
    }

    // Validated answer: id echoed, bytes identical to the batch export.
    const JsonValue* id = response.find("id");
    const JsonValue* result = response.find("result");
    bool valid = id != nullptr && id->is_number() &&
                 id->as_int() == ordinal && result != nullptr;
    if (valid) {
      const std::string got = result->at("found").as_bool()
                                  ? result->at("interface").dump()
                                  : std::string("absent");
      valid = got == expect.expected_interface_dump;
    }
    if (valid) {
      stats.ok += 1;
      stats.ok_latency_ms.push_back(
          std::chrono::duration<double, std::milli>(Clock::now() - start)
              .count());
    } else {
      stats.desyncs += 1;
    }
  }
}

}  // namespace

ChaosStats run_chaos_clients(const ChaosConfig& config,
                             const std::vector<ChaosExpectation>& lookups) {
  ChaosStats total;
  if (lookups.empty() || config.clients <= 0) return total;
  const SocketFaultPlane plane(config.plan, config.seed);

  std::mutex merge_mutex;
  std::vector<std::thread> fleet;
  fleet.reserve(static_cast<std::size_t>(config.clients));
  for (int c = 0; c < config.clients; ++c) {
    fleet.emplace_back([&, c] {
      ChaosStats local;
      run_one_client(config, plane, lookups,
                     static_cast<std::uint64_t>(c) + 1, local);
      std::lock_guard<std::mutex> lock(merge_mutex);
      total.attempted += local.attempted;
      total.ok += local.ok;
      total.shed += local.shed;
      total.torn += local.torn;
      total.disconnected += local.disconnected;
      total.cut += local.cut;
      total.desyncs += local.desyncs;
      total.transport_errors += local.transport_errors;
      total.reconnects += local.reconnects;
      total.ok_latency_ms.insert(total.ok_latency_ms.end(),
                                 local.ok_latency_ms.begin(),
                                 local.ok_latency_ms.end());
    });
  }
  for (auto& thread : fleet) thread.join();
  std::sort(total.ok_latency_ms.begin(), total.ok_latency_ms.end());
  return total;
}

}  // namespace cfs
