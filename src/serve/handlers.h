// Query handlers for the resident inference service.
//
// `ServeState` is the daemon's unit of consistency: one immutable,
// fully-indexed snapshot of a CfsReport plus its canonical JSON export.
// Every query pins the snapshot it started with through a shared_ptr, so
// a concurrent `reload` never tears a response — readers either see the
// old world or the new one, wholesale (the slash2 control-socket daemons
// use the same swap-behind-a-pointer shape for their resident tables).
//
// Handlers answer out of the canonical export (io/export.cpp), so a
// `lookup` result is byte-identical to the matching entry of a batch
// `cfs infer --report` run over the same topology and seed.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "core/report.h"
#include "io/json.h"
#include "util/trace.h"

namespace cfs {

struct ServeState {
  CfsReport report;
  JsonValue report_json;  // canonical export, report_to_json(report)
  // Index into report_json's "interfaces" array by dotted-quad address.
  std::map<std::string, std::size_t> interface_index;
  std::string source;  // provenance: "pipeline" or the loaded file path
  std::uint64_t generation = 0;  // bumped by every successful reload

  // Builds the export and the address index. `generation` tags responses
  // so clients (and the reload tests) can tell which world answered.
  [[nodiscard]] static std::shared_ptr<const ServeState> from_report(
      CfsReport report, std::string source, std::uint64_t generation);
  // Parses an exported report JSON file (io/export.cpp schema); throws
  // std::runtime_error on unreadable or malformed input.
  [[nodiscard]] static std::shared_ptr<const ServeState> from_file(
      const std::string& path, std::uint64_t generation);
};

// The handler's window onto the daemon: state access plus the two
// control-plane actions (reload swaps the state, shutdown starts the
// drain). Server implements this; tests substitute a fake.
class ServeControl {
 public:
  virtual ~ServeControl() = default;
  [[nodiscard]] virtual std::shared_ptr<const ServeState> state() const = 0;
  virtual void swap_state(std::shared_ptr<const ServeState> next) = 0;
  virtual void request_shutdown() = 0;
  // Returns the previous metrics-window baseline and installs `now` as
  // the next one (the `metrics` query reports per-window deltas).
  virtual MetricsSnapshot exchange_metrics_baseline(
      const MetricsSnapshot& now) = 0;
  // When true, test-only ops (`sleep`) exist; production daemons leave
  // this off and the ops answer `unknown_op` as if they were never there.
  [[nodiscard]] virtual bool debug_ops() const { return false; }
};

// Parses one frame payload and dispatches it; never throws — every
// failure (bad JSON, unknown op, missing parameter, unreadable snapshot
// file) comes back as a structured error response.
[[nodiscard]] JsonValue handle_payload(const std::string& payload,
                                       ServeControl& control);

// Dispatch for an already-parsed request (the CLI client reuses this
// shape to validate requests before sending).
[[nodiscard]] JsonValue handle_request(const JsonValue& request,
                                       ServeControl& control);

// Registry snapshot as JSON ({"counters":{...},"gauges":{...},
// "timers":{name:{count,total_ms}}}); shared by the `metrics` handler
// and tests.
[[nodiscard]] JsonValue metrics_snapshot_json(const MetricsSnapshot& snap);

}  // namespace cfs
