#include "serve/client.h"

#include <errno.h>
#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstring>
#include <stdexcept>

namespace cfs {

namespace {

void set_nonblocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  if (flags >= 0) fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

int remaining_ms(std::chrono::steady_clock::time_point until) {
  const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
      until - std::chrono::steady_clock::now());
  if (left.count() <= 0) return 0;
  if (left.count() > 60'000) return 60'000;  // poll slice; loop re-checks
  return static_cast<int>(left.count());
}

}  // namespace

ServeClient::~ServeClient() { close(); }

ServeClient::Clock::time_point ServeClient::deadline() const {
  if (timeout_ms_ <= 0) return Clock::time_point::max();
  return Clock::now() + std::chrono::milliseconds(timeout_ms_);
}

void ServeClient::wait_io(short events, Clock::time_point until,
                          const char* what) {
  for (;;) {
    int wait_ms = -1;
    if (until != Clock::time_point::max()) {
      wait_ms = remaining_ms(until);
      if (wait_ms == 0)
        throw ClientTimeoutError(std::string(what) + " timed out after " +
                                 std::to_string(timeout_ms_) + " ms");
    }
    pollfd p{fd_, events, 0};
    const int r = ::poll(&p, 1, wait_ms);
    if (r > 0) return;
    if (r == 0)
      throw ClientTimeoutError(std::string(what) + " timed out after " +
                               std::to_string(timeout_ms_) + " ms");
    if (errno == EINTR) continue;
    throw std::runtime_error(std::string("poll: ") + strerror(errno));
  }
}

void ServeClient::connect(const std::string& socket_path) {
  if (fd_ >= 0) close();
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.size() >= sizeof(addr.sun_path))
    throw std::runtime_error("socket path too long: " + socket_path);
  std::strncpy(addr.sun_path, socket_path.c_str(),
               sizeof(addr.sun_path) - 1);
  fd_ = socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd_ < 0)
    throw std::runtime_error(std::string("socket: ") + strerror(errno));
  // With a timeout the socket goes (and stays) non-blocking: connect,
  // send and recv all funnel through wait_io's deadline instead of
  // blocking in the kernel.
  if (timeout_ms_ > 0) set_nonblocking(fd_);
  const auto until = deadline();
  for (;;) {
    if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) == 0)
      return;
    if (errno == EINTR) continue;
    if (timeout_ms_ > 0 && errno == EINPROGRESS) {
      // Kernel is completing the connect asynchronously.
      try {
        wait_io(POLLOUT, until, ("connect " + socket_path).c_str());
      } catch (...) {
        close();
        throw;
      }
      int soerr = 0;
      socklen_t len = sizeof(soerr);
      getsockopt(fd_, SOL_SOCKET, SO_ERROR, &soerr, &len);
      if (soerr == 0) return;
      const std::string message =
          "connect " + socket_path + ": " + strerror(soerr);
      close();
      throw std::runtime_error(message);
    }
    if (timeout_ms_ > 0 && errno == EAGAIN) {
      // Unix-socket backlog full (connection flood): there is no
      // completion to poll for, so back off briefly and retry until the
      // deadline.
      if (remaining_ms(until) == 0) {
        close();
        throw ClientTimeoutError("connect " + socket_path +
                                 " timed out after " +
                                 std::to_string(timeout_ms_) +
                                 " ms (listen backlog full)");
      }
      pollfd p{fd_, 0, 0};
      ::poll(&p, 0, 1);  // 1 ms nap without pulling in another header
      continue;
    }
    const std::string message = "connect " + socket_path + ": " +
                                strerror(errno);
    close();
    throw std::runtime_error(message);
  }
}

void ServeClient::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void ServeClient::send_bytes(std::string_view bytes) {
  if (fd_ < 0) throw std::runtime_error("ServeClient: not connected");
  const auto until = deadline();
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = send(fd_, bytes.data() + sent, bytes.size() - sent,
                           MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        // Non-blocking (timeout) mode: the daemon stopped draining us.
        wait_io(POLLOUT, until, "send");
        continue;
      }
      throw std::runtime_error(std::string("send: ") + strerror(errno));
    }
    sent += static_cast<std::size_t>(n);
  }
}

std::optional<JsonValue> ServeClient::read_response() {
  if (fd_ < 0) throw std::runtime_error("ServeClient: not connected");
  const auto until = deadline();
  for (;;) {
    if (auto frame = decoder_.next()) {
      if (frame->kind != Frame::Kind::Payload)
        throw std::runtime_error("ServeClient: malformed response frame");
      return parse_json(frame->payload);
    }
    char buffer[64 * 1024];
    const ssize_t n = recv(fd_, buffer, sizeof(buffer), 0);
    if (n > 0) {
      decoder_.feed(buffer, static_cast<std::size_t>(n));
      continue;
    }
    if (n == 0) return std::nullopt;  // orderly close
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      wait_io(POLLIN, until, "read");
      continue;
    }
    throw std::runtime_error(std::string("recv: ") + strerror(errno));
  }
}

JsonValue ServeClient::request(const JsonValue& doc) {
  send_bytes(encode_frame(doc.dump()));
  auto response = read_response();
  if (!response)
    throw std::runtime_error(
        "ServeClient: connection closed before a response arrived");
  return std::move(*response);
}

}  // namespace cfs
