#include "serve/client.h"

#include <errno.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstring>
#include <stdexcept>

namespace cfs {

ServeClient::~ServeClient() { close(); }

void ServeClient::connect(const std::string& socket_path) {
  if (fd_ >= 0) close();
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.size() >= sizeof(addr.sun_path))
    throw std::runtime_error("socket path too long: " + socket_path);
  std::strncpy(addr.sun_path, socket_path.c_str(),
               sizeof(addr.sun_path) - 1);
  fd_ = socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd_ < 0)
    throw std::runtime_error(std::string("socket: ") + strerror(errno));
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) < 0) {
    const std::string message = "connect " + socket_path + ": " +
                                strerror(errno);
    close();
    throw std::runtime_error(message);
  }
}

void ServeClient::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void ServeClient::send_bytes(std::string_view bytes) {
  if (fd_ < 0) throw std::runtime_error("ServeClient: not connected");
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = send(fd_, bytes.data() + sent, bytes.size() - sent,
                           MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error(std::string("send: ") + strerror(errno));
    }
    sent += static_cast<std::size_t>(n);
  }
}

std::optional<JsonValue> ServeClient::read_response() {
  if (fd_ < 0) throw std::runtime_error("ServeClient: not connected");
  for (;;) {
    if (auto frame = decoder_.next()) {
      if (frame->kind != Frame::Kind::Payload)
        throw std::runtime_error("ServeClient: malformed response frame");
      return parse_json(frame->payload);
    }
    char buffer[64 * 1024];
    const ssize_t n = recv(fd_, buffer, sizeof(buffer), 0);
    if (n > 0) {
      decoder_.feed(buffer, static_cast<std::size_t>(n));
      continue;
    }
    if (n == 0) return std::nullopt;  // orderly close
    if (errno == EINTR) continue;
    throw std::runtime_error(std::string("recv: ") + strerror(errno));
  }
}

JsonValue ServeClient::request(const JsonValue& doc) {
  send_bytes(encode_frame(doc.dump()));
  auto response = read_response();
  if (!response)
    throw std::runtime_error(
        "ServeClient: connection closed before a response arrived");
  return std::move(*response);
}

}  // namespace cfs
