#include "serve/handlers.h"

#include <chrono>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "analysis/diff.h"
#include "io/export.h"
#include "net/ipv4.h"
#include "serve/protocol.h"

namespace cfs {
namespace {

JsonValue load_json_file(const std::string& path) {
  std::ifstream file(path);
  if (!file) throw std::runtime_error("cannot read " + path);
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return parse_json(buffer.str());
}

// Thrown by handlers for request-level failures; carries the structured
// error code so dispatch can answer without string-matching messages.
struct RequestError : std::runtime_error {
  RequestError(std::string code_in, const std::string& message)
      : std::runtime_error(message), code(std::move(code_in)) {}
  std::string code;
};

const std::string& string_param(const JsonValue& request, const char* key) {
  const JsonValue* value = request.find(key);
  if (value == nullptr || !value->is_string())
    throw RequestError("bad_param",
                       std::string("missing or non-string parameter '") +
                           key + "'");
  return value->as_string();
}

std::int64_t int_param(const JsonValue& request, const char* key) {
  const JsonValue* value = request.find(key);
  if (value == nullptr || !value->is_number())
    throw RequestError("bad_param",
                       std::string("missing or non-number parameter '") +
                           key + "'");
  return value->as_int();
}

const JsonValue::Array& exported_interfaces(const ServeState& state) {
  return state.report_json.at("interfaces").as_array();
}

bool entry_resolved(const JsonValue& entry) {
  return entry.at("has_constraint").as_bool() &&
         entry.at("candidates").size() == 1;
}

JsonValue op_lookup(const JsonValue& request, const ServeState& state) {
  const std::string& raw = string_param(request, "ip");
  const auto parsed = Ipv4::parse(raw);
  if (!parsed)
    throw RequestError("bad_param", "'" + raw + "' is not an IPv4 address");
  const std::string address = parsed->to_string();

  JsonValue::Object result;
  result.emplace("address", address);
  result.emplace("generation", state.generation);
  const auto it = state.interface_index.find(address);
  if (it == state.interface_index.end()) {
    result.emplace("found", false);
    result.emplace("interface", nullptr);
    result.emplace("resolved", false);
    result.emplace("pinned", false);
    result.emplace("facility", nullptr);
    return JsonValue(std::move(result));
  }
  // The exact canonical-export entry: candidate set, constraint and
  // conflict state included, byte-identical to the batch report.
  const JsonValue& entry = exported_interfaces(state)[it->second];
  const bool resolved = entry_resolved(entry);
  result.emplace("found", true);
  result.emplace("interface", entry);
  result.emplace("resolved", resolved);
  // Pinned: resolved without any conflicting constraint ever recorded
  // (the fuzz harness's pinning oracle uses the same notion).
  result.emplace("pinned", resolved && entry.at("conflicts").as_int() == 0);
  result.emplace("facility", resolved ? entry.at("candidates").at(0)
                                      : JsonValue(nullptr));
  return JsonValue(std::move(result));
}

JsonValue op_peers_at(const JsonValue& request, const ServeState& state) {
  const std::int64_t facility = int_param(request, "facility");

  // Members: every interface pinned to this building, in canonical export
  // order (sorted by address); entries are the exact export objects.
  JsonValue::Array members;
  for (const JsonValue& entry : exported_interfaces(state)) {
    if (!entry_resolved(entry)) continue;
    if (entry.at("candidates").at(0).as_int() == facility)
      members.push_back(entry);
  }
  // Crossings touching the building, near or far side, in export order.
  JsonValue::Array links;
  for (const JsonValue& link : state.report_json.at("links").as_array()) {
    const JsonValue& near = link.at("near_facility");
    const JsonValue& far = link.at("far_facility");
    const bool touches =
        (!near.is_null() && near.as_int() == facility) ||
        (!far.is_null() && far.as_int() == facility);
    if (touches) links.push_back(link);
  }

  JsonValue::Object result;
  result.emplace("facility", facility);
  result.emplace("generation", state.generation);
  result.emplace("members", std::move(members));
  result.emplace("links", std::move(links));
  return JsonValue(std::move(result));
}

JsonValue op_diff(const JsonValue& request, const ServeState& state) {
  const std::string& path = string_param(request, "snapshot");
  JsonValue snapshot;
  try {
    snapshot = load_json_file(path);
  } catch (const std::exception& error) {
    throw RequestError("snapshot_unreadable", error.what());
  }

  JsonDiffOptions options;
  if (const JsonValue* max = request.find("max")) {
    if (!max->is_number())
      throw RequestError("bad_param", "'max' must be a number");
    options.max_entries = static_cast<std::size_t>(max->as_int());
  }
  if (const JsonValue* ignore = request.find("ignore")) {
    if (!ignore->is_string())
      throw RequestError("bad_param",
                         "'ignore' must be a comma-separated string");
    std::istringstream prefixes(ignore->as_string());
    for (std::string prefix; std::getline(prefixes, prefix, ',');)
      if (!prefix.empty()) options.ignore_prefixes.push_back(prefix);
  }

  // Resident report on the left, snapshot on the right — same orientation
  // as `cfs diff resident.json snapshot.json`, same diff engine.
  const JsonDiff diff = diff_json(state.report_json, snapshot, options);
  JsonValue::Array entries;
  for (const JsonDiffEntry& entry : diff.entries) {
    JsonValue::Object e;
    e.emplace("path", entry.path);
    e.emplace("kind", json_diff_kind_name(entry.kind));
    e.emplace("left", entry.left);
    e.emplace("right", entry.right);
    entries.emplace_back(std::move(e));
  }

  JsonValue::Object result;
  result.emplace("snapshot", path);
  result.emplace("generation", state.generation);
  result.emplace("identical", diff.empty());
  result.emplace("total", static_cast<std::uint64_t>(diff.total));
  result.emplace("truncated", diff.truncated());
  result.emplace("entries", std::move(entries));
  return JsonValue(std::move(result));
}

JsonValue op_metrics(ServeControl& control, const ServeState& state) {
  const MetricsSnapshot now = Trace::metrics();
  const MetricsSnapshot previous = control.exchange_metrics_baseline(now);
  JsonValue::Object result;
  result.emplace("generation", state.generation);
  result.emplace("registry", metrics_snapshot_json(now));
  // Delta since the previous `metrics` query (or daemon start). Relies on
  // metrics_since keeping timers whose total advanced without a new
  // completion — spans routinely straddle these window boundaries.
  result.emplace("window",
                 metrics_snapshot_json(Trace::metrics_since(previous)));
  return JsonValue(std::move(result));
}

JsonValue op_reload(const JsonValue& request, ServeControl& control,
                    const ServeState& state) {
  const std::string& path = string_param(request, "report");
  std::shared_ptr<const ServeState> next;
  try {
    next = ServeState::from_file(path, state.generation + 1);
  } catch (const std::exception& error) {
    // The old snapshot keeps serving untouched — the swap below never
    // ran. Name the failing path in the error: "reload failed" without a
    // path is useless to an operator juggling snapshot directories.
    Trace::counter("serve.reload_failed");
    throw RequestError("reload_failed",
                       "reload of '" + path + "' failed (still serving "
                       "generation " + std::to_string(state.generation) +
                       "): " + error.what());
  }
  Trace::counter("serve.reload");
  control.swap_state(next);

  JsonValue::Object result;
  result.emplace("reloaded", true);
  result.emplace("source", path);
  result.emplace("generation", next->generation);
  result.emplace("interfaces",
                 static_cast<std::uint64_t>(next->report.interfaces.size()));
  result.emplace("links",
                 static_cast<std::uint64_t>(next->report.links.size()));
  return JsonValue(std::move(result));
}

JsonValue op_ping(const ServeState& state) {
  JsonValue::Object result;
  result.emplace("protocol", kServeProtocolVersion);
  result.emplace("generation", state.generation);
  result.emplace("source", state.source);
  result.emplace("interfaces",
                 static_cast<std::uint64_t>(state.report.interfaces.size()));
  result.emplace("links",
                 static_cast<std::uint64_t>(state.report.links.size()));
  return JsonValue(std::move(result));
}

}  // namespace

std::shared_ptr<const ServeState> ServeState::from_report(
    CfsReport report, std::string source, std::uint64_t generation) {
  auto state = std::make_shared<ServeState>();
  state->report = std::move(report);
  state->report_json = report_to_json(state->report);
  state->source = std::move(source);
  state->generation = generation;
  const JsonValue::Array& interfaces =
      state->report_json.at("interfaces").as_array();
  for (std::size_t i = 0; i < interfaces.size(); ++i)
    state->interface_index.emplace(interfaces[i].at("address").as_string(),
                                   i);
  return state;
}

std::shared_ptr<const ServeState> ServeState::from_file(
    const std::string& path, std::uint64_t generation) {
  return from_report(report_from_json(load_json_file(path)), path,
                     generation);
}

JsonValue metrics_snapshot_json(const MetricsSnapshot& snap) {
  JsonValue::Object counters;
  for (const auto& [name, value] : snap.counters) counters.emplace(name, value);
  JsonValue::Object gauges;
  for (const auto& [name, value] : snap.gauges) gauges.emplace(name, value);
  JsonValue::Object timers;
  for (const auto& [name, timer] : snap.timers) {
    JsonValue::Object t;
    t.emplace("count", timer.count);
    t.emplace("total_ms", timer.total_ms);
    timers.emplace(name, std::move(t));
  }
  JsonValue::Object o;
  o.emplace("counters", std::move(counters));
  o.emplace("gauges", std::move(gauges));
  o.emplace("timers", std::move(timers));
  return JsonValue(std::move(o));
}

JsonValue handle_request(const JsonValue& request, ServeControl& control) {
  if (!request.is_object())
    return error_response(nullptr, "bad_request",
                          "request must be a JSON object");
  const JsonValue* id_field = request.find("id");
  const JsonValue id = id_field != nullptr ? *id_field : JsonValue(nullptr);
  const JsonValue* op_field = request.find("op");
  if (op_field == nullptr || !op_field->is_string())
    return error_response(id, "bad_request",
                          "request needs a string 'op' field");
  const std::string& op = op_field->as_string();

  TraceSpan span("serve.query");
  Trace::counter("serve.query." + op);
  // Pin one immutable snapshot for the whole request: a concurrent reload
  // swaps the daemon's pointer, never the world this query sees.
  const std::shared_ptr<const ServeState> state = control.state();
  try {
    if (op == "lookup") return ok_response(id, op, op_lookup(request, *state));
    if (op == "peers_at")
      return ok_response(id, op, op_peers_at(request, *state));
    if (op == "diff") return ok_response(id, op, op_diff(request, *state));
    if (op == "metrics") return ok_response(id, op, op_metrics(control, *state));
    if (op == "reload")
      return ok_response(id, op, op_reload(request, control, *state));
    if (op == "ping") return ok_response(id, op, op_ping(*state));
    if (op == "sleep" && control.debug_ops()) {
      // Deterministic slow handler for overload tests and the degraded
      // bench; invisible (unknown_op) unless the server opted in.
      const std::int64_t ms = int_param(request, "ms");
      if (ms < 0 || ms > 60'000)
        throw RequestError("bad_param", "'ms' must be in [0, 60000]");
      std::this_thread::sleep_for(std::chrono::milliseconds(ms));
      JsonValue::Object result;
      result.emplace("slept_ms", ms);
      result.emplace("generation", state->generation);
      return ok_response(id, op, JsonValue(std::move(result)));
    }
    if (op == "shutdown") {
      control.request_shutdown();
      JsonValue::Object result;
      result.emplace("stopping", true);
      return ok_response(id, op, JsonValue(std::move(result)));
    }
    return error_response(id, "unknown_op", "unknown op '" + op + "'");
  } catch (const RequestError& error) {
    return error_response(id, error.code, error.what());
  } catch (const std::exception& error) {
    return error_response(id, "internal", error.what());
  }
}

JsonValue handle_payload(const std::string& payload, ServeControl& control) {
  JsonValue request;
  try {
    request = parse_json(payload);
  } catch (const std::exception& error) {
    Trace::counter("serve.query.bad_json");
    return error_response(nullptr, "bad_json", error.what());
  }
  return handle_request(request, control);
}

}  // namespace cfs
