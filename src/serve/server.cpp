#include "serve/server.h"

#include <errno.h>
#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstring>
#include <deque>
#include <stdexcept>

#include "util/log.h"
#include "util/thread_pool.h"

namespace cfs {
namespace {

// Self-pipe signal plumbing. The handler may only touch lock-free
// atomics and call async-signal-safe functions, so it never dereferences
// the server: it raises a flag and writes one byte to wake the poll
// loop, which translates the flag into a drain.
std::atomic<int> g_signal_wake_fd{-1};
std::atomic<bool> g_signal_requested{false};

void drain_signal_handler(int) {
  g_signal_requested.store(true, std::memory_order_relaxed);
  const int fd = g_signal_wake_fd.load(std::memory_order_relaxed);
  if (fd >= 0) {
    const char byte = 's';
    [[maybe_unused]] const ssize_t n = write(fd, &byte, 1);
  }
}

// Keep reading ahead of the handler by a bounded amount: pipelined
// clients get concurrency, a firehose client cannot queue unbounded
// frames in daemon memory.
constexpr std::size_t kMaxInboxFrames = 64;

int set_nonblocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0) return -1;
  return fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

}  // namespace

struct Server::Connection {
  // A complete frame plus when it finished arriving: the request deadline
  // is measured from here to the moment the work would start.
  struct PendingFrame {
    Frame frame;
    Clock::time_point received;
  };

  std::uint64_t id = 0;
  int fd = -1;
  FrameDecoder decoder{kDefaultMaxFrameBytes};
  std::deque<PendingFrame> inbox;  // complete frames awaiting in-order handling
  std::string outbox;              // encoded responses awaiting the socket
  std::size_t outbox_offset = 0;
  bool busy = false;  // a worker is computing this connection's response
  bool eof = false;   // peer closed or the socket errored out
  bool dead = false;  // discard pending output, close as soon as !busy
  Clock::time_point last_activity;   // inbound bytes / delivered output
  Clock::time_point write_pending_since;  // outbox non-empty since (stall timer)

  explicit Connection(std::size_t max_frame) : decoder(max_frame) {}

  [[nodiscard]] bool flushed() const {
    return outbox_offset == outbox.size();
  }
};

Server::Server(ServeOptions options,
               std::shared_ptr<const ServeState> initial)
    : options_(std::move(options)),
      state_(std::move(initial)),
      metrics_baseline_(Trace::metrics()) {
  if (options_.socket_path.empty())
    throw std::invalid_argument("Server: empty socket path");
  if (state_ == nullptr)
    throw std::invalid_argument("Server: null initial state");
}

Server::~Server() {
  if (listen_fd_ >= 0) close(listen_fd_);
  if (wake_read_fd_ >= 0) close(wake_read_fd_);
  if (wake_write_fd_ >= 0) close(wake_write_fd_);
}

std::shared_ptr<const ServeState> Server::state() const {
  std::lock_guard<std::mutex> lock(state_mutex_);
  return state_;
}

void Server::swap_state(std::shared_ptr<const ServeState> next) {
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    state_ = std::move(next);
  }
  // In-flight queries keep the snapshot they pinned; only new dispatches
  // observe the swap. Nothing else to invalidate: ServeState is immutable.
}

void Server::request_shutdown() {
  draining_.store(true, std::memory_order_relaxed);
  wake();
}

MetricsSnapshot Server::exchange_metrics_baseline(
    const MetricsSnapshot& now) {
  std::lock_guard<std::mutex> lock(metrics_mutex_);
  MetricsSnapshot previous = std::move(metrics_baseline_);
  metrics_baseline_ = now;
  return previous;
}

int Server::resolved_threads() const {
  if (options_.threads > 0) return options_.threads;
  return static_cast<int>(ThreadPool::hardware_threads());
}

void Server::wake() {
  if (wake_write_fd_ < 0) return;
  const char byte = 'w';
  // A full pipe already guarantees a pending wake-up; EAGAIN is fine.
  [[maybe_unused]] const ssize_t n = write(wake_write_fd_, &byte, 1);
}

void Server::accept_clients() {
  for (;;) {
    const int fd = accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == ECONNABORTED)
        return;
      if (errno == EINTR) continue;
      log_warn() << "serve: accept failed: " << strerror(errno);
      return;
    }
    set_nonblocking(fd);
    if (options_.max_connections > 0 &&
        connections_.size() >= options_.max_connections) {
      // Load shedding at the front door: one structured rejection frame,
      // best-effort into the (empty, so almost always willing) socket
      // buffer, then close. The peer learns *why* instead of seeing a
      // silent RST; the daemon spends nothing on the connection.
      Trace::counter("serve.rejected");
      const std::string rejection = encode_frame(
          error_response(nullptr, "overloaded",
                         "connection limit of " +
                             std::to_string(options_.max_connections) +
                             " reached, try again later")
              .dump());
      [[maybe_unused]] const ssize_t n =
          send(fd, rejection.data(), rejection.size(),
               MSG_NOSIGNAL | MSG_DONTWAIT);
      close(fd);
      continue;
    }
    if (options_.send_buffer_bytes > 0)
      setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &options_.send_buffer_bytes,
                 sizeof(options_.send_buffer_bytes));
    auto conn = std::make_unique<Connection>(options_.max_frame_bytes);
    conn->id = next_connection_id_++;
    conn->fd = fd;
    conn->last_activity = Clock::now();
    connections_.push_back(std::move(conn));
    Trace::counter("serve.accept");
    Trace::gauge("serve.connections",
                 static_cast<double>(connections_.size()));
  }
}

void Server::read_client(Connection& conn) {
  char buffer[64 * 1024];
  for (;;) {
    const ssize_t n = recv(conn.fd, buffer, sizeof(buffer), 0);
    if (n > 0) {
      const auto now = Clock::now();
      conn.last_activity = now;
      conn.decoder.feed(buffer, static_cast<std::size_t>(n));
      while (auto frame = conn.decoder.next())
        conn.inbox.push_back({std::move(*frame), now});
      if (conn.inbox.size() >= kMaxInboxFrames) return;  // backpressure
      continue;
    }
    if (n == 0) {
      conn.eof = true;
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) return;
    if (errno == EINTR) continue;
    conn.eof = true;
    mark_dead(conn);
    return;
  }
}

void Server::queue_output(Connection& conn, std::string_view encoded) {
  if (conn.dead) return;
  if (conn.flushed()) {
    // Fresh output: re-arm the write-stall timer. (An outbox that already
    // has pending bytes keeps its original mark — progress, not appends,
    // is what resets it.)
    conn.write_pending_since = Clock::now();
    conn.outbox.clear();
    conn.outbox_offset = 0;
  }
  conn.outbox += encoded;
}

void Server::mark_dead(Connection& conn) {
  if (conn.dead) return;
  conn.dead = true;
  // The peer is gone: every queued request and every undelivered byte is
  // now work nobody will read. Count what gets discarded so operators can
  // see cancellation (and tests can assert it), then drop it all.
  std::size_t cancelled = conn.inbox.size() + (conn.busy ? 1u : 0u);
  conn.inbox.clear();
  conn.outbox.clear();
  conn.outbox_offset = 0;
  if (cancelled > 0) Trace::counter("serve.cancelled", cancelled);
}

namespace {

// Structured shed answer for a request that blew its deadline while
// queued. The payload is parsed only far enough to echo the request id —
// that is the whole point of shedding: no real work for a stale answer.
std::string shed_frame(const std::string& payload, int deadline_ms) {
  JsonValue id{nullptr};
  try {
    const JsonValue request = parse_json(payload);
    if (const JsonValue* found = request.find("id")) id = *found;
  } catch (const std::exception&) {
    // Not JSON: shed anyway, with a null id.
  }
  return encode_frame(
      error_response(id, "deadline_exceeded",
                     "request waited longer than the " +
                         std::to_string(deadline_ms) +
                         " ms deadline and was shed")
          .dump());
}

}  // namespace

void Server::dispatch(Connection& conn, std::string payload,
                      Clock::time_point received) {
  const std::uint64_t conn_id = conn.id;
  const int deadline_ms = options_.request_deadline_ms;
  conn.busy = true;
  pool_->submit([this, conn_id, deadline_ms, received,
                 payload = std::move(payload)] {
    std::string encoded;
    try {
      // Second shed gate: the frame made it out of the connection's inbox
      // in time, but the pool's queue can also back up under load. Check
      // again at the moment the work would actually start.
      if (deadline_ms > 0 &&
          Clock::now() - received >= std::chrono::milliseconds(deadline_ms)) {
        Trace::counter("serve.shed");
        encoded = shed_frame(payload, deadline_ms);
      } else {
        encoded = encode_frame(handle_payload(payload, *this).dump());
      }
    } catch (const std::exception& error) {
      // handle_payload answers its own failures; this catches the truly
      // unexpected (encoding limits, bad_alloc) so the connection is
      // never left busy forever.
      encoded = encode_frame(
          error_response(nullptr, "internal", error.what()).dump());
    }
    {
      std::lock_guard<std::mutex> lock(completions_mutex_);
      completions_.emplace_back(conn_id, std::move(encoded));
    }
    wake();
  });
}

void Server::pump(Connection& conn) {
  // Strictly in order, one in-flight request per connection: protocol
  // errors are answered inline, payloads go to the pool. A payload whose
  // deadline already expired while it sat behind earlier requests is shed
  // in place — still in order, still answered, never computed.
  while (!conn.busy && !conn.dead && !conn.inbox.empty()) {
    auto [frame, received] = std::move(conn.inbox.front());
    conn.inbox.pop_front();
    switch (frame.kind) {
      case Frame::Kind::Empty: {
        Trace::counter("serve.frame.empty");
        queue_output(conn,
                     encode_frame(error_response(nullptr, "empty_frame",
                                                 "zero-length frame")
                                      .dump()));
        break;
      }
      case Frame::Kind::Oversized: {
        Trace::counter("serve.frame.oversized");
        queue_output(
            conn,
            encode_frame(
                error_response(nullptr, "frame_too_large",
                               "frame of " +
                                   std::to_string(frame.declared_bytes) +
                                   " bytes exceeds the " +
                                   std::to_string(options_.max_frame_bytes) +
                                   "-byte limit")
                    .dump()));
        break;
      }
      case Frame::Kind::Payload: {
        const int deadline_ms = options_.request_deadline_ms;
        if (deadline_ms > 0 && Clock::now() - received >=
                                   std::chrono::milliseconds(deadline_ms)) {
          Trace::counter("serve.shed");
          queue_output(conn, shed_frame(frame.payload, deadline_ms));
          break;
        }
        dispatch(conn, std::move(frame.payload), received);
        break;
      }
    }
  }
}

void Server::deliver_completions() {
  std::vector<std::pair<std::uint64_t, std::string>> batch;
  {
    std::lock_guard<std::mutex> lock(completions_mutex_);
    batch.swap(completions_);
  }
  for (auto& [conn_id, encoded] : batch) {
    for (auto& conn : connections_) {
      if (conn->id != conn_id) continue;
      conn->busy = false;
      if (!conn->dead) {
        // Delivering a response is activity for the idle timer: a client
        // that just got its answer has earned a fresh quiet period.
        conn->last_activity = Clock::now();
        queue_output(*conn, encoded);
        pump(*conn);
      }
      // A dead connection's completion is silently discarded — the
      // cancellation was already counted when the peer vanished.
      break;
    }
  }
}

int Server::enforce_timeouts() {
  const bool idle_on = options_.idle_timeout_ms > 0;
  const bool stall_on = options_.write_stall_timeout_ms > 0;
  if (!idle_on && !stall_on) return -1;
  const auto now = Clock::now();
  int next_ms = -1;
  // Expired timers kill the connection; armed-but-not-expired timers bid
  // for the poll timeout so the loop wakes exactly when the nearest one
  // would fire.
  const auto expired = [&](Clock::time_point armed_at, int budget_ms) {
    const auto elapsed =
        std::chrono::duration_cast<std::chrono::milliseconds>(now - armed_at)
            .count();
    if (elapsed >= budget_ms) return true;
    const int remain = budget_ms - static_cast<int>(elapsed);
    if (next_ms < 0 || remain < next_ms) next_ms = remain;
    return false;
  };
  for (auto& conn : connections_) {
    if (conn->dead) continue;
    if (idle_on && !conn->eof && !conn->busy && conn->inbox.empty() &&
        conn->flushed()) {
      // Fully quiet in both directions: the idle clock runs.
      if (expired(conn->last_activity, options_.idle_timeout_ms)) {
        Trace::counter("serve.timeouts");
        Trace::counter("serve.timeouts.idle");
        mark_dead(*conn);
        conn->eof = true;
        continue;
      }
    }
    if (stall_on && !conn->flushed()) {
      // Output pending and the peer is not draining it: slow-loris guard.
      if (expired(conn->write_pending_since,
                  options_.write_stall_timeout_ms)) {
        Trace::counter("serve.timeouts");
        Trace::counter("serve.timeouts.write_stall");
        mark_dead(*conn);
        conn->eof = true;
      }
    }
  }
  return next_ms;
}

int Server::run() {
  if (ran_) throw std::logic_error("Server::run called twice");
  ran_ = true;

  // --- socket setup ---
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (options_.socket_path.size() >= sizeof(addr.sun_path))
    throw std::runtime_error("socket path too long: " + options_.socket_path);
  std::strncpy(addr.sun_path, options_.socket_path.c_str(),
               sizeof(addr.sun_path) - 1);

  listen_fd_ = socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0)
    throw std::runtime_error(std::string("socket: ") + strerror(errno));
  set_nonblocking(listen_fd_);
  unlink(options_.socket_path.c_str());  // stale socket from a prior run
  if (bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
           sizeof(addr)) < 0)
    throw std::runtime_error("bind " + options_.socket_path + ": " +
                             strerror(errno));
  if (listen(listen_fd_, 64) < 0)
    throw std::runtime_error(std::string("listen: ") + strerror(errno));

  int wake_fds[2];
  if (pipe(wake_fds) < 0)
    throw std::runtime_error(std::string("pipe: ") + strerror(errno));
  wake_read_fd_ = wake_fds[0];
  wake_write_fd_ = wake_fds[1];
  set_nonblocking(wake_read_fd_);
  set_nonblocking(wake_write_fd_);

  // --- signal plumbing ---
  struct sigaction old_int {};
  struct sigaction old_term {};
  struct sigaction old_pipe {};
  if (options_.install_signal_handlers) {
    g_signal_requested.store(false);
    g_signal_wake_fd.store(wake_write_fd_);
    struct sigaction drain {};
    drain.sa_handler = drain_signal_handler;
    sigemptyset(&drain.sa_mask);
    sigaction(SIGINT, &drain, &old_int);
    sigaction(SIGTERM, &drain, &old_term);
    struct sigaction ignore {};
    ignore.sa_handler = SIG_IGN;
    sigemptyset(&ignore.sa_mask);
    sigaction(SIGPIPE, &ignore, &old_pipe);
  }

  pool_ = std::make_unique<ThreadPool>(
      static_cast<std::size_t>(resolved_threads()));
  {
    std::lock_guard<std::mutex> lock(metrics_mutex_);
    metrics_baseline_ = Trace::metrics();  // window 0 starts at serve time
  }

  bool listener_open = true;
  std::vector<pollfd> fds;
  for (;;) {
    if (options_.install_signal_handlers &&
        g_signal_requested.load(std::memory_order_relaxed))
      draining_.store(true, std::memory_order_relaxed);
    const bool draining = draining_.load(std::memory_order_relaxed);

    if (draining && listener_open) {
      close(listen_fd_);
      listen_fd_ = -1;
      listener_open = false;
    }

    // Expire idle / write-stalled connections first: anything the timers
    // kill is erased below in the same iteration. The return value is the
    // poll timeout to the nearest still-armed timer.
    const int timer_ms = enforce_timeouts();

    // Close everything that has nothing left to do. While draining, an
    // open-but-idle connection no longer keeps the daemon alive.
    std::erase_if(connections_, [&](const std::unique_ptr<Connection>& c) {
      if (c->busy) return false;  // a completion still references it
      const bool finished = c->inbox.empty() && c->flushed();
      const bool closable = c->dead || (finished && (c->eof || draining));
      if (!closable) return false;
      close(c->fd);
      return true;
    });
    Trace::gauge("serve.connections",
                 static_cast<double>(connections_.size()));
    if (draining && connections_.empty()) break;

    fds.clear();
    fds.push_back({wake_read_fd_, POLLIN, 0});
    if (listener_open) fds.push_back({listen_fd_, POLLIN, 0});
    const std::size_t first_conn = fds.size();
    for (const auto& conn : connections_) {
      short events = 0;
      if (!conn->eof && !draining && conn->inbox.size() < kMaxInboxFrames)
        events |= POLLIN;
      if (!conn->flushed() && !conn->dead) events |= POLLOUT;
      fds.push_back({conn->fd, events, 0});
    }

    if (poll(fds.data(), fds.size(), timer_ms) < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error(std::string("poll: ") + strerror(errno));
    }

    if (fds[0].revents & POLLIN) {
      char scratch[256];
      while (read(wake_read_fd_, scratch, sizeof(scratch)) > 0) {
      }
    }
    deliver_completions();

    if (listener_open && (fds[first_conn - 1].revents & POLLIN))
      accept_clients();

    // Snapshot the fd->connection pairing before I/O: handlers never
    // touch connections_, only this loop mutates it, so indices hold.
    for (std::size_t i = first_conn; i < fds.size(); ++i) {
      Connection& conn = *connections_[i - first_conn];
      if (fds[i].revents & (POLLIN | POLLHUP | POLLERR)) {
        if (!conn.eof) read_client(conn);
        pump(conn);
      }
      if ((fds[i].revents & POLLOUT) && !conn.dead && !conn.flushed()) {
        while (conn.outbox_offset < conn.outbox.size()) {
          const ssize_t n =
              send(conn.fd, conn.outbox.data() + conn.outbox_offset,
                   conn.outbox.size() - conn.outbox_offset, MSG_NOSIGNAL);
          if (n > 0) {
            conn.outbox_offset += static_cast<std::size_t>(n);
            // Forward progress re-arms the write-stall timer: only a peer
            // that accepts *nothing* for the whole budget is cut.
            conn.write_pending_since = Clock::now();
            continue;
          }
          if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
          if (n < 0 && errno == EINTR) continue;
          mark_dead(conn);  // EPIPE/ECONNRESET: peer is gone
          conn.eof = true;
          break;
        }
        if (conn.flushed()) {
          conn.outbox.clear();
          conn.outbox_offset = 0;
        }
      }
    }
  }

  // --- drain the worker pool: reject stragglers, wait for quiescence ---
  pool_->stop_accepting();
  pool_->drain();
  pool_.reset();

  if (options_.install_signal_handlers) {
    g_signal_wake_fd.store(-1);
    sigaction(SIGINT, &old_int, nullptr);
    sigaction(SIGTERM, &old_term, nullptr);
    sigaction(SIGPIPE, &old_pipe, nullptr);
  }

  close(wake_read_fd_);
  close(wake_write_fd_);
  wake_read_fd_ = -1;
  wake_write_fd_ = -1;
  if (listen_fd_ >= 0) {
    close(listen_fd_);
    listen_fd_ = -1;
  }
  unlink(options_.socket_path.c_str());
  return 0;
}

}  // namespace cfs
