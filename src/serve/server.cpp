#include "serve/server.h"

#include <errno.h>
#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstring>
#include <deque>
#include <stdexcept>

#include "util/log.h"
#include "util/thread_pool.h"

namespace cfs {
namespace {

// Self-pipe signal plumbing. The handler may only touch lock-free
// atomics and call async-signal-safe functions, so it never dereferences
// the server: it raises a flag and writes one byte to wake the poll
// loop, which translates the flag into a drain.
std::atomic<int> g_signal_wake_fd{-1};
std::atomic<bool> g_signal_requested{false};

void drain_signal_handler(int) {
  g_signal_requested.store(true, std::memory_order_relaxed);
  const int fd = g_signal_wake_fd.load(std::memory_order_relaxed);
  if (fd >= 0) {
    const char byte = 's';
    [[maybe_unused]] const ssize_t n = write(fd, &byte, 1);
  }
}

// Keep reading ahead of the handler by a bounded amount: pipelined
// clients get concurrency, a firehose client cannot queue unbounded
// frames in daemon memory.
constexpr std::size_t kMaxInboxFrames = 64;

int set_nonblocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0) return -1;
  return fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

}  // namespace

struct Server::Connection {
  std::uint64_t id = 0;
  int fd = -1;
  FrameDecoder decoder{kDefaultMaxFrameBytes};
  std::deque<Frame> inbox;  // complete frames awaiting in-order handling
  std::string outbox;       // encoded responses awaiting the socket
  std::size_t outbox_offset = 0;
  bool busy = false;  // a worker is computing this connection's response
  bool eof = false;   // peer closed or the socket errored out
  bool dead = false;  // discard pending output, close as soon as !busy

  explicit Connection(std::size_t max_frame) : decoder(max_frame) {}

  [[nodiscard]] bool flushed() const {
    return outbox_offset == outbox.size();
  }
};

Server::Server(ServeOptions options,
               std::shared_ptr<const ServeState> initial)
    : options_(std::move(options)),
      state_(std::move(initial)),
      metrics_baseline_(Trace::metrics()) {
  if (options_.socket_path.empty())
    throw std::invalid_argument("Server: empty socket path");
  if (state_ == nullptr)
    throw std::invalid_argument("Server: null initial state");
}

Server::~Server() {
  if (listen_fd_ >= 0) close(listen_fd_);
  if (wake_read_fd_ >= 0) close(wake_read_fd_);
  if (wake_write_fd_ >= 0) close(wake_write_fd_);
}

std::shared_ptr<const ServeState> Server::state() const {
  std::lock_guard<std::mutex> lock(state_mutex_);
  return state_;
}

void Server::swap_state(std::shared_ptr<const ServeState> next) {
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    state_ = std::move(next);
  }
  // In-flight queries keep the snapshot they pinned; only new dispatches
  // observe the swap. Nothing else to invalidate: ServeState is immutable.
}

void Server::request_shutdown() {
  draining_.store(true, std::memory_order_relaxed);
  wake();
}

MetricsSnapshot Server::exchange_metrics_baseline(
    const MetricsSnapshot& now) {
  std::lock_guard<std::mutex> lock(metrics_mutex_);
  MetricsSnapshot previous = std::move(metrics_baseline_);
  metrics_baseline_ = now;
  return previous;
}

int Server::resolved_threads() const {
  if (options_.threads > 0) return options_.threads;
  return static_cast<int>(ThreadPool::hardware_threads());
}

void Server::wake() {
  if (wake_write_fd_ < 0) return;
  const char byte = 'w';
  // A full pipe already guarantees a pending wake-up; EAGAIN is fine.
  [[maybe_unused]] const ssize_t n = write(wake_write_fd_, &byte, 1);
}

void Server::accept_clients() {
  for (;;) {
    const int fd = accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == ECONNABORTED)
        return;
      if (errno == EINTR) continue;
      log_warn() << "serve: accept failed: " << strerror(errno);
      return;
    }
    set_nonblocking(fd);
    auto conn = std::make_unique<Connection>(options_.max_frame_bytes);
    conn->id = next_connection_id_++;
    conn->fd = fd;
    connections_.push_back(std::move(conn));
    Trace::counter("serve.accept");
    Trace::gauge("serve.connections",
                 static_cast<double>(connections_.size()));
  }
}

void Server::read_client(Connection& conn) {
  char buffer[64 * 1024];
  for (;;) {
    const ssize_t n = recv(conn.fd, buffer, sizeof(buffer), 0);
    if (n > 0) {
      conn.decoder.feed(buffer, static_cast<std::size_t>(n));
      while (auto frame = conn.decoder.next())
        conn.inbox.push_back(std::move(*frame));
      if (conn.inbox.size() >= kMaxInboxFrames) return;  // backpressure
      continue;
    }
    if (n == 0) {
      conn.eof = true;
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) return;
    if (errno == EINTR) continue;
    conn.eof = true;
    conn.dead = true;
    return;
  }
}

void Server::dispatch(Connection& conn, std::string payload) {
  const std::uint64_t conn_id = conn.id;
  conn.busy = true;
  pool_->submit([this, conn_id, payload = std::move(payload)] {
    std::string encoded;
    try {
      encoded = encode_frame(handle_payload(payload, *this).dump());
    } catch (const std::exception& error) {
      // handle_payload answers its own failures; this catches the truly
      // unexpected (encoding limits, bad_alloc) so the connection is
      // never left busy forever.
      encoded = encode_frame(
          error_response(nullptr, "internal", error.what()).dump());
    }
    {
      std::lock_guard<std::mutex> lock(completions_mutex_);
      completions_.emplace_back(conn_id, std::move(encoded));
    }
    wake();
  });
}

void Server::pump(Connection& conn) {
  // Strictly in order, one in-flight request per connection: protocol
  // errors are answered inline, payloads go to the pool.
  while (!conn.busy && !conn.inbox.empty()) {
    Frame frame = std::move(conn.inbox.front());
    conn.inbox.pop_front();
    switch (frame.kind) {
      case Frame::Kind::Empty: {
        Trace::counter("serve.frame.empty");
        conn.outbox += encode_frame(
            error_response(nullptr, "empty_frame", "zero-length frame")
                .dump());
        break;
      }
      case Frame::Kind::Oversized: {
        Trace::counter("serve.frame.oversized");
        conn.outbox += encode_frame(
            error_response(nullptr, "frame_too_large",
                           "frame of " + std::to_string(frame.declared_bytes) +
                               " bytes exceeds the " +
                               std::to_string(options_.max_frame_bytes) +
                               "-byte limit")
                .dump());
        break;
      }
      case Frame::Kind::Payload:
        dispatch(conn, std::move(frame.payload));
        break;
    }
  }
}

void Server::deliver_completions() {
  std::vector<std::pair<std::uint64_t, std::string>> batch;
  {
    std::lock_guard<std::mutex> lock(completions_mutex_);
    batch.swap(completions_);
  }
  for (auto& [conn_id, encoded] : batch) {
    for (auto& conn : connections_) {
      if (conn->id != conn_id) continue;
      conn->busy = false;
      if (!conn->dead) {
        conn->outbox += encoded;
        pump(*conn);
      }
      break;
    }
  }
}

int Server::run() {
  if (ran_) throw std::logic_error("Server::run called twice");
  ran_ = true;

  // --- socket setup ---
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (options_.socket_path.size() >= sizeof(addr.sun_path))
    throw std::runtime_error("socket path too long: " + options_.socket_path);
  std::strncpy(addr.sun_path, options_.socket_path.c_str(),
               sizeof(addr.sun_path) - 1);

  listen_fd_ = socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0)
    throw std::runtime_error(std::string("socket: ") + strerror(errno));
  set_nonblocking(listen_fd_);
  unlink(options_.socket_path.c_str());  // stale socket from a prior run
  if (bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
           sizeof(addr)) < 0)
    throw std::runtime_error("bind " + options_.socket_path + ": " +
                             strerror(errno));
  if (listen(listen_fd_, 64) < 0)
    throw std::runtime_error(std::string("listen: ") + strerror(errno));

  int wake_fds[2];
  if (pipe(wake_fds) < 0)
    throw std::runtime_error(std::string("pipe: ") + strerror(errno));
  wake_read_fd_ = wake_fds[0];
  wake_write_fd_ = wake_fds[1];
  set_nonblocking(wake_read_fd_);
  set_nonblocking(wake_write_fd_);

  // --- signal plumbing ---
  struct sigaction old_int {};
  struct sigaction old_term {};
  struct sigaction old_pipe {};
  if (options_.install_signal_handlers) {
    g_signal_requested.store(false);
    g_signal_wake_fd.store(wake_write_fd_);
    struct sigaction drain {};
    drain.sa_handler = drain_signal_handler;
    sigemptyset(&drain.sa_mask);
    sigaction(SIGINT, &drain, &old_int);
    sigaction(SIGTERM, &drain, &old_term);
    struct sigaction ignore {};
    ignore.sa_handler = SIG_IGN;
    sigemptyset(&ignore.sa_mask);
    sigaction(SIGPIPE, &ignore, &old_pipe);
  }

  pool_ = std::make_unique<ThreadPool>(
      static_cast<std::size_t>(resolved_threads()));
  {
    std::lock_guard<std::mutex> lock(metrics_mutex_);
    metrics_baseline_ = Trace::metrics();  // window 0 starts at serve time
  }

  bool listener_open = true;
  std::vector<pollfd> fds;
  for (;;) {
    if (options_.install_signal_handlers &&
        g_signal_requested.load(std::memory_order_relaxed))
      draining_.store(true, std::memory_order_relaxed);
    const bool draining = draining_.load(std::memory_order_relaxed);

    if (draining && listener_open) {
      close(listen_fd_);
      listen_fd_ = -1;
      listener_open = false;
    }

    // Close everything that has nothing left to do. While draining, an
    // open-but-idle connection no longer keeps the daemon alive.
    std::erase_if(connections_, [&](const std::unique_ptr<Connection>& c) {
      if (c->busy) return false;  // a completion still references it
      const bool finished = c->inbox.empty() && c->flushed();
      const bool closable = c->dead || (finished && (c->eof || draining));
      if (!closable) return false;
      close(c->fd);
      return true;
    });
    Trace::gauge("serve.connections",
                 static_cast<double>(connections_.size()));
    if (draining && connections_.empty()) break;

    fds.clear();
    fds.push_back({wake_read_fd_, POLLIN, 0});
    if (listener_open) fds.push_back({listen_fd_, POLLIN, 0});
    const std::size_t first_conn = fds.size();
    for (const auto& conn : connections_) {
      short events = 0;
      if (!conn->eof && !draining && conn->inbox.size() < kMaxInboxFrames)
        events |= POLLIN;
      if (!conn->flushed() && !conn->dead) events |= POLLOUT;
      fds.push_back({conn->fd, events, 0});
    }

    if (poll(fds.data(), fds.size(), -1) < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error(std::string("poll: ") + strerror(errno));
    }

    if (fds[0].revents & POLLIN) {
      char scratch[256];
      while (read(wake_read_fd_, scratch, sizeof(scratch)) > 0) {
      }
    }
    deliver_completions();

    if (listener_open && (fds[first_conn - 1].revents & POLLIN))
      accept_clients();

    // Snapshot the fd->connection pairing before I/O: handlers never
    // touch connections_, only this loop mutates it, so indices hold.
    for (std::size_t i = first_conn; i < fds.size(); ++i) {
      Connection& conn = *connections_[i - first_conn];
      if (fds[i].revents & (POLLIN | POLLHUP | POLLERR)) {
        if (!conn.eof) read_client(conn);
        pump(conn);
      }
      if ((fds[i].revents & POLLOUT) && !conn.dead && !conn.flushed()) {
        while (conn.outbox_offset < conn.outbox.size()) {
          const ssize_t n =
              send(conn.fd, conn.outbox.data() + conn.outbox_offset,
                   conn.outbox.size() - conn.outbox_offset, MSG_NOSIGNAL);
          if (n > 0) {
            conn.outbox_offset += static_cast<std::size_t>(n);
            continue;
          }
          if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
          if (n < 0 && errno == EINTR) continue;
          conn.dead = true;  // EPIPE/ECONNRESET: peer is gone
          conn.eof = true;
          break;
        }
        if (conn.flushed()) {
          conn.outbox.clear();
          conn.outbox_offset = 0;
        }
      }
    }
  }

  // --- drain the worker pool: reject stragglers, wait for quiescence ---
  pool_->stop_accepting();
  pool_->drain();
  pool_.reset();

  if (options_.install_signal_handlers) {
    g_signal_wake_fd.store(-1);
    sigaction(SIGINT, &old_int, nullptr);
    sigaction(SIGTERM, &old_term, nullptr);
    sigaction(SIGPIPE, &old_pipe, nullptr);
  }

  close(wake_read_fd_);
  close(wake_write_fd_);
  wake_read_fd_ = -1;
  wake_write_fd_ = -1;
  if (listen_fd_ >= 0) {
    close(listen_fd_);
    listen_fd_ = -1;
  }
  unlink(options_.socket_path.c_str());
  return 0;
}

}  // namespace cfs
