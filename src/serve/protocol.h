// Framed-JSON wire protocol for the resident inference service.
//
// A connection is a byte stream of frames; every frame is a 4-byte
// big-endian unsigned payload length followed by exactly that many bytes
// of UTF-8 JSON. Requests and responses use the same framing in both
// directions (docs/SERVE.md has the full spec).
//
// Request:   {"op": "lookup", "id": 7, ...op parameters...}
// Response:  {"id": 7, "ok": true,  "op": "lookup", "result": {...}}
//       or:  {"id": 7, "ok": false, "error": {"code": "...", "message": "..."}}
//
// Malformed input is answered, not dropped: a zero-length frame, an
// oversized frame (declared length past the configured cap) and a
// payload that fails to parse as JSON each produce a structured error
// response on the same connection, which stays usable for the next
// frame. The decoder is incremental — it accepts bytes in arbitrary
// splits (partial headers, frames spread over many reads, several frames
// in one read) and skips oversized payloads without buffering them.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <string_view>

#include "io/json.h"

namespace cfs {

inline constexpr std::uint32_t kServeProtocolVersion = 1;
// Default cap on a single frame's payload. Large enough for any query or
// response this protocol defines at paper scale, small enough that a
// corrupt length prefix cannot make the daemon buffer gigabytes.
inline constexpr std::size_t kDefaultMaxFrameBytes = 8u << 20;

// Frame header: 4-byte big-endian payload length.
inline constexpr std::size_t kFrameHeaderBytes = 4;

[[nodiscard]] std::string encode_frame(std::string_view payload);

struct Frame {
  enum class Kind {
    Payload,    // complete payload, ready to parse
    Empty,      // zero-length frame: protocol error, answered in place
    Oversized,  // declared length exceeds the cap; payload was skipped
  };
  Kind kind = Kind::Payload;
  std::string payload;               // Kind::Payload only
  std::uint32_t declared_bytes = 0;  // Kind::Oversized: announced length
};

// Incremental frame reassembly with bounded memory: at most one partial
// payload (<= max_frame_bytes) is buffered; oversized payloads are
// consumed and discarded byte-by-byte while the error frame is surfaced
// immediately, so the connection survives them.
class FrameDecoder {
 public:
  explicit FrameDecoder(std::size_t max_frame_bytes = kDefaultMaxFrameBytes);

  void feed(const char* data, std::size_t size);
  void feed(std::string_view bytes) { feed(bytes.data(), bytes.size()); }

  // Next complete frame in arrival order, or nullopt when more bytes are
  // needed.
  [[nodiscard]] std::optional<Frame> next();

  // True when no partial frame is pending (a clean point to close).
  [[nodiscard]] bool idle() const;

  [[nodiscard]] std::size_t max_frame_bytes() const { return max_frame_; }

 private:
  void scan();

  std::size_t max_frame_;
  std::string buffer_;        // unconsumed stream bytes
  std::size_t consumed_ = 0;  // prefix of buffer_ already parsed
  std::uint64_t skip_remaining_ = 0;  // oversized payload bytes to discard
  std::deque<Frame> ready_;
};

// --- response builders (shared by server, handlers and tests) ---

// `id` is echoed verbatim from the request; pass JsonValue(nullptr) when
// the request never parsed far enough to have one.
[[nodiscard]] JsonValue ok_response(const JsonValue& id, std::string_view op,
                                    JsonValue result);
[[nodiscard]] JsonValue error_response(const JsonValue& id,
                                       std::string_view code,
                                       std::string_view message);

}  // namespace cfs
