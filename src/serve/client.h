// Minimal blocking client for the serve protocol (docs/SERVE.md): used by
// `cfs query`, the serve integration tests and bench_serve_throughput.
// One connection, synchronous request/response; the raw byte entry points
// exist so tests can speak the framing layer directly (partial writes,
// zero-length and oversized frames).
//
// By default every operation blocks forever (the daemon is trusted to
// answer). set_timeout_ms() bounds each phase — connect, send, read —
// independently; a blown deadline throws ClientTimeoutError, distinct
// from std::runtime_error so callers (`cfs query --timeout-ms`) can tell
// "the daemon is stalled" (exit 5) from "the transport broke" (exit 4).
#pragma once

#include <chrono>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>

#include "io/json.h"
#include "serve/protocol.h"

namespace cfs {

// A deadline expired while waiting on the daemon. The connection is in an
// indeterminate state afterwards (a response may still be in flight);
// callers should close rather than reuse it.
class ClientTimeoutError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class ServeClient {
 public:
  ServeClient() = default;
  ~ServeClient();

  ServeClient(const ServeClient&) = delete;
  ServeClient& operator=(const ServeClient&) = delete;

  // Connects to the daemon's Unix socket; throws std::runtime_error on
  // failure (daemon not running, wrong path).
  void connect(const std::string& socket_path);
  [[nodiscard]] bool connected() const { return fd_ >= 0; }
  void close();

  // Per-phase deadline in milliseconds for connect / send / read; 0 (the
  // default) blocks forever. Applies to connections made after the call.
  void set_timeout_ms(int ms) { timeout_ms_ = ms > 0 ? ms : 0; }
  [[nodiscard]] int timeout_ms() const { return timeout_ms_; }

  // Sends one request and blocks for its response. Throws on transport
  // failure; protocol-level failures come back as {"ok": false} documents.
  [[nodiscard]] JsonValue request(const JsonValue& doc);

  // --- framing-layer access for tests ---
  void send_bytes(std::string_view bytes);
  // Blocks until one complete frame arrives; nullopt on orderly EOF.
  [[nodiscard]] std::optional<JsonValue> read_response();

 private:
  using Clock = std::chrono::steady_clock;

  // Now + timeout, or time_point::max() when timeouts are off.
  [[nodiscard]] Clock::time_point deadline() const;
  // Waits for `events` (POLLIN/POLLOUT) until the deadline; throws
  // ClientTimeoutError naming `what` when it passes.
  void wait_io(short events, Clock::time_point until, const char* what);

  int fd_ = -1;
  int timeout_ms_ = 0;
  // Responses can exceed the request-side cap (peers_at at paper scale);
  // the client is the trusted side, so it accepts larger frames.
  FrameDecoder decoder_{64u << 20};
};

}  // namespace cfs
