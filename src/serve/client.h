// Minimal blocking client for the serve protocol (docs/SERVE.md): used by
// `cfs query`, the serve integration tests and bench_serve_throughput.
// One connection, synchronous request/response; the raw byte entry points
// exist so tests can speak the framing layer directly (partial writes,
// zero-length and oversized frames).
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "io/json.h"
#include "serve/protocol.h"

namespace cfs {

class ServeClient {
 public:
  ServeClient() = default;
  ~ServeClient();

  ServeClient(const ServeClient&) = delete;
  ServeClient& operator=(const ServeClient&) = delete;

  // Connects to the daemon's Unix socket; throws std::runtime_error on
  // failure (daemon not running, wrong path).
  void connect(const std::string& socket_path);
  [[nodiscard]] bool connected() const { return fd_ >= 0; }
  void close();

  // Sends one request and blocks for its response. Throws on transport
  // failure; protocol-level failures come back as {"ok": false} documents.
  [[nodiscard]] JsonValue request(const JsonValue& doc);

  // --- framing-layer access for tests ---
  void send_bytes(std::string_view bytes);
  // Blocks until one complete frame arrives; nullopt on orderly EOF.
  [[nodiscard]] std::optional<JsonValue> read_response();

 private:
  int fd_ = -1;
  // Responses can exceed the request-side cap (peers_at at paper scale);
  // the client is the trusted side, so it accepts larger frames.
  FrameDecoder decoder_{64u << 20};
};

}  // namespace cfs
