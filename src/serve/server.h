// Resident inference daemon: a Unix-domain-socket control plane over an
// immutable, swappable ServeState.
//
// Architecture (docs/SERVE.md): one poll(2) loop owns every file
// descriptor — the listener, a self-pipe, and all accepted connections —
// and is the only thread that reads or writes sockets. Complete request
// frames are dispatched onto the worker pool (util/thread_pool.h); a
// worker parses, handles and serialises the response, then posts the
// encoded bytes back to the loop through a completion queue plus a
// self-pipe wake-up. Per connection at most one request is in flight at
// a time, so pipelined requests are answered strictly in order while
// different connections proceed fully in parallel (the concurrent query
// plane). The split mirrors slash2's ctlsvr control-socket daemons:
// control I/O single-threaded, work fanned out.
//
// Shutdown (`shutdown` op, SIGINT or SIGTERM) is a drain, not an abort:
// the listener closes, frames already received are still answered,
// outboxes flush, then connections close, the pool stops accepting and
// quiesces (stop_accepting + drain), and run() returns.
//
// Overload control (docs/SERVE.md "Overload and degradation policy"):
// every limit is off by default and independently configurable. A full
// house rejects new connections at accept with a structured `overloaded`
// frame; a silent peer is closed after `idle_timeout_ms`; a peer that
// stops reading its responses is cut after `write_stall_timeout_ms`
// (slow-loris); and a request that waited longer than
// `request_deadline_ms` before its turn to run is shed with a
// `deadline_exceeded` error instead of computing a stale answer. All of
// it is visible in the registry: serve.rejected, serve.timeouts{.idle,
// .write_stall}, serve.shed, serve.cancelled.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "serve/handlers.h"
#include "serve/protocol.h"

namespace cfs {

class ThreadPool;

struct ServeOptions {
  std::string socket_path;
  // Worker threads for query handling; 0 = hardware concurrency.
  int threads = 0;
  std::size_t max_frame_bytes = kDefaultMaxFrameBytes;
  // Daemons want SIGINT/SIGTERM to drain; in-process test servers must
  // leave the test runner's handlers alone.
  bool install_signal_handlers = true;

  // --- overload control (0 = disabled, for every knob) ---
  // Connection cap: an accept beyond this is answered with one structured
  // `overloaded` error frame and closed (counter serve.rejected).
  std::size_t max_connections = 0;
  // A connection with nothing pending in either direction for this long
  // is closed (counters serve.timeouts, serve.timeouts.idle).
  int idle_timeout_ms = 0;
  // A connection whose outbox made no forward progress for this long —
  // the peer stopped reading — is closed and its pending output dropped
  // (counters serve.timeouts, serve.timeouts.write_stall).
  int write_stall_timeout_ms = 0;
  // A request that waited longer than this between arrival and the moment
  // it would start computing is answered `deadline_exceeded` instead
  // (counter serve.shed). Applies both to frames queued behind an earlier
  // request on the same connection and to work queued in the pool.
  int request_deadline_ms = 0;
  // SO_SNDBUF for accepted sockets; lets tests and the chaos harness make
  // write-stall conditions reproducible with small payloads.
  int send_buffer_bytes = 0;
  // Enables test-only ops (`sleep`) that make slow handlers deterministic
  // in overload tests and the degraded-mode bench. Never on in `cfs serve`.
  bool debug_ops = false;
};

class Server : public ServeControl {
 public:
  Server(ServeOptions options, std::shared_ptr<const ServeState> initial);
  ~Server() override;

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // Binds, listens and serves until a drain completes. Returns 0 on a
  // clean drain; throws std::runtime_error if the socket cannot be set
  // up. Call at most once.
  int run();

  // --- ServeControl (callable from any worker) ---
  [[nodiscard]] std::shared_ptr<const ServeState> state() const override;
  void swap_state(std::shared_ptr<const ServeState> next) override;
  void request_shutdown() override;
  MetricsSnapshot exchange_metrics_baseline(
      const MetricsSnapshot& now) override;
  [[nodiscard]] bool debug_ops() const override {
    return options_.debug_ops;
  }

  [[nodiscard]] const std::string& socket_path() const {
    return options_.socket_path;
  }
  [[nodiscard]] int resolved_threads() const;

 private:
  struct Connection;
  using Clock = std::chrono::steady_clock;

  void accept_clients();
  void read_client(Connection& conn);
  void pump(Connection& conn);
  void dispatch(Connection& conn, std::string payload, Clock::time_point received);
  void deliver_completions();
  void wake();
  // Append encoded response bytes, arming the write-stall timer when the
  // outbox transitions from empty.
  void queue_output(Connection& conn, std::string_view encoded);
  // Close-on-sight bookkeeping: discard pending input/output and count
  // any requests that will now never be answered (serve.cancelled).
  void mark_dead(Connection& conn);
  // Enforce idle / write-stall expiries; returns the poll timeout (ms)
  // until the nearest pending expiry, or -1 when no timer is armed.
  int enforce_timeouts();

  ServeOptions options_;

  mutable std::mutex state_mutex_;
  std::shared_ptr<const ServeState> state_;

  std::mutex metrics_mutex_;
  MetricsSnapshot metrics_baseline_;

  std::unique_ptr<ThreadPool> pool_;
  int listen_fd_ = -1;
  int wake_read_fd_ = -1;
  int wake_write_fd_ = -1;
  std::atomic<bool> draining_{false};
  bool ran_ = false;

  // Completions posted by workers, drained by the poll loop.
  std::mutex completions_mutex_;
  std::vector<std::pair<std::uint64_t, std::string>> completions_;

  std::vector<std::unique_ptr<Connection>> connections_;
  std::uint64_t next_connection_id_ = 1;
};

}  // namespace cfs
