// Facility-level resilience analytics (the paper's motivating application:
// assessing interconnection resilience against facility outages, natural
// disasters, and attacks — Section 1).
//
// Works on the *inferred* map (a CfsReport), answering what an operator
// with no ground-truth access could answer: which buildings concentrate
// interconnections, and which AS pairs have no inferred alternative if a
// given building goes dark.
#pragma once

#include <map>
#include <set>

#include "core/report.h"
#include "topology/topology.h"

namespace cfs {

struct FacilityCriticality {
  FacilityId facility;
  std::size_t interconnections = 0;  // located links terminating here
  std::size_t as_pairs = 0;          // distinct AS pairs among them
  std::size_t single_homed_pairs = 0;  // pairs with no other inferred site
};

class ResilienceAnalyzer {
 public:
  ResilienceAnalyzer(const Topology& topo, const CfsReport& report);

  // All facilities hosting located interconnections, most critical first
  // (by single-homed pairs, then interconnection count).
  [[nodiscard]] std::vector<FacilityCriticality> criticality_ranking() const;

  // AS pairs that would lose their only inferred interconnection if the
  // facility failed.
  [[nodiscard]] std::vector<std::pair<Asn, Asn>> single_homed_pairs(
      FacilityId facility) const;

  // Number of distinct facilities where the pair interconnects (inferred).
  [[nodiscard]] std::size_t pair_site_count(Asn a, Asn b) const;

 private:
  static std::uint64_t pair_key(Asn a, Asn b);

  const Topology& topo_;
  // facility -> set of AS-pair keys located there
  std::map<std::uint32_t, std::set<std::uint64_t>> pairs_at_;
  // facility -> located link count
  std::map<std::uint32_t, std::size_t> links_at_;
  // AS-pair key -> set of facilities
  std::map<std::uint64_t, std::set<std::uint32_t>> sites_of_;
};

}  // namespace cfs
