#include "analysis/diff.h"

#include <algorithm>
#include <map>

namespace cfs {

ReportDiff diff_reports(const CfsReport& before, const CfsReport& after) {
  ReportDiff out;

  for (const auto& [addr, inf] : after.interfaces) {
    const InterfaceInference* old = before.find(addr);
    const bool was_resolved = old != nullptr && old->resolved();
    if (inf.resolved() && !was_resolved) out.newly_resolved.push_back(addr);
    if (inf.resolved() && was_resolved && inf.facility() != old->facility())
      out.moved.push_back(ReportDiff::Moved{addr, old->facility(),
                                            inf.facility()});
  }
  for (const auto& [addr, inf] : before.interfaces) {
    if (!inf.resolved()) continue;
    const InterfaceInference* now = after.find(addr);
    if (now == nullptr || !now->resolved()) out.lost.push_back(addr);
  }

  std::map<std::pair<Ipv4, Ipv4>, InterconnectionType> old_links;
  for (const LinkInference& link : before.links)
    old_links.emplace(std::make_pair(link.obs.near_addr, link.obs.far_addr),
                      link.type);
  std::map<std::pair<Ipv4, Ipv4>, InterconnectionType> new_links;
  for (const LinkInference& link : after.links)
    new_links.emplace(std::make_pair(link.obs.near_addr, link.obs.far_addr),
                      link.type);

  for (const auto& [key, type] : new_links) {
    const auto it = old_links.find(key);
    if (it == old_links.end())
      out.new_links.push_back(key);
    else if (it->second != type)
      out.retyped.push_back(
          ReportDiff::Retyped{key.first, key.second, it->second, type});
  }
  for (const auto& [key, type] : old_links)
    if (!new_links.contains(key)) out.gone_links.push_back(key);

  std::sort(out.newly_resolved.begin(), out.newly_resolved.end());
  std::sort(out.lost.begin(), out.lost.end());
  std::sort(out.moved.begin(), out.moved.end(),
            [](const ReportDiff::Moved& a, const ReportDiff::Moved& b) {
              return a.addr < b.addr;
            });
  // new_links / gone_links / retyped inherit std::map ordering.
  return out;
}

}  // namespace cfs
