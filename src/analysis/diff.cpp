#include "analysis/diff.h"

#include <algorithm>
#include <map>
#include <ostream>

namespace cfs {

ReportDiff diff_reports(const CfsReport& before, const CfsReport& after) {
  ReportDiff out;

  for (const auto& [addr, inf] : after.interfaces) {
    const InterfaceInference* old = before.find(addr);
    const bool was_resolved = old != nullptr && old->resolved();
    if (inf.resolved() && !was_resolved) out.newly_resolved.push_back(addr);
    if (inf.resolved() && was_resolved && inf.facility() != old->facility())
      out.moved.push_back(ReportDiff::Moved{addr, old->facility(),
                                            inf.facility()});
  }
  for (const auto& [addr, inf] : before.interfaces) {
    if (!inf.resolved()) continue;
    const InterfaceInference* now = after.find(addr);
    if (now == nullptr || !now->resolved()) out.lost.push_back(addr);
  }

  std::map<std::pair<Ipv4, Ipv4>, InterconnectionType> old_links;
  for (const LinkInference& link : before.links)
    old_links.emplace(std::make_pair(link.obs.near_addr, link.obs.far_addr),
                      link.type);
  std::map<std::pair<Ipv4, Ipv4>, InterconnectionType> new_links;
  for (const LinkInference& link : after.links)
    new_links.emplace(std::make_pair(link.obs.near_addr, link.obs.far_addr),
                      link.type);

  for (const auto& [key, type] : new_links) {
    const auto it = old_links.find(key);
    if (it == old_links.end())
      out.new_links.push_back(key);
    else if (it->second != type)
      out.retyped.push_back(
          ReportDiff::Retyped{key.first, key.second, it->second, type});
  }
  for (const auto& [key, type] : old_links)
    if (!new_links.contains(key)) out.gone_links.push_back(key);

  std::sort(out.newly_resolved.begin(), out.newly_resolved.end());
  std::sort(out.lost.begin(), out.lost.end());
  std::sort(out.moved.begin(), out.moved.end(),
            [](const ReportDiff::Moved& a, const ReportDiff::Moved& b) {
              return a.addr < b.addr;
            });
  // new_links / gone_links / retyped inherit std::map ordering.
  return out;
}

namespace {

// Bounded compact rendering of a value for diff messages: a 4000-element
// array difference should name the path, not paste both arrays.
std::string render(const JsonValue& v) {
  std::string text = v.dump();
  constexpr std::size_t limit = 64;
  if (text.size() > limit) {
    text.resize(limit);
    text += "...";
  }
  return text;
}

const char* type_name(const JsonValue& v) {
  if (v.is_null()) return "null";
  if (v.is_bool()) return "bool";
  if (v.is_number()) return "number";
  if (v.is_string()) return "string";
  if (v.is_array()) return "array";
  return "object";
}

struct DiffWalker {
  const JsonDiffOptions& options;
  JsonDiff out;

  bool ignored(const std::string& path) const {
    for (const std::string& prefix : options.ignore_prefixes) {
      if (path == prefix) return true;
      if (path.size() > prefix.size() && !prefix.empty() &&
          path.compare(0, prefix.size(), prefix) == 0 &&
          path[prefix.size()] == '/')
        return true;
    }
    return false;
  }

  void record(const std::string& path, JsonDiffEntry::Kind kind,
              std::string left, std::string right) {
    ++out.total;
    if (out.entries.size() >= options.max_entries) return;
    out.entries.push_back(
        JsonDiffEntry{path, kind, std::move(left), std::move(right)});
  }

  void walk(const std::string& path, const JsonValue& left,
            const JsonValue& right) {
    if (ignored(path)) return;
    if (left == right) return;

    const bool same_type =
        (left.is_object() && right.is_object()) ||
        (left.is_array() && right.is_array()) ||
        (left.is_string() && right.is_string()) ||
        (left.is_number() && right.is_number()) ||
        (left.is_bool() && right.is_bool()) ||
        (left.is_null() && right.is_null());
    if (!same_type) {
      record(path, JsonDiffEntry::Kind::TypeMismatch,
             std::string(type_name(left)) + " " + render(left),
             std::string(type_name(right)) + " " + render(right));
      return;
    }

    if (left.is_object()) {
      const auto& lo = left.as_object();
      const auto& ro = right.as_object();
      // std::map keeps keys sorted, so merging the two key sequences walks
      // every key once, in deterministic order.
      auto li = lo.begin();
      auto ri = ro.begin();
      while (li != lo.end() || ri != ro.end()) {
        if (ri == ro.end() || (li != lo.end() && li->first < ri->first)) {
          const std::string child = path + "/" + li->first;
          if (!ignored(child))
            record(child, JsonDiffEntry::Kind::Missing, render(li->second),
                   "(absent)");
          ++li;
        } else if (li == lo.end() || ri->first < li->first) {
          const std::string child = path + "/" + ri->first;
          if (!ignored(child))
            record(child, JsonDiffEntry::Kind::Extra, "(absent)",
                   render(ri->second));
          ++ri;
        } else {
          walk(path + "/" + li->first, li->second, ri->second);
          ++li;
          ++ri;
        }
      }
      return;
    }

    if (left.is_array()) {
      const auto& la = left.as_array();
      const auto& ra = right.as_array();
      const std::size_t common = std::min(la.size(), ra.size());
      for (std::size_t i = 0; i < common; ++i)
        walk(path + "/" + std::to_string(i), la[i], ra[i]);
      for (std::size_t i = common; i < la.size(); ++i) {
        const std::string child = path + "/" + std::to_string(i);
        if (!ignored(child))
          record(child, JsonDiffEntry::Kind::Missing, render(la[i]),
                 "(absent)");
      }
      for (std::size_t i = common; i < ra.size(); ++i) {
        const std::string child = path + "/" + std::to_string(i);
        if (!ignored(child))
          record(child, JsonDiffEntry::Kind::Extra, "(absent)",
                 render(ra[i]));
      }
      return;
    }

    // Same scalar type, different value.
    record(path, JsonDiffEntry::Kind::ValueMismatch, render(left),
           render(right));
  }
};

}  // namespace

const char* json_diff_kind_name(JsonDiffEntry::Kind kind) {
  switch (kind) {
    case JsonDiffEntry::Kind::Missing:
      return "missing on right";
    case JsonDiffEntry::Kind::Extra:
      return "extra on right";
    case JsonDiffEntry::Kind::TypeMismatch:
      return "type mismatch";
    case JsonDiffEntry::Kind::ValueMismatch:
      return "value mismatch";
  }
  return "unknown";
}

JsonDiff diff_json(const JsonValue& left, const JsonValue& right,
                   const JsonDiffOptions& options) {
  DiffWalker walker{options, {}};
  walker.walk("", left, right);
  return std::move(walker.out);
}

void print_json_diff(std::ostream& os, const JsonDiff& diff) {
  if (diff.empty()) {
    os << "identical\n";
    return;
  }
  os << "first divergent path: "
     << (diff.first_path().empty() ? "(root)" : diff.first_path()) << "\n";
  for (const JsonDiffEntry& entry : diff.entries) {
    os << "  " << (entry.path.empty() ? "(root)" : entry.path) << ": "
       << json_diff_kind_name(entry.kind) << ": " << entry.left << " -> "
       << entry.right << "\n";
  }
  if (diff.truncated())
    os << "  ... " << (diff.total - diff.entries.size())
       << " further difference(s) not shown\n";
  os << diff.total << " difference(s)\n";
}

}  // namespace cfs
