#include "analysis/resilience.h"

#include <algorithm>

namespace cfs {

std::uint64_t ResilienceAnalyzer::pair_key(Asn a, Asn b) {
  const auto [low, high] = std::minmax(a.value, b.value);
  return (std::uint64_t{low} << 32) | high;
}

ResilienceAnalyzer::ResilienceAnalyzer(const Topology& topo,
                                       const CfsReport& report)
    : topo_(topo) {
  for (const LinkInference& link : report.links) {
    if (!link.near_facility) continue;
    const std::uint64_t key = pair_key(link.obs.near_as, link.obs.far_as);
    const std::uint32_t fac = link.near_facility->value;
    pairs_at_[fac].insert(key);
    ++links_at_[fac];
    sites_of_[key].insert(fac);
    // A located far end is a second site for the pair.
    if (link.far_facility && *link.far_facility != *link.near_facility)
      sites_of_[key].insert(link.far_facility->value);
  }
}

std::vector<FacilityCriticality> ResilienceAnalyzer::criticality_ranking()
    const {
  std::vector<FacilityCriticality> out;
  for (const auto& [fac, pairs] : pairs_at_) {
    FacilityCriticality crit;
    crit.facility = FacilityId(fac);
    crit.interconnections = links_at_.at(fac);
    crit.as_pairs = pairs.size();
    for (const std::uint64_t key : pairs)
      crit.single_homed_pairs += sites_of_.at(key).size() == 1;
    out.push_back(crit);
  }
  std::sort(out.begin(), out.end(),
            [](const FacilityCriticality& a, const FacilityCriticality& b) {
              if (a.single_homed_pairs != b.single_homed_pairs)
                return a.single_homed_pairs > b.single_homed_pairs;
              if (a.interconnections != b.interconnections)
                return a.interconnections > b.interconnections;
              return a.facility < b.facility;
            });
  return out;
}

std::vector<std::pair<Asn, Asn>> ResilienceAnalyzer::single_homed_pairs(
    FacilityId facility) const {
  std::vector<std::pair<Asn, Asn>> out;
  const auto it = pairs_at_.find(facility.value);
  if (it == pairs_at_.end()) return out;
  for (const std::uint64_t key : it->second) {
    if (sites_of_.at(key).size() != 1) continue;
    out.emplace_back(Asn(static_cast<std::uint32_t>(key >> 32)),
                     Asn(static_cast<std::uint32_t>(key & 0xffffffff)));
  }
  return out;
}

std::size_t ResilienceAnalyzer::pair_site_count(Asn a, Asn b) const {
  const auto it = sites_of_.find(pair_key(a, b));
  return it == sites_of_.end() ? 0 : it->second.size();
}

}  // namespace cfs
