#include "analysis/footprint.h"

#include <algorithm>

namespace cfs {

void TypeTally::bump(InterconnectionType type) {
  switch (type) {
    case InterconnectionType::PublicLocal: ++public_local; break;
    case InterconnectionType::PublicRemote: ++public_remote; break;
    case InterconnectionType::PrivateCrossConnect: ++cross_connect; break;
    case InterconnectionType::PrivateTethering: ++tethering; break;
    case InterconnectionType::PrivateRemote: ++private_remote; break;
    case InterconnectionType::Unknown: break;
  }
}

std::size_t TypeTally::total() const {
  return public_local + public_remote + cross_connect + tethering +
         private_remote;
}

double TypeTally::public_share() const {
  const std::size_t all = total();
  return all == 0 ? 0.0 : static_cast<double>(public_total()) / all;
}

FootprintAnalyzer::FootprintAnalyzer(const Topology& topo,
                                     const CfsReport& report)
    : topo_(topo) {
  auto account = [&](Asn asn, InterconnectionType type,
                     const std::optional<FacilityId>& facility) {
    AsFootprint& fp = footprints_[asn.value];
    fp.asn = asn;
    fp.types.bump(type);
    if (facility) {
      ++fp.located;
      const MetroId metro = topo.metro_of(*facility);
      fp.by_metro[metro].bump(type);
      fp.by_region[topo.metro(metro).region].bump(type);
    } else {
      ++fp.unlocated;
    }
  };

  for (const LinkInference& link : report.links) {
    account(link.obs.near_as, link.type, link.near_facility);
    account(link.obs.far_as, link.type, link.far_facility);
  }
}

AsFootprint FootprintAnalyzer::footprint(Asn asn) const {
  const auto it = footprints_.find(asn.value);
  if (it == footprints_.end()) {
    AsFootprint empty;
    empty.asn = asn;
    return empty;
  }
  return it->second;
}

std::vector<Asn> FootprintAnalyzer::ranking() const {
  std::vector<const AsFootprint*> ordered;
  for (const auto& [asn, fp] : footprints_) ordered.push_back(&fp);
  std::sort(ordered.begin(), ordered.end(),
            [](const AsFootprint* a, const AsFootprint* b) {
              if (a->located != b->located) return a->located > b->located;
              return a->asn < b->asn;
            });
  std::vector<Asn> out;
  out.reserve(ordered.size());
  for (const AsFootprint* fp : ordered) out.push_back(fp->asn);
  return out;
}

}  // namespace cfs
