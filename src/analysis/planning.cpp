#include "analysis/planning.h"

#include <algorithm>

namespace cfs {

PeeringPlanner::PeeringPlanner(const Topology& topo,
                               const FacilityDatabase& db,
                               const CfsReport& report)
    : topo_(topo), db_(db) {
  auto note = [&](const std::optional<FacilityId>& facility, Asn asn) {
    if (facility) present_[facility->value].insert(asn.value);
  };
  for (const LinkInference& link : report.links) {
    note(link.near_facility, link.obs.near_as);
    note(link.far_facility, link.obs.far_as);
  }
  for (const auto& ixp : topo.ixps())
    for (const FacilityId fac : db.ixp_facilities(ixp.id))
      ++ixp_count_[fac.value];
}

std::vector<FacilityScore> PeeringPlanner::rank_for(
    const std::vector<Asn>& desired_peers,
    const std::vector<FacilityId>& exclude) const {
  std::set<std::uint32_t> wanted;
  for (const Asn asn : desired_peers) wanted.insert(asn.value);
  std::set<std::uint32_t> excluded;
  for (const FacilityId fac : exclude) excluded.insert(fac.value);

  std::vector<FacilityScore> out;
  for (const auto& [fac, networks] : present_) {
    if (excluded.contains(fac)) continue;
    FacilityScore score;
    score.facility = FacilityId(fac);
    for (const std::uint32_t asn : networks)
      score.peer_candidates += wanted.contains(asn);
    const auto it = ixp_count_.find(fac);
    score.ixps_reachable = it == ixp_count_.end() ? 0 : it->second;
    if (score.peer_candidates == 0) continue;
    // Peers reachable dominate; exchange presence is the tie-breaking
    // multiplier (one port reaches many members).
    score.score = static_cast<double>(score.peer_candidates) +
                  0.25 * static_cast<double>(score.ixps_reachable);
    out.push_back(score);
  }
  std::sort(out.begin(), out.end(),
            [](const FacilityScore& a, const FacilityScore& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.facility < b.facility;
            });
  return out;
}

std::vector<Asn> PeeringPlanner::networks_at(FacilityId facility) const {
  std::vector<Asn> out;
  const auto it = present_.find(facility.value);
  if (it == present_.end()) return out;
  for (const std::uint32_t asn : it->second) out.emplace_back(asn);
  return out;
}

}  // namespace cfs
