// Peering-decision support (the paper's final motivating application:
// "inform peering decisions in a competitive interconnection market").
//
// Given the inferred interconnection map, rank candidate facilities for a
// network planning expansion: a building scores by how many of the ASes it
// wants to reach have interconnections located there, and by the exchanges
// reachable from it (one port, many peers — Section 2's public-peering
// economics).
#pragma once

#include <map>
#include <set>

#include "core/report.h"
#include "data/facility_db.h"
#include "topology/topology.h"

namespace cfs {

struct FacilityScore {
  FacilityId facility;
  std::size_t peer_candidates = 0;  // distinct desired ASes located there
  std::size_t ixps_reachable = 0;   // exchanges with an access switch there
  double score = 0.0;
};

class PeeringPlanner {
 public:
  // Uses only inference output and the public facility database — the
  // information an outside network actually has.
  PeeringPlanner(const Topology& topo, const FacilityDatabase& db,
                 const CfsReport& report);

  // Ranks facilities for reaching the given networks. `exclude` removes
  // buildings the planner is already present at. Highest score first.
  [[nodiscard]] std::vector<FacilityScore> rank_for(
      const std::vector<Asn>& desired_peers,
      const std::vector<FacilityId>& exclude = {}) const;

  // ASes with at least one located interconnection at the facility.
  [[nodiscard]] std::vector<Asn> networks_at(FacilityId facility) const;

 private:
  const Topology& topo_;
  const FacilityDatabase& db_;
  // facility -> ASes with located interconnections there (inferred).
  std::map<std::uint32_t, std::set<std::uint32_t>> present_;
  // facility -> IXP count (from the public database).
  std::map<std::uint32_t, std::size_t> ixp_count_;
};

}  // namespace cfs
