// Peering-footprint analytics over a CfsReport.
//
// Aggregates the per-link inferences into the per-AS summaries the paper's
// Section 5 discusses: how many peering interfaces a network operates,
// over which engineering options, in which metros and regions — the
// "peering strategy" view that separates CDNs (public-fabric heavy) from
// Tier-1 backbones (private-interconnect heavy).
#pragma once

#include <map>

#include "core/report.h"
#include "topology/topology.h"

namespace cfs {

struct TypeTally {
  std::size_t public_local = 0;
  std::size_t public_remote = 0;
  std::size_t cross_connect = 0;
  std::size_t tethering = 0;
  std::size_t private_remote = 0;

  void bump(InterconnectionType type);
  [[nodiscard]] std::size_t total() const;
  [[nodiscard]] std::size_t public_total() const {
    return public_local + public_remote;
  }
  [[nodiscard]] std::size_t private_total() const {
    return cross_connect + tethering + private_remote;
  }
  // Fraction of interconnections riding public IXP fabric (0 when empty).
  [[nodiscard]] double public_share() const;
};

struct AsFootprint {
  Asn asn;
  TypeTally types;                        // global tally
  std::map<MetroId, TypeTally> by_metro;  // located interconnections only
  std::map<Region, TypeTally> by_region;
  std::size_t located = 0;    // links with an inferred facility
  std::size_t unlocated = 0;  // observed but not pinned to a building

  [[nodiscard]] std::size_t metros() const { return by_metro.size(); }
};

class FootprintAnalyzer {
 public:
  FootprintAnalyzer(const Topology& topo, const CfsReport& report);

  // Footprint of one AS (empty tallies when it never appears).
  [[nodiscard]] AsFootprint footprint(Asn asn) const;

  // Every AS observed on the near or far side of a crossing, keyed by ASN.
  [[nodiscard]] const std::map<std::uint32_t, AsFootprint>& all() const {
    return footprints_;
  }

  // ASes ranked by located interconnection count (descending).
  [[nodiscard]] std::vector<Asn> ranking() const;

 private:
  const Topology& topo_;
  std::map<std::uint32_t, AsFootprint> footprints_;
};

}  // namespace cfs
