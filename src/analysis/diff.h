// Longitudinal report comparison.
//
// The paper's dataset is maintained over time ("we continue to maintain to
// keep current"); comparing two inference runs answers the operational
// questions that follow: which interfaces became resolvable, which moved
// buildings (re-homed equipment or corrected data), which crossings
// appeared or disappeared.
#pragma once

#include "core/report.h"

namespace cfs {

struct ReportDiff {
  // Interfaces resolved in the newer report but not the older one.
  std::vector<Ipv4> newly_resolved;
  // Resolved in the older report, no longer resolved.
  std::vector<Ipv4> lost;
  // Resolved in both but to different facilities: (addr, old, new).
  struct Moved {
    Ipv4 addr;
    FacilityId before;
    FacilityId after;
  };
  std::vector<Moved> moved;
  // Crossings (near, far address pairs) present only in one report.
  std::vector<std::pair<Ipv4, Ipv4>> new_links;
  std::vector<std::pair<Ipv4, Ipv4>> gone_links;
  // Links present in both whose inferred type changed.
  struct Retyped {
    Ipv4 near_addr;
    Ipv4 far_addr;
    InterconnectionType before;
    InterconnectionType after;
  };
  std::vector<Retyped> retyped;

  [[nodiscard]] bool empty() const {
    return newly_resolved.empty() && lost.empty() && moved.empty() &&
           new_links.empty() && gone_links.empty() && retyped.empty();
  }
};

// Compares `after` against `before`; all vectors sorted deterministically.
[[nodiscard]] ReportDiff diff_reports(const CfsReport& before,
                                      const CfsReport& after);

}  // namespace cfs
