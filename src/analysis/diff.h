// Longitudinal report comparison and structured JSON diffing.
//
// The paper's dataset is maintained over time ("we continue to maintain to
// keep current"); comparing two inference runs answers the operational
// questions that follow: which interfaces became resolvable, which moved
// buildings (re-homed equipment or corrected data), which crossings
// appeared or disappeared.
//
// The second half of this header is the differential-testing primitive:
// a path-addressed diff over arbitrary exported JSON documents (topologies
// and reports both serialise canonically, src/io/export.cpp), used by the
// `cfs diff` subcommand and by every cfs_fuzz oracle to name the first
// divergent path when two execution paths that must agree do not.
#pragma once

#include <iosfwd>

#include "core/report.h"
#include "io/json.h"

namespace cfs {

struct ReportDiff {
  // Interfaces resolved in the newer report but not the older one.
  std::vector<Ipv4> newly_resolved;
  // Resolved in the older report, no longer resolved.
  std::vector<Ipv4> lost;
  // Resolved in both but to different facilities: (addr, old, new).
  struct Moved {
    Ipv4 addr;
    FacilityId before;
    FacilityId after;
  };
  std::vector<Moved> moved;
  // Crossings (near, far address pairs) present only in one report.
  std::vector<std::pair<Ipv4, Ipv4>> new_links;
  std::vector<std::pair<Ipv4, Ipv4>> gone_links;
  // Links present in both whose inferred type changed.
  struct Retyped {
    Ipv4 near_addr;
    Ipv4 far_addr;
    InterconnectionType before;
    InterconnectionType after;
  };
  std::vector<Retyped> retyped;

  [[nodiscard]] bool empty() const {
    return newly_resolved.empty() && lost.empty() && moved.empty() &&
           new_links.empty() && gone_links.empty() && retyped.empty();
  }
};

// Compares `after` against `before`; all vectors sorted deterministically.
[[nodiscard]] ReportDiff diff_reports(const CfsReport& before,
                                      const CfsReport& after);

// --- structured, path-addressed JSON diff ---

struct JsonDiffOptions {
  // Differences reported in full; everything past this is only counted.
  std::size_t max_entries = 32;
  // JSON-pointer-style path prefixes to skip entirely (subtree granularity),
  // e.g. "/metrics" cuts the wall-clock subtree when comparing two runs of
  // the same experiment.
  std::vector<std::string> ignore_prefixes;
};

struct JsonDiffEntry {
  enum class Kind {
    Missing,        // present on the left only
    Extra,          // present on the right only
    TypeMismatch,   // both present, different JSON types
    ValueMismatch,  // both present, same scalar type, different value
  };
  std::string path;  // "/links/2/type"; "" addresses the document root
  Kind kind = Kind::ValueMismatch;
  std::string left;   // bounded compact rendering; "(absent)" when missing
  std::string right;
};

[[nodiscard]] const char* json_diff_kind_name(JsonDiffEntry::Kind kind);

struct JsonDiff {
  // Document-order differences, capped at JsonDiffOptions::max_entries.
  std::vector<JsonDiffEntry> entries;
  // Every difference found, including ones past the cap. Subtrees under a
  // Missing/Extra/TypeMismatch node count once, not per leaf.
  std::size_t total = 0;

  [[nodiscard]] bool empty() const { return total == 0; }
  [[nodiscard]] bool truncated() const { return total > entries.size(); }
  // The first divergent path in document order; "" when identical.
  [[nodiscard]] std::string first_path() const {
    return entries.empty() ? std::string() : entries.front().path;
  }
};

// Structural comparison of two documents. Object keys compare in sorted
// (std::map) order, arrays index-wise, so the walk — and therefore
// first_path() — is deterministic. Paths do not escape '/' or '~' in keys
// (exported documents only use identifier-like keys).
[[nodiscard]] JsonDiff diff_json(const JsonValue& left, const JsonValue& right,
                                 const JsonDiffOptions& options = {});

// Human-readable rendering used by `cfs diff` (one line per entry, then a
// summary line); golden-tested in tools/CMakeLists.txt.
void print_json_diff(std::ostream& os, const JsonDiff& diff);

}  // namespace cfs
