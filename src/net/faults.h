// Centralized fault-injection plane for the measurement substrate.
//
// The paper's campaign ran against infrastructure that fails in ways the
// simulator's benign noise model (per-hop loss, jitter) never exercises:
// looking glasses go offline or ban bursty clients (the Section 3.2
// etiquette exists because they do), Atlas-style vantage points churn
// mid-campaign, probes time out rather than vanish, and the public data
// sources are stale or partially missing at snapshot time. FaultPlan
// describes such a failure schedule; FaultPlane executes it
// deterministically from a single seed so a faulted experiment replays
// byte-for-byte.
//
// Per-entity decisions (which LG has an outage, when a VP dies) are pure
// hashes of (seed, entity id), independent of query order; only rate-limit
// ban bookkeeping and probe-timeout draws carry state, and both advance in
// the deterministic order the campaign executes. A zero-intensity plan is
// the identity: every query path is guarded so no RNG draw is consumed and
// no behaviour changes (Pipeline does not even construct a FaultPlane).
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <unordered_map>
#include <vector>

#include "util/ids.h"
#include "util/rng.h"

namespace cfs {

// Mitigation parameters: how the campaign responds to injected faults.
// Only consulted on fault paths, so values are inert without a plan.
struct RetryPolicy {
  int max_retries = 2;                  // extra attempts per failed probe
  double backoff_base_s = 5.0;          // first retry delay (virtual time)
  double backoff_multiplier = 2.0;      // exponential growth per retry
  double backoff_jitter_fraction = 0.25;  // uniform extra delay, de-syncs retries
  int circuit_threshold = 3;            // consecutive LG failures to open
  double circuit_reset_s = 1800.0;      // open -> half-open after this long
};

struct FaultPlan {
  // Looking-glass outages: each LG independently suffers one offline
  // window, starting uniformly within the horizon.
  double lg_outage_fraction = 0.0;
  double lg_outage_start_horizon_s = 3600.0;
  double lg_outage_duration_s = 1800.0;

  // Hard rate-limit bans: more than lg_ban_burst queries to one LG within
  // the window trips a ban for lg_ban_duration_s. 0 disables.
  int lg_ban_burst = 0;
  double lg_ban_window_s = 300.0;
  double lg_ban_duration_s = 3600.0;

  // Vantage-point churn: each non-LG VP independently dies at a uniform
  // instant within the horizon; its remaining probes fail for good.
  double vp_churn_fraction = 0.0;
  double vp_churn_horizon_s = 7200.0;

  // Probe timeouts, distinct from loss: the hop existed and the probe was
  // sent, but no reply arrived within the timer.
  double probe_timeout_rate = 0.0;

  // Data-source degradation at snapshot time: fraction of records withheld
  // from the assembled facility database / reverse DNS / geolocation.
  double peeringdb_withheld = 0.0;
  double dns_withheld = 0.0;
  double geoip_withheld = 0.0;

  RetryPolicy retry;
  std::uint64_t seed = 0;  // mixed with the pipeline seed

  // True when any fault intensity is non-zero; a plan that fails this is
  // the identity and costs nothing.
  [[nodiscard]] bool any() const;
};

// Measurement-plane attrition and mitigation accounting. Filled by
// MeasurementCampaign (and the data-source degradation pass), snapshotted
// onto CfsMetrics so reports show what the fault plane did. Invariant:
//   traces_attempted == traces_kept + traces_unreachable
//                       + probes_abandoned + probes_skipped_open_circuit.
struct FaultMetrics {
  std::size_t traces_attempted = 0;
  std::size_t traces_kept = 0;
  std::size_t traces_unreachable = 0;  // completed but empty (dropped)
  std::size_t retries = 0;             // backoff re-attempts performed
  std::size_t failovers = 0;           // work moved to a same-metro VP
  std::size_t circuits_opened = 0;     // LG breakers tripped (incl. re-opens)
  std::size_t probes_abandoned = 0;    // retried out / VP dead, no failover
  std::size_t probes_skipped_open_circuit = 0;
  std::size_t probe_timeouts = 0;      // hops that timed out (engine-side)
  std::size_t lg_bans = 0;             // rate-limit bans tripped
  std::size_t records_withheld = 0;    // data-source records withheld

  // Wall-clock time the campaign spent executing (real time, not virtual
  // campaign seconds). Excluded from equality: two runs that did identical
  // work at different speeds are the same experiment.
  double wall_ms = 0.0;

  friend bool operator==(const FaultMetrics& a, const FaultMetrics& b) {
    return a.traces_attempted == b.traces_attempted &&
           a.traces_kept == b.traces_kept &&
           a.traces_unreachable == b.traces_unreachable &&
           a.retries == b.retries && a.failovers == b.failovers &&
           a.circuits_opened == b.circuits_opened &&
           a.probes_abandoned == b.probes_abandoned &&
           a.probes_skipped_open_circuit == b.probes_skipped_open_circuit &&
           a.probe_timeouts == b.probe_timeouts && a.lg_bans == b.lg_bans &&
           a.records_withheld == b.records_withheld;
  }
};

class FaultPlane {
 public:
  FaultPlane(const FaultPlan& plan, std::uint64_t seed);

  [[nodiscard]] const FaultPlan& plan() const { return plan_; }
  // Mixed seed, for consumers needing their own derived stream (backoff
  // jitter) without touching the plane's RNG state.
  [[nodiscard]] std::uint64_t seed() const { return seed_; }

  // Scheduled outage window check for a looking glass (by hosting router).
  [[nodiscard]] bool lg_offline(RouterId lg, double now_s) const;

  // Currently serving a rate-limit ban?
  [[nodiscard]] bool lg_banned(RouterId lg, double now_s) const;

  // Burst bookkeeping for an executed query; trips a ban when the window
  // budget is exceeded. Call once per actual LG query, in virtual-time
  // order (the campaign clock is monotonic).
  void record_lg_query(RouterId lg, double now_s);

  // Has this (non-LG) vantage point died by now?
  [[nodiscard]] bool vp_dead(VantagePointId vp, double now_s) const;
  // Scheduled death instant, or a negative value when the VP never churns.
  [[nodiscard]] double vp_death_s(VantagePointId vp) const;

  // Per-probe timeout draw. Consumes a random draw only when the rate is
  // positive, so a zero-rate plane never perturbs anything.
  [[nodiscard]] bool probe_times_out();

  // Stateless variant for seeded traces: draws from a caller-held stream
  // instead of the plane's sequential RNG, so parallel workers can evaluate
  // timeouts for disjoint traces without sharing state.
  [[nodiscard]] bool probe_times_out(Rng& rng) const;

  // Mint the per-trace timeout stream for a seeded trace. Pure: equal
  // (plane seed, stream) always yields the same Rng, and the plane's own
  // sequential timeout_rng_ is untouched.
  [[nodiscard]] Rng timeout_stream(std::uint64_t stream) const;

  // Snapshot-time degradation decision for a data-source record, keyed by
  // an arbitrary stable id; pure hash, order-independent.
  [[nodiscard]] bool withhold_record(double fraction, std::uint64_t record_key) const;

  [[nodiscard]] std::size_t bans_tripped() const { return bans_tripped_; }

 private:
  struct BanState {
    std::vector<double> recent;  // query times inside the burst window
    double banned_until = -1.0;
  };

  [[nodiscard]] std::uint64_t mix(std::uint64_t id, std::uint64_t salt) const;
  [[nodiscard]] double frac(std::uint64_t id, std::uint64_t salt) const;

  FaultPlan plan_;
  std::uint64_t seed_;
  Rng timeout_rng_;
  std::unordered_map<std::uint32_t, BanState> bans_;
  std::size_t bans_tripped_ = 0;
};

// --- transport chaos plane ------------------------------------------------
//
// Where FaultPlan degrades the *measurement* substrate, SocketFaultPlan
// degrades the *serve transport*: the byte stream between a client and the
// resident daemon (src/serve/). The schedule is consumed client-side — a
// misbehaving test client asks the plane how to deliver each request — so
// the daemon under test sees real torn frames, dribbled bytes, stalled
// reads and mid-request disconnects on a real socket. Decisions are pure
// hashes of (seed, connection, request ordinal), independent of wall
// clock and of what the daemon does, so a chaos soak replays exactly.
struct SocketFaultPlan {
  // Fraction of requests whose frame is written one byte per send().
  double byte_write_fraction = 0.0;
  // Fraction of requests whose frame is torn: a strict prefix is written,
  // then the connection closes. No response is owed for a torn request.
  double torn_frame_fraction = 0.0;
  // Fraction of requests fully written whose client vanishes before
  // reading the response (mid-request disconnect: the answer is in flight
  // or computing when the peer goes away).
  double disconnect_fraction = 0.0;
  // Fraction of requests with a stall (virtual slow sender) injected
  // before one of the write chunks, and how long it lasts.
  double stall_fraction = 0.0;
  double stall_ms = 20.0;
  // Fraction of requests where the client delays *reading* the response
  // (slow-loris receiver) by stall_ms.
  double read_stall_fraction = 0.0;
  std::uint64_t seed = 0;

  [[nodiscard]] bool any() const;
};

// Delivery schedule for one request frame: a partition of its bytes into
// send() chunks plus the misbehaviour to act out around them.
struct SocketWritePlan {
  static constexpr std::size_t kNoTruncate =
      std::numeric_limits<std::size_t>::max();

  std::vector<std::size_t> chunks;  // partition of the frame (sums to size,
                                    // or to truncate_at when torn)
  // Torn frame: stop after this many bytes and close. kNoTruncate = whole.
  std::size_t truncate_at = kNoTruncate;
  int stall_before_chunk = -1;  // sleep stall_ms before this chunk; -1 none
  double stall_ms = 0.0;
  bool disconnect_before_read = false;  // close instead of reading the reply
  double read_stall_ms = 0.0;           // delay before reading the reply

  [[nodiscard]] bool torn() const { return truncate_at != kNoTruncate; }
  // True when the daemon owes (and the client will read) a response.
  [[nodiscard]] bool expects_response() const {
    return !torn() && !disconnect_before_read;
  }
};

class SocketFaultPlane {
 public:
  SocketFaultPlane(const SocketFaultPlan& plan, std::uint64_t seed);

  [[nodiscard]] const SocketFaultPlan& plan() const { return plan_; }
  [[nodiscard]] std::uint64_t seed() const { return seed_; }

  // The delivery schedule for request `request` on connection `conn` whose
  // encoded frame is `frame_bytes` long. Pure: equal (plane seed, conn,
  // request, frame_bytes) always yields the same plan, so schedules can be
  // minted from any thread in any order. A zero-intensity plan yields the
  // identity schedule: one chunk, no stall, no truncation, no disconnect.
  [[nodiscard]] SocketWritePlan write_plan(std::uint64_t conn,
                                           std::uint64_t request,
                                           std::size_t frame_bytes) const;

 private:
  [[nodiscard]] double frac(std::uint64_t conn, std::uint64_t request,
                            std::uint64_t salt) const;

  SocketFaultPlan plan_;
  std::uint64_t seed_;
};

}  // namespace cfs
