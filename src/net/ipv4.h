// IPv4 address and prefix value types.
//
// The simulator allocates address space to ASes, IXP peering LANs and
// point-to-point links out of a flat 32-bit space, exactly like the real
// Internet; the inference side then only ever sees addresses and must map
// them back through the (noisy) IP-to-ASN service.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>

namespace cfs {

class Ipv4 {
 public:
  constexpr Ipv4() = default;
  constexpr explicit Ipv4(std::uint32_t value) : value_(value) {}

  [[nodiscard]] constexpr std::uint32_t value() const { return value_; }

  [[nodiscard]] std::string to_string() const;
  static std::optional<Ipv4> parse(std::string_view text);

  friend constexpr auto operator<=>(Ipv4, Ipv4) = default;

 private:
  std::uint32_t value_ = 0;
};

class Prefix {
 public:
  constexpr Prefix() = default;

  // Canonicalises: host bits below the mask are zeroed.
  constexpr Prefix(Ipv4 network, int length)
      : network_(mask(length) & network.value()), length_(length) {}

  [[nodiscard]] constexpr Ipv4 network() const { return Ipv4(network_); }
  [[nodiscard]] constexpr int length() const { return length_; }

  [[nodiscard]] constexpr bool contains(Ipv4 addr) const {
    return (addr.value() & mask(length_)) == network_;
  }

  [[nodiscard]] constexpr bool contains(const Prefix& other) const {
    return other.length_ >= length_ && contains(other.network());
  }

  // Number of addresses covered by the prefix.
  [[nodiscard]] constexpr std::uint64_t size() const {
    return std::uint64_t{1} << (32 - length_);
  }

  // Address at offset within the prefix (offset < size()).
  [[nodiscard]] constexpr Ipv4 at(std::uint64_t offset) const {
    return Ipv4(network_ + static_cast<std::uint32_t>(offset));
  }

  [[nodiscard]] std::string to_string() const;
  static std::optional<Prefix> parse(std::string_view text);

  friend constexpr auto operator<=>(const Prefix&, const Prefix&) = default;

  static constexpr std::uint32_t mask(int length) {
    return length == 0 ? 0u : ~std::uint32_t{0} << (32 - length);
  }

 private:
  std::uint32_t network_ = 0;
  int length_ = 0;
};

}  // namespace cfs

namespace std {

template <>
struct hash<cfs::Ipv4> {
  size_t operator()(cfs::Ipv4 addr) const noexcept {
    return std::hash<std::uint32_t>{}(addr.value());
  }
};

template <>
struct hash<cfs::Prefix> {
  size_t operator()(const cfs::Prefix& p) const noexcept {
    return std::hash<std::uint64_t>{}(
        (std::uint64_t{p.network().value()} << 6) ^
        static_cast<std::uint64_t>(p.length()));
  }
};

}  // namespace std
