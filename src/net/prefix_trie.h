// Binary (Patricia-style, one bit per level) trie for longest-prefix match.
//
// Backs the IP-to-ASN service and the IXP peering-LAN lookup. Values are an
// arbitrary payload type; lookup returns the most specific covering prefix.
#pragma once

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "net/ipv4.h"

namespace cfs {

template <class Value>
class PrefixTrie {
 public:
  PrefixTrie() { nodes_.push_back(Node{}); }

  // Inserts or overwrites the value at the exact prefix.
  void insert(const Prefix& prefix, Value value) {
    std::size_t node = 0;
    for (int depth = 0; depth < prefix.length(); ++depth) {
      const int bit = bit_at(prefix.network().value(), depth);
      std::size_t& child = nodes_[node].child[bit];
      if (child == 0) {
        child = nodes_.size();
        const std::size_t fresh = child;  // nodes_ may reallocate below
        nodes_.push_back(Node{});
        node = fresh;
      } else {
        node = child;
      }
    }
    if (!nodes_[node].value) ++size_;
    nodes_[node].value = std::move(value);
    nodes_[node].prefix = prefix;
  }

  // Longest-prefix match; nullopt if no covering prefix exists.
  [[nodiscard]] std::optional<std::pair<Prefix, Value>> lookup(
      Ipv4 addr) const {
    std::optional<std::pair<Prefix, Value>> best;
    std::size_t node = 0;
    for (int depth = 0; depth <= 32; ++depth) {
      if (nodes_[node].value)
        best = std::make_pair(nodes_[node].prefix, *nodes_[node].value);
      if (depth == 32) break;
      const int bit = bit_at(addr.value(), depth);
      const std::size_t child = nodes_[node].child[bit];
      if (child == 0) break;
      node = child;
    }
    return best;
  }

  // Exact-prefix lookup.
  [[nodiscard]] const Value* find_exact(const Prefix& prefix) const {
    std::size_t node = 0;
    for (int depth = 0; depth < prefix.length(); ++depth) {
      const int bit = bit_at(prefix.network().value(), depth);
      const std::size_t child = nodes_[node].child[bit];
      if (child == 0) return nullptr;
      node = child;
    }
    return nodes_[node].value ? &*nodes_[node].value : nullptr;
  }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }

  // Visit all stored (prefix, value) pairs in depth-first order.
  template <class Fn>
  void for_each(Fn&& fn) const {
    visit(0, fn);
  }

 private:
  struct Node {
    std::size_t child[2] = {0, 0};  // 0 = absent (root is never a child)
    std::optional<Value> value;
    Prefix prefix;
  };

  static int bit_at(std::uint32_t value, int depth) {
    return (value >> (31 - depth)) & 1u;
  }

  template <class Fn>
  void visit(std::size_t node, Fn& fn) const {
    if (nodes_[node].value) fn(nodes_[node].prefix, *nodes_[node].value);
    for (const std::size_t child : nodes_[node].child)
      if (child != 0) visit(child, fn);
  }

  std::vector<Node> nodes_;
  std::size_t size_ = 0;
};

}  // namespace cfs
