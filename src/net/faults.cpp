#include "net/faults.h"

#include <algorithm>

#include "util/trace.h"

namespace cfs {

namespace {

// splitmix64 finalizer: the per-entity hash behind every scheduled fault.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

double to_unit(std::uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

}  // namespace

bool FaultPlan::any() const {
  return lg_outage_fraction > 0.0 || lg_ban_burst > 0 ||
         vp_churn_fraction > 0.0 || probe_timeout_rate > 0.0 ||
         peeringdb_withheld > 0.0 || dns_withheld > 0.0 ||
         geoip_withheld > 0.0;
}

FaultPlane::FaultPlane(const FaultPlan& plan, std::uint64_t seed)
    : plan_(plan), seed_(mix64(seed ^ plan.seed)), timeout_rng_(seed_ ^ 0x7107) {}

std::uint64_t FaultPlane::mix(std::uint64_t id, std::uint64_t salt) const {
  return mix64(seed_ ^ mix64(id ^ (salt << 32)));
}

double FaultPlane::frac(std::uint64_t id, std::uint64_t salt) const {
  return to_unit(mix(id, salt));
}

bool FaultPlane::lg_offline(RouterId lg, double now_s) const {
  if (plan_.lg_outage_fraction <= 0.0) return false;
  if (frac(lg.value, 1) >= plan_.lg_outage_fraction) return false;
  const double start = frac(lg.value, 2) * plan_.lg_outage_start_horizon_s;
  return now_s >= start && now_s < start + plan_.lg_outage_duration_s;
}

bool FaultPlane::lg_banned(RouterId lg, double now_s) const {
  if (plan_.lg_ban_burst <= 0) return false;
  const auto it = bans_.find(lg.value);
  return it != bans_.end() && now_s < it->second.banned_until;
}

void FaultPlane::record_lg_query(RouterId lg, double now_s) {
  if (plan_.lg_ban_burst <= 0) return;
  BanState& state = bans_[lg.value];
  if (now_s < state.banned_until) return;  // queries during a ban are refused
  auto& recent = state.recent;
  recent.erase(std::remove_if(recent.begin(), recent.end(),
                              [&](double t) {
                                return t <= now_s - plan_.lg_ban_window_s;
                              }),
               recent.end());
  recent.push_back(now_s);
  if (recent.size() > static_cast<std::size_t>(plan_.lg_ban_burst)) {
    state.banned_until = now_s + plan_.lg_ban_duration_s;
    state.recent.clear();
    ++bans_tripped_;
    Trace::counter("faults.lg_bans_tripped");
  }
}

bool FaultPlane::vp_dead(VantagePointId vp, double now_s) const {
  const double death = vp_death_s(vp);
  return death >= 0.0 && now_s >= death;
}

double FaultPlane::vp_death_s(VantagePointId vp) const {
  if (plan_.vp_churn_fraction <= 0.0) return -1.0;
  if (frac(vp.value, 3) >= plan_.vp_churn_fraction) return -1.0;
  return frac(vp.value, 4) * plan_.vp_churn_horizon_s;
}

bool FaultPlane::probe_times_out() {
  if (plan_.probe_timeout_rate <= 0.0) return false;
  return timeout_rng_.chance(plan_.probe_timeout_rate);
}

bool FaultPlane::probe_times_out(Rng& rng) const {
  if (plan_.probe_timeout_rate <= 0.0) return false;
  return rng.chance(plan_.probe_timeout_rate);
}

Rng FaultPlane::timeout_stream(std::uint64_t stream) const {
  return Rng(mix64(seed_ ^ 0x7107) ^ mix64(stream ^ 0x70a5));
}

bool FaultPlane::withhold_record(double fraction,
                                 std::uint64_t record_key) const {
  if (fraction <= 0.0) return false;
  const bool withheld = to_unit(mix(record_key, 5)) < fraction;
  if (withheld) Trace::counter("faults.records_withheld");
  return withheld;
}

// --- transport chaos plane ------------------------------------------------

bool SocketFaultPlan::any() const {
  return byte_write_fraction > 0.0 || torn_frame_fraction > 0.0 ||
         disconnect_fraction > 0.0 || stall_fraction > 0.0 ||
         read_stall_fraction > 0.0;
}

SocketFaultPlane::SocketFaultPlane(const SocketFaultPlan& plan,
                                   std::uint64_t seed)
    : plan_(plan), seed_(mix64(seed ^ plan.seed ^ 0x50cfau)) {}

double SocketFaultPlane::frac(std::uint64_t conn, std::uint64_t request,
                              std::uint64_t salt) const {
  return to_unit(
      mix64(seed_ ^ mix64(conn ^ (salt << 40)) ^ mix64(request ^ (salt << 8))));
}

SocketWritePlan SocketFaultPlane::write_plan(std::uint64_t conn,
                                             std::uint64_t request,
                                             std::size_t frame_bytes) const {
  SocketWritePlan out;
  if (frame_bytes == 0) return out;
  if (!plan_.any()) {
    out.chunks.push_back(frame_bytes);
    return out;
  }

  // A derived stream keyed by (conn, request): the chunk partition can
  // draw as many values as it likes without perturbing other requests.
  Rng rng(mix64(seed_ ^ mix64(conn ^ 0xc0ffee) ^ mix64(request ^ 0xfeed)));

  std::size_t to_send = frame_bytes;
  if (plan_.torn_frame_fraction > 0.0 &&
      frac(conn, request, 11) < plan_.torn_frame_fraction) {
    // A strict prefix: at least one byte short so the daemon is left with
    // a partial frame when the connection dies.
    out.truncate_at = frame_bytes > 1
                          ? 1 + rng.uniform(frame_bytes - 1)
                          : 0;
    to_send = out.truncate_at;
  }

  const bool byte_at_a_time =
      plan_.byte_write_fraction > 0.0 &&
      frac(conn, request, 12) < plan_.byte_write_fraction;
  if (byte_at_a_time) {
    out.chunks.assign(to_send, 1);
  } else if (to_send > 0) {
    // 1..4 random cuts: partial headers, frame spread over several reads.
    std::size_t cuts = rng.uniform(4);
    std::size_t remaining = to_send;
    while (cuts > 0 && remaining > 1) {
      const std::size_t take = 1 + rng.uniform(remaining - 1);
      out.chunks.push_back(take);
      remaining -= take;
      --cuts;
    }
    if (remaining > 0) out.chunks.push_back(remaining);
  }

  if (plan_.stall_fraction > 0.0 && !out.chunks.empty() &&
      frac(conn, request, 13) < plan_.stall_fraction) {
    out.stall_before_chunk =
        static_cast<int>(rng.uniform(out.chunks.size()));
    out.stall_ms = plan_.stall_ms;
  }
  if (!out.torn() && plan_.disconnect_fraction > 0.0 &&
      frac(conn, request, 14) < plan_.disconnect_fraction)
    out.disconnect_before_read = true;
  if (out.expects_response() && plan_.read_stall_fraction > 0.0 &&
      frac(conn, request, 15) < plan_.read_stall_fraction)
    out.read_stall_ms = plan_.stall_ms;
  return out;
}

}  // namespace cfs
