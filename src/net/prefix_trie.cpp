// PrefixTrie is header-only (template); this translation unit exists so the
// build exercises the header standalone and keeps a stable library target.
#include "net/prefix_trie.h"

namespace cfs {

// Explicit instantiation with a small payload to catch template regressions
// at library build time rather than first use.
template class PrefixTrie<std::uint32_t>;

}  // namespace cfs
