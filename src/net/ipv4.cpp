#include "net/ipv4.h"

#include <charconv>

#include "util/strings.h"

namespace cfs {

std::string Ipv4::to_string() const {
  std::string out;
  out.reserve(15);
  for (int shift = 24; shift >= 0; shift -= 8) {
    if (shift != 24) out.push_back('.');
    out += std::to_string((value_ >> shift) & 0xff);
  }
  return out;
}

std::optional<Ipv4> Ipv4::parse(std::string_view text) {
  const auto parts = split(text, '.');
  if (parts.size() != 4) return std::nullopt;
  std::uint32_t value = 0;
  for (const auto& part : parts) {
    if (part.empty() || part.size() > 3) return std::nullopt;
    unsigned octet = 0;
    const auto [ptr, ec] =
        std::from_chars(part.data(), part.data() + part.size(), octet);
    if (ec != std::errc{} || ptr != part.data() + part.size() || octet > 255)
      return std::nullopt;
    value = (value << 8) | octet;
  }
  return Ipv4(value);
}

std::string Prefix::to_string() const {
  return network().to_string() + "/" + std::to_string(length_);
}

std::optional<Prefix> Prefix::parse(std::string_view text) {
  const auto slash = text.find('/');
  if (slash == std::string_view::npos) return std::nullopt;
  const auto addr = Ipv4::parse(text.substr(0, slash));
  if (!addr) return std::nullopt;
  const auto len_text = text.substr(slash + 1);
  int length = -1;
  const auto [ptr, ec] =
      std::from_chars(len_text.data(), len_text.data() + len_text.size(),
                      length);
  if (ec != std::errc{} || ptr != len_text.data() + len_text.size() ||
      length < 0 || length > 32)
    return std::nullopt;
  return Prefix(*addr, length);
}

}  // namespace cfs
