// Monotonic Bounds Test (MIDAR's pairwise alias check).
//
// Two interfaces share a router's IP-ID counter iff the time-merged sample
// sequence is itself a plausible trajectory of one monotonically increasing
// counter: every consecutive modular delta must stay within what the
// (shared) velocity could have produced in that gap, and the per-interface
// velocities must agree to begin with.
#pragma once

#include "alias/prober.h"

namespace cfs {

struct MbtConfig {
  double velocity_ratio_max = 1.25;  // sieve: velocities must be this close
  double velocity_slack = 2.0;       // per-gap growth allowance multiplier
  double min_gap_allowance = 64.0;   // absolute ID budget for tiny gaps
  double random_velocity_cutoff = 50000.0;  // above this: randomised source
};

// True when the two series could plausibly come from one shared counter.
bool monotonic_bounds_test(const IpIdSeries& a, const IpIdSeries& b,
                           const MbtConfig& config = {});

// Allocation-free span form for the resolver's corroboration hot loop
// (tens of millions of calls at paper scale): `merged` is caller-provided
// scratch with room for na + nb samples. Bit-identical verdicts to the
// vector form — same merge order, same arithmetic.
bool monotonic_bounds_test(const IpIdSample* a, std::size_t na,
                           const IpIdSample* b, std::size_t nb,
                           const MbtConfig& config, IpIdSample* merged);

// Velocity sieve used before the full test.
bool velocities_compatible(double va, double vb, const MbtConfig& config = {});

}  // namespace cfs
