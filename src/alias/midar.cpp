#include "alias/midar.h"

#include <algorithm>
#include <unordered_map>

namespace cfs {

UnionFind::UnionFind(std::size_t n) : parent_(n), rank_(n, 0) {
  for (std::size_t i = 0; i < n; ++i) parent_[i] = i;
}

std::size_t UnionFind::find(std::size_t x) {
  while (parent_[x] != x) {
    parent_[x] = parent_[parent_[x]];
    x = parent_[x];
  }
  return x;
}

void UnionFind::unite(std::size_t a, std::size_t b) {
  a = find(a);
  b = find(b);
  if (a == b) return;
  if (rank_[a] < rank_[b]) std::swap(a, b);
  parent_[b] = a;
  if (rank_[a] == rank_[b]) ++rank_[a];
}

int AliasSets::set_of(Ipv4 addr) const {
  for (std::size_t i = 0; i < sets.size(); ++i)
    if (std::find(sets[i].begin(), sets[i].end(), addr) != sets[i].end())
      return static_cast<int>(i);
  return -1;
}

AliasResolver::AliasResolver(const Topology& topo, std::uint64_t seed,
                             const AliasResolutionConfig& config)
    : topo_(topo), model_(topo, seed), config_(config) {}

AliasSets AliasResolver::resolve(const std::vector<Ipv4>& targets) {
  AliasSets out;

  // Deduplicate input while preserving order.
  std::vector<Ipv4> addrs;
  {
    std::unordered_map<Ipv4, bool> seen;
    for (const Ipv4 a : targets)
      if (!std::exchange(seen[a], true)) addrs.push_back(a);
  }

  const int samples = config_.prober.samples_per_target;
  const double interval = config_.prober.probe_interval_s;

  // Compile every target once: the per-probe interface/router/counter
  // hash lookups move out of the probing loops (Stage 3 alone issues
  // O(pairs * rounds * samples) probes — hundreds of millions at paper
  // scale). probe_compiled replays the exact probe() behaviour, so reply
  // values and probe_rng_ consumption are unchanged.
  std::vector<IpIdModel::CompiledTarget> compiled(addrs.size());
  for (std::size_t k = 0; k < addrs.size(); ++k)
    compiled[k] = model_.compile(addrs[k]);

  // --- Stage 1: estimation ---
  //
  // Flat per-target series (index-aligned with addrs) instead of a hash
  // map; the round-robin probe order and clock arithmetic are exactly
  // AliasProber::collect's.
  std::vector<IpIdSeries> series(addrs.size());
  for (auto& s : series) s.reserve(static_cast<std::size_t>(samples));
  {
    double clock = clock_s_;
    for (int round = 0; round < samples; ++round)
      for (std::size_t k = 0; k < addrs.size(); ++k) {
        if (const auto ipid = model_.probe_compiled(compiled[k], clock))
          series[k].push_back(IpIdSample{clock, *ipid});
        clock += interval;
      }
    probes_ += addrs.size() * static_cast<std::size_t>(samples);
  }
  clock_s_ += static_cast<double>(addrs.size()) * samples * interval;

  struct Candidate {
    Ipv4 addr;
    double velocity;
    std::uint32_t slot;  // index into addrs/compiled
  };
  std::vector<Candidate> candidates;
  for (std::size_t k = 0; k < addrs.size(); ++k) {
    if (series[k].empty()) {  // never answered (== absent from a hash map)
      out.unresolved.push_back(addrs[k]);
      continue;
    }
    const double v = estimate_velocity(series[k]);
    if (v <= 0.0 || v > config_.mbt.random_velocity_cutoff) {
      out.unresolved.push_back(addrs[k]);
      continue;
    }
    candidates.push_back(
        Candidate{addrs[k], v, static_cast<std::uint32_t>(k)});
  }

  // --- Stage 2: velocity sieve ---
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              return a.velocity < b.velocity;
            });

  UnionFind uf(candidates.size());

  // --- Stage 3: corroboration per compatible pair ---
  //
  // Reused buffers instead of a fresh prober + hash map + vectors per
  // round: tens of millions of heap allocations gone at paper scale.
  std::vector<IpIdSample> series_a(static_cast<std::size_t>(samples));
  std::vector<IpIdSample> series_b(static_cast<std::size_t>(samples));
  std::vector<IpIdSample> merged(2 * static_cast<std::size_t>(samples));
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    for (std::size_t j = i + 1; j < candidates.size(); ++j) {
      if (!velocities_compatible(candidates[i].velocity,
                                 candidates[j].velocity, config_.mbt))
        break;  // sorted by velocity: later ones only diverge further
      if (uf.find(i) == uf.find(j)) continue;

      const IpIdModel::CompiledTarget& ca = compiled[candidates[i].slot];
      const IpIdModel::CompiledTarget& cb = compiled[candidates[j].slot];
      bool pass = true;
      for (int round = 0; round < config_.corroboration_rounds && pass;
           ++round) {
        // One interleaved {a, b} collection, identical probe order and
        // clock schedule to AliasProber::collect on the pair.
        std::size_t na = 0, nb = 0;
        double clock = clock_s_;
        for (int r = 0; r < samples; ++r) {
          if (const auto ipid = model_.probe_compiled(ca, clock))
            series_a[na++] = IpIdSample{clock, *ipid};
          clock += interval;
          if (const auto ipid = model_.probe_compiled(cb, clock))
            series_b[nb++] = IpIdSample{clock, *ipid};
          clock += interval;
        }
        // Rounds are spread far apart in (virtual) time: two distinct
        // counters that happen to be aligned now drift apart by
        // |rate_a - rate_b| * spacing and fail a later round. This is what
        // makes MIDAR's false-positive rate effectively zero.
        clock_s_ += config_.round_spacing_s;
        probes_ += 2 * static_cast<std::size_t>(samples);
        pass = na > 0 && nb > 0 &&
               monotonic_bounds_test(series_a.data(), na, series_b.data(),
                                     nb, config_.mbt, merged.data());
      }
      if (pass) uf.unite(i, j);
    }
  }

  // Materialise alias sets.
  std::unordered_map<std::size_t, std::size_t> root_to_set;
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    const std::size_t root = uf.find(i);
    const auto [it, inserted] = root_to_set.try_emplace(root, out.sets.size());
    if (inserted) out.sets.emplace_back();
    out.sets[it->second].push_back(candidates[i].addr);
  }
  return out;
}

}  // namespace cfs
