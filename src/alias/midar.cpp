#include "alias/midar.h"

#include <algorithm>
#include <unordered_map>

namespace cfs {

UnionFind::UnionFind(std::size_t n) : parent_(n), rank_(n, 0) {
  for (std::size_t i = 0; i < n; ++i) parent_[i] = i;
}

std::size_t UnionFind::find(std::size_t x) {
  while (parent_[x] != x) {
    parent_[x] = parent_[parent_[x]];
    x = parent_[x];
  }
  return x;
}

void UnionFind::unite(std::size_t a, std::size_t b) {
  a = find(a);
  b = find(b);
  if (a == b) return;
  if (rank_[a] < rank_[b]) std::swap(a, b);
  parent_[b] = a;
  if (rank_[a] == rank_[b]) ++rank_[a];
}

int AliasSets::set_of(Ipv4 addr) const {
  for (std::size_t i = 0; i < sets.size(); ++i)
    if (std::find(sets[i].begin(), sets[i].end(), addr) != sets[i].end())
      return static_cast<int>(i);
  return -1;
}

AliasResolver::AliasResolver(const Topology& topo, std::uint64_t seed,
                             const AliasResolutionConfig& config)
    : topo_(topo), model_(topo, seed), config_(config) {}

AliasSets AliasResolver::resolve(const std::vector<Ipv4>& targets) {
  AliasSets out;

  // Deduplicate input while preserving order.
  std::vector<Ipv4> addrs;
  {
    std::unordered_map<Ipv4, bool> seen;
    for (const Ipv4 a : targets)
      if (!std::exchange(seen[a], true)) addrs.push_back(a);
  }

  // --- Stage 1: estimation ---
  AliasProber prober(model_, config_.prober);
  const auto series = prober.collect(addrs, clock_s_);
  clock_s_ += static_cast<double>(addrs.size()) *
              config_.prober.samples_per_target *
              config_.prober.probe_interval_s;

  struct Candidate {
    Ipv4 addr;
    double velocity;
  };
  std::vector<Candidate> candidates;
  for (const Ipv4 addr : addrs) {
    const auto it = series.find(addr);
    if (it == series.end()) {
      out.unresolved.push_back(addr);
      continue;
    }
    const double v = estimate_velocity(it->second);
    if (v <= 0.0 || v > config_.mbt.random_velocity_cutoff) {
      out.unresolved.push_back(addr);
      continue;
    }
    candidates.push_back(Candidate{addr, v});
  }

  // --- Stage 2: velocity sieve ---
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              return a.velocity < b.velocity;
            });

  UnionFind uf(candidates.size());

  // --- Stage 3: corroboration per compatible pair ---
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    for (std::size_t j = i + 1; j < candidates.size(); ++j) {
      if (!velocities_compatible(candidates[i].velocity,
                                 candidates[j].velocity, config_.mbt))
        break;  // sorted by velocity: later ones only diverge further
      if (uf.find(i) == uf.find(j)) continue;

      bool pass = true;
      for (int round = 0; round < config_.corroboration_rounds && pass;
           ++round) {
        AliasProber pair_prober(model_, config_.prober);
        const std::vector<Ipv4> pair = {candidates[i].addr,
                                        candidates[j].addr};
        const auto pair_series = pair_prober.collect(pair, clock_s_);
        // Rounds are spread far apart in (virtual) time: two distinct
        // counters that happen to be aligned now drift apart by
        // |rate_a - rate_b| * spacing and fail a later round. This is what
        // makes MIDAR's false-positive rate effectively zero.
        clock_s_ += config_.round_spacing_s;
        probes_ += pair_prober.probes_sent();
        const auto ia = pair_series.find(candidates[i].addr);
        const auto ib = pair_series.find(candidates[j].addr);
        pass = ia != pair_series.end() && ib != pair_series.end() &&
               monotonic_bounds_test(ia->second, ib->second, config_.mbt);
      }
      if (pass) uf.unite(i, j);
    }
  }
  probes_ += prober.probes_sent();

  // Materialise alias sets.
  std::unordered_map<std::size_t, std::size_t> root_to_set;
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    const std::size_t root = uf.find(i);
    const auto [it, inserted] = root_to_set.try_emplace(root, out.sets.size());
    if (inserted) out.sets.emplace_back();
    out.sets[it->second].push_back(candidates[i].addr);
  }
  return out;
}

}  // namespace cfs
