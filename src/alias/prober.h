// Interleaved IP-ID probing (MIDAR's estimation and corroboration stages
// both reduce to this collection primitive).
#pragma once

#include <unordered_map>
#include <vector>

#include "alias/ipid.h"

namespace cfs {

struct IpIdSample {
  double t_s = 0.0;
  std::uint16_t ipid = 0;
};

using IpIdSeries = std::vector<IpIdSample>;

struct ProberConfig {
  int samples_per_target = 12;
  double probe_interval_s = 0.1;  // spacing between consecutive probes
};

class AliasProber {
 public:
  AliasProber(IpIdModel& model, const ProberConfig& config);

  // Round-robin probes over all targets starting at `start_s`; targets that
  // never answer are absent from the result.
  [[nodiscard]] std::unordered_map<Ipv4, IpIdSeries> collect(
      const std::vector<Ipv4>& targets, double start_s);

  [[nodiscard]] std::size_t probes_sent() const { return probes_; }

 private:
  IpIdModel& model_;
  ProberConfig config_;
  std::size_t probes_ = 0;
};

// Counter velocity in IDs/second estimated from a sample series, handling
// 16-bit wraparound; negative when the series is too short or constant.
// The span form is the implementation; the vector form delegates, so both
// produce bit-identical arithmetic over the same samples.
double estimate_velocity(const IpIdSample* samples, std::size_t n);
double estimate_velocity(const IpIdSeries& series);

// True when the series is constant (zero / unchanging IP-ID source).
bool is_constant(const IpIdSample* samples, std::size_t n);
bool is_constant(const IpIdSeries& series);

}  // namespace cfs
