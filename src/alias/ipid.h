// IP-ID source model.
//
// Classic routers generate the IPv4 identification field from one shared,
// monotonically increasing 16-bit counter across all interfaces; MIDAR
// (Keys et al., ToN 2013) exploits this to group interfaces into routers
// via the monotonic bounds test. We model each router's counter as
// value(t) = (offset + rate * t) mod 2^16, with per-router behaviour drawn
// at generation time: shared counter (resolvable), randomised IP-ID,
// constant zero, or probe-filtering (all three produce false negatives,
// never false positives -- matching MIDAR's design goal).
#pragma once

#include <cmath>
#include <cstdint>
#include <optional>
#include <unordered_map>

#include "topology/topology.h"
#include "util/rng.h"

namespace cfs {

class IpIdModel {
 public:
  IpIdModel(const Topology& topo, std::uint64_t seed);

  // IP-ID contained in a reply to a probe of `addr` sent at virtual time
  // `t_s` (seconds); nullopt when the interface is unknown or its router
  // filters alias-resolution probes.
  [[nodiscard]] std::optional<std::uint16_t> probe(Ipv4 addr, double t_s);

  // Pre-resolved probe target: the interface/router/counter hash lookups
  // hoisted out of the per-probe path (the resolver's pair-corroboration
  // stage issues hundreds of millions of probes at paper scale). An
  // unknown address compiles to Unresponsive — the same nullopt outcome
  // probe() gives it, with no RNG consumption either way.
  struct CompiledTarget {
    IpIdBehaviour behaviour = IpIdBehaviour::Unresponsive;
    double offset = 0.0;
    double rate = 0.0;
  };
  [[nodiscard]] CompiledTarget compile(Ipv4 addr) const;

  // Byte-identical to probe(addr, t_s) for the address `target` was
  // compiled from: same reply values (the shared-counter arithmetic goes
  // through the one shared helper) and the same probe_rng_ consumption
  // order (exactly one draw per Random-router probe).
  [[nodiscard]] std::optional<std::uint16_t> probe_compiled(
      const CompiledTarget& target, double t_s) {
    switch (target.behaviour) {
      case IpIdBehaviour::Unresponsive:
        return std::nullopt;
      case IpIdBehaviour::Zero:
        return std::uint16_t{0};
      case IpIdBehaviour::Random:
        return static_cast<std::uint16_t>(probe_rng_.uniform(65536));
      case IpIdBehaviour::SharedCounter:
        return shared_counter_ipid(target.offset, target.rate, t_s);
    }
    return std::nullopt;
  }

  // Ground-truth counter velocity in IDs/second (test introspection).
  [[nodiscard]] double velocity(RouterId router) const;

 private:
  struct CounterState {
    double offset = 0.0;
    double rate = 0.0;  // IDs per second
  };

  // One definition for both probe paths so the floating-point contraction
  // the compiler picks is the same in each — the equivalence goldens
  // compare replies byte for byte.
  static std::uint16_t shared_counter_ipid(double offset, double rate,
                                           double t_s) {
    const double value = offset + rate * t_s;
    return static_cast<std::uint16_t>(
        static_cast<std::uint64_t>(std::floor(value)) % 65536);
  }

  const Topology& topo_;
  std::unordered_map<std::uint32_t, CounterState> counters_;  // per router
  Rng probe_rng_;  // randomised-IPID replies
};

}  // namespace cfs
