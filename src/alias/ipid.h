// IP-ID source model.
//
// Classic routers generate the IPv4 identification field from one shared,
// monotonically increasing 16-bit counter across all interfaces; MIDAR
// (Keys et al., ToN 2013) exploits this to group interfaces into routers
// via the monotonic bounds test. We model each router's counter as
// value(t) = (offset + rate * t) mod 2^16, with per-router behaviour drawn
// at generation time: shared counter (resolvable), randomised IP-ID,
// constant zero, or probe-filtering (all three produce false negatives,
// never false positives -- matching MIDAR's design goal).
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>

#include "topology/topology.h"
#include "util/rng.h"

namespace cfs {

class IpIdModel {
 public:
  IpIdModel(const Topology& topo, std::uint64_t seed);

  // IP-ID contained in a reply to a probe of `addr` sent at virtual time
  // `t_s` (seconds); nullopt when the interface is unknown or its router
  // filters alias-resolution probes.
  [[nodiscard]] std::optional<std::uint16_t> probe(Ipv4 addr, double t_s);

  // Ground-truth counter velocity in IDs/second (test introspection).
  [[nodiscard]] double velocity(RouterId router) const;

 private:
  struct CounterState {
    double offset = 0.0;
    double rate = 0.0;  // IDs per second
  };

  const Topology& topo_;
  std::unordered_map<std::uint32_t, CounterState> counters_;  // per router
  Rng probe_rng_;  // randomised-IPID replies
};

}  // namespace cfs
