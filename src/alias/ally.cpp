#include "alias/ally.h"

namespace cfs {

std::string_view ally_verdict_name(AllyVerdict verdict) {
  switch (verdict) {
    case AllyVerdict::Alias: return "alias";
    case AllyVerdict::NotAlias: return "not-alias";
    case AllyVerdict::Unresponsive: return "unresponsive";
  }
  return "?";
}

AllyResolver::AllyResolver(const Topology& topo, std::uint64_t seed,
                           const AllyConfig& config)
    : model_(topo, seed), config_(config) {}

AllyVerdict AllyResolver::test_pair(Ipv4 a, Ipv4 b) {
  for (int trial = 0; trial < config_.trials; ++trial) {
    // Probe a, b, a in quick succession.
    const auto x1 = model_.probe(a, clock_s_);
    const auto y = model_.probe(b, clock_s_ + config_.probe_gap_s);
    const auto x2 = model_.probe(a, clock_s_ + 2 * config_.probe_gap_s);
    probes_ += 3;
    clock_s_ += config_.trial_gap_s;
    if (!x1 || !y || !x2) return AllyVerdict::Unresponsive;

    // In-sequence check, modulo 16-bit wraparound.
    const std::uint16_t d1 = static_cast<std::uint16_t>(*y - *x1);
    const std::uint16_t d2 = static_cast<std::uint16_t>(*x2 - *y);
    const std::uint16_t total = static_cast<std::uint16_t>(*x2 - *x1);
    const bool in_sequence =
        total <= config_.window && d1 <= total && d2 <= total;
    if (!in_sequence) return AllyVerdict::NotAlias;
  }
  return AllyVerdict::Alias;
}

}  // namespace cfs
