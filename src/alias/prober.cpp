#include "alias/prober.h"

#include <algorithm>

namespace cfs {

AliasProber::AliasProber(IpIdModel& model, const ProberConfig& config)
    : model_(model), config_(config) {}

std::unordered_map<Ipv4, IpIdSeries> AliasProber::collect(
    const std::vector<Ipv4>& targets, double start_s) {
  std::unordered_map<Ipv4, IpIdSeries> out;
  double clock = start_s;
  for (int round = 0; round < config_.samples_per_target; ++round) {
    for (const Ipv4 target : targets) {
      ++probes_;
      if (const auto ipid = model_.probe(target, clock))
        out[target].push_back(IpIdSample{clock, *ipid});
      clock += config_.probe_interval_s;
    }
  }
  return out;
}

double estimate_velocity(const IpIdSample* samples, std::size_t n) {
  if (n < 3) return -1.0;
  if (is_constant(samples, n)) return -1.0;
  // Accumulate modular deltas: assumes at most one wrap between samples,
  // which holds for counter rates well below 65536 / interval.
  double total = 0.0;
  for (std::size_t i = 1; i < n; ++i) {
    const std::uint16_t delta = static_cast<std::uint16_t>(
        samples[i].ipid - samples[i - 1].ipid);
    total += delta;
  }
  const double span = samples[n - 1].t_s - samples[0].t_s;
  if (span <= 0.0) return -1.0;
  return total / span;
}

double estimate_velocity(const IpIdSeries& series) {
  return estimate_velocity(series.data(), series.size());
}

bool is_constant(const IpIdSample* samples, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i)
    if (samples[i].ipid != samples[0].ipid) return false;
  return true;
}

bool is_constant(const IpIdSeries& series) {
  return is_constant(series.data(), series.size());
}

}  // namespace cfs
