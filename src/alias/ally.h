// Ally-style pairwise alias test (Spring et al., Rocketfuel) — the
// classical technique MIDAR was designed to replace, kept here as a
// comparison baseline.
//
// Ally probes two candidate addresses back-to-back and accepts them as
// aliases when the returned IP-IDs are in sequence within a small window
// (x1 <= y <= x2 with x2 - x1 small). It needs no velocity estimation and
// far fewer probes than MIDAR, but its acceptance window makes false
// positives possible on busy counters — exactly the trade-off the
// comparison benchmark quantifies.
#pragma once

#include "alias/ipid.h"

namespace cfs {

struct AllyConfig {
  int trials = 3;                // repeated tests, all must agree
  std::uint16_t window = 220;    // max total IP-ID advance across a probe
  double probe_gap_s = 0.01;     // spacing of the back-to-back probes
  double trial_gap_s = 5.0;      // spacing between repeated trials
};

enum class AllyVerdict { Alias, NotAlias, Unresponsive };
std::string_view ally_verdict_name(AllyVerdict verdict);

class AllyResolver {
 public:
  AllyResolver(const Topology& topo, std::uint64_t seed,
               const AllyConfig& config = {});

  // Pairwise test; Unresponsive when either side never answers.
  [[nodiscard]] AllyVerdict test_pair(Ipv4 a, Ipv4 b);

  [[nodiscard]] std::size_t probes_sent() const { return probes_; }

 private:
  IpIdModel model_;
  AllyConfig config_;
  std::size_t probes_ = 0;
  double clock_s_ = 0.0;
};

}  // namespace cfs
