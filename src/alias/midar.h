// MIDAR-style alias-resolution pipeline.
//
// Stage 1 (estimation): probe every target interleaved, estimate per-
// interface counter velocity, discard unresponsive / constant / randomised
// sources. Stage 2 (sieve): sort by velocity and only consider pairs whose
// velocities are compatible. Stage 3 (corroboration): run the monotonic
// bounds test on freshly collected interleaved samples for each candidate
// pair; passing pairs are merged with union-find into alias sets.
#pragma once

#include <vector>

#include "alias/mbt.h"

namespace cfs {

struct AliasResolutionConfig {
  ProberConfig prober;
  MbtConfig mbt;
  int corroboration_rounds = 3;
  // Virtual-time spacing between corroboration rounds; large spacing turns
  // small velocity differences into offset drift the MBT can detect.
  double round_spacing_s = 1200.0;
};

struct AliasSets {
  // Each entry is one inferred router: all addresses believed to be its
  // interfaces. Singletons are included (resolved but unaliased).
  std::vector<std::vector<Ipv4>> sets;
  // Targets that never produced usable IP-ID series.
  std::vector<Ipv4> unresolved;

  // Set index containing an address, or -1.
  [[nodiscard]] int set_of(Ipv4 addr) const;
};

class AliasResolver {
 public:
  AliasResolver(const Topology& topo, std::uint64_t seed,
                const AliasResolutionConfig& config = {});

  [[nodiscard]] AliasSets resolve(const std::vector<Ipv4>& targets);

  [[nodiscard]] std::size_t probes_sent() const { return probes_; }

 private:
  const Topology& topo_;
  IpIdModel model_;
  AliasResolutionConfig config_;
  std::size_t probes_ = 0;
  double clock_s_ = 0.0;
};

// Minimal union-find used by the resolver (exposed for reuse/testing).
class UnionFind {
 public:
  explicit UnionFind(std::size_t n);
  std::size_t find(std::size_t x);
  void unite(std::size_t a, std::size_t b);
  [[nodiscard]] std::size_t size() const { return parent_.size(); }

 private:
  std::vector<std::size_t> parent_;
  std::vector<std::uint8_t> rank_;
};

}  // namespace cfs
