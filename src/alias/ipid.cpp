#include "alias/ipid.h"

#include <cmath>

namespace cfs {

IpIdModel::IpIdModel(const Topology& topo, std::uint64_t seed)
    : topo_(topo), probe_rng_(seed ^ 0x1b1b1b1bULL) {
  Rng rng(seed);
  for (const auto& router : topo.routers()) {
    CounterState state;
    state.offset = static_cast<double>(rng.uniform(65536));
    // Counter velocity tracks the router's traffic level; MIDAR works on
    // anything that wraps slower than the probing cadence samples.
    state.rate = rng.uniform_real(50.0, 4000.0);
    counters_.emplace(router.id.value, state);
  }
}

std::optional<std::uint16_t> IpIdModel::probe(Ipv4 addr, double t_s) {
  const Interface* iface = topo_.find_interface(addr);
  if (iface == nullptr) return std::nullopt;
  const Router& router = topo_.router(iface->router);
  switch (router.ipid) {
    case IpIdBehaviour::Unresponsive:
      return std::nullopt;
    case IpIdBehaviour::Zero:
      return std::uint16_t{0};
    case IpIdBehaviour::Random:
      return static_cast<std::uint16_t>(probe_rng_.uniform(65536));
    case IpIdBehaviour::SharedCounter: {
      const CounterState& state = counters_.at(router.id.value);
      return shared_counter_ipid(state.offset, state.rate, t_s);
    }
  }
  return std::nullopt;
}

IpIdModel::CompiledTarget IpIdModel::compile(Ipv4 addr) const {
  CompiledTarget target;  // default: Unresponsive (unknown address)
  const Interface* iface = topo_.find_interface(addr);
  if (iface == nullptr) return target;
  const Router& router = topo_.router(iface->router);
  target.behaviour = router.ipid;
  if (router.ipid == IpIdBehaviour::SharedCounter) {
    const CounterState& state = counters_.at(router.id.value);
    target.offset = state.offset;
    target.rate = state.rate;
  }
  return target;
}

double IpIdModel::velocity(RouterId router) const {
  const auto it = counters_.find(router.value);
  return it == counters_.end() ? 0.0 : it->second.rate;
}

}  // namespace cfs
