#include "alias/mbt.h"

#include <algorithm>

namespace cfs {

bool velocities_compatible(double va, double vb, const MbtConfig& config) {
  if (va <= 0.0 || vb <= 0.0) return false;
  if (va > config.random_velocity_cutoff || vb > config.random_velocity_cutoff)
    return false;
  const double ratio = va > vb ? va / vb : vb / va;
  return ratio <= config.velocity_ratio_max;
}

bool monotonic_bounds_test(const IpIdSample* a, std::size_t na,
                           const IpIdSample* b, std::size_t nb,
                           const MbtConfig& config, IpIdSample* merged) {
  if (na < 3 || nb < 3) return false;
  if (is_constant(a, na) || is_constant(b, nb)) return false;

  const double va = estimate_velocity(a, na);
  const double vb = estimate_velocity(b, nb);
  if (!velocities_compatible(va, vb, config)) return false;
  const double v = (va + vb) / 2.0;

  // Merge by timestamp and verify each consecutive modular delta fits the
  // shared-counter budget for that gap.
  std::merge(a, a + na, b, b + nb, merged,
             [](const IpIdSample& x, const IpIdSample& y) {
               return x.t_s < y.t_s;
             });

  const std::size_t n = na + nb;
  for (std::size_t i = 1; i < n; ++i) {
    const double gap = merged[i].t_s - merged[i - 1].t_s;
    const std::uint16_t delta = static_cast<std::uint16_t>(
        merged[i].ipid - merged[i - 1].ipid);
    const double budget =
        std::max(config.min_gap_allowance, v * gap * config.velocity_slack);
    if (static_cast<double>(delta) > budget) return false;
  }
  return true;
}

bool monotonic_bounds_test(const IpIdSeries& a, const IpIdSeries& b,
                           const MbtConfig& config) {
  IpIdSeries merged(a.size() + b.size());
  return monotonic_bounds_test(a.data(), a.size(), b.data(), b.size(), config,
                               merged.data());
}

}  // namespace cfs
