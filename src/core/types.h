// Shared value types for the inference layer.
#pragma once

#include <optional>
#include <string_view>
#include <vector>

#include "topology/entities.h"

namespace cfs {

// The engineering options of Section 2, as CFS infers them.
enum class InterconnectionType {
  PublicLocal,          // public peering, both sides local to the IXP
  PublicRemote,         // public peering through a reseller (remote peering)
  PrivateCrossConnect,  // dedicated circuit inside one facility
  PrivateTethering,     // point-to-point VLAN over an IXP fabric
  PrivateRemote,        // long-haul private interconnect
  Unknown,
};

std::string_view interconnection_type_name(InterconnectionType type);

enum class PeeringKind { Public, Private };

// One peering crossing observed in a traceroute (paper Step 1).
struct PeeringObservation {
  PeeringKind kind = PeeringKind::Private;
  VantagePointId vp;

  Ipv4 near_addr;  // IP_A: near-side border interface
  Asn near_as;
  Ipv4 far_addr;   // public: IP_e (far router's IXP LAN address);
                   // private: IP_B (far side of the /30)
  Asn far_as;
  IxpId ixp;       // valid for public observations

  // Minimum observed RTTs at the two hops (remote-peering detection).
  double near_rtt_ms = 0.0;
  double far_rtt_ms = 0.0;

  friend bool operator==(const PeeringObservation&,
                         const PeeringObservation&) = default;
};

}  // namespace cfs
