#include "core/proximity.h"

namespace cfs {

std::uint64_t ProximityHeuristic::key(IxpId ixp, FacilityId near_facility,
                                      FacilityId far_facility) {
  return (std::uint64_t{ixp.value} << 44) ^
         (std::uint64_t{near_facility.value} << 22) ^ far_facility.value;
}

void ProximityHeuristic::observe(IxpId ixp, FacilityId near_facility,
                                 FacilityId far_facility) {
  ++counts_[key(ixp, near_facility, far_facility)];
  ++observations_;
}

std::optional<FacilityId> ProximityHeuristic::infer_far(
    IxpId ixp, FacilityId near_facility,
    std::span<const FacilityId> candidates) const {
  if (candidates.size() == 1) return candidates.front();
  // Fabric rule: a far-end port in the near end's own facility sits on the
  // same access switch (switch distance zero) and always wins the local-
  // delivery preference, regardless of learned counts.
  for (const FacilityId cand : candidates)
    if (cand == near_facility) return cand;
  std::optional<FacilityId> best;
  std::size_t best_count = 0;
  bool tie = false;
  for (const FacilityId cand : candidates) {
    const auto it = counts_.find(key(ixp, near_facility, cand));
    const std::size_t count = it == counts_.end() ? 0 : it->second;
    if (count > best_count) {
      best = cand;
      best_count = count;
      tie = false;
    } else if (count == best_count && best_count > 0) {
      tie = true;
    }
  }
  if (!best || tie || best_count == 0) return std::nullopt;
  return best;
}

}  // namespace cfs
