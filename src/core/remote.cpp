#include "core/remote.h"

#include <algorithm>

namespace cfs {

RemotePeeringDetector::RemotePeeringDetector(
    const RemoteDetectorConfig& config)
    : config_(config) {}

double RemotePeeringDetector::delta_ms(const PeeringObservation& obs) const {
  return std::max(0.0, obs.far_rtt_ms - obs.near_rtt_ms);
}

bool RemotePeeringDetector::far_side_remote(
    const PeeringObservation& obs) const {
  return delta_ms(obs) > config_.rtt_delta_threshold_ms;
}

}  // namespace cfs
