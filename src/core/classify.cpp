#include "core/classify.h"

#include <algorithm>
#include <map>

namespace cfs {

std::string_view interconnection_type_name(InterconnectionType type) {
  switch (type) {
    case InterconnectionType::PublicLocal: return "public local";
    case InterconnectionType::PublicRemote: return "public remote";
    case InterconnectionType::PrivateCrossConnect: return "cross-connect";
    case InterconnectionType::PrivateTethering: return "tethering";
    case InterconnectionType::PrivateRemote: return "private remote";
    case InterconnectionType::Unknown: return "unknown";
  }
  return "?";
}

InterfaceAsnMap::InterfaceAsnMap(const IpToAsnService& ip2asn)
    : ip2asn_(ip2asn) {}

void InterfaceAsnMap::apply_alias_correction(const AliasSets& aliases) {
  for (const auto& set : aliases.sets) {
    if (set.size() < 2) continue;
    // Tally raw mappings across the router's interfaces.
    std::map<std::uint32_t, std::size_t> votes;
    for (const Ipv4 addr : set)
      if (const auto asn = ip2asn_.lookup(addr)) ++votes[asn->value];
    if (votes.empty()) continue;
    const auto majority = std::max_element(
        votes.begin(), votes.end(),
        [](const auto& a, const auto& b) { return a.second < b.second; });
    // Only a strict majority is trustworthy (Chang et al. heuristic).
    if (majority->second * 2 <= set.size()) continue;
    const Asn winner(majority->first);
    for (const Ipv4 addr : set) {
      const auto raw = ip2asn_.lookup(addr);
      if ((!raw || *raw != winner) && corrected_.emplace(addr, winner).second)
        record_change(addr);
    }
  }
}

void InterfaceAsnMap::apply_border_corrections(
    const std::unordered_map<Ipv4, Asn>& corrections) {
  for (const auto& [addr, asn] : corrections)
    if (corrected_.try_emplace(addr, asn).second) record_change(addr);
}

void InterfaceAsnMap::record_change(Ipv4 addr) {
  ++generation_;
  changed_.push_back(addr);
}

std::vector<Ipv4> InterfaceAsnMap::take_changed() {
  std::vector<Ipv4> out;
  out.swap(changed_);
  return out;
}

std::optional<Asn> InterfaceAsnMap::asn_of(Ipv4 addr) const {
  const auto it = corrected_.find(addr);
  if (it != corrected_.end()) return it->second;
  return ip2asn_.lookup(addr);
}

HopClassifier::HopClassifier(const IpToAsnService& ip2asn,
                             const InterfaceAsnMap& map)
    : ip2asn_(ip2asn), map_(map) {}

std::vector<PeeringObservation> HopClassifier::classify(
    const TraceResult& trace) const {
  std::vector<PeeringObservation> out;
  const auto& hops = trace.hops;

  for (std::size_t i = 0; i + 1 < hops.size(); ++i) {
    // Both hops of a candidate boundary must be consecutive TTLs and
    // responsive, otherwise the crossing is ambiguous and discarded.
    if (!hops[i].responded || !hops[i + 1].responded) continue;

    const auto ixp_here = ip2asn_.ixp_of(hops[i].address);
    const auto ixp_next = ip2asn_.ixp_of(hops[i + 1].address);

    if (!ixp_here && ixp_next) {
      // (IP_A, IP_e, IP_B): public peering over the IXP owning IP_e.
      const auto near_as = map_.asn_of(hops[i].address);
      if (!near_as) continue;
      // Far member ASN: from the hop after the LAN address when visible,
      // else from the alias-corrected mapping of the LAN interface itself.
      std::optional<Asn> far_as;
      if (i + 2 < hops.size() && hops[i + 2].responded)
        far_as = map_.asn_of(hops[i + 2].address);
      if (!far_as) far_as = map_.asn_of(hops[i + 1].address);
      if (!far_as || *far_as == *near_as) continue;

      PeeringObservation obs;
      obs.kind = PeeringKind::Public;
      obs.vp = trace.vp;
      obs.near_addr = hops[i].address;
      obs.near_as = *near_as;
      obs.far_addr = hops[i + 1].address;
      obs.far_as = *far_as;
      obs.ixp = *ixp_next;
      obs.near_rtt_ms = hops[i].rtt_ms;
      obs.far_rtt_ms = hops[i + 1].rtt_ms;
      out.push_back(obs);
      continue;
    }

    if (!ixp_here && !ixp_next) {
      // (IP_A, IP_B): private interconnection when the ASes differ.
      const auto near_as = map_.asn_of(hops[i].address);
      const auto far_as = map_.asn_of(hops[i + 1].address);
      if (!near_as || !far_as || *near_as == *far_as) continue;

      PeeringObservation obs;
      obs.kind = PeeringKind::Private;
      obs.vp = trace.vp;
      obs.near_addr = hops[i].address;
      obs.near_as = *near_as;
      obs.far_addr = hops[i + 1].address;
      obs.far_as = *far_as;
      obs.near_rtt_ms = hops[i].rtt_ms;
      obs.far_rtt_ms = hops[i + 1].rtt_ms;
      out.push_back(obs);
    }
  }
  return out;
}

std::vector<PeeringObservation> HopClassifier::classify_all(
    const std::vector<TraceResult>& traces) const {
  // Merge repeated observations of the same crossing, keeping minimum RTTs
  // (the paper repeats measurements to dodge transient congestion).
  std::map<std::pair<Ipv4, Ipv4>, PeeringObservation> merged;
  for (const TraceResult& trace : traces) {
    for (const PeeringObservation& obs : classify(trace)) {
      const auto key = std::make_pair(obs.near_addr, obs.far_addr);
      const auto it = merged.find(key);
      if (it == merged.end()) {
        merged.emplace(key, obs);
      } else {
        it->second.near_rtt_ms = std::min(it->second.near_rtt_ms,
                                          obs.near_rtt_ms);
        it->second.far_rtt_ms = std::min(it->second.far_rtt_ms,
                                         obs.far_rtt_ms);
      }
    }
  }
  std::vector<PeeringObservation> out;
  out.reserve(merged.size());
  for (auto& [key, obs] : merged) out.push_back(obs);
  return out;
}

}  // namespace cfs
