#include "core/metrics.h"

namespace cfs {
namespace {

template <class Get>
double sum_ms(const std::vector<IterationMetrics>& rows, Get get) {
  double total = 0.0;
  for (const IterationMetrics& row : rows) total += get(row);
  return total;
}

template <class Get>
std::size_t sum_count(const std::vector<IterationMetrics>& rows, Get get) {
  std::size_t total = 0;
  for (const IterationMetrics& row : rows) total += get(row);
  return total;
}

}  // namespace

double CfsMetrics::classify_ms() const {
  return sum_ms(iterations, [](const auto& r) { return r.classify_ms; });
}

double CfsMetrics::alias_ms() const {
  return sum_ms(iterations, [](const auto& r) { return r.alias_ms; });
}

double CfsMetrics::reclassify_ms() const {
  return sum_ms(iterations, [](const auto& r) { return r.reclassify_ms; });
}

double CfsMetrics::constrain_ms() const {
  return sum_ms(iterations, [](const auto& r) { return r.constrain_ms; });
}

double CfsMetrics::followup_ms() const {
  return sum_ms(iterations, [](const auto& r) { return r.followup_ms; });
}

std::size_t CfsMetrics::followups_launched() const {
  return sum_count(iterations,
                   [](const auto& r) { return r.followups_launched; });
}

std::size_t CfsMetrics::followups_skipped() const {
  return sum_count(iterations,
                   [](const auto& r) { return r.followups_skipped; });
}

}  // namespace cfs
