#include "core/obs_store.h"

#include <algorithm>

namespace cfs {

ObsStore::FindOrCreate ObsStore::find_or_create(Ipv4 near, Ipv4 far) {
  const std::uint64_t key = key_of(near, far);
  const auto [it, inserted] =
      index_.try_emplace(key, static_cast<Slot>(keys_.size()));
  if (inserted) {
    keys_.push_back(key);
    values_.emplace_back();
    live_.resize(keys_.size());
    live_.set(keys_.size() - 1);
    ++live_count_;
    order_stale_ = true;
    return {it->second, true};
  }
  const Slot s = it->second;
  if (!live_.test(s)) {  // revive a slot killed at the last refresh
    live_.set(s);
    ++live_count_;
    return {s, true};
  }
  return {s, false};
}

void ObsStore::kill_all() {
  live_.reset_all();
  live_count_ = 0;
}

const std::vector<ObsStore::Slot>& ObsStore::order() {
  if (order_stale_) {
    order_.resize(keys_.size());
    for (Slot i = 0; i < order_.size(); ++i) order_[i] = i;
    std::sort(order_.begin(), order_.end(),
              [this](Slot a, Slot b) { return keys_[a] < keys_[b]; });
    order_stale_ = false;
  }
  return order_;
}

}  // namespace cfs
