// Reverse-direction facility search (paper Section 4.3).
//
// Traceroute replies reveal only ingress interfaces, so the far side of a
// crossing stays dark from one direction. When the measurement platforms
// include vantage points *inside* the far-side AS, probing back toward the
// near-side AS turns the far router into a near-side observation and lets
// Steps 1-4 resolve it. This helper plans those reverse probes.
#pragma once

#include <functional>
#include <vector>

#include "core/report.h"
#include "traceroute/platforms.h"

namespace cfs {

struct ReverseProbe {
  VantagePointId vp;  // vantage point inside the far-side AS
  Ipv4 target;        // address inside the near-side AS
};

// Plans up to `budget` reverse probes for public-peering far interfaces
// that are not yet resolved. Deterministic given the report contents.
// `far_unresolved` answers "is this far address a known, still-unresolved
// interface?" — the engine's dense table and the report map both plug in.
std::vector<ReverseProbe> plan_reverse_probes(
    const Topology& topo, const VantagePointSet& vps,
    const std::function<bool(Ipv4)>& far_unresolved,
    const std::vector<PeeringObservation>& observations, std::size_t budget,
    std::optional<Platform> platform_filter = std::nullopt);

// Convenience overload over a materialised interface map.
std::vector<ReverseProbe> plan_reverse_probes(
    const Topology& topo, const VantagePointSet& vps,
    const std::unordered_map<Ipv4, InterfaceInference>& interfaces,
    const std::vector<PeeringObservation>& observations, std::size_t budget,
    std::optional<Platform> platform_filter = std::nullopt);

}  // namespace cfs
