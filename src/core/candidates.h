// Candidate-facility constraint sets (the data structure CFS narrows).
#pragma once

#include <vector>

#include "core/types.h"
#include "topology/topology.h"

namespace cfs {

// Sorted-vector set helpers (facility lists are kept sorted everywhere).
[[nodiscard]] std::vector<FacilityId> facility_intersection(
    const std::vector<FacilityId>& a, const std::vector<FacilityId>& b);
[[nodiscard]] bool facility_subset(const std::vector<FacilityId>& inner,
                                   const std::vector<FacilityId>& outer);

// Per-interface inference state.
struct InterfaceInference {
  Ipv4 addr;
  Asn asn;

  // No constraint applied yet vs. an (possibly still wide) candidate set.
  bool has_constraint = false;
  std::vector<FacilityId> candidates;  // sorted

  bool remote_suspect = false;  // Step 2 case 3a: no overlap with the IXP
  int resolved_iteration = -1;  // first iteration with a single candidate
  int conflicts = 0;            // constraints that would have emptied the set

  // Follow-up bookkeeping.
  std::vector<VantagePointId> seen_from;  // VPs whose traces contained addr
  std::vector<IxpId> queried_ixps;        // IXPs already used as constraints

  [[nodiscard]] bool resolved() const {
    return has_constraint && candidates.size() == 1;
  }
  [[nodiscard]] FacilityId facility() const { return candidates.front(); }

  // Intersects the candidate set with `allowed`; an intersection that would
  // empty the set is recorded as a conflict and ignored (stale data must
  // not erase good constraints). Returns true when the set narrowed.
  bool constrain(const std::vector<FacilityId>& allowed, int iteration);

  // Metro shared by all candidates, if any (the paper's "constrained to a
  // single city" outcome for ~9% of unresolved interfaces).
  [[nodiscard]] std::optional<MetroId> city(const Topology& topo) const;
};

}  // namespace cfs
