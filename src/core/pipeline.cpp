#include "core/pipeline.h"

#include <algorithm>

#include "util/log.h"

namespace cfs {

PipelineConfig PipelineConfig::tiny() {
  PipelineConfig c;
  c.generator = GeneratorConfig::tiny();
  c.platforms.atlas_target = 40;
  c.platforms.iplane_target = 8;
  c.platforms.ark_target = 5;
  c.cfs.max_iterations = 20;
  c.cfs.followup_interfaces = 16;
  return c;
}

PipelineConfig PipelineConfig::small_scale() {
  PipelineConfig c;
  c.generator = GeneratorConfig::small_scale();
  c.platforms.atlas_target = 250;
  c.platforms.iplane_target = 30;
  c.platforms.ark_target = 15;
  c.cfs.max_iterations = 40;
  return c;
}

PipelineConfig PipelineConfig::paper_scale() {
  PipelineConfig c;
  c.generator = GeneratorConfig::paper_scale();
  c.platforms.atlas_target = 1600;
  c.platforms.iplane_target = 120;
  c.platforms.ark_target = 60;
  c.cfs.max_iterations = 100;
  c.cfs.followup_interfaces = 64;
  return c;
}

Pipeline::Pipeline(const PipelineConfig& config)
    : config_(config),
      topo_(generate_topology(config.generator)),
      rng_(config.seed) {
  // Resolve the thread count, then only build a pool when genuinely
  // parallel: --threads 1 is the reference implementation and must run the
  // historical serial code with no pool in existence.
  threads_ = config.threads == 0
                 ? static_cast<int>(ThreadPool::hardware_threads())
                 : std::max(1, config.threads);
  if (threads_ > 1)
    pool_ = std::make_unique<ThreadPool>(static_cast<std::size_t>(threads_));

  // The plane only exists when some fault intensity is non-zero, so the
  // zero-plan configuration runs the exact pre-fault-plane code paths.
  if (config.faults.any())
    faults_ = std::make_unique<FaultPlane>(config.faults, config.seed);

  auto lg_config = config.looking_glasses;
  lg_config.seed ^= config.seed;
  lgs_ = std::make_unique<LookingGlassDirectory>(topo_, lg_config);

  auto platform_config = config.platforms;
  platform_config.seed ^= config.seed;
  vps_ = std::make_unique<VantagePointSet>(topo_, *lgs_, platform_config);

  routing_ = std::make_unique<RoutingOracle>(topo_);
  forwarding_ = std::make_unique<ForwardingEngine>(topo_, *routing_);
  engine_ = std::make_unique<TracerouteEngine>(
      topo_, *forwarding_, config.engine, config.seed, faults_.get());
  campaign_ = std::make_unique<MeasurementCampaign>(topo_, *engine_, *lgs_,
                                                    faults_.get());
  campaign_->set_pool(pool_.get());

  ip2asn_ = std::make_unique<IpToAsnService>(topo_);
  auto pdb_config = config.peeringdb;
  pdb_config.seed ^= config.seed;
  PeeringDb raw_pdb(topo_, pdb_config);
  auto web_config = config.websites;
  web_config.seed ^= config.seed;
  noc_ = std::make_unique<NocWebsiteSource>(topo_, web_config);
  ixp_sites_ = std::make_unique<IxpWebsiteSource>(topo_, web_config);
  facility_db_ = std::make_unique<FacilityDatabase>(topo_, std::move(raw_pdb),
                                                    *noc_, *ixp_sites_);
  if (faults_ != nullptr && config.faults.peeringdb_withheld > 0.0)
    facility_db_->withhold(topo_, *faults_, config.faults.peeringdb_withheld);

  communities_ = std::make_unique<CommunityRegistry>(
      topo_, config.community_adoption, config.seed ^ 0xc0117);
  auto dns_config = config.dns;
  dns_config.seed ^= config.seed;
  // DNS rot is already hash-per-address; degrading the snapshot just raises
  // the missing-record rate (no draw-order coupling to disturb).
  if (faults_ != nullptr)
    dns_config.record_missing = std::min(
        1.0, dns_config.record_missing + config.faults.dns_withheld);
  dns_ = std::make_unique<DnsNames>(topo_, dns_config);
  drop_ = std::make_unique<DropParser>(*dns_);
  auto geo_config = config.geoip;
  geo_config.seed ^= config.seed;
  if (faults_ != nullptr)
    geo_config.record_missing = config.faults.geoip_withheld;
  geoip_ = std::make_unique<GeoIpDb>(topo_, geo_config);

  ValidationHarness::Config vconfig;
  vconfig.cooperating_operators = default_targets(2, 0);
  validation_ = std::make_unique<ValidationHarness>(
      topo_, *communities_, *lgs_, *dns_, *drop_, *ixp_sites_, vconfig);
}

std::vector<Asn> Pipeline::default_targets(int content, int transit) const {
  // Largest footprint first within each type.
  std::vector<const AutonomousSystem*> contents;
  std::vector<const AutonomousSystem*> transits;
  for (const auto& as : topo_.ases()) {
    if (as.type == AsType::Content) contents.push_back(&as);
    if (as.type == AsType::Tier1 || as.type == AsType::Transit)
      transits.push_back(&as);
  }
  auto by_footprint = [](const AutonomousSystem* a,
                         const AutonomousSystem* b) {
    return a->facilities.size() > b->facilities.size();
  };
  std::sort(contents.begin(), contents.end(), by_footprint);
  std::sort(transits.begin(), transits.end(), by_footprint);

  std::vector<Asn> out;
  for (int i = 0; i < content && i < static_cast<int>(contents.size()); ++i)
    out.push_back(contents[static_cast<std::size_t>(i)]->asn);
  for (int i = 0; i < transit && i < static_cast<int>(transits.size()); ++i)
    out.push_back(transits[static_cast<std::size_t>(i)]->asn);
  return out;
}

std::vector<TraceResult> Pipeline::initial_campaign(
    const std::vector<Asn>& target_ases, double vp_fraction) {
  // Sample vantage points per platform, as the paper uses "more than 95%
  // of active Atlas nodes" but rations looking glasses.
  std::vector<const VantagePoint*> probes;
  for (const Platform platform :
       {Platform::RipeAtlas, Platform::LookingGlass, Platform::IPlane,
        Platform::Ark}) {
    auto pool = vps_->of(platform);
    const std::size_t want = std::max<std::size_t>(
        1, static_cast<std::size_t>(static_cast<double>(pool.size()) *
                                    vp_fraction));
    const auto idx = rng_.sample_indices(pool.size(),
                                         std::min(want, pool.size()));
    for (const std::size_t i : idx) probes.push_back(pool[i]);
  }

  std::vector<Ipv4> targets;
  for (const Asn asn : target_ases) {
    const auto per_as = MeasurementCampaign::targets_for(topo_, asn);
    targets.insert(targets.end(), per_as.begin(), per_as.end());
  }

  log_info() << "initial campaign: " << probes.size() << " VPs x "
             << targets.size() << " targets";
  TraceSpan span("pipeline.initial_campaign");
  span.arg("vps", probes.size());
  span.arg("targets", targets.size());
  auto traces = campaign_->run(probes, targets);
  span.arg("traces", traces.size());
  return traces;
}

CfsReport Pipeline::run_cfs(std::vector<TraceResult> traces) {
  CfsConfig cfs_config = config_.cfs;
  cfs_config.threads = threads_;
  ConstrainedFacilitySearch cfs(topo_, *facility_db_, *ip2asn_, *campaign_,
                                *vps_, cfs_config, pool_.get());
  CfsReport report = cfs.run(std::move(traces));
  // CFS only sees the facility database; fold in what the other degraded
  // sources withheld so the report accounts for the full fault plan.
  report.metrics.faults.records_withheld += geoip_->records_withheld();
  // Everything this pipeline did — topology generation, campaign, CFS —
  // as a per-run view of the process-wide registry.
  report.metrics.registry = Trace::metrics_since(trace_baseline_);
  return report;
}

}  // namespace cfs
