// Inference results: per-interface facility inferences, per-link
// interconnection classifications, convergence history and router-level
// statistics (multi-role and multi-IXP routers, Section 5).
#pragma once

#include <unordered_map>

#include "alias/midar.h"
#include "core/candidates.h"
#include "core/metrics.h"
#include "core/types.h"

namespace cfs {

struct LinkInference {
  PeeringObservation obs;  // representative observation of the crossing
  InterconnectionType type = InterconnectionType::Unknown;
  std::optional<FacilityId> near_facility;
  std::optional<FacilityId> far_facility;
  bool far_by_proximity = false;  // far end inferred by the heuristic
};

struct CfsReport {
  std::unordered_map<Ipv4, InterfaceInference> interfaces;
  std::vector<LinkInference> links;
  // Cumulative resolved-interface count after each iteration (Fig. 7).
  std::vector<std::size_t> resolved_per_iteration;
  AliasSets aliases;
  std::size_t traces_used = 0;
  std::size_t iterations_run = 0;
  // Per-iteration stage accounting (timings never affect the inference).
  CfsMetrics metrics;

  [[nodiscard]] const InterfaceInference* find(Ipv4 addr) const;

  [[nodiscard]] std::size_t observed_interfaces() const {
    return interfaces.size();
  }
  [[nodiscard]] std::size_t resolved_interfaces() const;
  [[nodiscard]] double resolved_fraction() const;
  // Unresolved interfaces whose candidates all sit in one metro.
  [[nodiscard]] std::size_t city_constrained(const Topology& topo) const;
  // Interfaces with no facility data at all.
  [[nodiscard]] std::size_t no_data_interfaces() const;

  struct RouterStats {
    std::size_t routers = 0;     // alias sets observed in peering links
    std::size_t multi_role = 0;  // implement both public and private
    std::size_t multi_ixp = 0;   // public peering over >= 2 IXPs
  };
  [[nodiscard]] RouterStats router_stats() const;
};

}  // namespace cfs
