#include "core/validation.h"

#include <algorithm>

namespace cfs {

std::string_view validation_source_name(ValidationSource source) {
  switch (source) {
    case ValidationSource::DirectFeedback: return "direct feedback";
    case ValidationSource::BgpCommunities: return "BGP communities";
    case ValidationSource::DnsRecords: return "DNS hints";
    case ValidationSource::IxpWebsites: return "IXP websites";
  }
  return "?";
}

std::string_view validation_link_type_name(ValidationLinkType type) {
  switch (type) {
    case ValidationLinkType::CrossConnect: return "cross-connect";
    case ValidationLinkType::PublicLocal: return "public peering";
    case ValidationLinkType::Remote: return "remote";
    case ValidationLinkType::Tethering: return "tethering";
  }
  return "?";
}

ValidationHarness::ValidationHarness(
    const Topology& topo, const CommunityRegistry& communities,
    const LookingGlassDirectory& lgs, const DnsNames& dns,
    const DropParser& drop, const IxpWebsiteSource& ixp_sites, Config config)
    : topo_(topo),
      communities_(communities),
      lgs_(lgs),
      dns_(dns),
      drop_(drop),
      ixp_sites_(ixp_sites),
      config_(std::move(config)) {}

std::optional<FacilityId> ValidationHarness::true_facility(Ipv4 addr) const {
  const Interface* iface = topo_.find_interface(addr);
  if (iface == nullptr) return std::nullopt;
  return topo_.router(iface->router).facility;
}

InterconnectionType ValidationHarness::true_link_type(
    const PeeringObservation& obs) const {
  if (obs.kind == PeeringKind::Public) {
    const auto ixp_id = topo_.ixp_of_address(obs.far_addr);
    if (!ixp_id) return InterconnectionType::Unknown;
    const Ixp& ixp = topo_.ixp(*ixp_id);
    // Far port: the LAN address directly identifies it.
    const IxpPort* far_port = nullptr;
    for (const auto& port : ixp.ports)
      if (port.lan_address == obs.far_addr) far_port = &port;
    // Near port: the near AS's port terminating on the near router.
    const Interface* near_iface = topo_.find_interface(obs.near_addr);
    const IxpPort* near_port =
        near_iface ? ixp.port_of(topo_.router(near_iface->router).owner,
                                 near_iface->router)
                   : nullptr;
    const bool remote = (far_port != nullptr && far_port->remote) ||
                        (near_port != nullptr && near_port->remote);
    return remote ? InterconnectionType::PublicRemote
                  : InterconnectionType::PublicLocal;
  }

  const Interface* iface = topo_.find_interface(obs.near_addr);
  if (iface == nullptr || !iface->link.valid())
    return InterconnectionType::Unknown;
  const Link& link = topo_.link(iface->link);
  switch (link.type) {
    case LinkType::Tethering:
      return InterconnectionType::PrivateTethering;
    case LinkType::PrivateCrossConnect: {
      const FacilityId fa = topo_.router(link.a.router).facility;
      const FacilityId fb = topo_.router(link.b.router).facility;
      // Interconnected facilities of one metro still count as a
      // cross-connect (Section 2: operators link their metro campuses);
      // only a circuit leaving the metro is a remote private interconnect.
      if (fa == fb || topo_.metro_of(fa) == topo_.metro_of(fb))
        return InterconnectionType::PrivateCrossConnect;
      return InterconnectionType::PrivateRemote;
    }
    default:
      return InterconnectionType::Unknown;
  }
}

ValidationLinkType ValidationHarness::bucket(InterconnectionType type) {
  switch (type) {
    case InterconnectionType::PrivateCrossConnect:
      return ValidationLinkType::CrossConnect;
    case InterconnectionType::PublicLocal:
      return ValidationLinkType::PublicLocal;
    case InterconnectionType::PublicRemote:
    case InterconnectionType::PrivateRemote:
      return ValidationLinkType::Remote;
    case InterconnectionType::PrivateTethering:
      return ValidationLinkType::Tethering;
    case InterconnectionType::Unknown:
      return ValidationLinkType::PublicLocal;  // not reached in practice
  }
  return ValidationLinkType::PublicLocal;
}

void ValidationHarness::score(SourceAccuracy& acc, FacilityId inferred,
                              FacilityId reference) const {
  ++acc.total;
  if (inferred == reference) {
    ++acc.correct;
  } else if (topo_.metro_of(inferred) == topo_.metro_of(reference)) {
    ++acc.city_correct;
  }
}

ValidationHarness::Breakdown ValidationHarness::validate(
    const CfsReport& report) const {
  Breakdown out;

  // BGP-capable looking glasses per AS (coverage condition for the
  // communities source).
  std::unordered_map<std::uint32_t, bool> has_bgp_lg;
  for (const auto& entry : lgs_.entries())
    if (entry.supports_bgp) has_bgp_lg[entry.owner.value] = true;

  // Member-port tables of publishing IXPs, indexed by LAN address.
  std::unordered_map<Ipv4, IxpMemberPortRecord> published_ports;
  for (const auto& ixp : topo_.ixps()) {
    const auto table = ixp_sites_.member_table(ixp.id);
    if (!table) continue;
    for (const auto& record : *table)
      published_ports.emplace(record.lan_address, record);
  }

  const auto coop = config_.cooperating_operators;
  auto cooperating = [&](Asn asn) {
    return std::find(coop.begin(), coop.end(), asn) != coop.end();
  };

  for (const LinkInference& link : report.links) {
    const ValidationLinkType type_bucket = bucket(link.type);
    const auto* near = report.find(link.obs.near_addr);

    // --- direct feedback: operators confirm their own interfaces ---
    if (near != nullptr && near->resolved() && cooperating(link.obs.near_as)) {
      if (const auto truth = true_facility(link.obs.near_addr))
        score(out[{ValidationSource::DirectFeedback, type_bucket}],
              near->facility(), *truth);
    }

    // --- BGP communities: ingress tags of adopting transit networks ---
    if (near != nullptr && near->resolved() &&
        communities_.tags_ingress(link.obs.near_as) &&
        has_bgp_lg.contains(link.obs.near_as.value)) {
      if (const auto truth = true_facility(link.obs.near_addr)) {
        // The route's ingress community is generated at the true border
        // facility and decoded through the published dictionary.
        if (const auto tag = communities_.tag_for(link.obs.near_as, *truth)) {
          if (const auto decoded = communities_.decode(*tag))
            score(out[{ValidationSource::BgpCommunities, type_bucket}],
                  near->facility(), *decoded);
        }
      }
    }

    // --- DNS records: facility-encoding hostnames, current conventions ---
    if (near != nullptr && near->resolved()) {
      const auto* as = topo_.find_as(link.obs.near_as);
      if (as != nullptr && as->type != AsType::Content &&
          as->dns == DnsConvention::FacilityCode) {
        const auto hint = drop_.geolocate(link.obs.near_addr);
        if (hint.level == DnsGeoHint::Level::Facility)
          score(out[{ValidationSource::DnsRecords, type_bucket}],
                near->facility(), hint.facility);
      }
    }

    // --- IXP websites: published member-port tables ---
    if (link.obs.kind == PeeringKind::Public && link.far_facility) {
      const auto it = published_ports.find(link.obs.far_addr);
      if (it != published_ports.end())
        score(out[{ValidationSource::IxpWebsites, type_bucket}],
              *link.far_facility, it->second.facility);
    }
  }
  return out;
}

SourceAccuracy ValidationHarness::oracle_interface_accuracy(
    const CfsReport& report) const {
  SourceAccuracy acc;
  for (const auto& [addr, inf] : report.interfaces) {
    if (!inf.resolved()) continue;
    const auto truth = true_facility(addr);
    if (!truth) continue;
    score(acc, inf.facility(), *truth);
  }
  return acc;
}

std::map<std::pair<InterconnectionType, InterconnectionType>, std::size_t>
ValidationHarness::link_type_confusion(const CfsReport& report) const {
  std::map<std::pair<InterconnectionType, InterconnectionType>, std::size_t>
      out;
  for (const LinkInference& link : report.links) {
    const InterconnectionType truth = true_link_type(link.obs);
    if (truth == InterconnectionType::Unknown) continue;
    ++out[{link.type, truth}];
  }
  return out;
}

}  // namespace cfs
