// RTT-based remote-peering detection (Castro et al., CoNEXT 2014 — the
// method the paper adopts in Step 2).
//
// Crossing an IXP fabric between two metro-local routers adds well under a
// millisecond; a reseller-backed remote peer or a long-haul private circuit
// adds the propagation delay to wherever the far router actually lives.
// The detector thresholds the *minimum* RTT increment across the boundary
// hop over repeated measurements, which cancels transient queueing.
#pragma once

#include "core/types.h"

namespace cfs {

struct RemoteDetectorConfig {
  // Minimum RTT increase across the peering hop implying the far router is
  // outside the metro (round-trip milliseconds).
  double rtt_delta_threshold_ms = 3.0;
};

class RemotePeeringDetector {
 public:
  explicit RemotePeeringDetector(const RemoteDetectorConfig& config = {});

  // RTT increment across the observed boundary.
  [[nodiscard]] double delta_ms(const PeeringObservation& obs) const;

  // True when the far side of the observation looks remote.
  [[nodiscard]] bool far_side_remote(const PeeringObservation& obs) const;

 private:
  RemoteDetectorConfig config_;
};

}  // namespace cfs
