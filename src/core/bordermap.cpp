#include "core/bordermap.h"

namespace cfs {

BorderMapper::BorderMapper(const IpToAsnService& ip2asn,
                           const BorderMapConfig& config)
    : ip2asn_(ip2asn), config_(config) {}

void BorderMapper::ingest(const TraceResult& trace) {
  const auto& hops = trace.hops;
  for (std::size_t i = 0; i < hops.size(); ++i) {
    if (!hops[i].responded) continue;
    // IXP LAN addresses are handled by the public-peering classifier.
    if (ip2asn_.ixp_of(hops[i].address)) continue;
    Evidence& evidence = stats_[hops[i].address];

    if (i + 1 < hops.size() && hops[i + 1].responded) {
      if (ip2asn_.ixp_of(hops[i + 1].address)) {
        ++evidence.ixp_successors;
      } else if (const auto succ = ip2asn_.lookup(hops[i + 1].address)) {
        ++evidence.successor_as[succ->value];
      }
    }
    if (i > 0 && hops[i - 1].responded &&
        !ip2asn_.ixp_of(hops[i - 1].address)) {
      if (const auto pred = ip2asn_.lookup(hops[i - 1].address))
        ++evidence.predecessor_as[pred->value];
    }
  }
}

void BorderMapper::ingest_all(const std::vector<TraceResult>& traces) {
  for (const TraceResult& trace : traces) ingest(trace);
}

std::unordered_map<Ipv4, Asn> BorderMapper::corrections() const {
  std::unordered_map<Ipv4, Asn> out;
  for (const auto& [addr, evidence] : stats_) {
    const auto raw = ip2asn_.lookup(addr);
    if (!raw) continue;

    std::size_t total = 0;
    std::size_t own = 0;  // successors staying in the raw AS
    std::uint32_t best_as = 0;
    std::size_t best_count = 0;
    for (const auto& [asn, count] : evidence.successor_as) {
      total += count;
      if (asn == raw->value) own += count;
      if (asn != raw->value && count > best_count) {
        best_count = count;
        best_as = asn;
      }
    }
    if (total < config_.min_observations) continue;
    // X continuing inside its raw AS — or fronting an IXP — means X really
    // is an internal or genuine border interface: never correct those.
    if (own > 0 || evidence.ixp_successors > 0) continue;
    if (static_cast<double>(best_count) / static_cast<double>(total) <
        config_.majority)
      continue;

    // Predecessors must stay in the raw AS — that is what makes X the far
    // end of a subnet numbered from the near side, rather than an address
    // block delegated wholesale to another network.
    std::size_t pred_total = 0;
    std::size_t pred_raw = 0;
    for (const auto& [asn, count] : evidence.predecessor_as) {
      pred_total += count;
      if (asn == raw->value) pred_raw += count;
    }
    if (pred_total == 0 ||
        static_cast<double>(pred_raw) / static_cast<double>(pred_total) <
            config_.majority)
      continue;

    out.emplace(addr, Asn(best_as));
  }
  return out;
}

}  // namespace cfs
