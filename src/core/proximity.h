// Switch-proximity heuristic (paper Section 4.4).
//
// IXP members on the same access or backhaul switch exchange traffic
// locally, so the far-end router of a public peering is most often the
// member's port *nearest* the near-end's facility. A detailed switch map
// is rarely public; the heuristic learns a probabilistic proximity ranking
// from the (near facility, far facility) pairs that earlier CFS stages
// resolved, then uses the ranking to pick a far-end facility when a member
// has several candidate IXP facilities.
#pragma once

#include <optional>
#include <span>
#include <unordered_map>

#include "core/types.h"
#include "topology/topology.h"

namespace cfs {

class ProximityHeuristic {
 public:
  // Records a fully-resolved public peering: near-end router at
  // `near_facility`, far-end at `far_facility`, over `ixp`.
  void observe(IxpId ixp, FacilityId near_facility, FacilityId far_facility);

  // Most-proximate far-end facility among the candidates, given the
  // resolved near-end facility; nullopt when the ranking cannot separate
  // the candidates (ties or no observations — the heuristic abstains, as
  // in the paper's same-backhaul case).
  [[nodiscard]] std::optional<FacilityId> infer_far(
      IxpId ixp, FacilityId near_facility,
      std::span<const FacilityId> candidates) const;

  [[nodiscard]] std::size_t observations() const { return observations_; }

 private:
  // (ixp, near, far) -> count
  std::unordered_map<std::uint64_t, std::size_t> counts_;
  std::size_t observations_ = 0;

  static std::uint64_t key(IxpId ixp, FacilityId near_facility,
                           FacilityId far_facility);
};

}  // namespace cfs
