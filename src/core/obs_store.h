// Slot-stable, key-ordered peering-observation store.
//
// The CFS engines address observations by the pair (near_addr, far_addr),
// packed into one u64 key whose numeric order equals the old
// std::pair<Ipv4, Ipv4> ordering — so "walk the store in ascending key
// order" (the invariant both engines' constraint passes and the final
// link-classification pass depend on) survives the move from a std::map
// to flat columns.
//
// Slots are dense u32 handles minted once per key and NEVER reused for a
// different key: an alias refresh that rebuilds the store marks every
// slot dead (`kill_all`) and replays the per-trace caches, reviving the
// slots that still exist. Dead slots keep their key and their position in
// the order index; worklist bits pointing at them are simply skipped,
// exactly like the old code's "key may have vanished at refresh" lookup
// miss. This slot stability is what lets the engine keep per-observation
// state (dirty/pending bits, interface back-references) as plain arrays
// across refreshes (docs/ALGORITHM.md "Memory layout").
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/types.h"
#include "util/bitset.h"

namespace cfs {

class ObsStore {
 public:
  using Slot = std::uint32_t;

  // Numeric order of keys == lexicographic order of (near, far).
  [[nodiscard]] static constexpr std::uint64_t key_of(Ipv4 near, Ipv4 far) {
    return (std::uint64_t{near.value()} << 32) | far.value();
  }

  struct FindOrCreate {
    Slot slot = 0;
    // True when the slot was minted or revived: the stored value is stale
    // and the caller must assign it before reading.
    bool created = false;
  };
  FindOrCreate find_or_create(Ipv4 near, Ipv4 far);

  [[nodiscard]] PeeringObservation& value(Slot s) { return values_[s]; }
  [[nodiscard]] const PeeringObservation& value(Slot s) const {
    return values_[s];
  }
  [[nodiscard]] std::uint64_t key(Slot s) const { return keys_[s]; }
  [[nodiscard]] bool live(Slot s) const { return live_.test(s); }
  [[nodiscard]] std::size_t slots() const { return keys_.size(); }
  [[nodiscard]] std::size_t live_count() const { return live_count_; }

  // Marks every slot dead; keys, values and the key->slot index survive so
  // a replay can revive slots in place.
  void kill_all();

  // Ascending-key slot permutation over ALL slots (live and dead).
  // Rebuilt lazily after new slots are minted; consumers skip dead slots.
  [[nodiscard]] const std::vector<Slot>& order();

  // Copies for the refresh diff (old values stay comparable after the
  // in-place replay overwrote the live ones).
  [[nodiscard]] std::vector<PeeringObservation> values_snapshot() const {
    return values_;
  }
  [[nodiscard]] const DynamicBitset& live_bits() const { return live_; }

 private:
  std::unordered_map<std::uint64_t, Slot> index_;
  // SoA columns, indexed by slot.
  std::vector<std::uint64_t> keys_;
  std::vector<PeeringObservation> values_;
  DynamicBitset live_;
  std::vector<Slot> order_;
  bool order_stale_ = true;
  std::size_t live_count_ = 0;
};

}  // namespace cfs
