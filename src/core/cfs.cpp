#include "core/cfs.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "core/bordermap.h"
#include "core/iface_table.h"
#include "core/obs_store.h"
#include "core/reverse.h"
#include "util/arena.h"
#include "util/intern.h"
#include "util/log.h"
#include "util/rng.h"
#include "util/setops.h"
#include "util/trace.h"

namespace cfs {

struct ConstrainedFacilitySearch::State {
  State(const IpToAsnService& ip2asn, const Topology& topo,
        std::uint64_t seed)
      : asn_map(ip2asn), resolver(topo, seed), border(ip2asn),
        rng(seed ^ 0x5eedULL) {}

  std::vector<TraceResult> traces;
  std::size_t classified_upto = 0;

  // ---- dense-handle hot state ----
  // Every responding hop address and peering endpoint is interned once;
  // all hot columns below are indexed by the resulting u32 handle.
  Interner<Ipv4> addrs;
  IfaceTable ifaces;  // rows by handle; present() == "is a peering iface"
  ObsStore store;     // slot-stable (near, far) observation store
  // Worklist bits by observation slot: `dirty` is this iteration's pass,
  // `pending` collects mid-pass discoveries at-or-before the cursor
  // (promoted into `dirty` at iteration end, like the old std::set pair).
  DynamicBitset dirty;
  DynamicBitset pending;
  std::vector<std::vector<std::uint32_t>> obs_by_iface;    // handle -> slots
  std::vector<std::vector<std::uint32_t>> traces_by_addr;  // handle -> trace
  // Change clock: bumped whenever a candidate set changes; alias sets
  // remember the tick they were last intersected at. Handle-indexed with 0
  // meaning "never changed".
  std::vector<std::uint64_t> iface_changed;
  std::uint64_t tick = 0;

  std::size_t aliased_addr_count = 0;  // addresses covered by last run
  InterfaceAsnMap asn_map;
  AliasSets aliases;
  AliasResolver resolver;
  // Border-mapping evidence accumulates per trace, so the incremental
  // engine keeps one mapper fed with each trace exactly once; the full
  // engine rebuilds a fresh one per refresh (identical corrections).
  BorderMapper border;
  std::size_t border_upto = 0;
  Rng rng;
  std::vector<std::size_t> history;
  // Facility -> ASes present (per the public database), for follow-ups.
  std::unordered_map<std::uint32_t, std::vector<Asn>> present_at;
  // Hosting AS -> vantage points inside it (LG-in-backbone follow-ups).
  std::unordered_map<std::uint32_t, std::vector<const VantagePoint*>>
      vps_by_as;
  // Observed AS adjacency (from classified crossings) as sorted-unique
  // neighbour columns keyed by a dense AS handle.
  Interner<Asn> as_ids;
  std::vector<std::vector<std::uint32_t>> neighbors;  // handle -> asn values
  // Vantage points usable for follow-ups (after any platform filter).
  std::vector<const VantagePoint*> usable_vps;

  // ---- incremental engine ----
  // Per-trace classification results, tagged with the asn-map generation
  // they were derived under. A refresh re-derives only traces whose cached
  // generation predates a correction touching one of their hop addresses.
  struct TraceCache {
    std::uint64_t generation = 0;
    std::vector<PeeringObservation> obs;
  };
  std::vector<TraceCache> trace_cache;  // parallel to `traces`
  std::vector<std::uint64_t> alias_set_ticks;

  CfsMetrics metrics;

  // Interns `addr` and grows every handle-indexed column to cover it.
  std::uint32_t intern_addr(Ipv4 addr) {
    const std::uint32_t h = addrs.intern(addr);
    if (addrs.size() > traces_by_addr.size()) {
      traces_by_addr.resize(addrs.size());
      obs_by_iface.resize(addrs.size());
      iface_changed.resize(addrs.size(), 0);
      ifaces.ensure_rows(addrs.size());
    }
    return h;
  }

  void add_neighbor(Asn a, Asn b) {
    const std::uint32_t h = as_ids.intern(a);
    if (as_ids.size() > neighbors.size()) neighbors.resize(as_ids.size());
    auto& v = neighbors[h];
    const auto it = std::lower_bound(v.begin(), v.end(), b.value);
    if (it == v.end() || *it != b.value) v.insert(it, b.value);
  }

  [[nodiscard]] bool as_neighbors(Asn a, Asn b) const {
    const auto h = as_ids.find(a);
    if (!h) return false;
    const auto& v = neighbors[*h];
    return std::binary_search(v.begin(), v.end(), b.value);
  }

  struct Absorbed {
    bool created = false;
    bool changed = false;
    std::uint32_t slot = 0;
    std::uint32_t near = 0;  // addr handles of the endpoints
    std::uint32_t far = 0;
  };
  // Folds one classified observation into the store and the per-interface
  // side state (asn, vantage points, adjacency). Both engines and the
  // refresh replay funnel through here so the merged state is identical
  // whichever path produced it.
  Absorbed absorb(const PeeringObservation& obs) {
    Absorbed result;
    const ObsStore::FindOrCreate fc =
        store.find_or_create(obs.near_addr, obs.far_addr);
    result.slot = fc.slot;
    if (store.slots() > dirty.size()) {
      dirty.resize(store.slots());
      pending.resize(store.slots());
    }
    if (fc.created) {
      store.value(fc.slot) = obs;
      result.created = true;
    } else {
      PeeringObservation& cur = store.value(fc.slot);
      const PeeringObservation before = cur;
      cur.near_rtt_ms = std::min(cur.near_rtt_ms, obs.near_rtt_ms);
      cur.far_rtt_ms = std::min(cur.far_rtt_ms, obs.far_rtt_ms);
      result.changed = !(before == cur);
    }

    result.near = intern_addr(obs.near_addr);
    ifaces.touch(result.near, obs.near_addr, obs.near_as);
    ifaces.note_seen_from(result.near, obs.vp);
    result.far = intern_addr(obs.far_addr);
    ifaces.touch(result.far, obs.far_addr, obs.far_as);

    add_neighbor(obs.near_as, obs.far_as);
    add_neighbor(obs.far_as, obs.near_as);
    return result;
  }
};

// See cfs.h: the two pre-sized actions cover every branch of Step 2 (near
// then far, in the old mutation order); `owned_*` back any computed
// intersection the actions point into, everything else points at the
// facility database's stable vectors.
struct ConstrainedFacilitySearch::Directive {
  struct Action {
    std::uint32_t iface = 0;             // addr handle
    const FacilityId* allowed = nullptr; // nullptr => no constrain call
    std::uint32_t n = 0;
    bool mark_remote = false;            // set the row's remote_suspect
    bool record_ixp = false;             // note the obs IXP as queried
  };
  Action acts[2];
  int n_acts = 0;
  std::vector<FacilityId> owned_near;
  std::vector<FacilityId> owned_far;
};

ConstrainedFacilitySearch::ConstrainedFacilitySearch(
    const Topology& topo, const FacilityDatabase& db,
    const IpToAsnService& ip2asn, MeasurementCampaign& campaign,
    const VantagePointSet& vps, const CfsConfig& config, ThreadPool* pool)
    : topo_(topo),
      db_(db),
      ip2asn_(ip2asn),
      campaign_(campaign),
      vps_(vps),
      config_(config),
      pool_(pool) {}

std::vector<std::vector<PeeringObservation>>
ConstrainedFacilitySearch::classify_range(
    const HopClassifier& classifier, const std::vector<TraceResult>& traces,
    const std::vector<std::uint32_t>& indices) const {
  // Below this the fan-out overhead beats the classification work itself.
  constexpr std::size_t kParallelThreshold = 32;
  std::vector<std::vector<PeeringObservation>> out(indices.size());
  TraceSpan span("cfs.classify");
  span.arg("traces", indices.size());
  if (pool_ != nullptr && indices.size() >= kParallelThreshold) {
    // Chunked so each worker's slice shows up as one timeline span; the
    // chunk boundaries are a pure function of (n, workers), so the spans
    // describe the same work at any thread count.
    pool_->parallel_for_chunks(
        indices.size(), [&](std::size_t begin, std::size_t end) {
          TraceSpan chunk("cfs.classify_chunk");
          chunk.arg("begin", begin);
          chunk.arg("count", end - begin);
          for (std::size_t i = begin; i < end; ++i)
            out[i] = classifier.classify(traces[indices[i]]);
        });
  } else {
    for (std::size_t i = 0; i < indices.size(); ++i)
      out[i] = classifier.classify(traces[indices[i]]);
  }
  return out;
}

std::size_t ConstrainedFacilitySearch::ingest_traces(
    State& state, std::vector<TraceResult> fresh, IterationMetrics* im) const {
  for (auto& trace : fresh) state.traces.push_back(std::move(trace));

  std::size_t classified = 0;
  const HopClassifier classifier(ip2asn_, state.asn_map);
  if (config_.incremental) state.trace_cache.resize(state.traces.size());
  // Classification is pure per trace; fan it across the pool into
  // index-ordered slots, then fold serially in trace order below.
  std::vector<std::uint32_t> fresh_idx;
  fresh_idx.reserve(state.traces.size() - state.classified_upto);
  for (std::size_t i = state.classified_upto; i < state.traces.size(); ++i)
    fresh_idx.push_back(static_cast<std::uint32_t>(i));
  std::vector<std::vector<PeeringObservation>> classified_obs =
      classify_range(classifier, state.traces, fresh_idx);
  for (std::size_t i = state.classified_upto; i < state.traces.size(); ++i) {
    std::vector<PeeringObservation> obs_list =
        std::move(classified_obs[i - state.classified_upto]);
    classified += obs_list.size();

    if (config_.incremental) {
      for (const Hop& hop : state.traces[i].hops) {
        if (!hop.responded) continue;
        auto& slot = state.traces_by_addr[state.intern_addr(hop.address)];
        if (slot.empty() || slot.back() != i)
          slot.push_back(static_cast<std::uint32_t>(i));
      }
      state.trace_cache[i].generation = state.asn_map.generation();
      state.trace_cache[i].obs = obs_list;
    }

    for (const PeeringObservation& obs : obs_list) {
      const State::Absorbed r = state.absorb(obs);
      if (!config_.incremental) continue;
      if (r.created) {
        state.obs_by_iface[r.near].push_back(r.slot);
        state.obs_by_iface[r.far].push_back(r.slot);
      }
      if (r.created || r.changed) state.dirty.set(r.slot);
    }
  }
  state.classified_upto = state.traces.size();
  if (im != nullptr) im->classified_observations += classified;
  return classified;
}

void ConstrainedFacilitySearch::reclassify_changed(
    State& state, IterationMetrics& im) const {
  // Corrections only ever *add* corrected entries, so the set of changed
  // addresses is exactly what apply_* recorded since the last refresh.
  const std::vector<Ipv4> changed = state.asn_map.take_changed();
  std::vector<char> stale(state.traces.size(), 0);
  for (const Ipv4 addr : changed) {
    const auto h = state.addrs.find(addr);
    if (!h) continue;
    for (const std::uint32_t t : state.traces_by_addr[*h]) stale[t] = 1;
  }

  const HopClassifier classifier(ip2asn_, state.asn_map);
  std::size_t stale_traces = 0;
  std::size_t fresh_obs = 0;
  std::size_t replayed = 0;
  std::vector<std::uint32_t> stale_idx;
  for (std::size_t i = 0; i < state.traces.size(); ++i) {
    if (!stale[i])
      replayed += state.trace_cache[i].obs.size();
    else
      stale_idx.push_back(static_cast<std::uint32_t>(i));
  }
  std::vector<std::vector<PeeringObservation>> reclassified_obs =
      classify_range(classifier, state.traces, stale_idx);
  for (std::size_t j = 0; j < stale_idx.size(); ++j) {
    const std::uint32_t i = stale_idx[j];
    ++stale_traces;
    state.trace_cache[i].obs = std::move(reclassified_obs[j]);
    state.trace_cache[i].generation = state.asn_map.generation();
    fresh_obs += state.trace_cache[i].obs.size();
  }

  // Rebuild the merged store by replaying the caches in trace order — the
  // exact sequence a full re-ingest would feed absorb — and diff against
  // the previous values to seed the dirty worklist. Slots are stable, so
  // the pre-replay values stay addressable for the comparison.
  const std::vector<PeeringObservation> old_values = state.store.values_snapshot();
  const DynamicBitset old_live = state.store.live_bits();
  state.store.kill_all();
  for (const State::TraceCache& cache : state.trace_cache)
    for (const PeeringObservation& obs : cache.obs)
      state.absorb(obs);

  for (std::uint32_t slot = 0;
       slot < static_cast<std::uint32_t>(state.store.slots()); ++slot) {
    if (!state.store.live(slot)) continue;
    const bool existed = slot < old_values.size() && old_live.test(slot);
    if (!existed) {
      const PeeringObservation& obs = state.store.value(slot);
      state.obs_by_iface[*state.addrs.find(obs.near_addr)].push_back(slot);
      state.obs_by_iface[*state.addrs.find(obs.far_addr)].push_back(slot);
      state.dirty.set(slot);
    } else if (!(old_values[slot] == state.store.value(slot))) {
      state.dirty.set(slot);
    }
  }

  im.reclassified_traces += stale_traces;
  im.classified_observations += fresh_obs;
  im.replayed_observations += replayed;
  state.metrics.reclassified_traces += stale_traces;
  state.metrics.reclassified_observations += fresh_obs;
  state.metrics.replayed_observations += replayed;
}

void ConstrainedFacilitySearch::refresh_aliases(State& state,
                                                IterationMetrics& im) const {
  if (state.ifaces.present_count() == state.aliased_addr_count) return;
  im.alias_refreshed = true;
  ++state.metrics.alias_refreshes;

  TraceSpan alias_timer("cfs.alias_refresh");
  alias_timer.arg("addresses", state.ifaces.present_count());
  std::vector<Ipv4> targets;
  targets.reserve(state.ifaces.present_count());
  for (std::uint32_t h = 0; h < static_cast<std::uint32_t>(state.ifaces.rows());
       ++h)
    if (state.ifaces.present(h)) targets.push_back(state.ifaces.addr(h));
  std::sort(targets.begin(), targets.end());  // determinism
  state.aliases = state.resolver.resolve(targets);
  state.aliased_addr_count = state.ifaces.present_count();
  state.asn_map.apply_alias_correction(state.aliases);

  if (config_.use_border_mapping) {
    // Repair foreign-numbered /30 ownership from the corpus itself
    // (MAP-IT-style); catches the routers alias resolution cannot probe.
    if (config_.incremental) {
      for (std::size_t i = state.border_upto; i < state.traces.size(); ++i)
        state.border.ingest(state.traces[i]);
      state.border_upto = state.traces.size();
      state.asn_map.apply_border_corrections(state.border.corrections());
    } else {
      BorderMapper mapper(ip2asn_);
      mapper.ingest_all(state.traces);
      state.asn_map.apply_border_corrections(mapper.corrections());
    }
  }
  // New alias sets: every set must be re-intersected from scratch.
  state.alias_set_ticks.assign(state.aliases.sets.size(), 0);
  alias_timer.arg("alias_sets", state.aliases.sets.size());
  im.alias_ms += alias_timer.stop();

  // Corrected mappings can turn previously discarded crossings into
  // classifiable ones: re-derive observations against the new map.
  TraceSpan reclass_timer("cfs.reclassify");
  if (config_.incremental) {
    reclassify_changed(state, im);
  } else {
    state.store.kill_all();
    state.classified_upto = 0;
    const std::size_t reclassified = ingest_traces(state, {}, nullptr);
    im.reclassified_traces += state.traces.size();
    im.classified_observations += reclassified;
    state.metrics.reclassified_traces += state.traces.size();
    state.metrics.reclassified_observations += reclassified;
  }
  im.reclassify_ms += reclass_timer.stop();
}

void ConstrainedFacilitySearch::note_candidates_changed(
    State& state, std::uint32_t iface, const std::uint64_t* current) const {
  state.iface_changed[iface] = ++state.tick;
  if (!config_.incremental) return;
  for (const std::uint32_t slot : state.obs_by_iface[iface]) {
    if (current != nullptr && state.store.key(slot) > *current)
      state.dirty.set(slot);  // still ahead of the in-flight pass
    else
      state.pending.set(slot);  // next iteration, like the full engine
  }
}

ConstrainedFacilitySearch::Directive ConstrainedFacilitySearch::make_directive(
    const State& state, const RemotePeeringDetector& detector,
    const PeeringObservation& obs) const {
  Directive d;
  const std::uint32_t near = *state.addrs.find(obs.near_addr);
  const std::uint32_t far = *state.addrs.find(obs.far_addr);
  const auto& fa = db_.facilities_of(obs.near_as);
  const auto& fb = db_.facilities_of(obs.far_as);

  const auto push = [&d](std::uint32_t iface,
                         const std::vector<FacilityId>* allowed,
                         bool mark_remote, bool record_ixp) {
    Directive::Action& a = d.acts[d.n_acts++];
    a.iface = iface;
    if (allowed != nullptr && !allowed->empty()) {
      a.allowed = allowed->data();
      a.n = static_cast<std::uint32_t>(allowed->size());
    }
    a.mark_remote = mark_remote;
    a.record_ixp = record_ixp;
  };

  if (obs.kind == PeeringKind::Public) {
    const auto& fe = db_.ixp_facilities(obs.ixp);
    if (!fa.empty()) {
      d.owned_near = facility_intersection(fa, fe);
      if (!d.owned_near.empty()) {
        // Resolved or unresolved-local interface (Step 2 cases 1-2).
        push(near, &d.owned_near, false, true);
      } else {
        // Step 2 case 3: no common facility. Distinguish a genuinely
        // remote peer (3a) from missing data (3b): if the AS still has a
        // facility in one of the exchange's metros, the shared building
        // is most likely just absent from the database.
        bool metro_overlap = false;
        for (const FacilityId af : fa) {
          for (const FacilityId ef : fe) {
            if (topo_.metro_of(af) == topo_.metro_of(ef)) {
              metro_overlap = true;
              break;
            }
          }
          if (metro_overlap) break;
        }
        // Sticky: one no-overlap exchange marks the interface remote for
        // good; a later local-looking observation must not clear it.
        push(near, &fa, !metro_overlap, false);
      }
    }
    if (!fb.empty()) {
      if (detector.far_side_remote(obs)) {
        push(far, &fb, true, false);
      } else {
        d.owned_far = facility_intersection(fb, fe);
        if (!d.owned_far.empty())
          push(far, &d.owned_far, false, false);
        else
          push(far, &fb, false, false);
      }
    }
    return d;
  }

  // Private interconnection.
  const bool long_haul = detector.far_side_remote(obs);
  if (!long_haul) {
    d.owned_near = facility_intersection(fa, fb);
    if (!d.owned_near.empty()) {
      push(near, &d.owned_near, false, false);
      push(far, &d.owned_near, false, false);
      return d;
    }
  }
  if (!fa.empty()) push(near, &fa, false, false);
  if (!fb.empty())
    push(far, &fb, long_haul, false);
  else if (long_haul)
    push(far, nullptr, true, false);  // remote flag even with no data
  return d;
}

void ConstrainedFacilitySearch::apply_directive(
    State& state, const Directive& directive, IxpId ixp, int iteration,
    const std::uint64_t* current) const {
  for (int i = 0; i < directive.n_acts; ++i) {
    const Directive::Action& a = directive.acts[i];
    if (a.mark_remote) state.ifaces.mark_remote(a.iface);
    if (a.allowed != nullptr &&
        state.ifaces.constrain(a.iface, a.allowed, a.n, iteration))
      note_candidates_changed(state, a.iface, current);
    if (a.record_ixp) state.ifaces.add_queried_ixp(a.iface, ixp);
  }
}

void ConstrainedFacilitySearch::apply_facility_constraints(
    State& state, int iteration, IterationMetrics& im) const {
  const RemotePeeringDetector detector(config_.remote);
  const std::vector<std::uint32_t>& order = state.store.order();

  // Pass worklist in ascending key order (== ascending `order` position).
  std::vector<std::uint32_t> dirty_slots;
  if (!config_.incremental) {
    im.dirty_observations += state.store.live_count();
    dirty_slots.reserve(state.store.live_count());
    for (const std::uint32_t slot : order)
      if (state.store.live(slot)) dirty_slots.push_back(slot);
  } else {
    // Dead-slot bits stay in the count, matching the old worklist whose
    // vanished keys were counted but skipped.
    im.dirty_observations += state.dirty.count();
    dirty_slots.reserve(state.dirty.count());
    for (const std::uint32_t slot : order)
      if (state.dirty.test(slot)) dirty_slots.push_back(slot);
  }

  // Speculate directives for the pass worklist in parallel: they are pure
  // per observation, so the fan-out cannot perturb the serial apply below
  // — the speculate-then-replay pattern classification already uses.
  constexpr std::size_t kParallelThreshold = 32;
  std::vector<Directive> specs(dirty_slots.size());
  std::vector<char> have_spec(dirty_slots.size(), 0);
  if (pool_ != nullptr && dirty_slots.size() >= kParallelThreshold) {
    TraceSpan spec_span("cfs.speculate_directives");
    spec_span.arg("observations", dirty_slots.size());
    pool_->parallel_for_chunks(
        dirty_slots.size(), [&](std::size_t begin, std::size_t end) {
          for (std::size_t i = begin; i < end; ++i) {
            const std::uint32_t slot = dirty_slots[i];
            if (!state.store.live(slot)) continue;
            specs[i] = make_directive(state, detector, state.store.value(slot));
            have_spec[i] = 1;
          }
        });
  }

  if (!config_.incremental) {
    for (std::size_t i = 0; i < dirty_slots.size(); ++i) {
      const std::uint32_t slot = dirty_slots[i];
      const PeeringObservation& obs = state.store.value(slot);
      if (have_spec[i]) {
        apply_directive(state, specs[i], obs.ixp, iteration, nullptr);
      } else {
        const Directive d = make_directive(state, detector, obs);
        apply_directive(state, d, obs.ixp, iteration, nullptr);
      }
      ++im.constrained_observations;
    }
    return;
  }

  // Serial ordered apply. Changes made mid-pass re-queue observations:
  // slots whose key is past the cursor have their dirty bit set and are
  // picked up later in this same walk (the order index is key-sorted, so
  // key order == position order); slots at or before the cursor land in
  // `pending` for the next iteration — exactly the full engine's
  // behavior, which sees an earlier change only on its next sweep.
  std::size_t next_spec = 0;  // cursor into dirty_slots/specs
  for (const std::uint32_t slot : order) {
    if (!state.dirty.test(slot)) continue;
    state.dirty.reset(slot);
    // A speculated slot keeps its bit until visited, so the spec cursor
    // advances exactly when the walk passes it.
    const bool speculated =
        next_spec < dirty_slots.size() && dirty_slots[next_spec] == slot;
    if (state.store.live(slot)) {  // key may have vanished at refresh
      const std::uint64_t key = state.store.key(slot);
      const PeeringObservation& obs = state.store.value(slot);
      if (speculated && have_spec[next_spec]) {
        apply_directive(state, specs[next_spec], obs.ixp, iteration, &key);
      } else {
        const Directive d = make_directive(state, detector, obs);
        apply_directive(state, d, obs.ixp, iteration, &key);
      }
      ++im.constrained_observations;
    }
    if (speculated) ++next_spec;
  }
}

void ConstrainedFacilitySearch::apply_alias_constraints(
    State& state, int iteration, IterationMetrics& im) const {
  if (config_.incremental &&
      state.alias_set_ticks.size() != state.aliases.sets.size())
    state.alias_set_ticks.assign(state.aliases.sets.size(), 0);

  std::vector<FacilityId> common;  // reused scratch
  for (std::size_t si = 0; si < state.aliases.sets.size(); ++si) {
    const auto& set = state.aliases.sets[si];
    if (set.size() < 2) continue;

    if (config_.incremental) {
      // Intersecting unchanged candidate sets reproduces the members'
      // current candidates — a no-op. Skip unless some member's candidates
      // moved since this set was last processed.
      bool dirty = false;
      for (const Ipv4 addr : set) {
        const auto h = state.addrs.find(addr);
        if (h && state.iface_changed[*h] > state.alias_set_ticks[si]) {
          dirty = true;
          break;
        }
      }
      if (!dirty) continue;
    }
    ++im.alias_sets_processed;

    // Intersect the candidate sets of all constrained members.
    common.clear();
    bool first = true;
    bool any = false;
    for (const Ipv4 addr : set) {
      const auto h = state.addrs.find(addr);
      if (!h || !state.ifaces.present(*h) || !state.ifaces.has_constraint(*h))
        continue;
      any = true;
      const FacilityId* data = state.ifaces.cand_data(*h);
      const std::uint32_t n = state.ifaces.cand_size(*h);
      if (first) {
        common.assign(data, data + n);
        first = false;
      } else {
        common.resize(intersect_in_place(common.data(), common.size(),
                                         data, n));
      }
    }
    if (any && !common.empty()) {
      for (const Ipv4 addr : set) {
        const auto h = state.addrs.find(addr);
        if (!h || !state.ifaces.present(*h)) continue;
        if (state.ifaces.constrain(*h, common.data(), common.size(),
                                   iteration))
          note_candidates_changed(state, *h, nullptr);
      }
    }
    if (config_.incremental) state.alias_set_ticks[si] = state.tick;
  }
}

std::vector<TraceResult> ConstrainedFacilitySearch::launch_followups(
    State& state, int iteration, IterationMetrics& im) const {
  // Gather unresolved-but-constrained interfaces, tightest first (they are
  // one good constraint away from resolution).
  std::vector<std::uint32_t> unresolved;
  for (std::uint32_t h = 0; h < static_cast<std::uint32_t>(state.ifaces.rows());
       ++h)
    if (state.ifaces.present(h) && state.ifaces.has_constraint(h) &&
        !state.ifaces.resolved(h))
      unresolved.push_back(h);
  std::sort(unresolved.begin(), unresolved.end(),
            [&state](std::uint32_t a, std::uint32_t b) {
              if (state.ifaces.cand_size(a) != state.ifaces.cand_size(b))
                return state.ifaces.cand_size(a) < state.ifaces.cand_size(b);
              return state.ifaces.addr(a) < state.ifaces.addr(b);
            });
  im.followup_pool = unresolved.size();
  im.followup_budget =
      static_cast<std::size_t>(std::max(0, config_.followup_interfaces));

  std::vector<TraceResult> fresh;
  const auto& all_vps = state.usable_vps;
  int chased = 0;
  // Rotate through the unresolved pool across iterations so the same few
  // tightly-constrained-but-stuck interfaces do not starve the rest.
  const std::size_t offset =
      unresolved.empty()
          ? 0
          : (static_cast<std::size_t>(iteration - 1) *
             static_cast<std::size_t>(config_.followup_interfaces)) %
                unresolved.size();
  for (std::size_t slot = 0; slot < unresolved.size(); ++slot) {
    const std::uint32_t h = unresolved[(offset + slot) % unresolved.size()];
    if (chased >= config_.followup_interfaces) break;
    const Asn iface_asn = state.ifaces.asn(h);
    const FacilityId* cands = state.ifaces.cand_data(h);
    const std::uint32_t n_cands = state.ifaces.cand_size(h);

    // Candidate target ASes: present at one of the interface's candidate
    // facilities, preferring the smallest overlap (most constraining) and
    // penalising ASes colocated at IXPs already used as constraints.
    std::vector<std::pair<double, Asn>> scored;
    if (config_.random_followups) {
      for (int k = 0; k < config_.followup_targets; ++k) {
        const auto& as = topo_.ases()[state.rng.index(topo_.ases().size())];
        if (as.asn != iface_asn) scored.emplace_back(0.0, as.asn);
      }
    } else {
      std::unordered_set<std::uint32_t> considered;
      for (std::uint32_t ci = 0; ci < n_cands; ++ci) {
        const auto it = state.present_at.find(cands[ci].value);
        if (it == state.present_at.end()) continue;
        for (const Asn cand : it->second) {
          if (cand == iface_asn) continue;
          if (!considered.insert(cand.value).second) continue;
          const auto& ft = db_.facilities_of(cand);
          const std::size_t overlap =
              set_intersect_count(ft.data(), ft.size(), cands,
                                  static_cast<std::size_t>(n_cands));
          if (overlap == 0 || overlap >= n_cands) continue;
          double score = static_cast<double>(overlap);
          // A traceroute can only add a constraint for this AS's router if
          // it exits through it: known neighbors are far more likely to.
          if (!state.as_neighbors(iface_asn, cand)) score += 5.0;
          for (const IxpId ixp : state.ifaces.queried_ixps(h)) {
            if (set_intersects(ft, db_.ixp_facilities(ixp)))
              score += 10.0;  // already-queried IXP: deprioritise
          }
          scored.emplace_back(score, cand);
        }
      }
      std::sort(scored.begin(), scored.end(),
                [](const auto& a, const auto& b) {
                  if (a.first != b.first) return a.first < b.first;
                  return a.second < b.second;
                });
    }

    if (scored.empty()) {
      // No viable target: the slot launched nothing, so it must not burn
      // budget — charging here starved later interfaces whenever the pool
      // held data-less entries.
      ++im.followups_skipped;
      continue;
    }
    scored.resize(std::min<std::size_t>(
        scored.size(), static_cast<std::size_t>(config_.followup_targets)));

    // Vantage points: ones that already traversed this interface (likely to
    // cross the same router), then looking glasses *inside* the interface's
    // own AS (paper Section 5: 46% of LG-visible interfaces sit in transit
    // backbones Atlas never reaches), topped up with random picks.
    std::vector<const VantagePoint*> probes;
    for (const VantagePointId vp : state.ifaces.seen_from(h)) {
      if (probes.size() >= 2) break;
      probes.push_back(&vps_.vp(vp));
    }
    if (const auto it = state.vps_by_as.find(iface_asn.value);
        it != state.vps_by_as.end()) {
      for (const VantagePoint* vp : it->second) {
        if (probes.size() >= 4) break;
        probes.push_back(vp);
      }
    }
    // Always keep some random exploration in the mix; a fully deterministic
    // probe set reaches a fixed point and stops contributing constraints.
    for (int extra = 0; extra < std::max(1, config_.followup_vps - 2); ++extra)
      if (!all_vps.empty())
        probes.push_back(all_vps[state.rng.index(all_vps.size())]);

    std::size_t launched = 0;
    for (const auto& [score, target_as] : scored) {
      if (!topo_.has_as(target_as)) continue;
      const auto targets = MeasurementCampaign::targets_for(topo_, target_as);
      if (targets.empty()) continue;
      for (const VantagePoint* vp : probes) {
        TraceResult trace = campaign_.probe(*vp, targets.front());
        ++launched;
        if (!trace.hops.empty()) fresh.push_back(std::move(trace));
      }
    }
    if (launched == 0) {
      ++im.followups_skipped;  // every scored AS was unprobeable
      continue;
    }
    ++chased;
    ++im.followups_launched;
  }

  // Reverse-direction probes for unresolved far ends (Section 4.3).
  std::vector<PeeringObservation> observations;
  observations.reserve(state.store.live_count());
  for (const std::uint32_t slot : state.store.order())
    if (state.store.live(slot)) observations.push_back(state.store.value(slot));
  const auto reverse_plan = plan_reverse_probes(
      topo_, vps_,
      [&state](Ipv4 far) {
        const auto fh = state.addrs.find(far);
        return fh && state.ifaces.present(*fh) && !state.ifaces.resolved(*fh);
      },
      observations, /*budget=*/16, config_.platform_filter);
  for (const ReverseProbe& probe : reverse_plan) {
    TraceResult trace = campaign_.probe(vps_.vp(probe.vp), probe.target);
    if (!trace.hops.empty()) fresh.push_back(std::move(trace));
  }

  log_debug() << "iteration " << iteration << ": " << fresh.size()
              << " follow-up traces";
  im.followup_traces = fresh.size();
  return fresh;
}

CfsReport ConstrainedFacilitySearch::run(std::vector<TraceResult> traces) {
  TraceSpan run_timer("cfs.run");
  run_timer.arg("initial_traces", traces.size());
  State state(ip2asn_, topo_, config_.seed);
  state.metrics.incremental = config_.incremental;
  state.metrics.threads =
      config_.threads > 0 ? static_cast<std::size_t>(config_.threads) : 1;

  // Public-database index: facility -> ASes present (for follow-ups).
  for (const auto& as : topo_.ases())
    for (const FacilityId fac : db_.facilities_of(as.asn))
      state.present_at[fac.value].push_back(as.asn);
  for (const VantagePoint& vp : vps_.all()) {
    if (config_.platform_filter && vp.platform != *config_.platform_filter)
      continue;
    state.vps_by_as[vp.asn.value].push_back(&vp);
    state.usable_vps.push_back(&vp);
  }

  {
    TraceSpan initial_timer("cfs.initial_ingest");
    state.metrics.initial_traces = traces.size();
    initial_timer.arg("traces", traces.size());
    state.metrics.initial_observations =
        ingest_traces(state, std::move(traces), nullptr);
    initial_timer.arg("observations", state.metrics.initial_observations);
    state.metrics.initial_classify_ms = initial_timer.stop();
  }

  int iteration = 0;
  for (iteration = 1; iteration <= config_.max_iterations; ++iteration) {
    IterationMetrics im;
    im.iteration = static_cast<std::size_t>(iteration);
    im.followup_budget =
        static_cast<std::size_t>(std::max(0, config_.followup_interfaces));
    TraceSpan iteration_span("cfs.iteration");
    iteration_span.arg("iteration", static_cast<std::uint64_t>(iteration));

    if (config_.use_alias_constraints &&
        (iteration == 1 ||
         (iteration % std::max(1, config_.alias_refresh_interval)) == 0))
      refresh_aliases(state, im);

    TraceSpan constrain_timer("cfs.constrain");
    apply_facility_constraints(state, iteration, im);
    if (config_.use_alias_constraints)
      apply_alias_constraints(state, iteration, im);
    if (config_.incremental) {
      // Promote mid-pass discoveries into the next iteration's worklist.
      state.dirty.merge(state.pending);
      state.pending.reset_all();
    }
    constrain_timer.arg("dirty_observations", im.dirty_observations);
    constrain_timer.arg("constrained_observations",
                        im.constrained_observations);
    constrain_timer.arg("alias_sets", im.alias_sets_processed);
    im.constrain_ms = constrain_timer.stop();

    std::size_t resolved = 0;
    for (std::uint32_t h = 0;
         h < static_cast<std::uint32_t>(state.ifaces.rows()); ++h)
      resolved += state.ifaces.present(h) && state.ifaces.resolved(h);
    state.history.push_back(resolved);
    im.resolved = resolved;
    im.observations = state.store.live_count();
    im.interfaces = state.ifaces.present_count();

    const bool done = resolved == state.ifaces.present_count() &&
                      state.ifaces.present_count() != 0;
    if (!done && iteration < config_.max_iterations) {
      TraceSpan followup_timer("cfs.followups");
      std::vector<TraceResult> fresh = launch_followups(state, iteration, im);
      followup_timer.arg("launched", im.followups_launched);
      followup_timer.arg("traces", fresh.size());
      im.followup_ms = followup_timer.stop();
      TraceSpan classify_timer("cfs.ingest");
      ingest_traces(state, std::move(fresh), &im);
      im.classify_ms = classify_timer.stop();
    }
    iteration_span.arg("resolved", im.resolved);
    state.metrics.iterations.push_back(im);
    if (done) break;
  }

  // ---- final classification of each crossing ----
  CfsReport report;
  report.interfaces.reserve(state.ifaces.present_count());
  for (std::uint32_t h = 0; h < static_cast<std::uint32_t>(state.ifaces.rows());
       ++h)
    if (state.ifaces.present(h))
      report.interfaces.emplace(state.ifaces.addr(h),
                                state.ifaces.materialize(h));
  report.aliases = std::move(state.aliases);
  report.resolved_per_iteration = std::move(state.history);
  report.traces_used = state.traces.size();
  report.iterations_run = std::min(iteration, config_.max_iterations);

  const RemotePeeringDetector detector(config_.remote);
  ProximityHeuristic proximity;

  TraceSpan link_span("cfs.link_classify");
  link_span.arg("observations", state.store.live_count());

  for (const std::uint32_t slot : state.store.order()) {
    if (!state.store.live(slot)) continue;
    const PeeringObservation& obs = state.store.value(slot);
    LinkInference link;
    link.obs = obs;
    const auto* near = report.find(obs.near_addr);
    const auto* far = report.find(obs.far_addr);
    if (near != nullptr && near->resolved())
      link.near_facility = near->facility();
    if (far != nullptr && far->resolved()) link.far_facility = far->facility();

    if (obs.kind == PeeringKind::Public) {
      const bool far_remote = detector.far_side_remote(obs);
      const bool near_remote = near != nullptr && near->remote_suspect;
      link.type = (far_remote || near_remote)
                      ? InterconnectionType::PublicRemote
                      : InterconnectionType::PublicLocal;
      if (link.near_facility && link.far_facility && !far_remote)
        proximity.observe(obs.ixp, *link.near_facility, *link.far_facility);
    } else {
      const auto& fa = db_.facilities_of(obs.near_as);
      const auto& fb = db_.facilities_of(obs.far_as);
      const auto common = facility_intersection(fa, fb);
      if (detector.far_side_remote(obs)) {
        // A large RTT step with a shared building on record is almost
        // always a phantom crossing (foreign-numbered /30 shifting the
        // boundary one backbone hop): trust the facility data.
        link.type = common.empty() ? InterconnectionType::PrivateRemote
                                   : InterconnectionType::PrivateCrossConnect;
      } else if (!common.empty()) {
        link.type = InterconnectionType::PrivateCrossConnect;
      } else {
        // No shared building, local RTT: tethering over an exchange both
        // sides can reach, otherwise missing data pointing at a plain
        // cross-connect. The presence index turns "is there an exchange
        // reachable from both sides?" into hash lookups instead of an
        // intersection per IXP per link.
        bool shared_ixp = false;
        std::unordered_set<std::uint32_t> near_ixps;
        for (const FacilityId fac : fa)
          for (const IxpId ixp : db_.ixps_at(fac)) near_ixps.insert(ixp.value);
        if (!near_ixps.empty()) {
          for (const FacilityId fac : fb) {
            for (const IxpId ixp : db_.ixps_at(fac)) {
              if (near_ixps.contains(ixp.value)) {
                shared_ixp = true;
                break;
              }
            }
            if (shared_ixp) break;
          }
        }
        link.type = shared_ixp ? InterconnectionType::PrivateTethering
                               : InterconnectionType::PrivateCrossConnect;
      }
    }
    report.links.push_back(std::move(link));
  }

  // Switch-proximity fallback for far ends still ambiguous (Section 4.4).
  for (LinkInference& link : report.links) {
    if (link.obs.kind != PeeringKind::Public) continue;
    if (link.far_facility || !link.near_facility) continue;
    const auto* far = report.find(link.obs.far_addr);
    if (far == nullptr || !far->has_constraint) continue;
    const auto inferred = proximity.infer_far(
        link.obs.ixp, *link.near_facility, far->candidates);
    if (inferred) {
      link.far_facility = inferred;
      link.far_by_proximity = true;
    }
  }
  link_span.arg("links", report.links.size());
  link_span.stop();

  // Snapshot the measurement plane's attrition accounting (the campaign
  // outlives individual runs, so these are campaign-lifetime totals) and
  // what the degraded data sources withheld.
  state.metrics.faults = campaign_.fault_stats();
  state.metrics.faults.records_withheld = db_.records_withheld();
  // Memory gauges (docs/OBSERVABILITY.md): candidate-span arena payload
  // for this run, process-wide arena capacity, and the process RSS
  // high-water mark. Registry gauges live under metrics.registry in the
  // export — outside every byte-equivalence comparison — and feed the
  // memory columns of BENCH_parallel.json.
  Trace::gauge("cfs.arena_bytes",
               static_cast<double>(state.ifaces.arena_bytes()));
  Trace::gauge("cfs.arena_reserved_bytes",
               static_cast<double>(Arena::process_reserved_bytes()));
  Trace::gauge("process.peak_rss_bytes",
               static_cast<double>(Trace::peak_rss_bytes()));
  run_timer.arg("resolved", report.resolved_interfaces());
  state.metrics.total_ms = run_timer.stop();
  report.metrics = std::move(state.metrics);

  log_info() << "CFS: " << report.resolved_interfaces() << "/"
             << report.observed_interfaces() << " interfaces resolved in "
             << report.iterations_run << " iterations over "
             << report.traces_used << " traces";
  return report;
}

}  // namespace cfs
