#include "core/cfs.h"

#include <algorithm>
#include <map>
#include <set>
#include <unordered_set>

#include "core/bordermap.h"
#include "core/reverse.h"
#include "util/log.h"
#include "util/rng.h"

namespace cfs {

struct ConstrainedFacilitySearch::State {
  State(const IpToAsnService& ip2asn, const Topology& topo,
        std::uint64_t seed)
      : asn_map(ip2asn), resolver(topo, seed), rng(seed ^ 0x5eedULL) {}

  std::vector<TraceResult> traces;
  std::size_t classified_upto = 0;
  std::map<std::pair<Ipv4, Ipv4>, PeeringObservation> observations;
  std::unordered_map<Ipv4, InterfaceInference> interfaces;
  std::unordered_set<Ipv4> known_addrs;  // all peering addresses ever seen
  std::size_t aliased_addr_count = 0;    // addresses covered by last run
  InterfaceAsnMap asn_map;
  AliasSets aliases;
  AliasResolver resolver;
  Rng rng;
  std::vector<std::size_t> history;
  // Facility -> ASes present (per the public database), for follow-ups.
  std::unordered_map<std::uint32_t, std::vector<Asn>> present_at;
  // Hosting AS -> vantage points inside it (LG-in-backbone follow-ups).
  std::unordered_map<std::uint32_t, std::vector<const VantagePoint*>>
      vps_by_as;
  // Observed AS adjacency (from classified crossings): targets picked from
  // an AS's known neighbors are the ones whose traces can actually cross
  // the interface's router.
  std::unordered_map<std::uint32_t, std::set<std::uint32_t>> neighbors;
  // Vantage points usable for follow-ups (after any platform filter).
  std::vector<const VantagePoint*> usable_vps;
};

namespace {

void merge_observation(
    std::map<std::pair<Ipv4, Ipv4>, PeeringObservation>& store,
    const PeeringObservation& obs) {
  const auto key = std::make_pair(obs.near_addr, obs.far_addr);
  const auto it = store.find(key);
  if (it == store.end()) {
    store.emplace(key, obs);
  } else {
    it->second.near_rtt_ms = std::min(it->second.near_rtt_ms, obs.near_rtt_ms);
    it->second.far_rtt_ms = std::min(it->second.far_rtt_ms, obs.far_rtt_ms);
  }
}

void note_vp(InterfaceInference& inf, VantagePointId vp) {
  if (std::find(inf.seen_from.begin(), inf.seen_from.end(), vp) ==
      inf.seen_from.end())
    inf.seen_from.push_back(vp);
}

}  // namespace

ConstrainedFacilitySearch::ConstrainedFacilitySearch(
    const Topology& topo, const FacilityDatabase& db,
    const IpToAsnService& ip2asn, MeasurementCampaign& campaign,
    const VantagePointSet& vps, const CfsConfig& config)
    : topo_(topo),
      db_(db),
      ip2asn_(ip2asn),
      campaign_(campaign),
      vps_(vps),
      config_(config) {}

void ConstrainedFacilitySearch::ingest_traces(
    State& state, std::vector<TraceResult> fresh) const {
  for (auto& trace : fresh) state.traces.push_back(std::move(trace));

  const HopClassifier classifier(ip2asn_, state.asn_map);
  for (std::size_t i = state.classified_upto; i < state.traces.size(); ++i) {
    for (const PeeringObservation& obs :
         classifier.classify(state.traces[i])) {
      merge_observation(state.observations, obs);
      state.known_addrs.insert(obs.near_addr);
      state.known_addrs.insert(obs.far_addr);

      auto& near = state.interfaces[obs.near_addr];
      near.addr = obs.near_addr;
      near.asn = obs.near_as;
      note_vp(near, obs.vp);

      auto& far = state.interfaces[obs.far_addr];
      far.addr = obs.far_addr;
      far.asn = obs.far_as;

      state.neighbors[obs.near_as.value].insert(obs.far_as.value);
      state.neighbors[obs.far_as.value].insert(obs.near_as.value);
    }
  }
  state.classified_upto = state.traces.size();
}

void ConstrainedFacilitySearch::refresh_aliases(State& state) const {
  if (state.known_addrs.size() == state.aliased_addr_count) return;
  std::vector<Ipv4> targets(state.known_addrs.begin(),
                            state.known_addrs.end());
  std::sort(targets.begin(), targets.end());  // determinism
  state.aliases = state.resolver.resolve(targets);
  state.aliased_addr_count = state.known_addrs.size();
  state.asn_map.apply_alias_correction(state.aliases);

  if (config_.use_border_mapping) {
    // Repair foreign-numbered /30 ownership from the corpus itself
    // (MAP-IT-style); catches the routers alias resolution cannot probe.
    BorderMapper mapper(ip2asn_);
    mapper.ingest_all(state.traces);
    state.asn_map.apply_border_corrections(mapper.corrections());
  }

  // Corrected mappings can turn previously discarded crossings into
  // classifiable ones: re-classify the whole corpus against the new map.
  state.observations.clear();
  state.classified_upto = 0;
  ingest_traces(state, {});
}

void ConstrainedFacilitySearch::apply_facility_constraints(
    State& state, int iteration) const {
  const RemotePeeringDetector detector(config_.remote);

  for (const auto& [key, obs] : state.observations) {
    auto& near = state.interfaces.at(obs.near_addr);
    auto& far = state.interfaces.at(obs.far_addr);
    const auto& fa = db_.facilities_of(obs.near_as);
    const auto& fb = db_.facilities_of(obs.far_as);

    if (obs.kind == PeeringKind::Public) {
      const auto& fe = db_.ixp_facilities(obs.ixp);
      if (!fa.empty()) {
        const auto common = facility_intersection(fa, fe);
        if (!common.empty()) {
          // Resolved or unresolved-local interface (Step 2 cases 1-2).
          near.constrain(common, iteration);
          if (std::find(near.queried_ixps.begin(), near.queried_ixps.end(),
                        obs.ixp) == near.queried_ixps.end())
            near.queried_ixps.push_back(obs.ixp);
        } else {
          // Step 2 case 3: no common facility. Distinguish a genuinely
          // remote peer (3a) from missing data (3b): if the AS still has a
          // facility in one of the exchange's metros, the shared building
          // is most likely just absent from the database.
          bool metro_overlap = false;
          for (const FacilityId af : fa)
            for (const FacilityId ef : fe)
              if (topo_.metro_of(af) == topo_.metro_of(ef))
                metro_overlap = true;
          near.remote_suspect = !metro_overlap;
          near.constrain(fa, iteration);
        }
      }
      if (!fb.empty()) {
        if (detector.far_side_remote(obs)) {
          far.remote_suspect = true;
          far.constrain(fb, iteration);
        } else {
          const auto common = facility_intersection(fb, fe);
          if (!common.empty())
            far.constrain(common, iteration);
          else
            far.constrain(fb, iteration);
        }
      }
      continue;
    }

    // Private interconnection.
    const bool long_haul = detector.far_side_remote(obs);
    if (!long_haul) {
      const auto common = facility_intersection(fa, fb);
      if (!common.empty()) {
        near.constrain(common, iteration);
        far.constrain(common, iteration);
        continue;
      }
    }
    if (!fa.empty()) near.constrain(fa, iteration);
    if (!fb.empty()) far.constrain(fb, iteration);
    if (long_haul) far.remote_suspect = true;
  }
}

void ConstrainedFacilitySearch::apply_alias_constraints(
    State& state, int iteration) const {
  for (const auto& set : state.aliases.sets) {
    if (set.size() < 2) continue;
    // Intersect the candidate sets of all constrained members.
    std::vector<FacilityId> common;
    bool first = true;
    bool any = false;
    for (const Ipv4 addr : set) {
      const auto it = state.interfaces.find(addr);
      if (it == state.interfaces.end() || !it->second.has_constraint)
        continue;
      any = true;
      if (first) {
        common = it->second.candidates;
        first = false;
      } else {
        common = facility_intersection(common, it->second.candidates);
      }
    }
    if (!any || common.empty()) continue;
    for (const Ipv4 addr : set) {
      const auto it = state.interfaces.find(addr);
      if (it == state.interfaces.end()) continue;
      it->second.constrain(common, iteration);
    }
  }
}

void ConstrainedFacilitySearch::launch_followups(State& state,
                                                 int iteration) const {
  // Gather unresolved-but-constrained interfaces, tightest first (they are
  // one good constraint away from resolution).
  std::vector<InterfaceInference*> unresolved;
  for (auto& [addr, inf] : state.interfaces)
    if (inf.has_constraint && !inf.resolved()) unresolved.push_back(&inf);
  std::sort(unresolved.begin(), unresolved.end(),
            [](const InterfaceInference* a, const InterfaceInference* b) {
              if (a->candidates.size() != b->candidates.size())
                return a->candidates.size() < b->candidates.size();
              return a->addr < b->addr;
            });

  std::vector<TraceResult> fresh;
  const auto& all_vps = state.usable_vps;
  int chased = 0;
  // Rotate through the unresolved pool across iterations so the same few
  // tightly-constrained-but-stuck interfaces do not starve the rest.
  const std::size_t offset =
      unresolved.empty()
          ? 0
          : (static_cast<std::size_t>(iteration - 1) *
             static_cast<std::size_t>(config_.followup_interfaces)) %
                unresolved.size();
  for (std::size_t slot = 0; slot < unresolved.size(); ++slot) {
    InterfaceInference* inf = unresolved[(offset + slot) % unresolved.size()];
    if (chased >= config_.followup_interfaces) break;
    ++chased;

    // Candidate target ASes: present at one of the interface's candidate
    // facilities, preferring the smallest overlap (most constraining) and
    // penalising ASes colocated at IXPs already used as constraints.
    std::vector<std::pair<double, Asn>> scored;
    if (config_.random_followups) {
      for (int k = 0; k < config_.followup_targets; ++k) {
        const auto& as = topo_.ases()[state.rng.index(topo_.ases().size())];
        if (as.asn != inf->asn) scored.emplace_back(0.0, as.asn);
      }
    } else {
      const auto neigh = state.neighbors.find(inf->asn.value);
      std::unordered_set<std::uint32_t> considered;
      for (const FacilityId fac : inf->candidates) {
        const auto it = state.present_at.find(fac.value);
        if (it == state.present_at.end()) continue;
        for (const Asn cand : it->second) {
          if (cand == inf->asn) continue;
          if (!considered.insert(cand.value).second) continue;
          const auto& ft = db_.facilities_of(cand);
          const auto overlap = facility_intersection(ft, inf->candidates);
          if (overlap.empty() || overlap.size() >= inf->candidates.size())
            continue;
          double score = static_cast<double>(overlap.size());
          // A traceroute can only add a constraint for this AS's router if
          // it exits through it: known neighbors are far more likely to.
          if (neigh == state.neighbors.end() ||
              !neigh->second.contains(cand.value))
            score += 5.0;
          for (const IxpId ixp : inf->queried_ixps) {
            if (!facility_intersection(ft, db_.ixp_facilities(ixp)).empty())
              score += 10.0;  // already-queried IXP: deprioritise
          }
          scored.emplace_back(score, cand);
        }
      }
      std::sort(scored.begin(), scored.end(),
                [](const auto& a, const auto& b) {
                  if (a.first != b.first) return a.first < b.first;
                  return a.second < b.second;
                });
    }

    if (scored.empty()) continue;
    scored.resize(std::min<std::size_t>(
        scored.size(), static_cast<std::size_t>(config_.followup_targets)));

    // Vantage points: ones that already traversed this interface (likely to
    // cross the same router), then looking glasses *inside* the interface's
    // own AS (paper Section 5: 46% of LG-visible interfaces sit in transit
    // backbones Atlas never reaches), topped up with random picks.
    std::vector<const VantagePoint*> probes;
    for (const VantagePointId vp : inf->seen_from) {
      if (probes.size() >= 2) break;
      probes.push_back(&vps_.vp(vp));
    }
    if (const auto it = state.vps_by_as.find(inf->asn.value);
        it != state.vps_by_as.end()) {
      for (const VantagePoint* vp : it->second) {
        if (probes.size() >= 4) break;
        probes.push_back(vp);
      }
    }
    // Always keep some random exploration in the mix; a fully deterministic
    // probe set reaches a fixed point and stops contributing constraints.
    for (int extra = 0; extra < std::max(1, config_.followup_vps - 2); ++extra)
      if (!all_vps.empty())
        probes.push_back(all_vps[state.rng.index(all_vps.size())]);

    for (const auto& [score, target_as] : scored) {
      if (!topo_.has_as(target_as)) continue;
      const auto targets = MeasurementCampaign::targets_for(topo_, target_as);
      if (targets.empty()) continue;
      for (const VantagePoint* vp : probes) {
        TraceResult trace = campaign_.probe(*vp, targets.front());
        if (!trace.hops.empty()) fresh.push_back(std::move(trace));
      }
    }
  }

  // Reverse-direction probes for unresolved far ends (Section 4.3).
  std::vector<PeeringObservation> observations;
  observations.reserve(state.observations.size());
  for (const auto& [key, obs] : state.observations)
    observations.push_back(obs);
  const auto reverse_plan = plan_reverse_probes(
      topo_, vps_, state.interfaces, observations, /*budget=*/16,
      config_.platform_filter);
  for (const ReverseProbe& probe : reverse_plan) {
    TraceResult trace = campaign_.probe(vps_.vp(probe.vp), probe.target);
    if (!trace.hops.empty()) fresh.push_back(std::move(trace));
  }

  log_debug() << "iteration " << iteration << ": " << fresh.size()
              << " follow-up traces";
  ingest_traces(state, std::move(fresh));
}

CfsReport ConstrainedFacilitySearch::run(std::vector<TraceResult> traces) {
  State state(ip2asn_, topo_, config_.seed);

  // Public-database index: facility -> ASes present (for follow-ups).
  for (const auto& as : topo_.ases())
    for (const FacilityId fac : db_.facilities_of(as.asn))
      state.present_at[fac.value].push_back(as.asn);
  for (const VantagePoint& vp : vps_.all()) {
    if (config_.platform_filter && vp.platform != *config_.platform_filter)
      continue;
    state.vps_by_as[vp.asn.value].push_back(&vp);
    state.usable_vps.push_back(&vp);
  }

  ingest_traces(state, std::move(traces));

  int iteration = 0;
  for (iteration = 1; iteration <= config_.max_iterations; ++iteration) {
    if (config_.use_alias_constraints &&
        (iteration == 1 ||
         (iteration % std::max(1, config_.alias_refresh_interval)) == 0))
      refresh_aliases(state);

    apply_facility_constraints(state, iteration);
    if (config_.use_alias_constraints) apply_alias_constraints(state, iteration);

    std::size_t resolved = 0;
    for (const auto& [addr, inf] : state.interfaces)
      resolved += inf.resolved();
    state.history.push_back(resolved);

    if (resolved == state.interfaces.size() && !state.interfaces.empty())
      break;
    if (iteration < config_.max_iterations)
      launch_followups(state, iteration);
  }

  // ---- final classification of each crossing ----
  CfsReport report;
  report.interfaces = std::move(state.interfaces);
  report.aliases = std::move(state.aliases);
  report.resolved_per_iteration = std::move(state.history);
  report.traces_used = state.traces.size();
  report.iterations_run = std::min(iteration, config_.max_iterations);

  const RemotePeeringDetector detector(config_.remote);
  ProximityHeuristic proximity;

  for (const auto& [key, obs] : state.observations) {
    LinkInference link;
    link.obs = obs;
    const auto* near = report.find(obs.near_addr);
    const auto* far = report.find(obs.far_addr);
    if (near != nullptr && near->resolved())
      link.near_facility = near->facility();
    if (far != nullptr && far->resolved()) link.far_facility = far->facility();

    if (obs.kind == PeeringKind::Public) {
      const bool far_remote = detector.far_side_remote(obs);
      const bool near_remote = near != nullptr && near->remote_suspect;
      link.type = (far_remote || near_remote)
                      ? InterconnectionType::PublicRemote
                      : InterconnectionType::PublicLocal;
      if (link.near_facility && link.far_facility && !far_remote)
        proximity.observe(obs.ixp, *link.near_facility, *link.far_facility);
    } else {
      const auto& fa = db_.facilities_of(obs.near_as);
      const auto& fb = db_.facilities_of(obs.far_as);
      const auto common = facility_intersection(fa, fb);
      if (detector.far_side_remote(obs)) {
        // A large RTT step with a shared building on record is almost
        // always a phantom crossing (foreign-numbered /30 shifting the
        // boundary one backbone hop): trust the facility data.
        link.type = common.empty() ? InterconnectionType::PrivateRemote
                                   : InterconnectionType::PrivateCrossConnect;
      } else if (!common.empty()) {
        link.type = InterconnectionType::PrivateCrossConnect;
      } else {
        // No shared building, local RTT: tethering over an exchange both
        // sides can reach, otherwise missing data pointing at a plain
        // cross-connect.
        bool shared_ixp = false;
        for (const auto& ixp : topo_.ixps()) {
          const auto& fe = db_.ixp_facilities(ixp.id);
          if (!facility_intersection(fa, fe).empty() &&
              !facility_intersection(fb, fe).empty()) {
            shared_ixp = true;
            break;
          }
        }
        link.type = shared_ixp ? InterconnectionType::PrivateTethering
                               : InterconnectionType::PrivateCrossConnect;
      }
    }
    report.links.push_back(std::move(link));
  }

  // Switch-proximity fallback for far ends still ambiguous (Section 4.4).
  for (LinkInference& link : report.links) {
    if (link.obs.kind != PeeringKind::Public) continue;
    if (link.far_facility || !link.near_facility) continue;
    const auto* far = report.find(link.obs.far_addr);
    if (far == nullptr || !far->has_constraint) continue;
    const auto inferred = proximity.infer_far(
        link.obs.ixp, *link.near_facility, far->candidates);
    if (inferred) {
      link.far_facility = inferred;
      link.far_by_proximity = true;
    }
  }

  log_info() << "CFS: " << report.resolved_interfaces() << "/"
             << report.observed_interfaces() << " interfaces resolved in "
             << report.iterations_run << " iterations over "
             << report.traces_used << " traces";
  return report;
}

}  // namespace cfs
