#include "core/cfs.h"

#include <algorithm>
#include <map>
#include <set>
#include <unordered_set>

#include "core/bordermap.h"
#include "core/reverse.h"
#include "util/log.h"
#include "util/rng.h"

namespace cfs {

struct ConstrainedFacilitySearch::State {
  State(const IpToAsnService& ip2asn, const Topology& topo,
        std::uint64_t seed)
      : asn_map(ip2asn), resolver(topo, seed), border(ip2asn),
        rng(seed ^ 0x5eedULL) {}

  std::vector<TraceResult> traces;
  std::size_t classified_upto = 0;
  std::map<ObsKey, PeeringObservation> observations;
  std::unordered_map<Ipv4, InterfaceInference> interfaces;
  std::unordered_set<Ipv4> known_addrs;  // all peering addresses ever seen
  std::size_t aliased_addr_count = 0;    // addresses covered by last run
  InterfaceAsnMap asn_map;
  AliasSets aliases;
  AliasResolver resolver;
  // Border-mapping evidence accumulates per trace, so the incremental
  // engine keeps one mapper fed with each trace exactly once; the full
  // engine rebuilds a fresh one per refresh (identical corrections).
  BorderMapper border;
  std::size_t border_upto = 0;
  Rng rng;
  std::vector<std::size_t> history;
  // Facility -> ASes present (per the public database), for follow-ups.
  std::unordered_map<std::uint32_t, std::vector<Asn>> present_at;
  // Hosting AS -> vantage points inside it (LG-in-backbone follow-ups).
  std::unordered_map<std::uint32_t, std::vector<const VantagePoint*>>
      vps_by_as;
  // Observed AS adjacency (from classified crossings): targets picked from
  // an AS's known neighbors are the ones whose traces can actually cross
  // the interface's router.
  std::unordered_map<std::uint32_t, std::set<std::uint32_t>> neighbors;
  // Vantage points usable for follow-ups (after any platform filter).
  std::vector<const VantagePoint*> usable_vps;

  // ---- incremental engine ----
  // Per-trace classification results, tagged with the asn-map generation
  // they were derived under. A refresh re-derives only traces whose cached
  // generation predates a correction touching one of their hop addresses.
  struct TraceCache {
    std::uint64_t generation = 0;
    std::vector<PeeringObservation> obs;
  };
  std::vector<TraceCache> trace_cache;  // parallel to `traces`
  // Responding hop address -> traces traversing it (classification reads
  // nothing else, so this is the exact invalidation footprint).
  std::unordered_map<Ipv4, std::vector<std::uint32_t>> traces_by_addr;
  // Change clock: bumped whenever a candidate set changes; alias sets
  // remember the tick they were last intersected at.
  std::uint64_t tick = 0;
  std::unordered_map<Ipv4, std::uint64_t> iface_changed;
  std::vector<std::uint64_t> alias_set_ticks;
  // Interface -> observations it appears in (either endpoint).
  std::unordered_map<Ipv4, std::vector<ObsKey>> obs_by_iface;
  // Observations to (re-)constrain this iteration / discovered mid-pass
  // at-or-before the cursor (promoted into `worklist` at iteration end).
  std::set<ObsKey> worklist;
  std::set<ObsKey> pending;

  CfsMetrics metrics;

  struct Absorbed {
    bool created = false;
    bool changed = false;
  };
  // Folds one classified observation into the store and the per-interface
  // side state (asn, vantage points, adjacency). Both engines and the
  // refresh replay funnel through here so the merged state is identical
  // whichever path produced it.
  Absorbed absorb(const PeeringObservation& obs) {
    Absorbed result;
    const auto key = std::make_pair(obs.near_addr, obs.far_addr);
    const auto it = observations.find(key);
    if (it == observations.end()) {
      observations.emplace(key, obs);
      result.created = true;
    } else {
      const PeeringObservation before = it->second;
      it->second.near_rtt_ms =
          std::min(it->second.near_rtt_ms, obs.near_rtt_ms);
      it->second.far_rtt_ms = std::min(it->second.far_rtt_ms, obs.far_rtt_ms);
      result.changed = !(before == it->second);
    }
    known_addrs.insert(obs.near_addr);
    known_addrs.insert(obs.far_addr);

    auto& near = interfaces[obs.near_addr];
    near.addr = obs.near_addr;
    near.asn = obs.near_as;
    if (std::find(near.seen_from.begin(), near.seen_from.end(), obs.vp) ==
        near.seen_from.end())
      near.seen_from.push_back(obs.vp);

    auto& far = interfaces[obs.far_addr];
    far.addr = obs.far_addr;
    far.asn = obs.far_as;

    neighbors[obs.near_as.value].insert(obs.far_as.value);
    neighbors[obs.far_as.value].insert(obs.near_as.value);
    return result;
  }
};

ConstrainedFacilitySearch::ConstrainedFacilitySearch(
    const Topology& topo, const FacilityDatabase& db,
    const IpToAsnService& ip2asn, MeasurementCampaign& campaign,
    const VantagePointSet& vps, const CfsConfig& config, ThreadPool* pool)
    : topo_(topo),
      db_(db),
      ip2asn_(ip2asn),
      campaign_(campaign),
      vps_(vps),
      config_(config),
      pool_(pool) {}

std::vector<std::vector<PeeringObservation>>
ConstrainedFacilitySearch::classify_range(
    const HopClassifier& classifier, const std::vector<TraceResult>& traces,
    const std::vector<std::uint32_t>& indices) const {
  // Below this the fan-out overhead beats the classification work itself.
  constexpr std::size_t kParallelThreshold = 32;
  std::vector<std::vector<PeeringObservation>> out(indices.size());
  TraceSpan span("cfs.classify");
  span.arg("traces", indices.size());
  if (pool_ != nullptr && indices.size() >= kParallelThreshold) {
    // Chunked so each worker's slice shows up as one timeline span; the
    // chunk boundaries are a pure function of (n, workers), so the spans
    // describe the same work at any thread count.
    pool_->parallel_for_chunks(
        indices.size(), [&](std::size_t begin, std::size_t end) {
          TraceSpan chunk("cfs.classify_chunk");
          chunk.arg("begin", begin);
          chunk.arg("count", end - begin);
          for (std::size_t i = begin; i < end; ++i)
            out[i] = classifier.classify(traces[indices[i]]);
        });
  } else {
    for (std::size_t i = 0; i < indices.size(); ++i)
      out[i] = classifier.classify(traces[indices[i]]);
  }
  return out;
}

std::size_t ConstrainedFacilitySearch::ingest_traces(
    State& state, std::vector<TraceResult> fresh, IterationMetrics* im) const {
  for (auto& trace : fresh) state.traces.push_back(std::move(trace));

  std::size_t classified = 0;
  const HopClassifier classifier(ip2asn_, state.asn_map);
  if (config_.incremental) state.trace_cache.resize(state.traces.size());
  // Classification is pure per trace; fan it across the pool into
  // index-ordered slots, then fold serially in trace order below.
  std::vector<std::uint32_t> fresh_idx;
  fresh_idx.reserve(state.traces.size() - state.classified_upto);
  for (std::size_t i = state.classified_upto; i < state.traces.size(); ++i)
    fresh_idx.push_back(static_cast<std::uint32_t>(i));
  std::vector<std::vector<PeeringObservation>> classified_obs =
      classify_range(classifier, state.traces, fresh_idx);
  for (std::size_t i = state.classified_upto; i < state.traces.size(); ++i) {
    std::vector<PeeringObservation> obs_list =
        std::move(classified_obs[i - state.classified_upto]);
    classified += obs_list.size();

    if (config_.incremental) {
      for (const Hop& hop : state.traces[i].hops) {
        if (!hop.responded) continue;
        auto& slot = state.traces_by_addr[hop.address];
        if (slot.empty() || slot.back() != i)
          slot.push_back(static_cast<std::uint32_t>(i));
      }
      state.trace_cache[i].generation = state.asn_map.generation();
      state.trace_cache[i].obs = obs_list;
    }

    for (const PeeringObservation& obs : obs_list) {
      const State::Absorbed r = state.absorb(obs);
      if (!config_.incremental) continue;
      const ObsKey key{obs.near_addr, obs.far_addr};
      if (r.created) {
        state.obs_by_iface[obs.near_addr].push_back(key);
        state.obs_by_iface[obs.far_addr].push_back(key);
      }
      if (r.created || r.changed) state.worklist.insert(key);
    }
  }
  state.classified_upto = state.traces.size();
  if (im != nullptr) im->classified_observations += classified;
  return classified;
}

void ConstrainedFacilitySearch::reclassify_changed(
    State& state, IterationMetrics& im) const {
  // Corrections only ever *add* corrected entries, so the set of changed
  // addresses is exactly what apply_* recorded since the last refresh.
  const std::vector<Ipv4> changed = state.asn_map.take_changed();
  std::vector<char> stale(state.traces.size(), 0);
  for (const Ipv4 addr : changed) {
    const auto it = state.traces_by_addr.find(addr);
    if (it == state.traces_by_addr.end()) continue;
    for (const std::uint32_t t : it->second) stale[t] = 1;
  }

  const HopClassifier classifier(ip2asn_, state.asn_map);
  std::size_t stale_traces = 0;
  std::size_t fresh_obs = 0;
  std::size_t replayed = 0;
  std::vector<std::uint32_t> stale_idx;
  for (std::size_t i = 0; i < state.traces.size(); ++i) {
    if (!stale[i])
      replayed += state.trace_cache[i].obs.size();
    else
      stale_idx.push_back(static_cast<std::uint32_t>(i));
  }
  std::vector<std::vector<PeeringObservation>> reclassified_obs =
      classify_range(classifier, state.traces, stale_idx);
  for (std::size_t j = 0; j < stale_idx.size(); ++j) {
    const std::uint32_t i = stale_idx[j];
    ++stale_traces;
    state.trace_cache[i].obs = std::move(reclassified_obs[j]);
    state.trace_cache[i].generation = state.asn_map.generation();
    fresh_obs += state.trace_cache[i].obs.size();
  }

  // Rebuild the merged store by replaying the caches in trace order — the
  // exact sequence a full re-ingest would feed absorb_observation — and
  // diff against the previous store to seed the dirty worklist.
  auto old = std::move(state.observations);
  state.observations.clear();
  for (const State::TraceCache& cache : state.trace_cache)
    for (const PeeringObservation& obs : cache.obs)
      state.absorb(obs);

  for (const auto& [key, obs] : state.observations) {
    const auto it = old.find(key);
    if (it == old.end()) {
      state.obs_by_iface[obs.near_addr].push_back(key);
      state.obs_by_iface[obs.far_addr].push_back(key);
      state.worklist.insert(key);
    } else if (!(it->second == obs)) {
      state.worklist.insert(key);
    }
  }

  im.reclassified_traces += stale_traces;
  im.classified_observations += fresh_obs;
  im.replayed_observations += replayed;
  state.metrics.reclassified_traces += stale_traces;
  state.metrics.reclassified_observations += fresh_obs;
  state.metrics.replayed_observations += replayed;
}

void ConstrainedFacilitySearch::refresh_aliases(State& state,
                                                IterationMetrics& im) const {
  if (state.known_addrs.size() == state.aliased_addr_count) return;
  im.alias_refreshed = true;
  ++state.metrics.alias_refreshes;

  TraceSpan alias_timer("cfs.alias_refresh");
  alias_timer.arg("addresses", state.known_addrs.size());
  std::vector<Ipv4> targets(state.known_addrs.begin(),
                            state.known_addrs.end());
  std::sort(targets.begin(), targets.end());  // determinism
  state.aliases = state.resolver.resolve(targets);
  state.aliased_addr_count = state.known_addrs.size();
  state.asn_map.apply_alias_correction(state.aliases);

  if (config_.use_border_mapping) {
    // Repair foreign-numbered /30 ownership from the corpus itself
    // (MAP-IT-style); catches the routers alias resolution cannot probe.
    if (config_.incremental) {
      for (std::size_t i = state.border_upto; i < state.traces.size(); ++i)
        state.border.ingest(state.traces[i]);
      state.border_upto = state.traces.size();
      state.asn_map.apply_border_corrections(state.border.corrections());
    } else {
      BorderMapper mapper(ip2asn_);
      mapper.ingest_all(state.traces);
      state.asn_map.apply_border_corrections(mapper.corrections());
    }
  }
  // New alias sets: every set must be re-intersected from scratch.
  state.alias_set_ticks.assign(state.aliases.sets.size(), 0);
  alias_timer.arg("alias_sets", state.aliases.sets.size());
  im.alias_ms += alias_timer.stop();

  // Corrected mappings can turn previously discarded crossings into
  // classifiable ones: re-derive observations against the new map.
  TraceSpan reclass_timer("cfs.reclassify");
  if (config_.incremental) {
    reclassify_changed(state, im);
  } else {
    state.observations.clear();
    state.classified_upto = 0;
    const std::size_t reclassified = ingest_traces(state, {}, nullptr);
    im.reclassified_traces += state.traces.size();
    im.classified_observations += reclassified;
    state.metrics.reclassified_traces += state.traces.size();
    state.metrics.reclassified_observations += reclassified;
  }
  im.reclassify_ms += reclass_timer.stop();
}

void ConstrainedFacilitySearch::note_candidates_changed(
    State& state, Ipv4 addr, const ObsKey* current) const {
  state.iface_changed[addr] = ++state.tick;
  if (!config_.incremental) return;
  const auto it = state.obs_by_iface.find(addr);
  if (it == state.obs_by_iface.end()) return;
  for (const ObsKey& key : it->second) {
    if (current != nullptr && key > *current)
      state.worklist.insert(key);  // still ahead of the in-flight pass
    else
      state.pending.insert(key);  // next iteration, like the full engine
  }
}

void ConstrainedFacilitySearch::constrain_from_observation(
    State& state, const RemotePeeringDetector& detector,
    const PeeringObservation& obs, int iteration, const ObsKey* current) const {
  auto& near = state.interfaces.at(obs.near_addr);
  auto& far = state.interfaces.at(obs.far_addr);
  const auto& fa = db_.facilities_of(obs.near_as);
  const auto& fb = db_.facilities_of(obs.far_as);

  const auto constrain = [&](InterfaceInference& inf,
                             const std::vector<FacilityId>& allowed) {
    if (inf.constrain(allowed, iteration))
      note_candidates_changed(state, inf.addr, current);
  };

  if (obs.kind == PeeringKind::Public) {
    const auto& fe = db_.ixp_facilities(obs.ixp);
    if (!fa.empty()) {
      const auto common = facility_intersection(fa, fe);
      if (!common.empty()) {
        // Resolved or unresolved-local interface (Step 2 cases 1-2).
        constrain(near, common);
        if (std::find(near.queried_ixps.begin(), near.queried_ixps.end(),
                      obs.ixp) == near.queried_ixps.end())
          near.queried_ixps.push_back(obs.ixp);
      } else {
        // Step 2 case 3: no common facility. Distinguish a genuinely
        // remote peer (3a) from missing data (3b): if the AS still has a
        // facility in one of the exchange's metros, the shared building
        // is most likely just absent from the database.
        bool metro_overlap = false;
        for (const FacilityId af : fa) {
          for (const FacilityId ef : fe) {
            if (topo_.metro_of(af) == topo_.metro_of(ef)) {
              metro_overlap = true;
              break;
            }
          }
          if (metro_overlap) break;
        }
        // Sticky: one no-overlap exchange marks the interface remote for
        // good; a later local-looking observation must not clear it.
        near.remote_suspect = near.remote_suspect || !metro_overlap;
        constrain(near, fa);
      }
    }
    if (!fb.empty()) {
      if (detector.far_side_remote(obs)) {
        far.remote_suspect = true;
        constrain(far, fb);
      } else {
        const auto common = facility_intersection(fb, fe);
        if (!common.empty())
          constrain(far, common);
        else
          constrain(far, fb);
      }
    }
    return;
  }

  // Private interconnection.
  const bool long_haul = detector.far_side_remote(obs);
  if (!long_haul) {
    const auto common = facility_intersection(fa, fb);
    if (!common.empty()) {
      constrain(near, common);
      constrain(far, common);
      return;
    }
  }
  if (!fa.empty()) constrain(near, fa);
  if (!fb.empty()) constrain(far, fb);
  if (long_haul) far.remote_suspect = true;
}

void ConstrainedFacilitySearch::apply_facility_constraints(
    State& state, int iteration, IterationMetrics& im) const {
  const RemotePeeringDetector detector(config_.remote);

  if (!config_.incremental) {
    im.dirty_observations += state.observations.size();
    for (const auto& [key, obs] : state.observations) {
      constrain_from_observation(state, detector, obs, iteration, nullptr);
      ++im.constrained_observations;
    }
    return;
  }

  // Walk the dirty set in ascending key order, the same order the full
  // engine scans the store. Changes made mid-pass re-queue observations:
  // keys past the cursor join this pass (note_candidates_changed), keys at
  // or before it land in `pending` for the next iteration — exactly the
  // full engine's behavior, which sees an earlier change only on its next
  // sweep. upper_bound re-finds the position because inserts may land
  // between the cursor and its old successor.
  im.dirty_observations += state.worklist.size();
  auto it = state.worklist.begin();
  while (it != state.worklist.end()) {
    const ObsKey key = *it;
    const auto oit = state.observations.find(key);
    if (oit != state.observations.end()) {  // key may have vanished at refresh
      constrain_from_observation(state, detector, oit->second, iteration, &key);
      ++im.constrained_observations;
    }
    it = state.worklist.upper_bound(key);
  }
  state.worklist.clear();
}

void ConstrainedFacilitySearch::apply_alias_constraints(
    State& state, int iteration, IterationMetrics& im) const {
  if (config_.incremental &&
      state.alias_set_ticks.size() != state.aliases.sets.size())
    state.alias_set_ticks.assign(state.aliases.sets.size(), 0);

  for (std::size_t si = 0; si < state.aliases.sets.size(); ++si) {
    const auto& set = state.aliases.sets[si];
    if (set.size() < 2) continue;

    if (config_.incremental) {
      // Intersecting unchanged candidate sets reproduces the members'
      // current candidates — a no-op. Skip unless some member's candidates
      // moved since this set was last processed.
      bool dirty = false;
      for (const Ipv4 addr : set) {
        const auto t = state.iface_changed.find(addr);
        if (t != state.iface_changed.end() &&
            t->second > state.alias_set_ticks[si]) {
          dirty = true;
          break;
        }
      }
      if (!dirty) continue;
    }
    ++im.alias_sets_processed;

    // Intersect the candidate sets of all constrained members.
    std::vector<FacilityId> common;
    bool first = true;
    bool any = false;
    for (const Ipv4 addr : set) {
      const auto it = state.interfaces.find(addr);
      if (it == state.interfaces.end() || !it->second.has_constraint)
        continue;
      any = true;
      if (first) {
        common = it->second.candidates;
        first = false;
      } else {
        common = facility_intersection(common, it->second.candidates);
      }
    }
    if (any && !common.empty()) {
      for (const Ipv4 addr : set) {
        const auto it = state.interfaces.find(addr);
        if (it == state.interfaces.end()) continue;
        if (it->second.constrain(common, iteration))
          note_candidates_changed(state, addr, nullptr);
      }
    }
    if (config_.incremental) state.alias_set_ticks[si] = state.tick;
  }
}

std::vector<TraceResult> ConstrainedFacilitySearch::launch_followups(
    State& state, int iteration, IterationMetrics& im) const {
  // Gather unresolved-but-constrained interfaces, tightest first (they are
  // one good constraint away from resolution).
  std::vector<InterfaceInference*> unresolved;
  for (auto& [addr, inf] : state.interfaces)
    if (inf.has_constraint && !inf.resolved()) unresolved.push_back(&inf);
  std::sort(unresolved.begin(), unresolved.end(),
            [](const InterfaceInference* a, const InterfaceInference* b) {
              if (a->candidates.size() != b->candidates.size())
                return a->candidates.size() < b->candidates.size();
              return a->addr < b->addr;
            });
  im.followup_pool = unresolved.size();
  im.followup_budget =
      static_cast<std::size_t>(std::max(0, config_.followup_interfaces));

  std::vector<TraceResult> fresh;
  const auto& all_vps = state.usable_vps;
  int chased = 0;
  // Rotate through the unresolved pool across iterations so the same few
  // tightly-constrained-but-stuck interfaces do not starve the rest.
  const std::size_t offset =
      unresolved.empty()
          ? 0
          : (static_cast<std::size_t>(iteration - 1) *
             static_cast<std::size_t>(config_.followup_interfaces)) %
                unresolved.size();
  for (std::size_t slot = 0; slot < unresolved.size(); ++slot) {
    InterfaceInference* inf = unresolved[(offset + slot) % unresolved.size()];
    if (chased >= config_.followup_interfaces) break;

    // Candidate target ASes: present at one of the interface's candidate
    // facilities, preferring the smallest overlap (most constraining) and
    // penalising ASes colocated at IXPs already used as constraints.
    std::vector<std::pair<double, Asn>> scored;
    if (config_.random_followups) {
      for (int k = 0; k < config_.followup_targets; ++k) {
        const auto& as = topo_.ases()[state.rng.index(topo_.ases().size())];
        if (as.asn != inf->asn) scored.emplace_back(0.0, as.asn);
      }
    } else {
      const auto neigh = state.neighbors.find(inf->asn.value);
      std::unordered_set<std::uint32_t> considered;
      for (const FacilityId fac : inf->candidates) {
        const auto it = state.present_at.find(fac.value);
        if (it == state.present_at.end()) continue;
        for (const Asn cand : it->second) {
          if (cand == inf->asn) continue;
          if (!considered.insert(cand.value).second) continue;
          const auto& ft = db_.facilities_of(cand);
          const auto overlap = facility_intersection(ft, inf->candidates);
          if (overlap.empty() || overlap.size() >= inf->candidates.size())
            continue;
          double score = static_cast<double>(overlap.size());
          // A traceroute can only add a constraint for this AS's router if
          // it exits through it: known neighbors are far more likely to.
          if (neigh == state.neighbors.end() ||
              !neigh->second.contains(cand.value))
            score += 5.0;
          for (const IxpId ixp : inf->queried_ixps) {
            if (!facility_intersection(ft, db_.ixp_facilities(ixp)).empty())
              score += 10.0;  // already-queried IXP: deprioritise
          }
          scored.emplace_back(score, cand);
        }
      }
      std::sort(scored.begin(), scored.end(),
                [](const auto& a, const auto& b) {
                  if (a.first != b.first) return a.first < b.first;
                  return a.second < b.second;
                });
    }

    if (scored.empty()) {
      // No viable target: the slot launched nothing, so it must not burn
      // budget — charging here starved later interfaces whenever the pool
      // held data-less entries.
      ++im.followups_skipped;
      continue;
    }
    scored.resize(std::min<std::size_t>(
        scored.size(), static_cast<std::size_t>(config_.followup_targets)));

    // Vantage points: ones that already traversed this interface (likely to
    // cross the same router), then looking glasses *inside* the interface's
    // own AS (paper Section 5: 46% of LG-visible interfaces sit in transit
    // backbones Atlas never reaches), topped up with random picks.
    std::vector<const VantagePoint*> probes;
    for (const VantagePointId vp : inf->seen_from) {
      if (probes.size() >= 2) break;
      probes.push_back(&vps_.vp(vp));
    }
    if (const auto it = state.vps_by_as.find(inf->asn.value);
        it != state.vps_by_as.end()) {
      for (const VantagePoint* vp : it->second) {
        if (probes.size() >= 4) break;
        probes.push_back(vp);
      }
    }
    // Always keep some random exploration in the mix; a fully deterministic
    // probe set reaches a fixed point and stops contributing constraints.
    for (int extra = 0; extra < std::max(1, config_.followup_vps - 2); ++extra)
      if (!all_vps.empty())
        probes.push_back(all_vps[state.rng.index(all_vps.size())]);

    std::size_t launched = 0;
    for (const auto& [score, target_as] : scored) {
      if (!topo_.has_as(target_as)) continue;
      const auto targets = MeasurementCampaign::targets_for(topo_, target_as);
      if (targets.empty()) continue;
      for (const VantagePoint* vp : probes) {
        TraceResult trace = campaign_.probe(*vp, targets.front());
        ++launched;
        if (!trace.hops.empty()) fresh.push_back(std::move(trace));
      }
    }
    if (launched == 0) {
      ++im.followups_skipped;  // every scored AS was unprobeable
      continue;
    }
    ++chased;
    ++im.followups_launched;
  }

  // Reverse-direction probes for unresolved far ends (Section 4.3).
  std::vector<PeeringObservation> observations;
  observations.reserve(state.observations.size());
  for (const auto& [key, obs] : state.observations)
    observations.push_back(obs);
  const auto reverse_plan = plan_reverse_probes(
      topo_, vps_, state.interfaces, observations, /*budget=*/16,
      config_.platform_filter);
  for (const ReverseProbe& probe : reverse_plan) {
    TraceResult trace = campaign_.probe(vps_.vp(probe.vp), probe.target);
    if (!trace.hops.empty()) fresh.push_back(std::move(trace));
  }

  log_debug() << "iteration " << iteration << ": " << fresh.size()
              << " follow-up traces";
  im.followup_traces = fresh.size();
  return fresh;
}

CfsReport ConstrainedFacilitySearch::run(std::vector<TraceResult> traces) {
  TraceSpan run_timer("cfs.run");
  run_timer.arg("initial_traces", traces.size());
  State state(ip2asn_, topo_, config_.seed);
  state.metrics.incremental = config_.incremental;
  state.metrics.threads =
      config_.threads > 0 ? static_cast<std::size_t>(config_.threads) : 1;

  // Public-database index: facility -> ASes present (for follow-ups).
  for (const auto& as : topo_.ases())
    for (const FacilityId fac : db_.facilities_of(as.asn))
      state.present_at[fac.value].push_back(as.asn);
  for (const VantagePoint& vp : vps_.all()) {
    if (config_.platform_filter && vp.platform != *config_.platform_filter)
      continue;
    state.vps_by_as[vp.asn.value].push_back(&vp);
    state.usable_vps.push_back(&vp);
  }

  {
    TraceSpan initial_timer("cfs.initial_ingest");
    state.metrics.initial_traces = traces.size();
    initial_timer.arg("traces", traces.size());
    state.metrics.initial_observations =
        ingest_traces(state, std::move(traces), nullptr);
    initial_timer.arg("observations", state.metrics.initial_observations);
    state.metrics.initial_classify_ms = initial_timer.stop();
  }

  int iteration = 0;
  for (iteration = 1; iteration <= config_.max_iterations; ++iteration) {
    IterationMetrics im;
    im.iteration = static_cast<std::size_t>(iteration);
    im.followup_budget =
        static_cast<std::size_t>(std::max(0, config_.followup_interfaces));
    TraceSpan iteration_span("cfs.iteration");
    iteration_span.arg("iteration", static_cast<std::uint64_t>(iteration));

    if (config_.use_alias_constraints &&
        (iteration == 1 ||
         (iteration % std::max(1, config_.alias_refresh_interval)) == 0))
      refresh_aliases(state, im);

    TraceSpan constrain_timer("cfs.constrain");
    apply_facility_constraints(state, iteration, im);
    if (config_.use_alias_constraints)
      apply_alias_constraints(state, iteration, im);
    if (config_.incremental) {
      // Promote mid-pass discoveries into the next iteration's worklist.
      state.worklist.insert(state.pending.begin(), state.pending.end());
      state.pending.clear();
    }
    constrain_timer.arg("dirty_observations", im.dirty_observations);
    constrain_timer.arg("constrained_observations",
                        im.constrained_observations);
    constrain_timer.arg("alias_sets", im.alias_sets_processed);
    im.constrain_ms = constrain_timer.stop();

    std::size_t resolved = 0;
    for (const auto& [addr, inf] : state.interfaces)
      resolved += inf.resolved();
    state.history.push_back(resolved);
    im.resolved = resolved;
    im.observations = state.observations.size();
    im.interfaces = state.interfaces.size();

    const bool done =
        resolved == state.interfaces.size() && !state.interfaces.empty();
    if (!done && iteration < config_.max_iterations) {
      TraceSpan followup_timer("cfs.followups");
      std::vector<TraceResult> fresh = launch_followups(state, iteration, im);
      followup_timer.arg("launched", im.followups_launched);
      followup_timer.arg("traces", fresh.size());
      im.followup_ms = followup_timer.stop();
      TraceSpan classify_timer("cfs.ingest");
      ingest_traces(state, std::move(fresh), &im);
      im.classify_ms = classify_timer.stop();
    }
    iteration_span.arg("resolved", im.resolved);
    state.metrics.iterations.push_back(im);
    if (done) break;
  }

  // ---- final classification of each crossing ----
  CfsReport report;
  report.interfaces = std::move(state.interfaces);
  report.aliases = std::move(state.aliases);
  report.resolved_per_iteration = std::move(state.history);
  report.traces_used = state.traces.size();
  report.iterations_run = std::min(iteration, config_.max_iterations);

  const RemotePeeringDetector detector(config_.remote);
  ProximityHeuristic proximity;

  TraceSpan link_span("cfs.link_classify");
  link_span.arg("observations", state.observations.size());

  for (const auto& [key, obs] : state.observations) {
    LinkInference link;
    link.obs = obs;
    const auto* near = report.find(obs.near_addr);
    const auto* far = report.find(obs.far_addr);
    if (near != nullptr && near->resolved())
      link.near_facility = near->facility();
    if (far != nullptr && far->resolved()) link.far_facility = far->facility();

    if (obs.kind == PeeringKind::Public) {
      const bool far_remote = detector.far_side_remote(obs);
      const bool near_remote = near != nullptr && near->remote_suspect;
      link.type = (far_remote || near_remote)
                      ? InterconnectionType::PublicRemote
                      : InterconnectionType::PublicLocal;
      if (link.near_facility && link.far_facility && !far_remote)
        proximity.observe(obs.ixp, *link.near_facility, *link.far_facility);
    } else {
      const auto& fa = db_.facilities_of(obs.near_as);
      const auto& fb = db_.facilities_of(obs.far_as);
      const auto common = facility_intersection(fa, fb);
      if (detector.far_side_remote(obs)) {
        // A large RTT step with a shared building on record is almost
        // always a phantom crossing (foreign-numbered /30 shifting the
        // boundary one backbone hop): trust the facility data.
        link.type = common.empty() ? InterconnectionType::PrivateRemote
                                   : InterconnectionType::PrivateCrossConnect;
      } else if (!common.empty()) {
        link.type = InterconnectionType::PrivateCrossConnect;
      } else {
        // No shared building, local RTT: tethering over an exchange both
        // sides can reach, otherwise missing data pointing at a plain
        // cross-connect. The presence index turns "is there an exchange
        // reachable from both sides?" into hash lookups instead of an
        // intersection per IXP per link.
        bool shared_ixp = false;
        std::unordered_set<std::uint32_t> near_ixps;
        for (const FacilityId fac : fa)
          for (const IxpId ixp : db_.ixps_at(fac)) near_ixps.insert(ixp.value);
        if (!near_ixps.empty()) {
          for (const FacilityId fac : fb) {
            for (const IxpId ixp : db_.ixps_at(fac)) {
              if (near_ixps.contains(ixp.value)) {
                shared_ixp = true;
                break;
              }
            }
            if (shared_ixp) break;
          }
        }
        link.type = shared_ixp ? InterconnectionType::PrivateTethering
                               : InterconnectionType::PrivateCrossConnect;
      }
    }
    report.links.push_back(std::move(link));
  }

  // Switch-proximity fallback for far ends still ambiguous (Section 4.4).
  for (LinkInference& link : report.links) {
    if (link.obs.kind != PeeringKind::Public) continue;
    if (link.far_facility || !link.near_facility) continue;
    const auto* far = report.find(link.obs.far_addr);
    if (far == nullptr || !far->has_constraint) continue;
    const auto inferred = proximity.infer_far(
        link.obs.ixp, *link.near_facility, far->candidates);
    if (inferred) {
      link.far_facility = inferred;
      link.far_by_proximity = true;
    }
  }
  link_span.arg("links", report.links.size());
  link_span.stop();

  // Snapshot the measurement plane's attrition accounting (the campaign
  // outlives individual runs, so these are campaign-lifetime totals) and
  // what the degraded data sources withheld.
  state.metrics.faults = campaign_.fault_stats();
  state.metrics.faults.records_withheld = db_.records_withheld();
  run_timer.arg("resolved", report.resolved_interfaces());
  state.metrics.total_ms = run_timer.stop();
  report.metrics = std::move(state.metrics);

  log_info() << "CFS: " << report.resolved_interfaces() << "/"
             << report.observed_interfaces() << " interfaces resolved in "
             << report.iterations_run << " iterations over "
             << report.traces_used << " traces";
  return report;
}

}  // namespace cfs
