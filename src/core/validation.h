// Validation harness (paper Section 6).
//
// Scores a CfsReport against four emulated ground-truth sources, each with
// the coverage limits of its real counterpart:
//   direct feedback   — cooperating operators confirm their own interfaces;
//   BGP communities   — ingress-tagging transit networks, decoded through
//                       the operator-published dictionary, reachable only
//                       where a BGP-capable looking glass exists;
//   DNS records       — facility-encoding hostnames of operators whose
//                       conventions are documented and current;
//   IXP websites      — member-port tables published by a few exchanges.
// The harness also exposes the simulator's omniscient oracle (exact truth
// for every interface and link), which the paper could not have — it is
// what lets the benchmarks report true accuracy alongside Figure 9's
// source-limited view.
#pragma once

#include <map>

#include "bgp/communities.h"
#include "bgp/looking_glass.h"
#include "core/report.h"
#include "data/dns.h"
#include "data/websites.h"

namespace cfs {

enum class ValidationSource {
  DirectFeedback,
  BgpCommunities,
  DnsRecords,
  IxpWebsites,
};
std::string_view validation_source_name(ValidationSource source);

// Link-type buckets used in Figure 9.
enum class ValidationLinkType {
  CrossConnect,
  PublicLocal,
  Remote,     // public remote + private remote
  Tethering,
};
std::string_view validation_link_type_name(ValidationLinkType type);

struct SourceAccuracy {
  std::size_t correct = 0;
  std::size_t total = 0;
  std::size_t city_correct = 0;  // wrong facility but right metro

  [[nodiscard]] double accuracy() const {
    return total == 0 ? 0.0 : static_cast<double>(correct) / total;
  }
  [[nodiscard]] double city_accuracy() const {
    return total == 0 ? 0.0
                      : static_cast<double>(correct + city_correct) / total;
  }
};

class ValidationHarness {
 public:
  struct Config {
    // ASes that responded to the "direct feedback" request.
    std::vector<Asn> cooperating_operators;
  };

  ValidationHarness(const Topology& topo, const CommunityRegistry& communities,
                    const LookingGlassDirectory& lgs, const DnsNames& dns,
                    const DropParser& drop, const IxpWebsiteSource& ixp_sites,
                    Config config);

  // --- ground truth (oracle) ---
  [[nodiscard]] std::optional<FacilityId> true_facility(Ipv4 addr) const;
  [[nodiscard]] InterconnectionType true_link_type(
      const PeeringObservation& obs) const;

  // --- Figure 9: accuracy per source per link-type bucket ---
  using Breakdown =
      std::map<std::pair<ValidationSource, ValidationLinkType>,
               SourceAccuracy>;
  [[nodiscard]] Breakdown validate(const CfsReport& report) const;

  // --- oracle scoring (every resolved interface) ---
  [[nodiscard]] SourceAccuracy oracle_interface_accuracy(
      const CfsReport& report) const;
  // Confusion of inferred vs true link type.
  [[nodiscard]] std::map<std::pair<InterconnectionType, InterconnectionType>,
                         std::size_t>
  link_type_confusion(const CfsReport& report) const;

 private:
  [[nodiscard]] static ValidationLinkType bucket(InterconnectionType type);
  void score(SourceAccuracy& acc, FacilityId inferred,
             FacilityId reference) const;

  const Topology& topo_;
  const CommunityRegistry& communities_;
  const LookingGlassDirectory& lgs_;
  const DnsNames& dns_;
  const DropParser& drop_;
  const IxpWebsiteSource& ixp_sites_;
  Config config_;
};

}  // namespace cfs
