// Per-run observability for the CFS iteration loop.
//
// The paper's Algorithm 1 is an anytime loop: every iteration classifies,
// constrains, propagates and probes. CfsMetrics records what each stage
// did and how long it took, so the incremental re-classification path
// (core/cfs.cpp) can be audited — dirty-set sizes, cache hit/miss counts
// at alias refreshes, follow-up budget utilisation — and regressions show
// up as numbers instead of wall-clock folklore. Carried on CfsReport,
// printed by tools/cfs_cli.cpp and exported as JSON by src/io/export.cpp.
//
// Metrics never feed back into the inference: two runs that differ only
// in timing produce identical reports.
#pragma once

#include <chrono>
#include <cstddef>
#include <vector>

#include "net/faults.h"
#include "util/trace.h"

namespace cfs {

// One row per CFS iteration (Steps 1-4 of the paper's loop).
struct IterationMetrics {
  std::size_t iteration = 0;

  // Stage timings, milliseconds of wall clock.
  double classify_ms = 0.0;   // classification of follow-up traces
  double alias_ms = 0.0;      // alias resolution + map corrections
  double reclassify_ms = 0.0; // corpus re-derivation after a refresh
  double constrain_ms = 0.0;  // facility + alias constraint passes
  double followup_ms = 0.0;   // targeted and reverse probing

  bool alias_refreshed = false;  // did this iteration re-run resolution?

  // Corpus state after the iteration's constraint passes.
  std::size_t observations = 0;  // merged peering observations in the store
  std::size_t interfaces = 0;    // peering interfaces tracked
  std::size_t resolved = 0;      // cumulative resolved interfaces (Fig. 7)

  // Incremental-core accounting.
  std::size_t classified_observations = 0;   // obs run through the classifier
  std::size_t reclassified_traces = 0;       // stale traces re-classified
  std::size_t replayed_observations = 0;     // cached obs replayed (hits)
  std::size_t dirty_observations = 0;        // facility worklist at pass start
  std::size_t constrained_observations = 0;  // obs actually processed
  std::size_t alias_sets_processed = 0;      // alias sets re-intersected

  // Follow-up budget utilisation (Step 4).
  std::size_t followup_pool = 0;      // unresolved-but-constrained interfaces
  std::size_t followup_budget = 0;    // config_.followup_interfaces
  std::size_t followups_launched = 0; // slots that actually sent probes
  std::size_t followups_skipped = 0;  // slots with no viable target (uncharged)
  std::size_t followup_traces = 0;    // traces the probes brought back
};

struct CfsMetrics {
  std::vector<IterationMetrics> iterations;

  bool incremental = false;  // which engine path produced this run

  // Initial ingest (before iteration 1).
  double initial_classify_ms = 0.0;
  std::size_t initial_traces = 0;
  std::size_t initial_observations = 0;

  // Refresh totals across the run. In full mode every refresh re-classifies
  // the whole corpus; incrementally only traces touching a corrected
  // address are re-derived, the rest replay from the per-trace cache.
  std::size_t alias_refreshes = 0;
  std::size_t reclassified_traces = 0;
  std::size_t reclassified_observations = 0;
  std::size_t replayed_observations = 0;

  double total_ms = 0.0;

  // Worker threads the run was configured with (1 = serial reference).
  // Purely informational: the report is byte-identical at any value.
  std::size_t threads = 1;

  // Measurement-plane attrition and fault mitigation (net/faults.h). All
  // zeros when no fault plane is configured.
  FaultMetrics faults;

  // Snapshot of the process-wide trace registry covering this run: every
  // TraceSpan/Trace::counter bump between pipeline start and report
  // assembly (util/trace.h). Exported under the report's `metrics`
  // subtree only, which byte-equality comparisons already exclude.
  MetricsSnapshot registry;

  // Column sums over `iterations`.
  [[nodiscard]] double classify_ms() const;
  [[nodiscard]] double alias_ms() const;
  [[nodiscard]] double reclassify_ms() const;
  [[nodiscard]] double constrain_ms() const;
  [[nodiscard]] double followup_ms() const;
  [[nodiscard]] std::size_t followups_launched() const;
  [[nodiscard]] std::size_t followups_skipped() const;
};

// Small steady-clock stopwatch for stage timing.
class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}
  // Milliseconds since construction or the last restart().
  [[nodiscard]] double elapsed_ms() const {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }
  void restart() { start_ = std::chrono::steady_clock::now(); }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace cfs
