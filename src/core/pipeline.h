// End-to-end experiment pipeline.
//
// Wires the full stack the way the paper's measurement study is wired:
// ground-truth topology -> looking-glass directory -> vantage points ->
// routing/forwarding/traceroute engines -> noisy public data sources ->
// CFS -> validation harness. Benchmarks, examples and integration tests
// all build on this instead of repeating the plumbing.
#pragma once

#include <memory>

#include "core/cfs.h"
#include "core/validation.h"
#include "data/geoip.h"
#include "data/normalize.h"
#include "topology/generator.h"

namespace cfs {

struct PipelineConfig {
  GeneratorConfig generator;
  PlatformConfig platforms;
  LookingGlassDirectory::Config looking_glasses;
  EngineConfig engine;
  PeeringDbConfig peeringdb;
  WebsiteConfig websites;
  DnsConfig dns;
  GeoIpConfig geoip;
  CfsConfig cfs;
  // Fault-injection schedule (net/faults.h). Defaults to all-zero
  // intensities, in which case no FaultPlane is even constructed and the
  // pipeline is byte-identical to one without a fault plane.
  FaultPlan faults;
  // Worker threads for campaign speculation and CFS classification.
  // 0 = hardware concurrency; 1 (the reference) constructs no pool at all
  // and runs the historical serial code paths. Reports are byte-identical
  // at every value (docs/PARALLELISM.md).
  int threads = 1;
  double community_adoption = 0.6;
  std::uint64_t seed = 4242;

  // Presets mirroring the generator scales.
  static PipelineConfig tiny();
  static PipelineConfig small_scale();
  static PipelineConfig paper_scale();
};

// Owns every stage; construction order is the dependency order.
class Pipeline {
 public:
  explicit Pipeline(const PipelineConfig& config);

  // --- the paper's workflow ---
  // Initial traceroute campaign toward the given target ASes from a sample
  // of vantage points per platform (fractions of each platform's pool).
  [[nodiscard]] std::vector<TraceResult> initial_campaign(
      const std::vector<Asn>& target_ases, double vp_fraction = 0.5);

  // Runs CFS over the traces (plus its own follow-ups).
  [[nodiscard]] CfsReport run_cfs(std::vector<TraceResult> traces);

  // Default interesting targets: the largest content and transit ASes.
  [[nodiscard]] std::vector<Asn> default_targets(int content, int transit) const;

  // --- accessors ---
  Topology& topology() { return topo_; }
  const Topology& topology() const { return topo_; }
  const VantagePointSet& vantage_points() const { return *vps_; }
  LookingGlassDirectory& looking_glasses() { return *lgs_; }
  FacilityDatabase& facility_db() { return *facility_db_; }
  const IpToAsnService& ip2asn() const { return *ip2asn_; }
  MeasurementCampaign& campaign() { return *campaign_; }
  TracerouteEngine& engine() { return *engine_; }
  const RoutingOracle& routing() const { return *routing_; }
  const ForwardingEngine& forwarding() const { return *forwarding_; }
  const CommunityRegistry& communities() const { return *communities_; }
  const DnsNames& dns() const { return *dns_; }
  const DropParser& drop() const { return *drop_; }
  const GeoIpDb& geoip() const { return *geoip_; }
  const IxpWebsiteSource& ixp_websites() const { return *ixp_sites_; }
  const NocWebsiteSource& noc_websites() const { return *noc_; }
  ValidationHarness& validation() { return *validation_; }
  const PipelineConfig& config() const { return config_; }
  // Null when the configured FaultPlan has all-zero intensities.
  FaultPlane* faults() { return faults_.get(); }
  // Null when the resolved thread count is 1 (`--threads 1` bypasses the
  // pool entirely; tests assert this).
  ThreadPool* thread_pool() { return pool_.get(); }
  // Thread count after resolving 0 -> hardware concurrency.
  [[nodiscard]] int threads() const { return threads_; }

 private:
  PipelineConfig config_;
  // Registry baseline taken before any pipeline work (declared ahead of
  // topo_ so topology generation is already covered): run_cfs reports the
  // per-pipeline delta even though the trace registry is process-wide.
  MetricsSnapshot trace_baseline_ = Trace::metrics();
  Topology topo_;
  int threads_ = 1;
  std::unique_ptr<ThreadPool> pool_;    // before its consumers
  std::unique_ptr<FaultPlane> faults_;  // before its consumers
  std::unique_ptr<LookingGlassDirectory> lgs_;
  std::unique_ptr<VantagePointSet> vps_;
  std::unique_ptr<RoutingOracle> routing_;
  std::unique_ptr<ForwardingEngine> forwarding_;
  std::unique_ptr<TracerouteEngine> engine_;
  std::unique_ptr<MeasurementCampaign> campaign_;
  std::unique_ptr<IpToAsnService> ip2asn_;
  std::unique_ptr<NocWebsiteSource> noc_;
  std::unique_ptr<IxpWebsiteSource> ixp_sites_;
  std::unique_ptr<FacilityDatabase> facility_db_;
  std::unique_ptr<CommunityRegistry> communities_;
  std::unique_ptr<DnsNames> dns_;
  std::unique_ptr<DropParser> drop_;
  std::unique_ptr<GeoIpDb> geoip_;
  std::unique_ptr<ValidationHarness> validation_;
  Rng rng_;
};

}  // namespace cfs
