#include "core/multilateral.h"

namespace cfs {

std::string_view session_kind_name(SessionKind kind) {
  switch (kind) {
    case SessionKind::Bilateral: return "bilateral";
    case SessionKind::Multilateral: return "multilateral";
    case SessionKind::Unknown: return "unknown";
  }
  return "?";
}

MultilateralInference::MultilateralInference(const Topology& topo,
                                             const LookingGlassDirectory& lgs)
    : topo_(topo) {
  for (const auto& entry : lgs.entries())
    if (entry.supports_bgp) has_bgp_lg_[entry.owner.value] = true;
}

SessionKind MultilateralInference::classify(
    const PeeringObservation& obs) const {
  if (obs.kind != PeeringKind::Public) return SessionKind::Unknown;
  // The technique requires BGP vantage inside the near-side AS: the LG's
  // "show ip bgp" output names the neighbor the route was learned from —
  // the route server's address for multilateral sessions, the peer's LAN
  // address for bilateral ones.
  if (!has_bgp_lg_.contains(obs.near_as.value)) return SessionKind::Unknown;

  // Locate the session: the far side's LAN address pins the IXP and link.
  const Interface* far_iface = topo_.find_interface(obs.far_addr);
  if (far_iface == nullptr) return SessionKind::Unknown;
  for (const LinkId lid : topo_.links_of(far_iface->router)) {
    const Link& link = topo_.link(lid);
    if (link.type != LinkType::PublicPeering) continue;
    const bool matches =
        (link.a.address == obs.far_addr &&
         topo_.router(link.b.router).owner == obs.near_as) ||
        (link.b.address == obs.far_addr &&
         topo_.router(link.a.router).owner == obs.near_as);
    if (matches)
      return link.multilateral ? SessionKind::Multilateral
                               : SessionKind::Bilateral;
  }
  return SessionKind::Unknown;
}

MultilateralInference::Stats MultilateralInference::survey(
    const std::vector<PeeringObservation>& observations) const {
  Stats stats;
  for (const PeeringObservation& obs : observations) {
    if (obs.kind != PeeringKind::Public) continue;
    switch (classify(obs)) {
      case SessionKind::Bilateral: ++stats.bilateral; break;
      case SessionKind::Multilateral: ++stats.multilateral; break;
      case SessionKind::Unknown: ++stats.unknown; break;
    }
  }
  return stats;
}

double MultilateralInference::bgp_lg_coverage() const {
  if (topo_.ases().empty()) return 0.0;
  return static_cast<double>(has_bgp_lg_.size()) /
         static_cast<double>(topo_.ases().size());
}

}  // namespace cfs
