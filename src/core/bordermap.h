// Border-interface ownership correction in the style of MAP-IT / bdrmap
// (Marder & Smith, IMC 2016; Luckie et al., IMC 2016 — the line of work
// the paper's Section 7 cites through Motamedi et al.).
//
// A /30 numbered from one side makes the far router's ingress interface
// raw-map to the wrong AS, shifting the observed boundary one hop (the
// "phantom crossing" error). Alias resolution fixes it only when the far
// router answers IP-ID probes. Border mapping fixes it from the traceroute
// corpus alone: an interface X that raw-maps to A but whose observed
// successors consistently map into B — while its predecessors stay in A
// and X is never seen continuing inside A — is the far end of an A-numbered
// link, so X's router belongs to B.
#pragma once

#include <unordered_map>

#include "data/ip2asn.h"
#include "traceroute/engine.h"

namespace cfs {

struct BorderMapConfig {
  std::size_t min_observations = 2;  // successor samples needed
  double majority = 0.75;            // successor share required for B
};

class BorderMapper {
 public:
  BorderMapper(const IpToAsnService& ip2asn,
               const BorderMapConfig& config = {});

  // Accumulates hop-adjacency evidence from a trace.
  void ingest(const TraceResult& trace);
  void ingest_all(const std::vector<TraceResult>& traces);

  // Interfaces whose router provably belongs to a different AS than the
  // raw longest-prefix mapping says, with the corrected owner.
  [[nodiscard]] std::unordered_map<Ipv4, Asn> corrections() const;

  [[nodiscard]] std::size_t interfaces_seen() const { return stats_.size(); }

 private:
  struct Evidence {
    std::unordered_map<std::uint32_t, std::size_t> successor_as;
    std::unordered_map<std::uint32_t, std::size_t> predecessor_as;
    // Successor hops on IXP peering LANs: the interface's router fronts an
    // exchange, which is strong evidence it is a genuine border router of
    // its raw AS — corrections are suppressed (missing a repair is cheaper
    // than inventing a wrong owner).
    std::size_t ixp_successors = 0;
  };

  const IpToAsnService& ip2asn_;
  BorderMapConfig config_;
  std::unordered_map<Ipv4, Evidence> stats_;
};

}  // namespace cfs
