// Step 1 of CFS: identify public and private peering crossings in
// traceroute paths (paper Section 4.2).
//
// A hop sequence (IP_A, IP_e, IP_B) with IP_e inside an IXP peering LAN is
// a public peering between the AS of IP_A and the AS of IP_e's router; an
// adjacent pair (IP_A, IP_B) mapping to different ASes is a private
// interconnection. Paths where the boundary hop is unresponsive or
// unresolvable are discarded, exactly as in the paper.
//
// IP-to-ASN mapping is corrected with alias-resolution majority voting
// (Section 4.1): interfaces grouped into one router inherit the ASN that
// the majority of the router's interfaces map to, which repairs the
// point-to-point /30s numbered out of the neighbor's address space.
#pragma once

#include <unordered_map>

#include "alias/midar.h"
#include "core/types.h"
#include "data/ip2asn.h"
#include "traceroute/engine.h"

namespace cfs {

// ASN assignment for observed interfaces: raw longest-prefix mapping plus
// alias-majority correction.
class InterfaceAsnMap {
 public:
  explicit InterfaceAsnMap(const IpToAsnService& ip2asn);

  // Applies majority voting over each alias set.
  void apply_alias_correction(const AliasSets& aliases);

  // Applies border-mapping corrections (core/bordermap.h); alias-derived
  // corrections take precedence when both exist for an address.
  void apply_border_corrections(
      const std::unordered_map<Ipv4, Asn>& corrections);

  // Mapped ASN (corrected when a correction exists); nullopt = unresolved.
  [[nodiscard]] std::optional<Asn> asn_of(Ipv4 addr) const;

  [[nodiscard]] std::size_t corrections() const { return corrected_.size(); }

  // Bumped every time a correction changes an address's effective mapping.
  // A trace classification cached at generation g is still valid when none
  // of the trace's hop addresses appear in the changes since g.
  [[nodiscard]] std::uint64_t generation() const { return generation_; }

  // Addresses whose mapping changed since the last call; clears the log.
  [[nodiscard]] std::vector<Ipv4> take_changed();

 private:
  void record_change(Ipv4 addr);

  const IpToAsnService& ip2asn_;
  std::unordered_map<Ipv4, Asn> corrected_;
  std::uint64_t generation_ = 0;
  std::vector<Ipv4> changed_;
};

class HopClassifier {
 public:
  HopClassifier(const IpToAsnService& ip2asn, const InterfaceAsnMap& map);

  // Extracts every peering crossing from one traceroute.
  [[nodiscard]] std::vector<PeeringObservation> classify(
      const TraceResult& trace) const;

  // Batch variant with per-(near,far) RTT minimisation across traces.
  [[nodiscard]] std::vector<PeeringObservation> classify_all(
      const std::vector<TraceResult>& traces) const;

 private:
  const IpToAsnService& ip2asn_;
  const InterfaceAsnMap& map_;
};

}  // namespace cfs
