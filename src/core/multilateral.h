// Bilateral vs multilateral session inference (extension).
//
// Route servers make public peering cheap: one BGP session to the RS
// yields routes from much of the membership (Section 2). On the wire a
// multilateral session is indistinguishable from a bilateral one — the RS
// is control-plane only — so the distinction must come from BGP data:
// querying a BGP-capable looking glass inside the near-side AS reveals
// whether the route toward the far side was learned from the route
// server's session. This mirrors "Inferring Multilateral Peering"
// (Giotsas et al., CoNEXT 2013), the companion technique the paper builds
// on for its peering inference pipeline.
#pragma once

#include "bgp/looking_glass.h"
#include "core/types.h"
#include "topology/topology.h"

namespace cfs {

enum class SessionKind { Bilateral, Multilateral, Unknown };
std::string_view session_kind_name(SessionKind kind);

class MultilateralInference {
 public:
  MultilateralInference(const Topology& topo,
                        const LookingGlassDirectory& lgs);

  // Classifies a public-peering observation. Returns Unknown when no
  // BGP-capable looking glass exists inside the near-side AS (the coverage
  // limit of the real technique) or when the session cannot be found.
  [[nodiscard]] SessionKind classify(const PeeringObservation& obs) const;

  // Batch statistics over a set of observations.
  struct Stats {
    std::size_t bilateral = 0;
    std::size_t multilateral = 0;
    std::size_t unknown = 0;

    [[nodiscard]] std::size_t classified() const {
      return bilateral + multilateral;
    }
  };
  [[nodiscard]] Stats survey(
      const std::vector<PeeringObservation>& observations) const;

  // Coverage: fraction of ASes with a BGP-capable looking glass.
  [[nodiscard]] double bgp_lg_coverage() const;

 private:
  const Topology& topo_;
  std::unordered_map<std::uint32_t, bool> has_bgp_lg_;  // per ASN
};

}  // namespace cfs
