#include "core/iface_table.h"

#include <algorithm>

#include "util/setops.h"

namespace cfs {

void IfaceTable::ensure_rows(std::size_t n) {
  if (n <= addr_.size()) return;
  addr_.resize(n);
  asn_.resize(n);
  cand_.resize(n, nullptr);
  cand_n_.resize(n, 0);
  resolved_iter_.resize(n, -1);
  conflicts_.resize(n, 0);
  present_.resize(n);
  has_constraint_.resize(n);
  remote_.resize(n);
  seen_from_.resize(n);
  queried_ixps_.resize(n);
}

void IfaceTable::touch(Handle h, Ipv4 addr, Asn asn) {
  if (!present_.test(h)) {
    present_.set(h);
    ++present_count_;
  }
  addr_[h] = addr;
  asn_[h] = asn;
}

void IfaceTable::note_seen_from(Handle h, VantagePointId vp) {
  auto& v = seen_from_[h];
  if (std::find(v.begin(), v.end(), vp) == v.end()) v.push_back(vp);
}

void IfaceTable::add_queried_ixp(Handle h, IxpId ixp) {
  auto& v = queried_ixps_[h];
  if (std::find(v.begin(), v.end(), ixp) == v.end()) v.push_back(ixp);
}

bool IfaceTable::constrain(Handle h, const FacilityId* allowed, std::size_t n,
                           int iteration) {
  assert(sorted_unique(allowed, n));
  if (n == 0) return false;
  if (!has_constraint_.test(h)) {
    FacilityId* span = arena_.alloc_array<FacilityId>(n);
    std::copy(allowed, allowed + n, span);
    cand_[h] = span;
    cand_n_[h] = static_cast<std::uint32_t>(n);
    has_constraint_.set(h);
    if (n == 1) resolved_iter_[h] = iteration;
    return true;
  }
  const std::size_t narrowed =
      intersect_in_place(cand_[h], cand_n_[h], allowed, n);
  if (narrowed == 0) {  // would empty the set: conflict, keep the original
    ++conflicts_[h];
    return false;
  }
  if (narrowed == cand_n_[h]) return false;
  cand_n_[h] = static_cast<std::uint32_t>(narrowed);
  if (narrowed == 1 && resolved_iter_[h] < 0) resolved_iter_[h] = iteration;
  return true;
}

InterfaceInference IfaceTable::materialize(Handle h) const {
  InterfaceInference inf;
  inf.addr = addr_[h];
  inf.asn = asn_[h];
  inf.has_constraint = has_constraint_.test(h);
  inf.candidates.assign(cand_[h], cand_[h] + cand_n_[h]);
  inf.remote_suspect = remote_.test(h);
  inf.resolved_iteration = resolved_iter_[h];
  inf.conflicts = conflicts_[h];
  inf.seen_from = seen_from_[h];
  inf.queried_ixps = queried_ixps_[h];
  return inf;
}

}  // namespace cfs
