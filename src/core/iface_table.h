// Dense structure-of-arrays interface-inference table.
//
// One row per interned address handle (util/intern.h); rows become
// `present` the first time an address appears as a peering endpoint.
// The mutable hot columns (candidate span, flags, counters) are flat
// arrays the constraint fold indexes directly — no hashing per touch.
//
// Candidate sets live in an arena (util/arena.h): the first constraint
// copies the allowed list into a span sized once, and every later
// narrowing shrinks that span in place via intersect_in_place, which
// writes only to already-consumed positions — an intersection that would
// empty the set writes nothing, so the conflict-rejection path keeps the
// original set intact for free. Spans never grow after first assignment
// (constraints only intersect), so the arena is append-only for the
// lifetime of a run and freed wholesale with it.
//
// report-facing InterfaceInference values are materialised per row at the
// end of a run; the semantics of `constrain` are a field-for-field
// transcription of InterfaceInference::constrain (core/candidates.cpp).
#pragma once

#include <cstdint>
#include <vector>

#include "core/candidates.h"
#include "util/arena.h"
#include "util/bitset.h"

namespace cfs {

class IfaceTable {
 public:
  using Handle = std::uint32_t;

  // Grows every column to `n` rows (new rows absent).
  void ensure_rows(std::size_t n);

  // Creates the row on first touch; always refreshes addr/asn (the last
  // classification wins, matching the old absorb's overwrite).
  void touch(Handle h, Ipv4 addr, Asn asn);

  [[nodiscard]] bool present(Handle h) const { return present_.test(h); }
  [[nodiscard]] std::size_t rows() const { return addr_.size(); }
  [[nodiscard]] std::size_t present_count() const { return present_count_; }

  [[nodiscard]] Ipv4 addr(Handle h) const { return addr_[h]; }
  [[nodiscard]] Asn asn(Handle h) const { return asn_[h]; }
  [[nodiscard]] bool has_constraint(Handle h) const {
    return has_constraint_.test(h);
  }
  [[nodiscard]] const FacilityId* cand_data(Handle h) const {
    return cand_[h];
  }
  [[nodiscard]] std::uint32_t cand_size(Handle h) const { return cand_n_[h]; }
  [[nodiscard]] bool resolved(Handle h) const {
    return has_constraint_.test(h) && cand_n_[h] == 1;
  }
  [[nodiscard]] bool remote_suspect(Handle h) const {
    return remote_.test(h);
  }
  void mark_remote(Handle h) { remote_.set(h); }

  void note_seen_from(Handle h, VantagePointId vp);  // push-if-absent
  void add_queried_ixp(Handle h, IxpId ixp);         // push-if-absent
  [[nodiscard]] const std::vector<VantagePointId>& seen_from(Handle h) const {
    return seen_from_[h];
  }
  [[nodiscard]] const std::vector<IxpId>& queried_ixps(Handle h) const {
    return queried_ixps_[h];
  }

  // Intersects the row's candidate span with allowed[0..n); identical
  // narrowing/conflict semantics to InterfaceInference::constrain.
  // Returns true when the set narrowed (or was first assigned).
  bool constrain(Handle h, const FacilityId* allowed, std::size_t n,
                 int iteration);

  // Copies a row out into the report-facing value type.
  [[nodiscard]] InterfaceInference materialize(Handle h) const;

  [[nodiscard]] std::uint64_t arena_bytes() const {
    return arena_.bytes_allocated();
  }

 private:
  Arena arena_;
  // SoA columns, indexed by handle.
  std::vector<Ipv4> addr_;
  std::vector<Asn> asn_;
  std::vector<FacilityId*> cand_;
  std::vector<std::uint32_t> cand_n_;
  std::vector<std::int32_t> resolved_iter_;
  std::vector<std::int32_t> conflicts_;
  DynamicBitset present_;
  DynamicBitset has_constraint_;
  DynamicBitset remote_;
  std::vector<std::vector<VantagePointId>> seen_from_;
  std::vector<std::vector<IxpId>> queried_ixps_;
  std::size_t present_count_ = 0;
};

}  // namespace cfs
