// Constrained Facility Search — the paper's core algorithm (Section 4).
//
// Given an initial traceroute corpus, CFS iterates:
//   Step 1  classify peering crossings (public via IXP LAN / private);
//   Step 2  constrain each peering interface to the facilities consistent
//           with the AS-to-facility and IXP-to-facility databases,
//           separating local, remote and data-less cases;
//   Step 3  propagate constraints across alias sets (interfaces of one
//           router must share its facility);
//   Step 4  launch targeted follow-up traceroutes chosen to add the most
//           constraining facility overlaps, plus reverse-direction probes
//           from vantage points inside far-side ASes;
// until every interface converges to a single facility or the iteration
// budget (100 in the paper) is exhausted. A final pass classifies each
// crossing's engineering (cross-connect, tethering, public local/remote,
// remote private) and applies the switch-proximity heuristic to far ends
// that the reverse search could not pin down.
//
// CFS deliberately sees only the public-information layers: the merged
// facility database, the IP-to-ASN service, DNS-free traceroute output and
// its own alias resolution. The ground-truth Topology is used solely for
// public facts (facility -> metro, prefix origins for target selection).
#pragma once

#include "core/classify.h"
#include "core/proximity.h"
#include "core/remote.h"
#include "core/report.h"
#include "data/facility_db.h"
#include "traceroute/campaign.h"
#include "traceroute/platforms.h"

namespace cfs {

struct CfsConfig {
  int max_iterations = 100;
  // Follow-up budget per iteration: how many unresolved interfaces are
  // chased, with how many vantage points and target ASes each.
  int followup_interfaces = 48;
  int followup_vps = 3;
  int followup_targets = 2;
  // Alias resolution is re-run over newly observed interfaces every this
  // many iterations (it is the expensive probing stage).
  int alias_refresh_interval = 10;
  RemoteDetectorConfig remote;
  // Ablation switches (DESIGN.md Section 4).
  bool use_alias_constraints = true;
  bool use_border_mapping = true;  // MAP-IT-style /30 ownership repair
  bool random_followups = false;
  // Restrict follow-up probing to one platform (Figure 7's per-platform
  // convergence curves); initial traces are restricted by the caller.
  std::optional<Platform> platform_filter;
  std::uint64_t seed = 99;
};

class ConstrainedFacilitySearch {
 public:
  ConstrainedFacilitySearch(const Topology& topo, const FacilityDatabase& db,
                            const IpToAsnService& ip2asn,
                            MeasurementCampaign& campaign,
                            const VantagePointSet& vps,
                            const CfsConfig& config = {});

  // Runs the full algorithm over (and beyond) the given traces.
  [[nodiscard]] CfsReport run(std::vector<TraceResult> traces);

 private:
  struct State;

  void ingest_traces(State& state, std::vector<TraceResult> fresh) const;
  void refresh_aliases(State& state) const;
  void apply_facility_constraints(State& state, int iteration) const;
  void apply_alias_constraints(State& state, int iteration) const;
  void launch_followups(State& state, int iteration) const;

  const Topology& topo_;
  const FacilityDatabase& db_;
  const IpToAsnService& ip2asn_;
  MeasurementCampaign& campaign_;
  const VantagePointSet& vps_;
  CfsConfig config_;
};

}  // namespace cfs
