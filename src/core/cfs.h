// Constrained Facility Search — the paper's core algorithm (Section 4).
//
// Given an initial traceroute corpus, CFS iterates:
//   Step 1  classify peering crossings (public via IXP LAN / private);
//   Step 2  constrain each peering interface to the facilities consistent
//           with the AS-to-facility and IXP-to-facility databases,
//           separating local, remote and data-less cases;
//   Step 3  propagate constraints across alias sets (interfaces of one
//           router must share its facility);
//   Step 4  launch targeted follow-up traceroutes chosen to add the most
//           constraining facility overlaps, plus reverse-direction probes
//           from vantage points inside far-side ASes;
// until every interface converges to a single facility or the iteration
// budget (100 in the paper) is exhausted. A final pass classifies each
// crossing's engineering (cross-connect, tethering, public local/remote,
// remote private) and applies the switch-proximity heuristic to far ends
// that the reverse search could not pin down.
//
// The default engine is incremental: per-trace classification results are
// cached against the InterfaceAsnMap generation so an alias refresh only
// re-derives traces that traverse a corrected address, and constraint
// passes walk a dirty set of observations whose endpoint candidate sets
// changed instead of the whole store. Because InterfaceInference::constrain
// only ever intersects, re-applying an observation whose inputs did not
// change is a no-op — both engines produce identical reports
// (tests/core/incremental_test.cpp asserts it). Per-stage accounting lands
// in CfsReport::metrics.
//
// Hot-path layout (docs/ALGORITHM.md "Memory layout"): addresses are
// interned into dense u32 handles at ingest; per-interface state lives in
// a flat SoA table with arena-backed candidate spans (core/iface_table.h);
// observations live in a slot-stable key-ordered store (core/obs_store.h)
// with the dirty/pending worklists as bitsets over slots. The constraint
// fold speculates per-observation directives in parallel on the pool (they
// are pure functions of the observation and the databases) and applies
// them serially in ascending key order, so reports are byte-identical at
// any --threads N. Strings survive only at the ingest and export
// boundaries.
//
// CFS deliberately sees only the public-information layers: the merged
// facility database, the IP-to-ASN service, DNS-free traceroute output and
// its own alias resolution. The ground-truth Topology is used solely for
// public facts (facility -> metro, prefix origins for target selection).
#pragma once

#include <cstdint>
#include <utility>

#include "core/classify.h"
#include "core/metrics.h"
#include "core/proximity.h"
#include "core/remote.h"
#include "core/report.h"
#include "data/facility_db.h"
#include "traceroute/campaign.h"
#include "traceroute/platforms.h"
#include "util/thread_pool.h"

namespace cfs {

struct CfsConfig {
  int max_iterations = 100;
  // Follow-up budget per iteration: how many unresolved interfaces are
  // chased, with how many vantage points and target ASes each.
  int followup_interfaces = 48;
  int followup_vps = 3;
  int followup_targets = 2;
  // Alias resolution is re-run over newly observed interfaces every this
  // many iterations (it is the expensive probing stage).
  int alias_refresh_interval = 10;
  RemoteDetectorConfig remote;
  // Ablation switches (DESIGN.md Section 4).
  bool use_alias_constraints = true;
  bool use_border_mapping = true;  // MAP-IT-style /30 ownership repair
  bool random_followups = false;
  // Incremental engine (default): alias refreshes re-classify only traces
  // touching a corrected address, constraint passes only observations whose
  // endpoints changed. `false` re-runs every pass from scratch; both paths
  // produce identical reports.
  bool incremental = true;
  // Restrict follow-up probing to one platform (Figure 7's per-platform
  // convergence curves); initial traces are restricted by the caller.
  std::optional<Platform> platform_filter;
  // Worker threads the run is configured with, recorded on CfsMetrics.
  // Classification only actually fans out when a pool is supplied; results
  // are byte-identical either way.
  int threads = 1;
  std::uint64_t seed = 99;
};

class ConstrainedFacilitySearch {
 public:
  // `pool` (optional) fans per-trace classification across workers; the
  // constraint loop itself stays serial so convergence order is unchanged.
  ConstrainedFacilitySearch(const Topology& topo, const FacilityDatabase& db,
                            const IpToAsnService& ip2asn,
                            MeasurementCampaign& campaign,
                            const VantagePointSet& vps,
                            const CfsConfig& config = {},
                            ThreadPool* pool = nullptr);

  // Runs the full algorithm over (and beyond) the given traces.
  [[nodiscard]] CfsReport run(std::vector<TraceResult> traces);

 private:
  struct State;
  // A precomputed Step-2 plan for one observation: which interfaces to
  // constrain with which (immutable) facility lists, plus the remote-
  // suspect and queried-IXP side effects. Directives are a pure function
  // of the observation and the public databases — no mutable engine state
  // — so they can be speculated in parallel and applied serially in key
  // order with byte-identical results at any thread count.
  struct Directive;

  // Classifies traces appended past classified_upto into the observation
  // store (and, incrementally, the per-trace cache + address index).
  // Returns how many observations the classifier produced.
  std::size_t ingest_traces(State& state, std::vector<TraceResult> fresh,
                            IterationMetrics* im) const;
  void refresh_aliases(State& state, IterationMetrics& im) const;
  // Incremental refresh tail: re-classify traces hit by asn-map corrections,
  // replay everything else from cache, diff the rebuilt store into the
  // dirty worklist.
  void reclassify_changed(State& state, IterationMetrics& im) const;
  // Records that the interface row's candidate set changed and queues its
  // observations for re-processing. `current` is the facility-pass cursor
  // key: keys after it re-enter the in-flight pass (matching the full
  // engine's in-pass cascades), keys at or before it wait for the next
  // iteration.
  void note_candidates_changed(State& state, std::uint32_t iface,
                               const std::uint64_t* current) const;
  // Step 2 for a single observation, split into a pure planning half...
  [[nodiscard]] Directive make_directive(const State& state,
                                         const RemotePeeringDetector& detector,
                                         const PeeringObservation& obs) const;
  // ...and a serial application half (the only part that mutates rows).
  void apply_directive(State& state, const Directive& directive, IxpId ixp,
                       int iteration, const std::uint64_t* current) const;
  void apply_facility_constraints(State& state, int iteration,
                                  IterationMetrics& im) const;
  void apply_alias_constraints(State& state, int iteration,
                               IterationMetrics& im) const;
  // Step 4: returns the fresh traces (caller ingests them under the
  // classify timer).
  [[nodiscard]] std::vector<TraceResult> launch_followups(
      State& state, int iteration, IterationMetrics& im) const;

  // Runs `classify` over the index range [begin, end) of state.traces,
  // fanning across the pool when one is attached and the range is large
  // enough to pay for it. Results land in per-index slots (returned in
  // trace order), so the caller's serial fold is order-identical to a
  // serial classify loop.
  [[nodiscard]] std::vector<std::vector<PeeringObservation>> classify_range(
      const HopClassifier& classifier, const std::vector<TraceResult>& traces,
      const std::vector<std::uint32_t>& indices) const;

  const Topology& topo_;
  const FacilityDatabase& db_;
  const IpToAsnService& ip2asn_;
  MeasurementCampaign& campaign_;
  const VantagePointSet& vps_;
  CfsConfig config_;
  ThreadPool* pool_ = nullptr;
};

}  // namespace cfs
