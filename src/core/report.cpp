#include "core/report.h"

#include <set>

namespace cfs {

const InterfaceInference* CfsReport::find(Ipv4 addr) const {
  const auto it = interfaces.find(addr);
  return it == interfaces.end() ? nullptr : &it->second;
}

std::size_t CfsReport::resolved_interfaces() const {
  std::size_t count = 0;
  for (const auto& [addr, inf] : interfaces) count += inf.resolved();
  return count;
}

double CfsReport::resolved_fraction() const {
  if (interfaces.empty()) return 0.0;
  return static_cast<double>(resolved_interfaces()) /
         static_cast<double>(interfaces.size());
}

std::size_t CfsReport::city_constrained(const Topology& topo) const {
  std::size_t count = 0;
  for (const auto& [addr, inf] : interfaces)
    if (!inf.resolved() && inf.city(topo).has_value()) ++count;
  return count;
}

std::size_t CfsReport::no_data_interfaces() const {
  std::size_t count = 0;
  for (const auto& [addr, inf] : interfaces) count += !inf.has_constraint;
  return count;
}

CfsReport::RouterStats CfsReport::router_stats() const {
  // Group link participation by alias set (observed router proxy);
  // interfaces with no alias set count as their own router.
  struct Roles {
    bool public_peering = false;
    bool private_peering = false;
    std::set<std::uint32_t> ixps;
  };
  std::unordered_map<int, Roles> by_router;
  std::unordered_map<Ipv4, Roles> singletons;

  auto roles_for = [&](Ipv4 addr) -> Roles& {
    const int set = aliases.set_of(addr);
    if (set >= 0) return by_router[set];
    return singletons[addr];
  };

  for (const LinkInference& link : links) {
    Roles& near = roles_for(link.obs.near_addr);
    const bool is_public = link.obs.kind == PeeringKind::Public;
    if (is_public) {
      near.public_peering = true;
      near.ixps.insert(link.obs.ixp.value);
      // The far side of a public peering is that router's IXP port.
      Roles& far = roles_for(link.obs.far_addr);
      far.public_peering = true;
      far.ixps.insert(link.obs.ixp.value);
    } else {
      near.private_peering = true;
      roles_for(link.obs.far_addr).private_peering = true;
    }
  }

  RouterStats stats;
  auto account = [&](const Roles& roles) {
    ++stats.routers;
    stats.multi_role += roles.public_peering && roles.private_peering;
    stats.multi_ixp += roles.ixps.size() >= 2;
  };
  for (const auto& [set, roles] : by_router) account(roles);
  for (const auto& [addr, roles] : singletons) account(roles);
  return stats;
}

}  // namespace cfs
