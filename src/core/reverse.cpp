#include "core/reverse.h"

#include <unordered_set>

#include "traceroute/campaign.h"

namespace cfs {

std::vector<ReverseProbe> plan_reverse_probes(
    const Topology& topo, const VantagePointSet& vps,
    const std::function<bool(Ipv4)>& far_unresolved,
    const std::vector<PeeringObservation>& observations, std::size_t budget,
    std::optional<Platform> platform_filter) {
  std::vector<ReverseProbe> plan;

  // Index vantage points by hosting AS once.
  std::unordered_map<std::uint32_t, std::vector<const VantagePoint*>> by_as;
  for (const VantagePoint& vp : vps.all()) {
    if (platform_filter && vp.platform != *platform_filter) continue;
    by_as[vp.asn.value].push_back(&vp);
  }

  std::unordered_set<Ipv4> planned_far;
  for (const PeeringObservation& obs : observations) {
    if (plan.size() >= budget) break;
    if (obs.kind != PeeringKind::Public) continue;
    if (!far_unresolved(obs.far_addr)) continue;
    if (!planned_far.insert(obs.far_addr).second) continue;

    const auto vps_in_far = by_as.find(obs.far_as.value);
    if (vps_in_far == by_as.end()) continue;
    if (!topo.has_as(obs.near_as)) continue;
    const auto targets = MeasurementCampaign::targets_for(topo, obs.near_as);
    if (targets.empty()) continue;

    // One probe from the first vantage point in the far AS toward each of
    // up to two near-side targets.
    std::size_t used = 0;
    for (const Ipv4 target : targets) {
      if (used >= 2 || plan.size() >= budget) break;
      plan.push_back(ReverseProbe{vps_in_far->second.front()->id, target});
      ++used;
    }
  }
  return plan;
}

std::vector<ReverseProbe> plan_reverse_probes(
    const Topology& topo, const VantagePointSet& vps,
    const std::unordered_map<Ipv4, InterfaceInference>& interfaces,
    const std::vector<PeeringObservation>& observations, std::size_t budget,
    std::optional<Platform> platform_filter) {
  return plan_reverse_probes(
      topo, vps,
      [&interfaces](Ipv4 far) {
        const auto it = interfaces.find(far);
        return it != interfaces.end() && !it->second.resolved();
      },
      observations, budget, platform_filter);
}

}  // namespace cfs
