#include "core/candidates.h"

#include <algorithm>
#include <cassert>

namespace cfs {

namespace {

// std::set_intersection / std::includes silently return garbage on
// unsorted input; every facility-list producer (PeeringDb, Ixp,
// Topology::add_as, intersections themselves) keeps its vectors sorted,
// and debug builds verify the precondition at the consumer.
[[maybe_unused]] bool sorted(const std::vector<FacilityId>& v) {
  return std::is_sorted(v.begin(), v.end());
}

}  // namespace

std::vector<FacilityId> facility_intersection(
    const std::vector<FacilityId>& a, const std::vector<FacilityId>& b) {
  assert(sorted(a) && sorted(b));
  std::vector<FacilityId> out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

bool facility_subset(const std::vector<FacilityId>& inner,
                     const std::vector<FacilityId>& outer) {
  assert(sorted(inner) && sorted(outer));
  return std::includes(outer.begin(), outer.end(), inner.begin(),
                       inner.end());
}

bool InterfaceInference::constrain(const std::vector<FacilityId>& allowed,
                                   int iteration) {
  assert(sorted(allowed));
  if (allowed.empty()) return false;
  if (!has_constraint) {
    candidates = allowed;
    has_constraint = true;
    if (resolved()) resolved_iteration = iteration;
    return true;
  }
  auto narrowed = facility_intersection(candidates, allowed);
  if (narrowed.empty()) {
    ++conflicts;
    return false;
  }
  if (narrowed.size() == candidates.size()) return false;
  candidates = std::move(narrowed);
  if (resolved() && resolved_iteration < 0) resolved_iteration = iteration;
  return true;
}

std::optional<MetroId> InterfaceInference::city(const Topology& topo) const {
  if (!has_constraint || candidates.empty()) return std::nullopt;
  const MetroId metro = topo.metro_of(candidates.front());
  for (const FacilityId fac : candidates)
    if (topo.metro_of(fac) != metro) return std::nullopt;
  return metro;
}

}  // namespace cfs
