#include "core/candidates.h"

#include "util/setops.h"

namespace cfs {

// Sorted-unique preconditions (every facility-list producer — PeeringDb,
// Ixp, Topology::add_as, intersections themselves — keeps its vectors
// sorted) are asserted inside util/setops.h in debug builds.

std::vector<FacilityId> facility_intersection(
    const std::vector<FacilityId>& a, const std::vector<FacilityId>& b) {
  return set_intersect(a, b);
}

bool facility_subset(const std::vector<FacilityId>& inner,
                     const std::vector<FacilityId>& outer) {
  return set_subset(inner, outer);
}

bool InterfaceInference::constrain(const std::vector<FacilityId>& allowed,
                                   int iteration) {
  assert(sorted_unique(allowed));
  if (allowed.empty()) return false;
  if (!has_constraint) {
    candidates = allowed;
    has_constraint = true;
    if (resolved()) resolved_iteration = iteration;
    return true;
  }
  auto narrowed = facility_intersection(candidates, allowed);
  if (narrowed.empty()) {
    ++conflicts;
    return false;
  }
  if (narrowed.size() == candidates.size()) return false;
  candidates = std::move(narrowed);
  if (resolved() && resolved_iteration < 0) resolved_iteration = iteration;
  return true;
}

std::optional<MetroId> InterfaceInference::city(const Topology& topo) const {
  if (!has_constraint || candidates.empty()) return std::nullopt;
  const MetroId metro = topo.metro_of(candidates.front());
  for (const FacilityId fac : candidates)
    if (topo.metro_of(fac) != metro) return std::nullopt;
  return metro;
}

}  // namespace cfs
