#include "bgp/communities.h"

#include <algorithm>

namespace cfs {
namespace {

std::uint64_t key(std::uint32_t asn, std::uint32_t second) {
  return (std::uint64_t{asn} << 32) | second;
}

}  // namespace

CommunityRegistry::CommunityRegistry(const Topology& topo,
                                     double adoption_probability,
                                     std::uint64_t seed) {
  Rng rng(seed);
  for (const auto& as : topo.ases()) {
    if (as.type != AsType::Tier1 && as.type != AsType::Transit) continue;
    if (!rng.chance(adoption_probability)) continue;
    adopters_.push_back(as.asn);
    // Operator-defined scheme: an arbitrary per-facility code. Offsetting
    // by a random base keeps the values opaque (they are dictionary-driven,
    // not structural).
    const std::uint32_t base =
        1000 + static_cast<std::uint32_t>(rng.uniform(9000));
    std::uint32_t serial = 0;
    for (const FacilityId fac : as.facilities) {
      const std::uint32_t value = base + serial++;
      encode_.emplace(key(as.asn.value, fac.value), value);
      decode_.emplace(key(as.asn.value, value), fac.value);
    }
  }
  std::sort(adopters_.begin(), adopters_.end());
}

bool CommunityRegistry::tags_ingress(Asn asn) const {
  return std::binary_search(adopters_.begin(), adopters_.end(), asn);
}

std::optional<Community> CommunityRegistry::tag_for(Asn asn,
                                                    FacilityId facility) const {
  const auto it = encode_.find(key(asn.value, facility.value));
  if (it == encode_.end()) return std::nullopt;
  return Community{asn.value, it->second};
}

std::optional<FacilityId> CommunityRegistry::decode(
    const Community& community) const {
  const auto it = decode_.find(key(community.asn, community.value));
  if (it == decode_.end()) return std::nullopt;
  return FacilityId(it->second);
}

std::size_t CommunityRegistry::dictionary_size() const {
  return decode_.size();
}

}  // namespace cfs
