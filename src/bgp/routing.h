// AS-level route computation over the ground-truth topology.
//
// RoutingOracle answers "which AS path does traffic from S to D take?"
// under Gao-Rexford policies, using only adjacencies that are physically
// instantiated by at least one inter-AS link (a declared relationship with
// no circuit carries no traffic). Per-destination tables are computed once
// and cached; traceroute campaigns hit a handful of destination ASes with
// thousands of sources, which this layout makes cheap.
#pragma once

#include <shared_mutex>
#include <unordered_map>
#include <vector>

#include "bgp/relationships.h"
#include "topology/topology.h"

namespace cfs {

class RoutingOracle {
 public:
  explicit RoutingOracle(const Topology& topo);

  // AS path from src to dst inclusive; empty when unreachable.
  // Deterministic: preference, then path length, then lowest next-hop ASN.
  [[nodiscard]] std::vector<Asn> as_path(Asn src, Asn dst) const;

  // The route kind src uses toward dst (None if unreachable).
  [[nodiscard]] RouteKind route_kind(Asn src, Asn dst) const;

  // True when the physically-instantiated adjacency graph connects the ASes.
  [[nodiscard]] bool reachable(Asn src, Asn dst) const {
    return route_kind(src, dst) != RouteKind::None;
  }

  // Number of destination tables currently cached (introspection/tests).
  [[nodiscard]] std::size_t cached_tables() const {
    std::shared_lock lock(cache_mutex_);
    return cache_.size();
  }

 private:
  struct DestTable {
    std::vector<RouteKind> kind;   // indexed by dense AS index
    std::vector<std::uint16_t> dist;
    std::vector<std::uint32_t> next;  // dense index of next-hop AS
  };

  [[nodiscard]] const DestTable& table_for(std::uint32_t dst_index) const;
  void compute(std::uint32_t dst_index, DestTable& table) const;

  const Topology& topo_;
  std::unordered_map<std::uint32_t, std::uint32_t> index_of_;  // asn -> dense
  std::vector<Asn> asn_of_;                                    // dense -> asn
  // Physically instantiated adjacency, deduplicated and sorted by ASN.
  std::vector<std::vector<std::uint32_t>> providers_;  // index -> providers
  std::vector<std::vector<std::uint32_t>> customers_;
  std::vector<std::vector<std::uint32_t>> peers_;
  // Lazily-filled per-destination tables. Parallel trace speculation hits
  // this from many threads; readers take the shared lock, a miss computes
  // outside any lock (tables are pure functions of the topology) and the
  // first writer to insert wins. unordered_map node stability keeps
  // returned references valid across later insertions.
  mutable std::shared_mutex cache_mutex_;
  mutable std::unordered_map<std::uint32_t, DestTable> cache_;
};

}  // namespace cfs
