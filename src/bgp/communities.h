// BGP communities for ingress-point tagging.
//
// A subset of transit operators annotate routes with an informational
// community (asn:value) identifying the facility where the route entered
// their network. The paper compiles a dictionary of 109 such values from
// four large transit providers and uses them as a validation source; the
// registry below plays both roles — it generates the communities attached
// to looking-glass BGP output, and exposes the operator-published
// dictionary that the validation harness decodes them with.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "topology/topology.h"
#include "util/rng.h"

namespace cfs {

struct Community {
  std::uint32_t asn = 0;    // tagging AS
  std::uint32_t value = 0;  // operator-defined code

  friend constexpr auto operator<=>(const Community&, const Community&) =
      default;
};

class CommunityRegistry {
 public:
  // Chooses which ASes publish ingress-tagging communities: large transit
  // and tier-1 networks adopt the practice with the given probability.
  CommunityRegistry(const Topology& topo, double adoption_probability,
                    std::uint64_t seed);

  [[nodiscard]] bool tags_ingress(Asn asn) const;

  // Community an adopting AS attaches to a route entering at `facility`;
  // nullopt when the AS does not tag.
  [[nodiscard]] std::optional<Community> tag_for(Asn asn,
                                                 FacilityId facility) const;

  // Operator-published dictionary: decode a community back to the facility.
  // Returns nullopt for unknown (asn, value) pairs.
  [[nodiscard]] std::optional<FacilityId> decode(
      const Community& community) const;

  // Number of (asn,value) dictionary entries (paper: 109 values).
  [[nodiscard]] std::size_t dictionary_size() const;

  [[nodiscard]] const std::vector<Asn>& adopters() const { return adopters_; }

 private:
  std::vector<Asn> adopters_;
  // (asn << 32 | facility) -> value ; (asn << 32 | value) -> facility
  std::unordered_map<std::uint64_t, std::uint32_t> encode_;
  std::unordered_map<std::uint64_t, std::uint32_t> decode_;
};

}  // namespace cfs
