// Route preference model (Gao-Rexford).
//
// An AS prefers routes learned from customers over routes learned from
// peers over routes learned from providers, and within a class prefers the
// shortest AS path. Export rules make every usable path valley-free: a
// sequence of customer-to-provider hops, at most one peer hop, then
// provider-to-customer hops.
#pragma once

#include <string_view>

#include "topology/topology.h"

namespace cfs {

enum class RouteKind : std::uint8_t {
  None = 0,      // destination unreachable
  Self = 1,      // this AS originates the prefix
  Customer = 2,  // learned from a customer
  Peer = 3,      // learned from a settlement-free peer
  Provider = 4,  // learned from a provider
};

std::string_view route_kind_name(RouteKind kind);

// Smaller is better: Self < Customer < Peer < Provider < None.
[[nodiscard]] constexpr int route_preference(RouteKind kind) {
  switch (kind) {
    case RouteKind::Self: return 0;
    case RouteKind::Customer: return 1;
    case RouteKind::Peer: return 2;
    case RouteKind::Provider: return 3;
    case RouteKind::None: return 4;
  }
  return 4;
}

// True when a route of kind `kind` may be exported to a neighbor of the
// given relationship (relationship seen from the exporter's side:
// to_customer means the neighbor is the exporter's customer).
[[nodiscard]] constexpr bool exportable(RouteKind kind, bool to_customer) {
  if (to_customer) return kind != RouteKind::None;
  // To peers and providers only self-originated and customer routes go out.
  return kind == RouteKind::Self || kind == RouteKind::Customer;
}

}  // namespace cfs
