#include "bgp/looking_glass.h"

#include <set>

namespace cfs {

LookingGlassDirectory::LookingGlassDirectory(const Topology& topo,
                                             const Config& config) {
  Rng rng(config.seed);
  for (const auto& router : topo.routers()) {
    const auto& as = topo.as_of(router.owner);
    double p = 0.0;
    switch (as.type) {
      case AsType::Tier1: p = config.host_probability; break;
      case AsType::Transit: p = config.host_probability; break;
      case AsType::Eyeball: p = config.host_probability * 0.3; break;
      case AsType::Content: p = config.host_probability * 0.1; break;
      case AsType::Enterprise: p = 0.0; break;
    }
    if (!rng.chance(p)) continue;
    LookingGlassEntry entry;
    entry.router = router.id;
    entry.owner = router.owner;
    entry.supports_bgp = rng.chance(config.bgp_support_probability);
    entry.cooldown_s = config.cooldown_s;
    by_router_.emplace(router.id.value, entries_.size());
    entries_.push_back(entry);
  }
}

const LookingGlassEntry* LookingGlassDirectory::find(RouterId router) const {
  const auto it = by_router_.find(router.value);
  return it == by_router_.end() ? nullptr : &entries_[it->second];
}

bool LookingGlassDirectory::try_query(RouterId router, double now_s) {
  const auto* entry = find(router);
  if (entry == nullptr) return false;
  auto [it, inserted] = last_query_s_.try_emplace(router.value, -1e18);
  if (!inserted && now_s - it->second < entry->cooldown_s) return false;
  it->second = now_s;
  return true;
}

double LookingGlassDirectory::next_allowed_s(RouterId router) const {
  const auto* entry = find(router);
  if (entry == nullptr) return 1e18;
  const auto it = last_query_s_.find(router.value);
  if (it == last_query_s_.end()) return 0.0;
  return it->second + entry->cooldown_s;
}

std::size_t LookingGlassDirectory::distinct_ases() const {
  std::set<std::uint32_t> ases;
  for (const auto& e : entries_) ases.insert(e.owner.value);
  return ases.size();
}

}  // namespace cfs
