#include "bgp/relationships.h"

namespace cfs {

std::string_view route_kind_name(RouteKind kind) {
  switch (kind) {
    case RouteKind::None: return "none";
    case RouteKind::Self: return "self";
    case RouteKind::Customer: return "customer";
    case RouteKind::Peer: return "peer";
    case RouteKind::Provider: return "provider";
  }
  return "?";
}

}  // namespace cfs
