#include "bgp/routing.h"

#include <mutex>

#include <algorithm>
#include <queue>
#include <set>
#include <stdexcept>

namespace cfs {
namespace {

constexpr std::uint16_t unreachable_dist = 0xffff;
constexpr std::uint32_t no_next = 0xffffffffu;

}  // namespace

RoutingOracle::RoutingOracle(const Topology& topo) : topo_(topo) {
  const auto ases = topo.ases();
  asn_of_.reserve(ases.size());
  for (std::uint32_t i = 0; i < ases.size(); ++i) {
    index_of_.emplace(ases[i].asn.value, i);
    asn_of_.push_back(ases[i].asn);
  }

  providers_.resize(ases.size());
  customers_.resize(ases.size());
  peers_.resize(ases.size());

  // Only physically instantiated adjacencies carry routes.
  std::set<std::pair<std::uint32_t, std::uint32_t>> seen_cp;  // cust, prov
  std::set<std::pair<std::uint32_t, std::uint32_t>> seen_pp;  // low, high
  for (const auto& link : topo.links()) {
    if (link.type == LinkType::Backbone) continue;
    const std::uint32_t ia =
        index_of_.at(topo.router(link.a.router).owner.value);
    const std::uint32_t ib =
        index_of_.at(topo.router(link.b.router).owner.value);
    if (link.rel == BusinessRel::CustomerProvider) {
      if (seen_cp.emplace(ia, ib).second) {
        providers_[ia].push_back(ib);
        customers_[ib].push_back(ia);
      }
    } else if (link.rel == BusinessRel::PeerPeer) {
      const auto key = std::minmax(ia, ib);
      if (seen_pp.emplace(key.first, key.second).second) {
        peers_[ia].push_back(ib);
        peers_[ib].push_back(ia);
      }
    }
  }

  // Sort adjacency by neighbor ASN for deterministic iteration order.
  auto by_asn = [this](std::uint32_t x, std::uint32_t y) {
    return asn_of_[x] < asn_of_[y];
  };
  for (auto& v : providers_) std::sort(v.begin(), v.end(), by_asn);
  for (auto& v : customers_) std::sort(v.begin(), v.end(), by_asn);
  for (auto& v : peers_) std::sort(v.begin(), v.end(), by_asn);
}

const RoutingOracle::DestTable& RoutingOracle::table_for(
    std::uint32_t dst_index) const {
  {
    std::shared_lock lock(cache_mutex_);
    const auto it = cache_.find(dst_index);
    if (it != cache_.end()) return it->second;
  }
  // Compute outside the lock: tables are pure functions of the immutable
  // topology, so concurrent misses on the same destination produce the
  // same table and the first insert wins.
  DestTable table;
  compute(dst_index, table);
  std::unique_lock lock(cache_mutex_);
  return cache_.try_emplace(dst_index, std::move(table)).first->second;
}

void RoutingOracle::compute(std::uint32_t dst, DestTable& t) const {
  const std::size_t n = asn_of_.size();
  t.kind.assign(n, RouteKind::None);
  t.dist.assign(n, unreachable_dist);
  t.next.assign(n, no_next);

  t.kind[dst] = RouteKind::Self;
  t.dist[dst] = 0;
  t.next[dst] = dst;

  // Phase 1: customer routes climb provider edges away from the origin.
  // Plain BFS gives shortest distances; equal-distance updates keep the
  // lowest next-hop ASN because improvement on ties is explicit.
  std::vector<std::uint32_t> queue = {dst};
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const std::uint32_t x = queue[head];
    for (const std::uint32_t p : providers_[x]) {
      const std::uint16_t cand = static_cast<std::uint16_t>(t.dist[x] + 1);
      if (t.kind[p] == RouteKind::None) {
        t.kind[p] = RouteKind::Customer;
        t.dist[p] = cand;
        t.next[p] = x;
        queue.push_back(p);
      } else if (t.kind[p] == RouteKind::Customer && cand == t.dist[p] &&
                 asn_of_[x] < asn_of_[t.next[p]]) {
        t.next[p] = x;
      }
    }
  }

  // Phase 2: a single peer hop onto the customer cone (or the origin).
  for (std::uint32_t x = 0; x < n; ++x) {
    if (t.kind[x] != RouteKind::None) continue;
    std::uint16_t best = unreachable_dist;
    std::uint32_t best_next = no_next;
    for (const std::uint32_t y : peers_[x]) {
      if (t.kind[y] != RouteKind::Self && t.kind[y] != RouteKind::Customer)
        continue;
      const std::uint16_t cand = static_cast<std::uint16_t>(t.dist[y] + 1);
      if (cand < best ||
          (cand == best && asn_of_[y] < asn_of_[best_next])) {
        best = cand;
        best_next = y;
      }
    }
    if (best_next != no_next) {
      t.kind[x] = RouteKind::Peer;
      t.dist[x] = best;
      t.next[x] = best_next;
    }
  }

  // Phase 3: provider routes descend customer edges from every routed AS.
  // Multi-source Dijkstra (unit weights, heterogeneous source distances).
  using Item = std::pair<std::uint16_t, std::uint32_t>;  // (dist, index)
  std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
  for (std::uint32_t x = 0; x < n; ++x)
    if (t.kind[x] != RouteKind::None) heap.emplace(t.dist[x], x);
  while (!heap.empty()) {
    const auto [d, x] = heap.top();
    heap.pop();
    if (d != t.dist[x]) continue;  // stale entry
    for (const std::uint32_t c : customers_[x]) {
      const std::uint16_t cand = static_cast<std::uint16_t>(d + 1);
      if (t.kind[c] == RouteKind::None ||
          (t.kind[c] == RouteKind::Provider && cand < t.dist[c])) {
        t.kind[c] = RouteKind::Provider;
        t.dist[c] = cand;
        t.next[c] = x;
        heap.emplace(cand, c);
      } else if (t.kind[c] == RouteKind::Provider && cand == t.dist[c] &&
                 asn_of_[x] < asn_of_[t.next[c]]) {
        t.next[c] = x;
      }
    }
  }
}

std::vector<Asn> RoutingOracle::as_path(Asn src, Asn dst) const {
  const auto s = index_of_.find(src.value);
  const auto d = index_of_.find(dst.value);
  if (s == index_of_.end() || d == index_of_.end())
    throw std::out_of_range("RoutingOracle::as_path: unknown ASN");

  const DestTable& t = table_for(d->second);
  if (t.kind[s->second] == RouteKind::None) return {};

  std::vector<Asn> path;
  std::uint32_t cur = s->second;
  path.push_back(asn_of_[cur]);
  while (cur != d->second) {
    cur = t.next[cur];
    path.push_back(asn_of_[cur]);
    if (path.size() > asn_of_.size())
      throw std::logic_error("RoutingOracle: routing loop detected");
  }
  return path;
}

RouteKind RoutingOracle::route_kind(Asn src, Asn dst) const {
  const auto s = index_of_.find(src.value);
  const auto d = index_of_.find(dst.value);
  if (s == index_of_.end() || d == index_of_.end())
    throw std::out_of_range("RoutingOracle::route_kind: unknown ASN");
  return table_for(d->second).kind[s->second];
}

}  // namespace cfs
