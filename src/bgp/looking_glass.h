// Looking-glass directory.
//
// A looking glass is a web front-end to a production router that accepts
// non-privileged debugging commands. The directory selects which routers in
// the topology expose one, whether it supports BGP queries in addition to
// traceroute (the paper found 168 of 1877 LGs do), and enforces the probing
// etiquette the paper had to respect: a mandatory cool-down between queries
// to the same looking glass, tracked in virtual time.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "topology/topology.h"
#include "util/rng.h"

namespace cfs {

struct LookingGlassEntry {
  RouterId router;
  Asn owner;
  bool supports_bgp = false;   // can run "show ip bgp" style queries
  double cooldown_s = 60.0;    // minimum spacing between queries
};

class LookingGlassDirectory {
 public:
  struct Config {
    double host_probability = 0.25;  // transit/tier1 routers hosting an LG
    double bgp_support_probability = 0.1;
    double cooldown_s = 60.0;
    std::uint64_t seed = 1;
  };

  LookingGlassDirectory(const Topology& topo, const Config& config);

  [[nodiscard]] const std::vector<LookingGlassEntry>& entries() const {
    return entries_;
  }

  [[nodiscard]] const LookingGlassEntry* find(RouterId router) const;

  // Virtual-time rate limiting: returns true and records the query time if
  // the cool-down has elapsed; false when the caller must wait.
  bool try_query(RouterId router, double now_s);

  // Earliest virtual time the given LG may be queried again.
  [[nodiscard]] double next_allowed_s(RouterId router) const;

  // Distinct ASes hosting at least one looking glass.
  [[nodiscard]] std::size_t distinct_ases() const;

 private:
  std::vector<LookingGlassEntry> entries_;
  std::unordered_map<std::uint32_t, std::size_t> by_router_;
  std::unordered_map<std::uint32_t, double> last_query_s_;
};

}  // namespace cfs
