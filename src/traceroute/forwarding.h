// Router-level forwarding over the ground-truth topology.
//
// Combines the AS-level RoutingOracle with hot-potato intra-AS routing:
// inside an AS, traffic takes the shortest (latency) backbone path to the
// egress border router closest to where it entered, which is how real
// ISPs behave and what gives traceroute its familiar shape. The hop list
// records, for every router on the path, the *ingress* interface — the
// address traceroute replies come from — so public peerings naturally
// surface as an IXP-LAN address on the far-side router (the paper's
// (IP_A, IP_e, IP_B) signature) and private peerings as the bare
// (IP_A, IP_B) adjacency.
#pragma once

#include <optional>
#include <unordered_map>
#include <vector>

#include "bgp/routing.h"
#include "topology/topology.h"

namespace cfs {

struct RouterHop {
  RouterId router;
  Ipv4 ingress;             // address this router replies from
  LinkId via_link;          // link used to reach this router (invalid: first)
  double cumulative_ms = 0;  // one-way latency from the source router
};

class ForwardingEngine {
 public:
  ForwardingEngine(const Topology& topo, const RoutingOracle& oracle);

  // Full router path from src to the router responsible for `target`.
  // Empty when the destination AS is unreachable. The first hop is `src`
  // itself (replying with its local address).
  [[nodiscard]] std::vector<RouterHop> route(RouterId src, Ipv4 target) const;

  // Router that answers for a destination address: the owning router for
  // registered interfaces, else a deterministic "homing" router inside the
  // origin AS (per-/24 anycast-free assignment).
  [[nodiscard]] std::optional<RouterId> responsible_router(Ipv4 target) const;

  // Intra-AS shortest path (backbone links only); includes both endpoints.
  // Empty when disconnected (generator guarantees connectivity).
  [[nodiscard]] std::vector<RouterHop> intra_as_path(RouterId from,
                                                     RouterId to) const;

  // All non-backbone links instantiating the (a, b) AS adjacency.
  [[nodiscard]] const std::vector<LinkId>& links_between(Asn a, Asn b) const;

 private:
  struct Adjacency {
    RouterId peer;
    LinkId link;
    double latency;
  };

  [[nodiscard]] double intra_distance(RouterId from, RouterId to) const;

  const Topology& topo_;
  const RoutingOracle& oracle_;
  std::vector<std::vector<Adjacency>> backbone_;  // per router
  std::unordered_map<std::uint64_t, std::vector<LinkId>> inter_as_links_;
  static const std::vector<LinkId> no_links_;
};

}  // namespace cfs
