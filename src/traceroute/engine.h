// Traceroute measurement simulation.
//
// Executes an ICMP Paris-style traceroute along the ForwardingEngine path:
// per-hop RTT = 2x cumulative one-way latency + last-mile access delay +
// processing jitter; routers that filter ICMP show up as missing hops; the
// destination answers if probing reaches it. Paris flow pinning means the
// path itself is deterministic — artifacts come from loss, filtering and
// (under a FaultPlane) timeouts, the ones the paper's pipeline must survive.
#pragma once

#include <vector>

#include "net/faults.h"
#include "traceroute/forwarding.h"
#include "traceroute/platforms.h"
#include "util/rng.h"

namespace cfs {

struct Hop {
  Ipv4 address;          // meaningful only when responded
  double rtt_ms = 0.0;
  bool responded = false;
  // No reply within the timer, as opposed to a dropped probe: the fault
  // plane's injected timeouts land here, never on `responded` loss.
  bool timed_out = false;
};

struct TraceResult {
  VantagePointId vp;
  Ipv4 target;
  std::vector<Hop> hops;
  bool reached_target = false;
  std::size_t hops_timed_out = 0;  // hops silenced by timeout, not loss
};

struct EngineConfig {
  double jitter_ms = 0.25;        // std-dev of per-reply queueing noise
  double processing_ms = 0.08;    // ICMP generation cost per hop
  double probe_loss = 0.01;       // independent per-hop probe loss
  int max_ttl = 40;
};

class TracerouteEngine {
 public:
  // `faults` (optional) injects per-probe timeouts; it draws from its own
  // RNG stream, so a null or zero-intensity plane leaves traces identical.
  TracerouteEngine(const Topology& topo, const ForwardingEngine& forwarding,
                   const EngineConfig& config, std::uint64_t seed,
                   FaultPlane* faults = nullptr);

  // One traceroute from the vantage point to the target address.
  TraceResult trace(const VantagePoint& vp, Ipv4 target);

  // Batch helper.
  std::vector<TraceResult> trace_all(const VantagePoint& vp,
                                     const std::vector<Ipv4>& targets);

  // Minimum-RTT estimate to an address from a vantage point over n probes
  // (used by the remote-peering detector exactly as the paper uses repeated
  // pings at different times of day).
  double min_rtt_ms(const VantagePoint& vp, Ipv4 target, int probes);

  [[nodiscard]] std::size_t traces_executed() const { return traces_; }

 private:
  const Topology& topo_;
  const ForwardingEngine& forwarding_;
  EngineConfig config_;
  Rng rng_;
  FaultPlane* faults_ = nullptr;
  std::size_t traces_ = 0;
};

}  // namespace cfs
