// Traceroute measurement simulation.
//
// Executes an ICMP Paris-style traceroute along the ForwardingEngine path:
// per-hop RTT = 2x cumulative one-way latency + last-mile access delay +
// processing jitter; routers that filter ICMP show up as missing hops; the
// destination answers if probing reaches it. Paris flow pinning means the
// path itself is deterministic — artifacts come from loss, filtering and
// (under a FaultPlane) timeouts, the ones the paper's pipeline must survive.
#pragma once

#include <atomic>
#include <vector>

#include "net/faults.h"
#include "traceroute/forwarding.h"
#include "traceroute/platforms.h"
#include "util/rng.h"

namespace cfs {

struct Hop {
  Ipv4 address;          // meaningful only when responded
  double rtt_ms = 0.0;
  bool responded = false;
  // No reply within the timer, as opposed to a dropped probe: the fault
  // plane's injected timeouts land here, never on `responded` loss.
  bool timed_out = false;
};

struct TraceResult {
  VantagePointId vp;
  Ipv4 target;
  std::vector<Hop> hops;
  bool reached_target = false;
  std::size_t hops_timed_out = 0;  // hops silenced by timeout, not loss
};

struct EngineConfig {
  double jitter_ms = 0.25;        // std-dev of per-reply queueing noise
  double processing_ms = 0.08;    // ICMP generation cost per hop
  double probe_loss = 0.01;       // independent per-hop probe loss
  int max_ttl = 40;
};

class TracerouteEngine {
 public:
  // `faults` (optional) injects per-probe timeouts; it draws from its own
  // RNG stream, so a null or zero-intensity plane leaves traces identical.
  TracerouteEngine(const Topology& topo, const ForwardingEngine& forwarding,
                   const EngineConfig& config, std::uint64_t seed,
                   FaultPlane* faults = nullptr);

  // One traceroute from the vantage point to the target address, drawing
  // noise from the engine's sequential RNG (the historical draw order).
  TraceResult trace(const VantagePoint& vp, Ipv4 target);

  // Pure seeded variant: all noise (loss, jitter, injected timeouts) comes
  // from streams split off `stream`, never from shared state, so equal
  // (engine seed, stream) yields an identical TraceResult on any thread at
  // any time. This is what makes campaign parallelism deterministic: the
  // result is a function of the stream id, not of execution order.
  TraceResult trace_seeded(const VantagePoint& vp, Ipv4 target,
                           std::uint64_t stream) const;

  // Batch helper.
  std::vector<TraceResult> trace_all(const VantagePoint& vp,
                                     const std::vector<Ipv4>& targets);

  // Minimum-RTT estimate to an address from a vantage point over n probes
  // (used by the remote-peering detector exactly as the paper uses repeated
  // pings at different times of day).
  double min_rtt_ms(const VantagePoint& vp, Ipv4 target, int probes);

  [[nodiscard]] std::size_t traces_executed() const {
    return traces_.load(std::memory_order_relaxed);
  }

 private:
  // Shared body: `noise` supplies loss/jitter draws; `timeout_rng` (when
  // non-null) supplies injected-timeout draws, otherwise the fault plane's
  // sequential stream is used.
  TraceResult trace_impl(const VantagePoint& vp, Ipv4 target, Rng& noise,
                         Rng* timeout_rng) const;

  const Topology& topo_;
  const ForwardingEngine& forwarding_;
  EngineConfig config_;
  std::uint64_t seed_;
  Rng rng_;
  FaultPlane* faults_ = nullptr;
  mutable std::atomic<std::size_t> traces_{0};
};

}  // namespace cfs
