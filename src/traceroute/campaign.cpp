#include "traceroute/campaign.h"

#include <algorithm>

namespace cfs {

MeasurementCampaign::MeasurementCampaign(const Topology& topo,
                                         TracerouteEngine& engine,
                                         LookingGlassDirectory& lgs)
    : topo_(topo), engine_(engine), lgs_(lgs) {}

std::vector<TraceResult> MeasurementCampaign::run(
    std::span<const VantagePoint* const> vps,
    const std::vector<Ipv4>& targets) {
  std::vector<TraceResult> out;
  for (const Ipv4 target : targets) {
    bool used_parallel_batch = false;
    for (const VantagePoint* vp : vps) {
      ++attempted_;
      if (vp->platform == Platform::LookingGlass) {
        // Respect the per-LG cool-down: fast-forward the virtual clock to
        // the earliest allowed instant, as the paper's pipeline waits.
        const double ready = lgs_.next_allowed_s(vp->attach);
        clock_s_ = std::max(clock_s_, ready);
        lgs_.try_query(vp->attach, clock_s_);
        clock_s_ += single_trace_s;
      } else {
        used_parallel_batch = true;
      }
      TraceResult trace = engine_.trace(*vp, target);
      if (trace.hops.empty()) continue;
      ++kept_;
      out.push_back(std::move(trace));
    }
    if (used_parallel_batch) clock_s_ += parallel_batch_s;
  }
  return out;
}

TraceResult MeasurementCampaign::probe(const VantagePoint& vp, Ipv4 target) {
  ++attempted_;
  if (vp.platform == Platform::LookingGlass) {
    const double ready = lgs_.next_allowed_s(vp.attach);
    clock_s_ = std::max(clock_s_, ready);
    lgs_.try_query(vp.attach, clock_s_);
    clock_s_ += single_trace_s;
  } else {
    clock_s_ += single_trace_s;
  }
  TraceResult trace = engine_.trace(vp, target);
  if (!trace.hops.empty()) ++kept_;
  return trace;
}

std::vector<Ipv4> MeasurementCampaign::targets_for(const Topology& topo,
                                                   Asn asn) {
  std::vector<Ipv4> out;
  const auto& as = topo.as_of(asn);
  for (const Prefix& prefix : as.prefixes) {
    // Probe an address deep inside the block, skipping over any that happen
    // to be infrastructure interfaces.
    for (std::uint64_t probe = prefix.size() / 2;
         probe + 2 < prefix.size(); ++probe) {
      const Ipv4 cand = prefix.at(probe);
      if (topo.find_interface(cand) == nullptr) {
        out.push_back(cand);
        break;
      }
    }
  }
  return out;
}

}  // namespace cfs
