#include "traceroute/campaign.h"

#include <algorithm>
#include <cmath>

#include "util/trace.h"

namespace cfs {

namespace {

// splitmix64 finalizer, the same mixer the fault plane uses for schedules.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// Stable key for one unit of work.
std::uint64_t unit_key(VantagePointId vp, Ipv4 target) {
  return (static_cast<std::uint64_t>(vp.value) << 32) ^ target.value();
}

// Noise-stream id for the repeat-th execution of a unit. Everything a
// trace draws (loss, jitter, injected timeouts) derives from this value,
// which is why a speculated result equals a serially-computed one.
std::uint64_t unit_stream(std::uint64_t key, std::uint32_t repeat) {
  return mix64(mix64(key) ^ (static_cast<std::uint64_t>(repeat) + 0x51ab));
}

}  // namespace

MeasurementCampaign::MeasurementCampaign(const Topology& topo,
                                         TracerouteEngine& engine,
                                         LookingGlassDirectory& lgs,
                                         FaultPlane* faults)
    : topo_(topo),
      engine_(engine),
      lgs_(lgs),
      faults_(faults),
      jitter_rng_(faults != nullptr ? (faults->seed() ^ 0xbac0ffULL) : 0) {}

MetroId MeasurementCampaign::metro_of(const VantagePoint& vp) const {
  return topo_.metro_of(topo_.router(vp.attach).facility);
}

std::vector<TraceResult> MeasurementCampaign::run(
    std::span<const VantagePoint* const> vps,
    const std::vector<Ipv4>& targets) {
  TraceSpan span("campaign.run");
  span.arg("vps", vps.size());
  span.arg("targets", targets.size());
  std::vector<TraceResult> out;
  if (faults_ != nullptr) {
    by_metro_.clear();
    for (const VantagePoint* vp : vps)
      by_metro_[metro_of(*vp).value].push_back(vp);
  }
  if (pool_ != nullptr) speculate(vps, targets);
  for (const Ipv4 target : targets) {
    bool used_parallel_batch = false;
    for (const VantagePoint* vp : vps) {
      ++stats_.traces_attempted;
      Trace::counter("campaign.traces_attempted");
      run_unit(*vp, target, &used_parallel_batch, out);
    }
    if (used_parallel_batch) clock_s_ += parallel_batch_s;
  }
  speculative_.clear();
  span.arg("traces", out.size());
  stats_.wall_ms += span.stop();
  return out;
}

void MeasurementCampaign::speculate(std::span<const VantagePoint* const> vps,
                                    const std::vector<Ipv4>& targets) {
  // Predict the stream id of every unit the serial pass will execute on
  // its happy path, walking units in the same target-major order. The
  // prediction can be wrong — failovers and abandoned units shift repeat
  // counters — but never incorrect: the cache is keyed by stream id and
  // trace execution is a pure function of it, so a mispredicted unit just
  // misses and is computed serially.
  struct Unit {
    const VantagePoint* vp;
    Ipv4 target;
    std::uint64_t stream;
  };
  std::vector<Unit> units;
  units.reserve(vps.size() * targets.size());
  auto predicted = repeats_;  // local copy; real counters bump at execute()
  for (const Ipv4 target : targets) {
    for (const VantagePoint* vp : vps) {
      const std::uint64_t key = unit_key(vp->id, target);
      units.push_back({vp, target, unit_stream(key, predicted[key]++)});
    }
  }

  TraceSpan span("campaign.speculate");
  span.arg("units", units.size());
  std::vector<TraceResult> results(units.size());
  pool_->parallel_for_chunks(
      units.size(), [&](std::size_t begin, std::size_t end) {
        TraceSpan chunk("campaign.speculate_chunk");
        chunk.arg("begin", begin);
        chunk.arg("count", end - begin);
        for (std::size_t i = begin; i < end; ++i)
          results[i] = engine_.trace_seeded(*units[i].vp, units[i].target,
                                            units[i].stream);
      });

  speculative_.clear();
  speculative_.reserve(units.size());
  for (std::size_t i = 0; i < units.size(); ++i)
    speculative_.emplace(units[i].stream, std::move(results[i]));
}

TraceResult MeasurementCampaign::probe(const VantagePoint& vp, Ipv4 target) {
  ++stats_.traces_attempted;
  Trace::counter("campaign.traces_attempted");
  std::vector<TraceResult> out;
  run_unit(vp, target, nullptr, out);
  if (!out.empty()) return std::move(out.front());
  TraceResult empty;
  empty.vp = vp.id;
  empty.target = target;
  return empty;
}

MeasurementCampaign::UnitOutcome MeasurementCampaign::run_unit(
    const VantagePoint& vp, Ipv4 target, bool* batched,
    std::vector<TraceResult>& out) {
  const RetryPolicy& policy =
      faults_ != nullptr ? faults_->plan().retry : RetryPolicy{};
  const VantagePoint* active = &vp;
  bool failed_over = false;
  int attempt = 0;
  while (true) {
    switch (preflight(*active)) {
      case ProbeFault::None: {
        TraceResult trace = execute(*active, target, batched);
        if (faults_ != nullptr &&
            active->platform == Platform::LookingGlass)
          lg_success(*active);
        if (trace.hops.empty()) {
          ++stats_.traces_unreachable;
          Trace::counter("campaign.traces_unreachable");
          return UnitOutcome::Unreachable;
        }
        stats_.probe_timeouts += trace.hops_timed_out;
        if (trace.hops_timed_out > 0)
          Trace::counter("campaign.probe_timeouts", trace.hops_timed_out);
        ++stats_.traces_kept;
        Trace::counter("campaign.traces_kept");
        out.push_back(std::move(trace));
        return UnitOutcome::Kept;
      }
      case ProbeFault::CircuitOpen:
        ++stats_.probes_skipped_open_circuit;
        Trace::counter("campaign.probes_skipped_open_circuit");
        return UnitOutcome::SkippedOpenCircuit;
      case ProbeFault::VpDead: {
        // Retrying a dead probe host is pointless; go straight to failover.
        const VantagePoint* alt =
            failed_over ? nullptr : pick_failover(*active);
        if (alt == nullptr) {
          ++stats_.probes_abandoned;
          Trace::counter("campaign.probes_abandoned");
          return UnitOutcome::Abandoned;
        }
        active = alt;
        failed_over = true;
        attempt = 0;
        ++stats_.failovers;
        Trace::counter("campaign.failovers");
        break;
      }
      case ProbeFault::LgUnavailable: {
        lg_failure(*active);
        if (attempt < policy.max_retries) {
          ++attempt;
          ++stats_.retries;
          Trace::counter("campaign.retries");
          clock_s_ += backoff_s(attempt);
          break;
        }
        const VantagePoint* alt =
            failed_over ? nullptr : pick_failover(*active);
        if (alt == nullptr) {
          ++stats_.probes_abandoned;
          Trace::counter("campaign.probes_abandoned");
          return UnitOutcome::Abandoned;
        }
        active = alt;
        failed_over = true;
        attempt = 0;
        ++stats_.failovers;
        Trace::counter("campaign.failovers");
        break;
      }
    }
  }
}

MeasurementCampaign::ProbeFault MeasurementCampaign::preflight(
    const VantagePoint& vp) {
  if (faults_ == nullptr) return ProbeFault::None;
  if (vp.platform == Platform::LookingGlass) {
    const auto it = lg_health_.find(vp.attach.value);
    if (it != lg_health_.end() && it->second.open) {
      const double open_for = clock_s_ - it->second.opened_at;
      if (open_for < faults_->plan().retry.circuit_reset_s)
        return ProbeFault::CircuitOpen;
      // Half-open: admit one trial query; a single failure re-opens.
      it->second.open = false;
      it->second.consecutive_failures =
          faults_->plan().retry.circuit_threshold - 1;
    }
    if (faults_->lg_offline(vp.attach, clock_s_) ||
        faults_->lg_banned(vp.attach, clock_s_))
      return ProbeFault::LgUnavailable;
  } else if (faults_->vp_dead(vp.id, clock_s_)) {
    return ProbeFault::VpDead;
  }
  return ProbeFault::None;
}

void MeasurementCampaign::lg_failure(const VantagePoint& vp) {
  LgHealth& health = lg_health_[vp.attach.value];
  ++health.consecutive_failures;
  if (!health.open &&
      health.consecutive_failures >= faults_->plan().retry.circuit_threshold) {
    health.open = true;
    health.opened_at = clock_s_;
    ++stats_.circuits_opened;
    Trace::counter("campaign.circuits_opened");
  }
}

void MeasurementCampaign::lg_success(const VantagePoint& vp) {
  const auto it = lg_health_.find(vp.attach.value);
  if (it == lg_health_.end()) return;
  it->second.consecutive_failures = 0;
  it->second.open = false;
}

double MeasurementCampaign::backoff_s(int attempt) {
  const RetryPolicy& policy = faults_->plan().retry;
  const double base =
      policy.backoff_base_s *
      std::pow(policy.backoff_multiplier, static_cast<double>(attempt - 1));
  return base * (1.0 + policy.backoff_jitter_fraction *
                           jitter_rng_.uniform01());
}

TraceResult MeasurementCampaign::execute(const VantagePoint& vp, Ipv4 target,
                                         bool* batched) {
  if (vp.platform == Platform::LookingGlass) {
    // Respect the per-LG cool-down: fast-forward the virtual clock to
    // the earliest allowed instant, as the paper's pipeline waits.
    const double ready = lgs_.next_allowed_s(vp.attach);
    clock_s_ = std::max(clock_s_, ready);
    lgs_.try_query(vp.attach, clock_s_);
    Trace::counter("campaign.lg_queries");
    if (faults_ != nullptr) {
      faults_->record_lg_query(vp.attach, clock_s_);
      stats_.lg_bans = faults_->bans_tripped();
    }
    clock_s_ += single_trace_s;
  } else if (batched != nullptr) {
    *batched = true;
  } else {
    clock_s_ += single_trace_s;
  }
  const std::uint64_t key = unit_key(vp.id, target);
  const std::uint64_t stream = unit_stream(key, repeats_[key]++);
  const auto it = speculative_.find(stream);
  if (it != speculative_.end()) {
    TraceResult result = std::move(it->second);
    speculative_.erase(it);
    return result;
  }
  return engine_.trace_seeded(vp, target, stream);
}

const VantagePoint* MeasurementCampaign::pick_failover(
    const VantagePoint& failed) {
  const auto it = by_metro_.find(metro_of(failed).value);
  if (it == by_metro_.end()) return nullptr;
  for (const VantagePoint* cand : it->second) {
    if (cand->id.value == failed.id.value) continue;
    if (cand->attach.value == failed.attach.value) continue;
    if (preflight(*cand) == ProbeFault::None) return cand;
  }
  return nullptr;
}

std::vector<Ipv4> MeasurementCampaign::targets_for(const Topology& topo,
                                                   Asn asn) {
  std::vector<Ipv4> out;
  const auto& as = topo.as_of(asn);
  for (const Prefix& prefix : as.prefixes) {
    // Probe an address deep inside the block, skipping over any that happen
    // to be infrastructure interfaces.
    for (std::uint64_t probe = prefix.size() / 2;
         probe + 2 < prefix.size(); ++probe) {
      const Ipv4 cand = prefix.at(probe);
      if (topo.find_interface(cand) == nullptr) {
        out.push_back(cand);
        break;
      }
    }
  }
  return out;
}

}  // namespace cfs
