#include "traceroute/engine.h"

#include <algorithm>

namespace cfs {

TracerouteEngine::TracerouteEngine(const Topology& topo,
                                   const ForwardingEngine& forwarding,
                                   const EngineConfig& config,
                                   std::uint64_t seed, FaultPlane* faults)
    : topo_(topo),
      forwarding_(forwarding),
      config_(config),
      seed_(seed),
      rng_(seed),
      faults_(faults) {}

TraceResult TracerouteEngine::trace(const VantagePoint& vp, Ipv4 target) {
  return trace_impl(vp, target, rng_, nullptr);
}

TraceResult TracerouteEngine::trace_seeded(const VantagePoint& vp, Ipv4 target,
                                           std::uint64_t stream) const {
  Rng noise = Rng(seed_).fork(stream);
  if (faults_ != nullptr && faults_->plan().probe_timeout_rate > 0.0) {
    Rng timeouts = faults_->timeout_stream(stream);
    return trace_impl(vp, target, noise, &timeouts);
  }
  return trace_impl(vp, target, noise, nullptr);
}

TraceResult TracerouteEngine::trace_impl(const VantagePoint& vp, Ipv4 target,
                                         Rng& noise, Rng* timeout_rng) const {
  traces_.fetch_add(1, std::memory_order_relaxed);
  // Injected-timeout draw; guarded on faults_ so a plane-less engine never
  // consumes from either stream.
  const auto times_out = [&]() {
    if (faults_ == nullptr) return false;
    return timeout_rng != nullptr ? faults_->probe_times_out(*timeout_rng)
                                  : faults_->probe_times_out();
  };

  TraceResult result;
  result.vp = vp.id;
  result.target = target;

  const auto path = forwarding_.route(vp.attach, target);
  if (path.empty()) return result;

  int ttl = 0;
  for (const RouterHop& hop : path) {
    if (++ttl > config_.max_ttl) return result;
    const Router& router = topo_.router(hop.router);
    Hop out;
    const bool lost = noise.chance(config_.probe_loss);
    if (router.responds_to_traceroute && !lost) {
      // The reply would have arrived; an injected timeout silences it in a
      // way the pipeline can tell apart from loss.
      if (times_out()) {
        out.timed_out = true;
        ++result.hops_timed_out;
      } else {
        out.responded = true;
        out.address = hop.ingress;
        out.rtt_ms = 2.0 * (vp.access_ms + hop.cumulative_ms) +
                     config_.processing_ms +
                     std::max(0.0, noise.normal(0.0, config_.jitter_ms));
      }
    }
    result.hops.push_back(out);
  }

  // Destination host reply. When the target is a router interface the final
  // router hop already answered with the right address; otherwise the end
  // host itself responds one hop further.
  const Interface* iface = topo_.find_interface(target);
  if (iface == nullptr || iface->role == InterfaceRole::Host) {
    if (++ttl <= config_.max_ttl && !noise.chance(config_.probe_loss)) {
      if (times_out()) {
        Hop out;
        out.timed_out = true;
        result.hops.push_back(out);
        ++result.hops_timed_out;
      } else {
        Hop out;
        out.responded = true;
        out.address = target;
        out.rtt_ms = 2.0 * (vp.access_ms + path.back().cumulative_ms + 0.1) +
                     config_.processing_ms +
                     std::max(0.0, noise.normal(0.0, config_.jitter_ms));
        result.hops.push_back(out);
        result.reached_target = true;
      }
    }
  } else {
    // Rewrite the final hop to the probed interface address: the
    // destination answers an ICMP echo from the probed address itself.
    // The echo is its own probe, so it gets its own timeout draw.
    if (!result.hops.empty()) {
      Hop& back = result.hops.back();
      if (times_out()) {
        if (!back.timed_out) ++result.hops_timed_out;
        back.timed_out = true;
        back.responded = false;
      } else {
        if (back.timed_out) --result.hops_timed_out;
        back.timed_out = false;
        back.address = target;
        back.responded = true;
        if (back.rtt_ms == 0.0)
          back.rtt_ms = 2.0 * (vp.access_ms + path.back().cumulative_ms) +
                        config_.processing_ms;
        result.reached_target = true;
      }
    }
  }
  return result;
}

std::vector<TraceResult> TracerouteEngine::trace_all(
    const VantagePoint& vp, const std::vector<Ipv4>& targets) {
  std::vector<TraceResult> out;
  out.reserve(targets.size());
  for (const Ipv4 target : targets) out.push_back(trace(vp, target));
  return out;
}

double TracerouteEngine::min_rtt_ms(const VantagePoint& vp, Ipv4 target,
                                    int probes) {
  const auto path = forwarding_.route(vp.attach, target);
  if (path.empty()) return -1.0;
  double best = 1e18;
  for (int i = 0; i < probes; ++i) {
    const double rtt = 2.0 * (vp.access_ms + path.back().cumulative_ms) +
                       config_.processing_ms +
                       std::max(0.0, rng_.normal(0.0, config_.jitter_ms));
    best = std::min(best, rtt);
  }
  return best;
}

}  // namespace cfs
