#include "traceroute/engine.h"

#include <algorithm>

namespace cfs {

TracerouteEngine::TracerouteEngine(const Topology& topo,
                                   const ForwardingEngine& forwarding,
                                   const EngineConfig& config,
                                   std::uint64_t seed, FaultPlane* faults)
    : topo_(topo),
      forwarding_(forwarding),
      config_(config),
      rng_(seed),
      faults_(faults) {}

TraceResult TracerouteEngine::trace(const VantagePoint& vp, Ipv4 target) {
  ++traces_;
  TraceResult result;
  result.vp = vp.id;
  result.target = target;

  const auto path = forwarding_.route(vp.attach, target);
  if (path.empty()) return result;

  int ttl = 0;
  for (const RouterHop& hop : path) {
    if (++ttl > config_.max_ttl) return result;
    const Router& router = topo_.router(hop.router);
    Hop out;
    const bool lost = rng_.chance(config_.probe_loss);
    if (router.responds_to_traceroute && !lost) {
      // The reply would have arrived; an injected timeout silences it in a
      // way the pipeline can tell apart from loss.
      if (faults_ != nullptr && faults_->probe_times_out()) {
        out.timed_out = true;
        ++result.hops_timed_out;
      } else {
        out.responded = true;
        out.address = hop.ingress;
        out.rtt_ms = 2.0 * (vp.access_ms + hop.cumulative_ms) +
                     config_.processing_ms +
                     std::max(0.0, rng_.normal(0.0, config_.jitter_ms));
      }
    }
    result.hops.push_back(out);
  }

  // Destination host reply. When the target is a router interface the final
  // router hop already answered with the right address; otherwise the end
  // host itself responds one hop further.
  const Interface* iface = topo_.find_interface(target);
  if (iface == nullptr || iface->role == InterfaceRole::Host) {
    if (++ttl <= config_.max_ttl && !rng_.chance(config_.probe_loss)) {
      if (faults_ != nullptr && faults_->probe_times_out()) {
        Hop out;
        out.timed_out = true;
        result.hops.push_back(out);
        ++result.hops_timed_out;
      } else {
        Hop out;
        out.responded = true;
        out.address = target;
        out.rtt_ms = 2.0 * (vp.access_ms + path.back().cumulative_ms + 0.1) +
                     config_.processing_ms +
                     std::max(0.0, rng_.normal(0.0, config_.jitter_ms));
        result.hops.push_back(out);
        result.reached_target = true;
      }
    }
  } else {
    // Rewrite the final hop to the probed interface address: the
    // destination answers an ICMP echo from the probed address itself.
    // The echo is its own probe, so it gets its own timeout draw.
    if (!result.hops.empty()) {
      Hop& back = result.hops.back();
      if (faults_ != nullptr && faults_->probe_times_out()) {
        if (!back.timed_out) ++result.hops_timed_out;
        back.timed_out = true;
        back.responded = false;
      } else {
        if (back.timed_out) --result.hops_timed_out;
        back.timed_out = false;
        back.address = target;
        back.responded = true;
        if (back.rtt_ms == 0.0)
          back.rtt_ms = 2.0 * (vp.access_ms + path.back().cumulative_ms) +
                        config_.processing_ms;
        result.reached_target = true;
      }
    }
  }
  return result;
}

std::vector<TraceResult> TracerouteEngine::trace_all(
    const VantagePoint& vp, const std::vector<Ipv4>& targets) {
  std::vector<TraceResult> out;
  out.reserve(targets.size());
  for (const Ipv4 target : targets) out.push_back(trace(vp, target));
  return out;
}

double TracerouteEngine::min_rtt_ms(const VantagePoint& vp, Ipv4 target,
                                    int probes) {
  const auto path = forwarding_.route(vp.attach, target);
  if (path.empty()) return -1.0;
  double best = 1e18;
  for (int i = 0; i < probes; ++i) {
    const double rtt = 2.0 * (vp.access_ms + path.back().cumulative_ms) +
                       config_.processing_ms +
                       std::max(0.0, rng_.normal(0.0, config_.jitter_ms));
    best = std::min(best, rtt);
  }
  return best;
}

}  // namespace cfs
