#include "traceroute/forwarding.h"

#include <algorithm>
#include <limits>
#include <queue>

namespace cfs {
namespace {

std::uint64_t pair_key(Asn a, Asn b) {
  return (std::uint64_t{a.value} << 32) | b.value;
}

}  // namespace

const std::vector<LinkId> ForwardingEngine::no_links_;

ForwardingEngine::ForwardingEngine(const Topology& topo,
                                   const RoutingOracle& oracle)
    : topo_(topo), oracle_(oracle) {
  backbone_.resize(topo.routers().size());
  for (const auto& link : topo.links()) {
    if (link.type == LinkType::Backbone) {
      backbone_[link.a.router.value].push_back(
          Adjacency{link.b.router, link.id, link.latency_ms});
      backbone_[link.b.router.value].push_back(
          Adjacency{link.a.router, link.id, link.latency_ms});
    } else {
      const Asn a = topo.router(link.a.router).owner;
      const Asn b = topo.router(link.b.router).owner;
      inter_as_links_[pair_key(a, b)].push_back(link.id);
      inter_as_links_[pair_key(b, a)].push_back(link.id);
    }
  }
}

std::optional<RouterId> ForwardingEngine::responsible_router(
    Ipv4 target) const {
  if (const Interface* iface = topo_.find_interface(target))
    return iface->router;
  const auto origin = topo_.origin_of(target);
  if (!origin) return std::nullopt;
  const auto routers = topo_.routers_of(*origin);
  if (routers.empty()) return std::nullopt;
  // Deterministic per-/24 homing inside the origin AS.
  const std::uint32_t slice = (target.value() >> 8) % routers.size();
  return routers[slice];
}

std::vector<RouterHop> ForwardingEngine::intra_as_path(RouterId from,
                                                       RouterId to) const {
  std::vector<RouterHop> path;
  if (from == to) {
    path.push_back(
        RouterHop{from, topo_.router(from).local_address, LinkId::invalid(), 0});
    return path;
  }

  // Dijkstra over backbone links (per-AS subgraphs are small).
  constexpr double inf = std::numeric_limits<double>::infinity();
  std::unordered_map<std::uint32_t, double> dist;
  std::unordered_map<std::uint32_t, std::pair<RouterId, LinkId>> prev;
  using Item = std::pair<double, std::uint32_t>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
  dist[from.value] = 0.0;
  heap.emplace(0.0, from.value);
  while (!heap.empty()) {
    const auto [d, cur] = heap.top();
    heap.pop();
    if (d > dist[cur]) continue;
    if (cur == to.value) break;
    for (const Adjacency& adj : backbone_[cur]) {
      const double cand = d + adj.latency;
      const auto it = dist.find(adj.peer.value);
      if (it == dist.end() || cand < it->second) {
        dist[adj.peer.value] = cand;
        prev[adj.peer.value] = {RouterId(cur), adj.link};
        heap.emplace(cand, adj.peer.value);
      }
    }
  }

  if (!dist.contains(to.value) ||
      dist[to.value] == inf)  // disconnected backbone
    return {};

  // Reconstruct, then convert into hops with ingress addresses.
  std::vector<std::pair<RouterId, LinkId>> chain;  // (router, link entered by)
  RouterId cur = to;
  while (cur != from) {
    const auto& [parent, link] = prev.at(cur.value);
    chain.emplace_back(cur, link);
    cur = parent;
  }
  std::reverse(chain.begin(), chain.end());

  path.push_back(
      RouterHop{from, topo_.router(from).local_address, LinkId::invalid(), 0});
  double acc = 0.0;
  for (const auto& [router, link_id] : chain) {
    const Link& link = topo_.link(link_id);
    acc += link.latency_ms;
    const Ipv4 ingress =
        link.a.router == router ? link.a.address : link.b.address;
    path.push_back(RouterHop{router, ingress, link_id, acc});
  }
  return path;
}

double ForwardingEngine::intra_distance(RouterId from, RouterId to) const {
  const auto path = intra_as_path(from, to);
  if (path.empty()) return std::numeric_limits<double>::infinity();
  return path.back().cumulative_ms;
}

const std::vector<LinkId>& ForwardingEngine::links_between(Asn a,
                                                           Asn b) const {
  const auto it = inter_as_links_.find(pair_key(a, b));
  return it == inter_as_links_.end() ? no_links_ : it->second;
}

std::vector<RouterHop> ForwardingEngine::route(RouterId src,
                                               Ipv4 target) const {
  const auto dst_router = responsible_router(target);
  if (!dst_router) return {};
  const Asn src_as = topo_.router(src).owner;
  const Asn dst_as = topo_.router(*dst_router).owner;

  const auto as_path = oracle_.as_path(src_as, dst_as);
  if (as_path.empty()) return {};

  std::vector<RouterHop> full;
  RouterId current = src;
  double clock = 0.0;

  auto append_intra = [&](RouterId to) -> bool {
    const auto seg = intra_as_path(current, to);
    if (seg.empty()) return false;
    for (std::size_t i = 0; i < seg.size(); ++i) {
      if (!full.empty() && i == 0) continue;  // avoid duplicating junction
      RouterHop hop = seg[i];
      hop.cumulative_ms += clock;
      full.push_back(hop);
    }
    clock = full.empty() ? clock : full.back().cumulative_ms;
    current = to;
    return true;
  };

  // Walk the AS path, crossing one inter-AS link per adjacency.
  for (std::size_t i = 0; i + 1 < as_path.size(); ++i) {
    const Asn here = as_path[i];
    const Asn next = as_path[i + 1];
    const auto& candidates = links_between(here, next);
    if (candidates.empty()) return {};

    // Hot potato: pick the link whose near-side router is cheapest to reach
    // from the current position; ties by link id for determinism.
    LinkId best_link = LinkId::invalid();
    RouterId best_near, best_far;
    Ipv4 best_far_addr;
    double best_cost = std::numeric_limits<double>::infinity();
    for (const LinkId lid : candidates) {
      const Link& link = topo_.link(lid);
      const bool a_side = topo_.router(link.a.router).owner == here;
      const RouterId near = a_side ? link.a.router : link.b.router;
      const RouterId far = a_side ? link.b.router : link.a.router;
      const Ipv4 far_addr = a_side ? link.b.address : link.a.address;
      const double cost = intra_distance(current, near);
      if (cost < best_cost) {
        best_cost = cost;
        best_link = lid;
        best_near = near;
        best_far = far;
        best_far_addr = far_addr;
      }
    }
    if (!best_link.valid() ||
        best_cost == std::numeric_limits<double>::infinity())
      return {};

    if (!append_intra(best_near)) return {};
    if (full.empty())  // src == best_near and nothing appended yet
      full.push_back(RouterHop{best_near,
                               topo_.router(best_near).local_address,
                               LinkId::invalid(), clock});

    const Link& link = topo_.link(best_link);
    clock += link.latency_ms;
    full.push_back(RouterHop{best_far, best_far_addr, best_link, clock});
    current = best_far;
  }

  // Final intra-AS stretch to the responsible router.
  if (full.empty())
    full.push_back(RouterHop{current, topo_.router(current).local_address,
                             LinkId::invalid(), 0.0});
  if (current != *dst_router && !append_intra(*dst_router)) return {};

  return full;
}

}  // namespace cfs
