// Measurement-campaign orchestration.
//
// Runs traceroute batches across vantage points while respecting the
// operational etiquette described in the paper (Section 3.2): looking
// glasses enforce a 60 s cool-down per query, while an Atlas-style
// campaign to a single target completes in ~5 minutes of wall time. The
// campaign tracks virtual elapsed time so experiments can report the cost
// of their probing the way the paper does.
//
// Under a FaultPlane the campaign also has to *survive* the measurement
// substrate failing: a probe that hits an offline or rate-limit-banned
// looking glass is retried with exponential backoff + jitter; consecutive
// failures open a per-LG circuit breaker (half-open after a reset window);
// work whose vantage point is unavailable fails over once to another VP in
// the same metro; what cannot be salvaged is abandoned and *accounted*,
// never silently dropped:
//   attempted == kept + unreachable + abandoned + skipped-by-open-circuit.
// Without a plane every fault path is dead code and behaviour is
// byte-identical to the pre-fault-plane campaign.
//
// Parallelism (docs/PARALLELISM.md): every executed trace draws all of its
// noise from a stream id hash(vp, target, repeat#), so its result is a pure
// function of that id. With a thread pool attached, run() first *speculates*
// — computes the traces the serial pass will want, in parallel, into a
// stream-keyed cache — then performs the exact same serial pass as ever
// (clock, cool-downs, circuit breakers, accounting), which consumes cache
// hits instead of recomputing. Because the cache is keyed by stream id and
// trace execution is pure, output is byte-identical at every thread count;
// with no pool the serial pass simply computes each trace on demand.
#pragma once

#include <span>
#include <unordered_map>
#include <vector>

#include "bgp/looking_glass.h"
#include "net/faults.h"
#include "traceroute/engine.h"
#include "util/thread_pool.h"

namespace cfs {

class MeasurementCampaign {
 public:
  MeasurementCampaign(const Topology& topo, TracerouteEngine& engine,
                      LookingGlassDirectory& lgs,
                      FaultPlane* faults = nullptr);

  // Attach a worker pool: run() speculatively executes traces in parallel
  // before its serial pass. Null (the default) disables speculation; the
  // serial pass then computes every trace itself — same results either way.
  void set_pool(ThreadPool* pool) { pool_ = pool; }
  [[nodiscard]] ThreadPool* pool() const { return pool_; }

  // Traceroutes from every given vantage point to every target. Looking
  // glass vantage points are serialised per cool-down; others run in
  // parallel batches. Unreachable traces (empty hop list) are dropped but
  // counted. With a fault plane, the given span doubles as the failover
  // pool (grouped by metro).
  std::vector<TraceResult> run(std::span<const VantagePoint* const> vps,
                               const std::vector<Ipv4>& targets);

  // Single measurement convenience (advances the clock minimally). A probe
  // the fault plane kills returns an empty trace; there is no failover
  // pool on this path.
  TraceResult probe(const VantagePoint& vp, Ipv4 target);

  [[nodiscard]] double virtual_elapsed_s() const { return clock_s_; }
  [[nodiscard]] std::size_t traces_attempted() const {
    return stats_.traces_attempted;
  }
  [[nodiscard]] std::size_t traces_kept() const { return stats_.traces_kept; }
  // Full measurement-plane attrition accounting (see net/faults.h).
  [[nodiscard]] const FaultMetrics& fault_stats() const { return stats_; }

  // One probe-able destination address inside every announced prefix of the
  // AS — the paper's "one active IP per prefix" target list.
  static std::vector<Ipv4> targets_for(const Topology& topo, Asn asn);

 private:
  // Per-LG circuit breaker, keyed by the hosting router.
  struct LgHealth {
    int consecutive_failures = 0;
    bool open = false;
    double opened_at = 0.0;
  };
  enum class ProbeFault { None, LgUnavailable, VpDead, CircuitOpen };
  enum class UnitOutcome { Kept, Unreachable, Abandoned, SkippedOpenCircuit };

  // One unit of work (vp, target) end to end: preflight, retries with
  // backoff, at most one failover, trace execution, accounting. Exactly
  // one outcome counter is bumped per call. `batched` is the run() batch
  // flag; null on the probe() path (clock advances per trace instead).
  UnitOutcome run_unit(const VantagePoint& vp, Ipv4 target, bool* batched,
                       std::vector<TraceResult>& out);

  [[nodiscard]] ProbeFault preflight(const VantagePoint& vp);
  void lg_failure(const VantagePoint& vp);
  void lg_success(const VantagePoint& vp);
  [[nodiscard]] double backoff_s(int attempt);
  // Clock bookkeeping + the actual traceroute (the pre-fault hot path).
  TraceResult execute(const VantagePoint& vp, Ipv4 target, bool* batched);
  [[nodiscard]] const VantagePoint* pick_failover(const VantagePoint& failed);
  [[nodiscard]] MetroId metro_of(const VantagePoint& vp) const;
  // Parallel pre-computation of the traces the serial pass will consume.
  void speculate(std::span<const VantagePoint* const> vps,
                 const std::vector<Ipv4>& targets);

  const Topology& topo_;
  TracerouteEngine& engine_;
  LookingGlassDirectory& lgs_;
  FaultPlane* faults_ = nullptr;
  double clock_s_ = 0.0;
  FaultMetrics stats_;
  std::unordered_map<std::uint32_t, LgHealth> lg_health_;
  // Failover pool for the current run(): metro -> usable vantage points.
  std::unordered_map<std::uint32_t, std::vector<const VantagePoint*>>
      by_metro_;
  Rng jitter_rng_;  // drawn only on fault paths

  ThreadPool* pool_ = nullptr;
  // Per-(vp, target) execution counter; the repeat number makes each
  // execution of the same unit a distinct noise stream, replayed in the
  // same order by serial and speculative passes alike.
  std::unordered_map<std::uint64_t, std::uint32_t> repeats_;
  // Speculated results, keyed by stream id. Entries are consumed (erased)
  // on hit; a prediction the serial pass never asks for is simply dropped.
  std::unordered_map<std::uint64_t, TraceResult> speculative_;

  static constexpr double parallel_batch_s = 300.0;  // Atlas full campaign
  static constexpr double single_trace_s = 30.0;
};

}  // namespace cfs
