// Measurement-campaign orchestration.
//
// Runs traceroute batches across vantage points while respecting the
// operational etiquette described in the paper (Section 3.2): looking
// glasses enforce a 60 s cool-down per query, while an Atlas-style
// campaign to a single target completes in ~5 minutes of wall time. The
// campaign tracks virtual elapsed time so experiments can report the cost
// of their probing the way the paper does.
#pragma once

#include <span>
#include <vector>

#include "bgp/looking_glass.h"
#include "traceroute/engine.h"

namespace cfs {

class MeasurementCampaign {
 public:
  MeasurementCampaign(const Topology& topo, TracerouteEngine& engine,
                      LookingGlassDirectory& lgs);

  // Traceroutes from every given vantage point to every target. Looking
  // glass vantage points are serialised per cool-down; others run in
  // parallel batches. Unreachable traces (empty hop list) are dropped.
  std::vector<TraceResult> run(std::span<const VantagePoint* const> vps,
                               const std::vector<Ipv4>& targets);

  // Single measurement convenience (advances the clock minimally).
  TraceResult probe(const VantagePoint& vp, Ipv4 target);

  [[nodiscard]] double virtual_elapsed_s() const { return clock_s_; }
  [[nodiscard]] std::size_t traces_attempted() const { return attempted_; }
  [[nodiscard]] std::size_t traces_kept() const { return kept_; }

  // One probe-able destination address inside every announced prefix of the
  // AS — the paper's "one active IP per prefix" target list.
  static std::vector<Ipv4> targets_for(const Topology& topo, Asn asn);

 private:
  const Topology& topo_;
  TracerouteEngine& engine_;
  LookingGlassDirectory& lgs_;
  double clock_s_ = 0.0;
  std::size_t attempted_ = 0;
  std::size_t kept_ = 0;

  static constexpr double parallel_batch_s = 300.0;  // Atlas full campaign
  static constexpr double single_trace_s = 30.0;
};

}  // namespace cfs
