#include "traceroute/platforms.h"

#include <set>
#include <stdexcept>

namespace cfs {
namespace {

// Allocates an unused host address near the top of the AS's first block.
Ipv4 allocate_host_address(const Topology& topo, const AutonomousSystem& as,
                           std::uint64_t& cursor) {
  const Prefix& block = as.prefixes.front();
  while (cursor + 2 < block.size()) {
    const Ipv4 cand = block.at(block.size() - 2 - cursor);
    ++cursor;
    if (topo.find_interface(cand) == nullptr) return cand;
  }
  throw std::logic_error("no free host address in " + as.name);
}

}  // namespace

std::string_view platform_name(Platform platform) {
  switch (platform) {
    case Platform::RipeAtlas: return "RIPE Atlas";
    case Platform::LookingGlass: return "LGs";
    case Platform::IPlane: return "iPlane";
    case Platform::Ark: return "Ark";
  }
  return "?";
}

VantagePointSet::VantagePointSet(Topology& topo,
                                 const LookingGlassDirectory& lgs,
                                 const PlatformConfig& config) {
  Rng rng(config.seed);
  std::unordered_map<std::uint32_t, std::uint64_t> cursors;  // per ASN

  auto add_host = [&](Platform platform, const AutonomousSystem& as,
                      RouterId attach, double access_ms) {
    auto& cursor = cursors[as.asn.value];
    const Ipv4 addr = allocate_host_address(topo, as, cursor);
    VantagePoint vp;
    vp.id = VantagePointId(static_cast<std::uint32_t>(vps_.size()));
    vp.platform = platform;
    vp.attach = attach;
    vp.asn = as.asn;
    vp.address = addr;
    vp.access_ms = access_ms;
    topo.add_interface(
        Interface{addr, attach, LinkId::invalid(), InterfaceRole::Host});
    vps_.push_back(vp);
  };

  // --- RIPE Atlas: eyeball-hosted, Europe-biased, last-mile latency ---
  {
    std::vector<const AutonomousSystem*> hosts;
    std::vector<double> weights;
    for (const auto& as : topo.ases()) {
      if (as.type != AsType::Eyeball && as.type != AsType::Enterprise)
        continue;
      if (as.facilities.empty()) continue;
      const Region region =
          topo.metro(topo.metro_of(as.facilities.front())).region;
      const double w =
          region == Region::Europe ? config.atlas_europe_bias : 1.0;
      hosts.push_back(&as);
      weights.push_back(w * (as.type == AsType::Eyeball ? 3.0 : 1.0));
    }
    for (int i = 0; i < config.atlas_target && !hosts.empty(); ++i) {
      const auto& as = *hosts[rng.weighted_index(weights)];
      const auto routers = topo.routers_of(as.asn);
      add_host(Platform::RipeAtlas, as, routers[rng.index(routers.size())],
               rng.uniform_real(2.0, 20.0));
    }
  }

  // --- Looking glasses: the LG routers themselves ---
  for (const auto& entry : lgs.entries()) {
    const auto& as = topo.as_of(entry.owner);
    add_host(Platform::LookingGlass, as, entry.router, 0.05);
  }

  // --- iPlane: enterprise/academic hosts, worldwide ---
  {
    std::vector<const AutonomousSystem*> hosts;
    for (const auto& as : topo.ases())
      if (as.type == AsType::Enterprise && !as.facilities.empty())
        hosts.push_back(&as);
    for (int i = 0; i < config.iplane_target && !hosts.empty(); ++i) {
      const auto& as = *hosts[rng.index(hosts.size())];
      const auto routers = topo.routers_of(as.asn);
      add_host(Platform::IPlane, as, routers[rng.index(routers.size())],
               rng.uniform_real(0.5, 3.0));
    }
  }

  // --- Ark: few monitors, spread across regions/AS types ---
  {
    std::vector<const AutonomousSystem*> hosts;
    for (const auto& as : topo.ases())
      if ((as.type == AsType::Eyeball || as.type == AsType::Transit ||
           as.type == AsType::Enterprise) &&
          !as.facilities.empty())
        hosts.push_back(&as);
    for (int i = 0; i < config.ark_target && !hosts.empty(); ++i) {
      const auto& as = *hosts[rng.index(hosts.size())];
      const auto routers = topo.routers_of(as.asn);
      add_host(Platform::Ark, as, routers[rng.index(routers.size())],
               rng.uniform_real(0.5, 5.0));
    }
  }
}

std::vector<const VantagePoint*> VantagePointSet::of(Platform platform) const {
  std::vector<const VantagePoint*> out;
  for (const auto& vp : vps_)
    if (vp.platform == platform) out.push_back(&vp);
  return out;
}

const VantagePoint& VantagePointSet::vp(VantagePointId id) const {
  if (id.value >= vps_.size())
    throw std::out_of_range("VantagePointSet::vp: bad id");
  return vps_[id.value];
}

VantagePointSet::PlatformStats VantagePointSet::stats(
    Platform platform, const Topology& topo) const {
  PlatformStats out;
  std::set<std::uint32_t> asns;
  std::set<std::string> countries;
  for (const auto& vp : vps_) {
    if (vp.platform != platform) continue;
    ++out.vantage_points;
    asns.insert(vp.asn.value);
    countries.insert(
        topo.metro(topo.metro_of(topo.router(vp.attach).facility)).country);
  }
  out.distinct_asns = asns.size();
  out.distinct_countries = countries.size();
  return out;
}

VantagePointSet::PlatformStats VantagePointSet::totals(
    const Topology& topo) const {
  PlatformStats out;
  std::set<std::uint32_t> asns;
  std::set<std::string> countries;
  for (const auto& vp : vps_) {
    ++out.vantage_points;
    asns.insert(vp.asn.value);
    countries.insert(
        topo.metro(topo.metro_of(topo.router(vp.attach).facility)).country);
  }
  out.distinct_asns = asns.size();
  out.distinct_countries = countries.size();
  return out;
}

}  // namespace cfs
