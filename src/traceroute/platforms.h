// Measurement platforms: RIPE-Atlas-, looking-glass-, iPlane- and Ark-like
// vantage point sets (paper Table 1).
//
// Each vantage point is an end host attached to a router in the topology.
// Platform profiles reproduce the biases the paper discusses: Atlas probes
// sit in eyeball networks with a strong European skew and noticeable
// last-mile latency; looking glasses *are* transit routers (zero access
// delay, many in IXP members); iPlane nodes live in enterprise/academic
// networks; Ark monitors are few but well spread.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "bgp/looking_glass.h"
#include "topology/topology.h"
#include "util/rng.h"

namespace cfs {

enum class Platform { RipeAtlas, LookingGlass, IPlane, Ark };
std::string_view platform_name(Platform platform);
inline constexpr int platform_count = 4;

struct VantagePoint {
  VantagePointId id;
  Platform platform = Platform::RipeAtlas;
  RouterId attach;            // router the host sits behind
  Asn asn;                    // hosting AS
  Ipv4 address;               // host address (in the hosting AS space)
  double access_ms = 0.0;     // host-to-first-router one-way latency
};

struct PlatformConfig {
  int atlas_target = 800;   // requested probe counts (feasibility-capped)
  int iplane_target = 60;
  int ark_target = 30;
  double atlas_europe_bias = 2.5;  // relative weight for European hosts
  std::uint64_t seed = 3;
};

class VantagePointSet {
 public:
  // Builds hosts for all four platforms; LG vantage points are taken from
  // the directory (one per looking glass).
  VantagePointSet(Topology& topo, const LookingGlassDirectory& lgs,
                  const PlatformConfig& config);

  [[nodiscard]] std::span<const VantagePoint> all() const { return vps_; }
  [[nodiscard]] std::vector<const VantagePoint*> of(Platform platform) const;
  [[nodiscard]] const VantagePoint& vp(VantagePointId id) const;

  struct PlatformStats {
    std::size_t vantage_points = 0;
    std::size_t distinct_asns = 0;
    std::size_t distinct_countries = 0;
  };
  [[nodiscard]] PlatformStats stats(Platform platform,
                                    const Topology& topo) const;
  [[nodiscard]] PlatformStats totals(const Topology& topo) const;

 private:
  std::vector<VantagePoint> vps_;
};

}  // namespace cfs
