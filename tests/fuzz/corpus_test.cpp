// Regression corpus replay: every scenario committed under corpus/ runs
// the full oracle set and must pass. A corpus entry is a shrunk repro of
// a bug that once existed (or a hand-picked stressor); replaying them on
// every run keeps fixed bugs fixed (docs/TESTING.md documents how entries
// get added).
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "fuzz/oracles.h"
#include "fuzz/scenario.h"

#ifndef CFS_CORPUS_DIR
#error "CFS_CORPUS_DIR must point at the committed corpus/ directory"
#endif

namespace cfs {
namespace {

std::vector<std::filesystem::path> corpus_files() {
  std::vector<std::filesystem::path> files;
  for (const auto& entry :
       std::filesystem::directory_iterator(CFS_CORPUS_DIR))
    if (entry.path().extension() == ".json") files.push_back(entry.path());
  std::sort(files.begin(), files.end());
  return files;
}

Scenario load_scenario(const std::filesystem::path& path) {
  std::ifstream file(path);
  std::ostringstream buffer;
  buffer << file.rdbuf();
  const JsonValue doc = parse_json(buffer.str());
  // Entries may be bare scenarios or full repro documents.
  const JsonValue* scenario = doc.find("scenario");
  return Scenario::from_json(scenario != nullptr ? *scenario : doc);
}

TEST(FuzzCorpus, DirectoryIsNonEmpty) {
  EXPECT_GE(corpus_files().size(), 1u)
      << "corpus/ must hold at least one committed scenario";
}

TEST(FuzzCorpus, EveryScenarioPassesAllOracles) {
  const std::vector<Oracle>& oracles = all_oracles();
  for (const auto& path : corpus_files()) {
    const Scenario scenario = load_scenario(path);
    SCOPED_TRACE(path.filename().string() + ": " + scenario.summary());
    const auto failure = run_oracles(scenario, oracles);
    EXPECT_FALSE(failure.has_value())
        << "[" << failure->oracle << "] " << failure->message;
  }
}

TEST(FuzzCorpus, EveryScenarioRoundTripsThroughJson) {
  // The committed files must stay loadable and loss-free: a corpus entry
  // that changes meaning when re-serialised silently tests the wrong bug.
  for (const auto& path : corpus_files()) {
    SCOPED_TRACE(path.filename().string());
    const Scenario scenario = load_scenario(path);
    const Scenario back = Scenario::from_json(scenario.to_json());
    EXPECT_EQ(scenario.to_json().pretty(), back.to_json().pretty());
  }
}

}  // namespace
}  // namespace cfs
