// Regression corpus replay: every scenario committed under corpus/ runs
// the full oracle set and must pass. A corpus entry is a shrunk repro of
// a bug that once existed (or a hand-picked stressor); replaying them on
// every run keeps fixed bugs fixed (docs/TESTING.md documents how entries
// get added).
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "fuzz/oracles.h"
#include "fuzz/scenario.h"
#include "util/strings.h"

#ifndef CFS_CORPUS_DIR
#error "CFS_CORPUS_DIR must point at the committed corpus/ directory"
#endif

namespace cfs {
namespace {

std::vector<std::filesystem::path> corpus_files() {
  std::vector<std::filesystem::path> files;
  for (const auto& entry :
       std::filesystem::directory_iterator(CFS_CORPUS_DIR))
    if (entry.path().extension() == ".json") files.push_back(entry.path());
  std::sort(files.begin(), files.end());
  return files;
}

Scenario load_scenario(const std::filesystem::path& path) {
  std::ifstream file(path);
  std::ostringstream buffer;
  buffer << file.rdbuf();
  const JsonValue doc = parse_json(buffer.str());
  // Entries may be bare scenarios or full repro documents.
  const JsonValue* scenario = doc.find("scenario");
  return Scenario::from_json(scenario != nullptr ? *scenario : doc);
}

TEST(FuzzCorpus, DirectoryIsNonEmpty) {
  EXPECT_GE(corpus_files().size(), 1u)
      << "corpus/ must hold at least one committed scenario";
}

TEST(FuzzCorpus, EveryScenarioPassesAllOracles) {
  const std::vector<Oracle>& oracles = all_oracles();
  for (const auto& path : corpus_files()) {
    const Scenario scenario = load_scenario(path);
    SCOPED_TRACE(path.filename().string() + ": " + scenario.summary());
    const auto failure = run_oracles(scenario, oracles);
    EXPECT_FALSE(failure.has_value())
        << "[" << failure->oracle << "] " << failure->message;
  }
}

TEST(FuzzCorpus, StampedGoldensReplayByteIdentical) {
  // Scenarios stamped with `cfs_fuzz --stamp-golden` pin the exact bytes
  // of the canonical export (equivalence form). The layout_equivalence
  // oracle already checks the fnv1a64 hash; this test additionally
  // byte-compares against the committed corpus/goldens/ report so a
  // drift names the divergent content, not just a hash mismatch. At
  // least one committed scenario must be stamped — the refactor oracle
  // is worthless if the corpus silently loses its goldens.
  std::size_t stamped = 0;
  for (const auto& path : corpus_files()) {
    const Scenario scenario = load_scenario(path);
    if (scenario.expected_export_fnv1a.empty()) continue;
    ++stamped;
    SCOPED_TRACE(path.filename().string() + ": " + scenario.summary());

    const CfsReport report = run_reference_arm(scenario);
    const std::string bytes = equivalence_json(report).pretty();
    EXPECT_EQ(hex64(fnv1a64(bytes)), scenario.expected_export_fnv1a)
        << "canonical export drifted from the stamped golden";

    const std::filesystem::path golden =
        std::filesystem::path(CFS_CORPUS_DIR) / "goldens" /
        (path.stem().string() + ".report.json");
    ASSERT_TRUE(std::filesystem::exists(golden))
        << golden << " missing: re-run cfs_fuzz --stamp-golden "
        << path.string();
    std::ifstream file(golden);
    std::ostringstream buffer;
    buffer << file.rdbuf();
    EXPECT_EQ(buffer.str(), bytes + "\n")
        << "committed golden report no longer matches the engine output";
  }
  EXPECT_GE(stamped, 1u) << "no corpus scenario carries a stamped golden";
}

TEST(FuzzCorpus, EveryScenarioRoundTripsThroughJson) {
  // The committed files must stay loadable and loss-free: a corpus entry
  // that changes meaning when re-serialised silently tests the wrong bug.
  for (const auto& path : corpus_files()) {
    SCOPED_TRACE(path.filename().string());
    const Scenario scenario = load_scenario(path);
    const Scenario back = Scenario::from_json(scenario.to_json());
    EXPECT_EQ(scenario.to_json().pretty(), back.to_json().pretty());
  }
}

}  // namespace
}  // namespace cfs
