// Scenario model: sampling determinism, floor adherence and JSON
// round-trip — the properties the corpus workflow leans on.
#include <gtest/gtest.h>

#include "fuzz/oracles.h"
#include "fuzz/scenario.h"

namespace cfs {
namespace {

TEST(Scenario, SamplingIsDeterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 20; ++i) {
    const Scenario one = sample_scenario(a);
    const Scenario two = sample_scenario(b);
    EXPECT_EQ(one.to_json().pretty(), two.to_json().pretty());
  }
}

TEST(Scenario, SamplesRespectFloors) {
  Rng rng(7);
  using F = ScenarioFloors;
  for (int i = 0; i < 200; ++i) {
    const Scenario s = sample_scenario(rng);
    EXPECT_GE(s.metros, F::metros);
    EXPECT_GE(s.facility_density, F::facility_density);
    EXPECT_GE(s.tier1, F::tier1);
    EXPECT_GE(s.transit, F::transit);
    EXPECT_GE(s.content, F::content);
    EXPECT_GE(s.eyeball, F::eyeball);
    EXPECT_GE(s.enterprise, F::enterprise);
    EXPECT_GE(s.max_ixp_span, F::max_ixp_span);
    EXPECT_GE(s.content_targets, F::content_targets);
    EXPECT_GE(s.transit_targets, F::transit_targets);
    EXPECT_GE(s.vp_fraction, F::vp_fraction);
    EXPECT_GE(s.max_iterations, F::max_iterations);
    EXPECT_GE(s.followup_interfaces, F::followup_interfaces);
    EXPECT_GE(s.threads, F::threads);
    // Seeds must survive a trip through JSON doubles (53-bit mantissa).
    EXPECT_LT(s.seed, std::uint64_t{1} << 53);
    EXPECT_LT(s.fault_seed, std::uint64_t{1} << 53);
  }
}

TEST(Scenario, JsonRoundTripIsLossless) {
  Rng rng(11);
  for (int i = 0; i < 50; ++i) {
    const Scenario s = sample_scenario(rng);
    const Scenario back = Scenario::from_json(s.to_json());
    EXPECT_EQ(s.to_json().pretty(), back.to_json().pretty());
  }
}

TEST(Scenario, FromJsonKeepsDefaultsForAbsentKeys) {
  // Hand-written corpus entries may be sparse; absent knobs mean "default".
  const Scenario s = Scenario::from_json(parse_json(R"({"seed": 5})"));
  const Scenario defaults;
  EXPECT_EQ(s.seed, 5u);
  EXPECT_EQ(s.metros, defaults.metros);
  EXPECT_EQ(s.threads, defaults.threads);
  EXPECT_FALSE(s.any_faults());
}

TEST(Scenario, GoldenHashRoundTripsAndStaysOptional) {
  Scenario s;
  s.seed = 7;
  // Unstamped: the key must not appear, so minimal corpus entries stay
  // minimal and absent-key loading keeps the empty default.
  EXPECT_EQ(s.to_json().find("expected_export_fnv1a"), nullptr);
  EXPECT_TRUE(Scenario::from_json(s.to_json()).expected_export_fnv1a.empty());

  s.expected_export_fnv1a = "00ff00ff00ff00ff";
  const Scenario back = Scenario::from_json(s.to_json());
  EXPECT_EQ(back.expected_export_fnv1a, "00ff00ff00ff00ff");
  EXPECT_EQ(s.to_json().pretty(), back.to_json().pretty());
}

TEST(Oracles, SelectionByName) {
  EXPECT_EQ(oracles_by_name("all").size(), all_oracles().size());
  EXPECT_EQ(oracles_by_name("").size(), all_oracles().size());
  const auto subset = oracles_by_name("parallel,roundtrip");
  ASSERT_EQ(subset.size(), 2u);
  EXPECT_EQ(subset[0].name, "parallel");
  EXPECT_EQ(subset[1].name, "roundtrip");
  EXPECT_THROW((void)oracles_by_name("nonsense"), std::invalid_argument);
}

TEST(Oracles, RunOraclesReportsSyntheticFailure) {
  const std::vector<Oracle> oracles = {
      {"ok", "", [](const Scenario&) { return std::nullopt; }},
      {"bad", "",
       [](const Scenario&) -> std::optional<OracleFailure> {
         return OracleFailure{"bad", "nope"};
       }}};
  const auto failure = run_oracles(Scenario{}, oracles);
  ASSERT_TRUE(failure.has_value());
  EXPECT_EQ(failure->oracle, "bad");
}

}  // namespace
}  // namespace cfs
