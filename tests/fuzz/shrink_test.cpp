// Shrinker convergence: with a synthetic always-failing oracle the greedy
// schedule must drive every dimension to its floor and stop at a genuine
// local minimum (no scheduled reduction applies). With a threshold oracle
// it must preserve exactly the knob the failure depends on and strip all
// the incidental ones — that is the whole point of shrinking.
#include <gtest/gtest.h>

#include "fuzz/shrink.h"

namespace cfs {
namespace {

Scenario maxed_scenario() {
  Scenario s;
  s.seed = 99;
  s.metros = 8;
  s.facility_density = 0.9;
  s.tier1 = 3;
  s.transit = 10;
  s.content = 6;
  s.eyeball = 24;
  s.enterprise = 12;
  s.max_ixp_span = 8;
  s.content_targets = 4;
  s.transit_targets = 4;
  s.vp_fraction = 0.9;
  s.max_iterations = 8;
  s.followup_interfaces = 32;
  s.threads = 8;
  s.lg_outage = 0.5;
  s.vp_churn = 0.3;
  s.probe_timeout = 0.2;
  s.lg_ban_burst = 4;
  s.pdb_withheld = 0.3;
  s.dns_withheld = 0.2;
  s.geoip_withheld = 0.2;
  s.fault_seed = 777;
  return s;
}

Oracle always_failing() {
  return Oracle{"synthetic", "fails on every scenario",
                [](const Scenario&) -> std::optional<OracleFailure> {
                  return OracleFailure{"synthetic", "always fails"};
                }};
}

TEST(Shrink, AlwaysFailingOracleConvergesToFloors) {
  const ShrinkResult result =
      shrink_scenario(maxed_scenario(), always_failing());

  EXPECT_TRUE(result.at_fixpoint);
  EXPECT_GT(result.accepted, 0u);
  EXPECT_GE(result.attempts, result.accepted);

  const Scenario& m = result.minimal;
  using F = ScenarioFloors;
  EXPECT_EQ(m.metros, F::metros);
  EXPECT_DOUBLE_EQ(m.facility_density, F::facility_density);
  EXPECT_EQ(m.tier1, F::tier1);
  EXPECT_EQ(m.transit, F::transit);
  EXPECT_EQ(m.content, F::content);
  EXPECT_EQ(m.eyeball, F::eyeball);
  EXPECT_EQ(m.enterprise, F::enterprise);
  EXPECT_EQ(m.max_ixp_span, F::max_ixp_span);
  EXPECT_EQ(m.content_targets, F::content_targets);
  EXPECT_EQ(m.transit_targets, F::transit_targets);
  EXPECT_DOUBLE_EQ(m.vp_fraction, F::vp_fraction);
  EXPECT_EQ(m.max_iterations, F::max_iterations);
  EXPECT_EQ(m.followup_interfaces, F::followup_interfaces);
  EXPECT_EQ(m.threads, F::threads);
  EXPECT_DOUBLE_EQ(m.lg_outage, 0.0);
  EXPECT_DOUBLE_EQ(m.vp_churn, 0.0);
  EXPECT_DOUBLE_EQ(m.probe_timeout, 0.0);
  EXPECT_EQ(m.lg_ban_burst, 0);
  EXPECT_DOUBLE_EQ(m.pdb_withheld, 0.0);
  EXPECT_DOUBLE_EQ(m.dns_withheld, 0.0);
  EXPECT_DOUBLE_EQ(m.geoip_withheld, 0.0);
  EXPECT_EQ(m.fault_seed, 0u);
  // The seed itself is never shrunk: it names the repro.
  EXPECT_EQ(m.seed, 99u);
}

// Minimality, stated via the schedule itself: at a fixpoint every
// scheduled step is a no-op on the minimal scenario (all floors reached —
// with an always-failing oracle any applicable step would be accepted).
TEST(Shrink, FixpointMeansNoScheduledStepApplies) {
  const ShrinkResult result =
      shrink_scenario(maxed_scenario(), always_failing());
  ASSERT_TRUE(result.at_fixpoint);
  for (const auto& [name, step] : shrink_steps()) {
    Scenario candidate = result.minimal;
    EXPECT_FALSE(step(candidate)) << "step '" << name
                                  << "' still applies at the fixpoint";
  }
}

TEST(Shrink, MutationClearsStampedGolden) {
  // Any accepted reduction invalidates a stamped export golden: the hash
  // was taken over the *original* scenario's report bytes. The shrinker
  // must drop it so layout_equivalence judges shrink candidates on their
  // own behaviour, not against a golden that no longer applies.
  Scenario failing = maxed_scenario();
  failing.expected_export_fnv1a = "deadbeefdeadbeef";
  const ShrinkResult result = shrink_scenario(failing, always_failing());
  ASSERT_GT(result.accepted, 0u);
  EXPECT_TRUE(result.minimal.expected_export_fnv1a.empty());
}

TEST(Shrink, ThresholdOraclePreservesTheLoadBearingKnob) {
  // Fails iff lg_outage stays above 0.25: the shrinker must keep that knob
  // above the threshold while zeroing every other fault and flooring every
  // scale knob.
  const Oracle threshold{
      "synthetic", "fails while lg_outage > 0.25",
      [](const Scenario& s) -> std::optional<OracleFailure> {
        if (s.lg_outage > 0.25)
          return OracleFailure{"synthetic", "outage too high"};
        return std::nullopt;
      }};

  const ShrinkResult result = shrink_scenario(maxed_scenario(), threshold);
  ASSERT_TRUE(result.at_fixpoint);

  const Scenario& m = result.minimal;
  EXPECT_GT(m.lg_outage, 0.25);
  // Halving from 0.5 toward 0 lands just above the threshold.
  EXPECT_LE(m.lg_outage, 0.5);
  EXPECT_DOUBLE_EQ(m.vp_churn, 0.0);
  EXPECT_DOUBLE_EQ(m.probe_timeout, 0.0);
  EXPECT_EQ(m.lg_ban_burst, 0);
  EXPECT_DOUBLE_EQ(m.pdb_withheld, 0.0);
  EXPECT_EQ(m.metros, ScenarioFloors::metros);
  EXPECT_EQ(m.eyeball, ScenarioFloors::eyeball);
  EXPECT_EQ(m.threads, ScenarioFloors::threads);
}

TEST(Shrink, BudgetExpiryReturnsStillFailingScenario) {
  // Zero-attempt budget: the shrinker must give up immediately but the
  // returned scenario is the (unshrunk) failing input, never a passing one.
  ShrinkOptions options;
  options.budget_sec = 1e-9;
  const ShrinkResult result =
      shrink_scenario(maxed_scenario(), always_failing(), options);
  EXPECT_FALSE(result.at_fixpoint);
  EXPECT_EQ(result.accepted, 0u);
  EXPECT_EQ(result.minimal.eyeball, maxed_scenario().eyeball);
}

TEST(Shrink, OracleExceptionsCountAsFailures) {
  // A crash is a failure worth shrinking, not an abort of the shrink.
  const Oracle thrower{"synthetic", "throws on every scenario",
                       [](const Scenario&) -> std::optional<OracleFailure> {
                         throw std::runtime_error("boom");
                       }};
  const ShrinkResult result =
      shrink_scenario(maxed_scenario(), thrower);
  EXPECT_TRUE(result.at_fixpoint);
  EXPECT_EQ(result.minimal.metros, ScenarioFloors::metros);
}

}  // namespace
}  // namespace cfs
