#include "alias/ally.h"

#include <gtest/gtest.h>

#include "support/mini_net.h"

namespace cfs {
namespace {

using testing::MiniNet;

struct AllyFixture {
  MiniNet net;
  Asn a;

  AllyFixture() { a = net.add_as(1000, AsType::Transit, {1, 2, 4}); }

  Ipv4 local(int fac_index) const {
    return net.topo.router(net.router(a, fac_index)).local_address;
  }
};

TEST(Ally, AcceptsSameRouterInterfaces) {
  AllyFixture fx;
  const auto& ifaces =
      fx.net.topo.router(fx.net.router(fx.a, 1)).interfaces;
  ASSERT_GE(ifaces.size(), 2u);
  AllyResolver ally(fx.net.topo, 3);
  EXPECT_EQ(ally.test_pair(ifaces[0], ifaces[1]), AllyVerdict::Alias);
  EXPECT_EQ(ally.probes_sent(), 9u);  // 3 trials x 3 probes
}

TEST(Ally, RejectsDistinctRouters) {
  AllyFixture fx;
  AllyResolver ally(fx.net.topo, 3);
  EXPECT_EQ(ally.test_pair(fx.local(1), fx.local(2)), AllyVerdict::NotAlias);
}

TEST(Ally, UnresponsiveRouterDetected) {
  AllyFixture fx;
  fx.net.topo.mutable_router(fx.net.router(fx.a, 1)).ipid =
      IpIdBehaviour::Unresponsive;
  AllyResolver ally(fx.net.topo, 3);
  EXPECT_EQ(ally.test_pair(fx.local(1), fx.local(2)),
            AllyVerdict::Unresponsive);
}

TEST(Ally, RandomIpIdMostlyRejected) {
  AllyFixture fx;
  fx.net.topo.mutable_router(fx.net.router(fx.a, 1)).ipid =
      IpIdBehaviour::Random;
  AllyResolver ally(fx.net.topo, 3);
  // Random counters sail through only with vanishing probability.
  EXPECT_NE(ally.test_pair(fx.local(1), fx.local(1)), AllyVerdict::Alias);
}

TEST(Ally, SelfPairIsAlias) {
  AllyFixture fx;
  AllyResolver ally(fx.net.topo, 3);
  EXPECT_EQ(ally.test_pair(fx.local(1), fx.local(1)), AllyVerdict::Alias);
}

TEST(Ally, VerdictNames) {
  EXPECT_EQ(ally_verdict_name(AllyVerdict::Alias), "alias");
  EXPECT_EQ(ally_verdict_name(AllyVerdict::NotAlias), "not-alias");
  EXPECT_EQ(ally_verdict_name(AllyVerdict::Unresponsive), "unresponsive");
}

}  // namespace
}  // namespace cfs
