#include "alias/midar.h"

#include <gtest/gtest.h>

#include "support/mini_net.h"
#include "topology/generator.h"

namespace cfs {
namespace {

using testing::MiniNet;

// Fixture: one AS with three routers (facilities 1, 2, 4), each with a
// local address plus backbone interfaces; all routers default to
// SharedCounter behaviour.
struct AliasFixture {
  MiniNet net;
  Asn a;

  AliasFixture() { a = net.add_as(1000, AsType::Transit, {1, 2, 4}); }

  std::vector<Ipv4> interfaces_of(RouterId router) const {
    return net.topo.router(router).interfaces;
  }
};

TEST(IpIdModel, SharedCounterIsMonotonic) {
  AliasFixture fx;
  IpIdModel model(fx.net.topo, 1);
  const RouterId r = fx.net.router(fx.a, 1);
  const Ipv4 addr = fx.net.topo.router(r).local_address;
  std::uint16_t prev = *model.probe(addr, 0.0);
  double unwrapped = 0;
  for (int i = 1; i < 50; ++i) {
    const std::uint16_t cur = *model.probe(addr, 0.1 * i);
    unwrapped += static_cast<std::uint16_t>(cur - prev);
    prev = cur;
  }
  const double v = model.velocity(r);
  EXPECT_NEAR(unwrapped / (0.1 * 49), v, v * 0.1 + 20);
}

TEST(IpIdModel, AllInterfacesShareTheCounter) {
  AliasFixture fx;
  IpIdModel model(fx.net.topo, 1);
  const RouterId r = fx.net.router(fx.a, 1);
  const auto ifaces = fx.interfaces_of(r);
  ASSERT_GE(ifaces.size(), 2u);
  const auto v0 = model.probe(ifaces[0], 5.0);
  const auto v1 = model.probe(ifaces[1], 5.0);
  ASSERT_TRUE(v0 && v1);
  EXPECT_EQ(*v0, *v1);
}

TEST(IpIdModel, BehaviourVariants) {
  AliasFixture fx;
  const RouterId r = fx.net.router(fx.a, 1);
  const Ipv4 addr = fx.net.topo.router(r).local_address;

  fx.net.topo.mutable_router(r).ipid = IpIdBehaviour::Unresponsive;
  IpIdModel unresponsive(fx.net.topo, 1);
  EXPECT_FALSE(unresponsive.probe(addr, 0.0).has_value());

  fx.net.topo.mutable_router(r).ipid = IpIdBehaviour::Zero;
  IpIdModel zero(fx.net.topo, 1);
  EXPECT_EQ(*zero.probe(addr, 0.0), 0);
  EXPECT_EQ(*zero.probe(addr, 9.0), 0);

  fx.net.topo.mutable_router(r).ipid = IpIdBehaviour::Random;
  IpIdModel random_model(fx.net.topo, 1);
  std::set<std::uint16_t> values;
  for (int i = 0; i < 20; ++i) values.insert(*random_model.probe(addr, 0.1 * i));
  EXPECT_GT(values.size(), 10u);
}

TEST(IpIdModel, UnknownAddressUnanswered) {
  AliasFixture fx;
  IpIdModel model(fx.net.topo, 1);
  EXPECT_FALSE(model.probe(*Ipv4::parse("9.9.9.9"), 0.0).has_value());
}

TEST(Prober, CollectsInterleavedSeries) {
  AliasFixture fx;
  IpIdModel model(fx.net.topo, 1);
  AliasProber prober(model, ProberConfig{});
  const RouterId r1 = fx.net.router(fx.a, 1);
  const RouterId r2 = fx.net.router(fx.a, 2);
  const std::vector<Ipv4> targets = {
      fx.net.topo.router(r1).local_address,
      fx.net.topo.router(r2).local_address,
  };
  const auto series = prober.collect(targets, 0.0);
  ASSERT_EQ(series.size(), 2u);
  for (const auto& [addr, samples] : series) {
    EXPECT_EQ(samples.size(), 12u);
    for (std::size_t i = 1; i < samples.size(); ++i)
      EXPECT_GT(samples[i].t_s, samples[i - 1].t_s);
  }
  EXPECT_EQ(prober.probes_sent(), 24u);
}

TEST(Prober, VelocityEstimateMatchesGroundTruth) {
  AliasFixture fx;
  IpIdModel model(fx.net.topo, 1);
  AliasProber prober(model, ProberConfig{.samples_per_target = 30,
                                         .probe_interval_s = 0.05});
  const RouterId r = fx.net.router(fx.a, 1);
  const Ipv4 addr = fx.net.topo.router(r).local_address;
  const auto series = prober.collect({addr}, 0.0);
  const double est = estimate_velocity(series.at(addr));
  EXPECT_NEAR(est, model.velocity(r), model.velocity(r) * 0.1 + 25);
}

TEST(Prober, ConstantSeriesDetected) {
  IpIdSeries series;
  for (int i = 0; i < 5; ++i) series.push_back({0.1 * i, 42});
  EXPECT_TRUE(is_constant(series));
  EXPECT_LT(estimate_velocity(series), 0.0);
  series.push_back({1.0, 43});
  EXPECT_FALSE(is_constant(series));
}

TEST(Mbt, AcceptsSharedCounterPair) {
  AliasFixture fx;
  IpIdModel model(fx.net.topo, 1);
  AliasProber prober(model, ProberConfig{});
  const auto ifaces = fx.interfaces_of(fx.net.router(fx.a, 1));
  ASSERT_GE(ifaces.size(), 2u);
  const auto series = prober.collect({ifaces[0], ifaces[1]}, 0.0);
  EXPECT_TRUE(monotonic_bounds_test(series.at(ifaces[0]),
                                    series.at(ifaces[1])));
}

TEST(Mbt, RejectsDistinctRouters) {
  AliasFixture fx;
  IpIdModel model(fx.net.topo, 1);
  AliasProber prober(model, ProberConfig{});
  const Ipv4 a1 = fx.net.topo.router(fx.net.router(fx.a, 1)).local_address;
  const Ipv4 a2 = fx.net.topo.router(fx.net.router(fx.a, 2)).local_address;
  const auto series = prober.collect({a1, a2}, 0.0);
  EXPECT_FALSE(monotonic_bounds_test(series.at(a1), series.at(a2)));
}

TEST(Mbt, VelocitySieve) {
  EXPECT_TRUE(velocities_compatible(100.0, 110.0));
  EXPECT_FALSE(velocities_compatible(100.0, 200.0));
  EXPECT_FALSE(velocities_compatible(-1.0, 100.0));
  EXPECT_FALSE(velocities_compatible(100.0, 1e6));
}

TEST(UnionFindTest, BasicMerging) {
  UnionFind uf(5);
  EXPECT_NE(uf.find(0), uf.find(1));
  uf.unite(0, 1);
  uf.unite(1, 2);
  EXPECT_EQ(uf.find(0), uf.find(2));
  EXPECT_NE(uf.find(0), uf.find(3));
  uf.unite(3, 4);
  uf.unite(0, 4);
  for (int i = 1; i < 5; ++i) EXPECT_EQ(uf.find(0), uf.find(i));
}

TEST(Resolver, GroupsInterfacesByRouterWithoutFalsePositives) {
  AliasFixture fx;
  // Collect every interface of the three routers.
  std::vector<Ipv4> targets;
  std::unordered_map<Ipv4, RouterId> truth;
  for (const auto& router : fx.net.topo.routers()) {
    for (const Ipv4 addr : router.interfaces) {
      targets.push_back(addr);
      truth.emplace(addr, router.id);
    }
  }

  AliasResolver resolver(fx.net.topo, 7);
  const AliasSets sets = resolver.resolve(targets);

  // No false positives: every inferred set maps to exactly one router.
  for (const auto& set : sets.sets) {
    ASSERT_FALSE(set.empty());
    const RouterId expected = truth.at(set.front());
    for (const Ipv4 addr : set) EXPECT_EQ(truth.at(addr), expected);
  }
  // Completeness: shared-counter routers fully merged.
  for (const auto& router : fx.net.topo.routers()) {
    if (router.ipid != IpIdBehaviour::SharedCounter) continue;
    std::set<int> set_ids;
    for (const Ipv4 addr : router.interfaces)
      set_ids.insert(sets.set_of(addr));
    EXPECT_EQ(set_ids.size(), 1u) << "router split across sets";
  }
}

TEST(Resolver, NonSharedCountersEndUpUnresolved) {
  AliasFixture fx;
  const RouterId r1 = fx.net.router(fx.a, 1);
  const RouterId r2 = fx.net.router(fx.a, 2);
  fx.net.topo.mutable_router(r1).ipid = IpIdBehaviour::Random;
  fx.net.topo.mutable_router(r2).ipid = IpIdBehaviour::Zero;

  std::vector<Ipv4> targets = {
      fx.net.topo.router(r1).local_address,
      fx.net.topo.router(r2).local_address,
  };
  AliasResolver resolver(fx.net.topo, 7);
  const AliasSets sets = resolver.resolve(targets);
  EXPECT_EQ(sets.unresolved.size(), 2u);
  EXPECT_TRUE(sets.sets.empty());
}

TEST(Resolver, DuplicateTargetsDeduplicated) {
  AliasFixture fx;
  const Ipv4 addr =
      fx.net.topo.router(fx.net.router(fx.a, 1)).local_address;
  AliasResolver resolver(fx.net.topo, 7);
  const AliasSets sets = resolver.resolve({addr, addr, addr});
  std::size_t occurrences = 0;
  for (const auto& set : sets.sets)
    occurrences += std::count(set.begin(), set.end(), addr);
  EXPECT_EQ(occurrences, 1u);
}

// Property test at generated scale: zero false positives is the MIDAR
// design contract and the thing CFS Step 3 depends on.
TEST(ResolverProperty, NoFalsePositivesOnGeneratedTopology) {
  const Topology topo = generate_topology(GeneratorConfig::tiny());
  std::vector<Ipv4> targets;
  std::unordered_map<Ipv4, RouterId> truth;
  for (const auto& router : topo.routers())
    for (const Ipv4 addr : router.interfaces) {
      targets.push_back(addr);
      truth.emplace(addr, router.id);
    }

  AliasResolver resolver(topo, 13);
  const AliasSets sets = resolver.resolve(targets);
  std::size_t merged_pairs = 0;
  for (const auto& set : sets.sets) {
    const RouterId expected = truth.at(set.front());
    for (const Ipv4 addr : set) ASSERT_EQ(truth.at(addr), expected);
    merged_pairs += set.size() - 1;
  }
  EXPECT_GT(merged_pairs, 0u);  // it actually aliases something
}

}  // namespace
}  // namespace cfs
