#include "support/mini_net.h"

#include <stdexcept>

namespace cfs::testing {
namespace {

constexpr std::uint32_t as_base = 20u << 24;

std::uint64_t rkey(Asn asn, FacilityId fac) {
  return (std::uint64_t{asn.value} << 32) | fac.value;
}

}  // namespace

MiniNet::MiniNet() {
  m0 = topo.add_metro(
      Metro{{}, "Frankfurt", "DE", Region::Europe, {50.11, 8.68}});
  m1 = topo.add_metro(Metro{{}, "London", "GB", Region::Europe, {51.51, -0.13}});
  const OperatorId op = topo.add_operator(FacilityOperator{{}, "MiniColo", true});

  auto add_fac = [&](MetroId metro, const char* name, double dlat) {
    const GeoPoint base = topo.metro(metro).location;
    return topo.add_facility(Facility{{},
                                      name,
                                      op,
                                      metro,
                                      {base.lat_deg + dlat, base.lon_deg},
                                      topo.metro(metro).name});
  };
  fac.push_back(add_fac(m0, "FRA-0", 0.00));
  fac.push_back(add_fac(m0, "FRA-1", 0.01));
  fac.push_back(add_fac(m0, "FRA-2", 0.02));
  fac.push_back(add_fac(m0, "FRA-3", 0.03));
  fac.push_back(add_fac(m1, "LON-0", 0.00));
  fac.push_back(add_fac(m1, "LON-1", 0.01));

  Ixp ixp;
  ixp.name = "FRA-IX";
  ixp.metro = m0;
  ixp.peering_lan = Prefix(*Ipv4::parse("185.0.0.0"), 22);
  ixp.switches = {
      {IxpSwitch::Kind::Core, fac[0], 0},
      {IxpSwitch::Kind::Backhaul, fac[1], 0},
      {IxpSwitch::Kind::Access, fac[1], 1},
      {IxpSwitch::Kind::Access, fac[2], 1},
      {IxpSwitch::Kind::Access, fac[3], 0},
  };
  ix = topo.add_ixp(std::move(ixp));
}

Asn MiniNet::add_as(std::uint32_t asn_value, AsType type,
                    const std::vector<int>& at) {
  const Asn asn(asn_value);
  const Prefix block(Ipv4(as_base + (next_block_++ << 16)), 16);
  block_.emplace(asn_value, block);
  cursor_.emplace(asn_value, 1);

  AutonomousSystem as;
  as.asn = asn;
  as.name = "AS" + std::to_string(asn_value);
  as.type = type;
  as.prefixes = {block};
  for (const int i : at) as.facilities.push_back(fac.at(static_cast<std::size_t>(i)));
  std::sort(as.facilities.begin(), as.facilities.end());
  as.facilities.erase(
      std::unique(as.facilities.begin(), as.facilities.end()),
      as.facilities.end());
  as.dns_zone = "as" + std::to_string(asn_value) + ".example.net";
  topo.add_as(as);
  topo.announce(block, asn);

  RouterId prev = RouterId::invalid();
  for (const FacilityId f : topo.as_of(asn).facilities) {
    Router r;
    r.owner = asn;
    r.facility = f;
    r.local_address = take_address(asn);
    const RouterId id = topo.add_router(r);
    topo.add_interface(
        Interface{r.local_address, id, LinkId::invalid(), InterfaceRole::Local});
    router_at_.emplace(rkey(asn, f), id);

    if (prev.valid()) {
      const Prefix ptp = take_ptp(asn);
      Link link;
      link.type = LinkType::Backbone;
      link.rel = BusinessRel::Intra;
      link.a = LinkEnd{prev, ptp.at(1)};
      link.b = LinkEnd{id, ptp.at(2)};
      const auto& fa = topo.facility(topo.router(prev).facility);
      const auto& fb = topo.facility(f);
      link.latency_ms = propagation_delay_ms(fa.location, fb.location) + 0.05;
      const LinkId lid = topo.add_link(link);
      topo.add_interface(
          Interface{ptp.at(1), prev, lid, InterfaceRole::Backbone});
      topo.add_interface(Interface{ptp.at(2), id, lid, InterfaceRole::Backbone});
    }
    prev = id;
  }
  return asn;
}

RouterId MiniNet::router(Asn asn, int fac_index) const {
  const auto it = router_at_.find(rkey(asn, fac.at(static_cast<std::size_t>(fac_index))));
  if (it == router_at_.end())
    throw std::out_of_range("MiniNet::router: AS has no router there");
  return it->second;
}

Prefix MiniNet::take_ptp(Asn asn) {
  auto& cur = cursor_.at(asn.value);
  cur = (cur + 3) & ~std::uint64_t{3};
  const Prefix ptp(block_.at(asn.value).at(cur), 30);
  cur += 4;
  return ptp;
}

Ipv4 MiniNet::take_address(Asn asn) {
  auto& cur = cursor_.at(asn.value);
  return block_.at(asn.value).at(cur++);
}

void MiniNet::register_rel(Asn a, Asn b, BusinessRel rel) {
  if (rel == BusinessRel::CustomerProvider)
    topo.add_relationship(a, b);
  else if (rel == BusinessRel::PeerPeer && !topo.is_peer_of(a, b))
    topo.add_peering(a, b);
}

LinkId MiniNet::xconnect(Asn a, Asn b, int fac_index, BusinessRel rel,
                         bool number_from_b) {
  const RouterId ra = router(a, fac_index);
  const RouterId rb = router(b, fac_index);
  const Prefix ptp = take_ptp(number_from_b ? b : a);

  Link link;
  link.type = LinkType::PrivateCrossConnect;
  link.rel = rel;
  link.a = LinkEnd{ra, ptp.at(1)};
  link.b = LinkEnd{rb, ptp.at(2)};
  link.facility = fac.at(static_cast<std::size_t>(fac_index));
  link.latency_ms = 0.05;
  const LinkId id = topo.add_link(link);
  topo.add_interface(Interface{ptp.at(1), ra, id, InterfaceRole::PrivatePtp});
  topo.add_interface(Interface{ptp.at(2), rb, id, InterfaceRole::PrivatePtp});
  register_rel(a, b, rel);
  return id;
}

void MiniNet::join_ixp(Asn asn, int fac_index) {
  Ixp& ixp = topo.mutable_ixp(ix);
  const auto sw = ixp.access_switch_at(fac.at(static_cast<std::size_t>(fac_index)));
  if (!sw) throw std::invalid_argument("no access switch at that facility");
  IxpPort port;
  port.member = asn;
  port.router = router(asn, fac_index);
  port.lan_address = ixp.peering_lan.at(1 + ixp.ports.size());
  port.access_switch = *sw;
  ixp.ports.push_back(port);
  topo.add_interface(Interface{port.lan_address, port.router,
                               LinkId::invalid(), InterfaceRole::IxpLan});
  auto& as = topo.mutable_as(asn);
  if (std::find(as.ixps.begin(), as.ixps.end(), ix) == as.ixps.end())
    as.ixps.push_back(ix);
}

void MiniNet::join_ixp_remote(Asn asn, int home_fac_index, Asn reseller) {
  Ixp& ixp = topo.mutable_ixp(ix);
  const auto reseller_ports = ixp.ports_of(reseller);
  if (reseller_ports.empty())
    throw std::invalid_argument("reseller has no port");
  IxpPort port;
  port.member = asn;
  port.router = router(asn, home_fac_index);
  port.lan_address = ixp.peering_lan.at(1 + ixp.ports.size());
  port.access_switch = reseller_ports.front()->access_switch;
  port.remote = true;
  port.reseller = reseller;
  ixp.ports.push_back(port);
  topo.add_interface(Interface{port.lan_address, port.router,
                               LinkId::invalid(), InterfaceRole::IxpLan});
  auto& as = topo.mutable_as(asn);
  if (std::find(as.ixps.begin(), as.ixps.end(), ix) == as.ixps.end())
    as.ixps.push_back(ix);
}

LinkId MiniNet::public_peer(Asn a, Asn b, BusinessRel rel) {
  const Ixp& ixp = topo.ixp(ix);
  const auto ports_a = ixp.ports_of(a);
  if (ports_a.empty()) throw std::invalid_argument("a has no port");
  const IxpPort* pa = ports_a.front();
  const auto nearest = ixp.nearest_port(b, pa->access_switch);
  if (!nearest) throw std::invalid_argument("b has no port");
  const IxpPort& pb = ixp.ports[*nearest];

  Link link;
  link.type = LinkType::PublicPeering;
  link.rel = rel;
  link.a = LinkEnd{pa->router, pa->lan_address};
  link.b = LinkEnd{pb.router, pb.lan_address};
  link.ixp = ix;
  const auto& fa = topo.facility(topo.router(pa->router).facility);
  const auto& fb = topo.facility(topo.router(pb.router).facility);
  link.latency_ms = propagation_delay_ms(fa.location, fb.location) + 0.1;
  const LinkId id = topo.add_link(link);
  register_rel(a, b, rel);
  return id;
}

LinkId MiniNet::tether(Asn a, Asn b, BusinessRel rel, bool number_from_b) {
  const Ixp& ixp = topo.ixp(ix);
  const auto ports_a = ixp.ports_of(a);
  const auto ports_b = ixp.ports_of(b);
  if (ports_a.empty() || ports_b.empty())
    throw std::invalid_argument("both sides need IXP ports for tethering");
  const Prefix ptp = take_ptp(number_from_b ? b : a);

  Link link;
  link.type = LinkType::Tethering;
  link.rel = rel;
  link.a = LinkEnd{ports_a.front()->router, ptp.at(1)};
  link.b = LinkEnd{ports_b.front()->router, ptp.at(2)};
  link.ixp = ix;
  link.latency_ms = 0.15;
  const LinkId id = topo.add_link(link);
  topo.add_interface(Interface{ptp.at(1), ports_a.front()->router, id,
                               InterfaceRole::PrivatePtp});
  topo.add_interface(Interface{ptp.at(2), ports_b.front()->router, id,
                               InterfaceRole::PrivatePtp});
  register_rel(a, b, rel);
  return id;
}

}  // namespace cfs::testing
