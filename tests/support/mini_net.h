// Hand-built micro-topology shared across test suites.
//
// Two metros (Frankfurt-like m0 with four facilities and one IXP whose
// fabric is: core at fac[0], backhaul over access switches at fac[1] and
// fac[2], plus a core-attached access switch at fac[3]; London-like m1
// with two facilities and no IXP). Tests compose ASes, routers, backbone
// and the four interconnection types with one-liners and get a validated
// ground-truth topology with known answers.
#pragma once

#include <unordered_map>
#include <vector>

#include "topology/topology.h"

namespace cfs::testing {

class MiniNet {
 public:
  MiniNet();

  Topology topo;
  MetroId m0, m1;
  std::vector<FacilityId> fac;  // 0..3 in m0, 4..5 in m1
  IxpId ix;

  // Switch indexes inside the IXP (for assertions).
  static constexpr std::uint32_t core_switch = 0;
  static constexpr std::uint32_t backhaul_switch = 1;
  static constexpr std::uint32_t access_f1 = 2;  // under backhaul
  static constexpr std::uint32_t access_f2 = 3;  // under backhaul
  static constexpr std::uint32_t access_f3 = 4;  // directly on core

  // Adds an AS present at the given facility indexes (into fac), with one
  // router per facility, a chained backbone, and a /16 of address space.
  Asn add_as(std::uint32_t asn, AsType type, const std::vector<int>& at);

  [[nodiscard]] RouterId router(Asn asn, int fac_index) const;

  // Private cross-connect at fac[fac_index]; addresses from a's space
  // unless number_from_b. Registers the relationship too.
  LinkId xconnect(Asn a, Asn b, int fac_index, BusinessRel rel,
                  bool number_from_b = false);

  // Local IXP port for the AS's router at fac[fac_index] (must host an
  // access switch: indexes 1, 2 or 3).
  void join_ixp(Asn asn, int fac_index);

  // Remote port: the AS connects through `reseller` (which must hold a
  // local port); its router stays at fac[home_fac_index].
  void join_ixp_remote(Asn asn, int home_fac_index, Asn reseller);

  // Public peering session over the IXP between existing ports; far side
  // chosen per nearest-port. Registers the relationship.
  LinkId public_peer(Asn a, Asn b, BusinessRel rel);

  // Tethered private VLAN over the IXP between existing ports.
  LinkId tether(Asn a, Asn b, BusinessRel rel, bool number_from_b = false);

  // Fresh /30 from the AS's block (for custom link construction).
  Prefix take_ptp(Asn asn);
  // Fresh single address from the AS's block.
  Ipv4 take_address(Asn asn);

 private:
  void register_rel(Asn a, Asn b, BusinessRel rel);

  std::unordered_map<std::uint32_t, std::uint64_t> cursor_;  // per ASN
  std::unordered_map<std::uint32_t, Prefix> block_;
  std::unordered_map<std::uint64_t, RouterId> router_at_;
  std::uint32_t next_block_ = 0;
};

}  // namespace cfs::testing
