#include "bgp/looking_glass.h"

#include <gtest/gtest.h>

#include "topology/generator.h"

namespace cfs {
namespace {

LookingGlassDirectory::Config config_with(double host_p, double bgp_p) {
  LookingGlassDirectory::Config c;
  c.host_probability = host_p;
  c.bgp_support_probability = bgp_p;
  return c;
}

TEST(LookingGlass, EnterprisesNeverHost) {
  const Topology topo = generate_topology(GeneratorConfig::small_scale());
  LookingGlassDirectory dir(topo, config_with(1.0, 0.5));
  for (const auto& entry : dir.entries())
    EXPECT_NE(topo.as_of(entry.owner).type, AsType::Enterprise);
  EXPECT_GT(dir.entries().size(), 0u);
}

TEST(LookingGlass, SomeSupportBgpQueries) {
  const Topology topo = generate_topology(GeneratorConfig::small_scale());
  LookingGlassDirectory dir(topo, config_with(1.0, 0.3));
  std::size_t bgp = 0;
  for (const auto& entry : dir.entries()) bgp += entry.supports_bgp;
  EXPECT_GT(bgp, 0u);
  EXPECT_LT(bgp, dir.entries().size());
}

TEST(LookingGlass, FindByRouter) {
  const Topology topo = generate_topology(GeneratorConfig::tiny());
  LookingGlassDirectory dir(topo, config_with(1.0, 0.5));
  ASSERT_FALSE(dir.entries().empty());
  const auto& first = dir.entries().front();
  const auto* found = dir.find(first.router);
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->owner, first.owner);
}

TEST(LookingGlass, CooldownEnforced) {
  const Topology topo = generate_topology(GeneratorConfig::tiny());
  LookingGlassDirectory dir(topo, config_with(1.0, 0.5));
  ASSERT_FALSE(dir.entries().empty());
  const RouterId router = dir.entries().front().router;

  EXPECT_EQ(dir.next_allowed_s(router), 0.0);
  EXPECT_TRUE(dir.try_query(router, 100.0));
  EXPECT_FALSE(dir.try_query(router, 120.0));  // within 60 s cool-down
  EXPECT_EQ(dir.next_allowed_s(router), 160.0);
  EXPECT_TRUE(dir.try_query(router, 160.0));
}

TEST(LookingGlass, QueriesOnNonLgRouterRejected) {
  const Topology topo = generate_topology(GeneratorConfig::tiny());
  LookingGlassDirectory dir(topo, config_with(0.0, 0.0));
  EXPECT_TRUE(dir.entries().empty());
  EXPECT_FALSE(dir.try_query(RouterId(0), 0.0));
}

TEST(LookingGlass, DistinctAsesCounted) {
  const Topology topo = generate_topology(GeneratorConfig::small_scale());
  LookingGlassDirectory dir(topo, config_with(1.0, 0.1));
  EXPECT_GT(dir.distinct_ases(), 1u);
  EXPECT_LE(dir.distinct_ases(), dir.entries().size());
}

}  // namespace
}  // namespace cfs
