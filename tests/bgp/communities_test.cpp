#include "bgp/communities.h"

#include <gtest/gtest.h>

#include "support/mini_net.h"
#include "topology/generator.h"

namespace cfs {
namespace {

using testing::MiniNet;

TEST(Communities, OnlyTransitAndTier1Adopt) {
  const Topology topo = generate_topology(GeneratorConfig::small_scale());
  CommunityRegistry reg(topo, 1.0, 5);
  for (const Asn asn : reg.adopters()) {
    const auto type = topo.as_of(asn).type;
    EXPECT_TRUE(type == AsType::Tier1 || type == AsType::Transit);
  }
  EXPECT_GT(reg.adopters().size(), 0u);
}

TEST(Communities, ZeroAdoptionMeansNoTags) {
  const Topology topo = generate_topology(GeneratorConfig::tiny());
  CommunityRegistry reg(topo, 0.0, 5);
  EXPECT_TRUE(reg.adopters().empty());
  EXPECT_EQ(reg.dictionary_size(), 0u);
}

TEST(Communities, EncodeDecodeRoundTrip) {
  MiniNet net;
  const Asn t = net.add_as(1000, AsType::Transit, {0, 1, 4});
  CommunityRegistry reg(net.topo, 1.0, 5);
  ASSERT_TRUE(reg.tags_ingress(t));
  for (const FacilityId fac : net.topo.as_of(t).facilities) {
    const auto tag = reg.tag_for(t, fac);
    ASSERT_TRUE(tag.has_value());
    const auto decoded = reg.decode(*tag);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(*decoded, fac);
  }
}

TEST(Communities, ValuesDistinctPerFacility) {
  MiniNet net;
  const Asn t = net.add_as(1000, AsType::Transit, {0, 1, 2, 3});
  CommunityRegistry reg(net.topo, 1.0, 5);
  std::set<std::uint32_t> values;
  for (const FacilityId fac : net.topo.as_of(t).facilities)
    values.insert(reg.tag_for(t, fac)->value);
  EXPECT_EQ(values.size(), net.topo.as_of(t).facilities.size());
}

TEST(Communities, UnknownLookupsReturnNullopt) {
  MiniNet net;
  const Asn t = net.add_as(1000, AsType::Transit, {0});
  const Asn c = net.add_as(5000, AsType::Content, {1});
  CommunityRegistry reg(net.topo, 1.0, 5);
  EXPECT_FALSE(reg.tags_ingress(c));  // content ASes never adopt
  EXPECT_FALSE(reg.tag_for(c, net.fac[1]).has_value());
  // Facility where the transit AS is absent.
  EXPECT_FALSE(reg.tag_for(t, net.fac[5]).has_value());
  EXPECT_FALSE(reg.decode(Community{t.value, 1}).has_value());
  EXPECT_FALSE(reg.decode(Community{999999, 1000}).has_value());
}

TEST(Communities, DeterministicForSeed) {
  const Topology topo = generate_topology(GeneratorConfig::tiny());
  CommunityRegistry r1(topo, 0.5, 9);
  CommunityRegistry r2(topo, 0.5, 9);
  EXPECT_EQ(r1.adopters(), r2.adopters());
  EXPECT_EQ(r1.dictionary_size(), r2.dictionary_size());
}

}  // namespace
}  // namespace cfs
