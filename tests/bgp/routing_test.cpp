#include "bgp/routing.h"

#include <gtest/gtest.h>

#include "support/mini_net.h"
#include "topology/generator.h"
#include "util/rng.h"

namespace cfs {
namespace {

using testing::MiniNet;

// Reference scenario:
//   tier1s T1a(100), T1b(101) peer privately;
//   transit A(1000) buys from T1a, transit B(1001) buys from T1b;
//   content C(5000) buys from A, eyeball E(10000) buys from B;
//   C and E peer publicly at the Frankfurt IXP;
//   stub D(30000) buys from E.
struct RoutingFixture {
  MiniNet net;
  Asn t1a, t1b, a, b, c, e, d;

  RoutingFixture() {
    t1a = net.add_as(100, AsType::Tier1, {0, 1, 4});
    t1b = net.add_as(101, AsType::Tier1, {0, 2, 5});
    a = net.add_as(1000, AsType::Transit, {1, 4});
    b = net.add_as(1001, AsType::Transit, {2, 5});
    c = net.add_as(5000, AsType::Content, {1, 3});
    e = net.add_as(10000, AsType::Eyeball, {2, 3});
    d = net.add_as(30000, AsType::Enterprise, {3});

    net.xconnect(t1a, t1b, 0, BusinessRel::PeerPeer);
    net.xconnect(a, t1a, 1, BusinessRel::CustomerProvider);
    net.xconnect(b, t1b, 2, BusinessRel::CustomerProvider);
    net.xconnect(c, a, 1, BusinessRel::CustomerProvider);
    net.xconnect(e, b, 2, BusinessRel::CustomerProvider);
    net.join_ixp(c, 3);
    net.join_ixp(e, 3);
    net.public_peer(c, e, BusinessRel::PeerPeer);
    net.xconnect(d, e, 3, BusinessRel::CustomerProvider);

    net.topo.validate();
  }
};

std::vector<std::uint32_t> values(const std::vector<Asn>& path) {
  std::vector<std::uint32_t> out;
  for (const Asn asn : path) out.push_back(asn.value);
  return out;
}

TEST(Routing, SelfPath) {
  RoutingFixture fx;
  RoutingOracle oracle(fx.net.topo);
  EXPECT_EQ(values(oracle.as_path(fx.c, fx.c)),
            (std::vector<std::uint32_t>{5000}));
  EXPECT_EQ(oracle.route_kind(fx.c, fx.c), RouteKind::Self);
}

TEST(Routing, PeerRoutePreferredOverProviderChain) {
  RoutingFixture fx;
  RoutingOracle oracle(fx.net.topo);
  EXPECT_EQ(values(oracle.as_path(fx.c, fx.e)),
            (std::vector<std::uint32_t>{5000, 10000}));
  EXPECT_EQ(oracle.route_kind(fx.c, fx.e), RouteKind::Peer);
  // And symmetrically.
  EXPECT_EQ(values(oracle.as_path(fx.e, fx.c)),
            (std::vector<std::uint32_t>{10000, 5000}));
}

TEST(Routing, ProviderChainCrossesTier1Peering) {
  RoutingFixture fx;
  RoutingOracle oracle(fx.net.topo);
  EXPECT_EQ(values(oracle.as_path(fx.a, fx.b)),
            (std::vector<std::uint32_t>{1000, 100, 101, 1001}));
  EXPECT_EQ(oracle.route_kind(fx.a, fx.b), RouteKind::Provider);
}

TEST(Routing, PeerLinkIsNotTransited) {
  RoutingFixture fx;
  RoutingOracle oracle(fx.net.topo);
  // A must not reach B through the C-E peering (C would be transiting).
  const auto path = oracle.as_path(fx.a, fx.b);
  for (const Asn asn : path) {
    EXPECT_NE(asn, fx.c);
    EXPECT_NE(asn, fx.e);
  }
}

TEST(Routing, CustomerConeRoutes) {
  RoutingFixture fx;
  RoutingOracle oracle(fx.net.topo);
  EXPECT_EQ(oracle.route_kind(fx.a, fx.c), RouteKind::Customer);
  EXPECT_EQ(oracle.route_kind(fx.t1a, fx.c), RouteKind::Customer);
  EXPECT_EQ(values(oracle.as_path(fx.t1a, fx.c)),
            (std::vector<std::uint32_t>{100, 1000, 5000}));
}

TEST(Routing, PeerHopOntoCustomerCone) {
  RoutingFixture fx;
  RoutingOracle oracle(fx.net.topo);
  // C reaches D through its peer E (E has a customer route to D), beating
  // the long provider path via A, T1a, T1b, B, E.
  EXPECT_EQ(values(oracle.as_path(fx.c, fx.d)),
            (std::vector<std::uint32_t>{5000, 10000, 30000}));
  EXPECT_EQ(oracle.route_kind(fx.c, fx.d), RouteKind::Peer);
}

TEST(Routing, StubSeesProviderRoutes) {
  RoutingFixture fx;
  RoutingOracle oracle(fx.net.topo);
  EXPECT_EQ(oracle.route_kind(fx.d, fx.c), RouteKind::Provider);
  EXPECT_EQ(values(oracle.as_path(fx.d, fx.c)),
            (std::vector<std::uint32_t>{30000, 10000, 5000}));
}

TEST(Routing, UnreachableWithoutPhysicalLinks) {
  RoutingFixture fx;
  // An AS with presence but no interconnection whatsoever.
  fx.net.add_as(65000, AsType::Enterprise, {3});
  RoutingOracle oracle(fx.net.topo);
  EXPECT_TRUE(oracle.as_path(Asn(65000), fx.c).empty());
  EXPECT_FALSE(oracle.reachable(fx.c, Asn(65000)));
}

TEST(Routing, UnknownAsnThrows) {
  RoutingFixture fx;
  RoutingOracle oracle(fx.net.topo);
  EXPECT_THROW(oracle.as_path(Asn(424242), fx.c), std::out_of_range);
}

TEST(Routing, TablesAreCachedPerDestination) {
  RoutingFixture fx;
  RoutingOracle oracle(fx.net.topo);
  EXPECT_EQ(oracle.cached_tables(), 0u);
  oracle.as_path(fx.a, fx.c);
  oracle.as_path(fx.b, fx.c);
  EXPECT_EQ(oracle.cached_tables(), 1u);
  oracle.as_path(fx.a, fx.e);
  EXPECT_EQ(oracle.cached_tables(), 2u);
}

// ---- property tests over a generated topology ----

enum class HopDir { Up, Peer, Down };

HopDir classify(const Topology& topo, Asn from, Asn to) {
  if (topo.is_provider_of(to, from)) return HopDir::Up;
  if (topo.is_provider_of(from, to)) return HopDir::Down;
  if (topo.is_peer_of(from, to)) return HopDir::Peer;
  throw std::logic_error("hop without relationship");
}

TEST(RoutingProperty, GeneratedPathsAreValleyFree) {
  const Topology topo = generate_topology(GeneratorConfig::small_scale());
  RoutingOracle oracle(topo);
  Rng rng(77);
  const auto ases = topo.ases();

  int checked = 0;
  for (int trial = 0; trial < 400; ++trial) {
    const Asn src = ases[rng.index(ases.size())].asn;
    const Asn dst = ases[rng.index(ases.size())].asn;
    const auto path = oracle.as_path(src, dst);
    if (path.size() < 2) continue;
    ++checked;

    // Pattern must be Up* Peer? Down*.
    int phase = 0;  // 0 = climbing, 1 = after peer, 2 = descending
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
      const HopDir dir = classify(topo, path[i], path[i + 1]);
      switch (dir) {
        case HopDir::Up:
          EXPECT_EQ(phase, 0) << "uphill after peak " << src.value << "->"
                              << dst.value;
          break;
        case HopDir::Peer:
          EXPECT_EQ(phase, 0) << "second peer hop " << src.value << "->"
                              << dst.value;
          phase = 1;
          break;
        case HopDir::Down:
          phase = 2;
          break;
      }
    }
  }
  EXPECT_GT(checked, 100);
}

TEST(RoutingProperty, GeneratedTopologyLargelyConnected) {
  const Topology topo = generate_topology(GeneratorConfig::small_scale());
  RoutingOracle oracle(topo);
  Rng rng(78);
  const auto ases = topo.ases();
  int reachable = 0;
  const int trials = 300;
  for (int i = 0; i < trials; ++i) {
    const Asn src = ases[rng.index(ases.size())].asn;
    const Asn dst = ases[rng.index(ases.size())].asn;
    reachable += oracle.reachable(src, dst);
  }
  EXPECT_GT(static_cast<double>(reachable) / trials, 0.95);
}

TEST(RoutingProperty, PathEndpointsAndNeighborsConsistent) {
  const Topology topo = generate_topology(GeneratorConfig::tiny());
  RoutingOracle oracle(topo);
  const auto ases = topo.ases();
  for (const auto& s : ases) {
    const auto path = oracle.as_path(s.asn, ases.front().asn);
    if (path.empty()) continue;
    EXPECT_EQ(path.front(), s.asn);
    EXPECT_EQ(path.back(), ases.front().asn);
    for (std::size_t i = 0; i + 1 < path.size(); ++i)
      EXPECT_NO_THROW(classify(topo, path[i], path[i + 1]));
  }
}

}  // namespace
}  // namespace cfs
