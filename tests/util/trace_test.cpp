// Tracing + metrics registry (util/trace.h).
//
// The subsystem's contract has three legs: the registry merges counters
// from any thread, the span timeline nests correctly across pool workers,
// and the exporters render deterministically (golden files over hand-built
// inputs — live timestamps are wall clock and never golden-comparable).
#include <gtest/gtest.h>

#include <sstream>
#include <thread>

#include "util/thread_pool.h"
#include "util/trace.h"

namespace cfs {
namespace {

// The registry is process-wide; isolate every test from the others (and
// from any prior test binary activity).
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Trace::disable();
    Trace::clear_events();
    Trace::reset_metrics();
  }
  void TearDown() override {
    Trace::disable();
    Trace::clear_events();
    Trace::reset_metrics();
  }
};

TEST_F(TraceTest, CountersAccumulate) {
  Trace::counter("test.hits");
  Trace::counter("test.hits", 4);
  Trace::counter("test.other", 2);
  const MetricsSnapshot snap = Trace::metrics();
  EXPECT_EQ(snap.counters.at("test.hits"), 5u);
  EXPECT_EQ(snap.counters.at("test.other"), 2u);
}

TEST_F(TraceTest, GaugesKeepLastValue) {
  Trace::gauge("test.level", 1.5);
  Trace::gauge("test.level", 2.5);
  EXPECT_DOUBLE_EQ(Trace::metrics().gauges.at("test.level"), 2.5);
}

TEST_F(TraceTest, TimersFoldCountAndTotal) {
  Trace::observe_ms("test.stage", 2.0);
  Trace::observe_ms("test.stage", 3.0);
  const MetricsSnapshot snap = Trace::metrics();
  EXPECT_EQ(snap.timers.at("test.stage").count, 2u);
  EXPECT_DOUBLE_EQ(snap.timers.at("test.stage").total_ms, 5.0);
}

TEST_F(TraceTest, CounterMergeAcrossPoolWorkers) {
  // Many concurrent increments from pool workers must merge losslessly:
  // this is exactly the campaign bumping campaign.* from run_unit while
  // classification chunks time themselves on other workers.
  ThreadPool pool(4);
  constexpr std::size_t kTasks = 1000;
  pool.parallel_for(kTasks, [](std::size_t i) {
    Trace::counter("test.merge");
    Trace::observe_ms("test.merge_timer", 0.25);
    if (i % 2 == 0) Trace::counter("test.even");
  });
  const MetricsSnapshot snap = Trace::metrics();
  EXPECT_EQ(snap.counters.at("test.merge"), kTasks);
  EXPECT_EQ(snap.counters.at("test.even"), kTasks / 2);
  EXPECT_EQ(snap.timers.at("test.merge_timer").count, kTasks);
  EXPECT_NEAR(snap.timers.at("test.merge_timer").total_ms,
              0.25 * static_cast<double>(kTasks), 1e-6);
}

TEST_F(TraceTest, MetricsSinceReportsPerRunDelta) {
  Trace::counter("test.before", 3);
  Trace::observe_ms("test.timer", 1.0);
  const MetricsSnapshot baseline = Trace::metrics();
  Trace::counter("test.before", 2);
  Trace::counter("test.after", 7);
  Trace::observe_ms("test.timer", 4.0);
  const MetricsSnapshot delta = Trace::metrics_since(baseline);
  EXPECT_EQ(delta.counters.at("test.before"), 2u);
  EXPECT_EQ(delta.counters.at("test.after"), 7u);
  EXPECT_EQ(delta.timers.at("test.timer").count, 1u);
  EXPECT_DOUBLE_EQ(delta.timers.at("test.timer").total_ms, 4.0);
  // Unchanged-since-baseline entries drop out entirely.
  Trace::counter("test.idle", 1);
  const MetricsSnapshot base2 = Trace::metrics();
  EXPECT_FALSE(Trace::metrics_since(base2).counters.contains("test.idle"));
}

TEST_F(TraceTest, MetricsSinceKeepsTimerWhoseTotalAdvancedWithoutNewCount) {
  // Regression (resident-daemon metrics windows): a span can straddle the
  // snapshot boundary, so the baseline a caller holds may already carry
  // this window's completion count while only part of its time — e.g. a
  // baseline persisted mid-span or restored across a reload. The timer
  // delta then has count == 0 but total_ms > 0, and used to be dropped
  // from the window entirely, silently under-reporting daemon time.
  Trace::observe_ms("test.window", 2.0);
  Trace::observe_ms("test.window", 3.0);
  MetricsSnapshot baseline = Trace::metrics();
  ASSERT_EQ(baseline.timers.at("test.window").count, 2u);
  baseline.timers["test.window"].total_ms = 4.0;  // 1.0 ms accrued in-window
  const MetricsSnapshot delta = Trace::metrics_since(baseline);
  ASSERT_TRUE(delta.timers.contains("test.window"));
  EXPECT_EQ(delta.timers.at("test.window").count, 0u);
  EXPECT_DOUBLE_EQ(delta.timers.at("test.window").total_ms, 1.0);
}

TEST_F(TraceTest, MetricsSinceSpanOpenedBeforeAndClosedAfterBaseline) {
  // The straddling span itself: opened before the window baseline, closed
  // after it. It only registers with the timer at close, so the whole
  // span lands in this window's delta.
  MetricsSnapshot baseline;
  {
    TraceSpan span("test.straddle");
    baseline = Trace::metrics();  // span still open: timer absent here
  }
  const MetricsSnapshot delta = Trace::metrics_since(baseline);
  ASSERT_TRUE(delta.timers.contains("test.straddle"));
  EXPECT_EQ(delta.timers.at("test.straddle").count, 1u);
}

TEST_F(TraceTest, MetricsSinceNegativeDeltasStayClampedAndAllZeroDrops) {
  // A registry reset between baseline and now must not produce garbage
  // (underflowed counts); both deltas clamp to zero and the timer drops.
  Trace::observe_ms("test.reset", 5.0);
  Trace::observe_ms("test.reset", 5.0);
  const MetricsSnapshot baseline = Trace::metrics();
  Trace::reset_metrics();
  Trace::observe_ms("test.reset", 1.0);  // now: count 1 < baseline count 2
  const MetricsSnapshot delta = Trace::metrics_since(baseline);
  EXPECT_FALSE(delta.timers.contains("test.reset"));
}

TEST_F(TraceTest, SpansFeedRegistryEvenWhenDisabled) {
  ASSERT_FALSE(Trace::enabled());
  {
    TraceSpan span("test.span");
  }
  EXPECT_EQ(Trace::metrics().timers.at("test.span").count, 1u);
  EXPECT_TRUE(Trace::events().empty());  // timeline stays off
}

TEST_F(TraceTest, StopIsIdempotentAndReturnsElapsed) {
  TraceSpan span("test.stop");
  const double first = span.stop();
  const double second = span.stop();
  EXPECT_GE(first, 0.0);
  EXPECT_DOUBLE_EQ(first, second);
  EXPECT_EQ(Trace::metrics().timers.at("test.stop").count, 1u);
}

TEST_F(TraceTest, EnabledSpansRecordEventsWithArgs) {
  Trace::enable();
  {
    TraceSpan span("test.outer", "unit");
    span.arg("items", 42);
    TraceSpan inner("test.inner", "unit");
    inner.stop();
  }
  Trace::disable();
  const auto events = Trace::events();
  ASSERT_EQ(events.size(), 2u);
  // Inner stops first, so it lands first; both carry the same thread.
  EXPECT_EQ(events[0].name, "test.inner");
  EXPECT_EQ(events[1].name, "test.outer");
  EXPECT_EQ(events[0].tid, events[1].tid);
  EXPECT_EQ(events[1].category, "unit");
  ASSERT_EQ(events[1].args.size(), 1u);
  EXPECT_EQ(events[1].args[0].first, "items");
  EXPECT_EQ(events[1].args[0].second, 42u);
  // Perfetto nesting invariant: the outer complete event encloses the
  // inner one on the same track.
  EXPECT_LE(events[1].ts_us, events[0].ts_us);
  EXPECT_GE(events[1].ts_us + events[1].dur_us,
            events[0].ts_us + events[0].dur_us);
}

TEST_F(TraceTest, SpanNestingAcrossPoolWorkers) {
  Trace::enable();
  {
    TraceSpan outer("test.fanout");
    ThreadPool pool(3);
    pool.parallel_for_chunks(90, [](std::size_t begin, std::size_t end) {
      TraceSpan chunk("test.chunk");
      chunk.arg("begin", begin);
      chunk.arg("count", end - begin);
    });
  }
  Trace::disable();
  const auto events = Trace::events();
  std::size_t chunks = 0;
  std::size_t covered = 0;
  std::int64_t outer_ts = -1;
  std::int64_t outer_end = -1;
  for (const auto& e : events) {
    if (e.name == "test.fanout") {
      outer_ts = e.ts_us;
      outer_end = e.ts_us + e.dur_us;
    }
    if (e.name == "test.chunk") {
      ++chunks;
      ASSERT_EQ(e.args.size(), 2u);
      covered += e.args[1].second;  // "count"
    }
  }
  EXPECT_GT(chunks, 0u);
  EXPECT_EQ(covered, 90u);  // chunks partition the range exactly
  ASSERT_GE(outer_ts, 0);
  // Every chunk span falls inside the enclosing span's window even though
  // chunks ran on different workers (each with its own tid track).
  for (const auto& e : events) {
    if (e.name != "test.chunk") continue;
    EXPECT_GE(e.ts_us, outer_ts);
    EXPECT_LE(e.ts_us + e.dur_us, outer_end);
  }
}

TEST_F(TraceTest, ChromeTraceGolden) {
  std::vector<TraceEvent> events;
  TraceEvent a;
  a.name = "campaign.run";
  a.category = "cfs";
  a.ts_us = 0;
  a.dur_us = 1500;
  a.tid = 1;
  a.args = {{"vps", 4}, {"targets", 9}};
  TraceEvent b;
  b.name = "cfs.classify_chunk";
  b.category = "cfs";
  b.ts_us = 200;
  b.dur_us = 300;
  b.tid = 2;
  events.push_back(a);
  events.push_back(b);

  std::ostringstream os;
  Trace::write_chrome_trace(os, events);
  const std::string expected =
      "{\n"
      "  \"displayTimeUnit\": \"ms\",\n"
      "  \"traceEvents\": [\n"
      "    {\"ph\": \"M\", \"pid\": 1, \"name\": \"process_name\", "
      "\"args\": {\"name\": \"cfs\"}},\n"
      "    {\"ph\": \"X\", \"pid\": 1, \"tid\": 1, \"name\": "
      "\"campaign.run\", \"cat\": \"cfs\", \"ts\": 0, \"dur\": 1500, "
      "\"args\": {\"vps\": 4, \"targets\": 9}},\n"
      "    {\"ph\": \"X\", \"pid\": 1, \"tid\": 2, \"name\": "
      "\"cfs.classify_chunk\", \"cat\": \"cfs\", \"ts\": 200, \"dur\": "
      "300}\n"
      "  ]\n"
      "}\n";
  EXPECT_EQ(os.str(), expected);
}

TEST_F(TraceTest, SummaryGolden) {
  MetricsSnapshot snap;
  snap.counters["campaign.traces_kept"] = 120;
  snap.gauges["topo.routers"] = 64.0;
  snap.timers["cfs.run"] = {1, 12.5};
  snap.timers["cfs.classify"] = {4, 2.0};

  std::ostringstream os;
  Trace::write_summary(os, snap);
  const std::string out = os.str();
  // Structure, not byte-layout: three sections, map-ordered rows, count /
  // total / mean derived correctly.
  EXPECT_NE(out.find("-- timers --"), std::string::npos);
  EXPECT_NE(out.find("-- counters --"), std::string::npos);
  EXPECT_NE(out.find("-- gauges --"), std::string::npos);
  EXPECT_NE(out.find("cfs.classify"), std::string::npos);
  EXPECT_NE(out.find("12.500"), std::string::npos);  // cfs.run total
  EXPECT_NE(out.find("0.500"), std::string::npos);   // cfs.classify mean
  EXPECT_NE(out.find("campaign.traces_kept"), std::string::npos);
  EXPECT_NE(out.find("120"), std::string::npos);
  // Map order: cfs.classify precedes cfs.run.
  EXPECT_LT(out.find("cfs.classify"), out.find("cfs.run"));
}

TEST_F(TraceTest, SummaryOfEmptyRegistry) {
  std::ostringstream os;
  Trace::write_summary(os, MetricsSnapshot{});
  EXPECT_EQ(os.str(), "metrics registry: empty\n");
}

TEST_F(TraceTest, ChromeTraceEscapesHostileNames) {
  std::vector<TraceEvent> events;
  TraceEvent e;
  e.name = "weird\"name\\with\ncontrol\x7f";
  e.category = "cfs";
  e.tid = 1;
  events.push_back(e);
  std::ostringstream os;
  Trace::write_chrome_trace(os, events);
  const std::string out = os.str();
  EXPECT_NE(out.find("weird\\\"name\\\\with\\ncontrol\\u007f"),
            std::string::npos);
}

}  // namespace
}  // namespace cfs
