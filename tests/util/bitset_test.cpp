// DynamicBitset: the dirty/pending observation worklists in the CFS hot
// path are bitsets over store slots, so set/reset/count/merge must match a
// reference std::vector<bool> model exactly — including across resizes
// (slots are only ever appended, but shrink must not resurrect stale tail
// bits on regrow).
#include "util/bitset.h"

#include <gtest/gtest.h>

#include <vector>

#include "util/rng.h"

namespace cfs {
namespace {

TEST(DynamicBitset, StartsEmpty) {
  DynamicBitset bits;
  EXPECT_EQ(bits.size(), 0u);
  EXPECT_EQ(bits.count(), 0u);
  EXPECT_FALSE(bits.any());
}

TEST(DynamicBitset, SetTestReset) {
  DynamicBitset bits;
  bits.resize(130);  // spans three words
  EXPECT_FALSE(bits.test(0));
  bits.set(0);
  bits.set(63);
  bits.set(64);
  bits.set(129);
  EXPECT_TRUE(bits.test(0));
  EXPECT_TRUE(bits.test(63));
  EXPECT_TRUE(bits.test(64));
  EXPECT_TRUE(bits.test(129));
  EXPECT_FALSE(bits.test(1));
  EXPECT_FALSE(bits.test(128));
  EXPECT_EQ(bits.count(), 4u);
  EXPECT_TRUE(bits.any());
  bits.reset(63);
  EXPECT_FALSE(bits.test(63));
  EXPECT_EQ(bits.count(), 3u);
}

TEST(DynamicBitset, ResetAllClearsEverything) {
  DynamicBitset bits;
  bits.resize(200);
  for (std::size_t i = 0; i < 200; i += 3) bits.set(i);
  EXPECT_TRUE(bits.any());
  bits.reset_all();
  EXPECT_EQ(bits.count(), 0u);
  EXPECT_FALSE(bits.any());
  for (std::size_t i = 0; i < 200; ++i) EXPECT_FALSE(bits.test(i));
}

TEST(DynamicBitset, GrowPreservesBits) {
  DynamicBitset bits;
  bits.resize(10);
  bits.set(3);
  bits.set(9);
  bits.resize(300);
  EXPECT_TRUE(bits.test(3));
  EXPECT_TRUE(bits.test(9));
  for (std::size_t i = 10; i < 300; ++i) EXPECT_FALSE(bits.test(i));
  EXPECT_EQ(bits.count(), 2u);
}

TEST(DynamicBitset, ShrinkThenRegrowDoesNotResurrectBits) {
  DynamicBitset bits;
  bits.resize(100);
  for (std::size_t i = 0; i < 100; ++i) bits.set(i);
  bits.resize(70);  // mid-word boundary: tail of word 1 must be masked
  EXPECT_EQ(bits.count(), 70u);
  bits.resize(100);
  for (std::size_t i = 70; i < 100; ++i) EXPECT_FALSE(bits.test(i));
  EXPECT_EQ(bits.count(), 70u);
}

TEST(DynamicBitset, MergeIsBitwiseOr) {
  DynamicBitset a;
  DynamicBitset b;
  a.resize(130);
  b.resize(130);
  a.set(1);
  a.set(70);
  b.set(70);
  b.set(129);
  a.merge(b);
  EXPECT_TRUE(a.test(1));
  EXPECT_TRUE(a.test(70));
  EXPECT_TRUE(a.test(129));
  EXPECT_EQ(a.count(), 3u);
  // merge must not modify its argument
  EXPECT_FALSE(b.test(1));
  EXPECT_EQ(b.count(), 2u);
}

// Property: a random walk of set/reset/resize/merge operations agrees with
// a std::vector<bool> reference model at every step.
TEST(DynamicBitset, MatchesReferenceModelUnderRandomOps) {
  Rng rng(4242);
  DynamicBitset bits;
  std::vector<bool> model;
  DynamicBitset other;
  std::vector<bool> other_model;

  for (int step = 0; step < 4000; ++step) {
    const std::size_t op = rng.index(100);
    if (op < 8) {  // resize (mostly grow, occasionally shrink)
      const std::size_t n = rng.index(260);
      bits.resize(n);
      other.resize(n);
      model.resize(n, false);
      other_model.resize(n, false);
      if (n < model.size()) {
        model.resize(n);
        other_model.resize(n);
      }
    } else if (model.empty()) {
      continue;
    } else if (op < 45) {
      const std::size_t i = rng.index(model.size());
      bits.set(i);
      model[i] = true;
    } else if (op < 75) {
      const std::size_t i = rng.index(model.size());
      bits.reset(i);
      model[i] = false;
    } else if (op < 85) {
      const std::size_t i = rng.index(model.size());
      other.set(i);
      other_model[i] = true;
    } else if (op < 92) {
      bits.merge(other);
      for (std::size_t i = 0; i < model.size(); ++i)
        model[i] = model[i] || other_model[i];
    } else if (op < 96) {
      bits.reset_all();
      model.assign(model.size(), false);
    }

    ASSERT_EQ(bits.size(), model.size());
    std::size_t expected_count = 0;
    for (std::size_t i = 0; i < model.size(); ++i) {
      ASSERT_EQ(bits.test(i), model[i]) << "bit " << i << " at step " << step;
      expected_count += model[i];
    }
    ASSERT_EQ(bits.count(), expected_count);
    ASSERT_EQ(bits.any(), expected_count != 0);
  }
}

}  // namespace
}  // namespace cfs
