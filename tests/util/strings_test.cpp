#include "util/strings.h"

#include <gtest/gtest.h>

namespace cfs {
namespace {

TEST(Strings, SplitBasic) {
  const auto parts = split("a.b.c", '.');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "c");
}

TEST(Strings, SplitPreservesEmptyFields) {
  const auto parts = split("a..b.", '.');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[3], "");
}

TEST(Strings, SplitEmptyInput) {
  const auto parts = split("", '.');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "");
}

TEST(Strings, JoinRoundTrip) {
  const std::vector<std::string> parts = {"rtr1", "thn", "lon"};
  EXPECT_EQ(join(parts, "."), "rtr1.thn.lon");
  EXPECT_EQ(split(join(parts, "."), '.'), parts);
}

TEST(Strings, JoinEmpty) { EXPECT_EQ(join({}, "."), ""); }

TEST(Strings, CaseConversion) {
  EXPECT_EQ(to_lower("DE-CIX Frankfurt"), "de-cix frankfurt");
  EXPECT_EQ(to_upper("ams-ix"), "AMS-IX");
}

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  x y  "), "x y");
  EXPECT_EQ(trim("\t\n"), "");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("abc"), "abc");
}

TEST(Strings, Predicates) {
  EXPECT_TRUE(starts_with("rtr1.thn.lon", "rtr1"));
  EXPECT_FALSE(starts_with("rtr1", "rtr1.thn"));
  EXPECT_TRUE(ends_with("rtr1.thn.lon", ".lon"));
  EXPECT_FALSE(ends_with("lon", "xlon"));
  EXPECT_TRUE(contains("rtr1.thn.lon", "thn"));
  EXPECT_FALSE(contains("rtr1", "thn"));
}

TEST(Strings, Fixed) {
  EXPECT_EQ(fixed(3.14159, 2), "3.14");
  EXPECT_EQ(fixed(2.0, 0), "2");
  EXPECT_EQ(fixed(-1.5, 1), "-1.5");
}

TEST(Strings, WithCommas) {
  EXPECT_EQ(with_commas(0), "0");
  EXPECT_EQ(with_commas(999), "999");
  EXPECT_EQ(with_commas(1000), "1,000");
  EXPECT_EQ(with_commas(1234567), "1,234,567");
}

TEST(Strings, Fnv1a64KnownVectors) {
  // Published FNV-1a test vectors; pins the constants against typos.
  EXPECT_EQ(fnv1a64(""), 0xcbf29ce484222325ULL);
  EXPECT_EQ(fnv1a64("a"), 0xaf63dc4c8601ec8cULL);
  EXPECT_EQ(fnv1a64("foobar"), 0x85944171f73967e8ULL);
}

TEST(Strings, Fnv1a64SensitiveToEveryByte) {
  EXPECT_NE(fnv1a64("report-a"), fnv1a64("report-b"));
  EXPECT_NE(fnv1a64("ab"), fnv1a64("ba"));
  // Embedded NULs count: hashing canonical JSON must not stop early.
  EXPECT_NE(fnv1a64(std::string_view("a\0b", 3)),
            fnv1a64(std::string_view("a\0c", 3)));
}

TEST(Strings, Hex64) {
  EXPECT_EQ(hex64(0), "0000000000000000");
  EXPECT_EQ(hex64(0xcbf29ce484222325ULL), "cbf29ce484222325");
  EXPECT_EQ(hex64(0xffffffffffffffffULL), "ffffffffffffffff");
}

}  // namespace
}  // namespace cfs
