#include "util/log.h"

#include <gtest/gtest.h>

#include <iostream>
#include <sstream>

namespace cfs {
namespace {

// Captures std::cerr for the duration of a scope.
class CerrCapture {
 public:
  CerrCapture() : old_(std::cerr.rdbuf(buffer_.rdbuf())) {}
  ~CerrCapture() { std::cerr.rdbuf(old_); }
  [[nodiscard]] std::string text() const { return buffer_.str(); }

 private:
  std::ostringstream buffer_;
  std::streambuf* old_;
};

class LogTest : public ::testing::Test {
 protected:
  void SetUp() override { previous_ = log_level(); }
  void TearDown() override { set_log_level(previous_); }
  LogLevel previous_ = LogLevel::Warn;
};

TEST_F(LogTest, MessagesBelowLevelAreSuppressed) {
  set_log_level(LogLevel::Warn);
  CerrCapture capture;
  log_debug() << "hidden";
  log_info() << "hidden too";
  EXPECT_TRUE(capture.text().empty());
}

TEST_F(LogTest, MessagesAtOrAboveLevelAppear) {
  set_log_level(LogLevel::Info);
  CerrCapture capture;
  log_info() << "visible " << 42;
  log_error() << "also visible";
  const std::string out = capture.text();
  EXPECT_NE(out.find("[INFO] visible 42"), std::string::npos);
  EXPECT_NE(out.find("[ERROR] also visible"), std::string::npos);
}

TEST_F(LogTest, OffSilencesEverything) {
  set_log_level(LogLevel::Off);
  CerrCapture capture;
  log_error() << "nothing";
  EXPECT_TRUE(capture.text().empty());
}

TEST_F(LogTest, LevelRoundTrip) {
  set_log_level(LogLevel::Debug);
  EXPECT_EQ(log_level(), LogLevel::Debug);
  set_log_level(LogLevel::Error);
  EXPECT_EQ(log_level(), LogLevel::Error);
}

}  // namespace
}  // namespace cfs
