// Bump-arena behaviour the SoA observation store depends on: alignment,
// stability of handed-out spans, byte accounting for the metrics gauges,
// and block recycling on reset.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "util/arena.h"

namespace cfs {
namespace {

TEST(Arena, AllocationsAreAlignedAndDisjoint) {
  Arena arena(256);  // small blocks force multi-block coverage
  std::vector<std::pair<std::uint8_t*, std::size_t>> spans;
  for (int i = 0; i < 200; ++i) {
    const std::size_t n = 1 + static_cast<std::size_t>(i % 37);
    auto* p = arena.alloc_array<std::uint64_t>(n);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % alignof(std::uint64_t),
              0u);
    for (std::size_t j = 0; j < n; ++j) p[j] = 0xa0a0a0a0a0a0a0a0ULL + i;
    spans.emplace_back(reinterpret_cast<std::uint8_t*>(p),
                       n * sizeof(std::uint64_t));
  }
  // No span overlaps another (each was fully written above; overlap would
  // have corrupted an earlier span's fill pattern, but check geometry
  // directly too).
  for (std::size_t i = 0; i < spans.size(); ++i)
    for (std::size_t j = i + 1; j < spans.size(); ++j) {
      const auto [pi, ni] = spans[i];
      const auto [pj, nj] = spans[j];
      EXPECT_TRUE(pi + ni <= pj || pj + nj <= pi)
          << "span " << i << " overlaps span " << j;
    }
}

TEST(Arena, MixedAlignments) {
  Arena arena(128);
  for (int i = 0; i < 100; ++i) {
    auto* c = arena.alloc_array<char>(3);
    auto* d = arena.alloc_array<double>(2);
    auto* s = arena.alloc_array<std::uint16_t>(5);
    ASSERT_NE(c, nullptr);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(d) % alignof(double), 0u);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(s) % alignof(std::uint16_t),
              0u);
  }
}

TEST(Arena, BytesAccounting) {
  Arena arena(1024);
  EXPECT_EQ(arena.bytes_allocated(), 0u);
  (void)arena.alloc_array<std::uint32_t>(10);
  EXPECT_EQ(arena.bytes_allocated(), 40u);
  (void)arena.alloc_array<std::uint8_t>(3);
  EXPECT_EQ(arena.bytes_allocated(), 43u);
  EXPECT_GE(arena.bytes_reserved(), 1024u);

  const std::size_t reserved = arena.bytes_reserved();
  arena.reset();
  EXPECT_EQ(arena.bytes_allocated(), 0u);
  // Capacity is recycled, not freed.
  EXPECT_EQ(arena.bytes_reserved(), reserved);
  (void)arena.alloc_array<std::uint32_t>(10);
  EXPECT_EQ(arena.bytes_allocated(), 40u);
  EXPECT_EQ(arena.bytes_reserved(), reserved);  // reuse, no new block
}

TEST(Arena, OversizedRequestGetsItsOwnBlock) {
  Arena arena(64);
  auto* p = arena.alloc_array<std::uint64_t>(100);  // 800 bytes > block
  ASSERT_NE(p, nullptr);
  for (int i = 0; i < 100; ++i) p[i] = i;
  EXPECT_EQ(arena.bytes_allocated(), 800u);
  EXPECT_GE(arena.bytes_reserved(), 800u);
}

TEST(Arena, ProcessCounterTracksLiveArenas) {
  const std::uint64_t before = Arena::process_reserved_bytes();
  {
    Arena arena(4096);
    (void)arena.alloc_array<std::uint8_t>(1);
    EXPECT_GE(Arena::process_reserved_bytes(), before + 4096);
  }
  EXPECT_EQ(Arena::process_reserved_bytes(), before);  // released on dtor
}

TEST(Arena, MoveTransfersOwnership) {
  const std::uint64_t before = Arena::process_reserved_bytes();
  Arena a(512);
  auto* p = a.alloc_array<std::uint32_t>(4);
  p[0] = 42;
  Arena b(std::move(a));
  EXPECT_EQ(p[0], 42u);  // span survives the move
  EXPECT_EQ(b.bytes_allocated(), 16u);
  EXPECT_GE(Arena::process_reserved_bytes(), before + 512);
  b = Arena(128);  // old blocks released exactly once
  EXPECT_GE(Arena::process_reserved_bytes(), before);
}

}  // namespace
}  // namespace cfs
