#include "util/geo.h"

#include <gtest/gtest.h>

namespace cfs {
namespace {

constexpr GeoPoint london{51.51, -0.13};
constexpr GeoPoint new_york{40.71, -74.01};
constexpr GeoPoint frankfurt{50.11, 8.68};

TEST(Geo, ZeroDistanceForSamePoint) {
  EXPECT_DOUBLE_EQ(haversine_km(london, london), 0.0);
}

TEST(Geo, Symmetry) {
  EXPECT_DOUBLE_EQ(haversine_km(london, new_york),
                   haversine_km(new_york, london));
}

TEST(Geo, KnownDistances) {
  // London - New York great circle is ~5570 km.
  EXPECT_NEAR(haversine_km(london, new_york), 5570.0, 60.0);
  // London - Frankfurt is ~640 km.
  EXPECT_NEAR(haversine_km(london, frankfurt), 640.0, 25.0);
}

TEST(Geo, TriangleInequality) {
  EXPECT_LE(haversine_km(london, new_york),
            haversine_km(london, frankfurt) +
                haversine_km(frankfurt, new_york) + 1e-9);
}

TEST(Geo, PropagationDelayScalesWithDistance) {
  const double lon_ny = propagation_delay_ms(london, new_york);
  const double lon_fra = propagation_delay_ms(london, frankfurt);
  EXPECT_GT(lon_ny, lon_fra);
  // Transatlantic one-way fibre latency lands in the ~30-45 ms band.
  EXPECT_GT(lon_ny, 25.0);
  EXPECT_LT(lon_ny, 50.0);
}

TEST(Geo, AntipodalDistanceBounded) {
  const GeoPoint a{0.0, 0.0};
  const GeoPoint b{0.0, 180.0};
  // Half the Earth's circumference, ~20015 km.
  EXPECT_NEAR(haversine_km(a, b), 20015.0, 30.0);
}

}  // namespace
}  // namespace cfs
