#include "util/table.h"

#include <gtest/gtest.h>

#include <sstream>

namespace cfs {
namespace {

TEST(Table, RejectsEmptyHeaders) {
  EXPECT_THROW(Table({}), std::invalid_argument);
}

TEST(Table, RejectsMismatchedRow) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only one"}), std::invalid_argument);
}

TEST(Table, PrintsAlignedColumns) {
  Table t({"name", "count"});
  t.add_row({"London", "45"});
  t.add_row({"x", "1"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("London"), std::string::npos);
  EXPECT_NE(out.find("| name"), std::string::npos);
  // Every data line has the same width as the header line.
  std::istringstream is(out);
  std::string line;
  std::size_t width = 0;
  while (std::getline(is, line)) {
    if (width == 0) width = line.size();
    EXPECT_EQ(line.size(), width);
  }
}

TEST(Table, CsvOutput) {
  Table t({"metro", "n"});
  t.add_row({"New York", "42"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "metro,n\nNew York,42\n");
}

TEST(Table, CsvSanitisesCommas) {
  Table t({"a"});
  t.add_row({"x,y"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a\nx;y\n");
}

TEST(Table, CellHelpers) {
  EXPECT_EQ(Table::cell(std::uint64_t{1234}), "1,234");
  EXPECT_EQ(Table::cell(-5), "-5");
  EXPECT_EQ(Table::cell(0.5, 1), "0.5");
  EXPECT_EQ(Table::percent(0.905, 1), "90.5%");
}

TEST(Table, RowCount) {
  Table t({"a"});
  EXPECT_EQ(t.rows(), 0u);
  t.add_row({"1"}).add_row({"2"});
  EXPECT_EQ(t.rows(), 2u);
}

}  // namespace
}  // namespace cfs
