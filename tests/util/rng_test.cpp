#include "util/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cmath>
#include <set>
#include <type_traits>

namespace cfs {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.next() == b.next());
  EXPECT_LT(same, 3);
}

TEST(Rng, UniformRespectsBound) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.uniform(17), 17u);
}

TEST(Rng, UniformRejectsZeroBound) {
  Rng rng(5);
  EXPECT_THROW(rng.uniform(0), std::invalid_argument);
}

TEST(Rng, UniformInIsInclusive) {
  Rng rng(5);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.uniform_in(-2, 2));
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_EQ(*seen.begin(), -2);
  EXPECT_EQ(*seen.rbegin(), 2);
}

TEST(Rng, Uniform01InRange) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, ChanceExtremes) {
  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, ChanceApproximatesProbability) {
  Rng rng(4);
  int hits = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) hits += rng.chance(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / trials, 0.3, 0.02);
}

TEST(Rng, NormalMoments) {
  Rng rng(6);
  double sum = 0.0;
  double sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal(10.0, 2.0);
    sum += v;
    sq += v * v;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.1);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.1);
}

TEST(Rng, ExponentialMeanAndPositivity) {
  Rng rng(8);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.exponential(5.0);
    EXPECT_GT(v, 0.0);
    sum += v;
  }
  EXPECT_NEAR(sum / n, 5.0, 0.25);
}

TEST(Rng, WeightedIndexHonoursWeights) {
  Rng rng(10);
  const std::array<double, 3> weights = {0.0, 1.0, 3.0};
  std::array<int, 3> counts = {0, 0, 0};
  for (int i = 0; i < 20000; ++i)
    ++counts[rng.weighted_index(std::span<const double>(weights))];
  EXPECT_EQ(counts[0], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[1], 3.0, 0.3);
}

TEST(Rng, WeightedIndexRejectsBadInput) {
  Rng rng(10);
  const std::array<double, 2> zero = {0.0, 0.0};
  EXPECT_THROW(rng.weighted_index(std::span<const double>(zero)),
               std::invalid_argument);
  const std::array<double, 2> negative = {1.0, -0.5};
  EXPECT_THROW(rng.weighted_index(std::span<const double>(negative)),
               std::invalid_argument);
}

TEST(Rng, SampleIndicesDistinctAndBounded) {
  Rng rng(11);
  const auto sample = rng.sample_indices(50, 20);
  EXPECT_EQ(sample.size(), 20u);
  std::set<std::size_t> uniq(sample.begin(), sample.end());
  EXPECT_EQ(uniq.size(), 20u);
  for (const auto i : sample) EXPECT_LT(i, 50u);
}

TEST(Rng, SampleIndicesFullRange) {
  Rng rng(12);
  const auto sample = rng.sample_indices(5, 5);
  std::set<std::size_t> uniq(sample.begin(), sample.end());
  EXPECT_EQ(uniq.size(), 5u);
}

TEST(Rng, SampleIndicesRejectsOversample) {
  Rng rng(12);
  EXPECT_THROW(rng.sample_indices(3, 4), std::invalid_argument);
}

TEST(Rng, ZipfFavoursLowRanks) {
  Rng rng(13);
  ZipfSampler sampler(100, 1.2);
  std::array<int, 101> counts{};
  for (int i = 0; i < 50000; ++i) ++counts[sampler.sample(rng)];
  EXPECT_GT(counts[1], counts[10]);
  EXPECT_GT(counts[10], counts[90]);
  for (int i = 0; i < 50000; ++i) {
    const auto v = sampler.sample(rng);
    ASSERT_GE(v, 1u);
    ASSERT_LE(v, 100u);
  }
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(14);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  auto original = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent(21);
  Rng child = parent.fork();
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (parent.next() == child.next());
  EXPECT_LT(same, 3);
}

TEST(Rng, CopyingIsDeleted) {
  // A copied Rng would silently replay its parent's stream; stream
  // duplication must go through fork() explicitly.
  static_assert(!std::is_copy_constructible_v<Rng>);
  static_assert(!std::is_copy_assignable_v<Rng>);
  static_assert(std::is_move_constructible_v<Rng>);
}

TEST(Rng, SaltedForkDoesNotAdvanceParent) {
  Rng a(77);
  Rng b(77);
  (void)a.fork(123u);
  (void)a.fork(456u);
  // `a` minted two children without consuming a draw, so it still tracks
  // a twin that never forked.
  for (int i = 0; i < 32; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, SaltedForkIsReplayStable) {
  // Equal (parent state, salt) must mint the same child stream no matter
  // when — or on which thread — the fork happens. This is the foundation
  // of deterministic parallel trace execution.
  Rng parent(0xabcdefULL);
  Rng first = parent.fork(9001u);
  Rng again = parent.fork(9001u);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(first.next(), again.next());

  // And the stream depends on the parent's state: an advanced parent forks
  // a different child for the same salt.
  (void)parent.next();
  Rng advanced = parent.fork(9001u);
  Rng fresh = Rng(0xabcdefULL).fork(9001u);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (advanced.next() == fresh.next());
  EXPECT_LT(same, 3);
}

TEST(Rng, SaltedForksAreMutuallyIndependent) {
  Rng parent(31337);
  Rng a = parent.fork(1u);
  Rng b = parent.fork(2u);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.next() == b.next());
  EXPECT_LT(same, 3);

  // Bit-level sanity across many salts: means near 0.5 per bit would be
  // overkill here, but distinct salts must at least yield distinct first
  // draws (collision would hint at a broken mix).
  std::vector<std::uint64_t> firsts;
  for (std::uint64_t salt = 0; salt < 512; ++salt)
    firsts.push_back(parent.fork(salt).next());
  std::sort(firsts.begin(), firsts.end());
  EXPECT_EQ(std::adjacent_find(firsts.begin(), firsts.end()), firsts.end());
}

}  // namespace
}  // namespace cfs
