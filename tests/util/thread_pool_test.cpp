#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "util/rng.h"

namespace cfs {
namespace {

TEST(ThreadPoolTest, SpawnsRequestedWorkersAndJoinsCleanly) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.workers(), 4u);
  // Destructor joins; nothing submitted. Looping exercises repeated
  // construction/teardown for lifecycle leaks under sanitizers.
  for (int i = 0; i < 8; ++i) {
    ThreadPool scratch(2);
    EXPECT_EQ(scratch.workers(), 2u);
  }
}

TEST(ThreadPoolTest, RejectsZeroWorkers) {
  EXPECT_THROW(ThreadPool pool(0), std::invalid_argument);
}

TEST(ThreadPoolTest, SubmitRunsTaskAndFutureCompletes) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  auto f1 = pool.submit([&] { ran.fetch_add(1); });
  auto f2 = pool.submit([&] { ran.fetch_add(10); });
  f1.get();
  f2.get();
  EXPECT_EQ(ran.load(), 11);
}

TEST(ThreadPoolTest, SubmitPropagatesExceptionThroughFuture) {
  ThreadPool pool(2);
  auto future = pool.submit([] { throw std::runtime_error("task boom"); });
  EXPECT_THROW(future.get(), std::runtime_error);
  // The pool survives a throwing task.
  auto ok = pool.submit([] {});
  ok.get();
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t n = 10'000;
  std::vector<std::atomic<int>> hits(n);
  pool.parallel_for(n, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadPoolTest, ParallelForResultsLandInIndexOrder) {
  // The determinism contract: per-index slots filled in parallel read back
  // exactly like a serial loop, regardless of how chunks were scheduled.
  ThreadPool pool(8);
  constexpr std::size_t n = 4'097;
  std::vector<std::uint64_t> out(n);
  pool.parallel_for(n, [&](std::size_t i) { out[i] = i * i + 1; });
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(out[i], i * i + 1);
}

TEST(ThreadPoolTest, ParallelForZeroAndOneElement) {
  ThreadPool pool(3);
  int calls = 0;
  pool.parallel_for(0, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  pool.parallel_for(1, [&](std::size_t i) {
    EXPECT_EQ(i, 0u);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPoolTest, ParallelForRethrowsLowestChunkException) {
  ThreadPool pool(4);
  // Several chunks throw; the lowest-index one must win so failures are
  // deterministic. Chunk 0 always contains index 0.
  try {
    pool.parallel_for(1'000, [&](std::size_t i) {
      if (i == 0) throw std::runtime_error("first");
      if (i == 999) throw std::runtime_error("last");
    });
    FAIL() << "expected parallel_for to throw";
  } catch (const std::runtime_error& error) {
    EXPECT_STREQ(error.what(), "first");
  }
  // Pool remains usable after an exceptional loop.
  std::atomic<std::size_t> sum{0};
  pool.parallel_for(100, [&](std::size_t i) { sum.fetch_add(i); });
  EXPECT_EQ(sum.load(), 4950u);
}

TEST(ThreadPoolTest, NestedParallelForRunsInlineWithoutDeadlock) {
  ThreadPool pool(2);
  // Outer loop occupies workers; inner loops issued from inside the pool
  // must run inline instead of enqueueing (which could deadlock a pool
  // whose every worker is blocked waiting for inner tasks).
  std::vector<std::atomic<int>> hits(64);
  pool.parallel_for(8, [&](std::size_t outer) {
    pool.parallel_for(8, [&](std::size_t inner) {
      hits[outer * 8 + inner].fetch_add(1);
    });
  });
  for (std::size_t i = 0; i < hits.size(); ++i)
    EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadPoolTest, NestedSubmitFromWorkerDoesNotDeadlock) {
  ThreadPool pool(2);
  std::atomic<int> inner_ran{0};
  auto outer = pool.submit([&] {
    // A worker enqueueing more work must never wait on a full pool; the
    // inner future is drained by the other worker (or after this task).
    auto inner = pool.submit([&] { inner_ran.fetch_add(1); });
    inner.wait();
  });
  outer.get();
  EXPECT_EQ(inner_ran.load(), 1);
}

TEST(ThreadPoolTest, StopAcceptingRejectsLateSubmitsDeterministically) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  auto before = pool.submit([&] { ran.fetch_add(1); });
  before.get();
  EXPECT_TRUE(pool.accepting());
  pool.stop_accepting();
  EXPECT_FALSE(pool.accepting());
  // Every enqueue after stop_accepting() fails with the same exception —
  // no queued-but-never-run task, no racing the worker join.
  EXPECT_THROW(pool.submit([&] { ran.fetch_add(1); }), std::runtime_error);
  EXPECT_THROW(pool.submit([] {}), std::runtime_error);
  pool.drain();
  EXPECT_EQ(ran.load(), 1);
  // Idempotent.
  pool.stop_accepting();
  EXPECT_FALSE(pool.accepting());
}

TEST(ThreadPoolTest, StopAcceptingDrainRaceWithConcurrentSubmitters) {
  // TSan-covered shutdown race (resident-daemon drain): submitters hammer
  // the pool while another thread flips it to non-accepting and drains.
  // Every submit must either complete (its future becomes ready and the
  // task ran) or throw the deterministic rejection — never hang, never
  // drop a task whose future was handed out.
  for (int round = 0; round < 8; ++round) {
    ThreadPool pool(3);
    std::atomic<int> ran{0};
    std::atomic<int> accepted{0};
    std::atomic<int> rejected{0};
    std::vector<std::thread> submitters;
    std::vector<std::vector<std::future<void>>> futures(4);
    for (int t = 0; t < 4; ++t) {
      submitters.emplace_back([&, t] {
        for (int i = 0; i < 200; ++i) {
          try {
            futures[t].push_back(pool.submit([&] { ran.fetch_add(1); }));
            accepted.fetch_add(1);
          } catch (const std::runtime_error&) {
            rejected.fetch_add(1);
          }
        }
      });
    }
    pool.stop_accepting();
    pool.drain();
    for (auto& s : submitters) s.join();
    // Late accepts (submits that won the race before the flag flipped) are
    // still honoured: drain again now that the submitters are done, then
    // every accepted future must be ready and every accepted task ran.
    pool.drain();
    for (auto& per_thread : futures)
      for (auto& f : per_thread) f.get();  // throws on a dropped task
    EXPECT_EQ(ran.load(), accepted.load());
    EXPECT_EQ(accepted.load() + rejected.load(), 4 * 200);
  }
}

TEST(ThreadPoolTest, ParallelForCompletesAfterStopAccepting) {
  // parallel_for may no longer enqueue helper tasks once the pool stopped
  // accepting, but the loop must still run every index (the calling
  // thread drains all chunks itself).
  ThreadPool pool(4);
  pool.stop_accepting();
  constexpr std::size_t n = 1'000;
  std::vector<std::atomic<int>> hits(n);
  pool.parallel_for(n, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadPoolTest, DrainWaitsForQueuedAndRunningWork) {
  ThreadPool pool(2);
  std::atomic<int> done{0};
  for (int i = 0; i < 32; ++i)
    (void)pool.submit([&] { done.fetch_add(1); });
  pool.stop_accepting();
  pool.drain();
  EXPECT_EQ(done.load(), 32);
}

TEST(ThreadPoolTest, SeededStressTenThousandTasksFiftyIterations) {
  // Satellite-mandated stress: 10k tiny tasks x 50 iterations. Each
  // iteration derives expected values from a seeded Rng so the assertion
  // set differs run to run of the loop but is fully reproducible.
  ThreadPool pool(ThreadPool::hardware_threads());
  Rng rng(0xf00dULL);
  constexpr std::size_t n = 10'000;
  std::vector<std::uint64_t> input(n);
  std::vector<std::uint64_t> output(n);
  for (int iter = 0; iter < 50; ++iter) {
    for (auto& v : input) v = rng.next() >> 32;
    pool.parallel_for(n, [&](std::size_t i) { output[i] = input[i] * 3 + 1; });
    // Spot-check the fold the way a consumer would: serial reduction over
    // the slot vector equals the reduction over the inputs.
    std::uint64_t expect = 0;
    for (const auto v : input) expect += v * 3 + 1;
    const std::uint64_t got =
        std::accumulate(output.begin(), output.end(), std::uint64_t{0});
    ASSERT_EQ(got, expect) << "iteration " << iter;
  }
}

}  // namespace
}  // namespace cfs
