// Interner properties (ISSUE 8 satellite): handles are dense and
// contiguous, insertion-order deterministic across runs, round-trip
// id -> value -> id is the identity, and const lookups never mint.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "net/ipv4.h"
#include "util/intern.h"
#include "util/rng.h"

namespace cfs {
namespace {

TEST(Intern, HandlesAreDenseAndContiguous) {
  Interner<std::string> interner;
  EXPECT_EQ(interner.intern("lon"), 0u);
  EXPECT_EQ(interner.intern("fra"), 1u);
  EXPECT_EQ(interner.intern("lon"), 0u);  // re-intern returns the same handle
  EXPECT_EQ(interner.intern("ams"), 2u);
  EXPECT_EQ(interner.size(), 3u);
}

TEST(Intern, FuzzedHandlesStayDenseUnderDuplicates) {
  Rng rng(7);
  Interner<std::uint64_t> interner;
  std::vector<std::uint64_t> seen;  // reference: first-seen order
  for (int i = 0; i < 5000; ++i) {
    // Small universe => plenty of duplicate interning.
    const std::uint64_t v = rng.uniform(200);
    const auto h = interner.intern(v);
    ASSERT_LT(h, interner.size());
    if (std::find(seen.begin(), seen.end(), v) == seen.end()) seen.push_back(v);
    ASSERT_EQ(interner.size(), seen.size());
    // Handle == position in first-seen order.
    ASSERT_EQ(interner.value(h), v);
    ASSERT_EQ(h, static_cast<std::size_t>(
                     std::find(seen.begin(), seen.end(), v) - seen.begin()));
  }
  EXPECT_EQ(interner.values(), seen);
}

TEST(Intern, InsertionOrderIsDeterministicAcrossRuns) {
  // Two interners fed the same sequence mint identical handle spaces —
  // the property every handle-indexed array in the core relies on.
  const auto feed = [](Interner<std::string>& interner) {
    Rng rng(99);
    for (int i = 0; i < 2000; ++i)
      interner.intern("as" + std::to_string(rng.uniform(300)));
  };
  Interner<std::string> a, b;
  feed(a);
  feed(b);
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(a.values(), b.values());
}

TEST(Intern, RoundTripIsIdentity) {
  Rng rng(3);
  Interner<Ipv4> interner;
  for (int i = 0; i < 3000; ++i)
    interner.intern(Ipv4(static_cast<std::uint32_t>(rng.uniform(1 << 12))));
  for (std::uint32_t h = 0; h < interner.size(); ++h) {
    const Ipv4 v = interner.value(h);            // id -> value
    EXPECT_EQ(interner.intern(v), h);            // value -> id (no mint)
    ASSERT_TRUE(interner.find(v).has_value());
    EXPECT_EQ(*interner.find(v), h);
  }
}

TEST(Intern, ConstLookupsNeverMint) {
  Interner<std::string> interner;
  interner.intern("known");
  const Interner<std::string>& view = interner;
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(view.find("unknown-" + std::to_string(i)).has_value());
    EXPECT_FALSE(view.contains("unknown-" + std::to_string(i)));
  }
  // A hundred misses minted nothing.
  EXPECT_EQ(view.size(), 1u);
  EXPECT_TRUE(view.find("known").has_value());
}

}  // namespace
}  // namespace cfs
