// Sorted-vector set algebra vs a std::set reference model (ISSUE 8
// satellite): intersection/union/difference/subset agree with the
// reference under fuzzed inputs — empty, singleton and duplicate-heavy
// draws included — and the in-place intersection keeps its
// empty-result-writes-nothing guarantee the conflict-rejecting
// constraint fold depends on.
#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <vector>

#include "util/rng.h"
#include "util/setops.h"

namespace cfs {
namespace {

using Set = std::set<std::uint32_t>;
using Vec = std::vector<std::uint32_t>;

Vec to_vec(const Set& s) { return Vec(s.begin(), s.end()); }

// Draws a sorted-unique vector through a std::set, with size and value
// universe chosen to make empty, singleton and near-identical (duplicate
// -heavy across draws) inputs all common.
Vec draw(Rng& rng) {
  const std::size_t size = rng.uniform(8) == 0 ? rng.uniform(2)  // empty-ish
                                               : rng.uniform(24);
  const std::uint64_t universe = 1 + rng.uniform(30);  // heavy overlap
  Set s;
  for (std::size_t i = 0; i < size; ++i)
    s.insert(static_cast<std::uint32_t>(rng.uniform(universe)));
  return to_vec(s);
}

TEST(SetOps, AgreesWithSetModelUnderFuzz) {
  Rng rng(20150815);
  for (int trial = 0; trial < 2000; ++trial) {
    const Vec a = draw(rng), b = draw(rng);
    const Set sa(a.begin(), a.end()), sb(b.begin(), b.end());

    Set ref_inter, ref_union, ref_diff;
    for (auto v : sa) {
      if (sb.count(v)) ref_inter.insert(v);
      if (!sb.count(v)) ref_diff.insert(v);
      ref_union.insert(v);
    }
    for (auto v : sb) ref_union.insert(v);

    ASSERT_EQ(set_intersect(a, b), to_vec(ref_inter)) << "trial " << trial;
    ASSERT_EQ(set_union_of(a, b), to_vec(ref_union)) << "trial " << trial;
    ASSERT_EQ(set_difference_of(a, b), to_vec(ref_diff)) << "trial " << trial;

    const bool ref_subset =
        std::includes(sb.begin(), sb.end(), sa.begin(), sa.end());
    ASSERT_EQ(set_subset(a, b), ref_subset) << "trial " << trial;

    // Outputs are themselves sorted-unique (closure under the algebra).
    ASSERT_TRUE(sorted_unique(set_intersect(a, b)));
    ASSERT_TRUE(sorted_unique(set_union_of(a, b)));
    ASSERT_TRUE(sorted_unique(set_difference_of(a, b)));
  }
}

TEST(SetOps, InPlaceIntersectMatchesOutOfPlace) {
  Rng rng(404);
  for (int trial = 0; trial < 2000; ++trial) {
    const Vec a = draw(rng), b = draw(rng);
    const Vec expected = set_intersect(a, b);

    Vec scratch = a;
    const std::size_t n =
        intersect_in_place(scratch.data(), scratch.size(), b.data(), b.size());
    ASSERT_EQ(n, expected.size()) << "trial " << trial;
    ASSERT_EQ(Vec(scratch.begin(), scratch.begin() + n), expected)
        << "trial " << trial;
    if (expected.empty()) {
      // The load-bearing guarantee: an emptying intersection wrote
      // nothing, so the caller can reject it and keep the original set.
      ASSERT_EQ(scratch, a) << "trial " << trial;
    }
  }
}

TEST(SetOps, EdgeCases) {
  const Vec empty, one{7}, other{9}, both{7, 9};
  EXPECT_EQ(set_intersect(empty, empty), empty);
  EXPECT_EQ(set_union_of(empty, empty), empty);
  EXPECT_EQ(set_difference_of(empty, empty), empty);
  EXPECT_TRUE(set_subset(empty, empty));
  EXPECT_TRUE(set_subset(empty, one));
  EXPECT_FALSE(set_subset(one, empty));
  EXPECT_TRUE(set_subset(one, both));
  EXPECT_FALSE(set_subset(both, one));
  EXPECT_EQ(set_intersect(one, other), empty);
  EXPECT_EQ(set_union_of(one, other), both);
  EXPECT_EQ(set_intersect(one, one), one);

  // Identical-span aliasing (the one aliasing form the contract allows).
  Vec self{1, 2, 3};
  EXPECT_EQ(intersect_in_place(self.data(), self.size(), self.data(),
                               self.size()),
            3u);
  EXPECT_EQ(self, (Vec{1, 2, 3}));
}

}  // namespace
}  // namespace cfs
