#include "util/flags.h"

#include <gtest/gtest.h>

namespace cfs {
namespace {

Flags make(std::initializer_list<const char*> args) {
  std::vector<const char*> argv = {"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return Flags(static_cast<int>(argv.size()), argv.data());
}

TEST(Flags, SpaceSeparatedValues) {
  const Flags flags = make({"--scale", "paper", "--seed", "42"});
  EXPECT_EQ(flags.get("scale", "x"), "paper");
  EXPECT_EQ(flags.get_int("seed", 0), 42);
}

TEST(Flags, EqualsSeparatedValues) {
  const Flags flags = make({"--scale=tiny", "--vp-fraction=0.25"});
  EXPECT_EQ(flags.get("scale", "x"), "tiny");
  EXPECT_DOUBLE_EQ(flags.get_double("vp-fraction", 0), 0.25);
}

TEST(Flags, BareBooleans) {
  const Flags flags = make({"--verbose", "--dry-run=false"});
  EXPECT_TRUE(flags.get_bool("verbose", false));
  EXPECT_FALSE(flags.get_bool("dry-run", true));
  EXPECT_TRUE(flags.get_bool("absent", true));
}

TEST(Flags, DefaultsWhenAbsent) {
  const Flags flags = make({});
  EXPECT_EQ(flags.get("scale", "small"), "small");
  EXPECT_EQ(flags.get_int("seed", 7), 7);
  EXPECT_DOUBLE_EQ(flags.get_double("f", 1.5), 1.5);
  EXPECT_FALSE(flags.has("anything"));
}

TEST(Flags, PositionalArguments) {
  const Flags flags = make({"infer", "--seed", "1", "extra"});
  ASSERT_EQ(flags.positional().size(), 2u);
  EXPECT_EQ(flags.positional()[0], "infer");
  EXPECT_EQ(flags.positional()[1], "extra");
}

TEST(Flags, MalformedNumbersThrow) {
  const Flags flags = make({"--seed", "abc", "--f", "1.2.3", "--b", "maybe"});
  EXPECT_THROW(flags.get_int("seed", 0), std::invalid_argument);
  EXPECT_THROW(flags.get_double("f", 0), std::invalid_argument);
  EXPECT_THROW(flags.get_bool("b", false), std::invalid_argument);
}

// The what() of a malformed value must name the flag, the expected type and
// the offending text — never just the raw value.
TEST(Flags, ErrorMessagesNameFlagAndType) {
  const auto message = [](auto&& call) -> std::string {
    try {
      call();
    } catch (const std::invalid_argument& e) {
      return e.what();
    }
    return "";
  };

  const Flags flags = make({"--seed", "abc", "--f", "1.2.3", "--b", "maybe"});
  EXPECT_EQ(message([&] { (void)flags.get_int("seed", 0); }),
            "flag --seed expects an integer, got 'abc'");
  EXPECT_EQ(message([&] { (void)flags.get_double("f", 0); }),
            "flag --f expects a number, got '1.2.3'");
  EXPECT_EQ(message([&] { (void)flags.get_bool("b", false); }),
            "flag --b expects a boolean, got 'maybe'");
}

// Trailing garbage after a valid numeric prefix is rejected with the same
// diagnosable message, not a bare value.
TEST(Flags, TrailingGarbageMessages) {
  const Flags flags = make({"--seed=12x", "--f=3.5ms"});
  const auto message = [](auto&& call) -> std::string {
    try {
      call();
    } catch (const std::invalid_argument& e) {
      return e.what();
    }
    return "";
  };
  EXPECT_EQ(message([&] { (void)flags.get_int("seed", 0); }),
            "flag --seed expects an integer, got '12x'");
  EXPECT_EQ(message([&] { (void)flags.get_double("f", 0); }),
            "flag --f expects a number, got '3.5ms'");
}

// Out-of-range values are malformed too, and keep the flag name.
TEST(Flags, OutOfRangeMessages) {
  const Flags flags = make({"--seed", "99999999999999999999999999"});
  try {
    (void)flags.get_int("seed", 0);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_EQ(std::string(e.what()),
              "flag --seed expects an integer, got "
              "'99999999999999999999999999'");
  }
}

TEST(Flags, UnknownFlagTracking) {
  const Flags flags = make({"--known", "1", "--typo", "2"});
  EXPECT_EQ(flags.get_int("known", 0), 1);
  const auto unknown = flags.unknown_flags();
  ASSERT_EQ(unknown.size(), 1u);
  EXPECT_EQ(unknown[0], "typo");
}

// A repeated flag used to be silent last-wins; with two occurrences there
// is no way to know which one the user meant, so it is a hard error that
// names the flag.
TEST(Flags, RepeatedFlagIsAnError) {
  try {
    make({"--seed", "1", "--seed", "2"});
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_EQ(std::string(e.what()),
              "flag --seed given more than once; pass it a single time");
  }
}

TEST(Flags, RepeatedFlagMixedFormsIsAnError) {
  // "=value" and space-separated occurrences of the same name collide too.
  EXPECT_THROW(make({"--scale=tiny", "--scale", "paper"}),
               std::invalid_argument);
  // Bare boolean repeated.
  EXPECT_THROW(make({"--verbose", "--verbose"}), std::invalid_argument);
}

TEST(Flags, DistinctFlagsDoNotCollide) {
  const Flags flags = make({"--seed", "1", "--fault-seed", "2"});
  EXPECT_EQ(flags.get_int("seed", 0), 1);
  EXPECT_EQ(flags.get_int("fault-seed", 0), 2);
}

// A space-separated value that itself starts with "--" is structurally
// unreachable (it parses as a second flag); the canned unknown-flags
// diagnostic must point at the --name=value escape hatch.
TEST(Flags, ValueStartingWithDashesLandsInUnknownAndMessageSuggestsEquals) {
  const Flags flags = make({"--out", "--odd-name.json"});
  EXPECT_EQ(flags.get("out", ""), "");  // bare boolean, not the value
  const auto unknown = flags.unknown_flags();
  ASSERT_EQ(unknown.size(), 1u);
  EXPECT_EQ(unknown[0], "odd-name.json");
  const std::string message = flags.unknown_flags_message();
  EXPECT_NE(message.find("--odd-name.json"), std::string::npos);
  EXPECT_NE(message.find("--name=value"), std::string::npos);
  // And the = form actually delivers such a value.
  const Flags fixed = make({"--out=--odd-name.json"});
  EXPECT_EQ(fixed.get("out", ""), "--odd-name.json");
  EXPECT_TRUE(fixed.unknown_flags_message().empty());
}

// stoll/stod count skipped leading whitespace as consumed, which used to
// accept " 4" while rejecting "4 " — both directions must reject.
TEST(Flags, WhitespacePaddedNumbersRejectedBothSides) {
  const Flags leading = make({"--threads= 4", "--f= 1.5"});
  EXPECT_THROW((void)leading.get_int("threads", 0), std::invalid_argument);
  EXPECT_THROW((void)leading.get_double("f", 0), std::invalid_argument);
  const Flags trailing = make({"--threads=4 ", "--f=1.5 "});
  EXPECT_THROW((void)trailing.get_int("threads", 0), std::invalid_argument);
  EXPECT_THROW((void)trailing.get_double("f", 0), std::invalid_argument);
  const Flags tab = make({"--threads=\t4"});
  EXPECT_THROW((void)tab.get_int("threads", 0), std::invalid_argument);
}

}  // namespace
}  // namespace cfs
