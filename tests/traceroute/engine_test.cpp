#include "traceroute/engine.h"

#include <gtest/gtest.h>

#include "support/mini_net.h"
#include "traceroute/campaign.h"
#include "topology/generator.h"

namespace cfs {
namespace {

using testing::MiniNet;

struct EngineFixture {
  MiniNet net;
  Asn a, c, e;
  LinkId c_e_link;

  EngineFixture() {
    a = net.add_as(1000, AsType::Transit, {1, 2, 4});
    c = net.add_as(5000, AsType::Content, {1, 3});
    e = net.add_as(10000, AsType::Eyeball, {2, 3});
    net.xconnect(c, a, 1, BusinessRel::CustomerProvider);
    net.xconnect(e, a, 2, BusinessRel::CustomerProvider);
    net.join_ixp(c, 3);
    net.join_ixp(e, 3);
    c_e_link = net.public_peer(c, e, BusinessRel::PeerPeer);
    net.topo.validate();
  }

  VantagePoint vp_at(Asn asn, int fac_index, double access = 5.0) {
    VantagePoint vp;
    vp.id = VantagePointId(0);
    vp.platform = Platform::RipeAtlas;
    vp.attach = net.router(asn, fac_index);
    vp.asn = asn;
    vp.address = net.take_address(asn);
    vp.access_ms = access;
    return vp;
  }
};

EngineConfig quiet_config() {
  EngineConfig cfg;
  cfg.jitter_ms = 0.0;
  cfg.probe_loss = 0.0;
  return cfg;
}

TEST(Engine, TraceReachesBareHostAddress) {
  EngineFixture fx;
  RoutingOracle oracle(fx.net.topo);
  ForwardingEngine fwd(fx.net.topo, oracle);
  TracerouteEngine engine(fx.net.topo, fwd, quiet_config(), 1);

  const Prefix& e_block = fx.net.topo.as_of(fx.e).prefixes.front();
  const Ipv4 target = e_block.at(e_block.size() / 2);
  const auto vp = fx.vp_at(fx.c, 1);
  const TraceResult result = engine.trace(vp, target);
  ASSERT_FALSE(result.hops.empty());
  EXPECT_TRUE(result.reached_target);
  EXPECT_EQ(result.hops.back().address, target);
}

TEST(Engine, TraceToInterfaceEndsOnThatAddress) {
  EngineFixture fx;
  RoutingOracle oracle(fx.net.topo);
  ForwardingEngine fwd(fx.net.topo, oracle);
  TracerouteEngine engine(fx.net.topo, fwd, quiet_config(), 1);

  const Link& link = fx.net.topo.link(fx.c_e_link);
  const auto vp = fx.vp_at(fx.c, 1);
  const TraceResult result = engine.trace(vp, link.b.address);
  ASSERT_FALSE(result.hops.empty());
  EXPECT_TRUE(result.reached_target);
  EXPECT_EQ(result.hops.back().address, link.b.address);
}

TEST(Engine, PublicPeeringSignatureVisible) {
  EngineFixture fx;
  RoutingOracle oracle(fx.net.topo);
  ForwardingEngine fwd(fx.net.topo, oracle);
  TracerouteEngine engine(fx.net.topo, fwd, quiet_config(), 1);

  const Prefix& e_block = fx.net.topo.as_of(fx.e).prefixes.front();
  const auto vp = fx.vp_at(fx.c, 3);
  const TraceResult result = engine.trace(vp, e_block.at(500));
  // Expect some hop with an IXP LAN address.
  bool ixp_hop = false;
  for (const Hop& hop : result.hops)
    if (hop.responded && fx.net.topo.ixp_of_address(hop.address).has_value())
      ixp_hop = true;
  EXPECT_TRUE(ixp_hop);
}

TEST(Engine, RttsIncludeAccessDelayAndGrow) {
  EngineFixture fx;
  RoutingOracle oracle(fx.net.topo);
  ForwardingEngine fwd(fx.net.topo, oracle);
  TracerouteEngine engine(fx.net.topo, fwd, quiet_config(), 1);

  const Prefix& e_block = fx.net.topo.as_of(fx.e).prefixes.front();
  const auto vp = fx.vp_at(fx.c, 1, /*access=*/10.0);
  const TraceResult result = engine.trace(vp, e_block.at(500));
  ASSERT_GE(result.hops.size(), 2u);
  for (const Hop& hop : result.hops) {
    if (!hop.responded) continue;
    EXPECT_GE(hop.rtt_ms, 20.0);  // 2x access latency floor
  }
  EXPECT_LE(result.hops.front().rtt_ms, result.hops.back().rtt_ms);
}

TEST(Engine, UnresponsiveRouterLeavesGap) {
  EngineFixture fx;
  // Silence E's router at facility 2/3 boundary: pick the router that C->E
  // path enters (the IXP port router at fac 3).
  const RouterId silent = fx.net.router(fx.e, 3);
  fx.net.topo.mutable_router(silent).responds_to_traceroute = false;

  RoutingOracle oracle(fx.net.topo);
  ForwardingEngine fwd(fx.net.topo, oracle);
  TracerouteEngine engine(fx.net.topo, fwd, quiet_config(), 1);

  const Prefix& e_block = fx.net.topo.as_of(fx.e).prefixes.front();
  const auto vp = fx.vp_at(fx.c, 3);
  const TraceResult result = engine.trace(vp, e_block.at(500));
  bool gap = false;
  for (const Hop& hop : result.hops) gap |= !hop.responded;
  EXPECT_TRUE(gap);
}

TEST(Engine, ProbeLossProducesGapsStatistically) {
  EngineFixture fx;
  RoutingOracle oracle(fx.net.topo);
  ForwardingEngine fwd(fx.net.topo, oracle);
  EngineConfig cfg = quiet_config();
  cfg.probe_loss = 0.5;
  TracerouteEngine engine(fx.net.topo, fwd, cfg, 2);

  const Prefix& e_block = fx.net.topo.as_of(fx.e).prefixes.front();
  const auto vp = fx.vp_at(fx.c, 1);
  int missing = 0;
  int total = 0;
  for (int i = 0; i < 50; ++i) {
    const TraceResult result = engine.trace(vp, e_block.at(500));
    for (const Hop& hop : result.hops) {
      ++total;
      missing += !hop.responded;
    }
  }
  EXPECT_GT(missing, total / 4);
  EXPECT_LT(missing, 3 * total / 4);
}

TEST(Engine, MinRttConvergesToPathLatency) {
  EngineFixture fx;
  RoutingOracle oracle(fx.net.topo);
  ForwardingEngine fwd(fx.net.topo, oracle);
  EngineConfig cfg;
  cfg.jitter_ms = 1.0;
  cfg.probe_loss = 0.0;
  TracerouteEngine engine(fx.net.topo, fwd, cfg, 3);

  const Prefix& e_block = fx.net.topo.as_of(fx.e).prefixes.front();
  const auto vp = fx.vp_at(fx.c, 1, 5.0);
  const double few = engine.min_rtt_ms(vp, e_block.at(500), 2);
  const double many = engine.min_rtt_ms(vp, e_block.at(500), 50);
  EXPECT_GE(few, many);
  EXPECT_GE(many, 10.0);  // at least the access-latency floor
}

TEST(Engine, UnreachableTargetGivesEmptyTrace) {
  EngineFixture fx;
  RoutingOracle oracle(fx.net.topo);
  ForwardingEngine fwd(fx.net.topo, oracle);
  TracerouteEngine engine(fx.net.topo, fwd, quiet_config(), 1);
  const auto vp = fx.vp_at(fx.c, 1);
  const TraceResult result = engine.trace(vp, *Ipv4::parse("9.9.9.9"));
  EXPECT_TRUE(result.hops.empty());
  EXPECT_FALSE(result.reached_target);
}

TEST(Campaign, TargetsForCoversEveryPrefix) {
  EngineFixture fx;
  const auto targets = MeasurementCampaign::targets_for(fx.net.topo, fx.c);
  EXPECT_EQ(targets.size(), fx.net.topo.as_of(fx.c).prefixes.size());
  for (const Ipv4 t : targets) {
    EXPECT_EQ(fx.net.topo.origin_of(t), fx.c);
    EXPECT_EQ(fx.net.topo.find_interface(t), nullptr);
  }
}

TEST(Campaign, LookingGlassQueriesAdvanceVirtualClock) {
  const Topology base = generate_topology(GeneratorConfig::tiny());
  Topology topo = base;  // copy to mutate via VantagePointSet
  LookingGlassDirectory lgs(topo, {.host_probability = 1.0,
                                   .bgp_support_probability = 0.5,
                                   .cooldown_s = 60.0,
                                   .seed = 1});
  PlatformConfig pcfg;
  pcfg.atlas_target = 5;
  pcfg.iplane_target = 0;
  pcfg.ark_target = 0;
  VantagePointSet vps(topo, lgs, pcfg);

  RoutingOracle oracle(topo);
  ForwardingEngine fwd(topo, oracle);
  TracerouteEngine engine(topo, fwd, EngineConfig{}, 4);
  MeasurementCampaign campaign(topo, engine, lgs);

  const auto lg_vps = vps.of(Platform::LookingGlass);
  ASSERT_FALSE(lg_vps.empty());
  const auto targets =
      MeasurementCampaign::targets_for(topo, topo.ases().front().asn);
  ASSERT_FALSE(targets.empty());

  const double before = campaign.virtual_elapsed_s();
  campaign.run(std::span(lg_vps.data(), 1), targets);
  campaign.run(std::span(lg_vps.data(), 1), targets);
  EXPECT_GT(campaign.virtual_elapsed_s(), before + 60.0);
  EXPECT_GT(campaign.traces_attempted(), 0u);
}

}  // namespace
}  // namespace cfs
